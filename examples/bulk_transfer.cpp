// Bulk transfer: the throughput-intensive application from the paper's
// motivation ("systems that need to support both throughput-intensive and
// latency-critical applications").
//
// Streams 2 MB over the 100 Mb/s AN1 under each protocol organization and
// reports steady-state throughput plus the mechanism counts that explain
// the differences.
//
// Build & run:  ./build/examples/bulk_transfer
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"

using namespace ulnet;
using namespace ulnet::api;

int main() {
  std::printf("2 MB bulk transfer over DEC SRC AN1, 4 KB writes\n\n");
  std::printf("%-30s %10s %12s %10s %10s\n", "organization", "Mb/s",
              "IPC msgs", "copies", "signals");

  for (OrgType org : {OrgType::kInKernel, OrgType::kSingleServer,
                      OrgType::kUserLevel}) {
    Testbed bed(org, LinkType::kAn1);
    auto before = bed.world().metrics();
    BulkTransfer bulk(bed, 2 * 1024 * 1024, 4096, 5001,
                      /*verify_data=*/true);
    auto r = bulk.run();
    auto d = bed.world().metrics().delta_since(before);
    if (!r.ok) {
      std::printf("%-30s  FAILED: %s\n", to_string(org), r.error.c_str());
      continue;
    }
    std::printf("%-30s %10.2f %12llu %10llu %10llu   %s\n", to_string(org),
                r.throughput_mbps(),
                static_cast<unsigned long long>(d.ipc_messages),
                static_cast<unsigned long long>(d.copies + d.page_remaps),
                static_cast<unsigned long long>(d.semaphore_signals),
                r.data_valid ? "(data verified)" : "(DATA CORRUPT!)");
  }

  std::printf(
      "\nThe user-level library reaches in-kernel-class throughput with no"
      "\nper-packet IPC and no cross-space data copies: packets move through"
      "\nthe pinned shared rings, transmissions enter the kernel through the"
      "\nspecialized trap, and receptions are batched behind one semaphore"
      "\nsignal. The single-server organization pays Mach IPC per push.\n");
  return 0;
}
