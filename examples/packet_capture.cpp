// Packet capture: record a user-level TCP transfer to a standard pcap file
// and decode a few frames from it -- the simulated wire carries real
// Ethernet/IP/TCP bytes, so the capture opens in tcpdump/wireshark:
//
//   tcpdump -r /tmp/ulnet_quickstart.pcap | head
//
// Build & run:  ./build/examples/packet_capture
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "net/pcap.h"
#include "proto/wire.h"

using namespace ulnet;
using namespace ulnet::api;

int main() {
  const char* path = "/tmp/ulnet_quickstart.pcap";
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  net::PcapWriter pcap(path, bed.link(), bed.world().loop());

  // Decode the first few TCP frames inline as they pass, tcpdump-style.
  int shown = 0;
  auto inner_tap = bed.link().tap;  // the pcap writer's tap
  bed.link().tap = [&](const net::Frame& f) {
    inner_tap(f);  // keep recording
    if (shown >= 8) return;
    auto eh = net::EthHeader::parse(f.bytes);
    if (!eh || eh->ethertype != net::kEtherTypeIp) return;
    buf::ByteView ip(f.bytes.data() + 14, f.bytes.size() - 14);
    auto ih = proto::Ipv4Header::parse(ip);
    if (!ih || ih->proto != proto::kProtoTcp) return;
    buf::ByteView seg(ip.data() + 20, ih->payload_len());
    std::size_t hl = 0;
    auto th = proto::TcpHeader::parse(seg, ih->src, ih->dst, nullptr, &hl);
    if (!th) return;
    std::printf("%10.3f ms  %s:%u > %s:%u  flags [%s%s%s%s] seq %u len %zu\n",
                sim::to_ms(bed.world().now()), ih->src.to_string().c_str(),
                th->sport, ih->dst.to_string().c_str(), th->dport,
                th->flags.syn ? "S" : "", th->flags.fin ? "F" : "",
                th->flags.psh ? "P" : "", th->flags.ack ? "." : "", th->seq,
                seg.size() - hl);
    shown++;
  };

  BulkTransfer bulk(bed, 128 * 1024, 4096);
  auto r = bulk.run();

  std::printf("\ntransfer: %zu bytes, %.2f Mb/s steady state\n",
              r.bytes_received, r.throughput_mbps());
  std::printf("capture : %llu frames -> %s (open with tcpdump/wireshark)\n",
              static_cast<unsigned long long>(pcap.frames_written()), path);
  return r.ok ? 0 : 1;
}
