// Application-specific protocol specialization -- the paper's second
// motivation and its Section 5 future-work proposal ("a set of canned
// options that determine certain characteristics of a protocol").
//
// Because the protocol is a user-linkable library, each application picks
// its own variant at link time. This example runs the same two workloads
// with a stock library and with per-application specializations:
//   * a bulk-transfer app on the reliable AN1 elides the TCP checksum and
//     enlarges its windows,
//   * an RPC app turns off delayed ACKs to shave its reply latency.
// The monolithic organizations cannot do this per application -- one kernel
// configuration serves everyone.
//
// Build & run:  ./build/examples/app_specialization
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

double bulk_mbps(const proto::TcpConfig& cfg) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1);
  bed.app_a().set_tcp_config(cfg);
  bed.app_b().set_tcp_config(cfg);
  BulkTransfer bulk(bed, 1024 * 1024, 4096);
  auto r = bulk.run();
  return r.ok ? r.throughput_mbps() : -1;
}

double rpc_rtt_us(const proto::TcpConfig& cfg) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1);
  bed.app_a().set_tcp_config(cfg);
  bed.app_b().set_tcp_config(cfg);
  PingPong rpc(bed, 64, 50);
  return rpc.run_mean_rtt_us();
}

}  // namespace

int main() {
  const proto::TcpConfig stock;

  // Bulk app: the AN1 delivers frames reliably and the peer is trusted, so
  // the Internet checksum is redundant work; bigger windows keep the fast
  // pipe full.
  proto::TcpConfig bulk_variant = stock;
  bulk_variant.checksum_enabled = false;
  bulk_variant.recv_buf = 60 * 1024;
  bulk_variant.send_buf = 128 * 1024;

  // RPC app: small fixed-size messages on a trusted link -- elide the
  // checksum. (A tempting second knob, disabling delayed ACKs, is shown
  // below as a counterexample.)
  proto::TcpConfig rpc_variant = stock;
  rpc_variant.checksum_enabled = false;

  proto::TcpConfig eager_ack = stock;
  eager_ack.delayed_ack = false;

  std::printf("Per-application protocol variants (user-level library, AN1)\n\n");

  const double b0 = bulk_mbps(stock);
  const double b1 = bulk_mbps(bulk_variant);
  std::printf("bulk app   : stock %6.2f Mb/s  ->  specialized %6.2f Mb/s "
              "(+%.0f%%)\n",
              b0, b1, 100.0 * (b1 - b0) / b0);

  const double r0 = rpc_rtt_us(stock);
  const double r1 = rpc_rtt_us(rpc_variant);
  std::printf("rpc app    : stock %6.0f us    ->  no-checksum %6.0f us  "
              "(%+.0f%%)\n",
              r0, r1, 100.0 * (r1 - r0) / r0);

  // The counterexample: eagerly ACKing every segment *hurts* here, because
  // each extra pure ACK wakes the peer's library thread. Specialization
  // needs measurement, not folklore -- which is precisely why putting the
  // protocol where the application can experiment with it matters.
  const double r2 = rpc_rtt_us(eager_ack);
  std::printf("rpc app    : stock %6.0f us    ->  eager ACKs  %6.0f us  "
              "(%+.0f%%, a counterproductive variant)\n",
              r0, r2, 100.0 * (r2 - r0) / r0);

  std::printf(
      "\nBoth variants ran concurrently-compatible wire protocols: the"
      "\nspecialized TCP still interoperates (checksum elision is a"
      "\nreceive-side verification choice; ACK policy is sender-local)."
      "\nThe paper: 'a specialized variant of a standard protocol is used"
      "\nrather than the standard protocol itself.'\n");
  return 0;
}
