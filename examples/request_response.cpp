// Request/response: the latency-critical application class from the paper's
// motivation -- "the need for an efficient transport for distributed
// systems was a factor in the development of request/response protocols".
//
// Runs an RPC-shaped workload (small request, small reply, strictly
// sequential) over each organization and prints the latency distribution,
// showing where domain crossings hurt most.
//
// Build & run:  ./build/examples/request_response
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"

using namespace ulnet;
using namespace ulnet::api;

int main() {
  std::printf("RPC workload: 128-byte request, 128-byte reply, "
              "100 sequential calls, Ethernet\n\n");
  std::printf("%-30s %10s %10s %10s %10s\n", "organization", "mean us",
              "median us", "p99 us", "min us");

  for (OrgType org : {OrgType::kInKernel, OrgType::kUserLevel,
                      OrgType::kSingleServer, OrgType::kDedicated}) {
    Testbed bed(org, LinkType::kEthernet);
    PingPong rpc(bed, 128, 100);
    const double mean = rpc.run_mean_rtt_us();
    if (mean < 0) {
      std::printf("%-30s  FAILED\n", to_string(org));
      continue;
    }
    const auto& s = rpc.stats();
    std::printf("%-30s %10.0f %10.0f %10.0f %10.0f\n", to_string(org), mean,
                s.median(), s.percentile(99), s.min());
  }

  std::printf(
      "\nEvery address-space crossing on the request path shows up directly"
      "\nin RPC latency: the dedicated-server organization (two servers on"
      "\nthe path) is the paper's 'rare case' worst case; the user-level"
      "\nlibrary sits within ~1 ms of the in-kernel stack because its data"
      "\npath crosses into the kernel exactly once, through the specialized"
      "\nentry point.\n");
  return 0;
}
