// Quickstart: two simulated workstations on an Ethernet, the user-level
// protocol organization installed, one TCP connection, one message each way.
//
// Everything the paper describes happens under the hood of these few calls:
// the app's listen/connect go through the trusted registry server, which
// runs the three-way handshake and sets up the shared-memory channel, the
// send capability and the demultiplexing binding; the data below then flows
// purely between the protocol library (in each app's address space) and the
// kernel's network I/O module.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <limits>
#include <string>

#include "api/testbed.h"

using namespace ulnet;
using namespace ulnet::api;

int main() {
  // Two hosts, one 10 Mb/s Ethernet, user-level protocol organization.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  NetSystem& alice = bed.app_a();
  NetSystem& bob = bed.app_b();

  // --- Bob: listen and echo a greeting back -------------------------------
  bob.run_app([&](sim::TaskCtx&) {
    bob.listen(7, [&bob](SocketId id) {
      SocketEvents evs;
      evs.on_readable = [&bob, id](std::size_t) {
        auto data = bob.recv(id, std::numeric_limits<std::size_t>::max());
        std::printf("[bob]   got %zu bytes: \"%.*s\"\n", data.size(),
                    static_cast<int>(data.size()),
                    reinterpret_cast<const char*>(data.data()));
        const std::string reply = "hello from the other address space";
        bob.send(id, buf::ByteView(
                         reinterpret_cast<const std::uint8_t*>(reply.data()),
                         reply.size()));
      };
      evs.on_eof = [&bob, id] { bob.close(id); };
      return evs;
    });
  });

  // --- Alice: connect, send, read the reply, close ------------------------
  auto sock = std::make_shared<SocketId>(kInvalidSocket);
  bed.world().loop().schedule_in(50 * sim::kMs, [&, sock] {
    alice.run_app([&, sock](sim::TaskCtx&) {
      SocketEvents evs;
      evs.on_established = [&, sock] {
        std::printf("[alice] connected in %.2f ms (registry handshake + "
                    "channel setup + state transfer)\n",
                    sim::to_ms(bed.world().now()) - 50.0);
        const std::string msg = "hello user-level TCP";
        alice.send(*sock,
                   buf::ByteView(
                       reinterpret_cast<const std::uint8_t*>(msg.data()),
                       msg.size()));
      };
      evs.on_readable = [&, sock](std::size_t) {
        auto data = alice.recv(*sock, std::numeric_limits<std::size_t>::max());
        std::printf("[alice] got %zu bytes: \"%.*s\"\n", data.size(),
                    static_cast<int>(data.size()),
                    reinterpret_cast<const char*>(data.data()));
        alice.close(*sock);
      };
      evs.on_closed = [&](const std::string& reason) {
        std::printf("[alice] connection closed%s%s\n",
                    reason.empty() ? "" : ": ", reason.c_str());
      };
      alice.connect(bed.ip_b(), 7, std::move(evs),
                    [sock](SocketId id) { *sock = id; });
    });
  });

  bed.world().run_until(30 * sim::kSec);

  const auto& m = bed.world().metrics();
  std::printf(
      "\nmechanisms used: %llu specialized traps, %llu template checks, "
      "%llu software demux runs,\n%llu semaphore signals, %llu IPC messages "
      "(setup only), 0 data copies across spaces.\n",
      static_cast<unsigned long long>(m.specialized_traps),
      static_cast<unsigned long long>(m.template_checks),
      static_cast<unsigned long long>(m.demux_software_runs),
      static_cast<unsigned long long>(m.semaphore_signals),
      static_cast<unsigned long long>(m.ipc_messages));
  return 0;
}
