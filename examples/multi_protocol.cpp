// Multiple protocols co-existing on one system -- the paper's first
// motivation: "the co-existence of multiple protocols that provide
// materially differing services".
//
// Two hosts, one Ethernet, and three transports sharing the wire at once:
//   * TCP   -- reliable byte stream (a 256 KB verified bulk transfer),
//   * UDP   -- unreliable datagrams (a 50-message exchange),
//   * ICMP  -- the network's own echo service (10 pings).
// Everything demultiplexes off the same link and the TCP stream stays
// byte-perfect despite the competing traffic.
//
// This example uses the lower-level organization API directly (rather than
// the uniform NetSystem facade) to reach the UDP and ICMP modules.
//
// Build & run:  ./build/examples/multi_protocol
#include <algorithm>
#include <cstdio>

#include "baseline/inkernel.h"
#include "os/world.h"
#include "proto/stack.h"

using namespace ulnet;

namespace {
std::uint8_t pat(std::size_t i) { return static_cast<std::uint8_t>(i * 31); }
}  // namespace

int main() {
  os::World world;
  os::Host& ha = world.add_host("alpha");
  os::Host& hb = world.add_host("beta");
  net::Link& wire = world.add_ethernet();
  const auto ip_a = net::Ipv4Addr::parse("10.0.0.1");
  const auto ip_b = net::Ipv4Addr::parse("10.0.0.2");
  world.attach_lance(ha, wire, ip_a);
  world.attach_lance(hb, wire, ip_b);

  baseline::InKernelOrg org_a(world, ha);
  baseline::InKernelOrg org_b(world, hb);

  // ---- Protocol 1: TCP byte stream through the socket API ---------------
  api::NetSystem& app_a = org_a.add_app("bulk-client");
  api::NetSystem& app_b = org_b.add_app("bulk-server");
  constexpr std::size_t kBulk = 256 * 1024;
  std::size_t tcp_received = 0;
  bool tcp_valid = true;
  auto srv_sock = std::make_shared<api::SocketId>(api::kInvalidSocket);

  app_b.run_app([&](sim::TaskCtx&) {
    app_b.listen(5001, [&](api::SocketId id) {
      *srv_sock = id;
      api::SocketEvents evs;
      evs.on_readable = [&](std::size_t) {
        auto d = app_b.recv(*srv_sock, kBulk);
        for (std::size_t i = 0; i < d.size(); ++i) {
          if (d[i] != pat(tcp_received + i)) tcp_valid = false;
        }
        tcp_received += d.size();
      };
      evs.on_eof = [&] { app_b.close(*srv_sock); };
      return evs;
    });
  });
  auto cli_sock = std::make_shared<api::SocketId>(api::kInvalidSocket);
  auto sent = std::make_shared<std::size_t>(0);
  world.loop().schedule_in(30 * sim::kMs, [&, cli_sock, sent] {
    app_a.run_app([&, cli_sock, sent](sim::TaskCtx&) {
      api::SocketEvents evs;
      auto pump = [&, cli_sock, sent] {
        while (*sent < kBulk) {
          buf::Bytes chunk(std::min<std::size_t>(4096, kBulk - *sent));
          for (std::size_t i = 0; i < chunk.size(); ++i) {
            chunk[i] = pat(*sent + i);
          }
          const std::size_t took = app_a.send(*cli_sock, chunk);
          *sent += took;
          if (took < chunk.size()) return;
        }
        app_a.close(*cli_sock);
      };
      evs.on_established = [&app_a, pump] {
        app_a.run_app([pump](sim::TaskCtx&) { pump(); });
      };
      evs.on_writable = [&app_a, pump] {
        app_a.run_app([pump](sim::TaskCtx&) { pump(); });
      };
      app_a.connect(ip_b, 5001, std::move(evs),
                    [cli_sock](api::SocketId id) { *cli_sock = id; });
    });
  });

  // ---- Protocol 2: UDP datagrams through the kernel stacks --------------
  int udp_delivered = 0;
  org_b.stack().udp().bind(9000, [&](net::Ipv4Addr, std::uint16_t,
                                     buf::Bytes d) {
    udp_delivered++;
    (void)d;
  });
  for (int i = 0; i < 50; ++i) {
    world.loop().schedule_in((100 + i * 37) * sim::kMs, [&, i] {
      ha.run_in(sim::kKernelSpace, [&, i](sim::TaskCtx&) {
        org_a.stack().udp().send(9001, ip_b, 9000,
                                 buf::Bytes(200 + i, 0x77));
      });
    });
  }

  // ---- Protocol 3: ICMP echo probes --------------------------------------
  int pongs = 0;
  sim::Time rtt_sum = 0;
  for (int i = 0; i < 10; ++i) {
    world.loop().schedule_in((200 + i * 151) * sim::kMs, [&, i] {
      ha.run_in(sim::kKernelSpace, [&, i](sim::TaskCtx&) {
        org_a.stack().icmp().ping(
            ip_b, static_cast<std::uint16_t>(i), 56,
            [&](net::Ipv4Addr, std::uint16_t, sim::Time rtt, std::size_t) {
              pongs++;
              rtt_sum += rtt;
            });
      });
    });
  }

  world.run_until(60 * sim::kSec);

  std::printf("TCP : %zu / %zu bytes, %s\n", tcp_received, kBulk,
              tcp_valid ? "byte-perfect" : "CORRUPT");
  std::printf("UDP : %d / 50 datagrams delivered\n", udp_delivered);
  std::printf("ICMP: %d / 10 echoes answered, mean RTT %.2f ms\n", pongs,
              pongs ? sim::to_ms(rtt_sum / pongs) : 0.0);
  std::printf(
      "\nThree services with materially different semantics shared one wire"
      "\nand one stack; input demultiplexing routed every packet to the"
      "\nright protocol module.\n");
  return (tcp_received == kBulk && tcp_valid && udp_delivered == 50 &&
          pongs == 10)
             ? 0
             : 1;
}
