// Mach-flavoured kernel substrate for one host.
//
// Provides exactly the mechanisms the paper's design leans on:
//   * ports -- unforgeable capabilities with per-space send rights,
//   * shared-memory regions -- pinned, mappable into chosen spaces,
//   * message IPC with modelled cost (the single-server and registry paths),
//   * traps (generic and the specialized network-I/O entry point).
//
// Data never moves through these objects -- frames travel as values in the
// simulation -- but authorization checks are real: a space without the right
// send right or mapping is refused, which the security tests exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cpu.h"
#include "sim/metrics.h"

namespace ulnet::os {

using PortId = std::uint64_t;
using RegionId = std::uint64_t;
inline constexpr PortId kInvalidPort = 0;
inline constexpr RegionId kInvalidRegion = 0;

class Kernel {
 public:
  Kernel(sim::Cpu& cpu, sim::Metrics& metrics) : cpu_(cpu), metrics_(metrics) {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- Traps ----------------------------------------------------------
  // Generic syscall entry/exit cost.
  void trap(sim::TaskCtx& ctx) {
    ctx.charge(cpu_.cost().trap_syscall);
    metrics_.traps++;
  }
  // The specialized, lightweight entry point into the network I/O module.
  void fast_trap(sim::TaskCtx& ctx) {
    ctx.charge(cpu_.cost().trap_specialized);
    metrics_.specialized_traps++;
  }

  // ---- Ports (capabilities) --------------------------------------------
  // Create a port whose receive right belongs to `owner`.
  PortId port_allocate(sim::SpaceId owner);
  void port_destroy(PortId port);
  // Grant `space` a send right (only meaningful from trusted code).
  void port_insert_send_right(PortId port, sim::SpaceId space);
  void port_remove_send_right(PortId port, sim::SpaceId space);
  [[nodiscard]] bool port_has_send_right(PortId port,
                                         sim::SpaceId space) const;
  [[nodiscard]] bool port_exists(PortId port) const {
    return ports_.contains(port);
  }

  // ---- Shared memory ----------------------------------------------------
  RegionId region_create(std::size_t bytes);
  void region_map(RegionId region, sim::SpaceId space);
  void region_unmap(RegionId region, sim::SpaceId space);
  void region_destroy(RegionId region);
  [[nodiscard]] bool region_mapped(RegionId region, sim::SpaceId space) const;
  [[nodiscard]] std::size_t region_size(RegionId region) const;

  // ---- IPC --------------------------------------------------------------
  // One-way Mach message of `bytes` payload from the current task's space
  // to `dst_space`. Charges the send half to `ctx` and dispatches `handler`
  // as a task in the destination space (which pays the receive half and, via
  // the CPU, the context switch).
  void ipc_send(sim::TaskCtx& ctx, sim::SpaceId dst_space, std::size_t bytes,
                sim::Cpu::TaskFn handler);

  // Out-of-line variant: the payload travels as an OOL descriptor whose
  // pages are remapped into the receiver instead of being copied inline.
  // Charges the oneway halves, a small inline control message and one page
  // remap; the payload bytes themselves are elided.
  void ipc_send_ool(sim::TaskCtx& ctx, sim::SpaceId dst_space,
                    std::size_t bytes, sim::Cpu::TaskFn handler);

  // ---- Space death notification -----------------------------------------
  // Mach-style dead-name notification, reduced to what the trusted path
  // needs: privileged servers register a watcher; when an address space
  // terminates abnormally the kernel tells every watcher (as a task in the
  // watcher's own context via the watcher's closure -- the registry turns
  // it into an IPC to itself). Watchers are never removed in this model;
  // servers outlive applications.
  using DeathWatcher = std::function<void(sim::TaskCtx&, sim::SpaceId)>;
  void watch_space_death(DeathWatcher w) {
    death_watchers_.push_back(std::move(w));
  }
  void space_died(sim::TaskCtx& ctx, sim::SpaceId space) {
    for (auto& w : death_watchers_) w(ctx, space);
  }

  // ---- Data movement costs ----------------------------------------------
  // Cross-space copy of `bytes`: charged as a copy, or as a fixed page remap
  // when the monolithic stacks' copy-avoidance threshold applies.
  void copy_bytes(sim::TaskCtx& ctx, std::size_t bytes,
                  bool remap_eligible = true);
  // Zero-copy boundary crossing: the buffer's pages are donated into the
  // destination space (fixed VM cost per crossing, independent of size).
  void donate_bytes(sim::TaskCtx& ctx, std::size_t bytes);

  sim::Cpu& cpu() { return cpu_; }
  sim::Metrics& metrics() { return metrics_; }

 private:
  struct Port {
    sim::SpaceId owner;
    std::unordered_set<sim::SpaceId> send_rights;
  };
  struct Region {
    std::size_t bytes = 0;
    std::unordered_set<sim::SpaceId> mapped;
  };

  sim::Cpu& cpu_;
  sim::Metrics& metrics_;
  std::unordered_map<PortId, Port> ports_;
  std::unordered_map<RegionId, Region> regions_;
  std::vector<DeathWatcher> death_watchers_;
  PortId next_port_ = 1;
  RegionId next_region_ = 1;
};

}  // namespace ulnet::os
