// A simulated workstation: one CPU, one kernel, address spaces, interfaces.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/nic.h"
#include "hw/rtclock.h"
#include "net/addr.h"
#include "os/kernel.h"
#include "sim/cpu.h"
#include "sim/rng.h"

namespace ulnet::os {

class Host {
 public:
  struct Interface {
    hw::Nic* nic = nullptr;
    net::Ipv4Addr ip;
    int prefix_len = 24;
  };

  Host(sim::EventLoop& loop, const sim::CostModel& cost, sim::Metrics& metrics,
       std::string name)
      : name_(std::move(name)),
        cpu_(loop, cost, metrics, name_ + ".cpu"),
        kernel_(cpu_, metrics),
        clock_(loop) {
    space_names_.push_back("kernel");  // space 0
  }
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  sim::Cpu& cpu() { return cpu_; }
  Kernel& kernel() { return kernel_; }
  hw::RtClock& clock() { return clock_; }
  sim::EventLoop& loop() { return cpu_.loop(); }

  // Allocate a new user address space (a "process").
  sim::SpaceId new_space(const std::string& space_name) {
    space_names_.push_back(space_name);
    return static_cast<sim::SpaceId>(space_names_.size() - 1);
  }
  [[nodiscard]] const std::string& space_name(sim::SpaceId s) const {
    return space_names_.at(static_cast<std::size_t>(s));
  }

  // Optional packet-buffer pool, owned by the World and shared by every
  // host in it (per-World so identical seeds give identical pool stats).
  void set_pool(buf::PacketPool* pool) { pool_ = pool; }
  [[nodiscard]] buf::PacketPool* pool() const { return pool_; }

  void add_interface(Interface ifc) { interfaces_.push_back(ifc); }
  std::vector<Interface>& interfaces() { return interfaces_; }

  // Interface whose subnet contains `dst`, or nullptr.
  Interface* interface_for(net::Ipv4Addr dst) {
    for (auto& ifc : interfaces_) {
      if (net::same_subnet(ifc.ip, dst, ifc.prefix_len)) return &ifc;
    }
    return nullptr;
  }
  Interface* interface_by_nic(const hw::Nic* nic) {
    for (auto& ifc : interfaces_) {
      if (ifc.nic == nic) return &ifc;
    }
    return nullptr;
  }
  // Primary address (first interface); zero if none.
  [[nodiscard]] net::Ipv4Addr primary_ip() const {
    return interfaces_.empty() ? net::Ipv4Addr{} : interfaces_.front().ip;
  }

  // Convenience: run `fn` as a normal-priority task in `space`.
  void run_in(sim::SpaceId space, sim::Cpu::TaskFn fn) {
    cpu_.submit(space, sim::Prio::kNormal, std::move(fn));
  }

 private:
  std::string name_;
  sim::Cpu cpu_;
  Kernel kernel_;
  hw::RtClock clock_;
  std::vector<std::string> space_names_;
  std::vector<Interface> interfaces_;
  buf::PacketPool* pool_ = nullptr;
};

}  // namespace ulnet::os
