#include "os/world.h"

#include <cstdio>

namespace ulnet::os {

std::string World::profile_dump_json() const {
  std::string out = "{\"hosts\":[";
  char buf[128];
  sim::Time grand_total = 0;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const sim::Cpu& cpu = hosts_[h]->cpu();
    if (h > 0) out += ',';
    out += "{\"host\":\"" + hosts_[h]->name() + "\",\"components\":{";
    for (int c = 0; c < sim::kCpuComponentCount; ++c) {
      std::snprintf(buf, sizeof buf, "%s\"%s\":%lld", c > 0 ? "," : "",
                    to_string(static_cast<sim::CpuComponent>(c)),
                    static_cast<long long>(
                        cpu.profile()[static_cast<std::size_t>(c)]));
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "},\"busy_ns\":%lld}",
                  static_cast<long long>(cpu.busy_ns()));
    out += buf;
    grand_total += cpu.busy_ns();
  }
  std::snprintf(buf, sizeof buf, "],\"total_busy_ns\":%lld}",
                static_cast<long long>(grand_total));
  out += buf;
  return out;
}

std::string World::profile_folded() const {
  std::string out;
  char buf[64];
  for (const auto& host : hosts_) {
    const sim::Cpu& cpu = host->cpu();
    for (int c = 0; c < sim::kCpuComponentCount; ++c) {
      const sim::Time ns = cpu.profile()[static_cast<std::size_t>(c)];
      if (ns == 0) continue;
      out += host->name();
      out += ';';
      out += to_string(static_cast<sim::CpuComponent>(c));
      std::snprintf(buf, sizeof buf, " %lld\n", static_cast<long long>(ns));
      out += buf;
    }
  }
  return out;
}

bool World::write_profile_folded(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = profile_folded();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ulnet::os
