#include "os/world.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>

namespace ulnet::os {

// Persistent window-barrier worker pool. Each run() call publishes one
// task under the mutex and bumps the epoch; workers race on an atomic
// index over [0, count) so partition assignment is load-balanced, which
// is safe because partitions are independent within a window. The mutex
// acquire/release pairs give the happens-before edges that make the
// phase-separated mailbox accesses (worker writes during the window, main
// thread reads at the barrier) data-race-free.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutdown_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  // Run task(i) for every i in [0, count); the calling thread
  // participates. Returns when all indices have completed.
  void run(const std::function<void(std::size_t)>& task, std::size_t count) {
    {
      std::lock_guard<std::mutex> lk(m_);
      task_ = &task;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      done_ = 0;
      ++epoch_;
    }
    cv_.notify_all();
    drain();
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [this] { return done_ == threads_.size(); });
    task_ = nullptr;
  }

 private:
  void drain() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) return;
      (*task_)(i);
    }
  }

  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return epoch_ != seen; });
      seen = epoch_;
      if (shutdown_) return;
      lk.unlock();
      drain();
      lk.lock();
      if (++done_ == threads_.size()) done_cv_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

World::World(std::uint64_t seed, const sim::CostModel& cost,
             PartitionMode mode)
    : cost_(cost), rng_(seed), seed_(seed), mode_(mode) {
  // Sharded modes leave the global loop unbound so that the
  // event_slab_high_water contribution is zero under both executors
  // (the serial run's single shared heap has no per-host equivalent).
  if (mode_ == PartitionMode::kNone) loop_.bind_metrics(&metrics_);
  pool_.bind_metrics(&metrics_);
}

World::~World() = default;

World::DuplexLink World::add_duplex_link(Host& a, Host& b,
                                         const net::LinkSpec& spec) {
  DuplexLink d;
  d.forward = &add_half_link(a, b, spec);
  d.reverse = &add_half_link(b, a, spec);
  return d;
}

net::Link& World::add_half_link(Host& tx, Host& rx,
                                const net::LinkSpec& spec) {
  const std::size_t tx_ord = host_ordinal(tx);
  const std::size_t rx_ord = host_ordinal(rx);
  sim::EventLoop* loop = &loop_;
  sim::Rng* rng = &rng_;
  sim::Metrics* metrics = &metrics_;
  sim::Tracer* tracer = &tracer_;
  if (mode_ != PartitionMode::kNone) {
    // A private fault-RNG stream per directed link, keyed by construction
    // ordinal, makes fault draws independent of which executor runs the
    // transmit and of every other host's activity.
    link_rngs_.push_back(
        std::make_unique<sim::Rng>(shard_seed(2, links_.size())));
    rng = link_rngs_.back().get();
    metrics = &parts_[tx_ord]->metrics;
    tracer = &parts_[tx_ord]->tracer;
    if (mode_ == PartitionMode::kPartitioned) loop = &parts_[tx_ord]->loop;
  }
  links_.push_back(std::make_unique<net::Link>(*loop, *rng, spec));
  net::Link& l = *links_.back();
  l.bind_metrics(metrics);
  l.bind_tracer(tracer);
  if (mode_ != PartitionMode::kNone && tx_ord != rx_ord) {
    // Both sharded executors route cross-host frames through the mailbox
    // and the window barrier -- the serial reference included. Sharing the
    // one delivery-ordering rule is what makes the executors bit-identical
    // by construction instead of by coincidence: a direct schedule_at at
    // transmit time would order same-timestamp ties between a delivery and
    // a local event by global insertion order, which no parallel executor
    // can reproduce.
    mailboxes_.push_back(std::make_unique<Mailbox>());
    Mailbox& mb = *mailboxes_.back();
    mb.link = &l;
    mb.src_ord = static_cast<std::uint32_t>(tx_ord);
    mb.dst_ord = static_cast<std::uint32_t>(rx_ord);
    l.set_portal(&mb);
  }
  return l;
}

sim::Time World::mailbox_lookahead() const {
  // A frame transmitted at time t on a cross-partition link arrives no
  // earlier than t + propagation, so each window may run
  // [W, W + min propagation) without mid-window communication.
  sim::Time lookahead = sim::EventLoop::kForever;
  for (const auto& mb : mailboxes_) {
    lookahead = std::min(lookahead, mb->link->spec().propagation);
  }
  return lookahead < 1 ? 1 : lookahead;
}

void World::drain_mailboxes() {
  // Per-destination merge in (arrive, src ordinal, per-link seq) order.
  // schedule_at assigns monotonically increasing loop sequence numbers, so
  // scheduling in sorted order fixes the execution order for equal
  // timestamps regardless of which thread produced which entry.
  struct Pending {
    Mailbox::Entry entry;
    std::uint32_t src_ord;
    Mailbox* box;
  };
  std::vector<Pending> merged;
  for (auto& mbp : mailboxes_) {
    Mailbox& mb = *mbp;
    if (mb.entries.size() > exec_.mailbox_depth_hw) {
      exec_.mailbox_depth_hw = mb.entries.size();
    }
    exec_.mailbox_entries += mb.entries.size();
    for (auto& e : mb.entries) {
      merged.push_back(Pending{std::move(e), mb.src_ord, &mb});
    }
    mb.entries.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const Pending& x, const Pending& y) {
              if (x.entry.arrive != y.entry.arrive) {
                return x.entry.arrive < y.entry.arrive;
              }
              if (x.src_ord != y.src_ord) return x.src_ord < y.src_ord;
              return x.entry.seq < y.entry.seq;
            });
  for (auto& p : merged) {
    sim::EventLoop& dst = mode_ == PartitionMode::kPartitioned
                              ? parts_[p.box->dst_ord]->loop
                              : loop_;
    net::Link* link = p.box->link;
    dst.schedule_at(p.entry.arrive,
                    [link, f = std::move(p.entry.frame),
                     from = p.entry.from]() mutable {
                      link->portal_deliver(std::move(f), from);
                    });
  }
}

std::uint64_t World::run_parallel(int threads, sim::Time until) {
  if (mode_ != PartitionMode::kPartitioned) {
    throw std::logic_error("run_parallel requires PartitionMode::kPartitioned");
  }
  if (threads < 1) threads = 1;
  const std::size_t workers = static_cast<std::size_t>(threads - 1);
  if (workers_ == nullptr || workers_->workers() != workers) {
    workers_ = std::make_unique<WorkerPool>(workers);
  }

  const sim::Time lookahead = mailbox_lookahead();
  exec_.lookahead_ns = static_cast<std::uint64_t>(lookahead);
  // Wall-clock introspection (per-partition busy, barrier stall) is only
  // measured while telemetry is on; the steady_clock reads would otherwise
  // be pure overhead. The simulated results are identical either way.
  const bool timed = telemetry_.enabled();
  if (timed) {
    exec_.part_busy_ns.resize(parts_.size(), 0);
    exec_.part_stall_ns.resize(parts_.size(), 0);
  }
  std::vector<std::uint64_t> executed(parts_.size(), 0);
  sim::Time window_end = 0;  // published to workers by the pool's barrier
  const std::function<void(std::size_t)> window_task =
      [this, &executed, &window_end, timed](std::size_t i) {
        // run_until(end - 1) executes every event with when <= end - 1 and
        // pins the partition clock to end - 1, strictly before any mailbox
        // arrival (>= end), so barrier-time scheduling never goes backward.
        if (timed) {
          const auto t0 = std::chrono::steady_clock::now();
          executed[i] += parts_[i]->loop.run_until(window_end - 1);
          exec_.part_busy_ns[i] += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          executed[i] += parts_[i]->loop.run_until(window_end - 1);
        }
      };

  std::vector<std::uint64_t> busy_before;
  for (;;) {
    drain_mailboxes();
    sim::Time w = sim::EventLoop::kForever;
    for (const auto& p : parts_) {
      w = std::min(w, p->loop.next_event_time());
    }
    if (w == sim::EventLoop::kForever || w > until) break;
    // Sample on the main thread at the window base: both sharded executors
    // see the identical sequence of window bases, so simulated series are
    // bit-identical at any thread count.
    telemetry_.sample_if_due(w);
    exec_.windows++;
    window_end = std::min(w + lookahead, until + 1);
    if (timed) {
      busy_before = exec_.part_busy_ns;
      const auto t0 = std::chrono::steady_clock::now();
      workers_->run(window_task, parts_.size());
      const auto wall = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      exec_.window_wall_ns += wall;
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        const std::uint64_t busy = exec_.part_busy_ns[i] - busy_before[i];
        exec_.part_stall_ns[i] += wall > busy ? wall - busy : 0;
      }
    } else {
      workers_->run(window_task, parts_.size());
    }
  }

  std::uint64_t total = 0;
  if (until != sim::EventLoop::kForever) {
    // Pin every partition clock to the horizon (no events <= until remain).
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      executed[i] += parts_[i]->loop.run_until(until);
    }
  }
  for (const std::uint64_t e : executed) total += e;
  return total;
}

std::uint64_t World::run_serial(sim::Time until) {
  // The serial reference executor: the same window/drain cycle as
  // run_parallel, on the one global loop, inline. Window boundaries,
  // drain order and therefore every event-sequence tie-break match the
  // parallel executor exactly.
  if (mailboxes_.empty()) {
    return until == sim::EventLoop::kForever ? loop_.run()
                                             : loop_.run_until(until);
  }
  const sim::Time lookahead = mailbox_lookahead();
  exec_.lookahead_ns = static_cast<std::uint64_t>(lookahead);
  std::uint64_t executed = 0;
  for (;;) {
    drain_mailboxes();
    const sim::Time w = loop_.next_event_time();
    if (w == sim::EventLoop::kForever || w > until) break;
    // Same sampling point as run_parallel (the window base), so the serial
    // reference produces the identical simulated series.
    telemetry_.sample_if_due(w);
    exec_.windows++;
    executed += loop_.run_until(std::min(w + lookahead, until + 1) - 1);
  }
  if (until != sim::EventLoop::kForever) executed += loop_.run_until(until);
  return executed;
}

void World::enable_telemetry(const sim::TelemetryConfig& cfg) {
  telemetry_.configure(cfg);
  telemetry_.set_enabled(true);

  // World-level mechanism counters. In kNone mode metrics_ is the one
  // metrics object; sharded modes observe the deterministic field-wise sum
  // over shards.
  auto world_counter = [this](const char* name,
                              std::uint64_t sim::Metrics::* field,
                              const char* unit) {
    if (mode_ == PartitionMode::kNone) {
      telemetry_.register_counter(name, [this, field] {
        return metrics_.*field;
      }, unit);
    } else {
      telemetry_.register_counter(name, [this, field] {
        return aggregate_metrics().*field;
      }, unit);
    }
  };
  world_counter("world.packets_rx", &sim::Metrics::packets_rx, "packets");
  world_counter("world.packets_tx", &sim::Metrics::packets_tx, "packets");
  world_counter("world.registry_handshake_sweeps",
                &sim::Metrics::registry_handshake_sweeps, "sweeps");

  // Event-loop introspection: live timer population (the ROADMAP's
  // timer-wheel question), executed-event and cancel counters.
  auto loop_series = [this](const std::string& prefix, sim::EventLoop* l) {
    telemetry_.register_gauge(prefix + ".pending", [l] {
      return static_cast<std::uint64_t>(l->pending());
    }, "events");
    telemetry_.register_counter(prefix + ".executed",
                                [l] { return l->executed(); }, "events");
    telemetry_.register_counter(prefix + ".cancels",
                                [l] { return l->cancels(); }, "events");
  };
  // Packet-pool residency per shard (or globally in kNone).
  auto pool_series = [this](const std::string& prefix, buf::PacketPool* p,
                            const sim::Metrics* m) {
    telemetry_.register_gauge(prefix + ".resident_bytes", [p] {
      return static_cast<std::uint64_t>(p->resident_bytes());
    }, "bytes");
    telemetry_.register_gauge(prefix + ".loans_outstanding", [m] {
      return m->loans_outstanding;
    }, "loans");
  };

  if (mode_ == PartitionMode::kNone) {
    loop_series("loop", &loop_);
    pool_series("pool", &pool_, &metrics_);
    // Drive sampling from the loop's tick hook: observes between events,
    // schedules nothing, so the event sequence is untouched.
    loop_.set_tick_hook(telemetry_.config().cadence, [this](sim::Time t) {
      telemetry_.sample_if_due(t);
    });
    return;
  }

  // Sharded modes sample at the window barrier (run_serial/run_parallel);
  // both executors see the same window bases, so simulated series are
  // bit-identical at any thread count.
  if (mode_ == PartitionMode::kShardedSerial) {
    loop_series("loop", &loop_);
  } else {
    // Aggregate across the per-partition loops so the series carries the
    // same name and values as the serial reference's single global loop:
    // the totals are executor-independent, only their spread across loops
    // is not, and a divergent series set would defeat the serial-vs-
    // partitioned equality gate.
    telemetry_.register_gauge("loop.pending", [this] {
      std::uint64_t n = 0;
      for (const auto& p : parts_) n += p->loop.pending();
      return n;
    }, "events");
    telemetry_.register_counter("loop.executed", [this] {
      std::uint64_t n = 0;
      for (const auto& p : parts_) n += p->loop.executed();
      return n;
    }, "events");
    telemetry_.register_counter("loop.cancels", [this] {
      std::uint64_t n = 0;
      for (const auto& p : parts_) n += p->loop.cancels();
      return n;
    }, "events");
  }
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const std::string ord = std::to_string(i);
    pool_series("pool" + ord, &parts_[i]->pool, &parts_[i]->metrics);
  }
  telemetry_.register_counter("exec.windows", &exec_.windows, "windows");
  telemetry_.register_gauge("exec.lookahead_ns",
                            [this] { return exec_.lookahead_ns; }, "ns");
  telemetry_.register_counter("exec.mailbox_entries", &exec_.mailbox_entries,
                              "frames");
  telemetry_.register_gauge("exec.mailbox_depth_hw",
                            [this] { return exec_.mailbox_depth_hw; },
                            "frames");
  if (mode_ == PartitionMode::kPartitioned) {
    // Wall-clock executor health: how much of each window each partition
    // spent running vs. stalled at the barrier. Host-dependent, so marked
    // wallclock and excluded from the determinism contract.
    telemetry_.register_counter("exec.window_wall_ns", [this] {
      return exec_.window_wall_ns;
    }, "ns", /*wallclock=*/true);
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      const std::string ord = std::to_string(i);
      telemetry_.register_counter("exec.part" + ord + ".busy_ns", [this, i] {
        return i < exec_.part_busy_ns.size() ? exec_.part_busy_ns[i] : 0;
      }, "ns", /*wallclock=*/true);
      telemetry_.register_counter("exec.part" + ord + ".stall_ns", [this, i] {
        return i < exec_.part_stall_ns.size() ? exec_.part_stall_ns[i] : 0;
      }, "ns", /*wallclock=*/true);
    }
  }
}

sim::Metrics World::aggregate_metrics() const {
  // All Metrics fields are uint64_t counters, so a field-wise sum is a
  // flat word loop; the static_asserts keep this honest as fields are
  // added. High-water/gauge fields become sums over shards, which is
  // deterministic across executors even though it is not a true global
  // high-water.
  static_assert(std::is_trivially_copyable_v<sim::Metrics>);
  static_assert(sizeof(sim::Metrics) % sizeof(std::uint64_t) == 0);
  constexpr std::size_t kWords = sizeof(sim::Metrics) / sizeof(std::uint64_t);
  auto add_into = [](std::uint64_t* acc, const sim::Metrics& m) {
    std::uint64_t words[kWords];
    std::memcpy(words, &m, sizeof words);
    for (std::size_t i = 0; i < kWords; ++i) acc[i] += words[i];
  };
  std::uint64_t acc[kWords] = {};
  add_into(acc, metrics_);
  for (const auto& p : parts_) add_into(acc, p->metrics);
  sim::Metrics out;
  std::memcpy(&out, acc, sizeof out);
  return out;
}

std::string World::profile_dump_json() const {
  std::string out = "{\"hosts\":[";
  char buf[128];
  sim::Time grand_total = 0;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const sim::Cpu& cpu = hosts_[h]->cpu();
    if (h > 0) out += ',';
    out += "{\"host\":\"" + hosts_[h]->name() + "\",\"components\":{";
    for (int c = 0; c < sim::kCpuComponentCount; ++c) {
      std::snprintf(buf, sizeof buf, "%s\"%s\":%lld", c > 0 ? "," : "",
                    to_string(static_cast<sim::CpuComponent>(c)),
                    static_cast<long long>(
                        cpu.profile()[static_cast<std::size_t>(c)]));
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "},\"busy_ns\":%lld}",
                  static_cast<long long>(cpu.busy_ns()));
    out += buf;
    grand_total += cpu.busy_ns();
  }
  std::snprintf(buf, sizeof buf, "],\"total_busy_ns\":%lld}",
                static_cast<long long>(grand_total));
  out += buf;
  return out;
}

std::string World::profile_folded() const {
  std::string out;
  char buf[64];
  for (const auto& host : hosts_) {
    const sim::Cpu& cpu = host->cpu();
    for (int c = 0; c < sim::kCpuComponentCount; ++c) {
      const sim::Time ns = cpu.profile()[static_cast<std::size_t>(c)];
      if (ns == 0) continue;
      out += host->name();
      out += ';';
      out += to_string(static_cast<sim::CpuComponent>(c));
      std::snprintf(buf, sizeof buf, " %lld\n", static_cast<long long>(ns));
      out += buf;
    }
  }
  return out;
}

bool World::write_profile_folded(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = profile_folded();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ulnet::os
