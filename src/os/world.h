// The simulated world: event loop, cost model, hosts, links, NICs.
//
// Owns every simulation object; benches and tests construct one World per
// experiment, wire hosts to links, install a protocol organization, and run.
//
// Partitioned scale-out (see docs/ARCHITECTURE.md): a World can shard its
// mutable simulation state per host -- event loop, RNG stream, metrics,
// tracer, packet pool -- so that hosts interact only through cross-host
// link events. PartitionMode selects between three executors:
//
//   kNone          legacy single loop + single RNG; bit-identical to the
//                  pre-partitioning simulator (every existing test/bench).
//   kShardedSerial per-host shards but ONE global loop. This is the serial
//                  reference executor for the differential determinism
//                  mode: it produces the exact per-host metrics, traces
//                  and RNG draws the parallel executor must reproduce.
//   kPartitioned   per-host shards AND per-host loops, run on a worker
//                  pool under conservative (Chandy-Misra-Bryant style)
//                  window synchronization via run_parallel().
//
// Cross-partition frames travel through per-link SPSC mailboxes drained at
// window barriers with a deterministic (arrive, src host ordinal, per-link
// seq) tie-break, so the merged event order is independent of thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "buf/packet_pool.h"
#include "hw/nic.h"
#include "net/link.h"
#include "os/host.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/telemetry.h"
#include "sim/trace.h"

namespace ulnet::os {

class WorkerPool;

enum class PartitionMode {
  kNone,
  kShardedSerial,
  kPartitioned,
};

class World {
 public:
  // One host's shard of the mutable simulation state. In kShardedSerial
  // the loop member exists but is unused (hosts share the global loop);
  // everything else is wired identically in both sharded modes so their
  // results are comparable field for field.
  struct Partition {
    explicit Partition(std::uint64_t seed) : rng(seed) {
      pool.bind_metrics(&metrics);
    }
    sim::EventLoop loop;
    sim::Metrics metrics;
    sim::Tracer tracer;
    sim::Rng rng;
    buf::PacketPool pool;
  };

  // Cross-partition delivery mailbox for one directed link. The producer
  // is the link's transmit side (exactly one partition, so one thread per
  // window); the consumer is the executor thread at the window barrier.
  // The window barrier's pool mutex provides the happens-before edge, so
  // plain members suffice.
  struct Mailbox final : net::LinkPortal {
    struct Entry {
      sim::Time arrive = 0;
      std::uint64_t seq = 0;  // per-link FIFO order (primary before dup)
      net::Frame frame;
      const net::LinkEndpoint* from = nullptr;
    };

    void remote_deliver(sim::Time arrive, net::Frame f,
                        const net::LinkEndpoint* from) override {
      entries.push_back(Entry{arrive, next_seq++, std::move(f), from});
    }

    net::Link* link = nullptr;  // deliver() runs on the rx partition
    std::uint32_t src_ord = 0;  // tie-break after timestamp
    std::uint32_t dst_ord = 0;
    std::uint64_t next_seq = 0;
    std::vector<Entry> entries;
  };

  explicit World(std::uint64_t seed = 1,
                 const sim::CostModel& cost = sim::CostModel{},
                 PartitionMode mode = PartitionMode::kNone);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] PartitionMode partition_mode() const { return mode_; }

  sim::EventLoop& loop() { return loop_; }
  sim::Rng& rng() { return rng_; }
  sim::CostModel& cost() { return cost_; }
  sim::Metrics& metrics() { return metrics_; }
  sim::Tracer& tracer() { return tracer_; }
  buf::PacketPool& pool() { return pool_; }

  Host& add_host(const std::string& name) {
    const std::size_t ord = hosts_.size();
    sim::EventLoop* loop = &loop_;
    sim::Metrics* metrics = &metrics_;
    sim::Tracer* tracer = &tracer_;
    buf::PacketPool* pool = &pool_;
    if (mode_ != PartitionMode::kNone) {
      parts_.push_back(std::make_unique<Partition>(shard_seed(1, ord)));
      Partition& p = *parts_.back();
      // Disjoint id ranges keep packet ids globally unique across shards
      // without coordination, identically under both sharded executors.
      p.tracer.set_id_base(static_cast<std::uint64_t>(ord + 1) << 40);
      metrics = &p.metrics;
      tracer = &p.tracer;
      pool = &p.pool;
      if (mode_ == PartitionMode::kPartitioned) loop = &p.loop;
    }
    hosts_.push_back(std::make_unique<Host>(*loop, cost_, *metrics, name));
    hosts_.back()->cpu().set_tracer(tracer, static_cast<int>(ord));
    hosts_.back()->set_pool(pool);
    return *hosts_.back();
  }

  net::Link& add_link(net::LinkSpec spec) {
    if (mode_ != PartitionMode::kNone) {
      throw std::logic_error(
          "sharded worlds wire links with add_duplex_link (the link must "
          "know its transmit-side partition)");
    }
    links_.push_back(std::make_unique<net::Link>(loop_, rng_, std::move(spec)));
    links_.back()->bind_metrics(&metrics_);
    links_.back()->bind_tracer(&tracer_);
    return *links_.back();
  }
  net::Link& add_ethernet() { return add_link(net::LinkSpec::ethernet10()); }
  net::Link& add_an1() { return add_link(net::LinkSpec::an1()); }

  // An inter-host connection in a sharded world is a pair of directed
  // half-links: transmit-side state (channel occupancy, fault RNG draws,
  // histograms) is owned by the sender's partition, and in kPartitioned
  // mode deliveries to the other partition go through a mailbox. Each
  // half-link draws faults from its own private RNG stream so outcomes
  // are identical under both executors. Also usable in kNone worlds.
  struct DuplexLink {
    net::Link* forward = nullptr;  // a -> b
    net::Link* reverse = nullptr;  // b -> a
  };
  DuplexLink add_duplex_link(Host& a, Host& b, const net::LinkSpec& spec);

  hw::LanceNic& attach_lance(Host& host, net::Link& link, net::Ipv4Addr ip,
                             int prefix_len = 24) {
    auto mac = next_mac();
    auto nic = std::make_unique<hw::LanceNic>(host.cpu(), link, mac,
                                              host.name() + ".lance");
    auto& ref = *nic;
    ref.set_pool(host.pool() != nullptr ? host.pool() : &pool_);
    nics_.push_back(std::move(nic));
    host.add_interface(Host::Interface{&ref, ip, prefix_len});
    return ref;
  }

  hw::An1Nic& attach_an1(Host& host, net::Link& link, net::Ipv4Addr ip,
                         int prefix_len = 24) {
    auto mac = next_mac();
    auto nic = std::make_unique<hw::An1Nic>(host.cpu(), link, mac,
                                            host.name() + ".an1");
    auto& ref = *nic;
    ref.set_pool(host.pool() != nullptr ? host.pool() : &pool_);
    nics_.push_back(std::move(nic));
    host.add_interface(Host::Interface{&ref, ip, prefix_len});
    return ref;
  }

  // Duplex wiring: the NIC transmits on `tx` (its constructor attaches it
  // there) and must additionally listen on `rx`.
  hw::LanceNic& attach_lance(Host& host, net::Link& tx, net::Link& rx,
                             net::Ipv4Addr ip, int prefix_len = 24) {
    auto& ref = attach_lance(host, tx, ip, prefix_len);
    rx.attach(&ref);
    return ref;
  }
  hw::An1Nic& attach_an1(Host& host, net::Link& tx, net::Link& rx,
                         net::Ipv4Addr ip, int prefix_len = 24) {
    auto& ref = attach_an1(host, tx, ip, prefix_len);
    rx.attach(&ref);
    return ref;
  }

  [[nodiscard]] sim::Time now() const {
    if (mode_ != PartitionMode::kPartitioned || parts_.empty()) {
      return loop_.now();
    }
    sim::Time t = parts_.front()->loop.now();
    for (const auto& p : parts_) t = std::min(t, p->loop.now());
    return t;
  }
  std::uint64_t run() {
    if (mode_ == PartitionMode::kPartitioned) return run_parallel(1);
    if (mode_ == PartitionMode::kShardedSerial) {
      return run_serial(sim::EventLoop::kForever);
    }
    return loop_.run();
  }
  std::uint64_t run_until(sim::Time t) {
    if (mode_ == PartitionMode::kPartitioned) return run_parallel(1, t);
    if (mode_ == PartitionMode::kShardedSerial) return run_serial(t);
    return loop_.run_until(t);
  }
  std::uint64_t run_for(sim::Time d) { return run_until(now() + d); }

  // Conservative parallel execution of a kPartitioned world on `threads`
  // total threads (the caller participates, so threads=1 spawns none).
  // Simulated results are bit-identical at any thread count. Lookahead is
  // the minimum propagation delay over all cross-partition links: a frame
  // sent in window [W, end) arrives no earlier than W + propagation >= end,
  // so partitions never need mid-window communication.
  std::uint64_t run_parallel(int threads,
                             sim::Time until = sim::EventLoop::kForever);

  std::vector<std::unique_ptr<Host>>& hosts() { return hosts_; }
  [[nodiscard]] std::size_t host_ordinal(const Host& h) const {
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      if (hosts_[i].get() == &h) return i;
    }
    throw std::logic_error("host is not part of this world");
  }

  // Shard accessors: the host's shard in sharded modes, the world-global
  // object in kNone mode. Protocol organizations use these instead of the
  // global rng()/metrics() so their draws stay partition-local.
  sim::Rng& rng_for(Host& h) {
    return mode_ == PartitionMode::kNone ? rng_
                                         : parts_[host_ordinal(h)]->rng;
  }
  sim::Metrics& metrics_for(Host& h) {
    return mode_ == PartitionMode::kNone ? metrics_
                                         : parts_[host_ordinal(h)]->metrics;
  }
  sim::Tracer& tracer_for(Host& h) {
    return mode_ == PartitionMode::kNone ? tracer_
                                         : parts_[host_ordinal(h)]->tracer;
  }
  buf::PacketPool& pool_for(Host& h) {
    return mode_ == PartitionMode::kNone ? pool_
                                         : parts_[host_ordinal(h)]->pool;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Partition>>& partitions()
      const {
    return parts_;
  }

  // ---- Live telemetry --------------------------------------------------
  // Executor introspection counters, cheap enough to maintain always
  // (plain uint64 adds on the barrier path; zero per-event cost). Windows
  // and mailbox counts are simulated-deterministic; the *_wall_ns fields
  // are host wall-clock and only maintained while telemetry is enabled.
  struct ExecStats {
    std::uint64_t windows = 0;            // barrier windows executed
    std::uint64_t lookahead_ns = 0;       // lookahead in use (0 until run)
    std::uint64_t mailbox_entries = 0;    // cross-host frames drained
    std::uint64_t mailbox_depth_hw = 0;   // max per-link depth at any drain
    std::uint64_t window_wall_ns = 0;     // wall time inside window barriers
    std::vector<std::uint64_t> part_busy_ns;   // per-partition wall busy
    std::vector<std::uint64_t> part_stall_ns;  // window wall - busy
  };
  [[nodiscard]] const ExecStats& exec_stats() const { return exec_; }

  // Turn on the time-series sampler and register the world's built-in
  // probes: per-loop timer population / executed / cancels, per-pool
  // resident bytes and loans outstanding, world-level packet and sweep
  // counters, and (in sharded modes) the executor window/mailbox series
  // plus per-partition wall-clock busy/stall. Call after the topology is
  // built (hosts and links wired). Sampling is driven from the event-loop
  // tick hook in kNone mode and from the window barrier in sharded modes;
  // neither schedules events, so enabling telemetry leaves the simulation
  // bit-identical. Scenario layers add their own probes via telemetry().
  void enable_telemetry(const sim::TelemetryConfig& cfg);
  sim::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const sim::Telemetry& telemetry() const { return telemetry_; }

  // Global metrics plus every shard, summed field-wise. Gauge/high-water
  // fields become sums over shards -- not a true global high-water, but
  // deterministic and identical across executors, which is what the
  // differential fingerprint needs.
  [[nodiscard]] sim::Metrics aggregate_metrics() const;

  // Simulated-CPU profile across all hosts: per-component nanoseconds as
  // charged by the cost model, attributed via ProfileScope. The components
  // of each host sum exactly to that host CPU's busy_ns().
  [[nodiscard]] std::string profile_dump_json() const;
  // Folded-stack form ("host;component <ns>" per line) consumable by
  // standard flamegraph tooling (flamegraph.pl / inferno / speedscope).
  [[nodiscard]] std::string profile_folded() const;
  bool write_profile_folded(const std::string& path) const;

 private:
  net::MacAddr next_mac() {
    return net::MacAddr::from_index(next_mac_index_++, 0);
  }

  // Deterministic shard-seed derivation: kind 1 = host RNG streams,
  // kind 2 = per-link fault RNG streams. Ordinals are assigned by
  // construction order, which both executors share.
  [[nodiscard]] std::uint64_t shard_seed(std::uint64_t kind,
                                         std::uint64_t ordinal) const {
    return seed_ + kind * 0x9E3779B97F4A7C15ull +
           ordinal * 0xBF58476D1CE4E5B9ull;
  }

  net::Link& add_half_link(Host& tx, Host& rx, const net::LinkSpec& spec);
  // Move all pending mailbox entries into their destination loops, in
  // (arrive, src ordinal, per-link seq) order per destination.
  void drain_mailboxes();
  // Minimum propagation over all mailboxed links, clamped to >= 1 ns.
  [[nodiscard]] sim::Time mailbox_lookahead() const;
  // Windowed execution of a kShardedSerial world on the global loop (the
  // serial reference the parallel executor is differentially checked
  // against). Falls back to a plain run when no cross-host links exist.
  std::uint64_t run_serial(sim::Time until);

  sim::EventLoop loop_;
  sim::CostModel cost_;
  sim::Metrics metrics_;
  sim::Tracer tracer_;
  sim::Rng rng_;
  buf::PacketPool pool_;
  std::uint64_t seed_;
  PartitionMode mode_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<sim::Rng>> link_rngs_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<hw::Nic>> nics_;
  std::unique_ptr<WorkerPool> workers_;
  int worker_threads_ = 0;
  std::uint16_t next_mac_index_ = 1;
  sim::Telemetry telemetry_;
  ExecStats exec_;
};

}  // namespace ulnet::os
