// The simulated world: event loop, cost model, hosts, links, NICs.
//
// Owns every simulation object; benches and tests construct one World per
// experiment, wire hosts to links, install a protocol organization, and run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "buf/packet_pool.h"
#include "hw/nic.h"
#include "net/link.h"
#include "os/host.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace ulnet::os {

class World {
 public:
  explicit World(std::uint64_t seed = 1,
                 const sim::CostModel& cost = sim::CostModel{})
      : cost_(cost), rng_(seed) {
    loop_.bind_metrics(&metrics_);
    pool_.bind_metrics(&metrics_);
  }
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::EventLoop& loop() { return loop_; }
  sim::Rng& rng() { return rng_; }
  sim::CostModel& cost() { return cost_; }
  sim::Metrics& metrics() { return metrics_; }
  sim::Tracer& tracer() { return tracer_; }
  buf::PacketPool& pool() { return pool_; }

  Host& add_host(const std::string& name) {
    hosts_.push_back(std::make_unique<Host>(loop_, cost_, metrics_, name));
    hosts_.back()->cpu().set_tracer(&tracer_,
                                    static_cast<int>(hosts_.size() - 1));
    hosts_.back()->set_pool(&pool_);
    return *hosts_.back();
  }

  net::Link& add_link(net::LinkSpec spec) {
    links_.push_back(std::make_unique<net::Link>(loop_, rng_, std::move(spec)));
    links_.back()->bind_metrics(&metrics_);
    links_.back()->bind_tracer(&tracer_);
    return *links_.back();
  }
  net::Link& add_ethernet() { return add_link(net::LinkSpec::ethernet10()); }
  net::Link& add_an1() { return add_link(net::LinkSpec::an1()); }

  hw::LanceNic& attach_lance(Host& host, net::Link& link, net::Ipv4Addr ip,
                             int prefix_len = 24) {
    auto mac = next_mac();
    auto nic = std::make_unique<hw::LanceNic>(host.cpu(), link, mac,
                                              host.name() + ".lance");
    auto& ref = *nic;
    ref.set_pool(&pool_);
    nics_.push_back(std::move(nic));
    host.add_interface(Host::Interface{&ref, ip, prefix_len});
    return ref;
  }

  hw::An1Nic& attach_an1(Host& host, net::Link& link, net::Ipv4Addr ip,
                         int prefix_len = 24) {
    auto mac = next_mac();
    auto nic = std::make_unique<hw::An1Nic>(host.cpu(), link, mac,
                                            host.name() + ".an1");
    auto& ref = *nic;
    ref.set_pool(&pool_);
    nics_.push_back(std::move(nic));
    host.add_interface(Host::Interface{&ref, ip, prefix_len});
    return ref;
  }

  [[nodiscard]] sim::Time now() const { return loop_.now(); }
  std::uint64_t run() { return loop_.run(); }
  std::uint64_t run_until(sim::Time t) { return loop_.run_until(t); }
  std::uint64_t run_for(sim::Time d) { return loop_.run_until(now() + d); }

  std::vector<std::unique_ptr<Host>>& hosts() { return hosts_; }

  // Simulated-CPU profile across all hosts: per-component nanoseconds as
  // charged by the cost model, attributed via ProfileScope. The components
  // of each host sum exactly to that host CPU's busy_ns().
  [[nodiscard]] std::string profile_dump_json() const;
  // Folded-stack form ("host;component <ns>" per line) consumable by
  // standard flamegraph tooling (flamegraph.pl / inferno / speedscope).
  [[nodiscard]] std::string profile_folded() const;
  bool write_profile_folded(const std::string& path) const;

 private:
  net::MacAddr next_mac() {
    return net::MacAddr::from_index(next_mac_index_++, 0);
  }

  sim::EventLoop loop_;
  sim::CostModel cost_;
  sim::Metrics metrics_;
  sim::Tracer tracer_;
  sim::Rng rng_;
  buf::PacketPool pool_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<hw::Nic>> nics_;
  std::uint16_t next_mac_index_ = 1;
};

}  // namespace ulnet::os
