// Lightweight semaphore connecting the kernel-resident network I/O module to
// the protocol library's service thread (paper Section 3.2: "network packet
// arrival notification is done via a lightweight semaphore that a library
// thread is waiting on").
//
// Counting semantics with a single registered waiter. A signal while no
// waiter is registered accumulates; a wait while the count is positive fires
// immediately without a kernel sleep (the cheap path that makes notification
// batching effective).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/cpu.h"
#include "sim/histogram.h"

namespace ulnet::os {

class Semaphore {
 public:
  using WaitFn = std::function<void(sim::TaskCtx&)>;

  Semaphore(sim::Cpu& cpu, sim::SpaceId waiter_space)
      : cpu_(cpu), waiter_space_(waiter_space) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Kernel side: charge the signal cost to the running task; if a waiter is
  // blocked, schedule its wakeup at task completion.
  void signal(sim::TaskCtx& ctx) {
    ctx.charge(cpu_.cost().semaphore_signal);
    cpu_.metrics().semaphore_signals++;
    cpu_.trace(sim::TraceEventType::kSemSignal, waiter_space_, count_ + 1);
    count_++;
    last_signal_at_ = ctx.now();
    if (drop_next_wakeup_) {
      // Fault injection: the signal happened (count moved, cost charged)
      // but the wakeup never reaches the waiter -- the lost-notification
      // failure mode that the library's re-poll timer exists to survive.
      drop_next_wakeup_ = false;
      wakeups_dropped_++;
      cpu_.metrics().wakeups_dropped++;
      return;
    }
    maybe_wake(ctx);
  }

  // Optional signal->wakeup latency histogram (owned by the channel's
  // module); records the gap between the most recent signal and the waiter
  // actually running, covering both the blocked and the already-signalled
  // fast path.
  void bind_wakeup_hist(sim::Histogram* h) { wakeup_hist_ = h; }

  // Arm the lost-wakeup fault: the next signal's wakeup is swallowed.
  void drop_next_wakeup() { drop_next_wakeup_ = true; }
  [[nodiscard]] std::uint64_t wakeups_dropped() const {
    return wakeups_dropped_;
  }

  // Library side: run `fn` (in the waiter's space) once the count is
  // positive; consumes one count. Only one waiter may be pending.
  void wait(WaitFn fn) {
    waiter_ = std::move(fn);
    if (count_ > 0) {
      // Already-signalled fast path: no kernel sleep happened, only the
      // user-level thread dispatch is paid.
      dispatch_waiter(/*blocked=*/false);
    }
  }

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] bool has_waiter() const { return waiter_.has_value(); }

 private:
  // Both deferred hops below capture `this`, but the semaphore lives inside
  // a channel that can be torn down before they fire (a library releases the
  // channel -- or the registry reclaims it from a dead client -- while a
  // wakeup is in flight). Each hop therefore carries a weak token and turns
  // into a no-op if the semaphore died in the meantime: the waiter it would
  // have woken is gone with the channel, so there is nothing to deliver.
  void maybe_wake(sim::TaskCtx& ctx) {
    if (!waiter_ || count_ <= 0) return;
    cpu_.loop().schedule_at(ctx.now(),
                            [this, alive = std::weak_ptr<void>(alive_)] {
                              if (alive.expired()) return;
                              dispatch_waiter(/*blocked=*/true);
                            });
  }

  void dispatch_waiter(bool blocked) {
    if (!waiter_ || count_ <= 0) return;  // re-check at fire time
    count_--;
    WaitFn fn = std::move(*waiter_);
    waiter_.reset();
    const sim::Time sig_at = last_signal_at_;
    cpu_.submit(waiter_space_, sim::Prio::kNormal,
                [this, alive = std::weak_ptr<void>(alive_),
                 fn = std::move(fn), blocked, sig_at](sim::TaskCtx& tctx) {
                  if (alive.expired()) return;
                  const auto& cost = cpu_.cost();
                  if (blocked) {
                    tctx.charge(cost.kernel_wakeup);
                    cpu_.metrics().semaphore_wakeups++;
                    cpu_.trace(sim::TraceEventType::kSemWakeup,
                               waiter_space_);
                  }
                  tctx.charge(cost.uthread_dispatch);
                  if (wakeup_hist_ != nullptr && tctx.now() >= sig_at) {
                    wakeup_hist_->record(tctx.now() - sig_at);
                  }
                  fn(tctx);
                });
  }

  sim::Cpu& cpu_;
  sim::SpaceId waiter_space_;
  // Lifetime token for the deferred wakeup hops (see maybe_wake).
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
  int count_ = 0;
  std::optional<WaitFn> waiter_;
  sim::Histogram* wakeup_hist_ = nullptr;
  sim::Time last_signal_at_ = 0;
  bool drop_next_wakeup_ = false;
  std::uint64_t wakeups_dropped_ = 0;
};

}  // namespace ulnet::os
