#include "os/kernel.h"

namespace ulnet::os {

PortId Kernel::port_allocate(sim::SpaceId owner) {
  PortId id = next_port_++;
  ports_.emplace(id, Port{owner, {owner}});
  return id;
}

void Kernel::port_destroy(PortId port) { ports_.erase(port); }

void Kernel::port_insert_send_right(PortId port, sim::SpaceId space) {
  auto it = ports_.find(port);
  if (it != ports_.end()) it->second.send_rights.insert(space);
}

void Kernel::port_remove_send_right(PortId port, sim::SpaceId space) {
  auto it = ports_.find(port);
  if (it != ports_.end()) it->second.send_rights.erase(space);
}

bool Kernel::port_has_send_right(PortId port, sim::SpaceId space) const {
  auto it = ports_.find(port);
  return it != ports_.end() && it->second.send_rights.contains(space);
}

RegionId Kernel::region_create(std::size_t bytes) {
  RegionId id = next_region_++;
  regions_.emplace(id, Region{bytes, {sim::kKernelSpace}});
  return id;
}

void Kernel::region_map(RegionId region, sim::SpaceId space) {
  auto it = regions_.find(region);
  if (it != regions_.end()) it->second.mapped.insert(space);
}

void Kernel::region_unmap(RegionId region, sim::SpaceId space) {
  auto it = regions_.find(region);
  if (it != regions_.end()) it->second.mapped.erase(space);
}

void Kernel::region_destroy(RegionId region) { regions_.erase(region); }

bool Kernel::region_mapped(RegionId region, sim::SpaceId space) const {
  auto it = regions_.find(region);
  return it != regions_.end() && it->second.mapped.contains(space);
}

std::size_t Kernel::region_size(RegionId region) const {
  auto it = regions_.find(region);
  return it == regions_.end() ? 0 : it->second.bytes;
}

void Kernel::ipc_send(sim::TaskCtx& ctx, sim::SpaceId dst_space,
                      std::size_t bytes, sim::Cpu::TaskFn handler) {
  const auto& cost = cpu_.cost();
  metrics_.ipc_messages++;
  // Send half: trap into the kernel, rights check, message copy.
  ctx.charge(cost.trap_syscall);
  metrics_.traps++;
  ctx.charge(cost.mach_ipc_oneway / 2);
  ctx.charge(static_cast<sim::Time>(bytes) * cost.mach_ipc_per_byte);
  if (bytes > 0) {
    metrics_.copies++;
    metrics_.bytes_copied += bytes;
  }
  // Receive half runs as a task in the destination space; the context
  // switch is charged by the CPU when the space changes. Dispatch at the
  // sender's accrued instant so consecutive IPCs in one task pipeline.
  cpu_.loop().schedule_at(
      ctx.now(), [this, dst_space, h = std::move(handler)]() mutable {
        cpu_.submit(dst_space, sim::Prio::kNormal,
                    [this, h = std::move(h)](sim::TaskCtx& rctx) {
                      rctx.charge(cpu_.cost().mach_ipc_oneway / 2);
                      h(rctx);
                    });
      });
}

void Kernel::ipc_send_ool(sim::TaskCtx& ctx, sim::SpaceId dst_space,
                          std::size_t bytes, sim::Cpu::TaskFn handler) {
  const auto& cost = cpu_.cost();
  metrics_.ipc_messages++;
  // Send half: trap, rights check, inline OOL descriptor (not the payload).
  ctx.charge(cost.trap_syscall);
  metrics_.traps++;
  ctx.charge(cost.mach_ipc_oneway / 2);
  constexpr std::size_t kOolDescriptorBytes = 16;
  ctx.charge(static_cast<sim::Time>(kOolDescriptorBytes) *
             cost.mach_ipc_per_byte);
  if (bytes > 0) {
    ctx.charge(cost.page_remap);
    metrics_.page_remaps++;
    metrics_.payload_bytes_elided += bytes;
  }
  cpu_.loop().schedule_at(
      ctx.now(), [this, dst_space, h = std::move(handler)]() mutable {
        cpu_.submit(dst_space, sim::Prio::kNormal,
                    [this, h = std::move(h)](sim::TaskCtx& rctx) {
                      rctx.charge(cpu_.cost().mach_ipc_oneway / 2);
                      h(rctx);
                    });
      });
}

void Kernel::donate_bytes(sim::TaskCtx& ctx, std::size_t bytes) {
  ctx.charge(cpu_.cost().page_remap);
  metrics_.page_remaps++;
  metrics_.payload_bytes_elided += bytes;
}

void Kernel::copy_bytes(sim::TaskCtx& ctx, std::size_t bytes,
                        bool remap_eligible) {
  const auto& cost = cpu_.cost();
  if (remap_eligible && bytes >= cost.remap_threshold) {
    ctx.charge(cost.page_remap);
    metrics_.page_remaps++;
  } else {
    ctx.charge(static_cast<sim::Time>(bytes) * cost.copy_per_byte);
    metrics_.copies++;
    metrics_.bytes_copied += bytes;
  }
}

}  // namespace ulnet::os
