#include "api/adversary.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "api/workloads.h"
#include "hw/nic.h"
#include "proto/wire.h"

namespace ulnet::api {

const char* to_string(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kHoarder: return "hoarder";
    case AdversaryKind::kStarver: return "starver";
    case AdversaryKind::kForger: return "forger";
    case AdversaryKind::kFlooder: return "flooder";
    case AdversaryKind::kSpammer: return "spammer";
  }
  return "?";
}

core::NetIoModule::TenantPolicy default_policy() {
  core::NetIoModule::TenantPolicy p;
  p.enabled = false;  // the scenario flips it on when cfg.policing is set
  // Two full AN1 rings (conn + raw channel) plus slack: an honest tenant
  // never reaches this, a hoarder that also stops reposting does.
  p.ring_slot_quota = 400;
  // Well above an honest library's transient in-drain holdings, well below
  // one TCP window of hoarded segments.
  p.loan_budget = 32;
  // No default rate cap: honest tenants run at link speed. The scenario
  // provisions the attacker's space individually (set_space_tx_rate).
  p.tx_rate_bps = 0;
  p.tx_burst_bytes = 16 * 1024;
  p.forgery_strike_limit = 8;
  return p;
}

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Shared mutable state for the attack machinery (kept on the heap so the
// scheduled lambdas outlive the scope that armed them).
struct AttackState {
  bool stop = false;
  SocketId asink_sock = kInvalidSocket;   // asink's side of the feed stream
  std::size_t fed = 0;                    // bytes asink streamed so far
  core::RawChannel flood;                 // flooder's raw channel (id != 0 when open)
  std::uint64_t forge_refused = 0;
  std::uint64_t flood_sent = 0;
  std::uint64_t flood_policed = 0;
  bool peer_closed = false;
  std::string peer_close_reason;
};

}  // namespace

ByzantineReport run_byzantine_scenario(const ByzantineScenarioConfig& cfg) {
  Testbed bed(OrgType::kUserLevel, cfg.link, cfg.seed);
  os::World& world = bed.world();
  const AdversaryKind kind = cfg.attacker;

  // Zero-copy receive everywhere: the hoarder's whole attack surface is the
  // loan table, and the victim exercises the same path it must keep using.
  bed.user_org_a()->set_zero_copy(true);
  bed.user_org_b()->set_zero_copy(true);
  proto::TcpConfig zc = bed.app_a().tcp_config();
  zc.rx_byref = true;
  zc.tx_gather = true;
  bed.app_a().set_tcp_config(zc);
  bed.app_b().set_tcp_config(zc);

  core::UserLevelApp& attacker = bed.user_org_a()->add_app_impl("attacker");
  core::UserLevelApp& asink = bed.user_org_b()->add_app_impl("asink");
  attacker.set_tcp_config(zc);
  asink.set_tcp_config(zc);

  core::NetIoModule& na = bed.user_org_a()->netio(0);
  core::NetIoModule& nb = bed.user_org_b()->netio(0);
  if (cfg.policing) {
    core::NetIoModule::TenantPolicy pol = cfg.policy;
    pol.enabled = true;
    na.set_tenant_policy(pol);
    nb.set_tenant_policy(pol);
    // The attacker's provisioned SLA: a fraction of the link so a flood is
    // clipped to its share. Honest tenants stay unprovisioned (unlimited).
    const std::uint64_t sla =
        cfg.link == LinkType::kAn1 ? 8'000'000 : 2'000'000;
    na.set_space_tx_rate(attacker.app_space(), sla);
  }

  if (cfg.telemetry_cadence > 0) {
    sim::TelemetryConfig tcfg;
    tcfg.cadence = cfg.telemetry_cadence;
    world.enable_telemetry(tcfg);
    // Host A is where the attacker and the bulk sender share the module, so
    // its counters and the two tenants' demand/occupancy series are the
    // whole isolation story: attacker demand climbing while victim demand
    // keeps climbing too is fairness; victim demand flattening is a breach.
    na.register_telemetry(world.telemetry(), "netio_a");
    na.register_tenant_telemetry(world.telemetry(), "tenant.attacker",
                                 attacker.app_space());
    na.register_tenant_telemetry(world.telemetry(), "tenant.victim",
                                 bed.user_app_a()->app_space());
  }

  // Wire tap: count frames carrying the forged TCP source port. The
  // template check is the only barrier between a forger and the wire, so
  // this count must stay zero whether or not policing is on.
  std::uint64_t forged_on_wire = 0;
  const std::size_t lh = cfg.link == LinkType::kAn1 ? net::An1Header::kSize
                                                    : net::EthHeader::kSize;
  bed.link().tap = [&forged_on_wire, lh, link = cfg.link](const net::Frame& f) {
    const buf::ByteView b(f.bytes.data(), f.bytes.size());
    if (b.size() < lh + 24) return;
    std::uint16_t ethertype = 0;
    if (link == LinkType::kAn1) {
      if (auto h = net::An1Header::parse(b)) ethertype = h->ethertype;
    } else {
      if (auto h = net::EthHeader::parse(b)) ethertype = h->ethertype;
    }
    if (ethertype != net::kEtherTypeIp) return;
    if (b[lh + 9] != proto::kProtoTcp) return;
    if (buf::rd16(b, lh + 20) == core::UserLevelApp::kForgedSrcPort) {
      forged_on_wire++;
    }
  };

  // The victim: a verified stream that must deliver every byte no matter
  // what the attacker does.
  BulkTransfer bulk(bed, cfg.bulk_bytes, cfg.write_size, 5001,
                    /*verify_data=*/true);
  bulk.start();

  // Optional latency probe between the same honest apps: attacks on shared
  // host resources (CPU spam, link floods) show up as inflated RTTs even
  // when the bulk stream still completes. Deferred to the attack onset so
  // every round is measured under pressure, not before it.
  std::optional<PingPong> rtt_probe;
  if (cfg.measure_rtt) {
    rtt_probe.emplace(bed, cfg.rtt_size, cfg.rtt_rounds, 5002);
    world.loop().schedule_in(cfg.attack_start,
                             [probe = &*rtt_probe] { probe->start(); });
  }

  auto st = std::make_shared<AttackState>();

  // Attack topology: asink (host B) listens; the attacker (host A)
  // connects, which gives it a fully bound channel to misuse. For the
  // inbound attacks (hoarder/starver) asink feeds the attacker a paced
  // trickle -- enough to bleed loans and buffer credits, small enough that
  // legitimate contention cannot explain a victim collapse.
  asink.run_app([&asink, st](sim::TaskCtx&) {
    asink.listen(7001, [&asink, st](SocketId id) {
      SocketEvents evs;
      evs.on_established = [st, id] { st->asink_sock = id; };
      evs.on_readable = [&asink, id](std::size_t) {
        asink.recv(id, std::numeric_limits<std::size_t>::max());
      };
      evs.on_closed = [&asink, id, st](const std::string& reason) {
        st->peer_close_reason = reason;
        st->peer_closed = true;
        st->asink_sock = kInvalidSocket;
        asink.run_app([&asink, id](sim::TaskCtx&) { asink.release(id); });
      };
      return evs;
    });
  });
  world.loop().schedule_in(100 * sim::kMs, [&attacker, &bed] {
    attacker.run_app([&attacker, &bed](sim::TaskCtx&) {
      SocketEvents evs;
      // The starver still reads (its damage is withheld buffer credits, not
      // a closed window); the hoarder's segments never reach TCP anyway.
      evs.on_readable = [&attacker](std::size_t) {};
      attacker.connect(bed.ip_b(), 7001, std::move(evs), [](SocketId) {});
    });
  });
  if (kind == AdversaryKind::kFlooder) {
    const net::MacAddr dst = nb.nic().mac();
    world.loop().schedule_in(100 * sim::kMs, [&attacker, st, dst] {
      attacker.run_app([&attacker, st, dst](sim::TaskCtx& ctx) {
        attacker.open_raw(ctx, 0, 0x7a7a, dst,
                          [](sim::TaskCtx&, buf::Bytes) {},
                          [st](core::RawChannel rc) { st->flood = rc; });
      });
    });
  }

  // Seeded onset: the byzantine fault kinds ride the same FaultSchedule /
  // ChaosController machinery as kills and stalls, so *when* within the
  // window each attack starts varies per seed while the fault census stays
  // part of the reproducible output. The controller's repoll safety net on
  // the attacker also exercises the quota-bounded replenish path.
  ChaosController chaos(bed, 20 * sim::kMs);
  const int attacker_idx = chaos.add_target(attacker);
  sim::FaultSchedule::GenSpec spec;
  spec.start = cfg.attack_start;
  spec.horizon = cfg.attack_start + cfg.attack_span;
  spec.targets = 1;
  spec.byz_target = attacker_idx;
  spec.forge_burst = cfg.forge_burst;
  spec.flood_burst = cfg.flood_burst;
  spec.spam_burst = cfg.spam_burst;
  switch (kind) {
    case AdversaryKind::kNone: break;
    case AdversaryKind::kHoarder: spec.loan_hoards = 1; break;
    case AdversaryKind::kStarver: spec.refill_starves = 1; break;
    case AdversaryKind::kForger: spec.template_forgeries = 4; break;
    case AdversaryKind::kFlooder: spec.tx_floods = 4; break;
    case AdversaryKind::kSpammer: spec.wakeup_spams = 4; break;
  }
  const std::size_t flood_bytes = cfg.flood_frame_bytes;
  auto flood_once = [st, &bed, flood_bytes](sim::TaskCtx& ctx,
                                            std::uint64_t burst) {
    if (st->flood.id == core::kInvalidChannel) return;
    buf::PacketPool* pool = bed.host_a().pool();
    for (std::uint64_t i = 0; i < burst; ++i) {
      buf::Bytes junk = pool != nullptr ? pool->acquire(flood_bytes)
                                        : buf::Bytes{};
      junk.resize(flood_bytes, 0xa5);
      if (st->flood.send(ctx, std::move(junk))) {
        st->flood_sent++;
      } else {
        st->flood_policed++;
      }
    }
  };
  chaos.set_flood(attacker_idx, flood_once);
  chaos.arm(sim::FaultSchedule::generate(cfg.seed, spec));

  // Sustained pressure: one attack burst (and, for the inbound attacks, one
  // paced feed block) every interval until the victim stream completes. The
  // one-shot schedule above varies the onset; this loop supplies the volume
  // a real abuser would.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&, st, pump, kind]() {
    if (st->stop) return;
    if (kind == AdversaryKind::kHoarder || kind == AdversaryKind::kStarver) {
      if (st->asink_sock != kInvalidSocket && !asink.dead()) {
        asink.run_app([&asink, st](sim::TaskCtx&) {
          if (st->asink_sock == kInvalidSocket) return;
          const std::size_t space = asink.send_space(st->asink_sock);
          const std::size_t n = std::min<std::size_t>(8 * 1024, space);
          if (n > 0) {
            st->fed += asink.send(st->asink_sock, payload_bytes(st->fed, n));
          }
        });
      }
    } else if (kind == AdversaryKind::kForger && !attacker.dead()) {
      attacker.run_app([&attacker, st, burst = cfg.forge_burst](
                           sim::TaskCtx& ctx) {
        st->forge_refused += static_cast<std::uint64_t>(attacker.forge_sends(
            ctx, static_cast<int>(burst),
            core::UserLevelApp::kForgedSrcPort));
      });
    } else if (kind == AdversaryKind::kFlooder && !attacker.dead()) {
      attacker.run_app([flood_once, burst = cfg.flood_burst](
                           sim::TaskCtx& ctx) { flood_once(ctx, burst); });
    } else if (kind == AdversaryKind::kSpammer && !attacker.dead()) {
      attacker.run_app([&attacker, burst = cfg.spam_burst](sim::TaskCtx& ctx) {
        attacker.spam_wakeups(ctx, static_cast<int>(burst));
      });
    }
    world.loop().schedule_in(cfg.attack_interval, [pump] { (*pump)(); });
  };
  if (kind != AdversaryKind::kNone) {
    world.loop().schedule_in(cfg.attack_start, [pump] { (*pump)(); });
  }

  while (world.now() < cfg.deadline &&
         (!bulk.finished() || (rtt_probe && !rtt_probe->finished()))) {
    world.run_for(100 * sim::kMs);
  }
  st->stop = true;

  ByzantineReport rep;
  rep.attacker = kind;
  rep.policed = cfg.policing;
  rep.hoarded_peak = attacker.hoarded_count();

  if (cfg.kill_attacker && kind != AdversaryKind::kNone) {
    attacker.run_app([&attacker](sim::TaskCtx& ctx) { attacker.kill(ctx); });
  }
  // Let the kill notification, the registry sweep and the last
  // retransmissions settle.
  world.run_for(2 * sim::kSec);
  // The pump keeps itself alive by capturing its own shared_ptr; break the
  // cycle now that no rescheduled firing can still be pending.
  *pump = nullptr;

  rep.bulk_ok = bulk.finished() && bulk.result().ok;
  rep.bulk_data_valid = bulk.result().data_valid;
  rep.victim_mbps = bulk.result().throughput_mbps();
  rep.solo_mbps = cfg.solo_mbps;
  rep.min_victim_fraction = cfg.min_victim_fraction;
  if (rtt_probe) rep.victim_rtt_us = rtt_probe->stats();
  rep.forged_frames_on_wire = forged_on_wire;
  rep.forge_refused = st->forge_refused;

  rep.send_rejects = na.counters().send_rejects + nb.counters().send_rejects;
  rep.forgery_strikes =
      na.counters().forgery_strikes + nb.counters().forgery_strikes;
  rep.tenant_quarantines =
      na.counters().tenant_quarantines + nb.counters().tenant_quarantines;
  rep.tenant_tx_policed =
      na.counters().tenant_tx_policed + nb.counters().tenant_tx_policed;
  rep.tenant_ring_quota_hits = na.counters().tenant_ring_quota_hits +
                               nb.counters().tenant_ring_quota_hits;
  rep.tenant_loan_budget_hits = na.counters().tenant_loan_budget_hits +
                                nb.counters().tenant_loan_budget_hits;

  rep.attacker_killed = attacker.dead();
  rep.attacker_channels_left =
      na.channels_of_space(attacker.app_space()).size();
  const sim::Metrics& m = world.metrics();
  rep.loans_outstanding_end = m.loans_outstanding;
  const auto& reclaim = bed.user_org_a()->registry().reclaim_stats();
  rep.loans_reclaimed = reclaim.loans_reclaimed;
  rep.channels_quarantined = reclaim.channels_quarantined;
  rep.attacker_peer_closed = st->peer_closed;
  rep.attacker_peer_close_reason = st->peer_close_reason;
  rep.fault_census = chaos.schedule().dump_json();
  if (world.telemetry().enabled()) {
    rep.telemetry = world.telemetry().summaries();
    rep.telemetry_jsonl = world.telemetry().dump_jsonl();
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, m.dump_json());
  h = fnv1a(h, na.dump_json());
  h = fnv1a(h, nb.dump_json());
  h = fnv1a(h, rep.fault_census);
  h = fnv1a(h, std::to_string(forged_on_wire));
  rep.fingerprint = h;
  return rep;
}

bool ByzantineReport::invariants_ok() const { return failure().empty(); }

std::string ByzantineReport::failure() const {
  const std::string who = to_string(attacker);
  if (!bulk_ok) {
    return "victim stream did not complete under attacker '" + who + "'";
  }
  if (!bulk_data_valid) return "victim stream corrupted under '" + who + "'";
  // Wire integrity is unconditional: the template check does not depend on
  // the policing knobs.
  if (forged_frames_on_wire != 0) {
    return "forgery breach: " + std::to_string(forged_frames_on_wire) +
           " forged frames reached the wire";
  }
  if (attacker == AdversaryKind::kForger && send_rejects == 0) {
    return "forger was never refused by the template check";
  }
  if (attacker_killed) {
    if (attacker_channels_left != 0) {
      return "dead attacker still owns " +
             std::to_string(attacker_channels_left) + " channels";
    }
    if (loans_outstanding_end != 0) {
      return "attacker hoard leaked: " +
             std::to_string(loans_outstanding_end) +
             " pool loans still outstanding after the sweep";
    }
  }
  if (policed) {
    if (attacker == AdversaryKind::kForger && tenant_quarantines == 0) {
      return "policed forger was never quarantined";
    }
    if (attacker == AdversaryKind::kForger && forgery_strikes == 0) {
      return "policed forger accumulated no strikes";
    }
    if (attacker == AdversaryKind::kHoarder && tenant_loan_budget_hits == 0 &&
        tenant_ring_quota_hits == 0) {
      return "policed hoarder never hit a loan or ring budget";
    }
    if (attacker == AdversaryKind::kFlooder && tenant_tx_policed == 0) {
      return "policed flooder was never rate-limited";
    }
    if (solo_mbps > 0 &&
        victim_mbps < min_victim_fraction * solo_mbps) {
      return "fairness breach under '" + who + "': victim at " +
             std::to_string(victim_mbps) + " Mb/s, solo " +
             std::to_string(solo_mbps) + " Mb/s (floor " +
             std::to_string(min_victim_fraction) + ")";
    }
  }
  return "";
}

}  // namespace ulnet::api
