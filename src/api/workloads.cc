#include "api/workloads.h"

#include <algorithm>
#include <limits>

namespace ulnet::api {

buf::Bytes payload_bytes(std::size_t offset, std::size_t n) {
  buf::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = payload_byte(offset + i);
  return out;
}

// ---------------------------------------------------------------------------
// BulkTransfer
// ---------------------------------------------------------------------------

BulkTransfer::BulkTransfer(Testbed& bed, std::size_t total_bytes,
                           std::size_t write_size, std::uint16_t port,
                           bool verify_data, std::size_t warmup_bytes)
    : bed_(bed),
      total_(total_bytes),
      write_size_(write_size),
      port_(port),
      verify_(verify_data),
      warmup_(total_bytes > 2 * warmup_bytes ? warmup_bytes : 0) {}

void BulkTransfer::start() {
  NetSystem& server = bed_.app_b();
  NetSystem& client = bed_.app_a();
  auto& loop = bed_.world().loop();

  server.run_app([this, &server](sim::TaskCtx&) {
    server.listen(port_, [this, &server](SocketId id) {
      server_sock_ = id;
      SocketEvents evs;
      evs.on_readable = [this, &server](std::size_t) {
        std::size_t got = 0;
        if (zc_recv_) {
          auto chunks = server.recv_zc(server_sock_,
                                       std::numeric_limits<std::size_t>::max());
          for (const buf::RxChunk& c : chunks) {
            const buf::ByteView v = c.view();
            if (verify_ && result_.data_valid) {
              for (std::size_t i = 0; i < v.size(); ++i) {
                if (v[i] != payload_byte(verified_at_ + got + i)) {
                  result_.data_valid = false;
                  break;
                }
              }
            }
            got += v.size();
          }
          server.release_chunks(chunks);
        } else {
          auto data = server.recv(server_sock_,
                                  std::numeric_limits<std::size_t>::max());
          if (verify_) {
            for (std::size_t i = 0; i < data.size(); ++i) {
              if (data[i] != payload_byte(verified_at_ + i)) {
                result_.data_valid = false;
                break;
              }
            }
          }
          got = data.size();
        }
        if (got == 0) return;
        const sim::Time now = bed_.world().now();
        if (result_.first_byte == 0 && result_.bytes_received + got > warmup_) {
          result_.first_byte = now;  // steady-state window starts here
        }
        verified_at_ += got;
        result_.bytes_received += got;
        if (result_.first_byte != 0) {
          result_.measured_bytes = result_.bytes_received - warmup_;
          result_.last_byte = now;
        }
      };
      evs.on_eof = [this, &server] { server.close(server_sock_); };
      evs.on_closed = [this](const std::string&) {
        if (result_.bytes_received >= total_) result_.ok = true;
        finished_ = true;
      };
      return evs;
    });
  });

  // Give the listener time to register (the registry/server paths involve
  // IPC) before the active open.
  loop.schedule_in(50 * sim::kMs, [this, &client] {
    client.run_app([this, &client](sim::TaskCtx&) {
      SocketEvents evs;
      evs.on_established = [this, &client] {
        client.run_app([this](sim::TaskCtx& ctx) { client_pump(ctx); });
      };
      evs.on_writable = [this, &client] {
        client.run_app([this](sim::TaskCtx& ctx) { client_pump(ctx); });
      };
      evs.on_closed = [this](const std::string& reason) {
        if (!reason.empty()) {
          result_.error = reason;
          finished_ = true;
        }
      };
      client.connect(bed_.ip_b(), port_, std::move(evs),
                     [this](SocketId id) { client_sock_ = id; });
    });
  });
}

void BulkTransfer::client_pump(sim::TaskCtx&) {
  // One write per task: blocking-write semantics, as the era's measurement
  // programs had. Whether writes coalesce into MSS segments then *emerges*
  // from the relative speeds of the application, the stack, and the wire.
  NetSystem& client = bed_.app_a();
  if (sent_ < total_) {
    const std::size_t n = std::min(write_size_, total_ - sent_);
    const std::size_t took =
        client.send(client_sock_, payload_bytes(sent_, n));
    sent_ += took;
    if (took < n) return;  // buffer full: resume on on_writable
    client.run_app([this](sim::TaskCtx& ctx) { client_pump(ctx); });
    return;
  }
  if (!close_issued_) {
    close_issued_ = true;
    client.close(client_sock_);
  }
}

BulkTransfer::Result BulkTransfer::run(sim::Time deadline) {
  start();
  auto& world = bed_.world();
  while (!finished_ && world.now() < deadline) {
    world.run_for(sim::kSec);
  }
  if (!finished_) result_.error = "deadline exceeded";
  return result_;
}

// ---------------------------------------------------------------------------
// PingPong
// ---------------------------------------------------------------------------

PingPong::PingPong(Testbed& bed, std::size_t size, int rounds,
                   std::uint16_t port)
    : bed_(bed), size_(size), rounds_(rounds), port_(port) {}

void PingPong::start() {
  NetSystem& server = bed_.app_b();
  NetSystem& client = bed_.app_a();
  auto& loop = bed_.world().loop();

  server.run_app([this, &server](sim::TaskCtx&) {
    server.listen(port_, [this, &server](SocketId id) {
      server_sock_ = id;
      SocketEvents evs;
      evs.on_readable = [this, &server](std::size_t) {
        auto data = server.recv(server_sock_,
                                std::numeric_limits<std::size_t>::max());
        server_rcvd_ += data.size();
        server_to_send_ += data.size();  // echo the same amount back
        server.run_app([this](sim::TaskCtx& ctx) { server_pump_send(ctx); });
      };
      evs.on_writable = [this, &server] {
        server.run_app([this](sim::TaskCtx& ctx) { server_pump_send(ctx); });
      };
      evs.on_eof = [this, &server] { server.close(server_sock_); };
      return evs;
    });
  });

  loop.schedule_in(50 * sim::kMs, [this, &client] {
    client.run_app([this, &client](sim::TaskCtx&) {
      SocketEvents evs;
      evs.on_established = [this, &client] {
        client.run_app([this](sim::TaskCtx& ctx) { begin_round(ctx); });
      };
      evs.on_writable = [this, &client] {
        client.run_app([this](sim::TaskCtx& ctx) { client_pump_send(ctx); });
      };
      evs.on_readable = [this, &client](std::size_t) {
        auto data = client.recv(client_sock_,
                                std::numeric_limits<std::size_t>::max());
        client_rcvd_ += data.size();
        if (client_rcvd_ >= size_) {
          rtts_us_.add(sim::to_us(bed_.world().now() - round_start_));
          done_rounds_++;
          client_rcvd_ = 0;
          if (done_rounds_ >= rounds_) {
            finished_ = true;
            client.run_app([this, &client](sim::TaskCtx&) {
              client.close(client_sock_);
            });
          } else {
            client.run_app([this](sim::TaskCtx& ctx) { begin_round(ctx); });
          }
        }
      };
      client.connect(bed_.ip_b(), port_, std::move(evs),
                     [this](SocketId id) { client_sock_ = id; });
    });
  });
}

void PingPong::begin_round(sim::TaskCtx& ctx) {
  round_start_ = bed_.world().now();
  client_sent_ = 0;
  client_pump_send(ctx);
}

void PingPong::client_pump_send(sim::TaskCtx&) {
  NetSystem& client = bed_.app_a();
  while (client_sent_ < size_) {
    const std::size_t n = size_ - client_sent_;
    const std::size_t took =
        client.send(client_sock_, payload_bytes(client_sent_, n));
    client_sent_ += took;
    if (took < n) return;
  }
}

void PingPong::server_pump_send(sim::TaskCtx&) {
  NetSystem& server = bed_.app_b();
  while (server_sent_ < server_to_send_) {
    const std::size_t n = server_to_send_ - server_sent_;
    const std::size_t took =
        server.send(server_sock_, payload_bytes(server_sent_, n));
    server_sent_ += took;
    if (took < n) return;
  }
}

double PingPong::run_mean_rtt_us(sim::Time deadline) {
  start();
  auto& world = bed_.world();
  while (!finished_ && world.now() < deadline) {
    world.run_for(sim::kSec);
  }
  return rtts_us_.empty() ? -1.0 : rtts_us_.mean();
}

// ---------------------------------------------------------------------------
// SetupProbe
// ---------------------------------------------------------------------------

SetupProbe::SetupProbe(Testbed& bed, int rounds, std::uint16_t port)
    : bed_(bed), rounds_(rounds), port_(port) {}

void SetupProbe::start() {
  NetSystem& server = bed_.app_b();
  NetSystem& client = bed_.app_a();
  auto& loop = bed_.world().loop();

  server.run_app([this, &server](sim::TaskCtx&) {
    server.listen(port_, [this, &server](SocketId id) {
      SocketEvents evs;
      evs.on_eof = [this, &server, id] { server.close(id); };
      evs.on_closed = [&server, id](const std::string&) {
        server.run_app(
            [&server, id](sim::TaskCtx&) { server.release(id); });
      };
      return evs;
    });
  });

  loop.schedule_in(50 * sim::kMs, [this, &client] {
    client.run_app([this](sim::TaskCtx& ctx) { next_round(ctx); });
  });
}

void SetupProbe::next_round(sim::TaskCtx&) {
  NetSystem& client = bed_.app_a();
  round_start_ = bed_.world().now();
  auto sock = std::make_shared<SocketId>(kInvalidSocket);
  SocketEvents evs;
  evs.on_established = [this, &client, sock] {
    setup_us_.add(sim::to_us(bed_.world().now() - round_start_));
    done_rounds_++;
    client.run_app([&client, sock](sim::TaskCtx&) { client.close(*sock); });
  };
  evs.on_closed = [this, &client, sock](const std::string& reason) {
    client.run_app([this, &client, sock, reason](sim::TaskCtx& ctx) {
      client.release(*sock);
      if (!reason.empty() || done_rounds_ >= rounds_) {
        finished_ = true;
      } else {
        next_round(ctx);
      }
    });
  };
  client.connect(bed_.ip_b(), port_, std::move(evs),
                 [sock](SocketId id) { *sock = id; });
}

double SetupProbe::run_mean_setup_us(sim::Time deadline) {
  start();
  auto& world = bed_.world();
  while (!finished_ && world.now() < deadline) {
    world.run_for(sim::kSec);
  }
  return setup_us_.empty() ? -1.0 : setup_us_.mean();
}

}  // namespace ulnet::api
