#include "api/fabric_bed.h"

#include <algorithm>
#include <cstdio>

#include "api/workloads.h"

namespace ulnet::api {

namespace {

// FNV-1a, 64-bit: stable, dependency-free digest for fingerprints.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 0xCBF29CE484222325ull;

std::uint64_t hash_trace(const sim::Tracer& t) {
  std::uint64_t h = kFnvSeed;
  h = fnv1a(h, &t, 0);  // keep signature uniform; no-op
  const std::uint64_t totals[2] = {t.recorded_total(), t.overwritten()};
  h = fnv1a(h, totals, sizeof totals);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const sim::TraceEvent& e = t.at(i);
    const std::int64_t fields[6] = {e.ts, static_cast<std::int64_t>(e.type),
                                    e.host, e.id, e.a, e.b};
    h = fnv1a(h, fields, sizeof fields);
    h = fnv1a(h, &e.trace_id, sizeof e.trace_id);
    if (e.detail != nullptr) {
      const char* d = e.detail;
      while (*d != '\0') h = fnv1a(h, d++, 1);
    }
  }
  return h;
}

}  // namespace

FabricBed::FabricBed(os::PartitionMode mode, const FabricConfig& cfg)
    : cfg_(cfg) {
  world_ = std::make_unique<os::World>(cfg.seed, sim::CostModel{}, mode);

  // The fabric path: AN1 wire rates with routed-path propagation. The
  // propagation is every mailbox's minimum, i.e. the lookahead, so windows
  // span hundreds of microseconds of simulated work per barrier.
  net::LinkSpec spec = net::LinkSpec::an1();
  spec.name = "fabric";
  spec.propagation = cfg.propagation;

  proto::TcpConfig tcfg;
  tcfg.compact_stats = cfg.compact_stats;
  // 8 KiB socket buffers bound the deliberate bufferbloat of hundreds of
  // connections sharing one link; the RTO floors sit above the resulting
  // worst-case queueing delay so no retransmission is ever spurious (the
  // same reasoning as bench_scale_conns, which pins these numbers).
  tcfg.recv_buf = 8 * 1024;
  tcfg.rto_min = 4 * sim::kSec;
  tcfg.rto_initial = 6 * sim::kSec;

  for (int p = 0; p < cfg.pairs; ++p) {
    auto pair = std::make_unique<Pair>();
    Pair& pr = *pair;
    pr.client_host = &world_->add_host("c" + std::to_string(p));
    pr.server_host = &world_->add_host("s" + std::to_string(p));

    const os::World::DuplexLink dl =
        world_->add_duplex_link(*pr.client_host, *pr.server_host, spec);
    char ip[32];
    std::snprintf(ip, sizeof ip, "10.%d.%d.1", (p >> 8) & 0xFF, p & 0xFF);
    const net::Ipv4Addr client_ip = net::Ipv4Addr::parse(ip);
    std::snprintf(ip, sizeof ip, "10.%d.%d.2", (p >> 8) & 0xFF, p & 0xFF);
    const net::Ipv4Addr server_ip = net::Ipv4Addr::parse(ip);
    world_->attach_an1(*pr.client_host, *dl.forward, *dl.reverse, client_ip);
    world_->attach_an1(*pr.server_host, *dl.reverse, *dl.forward, server_ip);

    if (cfg.chaos) {
      for (net::Link* l : {dl.forward, dl.reverse}) {
        l->faults().loss_p = 0.002;
        l->faults().dup_p = 0.001;
        l->faults().corrupt_p = 0.0005;
        // Jitter only adds delay, so arrival stays >= send + propagation
        // and the lookahead bound holds with faults on.
        l->faults().jitter_max = 100 * sim::kUs;
      }
    }

    pr.client_org =
        std::make_unique<core::UserLevelOrg>(*world_, *pr.client_host);
    pr.server_org =
        std::make_unique<core::UserLevelOrg>(*world_, *pr.server_host);
    pr.client_app = &pr.client_org->add_app_impl("cli" + std::to_string(p));
    pr.server_app = &pr.server_org->add_app_impl("srv" + std::to_string(p));
    pr.client_app->set_tcp_config(tcfg);
    pr.server_app->set_tcp_config(tcfg);

    const auto conns = static_cast<std::size_t>(cfg.conns_per_pair);
    for (core::UserLevelOrg* org : {pr.client_org.get(),
                                    pr.server_org.get()}) {
      org->registry().set_batched_handshakes(cfg.batched_handshakes);
      if (cfg.reserve_tables) {
        org->registry().reserve_tables(conns + 4);
        org->netio(0).reserve_channels(conns + 4);
        org->registry().stack().tcp().reserve_connections(conns + 4);
        world_->pool_for(org->host()).reserve_loans(64);
      }
    }
    if (cfg.reserve_tables) {
      pr.client_app->library_stack().tcp().reserve_connections(conns + 4);
      pr.server_app->library_stack().tcp().reserve_connections(conns + 4);
    }
    if (cfg.trace) {
      world_->tracer_for(*pr.client_host).set_enabled(true);
      world_->tracer_for(*pr.server_host).set_enabled(true);
    }

    pr.clients.resize(conns);
    pairs_.push_back(std::move(pair));
  }

  // After the topology: enable_telemetry snapshots the partition layout to
  // pick its sampling sources, so every host must already exist.
  if (cfg.telemetry_cadence > 0) {
    sim::TelemetryConfig tcfg2;
    tcfg2.cadence = cfg.telemetry_cadence;
    tcfg2.ring_capacity = cfg.telemetry_capacity;
    world_->enable_telemetry(tcfg2);
  }
}

FabricBed::~FabricBed() = default;

void FabricBed::start() {
  for (auto& pp : pairs_) {
    Pair& pr = *pp;
    core::UserLevelApp& server = *pr.server_app;
    core::UserLevelApp& client = *pr.client_app;

    server.run_app([this, &pr, &server](sim::TaskCtx&) {
      server.listen(kPort, [this, &pr, &server](SocketId id) {
        pr.server_conns.emplace(id, 0);
        SocketEvents evs;
        evs.on_readable = [this, &pr, &server, id](std::size_t) {
          std::size_t& got = pr.server_conns.at(id);
          buf::Bytes data =
              server.recv(id, std::numeric_limits<std::size_t>::max());
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (data[i] != payload_byte(got + i)) {
              pr.data_valid = false;
              break;
            }
          }
          got += data.size();
          pr.server_received += data.size();
        };
        evs.on_eof = [&server, id] { server.close(id); };
        evs.on_closed = [this, &pr, id](const std::string&) {
          if (pr.server_conns.at(id) < cfg_.bytes_per_conn) pr.failed = true;
          pr.server_closed++;
        };
        return evs;
      });
    });

    for (int i = 0; i < cfg_.conns_per_pair; ++i) {
      pr.client_host->loop().schedule_at(
          50 * sim::kMs + static_cast<sim::Time>(i) * cfg_.open_stagger,
          [this, &pr, &client, i] {
            client.run_app([this, &pr, &client, i](sim::TaskCtx&) {
              SocketEvents evs;
              evs.on_established = [this, &pr] {
                pr.events.push_back(
                    ConnEvent{pr.client_host->loop().now(), +1});
                if (++pr.established == cfg_.conns_per_pair) start_pumps(pr);
              };
              evs.on_writable = [this, &pr, &client, i] {
                client.run_app(
                    [this, &pr, i](sim::TaskCtx&) { pump(pr, i); });
              };
              evs.on_closed = [this, &pr](const std::string& reason) {
                pr.events.push_back(
                    ConnEvent{pr.client_host->loop().now(), -1});
                pr.client_closed++;
                if (!reason.empty()) pr.failed = true;
              };
              client.connect(
                  pr.server_host->interfaces()[0].ip, kPort, std::move(evs),
                  [&pr, i](SocketId id) {
                    pr.clients[static_cast<std::size_t>(i)].sock = id;
                  });
            });
          });
    }
  }
}

void FabricBed::start_pumps(Pair& pr) {
  for (int i = 0; i < cfg_.conns_per_pair; ++i) {
    pr.client_app->run_app([this, &pr, i](sim::TaskCtx&) { pump(pr, i); });
  }
}

void FabricBed::pump(Pair& pr, int i) {
  ClientConn& cc = pr.clients[static_cast<std::size_t>(i)];
  if (cc.sock == kInvalidSocket) return;
  if (cc.sent < cfg_.bytes_per_conn) {
    const std::size_t n =
        std::min(cfg_.write_size, cfg_.bytes_per_conn - cc.sent);
    const std::size_t took =
        pr.client_app->send(cc.sock, payload_bytes(cc.sent, n));
    cc.sent += took;
    if (took < n) return;  // buffer full: resume on on_writable
    pr.client_app->run_app([this, &pr, i](sim::TaskCtx&) { pump(pr, i); });
    return;
  }
  if (!cc.close_issued) {
    cc.close_issued = true;
    pr.client_app->close(cc.sock);
  }
}

bool FabricBed::finished() const {
  for (const auto& pp : pairs_) {
    if (pp->server_closed < cfg_.conns_per_pair) return false;
  }
  return true;
}

void FabricBed::sample_memory() {
  peak_pool_ = std::max(peak_pool_, pool_bytes_resident());
  peak_tcb_ = std::max(peak_tcb_, tcb_bytes());
}

bool FabricBed::run(int threads, sim::Time deadline) {
  if (!started_) {
    started_ = true;
    start();
  }
  os::World& w = *world_;
  const bool parallel =
      w.partition_mode() == os::PartitionMode::kPartitioned;
  while (!finished() && w.now() < deadline) {
    const sim::Time slice_end = w.now() + sim::kSec;
    events_executed_ +=
        parallel ? w.run_parallel(threads, slice_end) : w.run_until(slice_end);
    sample_memory();
  }

  // Merge the per-pair establish/close logs into the global concurrency
  // peak. Each log is written only by its own pair's host, so this merge
  // is the one place cross-pair state meets -- after execution.
  std::vector<ConnEvent> all;
  for (const auto& pp : pairs_) {
    all.insert(all.end(), pp->events.begin(), pp->events.end());
  }
  std::sort(all.begin(), all.end(), [](const ConnEvent& a, const ConnEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta < b.delta;  // close before establish at equal times
  });
  int cur = 0;
  peak_established_ = 0;
  for (const ConnEvent& e : all) {
    cur += e.delta;
    peak_established_ = std::max(peak_established_, cur);
  }

  bool ok = finished();
  const std::size_t want = cfg_.bytes_per_conn *
                           static_cast<std::size_t>(cfg_.conns_per_pair);
  for (const auto& pp : pairs_) {
    ok = ok && !pp->failed && pp->data_valid && pp->server_received == want;
  }
  return ok;
}

std::uint64_t FabricBed::handshake_sweeps() const {
  std::uint64_t total = 0;
  for (const auto& pp : pairs_) {
    total += pp->client_org->registry().handshake_sweeps();
    total += pp->server_org->registry().handshake_sweeps();
  }
  return total;
}

std::uint64_t FabricBed::handoff_lookups() const {
  std::uint64_t total = 0;
  for (const auto& pp : pairs_) {
    total += pp->client_org->registry().handoff_lookups();
    total += pp->server_org->registry().handoff_lookups();
  }
  return total;
}

std::uint64_t FabricBed::handoff_entries_scanned() const {
  std::uint64_t total = 0;
  for (const auto& pp : pairs_) {
    total += pp->client_org->registry().handoff_entries_scanned();
    total += pp->server_org->registry().handoff_entries_scanned();
  }
  return total;
}

std::size_t FabricBed::pool_bytes_resident() const {
  std::size_t total = world_->pool().resident_bytes();
  for (const auto& p : world_->partitions()) {
    total += p->pool.resident_bytes();
  }
  return total;
}

std::size_t FabricBed::tcb_bytes() const {
  std::size_t total = 0;
  for (const auto& pp : pairs_) {
    total += pp->client_app->library_stack().tcp().tcb_bytes();
    total += pp->server_app->library_stack().tcp().tcb_bytes();
    total += pp->client_org->registry().stack().tcp().tcb_bytes();
    total += pp->server_org->registry().stack().tcp().tcb_bytes();
  }
  return total;
}

std::string FabricBed::fingerprint_text() const {
  std::string t = world_->aggregate_metrics().dump_json();
  char buf[256];
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const Pair& pr = *pairs_[p];
    std::snprintf(buf, sizeof buf, "\npair%zu rx=%zu est=%d sc=%d cc=%d",
                  p, pr.server_received, pr.established, pr.server_closed,
                  pr.client_closed);
    t += buf;
    const struct {
      const char* tag;
      const proto::TcpCounters& c;
    } blocks[] = {
        {"cli", pr.client_app->library_stack().tcp().counters()},
        {"srv", pr.server_app->library_stack().tcp().counters()},
        {"creg", pr.client_org->registry().stack().tcp().counters()},
        {"sreg", pr.server_org->registry().stack().tcp().counters()},
    };
    for (const auto& b : blocks) {
      std::snprintf(
          buf, sizeof buf,
          "\n %s so=%llu si=%llu bo=%llu bi=%llu rtx=%llu to=%llu da=%llu "
          "pa=%llu ooo=%llu co=%llu ca=%llu",
          b.tag, static_cast<unsigned long long>(b.c.segments_sent),
          static_cast<unsigned long long>(b.c.segments_received),
          static_cast<unsigned long long>(b.c.bytes_sent),
          static_cast<unsigned long long>(b.c.bytes_received),
          static_cast<unsigned long long>(b.c.retransmits),
          static_cast<unsigned long long>(b.c.timeouts),
          static_cast<unsigned long long>(b.c.dup_acks_in),
          static_cast<unsigned long long>(b.c.pure_acks_sent),
          static_cast<unsigned long long>(b.c.out_of_order),
          static_cast<unsigned long long>(b.c.conns_opened),
          static_cast<unsigned long long>(b.c.conns_accepted));
      t += buf;
    }
    if (cfg_.trace) {
      std::snprintf(
          buf, sizeof buf, "\n trace c=%016llx s=%016llx",
          static_cast<unsigned long long>(
              hash_trace(world_->tracer_for(*pr.client_host))),
          static_cast<unsigned long long>(
              hash_trace(world_->tracer_for(*pr.server_host))));
      t += buf;
    }
  }
  return t;
}

std::uint64_t FabricBed::fingerprint() const {
  const std::string t = fingerprint_text();
  return fnv1a(kFnvSeed, t.data(), t.size());
}

}  // namespace ulnet::api
