#include "api/testbed.h"

namespace ulnet::api {

const char* to_string(OrgType t) {
  switch (t) {
    case OrgType::kInKernel: return "Ultrix (in-kernel)";
    case OrgType::kSingleServer: return "Mach 3.0/UX (single server)";
    case OrgType::kDedicated: return "Dedicated servers";
    case OrgType::kUserLevel: return "User-level library";
  }
  return "?";
}

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::kEthernet: return "Ethernet";
    case LinkType::kAn1: return "DEC SRC AN1";
  }
  return "?";
}

Testbed::Testbed(OrgType org, LinkType link, std::uint64_t seed,
                 const sim::CostModel& cost)
    : org_(org), link_type_(link) {
  world_ = std::make_unique<os::World>(seed, cost);
  host_a_ = &world_->add_host("hostA");
  host_b_ = &world_->add_host("hostB");

  if (link == LinkType::kEthernet) {
    link_ = &world_->add_ethernet();
    ip_a_ = net::Ipv4Addr::parse("10.0.0.1");
    ip_b_ = net::Ipv4Addr::parse("10.0.0.2");
    world_->attach_lance(*host_a_, *link_, ip_a_);
    world_->attach_lance(*host_b_, *link_, ip_b_);
  } else {
    link_ = &world_->add_an1();
    ip_a_ = net::Ipv4Addr::parse("10.1.0.1");
    ip_b_ = net::Ipv4Addr::parse("10.1.0.2");
    world_->attach_an1(*host_a_, *link_, ip_a_);
    world_->attach_an1(*host_b_, *link_, ip_b_);
  }

  switch (org) {
    case OrgType::kInKernel:
      ik_a_ = std::make_unique<baseline::InKernelOrg>(*world_, *host_a_);
      ik_b_ = std::make_unique<baseline::InKernelOrg>(*world_, *host_b_);
      app_a_ = &ik_a_->add_app("appA");
      app_b_ = &ik_b_->add_app("appB");
      break;
    case OrgType::kSingleServer:
    case OrgType::kDedicated: {
      baseline::SingleServerOrg::Config cfg;
      cfg.dedicated_device_server = (org == OrgType::kDedicated);
      ss_a_ = std::make_unique<baseline::SingleServerOrg>(*world_, *host_a_,
                                                          cfg);
      ss_b_ = std::make_unique<baseline::SingleServerOrg>(*world_, *host_b_,
                                                          cfg);
      app_a_ = &ss_a_->add_app("appA");
      app_b_ = &ss_b_->add_app("appB");
      break;
    }
    case OrgType::kUserLevel:
      ul_a_ = std::make_unique<core::UserLevelOrg>(*world_, *host_a_);
      ul_b_ = std::make_unique<core::UserLevelOrg>(*world_, *host_b_);
      app_a_ = &ul_a_->add_app("appA");
      app_b_ = &ul_b_->add_app("appB");
      break;
  }
}

core::UserLevelApp* Testbed::user_app_a() {
  return org_ == OrgType::kUserLevel
             ? static_cast<core::UserLevelApp*>(app_a_)
             : nullptr;
}
core::UserLevelApp* Testbed::user_app_b() {
  return org_ == OrgType::kUserLevel
             ? static_cast<core::UserLevelApp*>(app_b_)
             : nullptr;
}

NetSystem& Testbed::add_app_a(const std::string& name) {
  switch (org_) {
    case OrgType::kInKernel: return ik_a_->add_app(name);
    case OrgType::kSingleServer:
    case OrgType::kDedicated: return ss_a_->add_app(name);
    case OrgType::kUserLevel: return ul_a_->add_app(name);
  }
  throw std::logic_error("bad org");
}

NetSystem& Testbed::add_app_b(const std::string& name) {
  switch (org_) {
    case OrgType::kInKernel: return ik_b_->add_app(name);
    case OrgType::kSingleServer:
    case OrgType::kDedicated: return ss_b_->add_app(name);
    case OrgType::kUserLevel: return ul_b_->add_app(name);
  }
  throw std::logic_error("bad org");
}

}  // namespace ulnet::api
