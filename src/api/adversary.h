// Byzantine multi-tenant isolation scenario (docs/ROBUSTNESS.md).
//
// The chaos harness (api/chaos.h) models *accidents*: crashes, stalls, lost
// wakeups. This harness models *attacks*: an adversarial tenant misusing
// its own perfectly valid channels to grab more than its share -- hoarding
// receive loans, never returning ring buffers, forging header templates,
// flooding the transmit path, spamming spurious wakeups. The trusted path
// (network I/O module + registry) must contain each attack to the attacker:
// a victim tenant's verified stream keeps most of its solo throughput when
// per-tenant policing is on, nothing forged ever reaches the wire, and
// killing the attacker leaves no unreclaimable resource behind.
//
// run_byzantine_scenario() is shared by tests/test_tenant_policing.cc,
// bench/bench_byzantine.cc and bench/bench_tenant_isolation.cc.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/chaos.h"
#include "api/testbed.h"
#include "core/netio_module.h"
#include "sim/stats.h"
#include "sim/telemetry.h"

namespace ulnet::api {

enum class AdversaryKind : std::uint8_t {
  kNone = 0,  // topology installed, attacker idle (solo baseline)
  kHoarder,   // accepts RX loans/buffers, never releases or reposts
  kStarver,   // processes packets but never returns receive buffers
  kForger,    // sends violating the installed header template, at volume
  kFlooder,   // saturates the transmit path through a raw channel
  kSpammer,   // spurious rearm/wakeup cycles burning shared CPU
};
inline constexpr std::size_t kAdversaryKindCount = 6;

[[nodiscard]] const char* to_string(AdversaryKind k);

// The policy the canonical scenario runs under: tight enough that every
// attack trips its counter, loose enough that honest tenants never notice.
[[nodiscard]] core::NetIoModule::TenantPolicy default_policy();

struct ByzantineScenarioConfig {
  std::uint64_t seed = 1;
  LinkType link = LinkType::kEthernet;
  AdversaryKind attacker = AdversaryKind::kNone;
  // Per-tenant policing: when true, `policy` (with enabled forced on) is
  // installed on both hosts' network I/O modules before any channel exists.
  bool policing = false;
  core::NetIoModule::TenantPolicy policy = default_policy();
  // Victim stream: sized to still be in flight through the attack.
  std::size_t bulk_bytes = 1536 * 1024;
  std::size_t write_size = 4096;
  // Attack onset window: seeded FaultSchedule events land in
  // [attack_start, attack_start + attack_span); the sustained burst loop
  // starts at attack_start and runs until the victim stream completes.
  sim::Time attack_start = 300 * sim::kMs;
  sim::Time attack_span = 200 * sim::kMs;
  sim::Time attack_interval = 20 * sim::kMs;  // sustained burst cadence
  std::uint64_t forge_burst = 16;             // forged sends per burst
  std::uint64_t flood_burst = 24;             // junk frames per burst
  std::size_t flood_frame_bytes = 1024;
  std::uint64_t spam_burst = 48;              // rearm cycles per burst
  // Latency probe: a small ping-pong between the honest apps runs alongside
  // the bulk stream; per-round RTTs land in the report. Off by default so
  // the soak and the unit tests keep the minimal two-stream topology.
  bool measure_rtt = false;
  int rtt_rounds = 150;
  std::size_t rtt_size = 64;
  // Kill the attacker after the victim stream completes and assert the
  // trusted path sweeps everything it hoarded.
  bool kill_attacker = true;
  // Fairness: with policing on and a solo baseline supplied, the victim
  // must keep at least this fraction of its solo throughput.
  double solo_mbps = 0;  // 0 = no fairness check
  double min_victim_fraction = 0.5;
  sim::Time deadline = 300 * sim::kSec;
  // Live telemetry: cadence > 0 samples the host-A module counters plus the
  // attacker's and victim's per-tenant series (`tenant.<who>.demand_bytes`,
  // `tenant.<who>.rx_slots`) on the world's sampler, and the report carries
  // the series summaries and the JSONL export. Off by default: the sampler
  // never perturbs simulated behaviour, but the dump belongs in benches,
  // not unit runs.
  sim::Time telemetry_cadence = 0;
};

struct ByzantineReport {
  AdversaryKind attacker = AdversaryKind::kNone;
  bool policed = false;
  // Victim survival: the verified stream completed, every byte intact.
  bool bulk_ok = false;
  bool bulk_data_valid = false;
  double victim_mbps = 0;
  double solo_mbps = 0;  // echo of cfg (0 = fairness not checked)
  double min_victim_fraction = 0.5;
  // Per-round RTTs of the latency probe (empty unless cfg.measure_rtt).
  sim::Stats victim_rtt_us;
  // Wire integrity: frames carrying the forged source port, observed by a
  // link tap. Must be zero -- the template check is the only thing between
  // a forger and the network.
  std::uint64_t forged_frames_on_wire = 0;
  std::uint64_t forge_refused = 0;  // forged sends the module refused
  // Policing counters, summed over both hosts' modules.
  std::uint64_t send_rejects = 0;
  std::uint64_t forgery_strikes = 0;
  std::uint64_t tenant_quarantines = 0;
  std::uint64_t tenant_tx_policed = 0;
  std::uint64_t tenant_ring_quota_hits = 0;
  std::uint64_t tenant_loan_budget_hits = 0;
  // Attacker teardown census.
  bool attacker_killed = false;
  std::size_t hoarded_peak = 0;  // buffers/loans held just before the kill
  std::size_t attacker_channels_left = 0;  // must be 0 after the sweep
  std::uint64_t loans_outstanding_end = 0;  // must be 0 after the sweep
  std::uint64_t loans_reclaimed = 0;
  std::uint64_t channels_quarantined = 0;
  bool attacker_peer_closed = false;
  std::string attacker_peer_close_reason;
  // Sampled time series (only when cfg.telemetry_cadence > 0): per-series
  // summaries for programmatic checks and the full JSONL export for the
  // bench artifact.
  std::vector<sim::Telemetry::Summary> telemetry;
  std::string telemetry_jsonl;
  // Replay identity over metrics + both netio dumps + the fault census.
  std::uint64_t fingerprint = 0;
  std::string fault_census;

  [[nodiscard]] bool invariants_ok() const;
  // Empty when the isolation invariants hold; otherwise the first violated
  // one, in severity order.
  [[nodiscard]] std::string failure() const;
};

ByzantineReport run_byzantine_scenario(const ByzantineScenarioConfig& cfg);

}  // namespace ulnet::api
