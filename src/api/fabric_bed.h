// FabricBed: the partitioned-simulation scale fixture. N host *pairs*
// (client 2k <-> server 2k+1), each pair wired with its own duplex fabric
// link (a routed path with hundreds of microseconds of propagation -- which
// is exactly the conservative executor's lookahead, so windows are wide),
// each pair carrying conns_per_pair concurrent TCP connections through the
// full user-level organization: registry handshake, per-connection channel,
// library TCP.
//
// The bed is partition-clean by construction: every piece of workload state
// (connection bookkeeping, establish/close logs, verification flags) is
// per-pair, and a pair's callbacks run only on that pair's two hosts, so
// the same fixture runs unchanged under PartitionMode::kNone,
// kShardedSerial and kPartitioned at any thread count. fingerprint()
// digests the aggregate metrics, every per-host TCP counter block, the
// per-pair transfer tallies and (when tracing) the per-host trace streams
// -- the differential determinism suite asserts it is bit-identical across
// executors and thread counts.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/net_system.h"
#include "core/user_level.h"
#include "os/world.h"
#include "sim/time.h"

namespace ulnet::api {

struct FabricConfig {
  int pairs = 4;              // host pairs (2 * pairs hosts total)
  int conns_per_pair = 16;    // concurrent connections per pair
  std::size_t bytes_per_conn = 4096;
  std::size_t write_size = 4096;
  std::uint64_t seed = 1;
  // Propagation of every fabric link; also the executor's lookahead.
  sim::Time propagation = 500 * sim::kUs;
  // Delay between successive active opens within a pair. 0 = a genuine
  // accept storm: every handshake hits the registry in the same tick.
  sim::Time open_stagger = 2 * sim::kMs;
  bool compact_stats = true;      // per-connection memory diet (no RTT hist)
  bool batched_handshakes = true; // registry accept-storm coalescing
  bool reserve_tables = true;     // pre-size demux/loan/conn tables
  bool chaos = false;             // loss/dup/corrupt/jitter on every link
  bool trace = false;             // per-host tracers on (fingerprinted)
  // Live telemetry: cadence > 0 enables the world's time-series sampler
  // over the executor (windows, lookahead, mailbox depth, per-worker
  // busy/stall wallclock), the event loops and the packet pools. Sampling
  // happens at window barriers on the main thread, so the simulated series
  // are bit-identical across executors and thread counts; the wallclock
  // series are flagged and excluded from determinism comparisons.
  sim::Time telemetry_cadence = 0;
  std::size_t telemetry_capacity = 512;  // ring slots per series
};

class FabricBed {
 public:
  FabricBed(os::PartitionMode mode, const FabricConfig& cfg);
  FabricBed(const FabricBed&) = delete;
  FabricBed& operator=(const FabricBed&) = delete;
  ~FabricBed();

  os::World& world() { return *world_; }
  sim::Telemetry& telemetry() { return world_->telemetry(); }
  [[nodiscard]] const FabricConfig& config() const { return cfg_; }
  [[nodiscard]] int total_conns() const {
    return cfg_.pairs * cfg_.conns_per_pair;
  }

  // Drive the whole workload to completion: per pair, establish every
  // connection (staggered opens), hold until the pair is fully up, pump
  // bytes_per_conn client->server on each, close. `threads` selects the
  // parallel executor's thread count (kPartitioned worlds only; ignored
  // otherwise). Returns true when every transfer completed with verified
  // payload bytes.
  bool run(int threads = 1, sim::Time deadline = 3600 * sim::kSec);

  // ---- Post-run observability (main thread, after run()) ----
  // Peak concurrently-established client connections, computed by merging
  // the per-pair establish/close logs -- the >= 10k-connections exhibit.
  [[nodiscard]] int peak_established() const { return peak_established_; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] sim::Metrics metrics() const {
    return world_->aggregate_metrics();
  }
  // Registry accept-storm counters, summed over hosts.
  [[nodiscard]] std::uint64_t handshake_sweeps() const;
  [[nodiscard]] std::uint64_t handoff_lookups() const;
  [[nodiscard]] std::uint64_t handoff_entries_scanned() const;
  // Memory-diet gauges, sampled once per run() slice; peaks over the run.
  [[nodiscard]] std::size_t peak_pool_bytes() const { return peak_pool_; }
  [[nodiscard]] std::size_t peak_tcb_bytes() const { return peak_tcb_; }
  [[nodiscard]] std::size_t pool_bytes_resident() const;
  [[nodiscard]] std::size_t tcb_bytes() const;

  // FNV-1a over fingerprint_text(): aggregate metrics JSON, per-host TCP
  // counters (library and registry stacks), per-pair byte tallies, trace
  // streams when enabled.
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] std::string fingerprint_text() const;

 private:
  struct ClientConn {
    SocketId sock = kInvalidSocket;
    std::size_t sent = 0;
    bool close_issued = false;
  };
  struct ConnEvent {
    sim::Time at = 0;
    int delta = 0;  // +1 established, -1 closed
  };
  // All mutable workload state of one pair. Touched only by that pair's
  // two hosts' callbacks, so partitioned execution never shares it.
  struct Pair {
    os::Host* client_host = nullptr;
    os::Host* server_host = nullptr;
    std::unique_ptr<core::UserLevelOrg> client_org;
    std::unique_ptr<core::UserLevelOrg> server_org;
    core::UserLevelApp* client_app = nullptr;
    core::UserLevelApp* server_app = nullptr;
    std::vector<ClientConn> clients;
    std::unordered_map<SocketId, std::size_t> server_conns;  // id -> received
    std::vector<ConnEvent> events;
    std::size_t server_received = 0;
    int established = 0;
    int client_closed = 0;
    int server_closed = 0;
    bool failed = false;
    bool data_valid = true;
  };

  void start();
  void start_pumps(Pair& pr);
  void pump(Pair& pr, int i);
  [[nodiscard]] bool finished() const;
  void sample_memory();

  static constexpr std::uint16_t kPort = 7001;

  FabricConfig cfg_;
  std::unique_ptr<os::World> world_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  bool started_ = false;
  std::uint64_t events_executed_ = 0;
  int peak_established_ = 0;
  std::size_t peak_pool_ = 0;
  std::size_t peak_tcb_ = 0;
};

}  // namespace ulnet::api
