// Chaos controller and scenario runner for the user-level organization.
//
// The controller replays a sim::FaultSchedule against registered protocol
// libraries: it kills them mid-transfer, stalls their service threads until
// rings fill, swallows semaphore wakeups, drains receive rings, and makes
// the transmit path report device backpressure. Everything is driven off
// the world's event loop, so a (seed, spec) pair reproduces the entire run
// -- faults, recoveries and final metrics -- bit for bit.
//
// run_chaos_scenario() is the shared harness used by tests/test_chaos.cc
// and bench/bench_chaos.cc: a verified bulk transfer that must survive,
// plus a victim connection whose library is killed, with the trusted path
// expected to reclaim every resource the victim held.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/testbed.h"
#include "core/user_level.h"
#include "sim/fault.h"

namespace ulnet::api {

class ChaosController {
 public:
  // `repoll_interval` > 0 arms the lost-wakeup safety net on every target
  // as it registers (0 leaves the targets' event schedules untouched).
  explicit ChaosController(Testbed& bed, sim::Time repoll_interval = 0);
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  // Register an app as a fault target; returns its index for GenSpec /
  // FaultEvent.target.
  int add_target(core::UserLevelApp& app);

  // Flood sender for kFloodTx events: the controller cannot conjure a raw
  // channel on its own, so scenarios that schedule floods register one per
  // target. Called with the event's burst size; an unregistered target's
  // flood events are skipped (and not counted as injected).
  using FloodFn = std::function<void(sim::TaskCtx&, std::uint64_t burst)>;
  void set_flood(int target, FloodFn fn) { floods_[target] = std::move(fn); }

  // Schedule every event of `schedule` on the world's loop. Call once.
  void arm(sim::FaultSchedule schedule);

  // The armed schedule, with its injection census filled in as events fire.
  [[nodiscard]] const sim::FaultSchedule& schedule() const { return sched_; }

 private:
  void apply(sim::TaskCtx& ctx, const sim::FaultEvent& ev);

  Testbed& bed_;
  sim::Time repoll_interval_;
  std::vector<core::UserLevelApp*> targets_;
  std::unordered_map<int, FloodFn> floods_;
  sim::FaultSchedule sched_;
};

// ---------------------------------------------------------------------------
// Canonical crash-fault scenario
// ---------------------------------------------------------------------------

struct ChaosScenarioConfig {
  std::uint64_t seed = 1;
  LinkType link = LinkType::kEthernet;
  // Survivor stream: sized to still be in flight through the fault window.
  std::size_t bulk_bytes = 3 * 1024 * 1024;
  std::size_t write_size = 4096;
  // Fault window [fault_start, fault_start + fault_span): opens after the
  // handshakes are long done.
  sim::Time fault_start = 1 * sim::kSec;
  sim::Time fault_span = 3 * sim::kSec;
  sim::Time repoll_interval = 20 * sim::kMs;
  // One library kill (the victim) is always scheduled; the rest target the
  // survivors and must be absorbed.
  int stalls = 1;
  sim::Time stall_len = 200 * sim::kMs;
  int wakeup_drops = 2;
  int ring_exhausts = 1;
  int tx_backpressures = 1;
  std::uint64_t tx_burst = 4;
  sim::Time deadline = 300 * sim::kSec;
  // Demux ablation: run the whole scenario under an interpreted demux mode
  // (Ethernet only), optionally with the one-pass trie aggregation and its
  // differential shadow armed on both hosts. The differential classifies
  // every frame twice -- trie and uncharged linear walk -- and the report
  // carries the disagreement count, so a chaos run doubles as a soak test
  // of verdict identity under kills, stalls and reclamation.
  core::NetIoModule::DemuxMode demux_mode =
      core::NetIoModule::DemuxMode::kSynthesized;
  bool filter_aggregation = false;
  bool demux_differential = false;
  // Zero-copy ablation: run the scenario with loaned RX delivery and
  // by-reference TCP receive on every connection, and add a reverse stream
  // toward the victim that it never reads -- so at the kill its receive
  // buffer holds live pool loans that only the registry's dead-client sweep
  // can retire. The report then carries the loan census and failure()
  // enforces the `loan_leak` invariant.
  bool zerocopy = false;
  // Flight recorder: when non-empty and the report's invariants fail, the
  // scenario dumps a postmortem bundle into this directory -- the event
  // trace (trace.json, Perfetto-loadable), world metrics, both netio dumps,
  // the simulated-CPU profile (JSON + folded stacks), the fault census and
  // the failure string -- so a red chaos run is debuggable from artifacts
  // alone, without a rerun. When telemetry is armed the bundle also carries
  // telemetry.jsonl (the sampled series) and telemetry.prom.
  std::string postmortem_dir;
  // Live telemetry: cadence > 0 enables the world's time-series sampler for
  // the run and registers a `victim.peer_rcvd` gauge so the watchdog layer
  // can observe the victim flow's progress from the outside.
  sim::Time telemetry_cadence = 0;
  // Watchdog: window > 0 arms a no-progress probe over `victim.peer_rcvd`
  // (requires telemetry_cadence > 0). If the sampled series stays flat for
  // the whole window mid-run -- e.g. the kill landed and reclamation hung
  // -- the probe fires ONCE and immediately writes the postmortem bundle
  // into postmortem_dir, capturing the stuck state as it happens rather
  // than after the deadline.
  sim::Time watchdog_no_progress = 0;
};

struct ChaosReport {
  // Survival: the bulk stream completed and every byte matched.
  bool bulk_ok = false;
  bool bulk_data_valid = false;
  // Crash handling: the victim died, and its peer observed a clean RST.
  bool victim_killed = false;
  bool peer_saw_reset = false;
  std::string peer_close_reason;
  // Leak census after the dust settles.
  std::size_t victim_channels_left = 0;  // must be 0
  std::size_t live_channels_a = 0, live_channels_b = 0;
  std::size_t expected_channels_a = 0, expected_channels_b = 0;
  int bqis_a = -1, bqis_b = -1;  // AN1 live rings; -1 on Ethernet
  // Reclamation + recovery activity (from the registry and the libraries).
  std::uint64_t channels_reclaimed = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t wakeups_dropped = 0;
  std::uint64_t tx_backpressure = 0;
  std::uint64_t tx_retries = 0;
  std::uint64_t repolls = 0;
  std::uint64_t repoll_recoveries = 0;
  // Aggregated-demux soak (only meaningful when cfg.filter_aggregation was
  // set): shadow-walk disagreements (must be 0) and the per-host trie node
  // counts after reclamation. The victim's bindings must be gone from the
  // recompiled trie -- a node count above what the surviving bindings can
  // produce is a leak.
  bool aggregation_armed = false;
  std::uint64_t demux_diff_mismatches = 0;
  std::size_t trie_nodes_a = 0, trie_nodes_b = 0;
  // Zero-copy loan census (only meaningful when cfg.zerocopy was set):
  // loans still active after settling (a pool-slot leak unless 0) and the
  // loans the registry force-retired when the victim died.
  bool zerocopy_armed = false;
  std::uint64_t loans_outstanding_end = 0;
  std::uint64_t loans_reclaimed = 0;
  std::uint64_t loan_high_water = 0;
  // Watchdog accounting (only meaningful when cfg.watchdog_no_progress was
  // set): how many probes fired and the first firing's reason string. A
  // fired watchdog is expected for schedules that wedge the victim flow; it
  // is diagnostic, not an invariant failure.
  std::uint64_t watchdog_triggers = 0;
  std::string watchdog_reason;
  // Replay identity: FNV-1a over world metrics + both netio dumps + the
  // fault census. Two runs of the same (seed, config) must match exactly.
  std::uint64_t fingerprint = 0;
  std::string fault_census;  // FaultSchedule::dump_json()

  [[nodiscard]] bool invariants_ok() const;
  // Empty when invariants hold; otherwise a short description of the first
  // violated one.
  [[nodiscard]] std::string failure() const;
};

ChaosReport run_chaos_scenario(const ChaosScenarioConfig& cfg);

// Flight-recorder bundle writer, shared by the end-of-run invariant check
// and the mid-run telemetry watchdog. Writes failure.txt, trace.json,
// metrics.json, netio_{a,b}.json, profile.json/.folded and
// fault_census.json into `dir`; when the world's telemetry sampler is
// enabled it also writes telemetry.jsonl and telemetry.prom. Best-effort:
// a write failure must not mask the original violation.
void write_postmortem_bundle(const std::string& dir, const std::string& why,
                             os::World& world, core::NetIoModule& na,
                             core::NetIoModule& nb,
                             const std::string& fault_census);

}  // namespace ulnet::api
