#include "api/chaos.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <system_error>

#include "api/workloads.h"
#include "hw/nic.h"

namespace ulnet::api {

// ---------------------------------------------------------------------------
// ChaosController
// ---------------------------------------------------------------------------

ChaosController::ChaosController(Testbed& bed, sim::Time repoll_interval)
    : bed_(bed), repoll_interval_(repoll_interval) {}

int ChaosController::add_target(core::UserLevelApp& app) {
  targets_.push_back(&app);
  if (repoll_interval_ > 0) app.set_repoll_interval(repoll_interval_);
  return static_cast<int>(targets_.size()) - 1;
}

void ChaosController::arm(sim::FaultSchedule schedule) {
  sched_ = std::move(schedule);
  sched_.sort();
  for (const sim::FaultEvent& ev : sched_.events()) {
    if (ev.target < 0 ||
        ev.target >= static_cast<int>(targets_.size())) {
      continue;
    }
    core::UserLevelApp* app = targets_[static_cast<std::size_t>(ev.target)];
    // Each fault lands as a task in the target's own space: a kill charges
    // its last gasp to the dying library, exactly like a real crash.
    bed_.world().loop().schedule_at(ev.at, [this, ev, app] {
      app->run_app([this, ev](sim::TaskCtx& ctx) { apply(ctx, ev); });
    });
  }
}

void ChaosController::apply(sim::TaskCtx& ctx, const sim::FaultEvent& ev) {
  core::UserLevelApp& app = *targets_[static_cast<std::size_t>(ev.target)];
  if (app.dead()) return;  // dead targets absorb nothing; not counted
  switch (ev.kind) {
    case sim::FaultKind::kKillApp:
      app.kill(ctx);
      break;
    case sim::FaultKind::kStallApp:
      app.stall();
      break;
    case sim::FaultKind::kResumeApp:
      app.resume();
      break;
    case sim::FaultKind::kDropWakeup:
      app.drop_next_wakeup();
      break;
    case sim::FaultKind::kExhaustRing:
      app.exhaust_rings();
      break;
    case sim::FaultKind::kTxBackpressure:
      app.org().netio(0).inject_tx_backpressure(ev.arg == 0 ? 1 : ev.arg);
      break;
    case sim::FaultKind::kHoardLoans:
      app.set_hoard_loans(true);
      break;
    case sim::FaultKind::kStarveRefill:
      app.set_starve_refill(true);
      break;
    case sim::FaultKind::kForgeTemplates:
      app.forge_sends(ctx, static_cast<int>(ev.arg == 0 ? 1 : ev.arg),
                      core::UserLevelApp::kForgedSrcPort);
      break;
    case sim::FaultKind::kFloodTx: {
      auto it = floods_.find(ev.target);
      if (it == floods_.end()) return;  // no flood surface registered
      it->second(ctx, ev.arg == 0 ? 1 : ev.arg);
      break;
    }
    case sim::FaultKind::kSpamWakeups:
      app.spam_wakeups(ctx, static_cast<int>(ev.arg == 0 ? 1 : ev.arg));
      break;
  }
  sched_.note_injected(ev.kind);
}

// ---------------------------------------------------------------------------
// Scenario runner
// ---------------------------------------------------------------------------

namespace {

struct VictimState {
  SocketId sock = kInvalidSocket;
  std::size_t sent = 0;
  std::size_t peer_rcvd = 0;
  std::size_t back_sent = 0;  // zerocopy: reverse stream the victim ignores
  bool peer_closed = false;
  std::string peer_close_reason;
};

void victim_pump(core::UserLevelApp& victim,
                 const std::shared_ptr<VictimState>& st) {
  if (victim.dead() || st->sock == kInvalidSocket) return;
  // Stream continuously so the kill always lands mid-transfer.
  for (;;) {
    const std::size_t space = victim.send_space(st->sock);
    if (space == 0) return;
    const std::size_t n = std::min<std::size_t>(1024, space);
    const std::size_t took = victim.send(st->sock, payload_bytes(st->sent, n));
    st->sent += took;
    if (took < n) return;
  }
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool write_text(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

// Flight recorder: dump everything needed to debug a failed run from
// artifacts alone. Best-effort -- a write failure must not mask the
// original invariant violation.
void write_postmortem_bundle(const std::string& dir, const std::string& why,
                             os::World& world, core::NetIoModule& na,
                             core::NetIoModule& nb,
                             const std::string& fault_census) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "chaos: cannot create postmortem dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return;
  }
  write_text(dir + "/failure.txt", why + "\n");
  world.tracer().write_chrome_json(dir + "/trace.json");
  write_text(dir + "/metrics.json", world.metrics().dump_json());
  write_text(dir + "/netio_a.json", na.dump_json());
  write_text(dir + "/netio_b.json", nb.dump_json());
  write_text(dir + "/profile.json", world.profile_dump_json());
  world.write_profile_folded(dir + "/profile.folded");
  write_text(dir + "/fault_census.json", fault_census);
  if (world.telemetry().enabled()) {
    write_text(dir + "/telemetry.jsonl", world.telemetry().dump_jsonl());
    write_text(dir + "/telemetry.prom", world.telemetry().dump_prometheus());
  }
  std::fprintf(stderr, "chaos: invariants failed (%s); postmortem in %s\n",
               why.c_str(), dir.c_str());
}

ChaosReport run_chaos_scenario(const ChaosScenarioConfig& cfg) {
  Testbed bed(OrgType::kUserLevel, cfg.link, cfg.seed);
  // Arm the flight recorder up front: tracing is behaviour-neutral (a
  // tier-1 test asserts metrics identity), so the recorder never perturbs
  // the run it is documenting.
  if (!cfg.postmortem_dir.empty()) bed.world().tracer().set_enabled(true);
  const bool agg_armed =
      cfg.demux_mode != core::NetIoModule::DemuxMode::kSynthesized &&
      cfg.link == LinkType::kEthernet;
  if (agg_armed) {
    for (auto* org : {bed.user_org_a(), bed.user_org_b()}) {
      auto& nio = org->netio(0);
      nio.set_demux_mode(cfg.demux_mode);
      nio.set_filter_aggregation(cfg.filter_aggregation);
      nio.set_demux_differential(cfg.demux_differential);
    }
  }
  ChaosController chaos(bed, cfg.repoll_interval);

  core::UserLevelApp& victim = bed.user_org_a()->add_app_impl("victim");
  core::UserLevelApp& vpeer = bed.user_org_b()->add_app_impl("vpeer");
  const int victim_idx = chaos.add_target(victim);
  chaos.add_target(*bed.user_app_a());
  chaos.add_target(*bed.user_app_b());

  if (cfg.zerocopy) {
    bed.user_org_a()->set_zero_copy(true);
    bed.user_org_b()->set_zero_copy(true);
    proto::TcpConfig zc = bed.app_a().tcp_config();
    zc.rx_byref = true;
    zc.tx_gather = true;
    bed.app_a().set_tcp_config(zc);
    bed.app_b().set_tcp_config(zc);
    victim.set_tcp_config(zc);
    vpeer.set_tcp_config(zc);
  }

  // The survivor: a verified stream that must deliver every byte intact no
  // matter what the fault schedule does around it.
  BulkTransfer bulk(bed, cfg.bulk_bytes, cfg.write_size, 5001,
                    /*verify_data=*/true);
  bulk.start();

  // The victim flow: vpeer listens and counts; the victim streams until it
  // is killed. Its peer must then observe a clean RST (not a hang).
  auto st = std::make_shared<VictimState>();

  if (cfg.telemetry_cadence > 0) {
    sim::TelemetryConfig tcfg;
    tcfg.cadence = cfg.telemetry_cadence;
    bed.world().enable_telemetry(tcfg);
    // The victim flow observed from the outside: the watchdog watches bytes
    // delivered at the peer, not any internal counter, so a wedged victim
    // shows up as a flat series no matter where the stack hung.
    bed.world().telemetry().register_gauge(
        "victim.peer_rcvd",
        [st] { return static_cast<std::uint64_t>(st->peer_rcvd); }, "bytes");
    if (cfg.watchdog_no_progress > 0) {
      bed.world().telemetry().add_no_progress_probe(
          "victim_progress", "victim.peer_rcvd", cfg.watchdog_no_progress);
      if (!cfg.postmortem_dir.empty()) {
        // The probe fires from inside the sampler, mid-run: capture the
        // stuck state as it happens, not after the deadline expires.
        os::World* wp = &bed.world();
        Testbed* bedp = &bed;
        ChaosController* chaosp = &chaos;
        const std::string dir = cfg.postmortem_dir;
        wp->telemetry().set_watchdog_handler(
            [wp, bedp, chaosp, dir](const std::string&,
                                    const std::string& reason, sim::Time) {
              write_postmortem_bundle(dir, reason, *wp,
                                      bedp->user_org_a()->netio(0),
                                      bedp->user_org_b()->netio(0),
                                      chaosp->schedule().dump_json());
            });
      }
    }
  }

  const bool zc_armed = cfg.zerocopy;
  vpeer.run_app([&vpeer, st, zc_armed](sim::TaskCtx&) {
    vpeer.listen(6001, [&vpeer, st, zc_armed](SocketId id) {
      SocketEvents evs;
      evs.on_readable = [&vpeer, id, st](std::size_t) {
        st->peer_rcvd +=
            vpeer.recv(id, std::numeric_limits<std::size_t>::max()).size();
      };
      if (zc_armed) {
        // Reverse stream the victim never reads: its receive buffer fills
        // with loan-backed chunks, so the kill strands live pool loans that
        // only the registry's dead-client sweep can retire.
        evs.on_established = [&vpeer, id, st] {
          vpeer.run_app([&vpeer, id, st](sim::TaskCtx&) {
            for (;;) {
              const std::size_t space = vpeer.send_space(id);
              if (space == 0) return;
              const std::size_t n = std::min<std::size_t>(1024, space);
              const std::size_t took =
                  vpeer.send(id, payload_bytes(st->back_sent, n));
              st->back_sent += took;
              if (took < n) return;
            }
          });
        };
        evs.on_writable = evs.on_established;
      }
      evs.on_eof = [&vpeer, id] { vpeer.close(id); };
      evs.on_closed = [&vpeer, id, st](const std::string& reason) {
        st->peer_close_reason = reason;
        st->peer_closed = true;
        vpeer.run_app([&vpeer, id](sim::TaskCtx&) { vpeer.release(id); });
      };
      return evs;
    });
  });
  bed.world().loop().schedule_in(100 * sim::kMs, [&victim, &bed, st] {
    victim.run_app([&victim, &bed, st](sim::TaskCtx&) {
      SocketEvents evs;
      evs.on_established = [&victim, st] {
        victim.run_app(
            [&victim, st](sim::TaskCtx&) { victim_pump(victim, st); });
      };
      evs.on_writable = [&victim, st] {
        victim.run_app(
            [&victim, st](sim::TaskCtx&) { victim_pump(victim, st); });
      };
      victim.connect(bed.ip_b(), 6001, std::move(evs),
                     [st](SocketId id) { st->sock = id; });
    });
  });

  sim::FaultSchedule::GenSpec spec;
  spec.start = cfg.fault_start;
  spec.horizon = cfg.fault_start + cfg.fault_span;
  spec.targets = 3;
  spec.kill_target = victim_idx;
  spec.kills = 1;
  spec.stalls = cfg.stalls;
  spec.stall_len = cfg.stall_len;
  spec.wakeup_drops = cfg.wakeup_drops;
  spec.ring_exhausts = cfg.ring_exhausts;
  spec.tx_backpressures = cfg.tx_backpressures;
  spec.tx_burst = cfg.tx_burst;
  chaos.arm(sim::FaultSchedule::generate(cfg.seed, spec));

  os::World& world = bed.world();
  while (world.now() < cfg.deadline &&
         !(bulk.finished() && victim.dead() && st->peer_closed)) {
    world.run_for(sim::kSec);
  }
  // Let in-flight reclamation IPCs and the last retransmissions settle.
  world.run_for(2 * sim::kSec);

  ChaosReport rep;
  rep.bulk_ok = bulk.finished() && bulk.result().ok;
  rep.bulk_data_valid = bulk.result().data_valid;
  rep.victim_killed = victim.dead();
  rep.peer_close_reason = st->peer_close_reason;
  rep.peer_saw_reset =
      st->peer_closed && st->peer_close_reason == "reset by peer";

  core::NetIoModule& na = bed.user_org_a()->netio(0);
  core::NetIoModule& nb = bed.user_org_b()->netio(0);
  rep.victim_channels_left = na.channels_of_space(victim.app_space()).size();
  rep.live_channels_a = na.live_channels();
  rep.live_channels_b = nb.live_channels();
  // Bulk client/server keep their channel (sockets closed, never released);
  // the victim's channel is reclaimed and vpeer releases on reset.
  rep.expected_channels_a = 1;
  rep.expected_channels_b = 1;
  if (cfg.link == LinkType::kAn1) {
    rep.bqis_a = static_cast<hw::An1Nic&>(na.nic()).bqis_in_use();
    rep.bqis_b = static_cast<hw::An1Nic&>(nb.nic()).bqis_in_use();
  }

  const auto& reclaim = bed.user_org_a()->registry().reclaim_stats();
  rep.channels_reclaimed = reclaim.channels;
  rep.rsts_sent = reclaim.rsts_sent;

  const sim::Metrics& m = world.metrics();
  rep.wakeups_dropped = m.wakeups_dropped;
  rep.tx_backpressure = m.netio_tx_backpressure;
  rep.tx_retries = victim.tx_retries() + bed.user_app_a()->tx_retries() +
                   bed.user_app_b()->tx_retries();
  rep.repolls = victim.repolls() + bed.user_app_a()->repolls() +
                bed.user_app_b()->repolls();
  rep.repoll_recoveries = victim.repoll_recoveries() +
                          bed.user_app_a()->repoll_recoveries() +
                          bed.user_app_b()->repoll_recoveries();
  rep.fault_census = chaos.schedule().dump_json();
  rep.watchdog_triggers = world.telemetry().watchdog_triggers();
  rep.watchdog_reason = world.telemetry().watchdog_reason();

  rep.zerocopy_armed = cfg.zerocopy;
  if (cfg.zerocopy) {
    rep.loans_outstanding_end = m.loans_outstanding;
    rep.loans_reclaimed = reclaim.loans_reclaimed;
    rep.loan_high_water = m.loan_high_water;
  }

  rep.aggregation_armed = agg_armed && cfg.filter_aggregation;
  if (rep.aggregation_armed) {
    rep.demux_diff_mismatches = na.counters().demux_diff_mismatches +
                                nb.counters().demux_diff_mismatches;
    // trie_nodes() recompiles a trie left stale by the reclamation
    // unbinds, so the counts below reflect exactly the surviving bindings.
    rep.trie_nodes_a = na.trie_nodes();
    rep.trie_nodes_b = nb.trie_nodes();
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, m.dump_json());
  h = fnv1a(h, na.dump_json());
  h = fnv1a(h, nb.dump_json());
  h = fnv1a(h, rep.fault_census);
  h = fnv1a(h, std::to_string(st->peer_rcvd));
  rep.fingerprint = h;

  if (!cfg.postmortem_dir.empty()) {
    const std::string why = rep.failure();
    if (!why.empty()) {
      write_postmortem_bundle(cfg.postmortem_dir, why, world, na, nb,
                              rep.fault_census);
    }
  }
  return rep;
}

bool ChaosReport::invariants_ok() const { return failure().empty(); }

std::string ChaosReport::failure() const {
  if (!bulk_ok) return "surviving bulk transfer did not complete";
  if (!bulk_data_valid) return "surviving bulk stream corrupted";
  if (!victim_killed) return "victim library was never killed";
  if (!peer_saw_reset) {
    return "peer of dead library saw '" + peer_close_reason +
           "', expected 'reset by peer'";
  }
  if (victim_channels_left != 0) return "dead library still owns channels";
  if (live_channels_a != expected_channels_a) {
    return "host A channel leak: " + std::to_string(live_channels_a) +
           " live, expected " + std::to_string(expected_channels_a);
  }
  if (live_channels_b != expected_channels_b) {
    return "host B channel leak: " + std::to_string(live_channels_b) +
           " live, expected " + std::to_string(expected_channels_b);
  }
  if (bqis_a >= 0 && bqis_a != static_cast<int>(live_channels_a)) {
    return "host A BQI leak: " + std::to_string(bqis_a) + " rings for " +
           std::to_string(live_channels_a) + " channels";
  }
  if (bqis_b >= 0 && bqis_b != static_cast<int>(live_channels_b)) {
    return "host B BQI leak: " + std::to_string(bqis_b) + " rings for " +
           std::to_string(live_channels_b) + " channels";
  }
  if (channels_reclaimed == 0) return "registry reclaimed nothing";
  if (rsts_sent == 0) return "registry sent no RST for the dead library";
  if (zerocopy_armed) {
    if (loans_outstanding_end != 0) {
      return "loan_leak: " + std::to_string(loans_outstanding_end) +
             " pool loans still outstanding after reclamation";
    }
    if (loans_reclaimed == 0) {
      return "registry retired no leaked loans for the dead library";
    }
  }
  if (aggregation_armed) {
    if (demux_diff_mismatches != 0) {
      return "aggregated demux disagreed with the linear walk " +
             std::to_string(demux_diff_mismatches) + " times";
    }
    // A flow filter contributes at most one node per header dimension
    // (ethertype, protocol, addresses, ports) plus the root: a recompiled
    // trie holding more than that per surviving binding kept nodes for
    // reclaimed ones.
    const std::size_t bound_a = 8 * live_channels_a + 1;
    const std::size_t bound_b = 8 * live_channels_b + 1;
    if (trie_nodes_a > bound_a || trie_nodes_b > bound_b) {
      return "trie node leak after reclamation: " +
             std::to_string(trie_nodes_a) + "/" +
             std::to_string(trie_nodes_b) + " nodes for " +
             std::to_string(live_channels_a) + "/" +
             std::to_string(live_channels_b) + " channels";
    }
  }
  return "";
}

}  // namespace ulnet::api
