// SocketBridge: shared plumbing between a TcpModule and a NetSystem
// implementation. Keeps the socket table (SocketId <-> TcpConnection),
// dispatches TCP upcalls to per-socket SocketEvents, and coalesces
// notifications. How a notification actually reaches the application --
// inline procedure call (user-level library), kernel wakeup + context
// switch (in-kernel), or an IPC message (server organizations) -- is
// supplied by the organization as the `notify` functor.
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <unordered_map>

#include "api/net_system.h"
#include "proto/tcp.h"

namespace ulnet::api {

class SocketBridge : public proto::TcpObserver {
 public:
  // Schedule `fn` to run in the application's context.
  using Notify = std::function<void(std::function<void()>)>;

  explicit SocketBridge(Notify notify) : notify_(std::move(notify)) {}

  struct Entry {
    proto::TcpConnection* conn = nullptr;
    SocketEvents events;
    bool readable_pending = false;
    bool writable_pending = false;
    bool closed = false;
  };

  SocketId attach(proto::TcpConnection* conn, SocketEvents evs) {
    const SocketId id = next_id_++;
    auto& e = table_[id];
    e.conn = conn;
    e.events = std::move(evs);
    by_conn_[conn] = id;
    conn->set_observer(this);
    return id;
  }

  void set_acceptor(std::uint16_t port,
                    std::function<SocketEvents(SocketId)> acceptor) {
    acceptors_[port] = std::move(acceptor);
  }
  void remove_acceptor(std::uint16_t port) { acceptors_.erase(port); }

  Entry* find(SocketId id) {
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] SocketId id_of(proto::TcpConnection* conn) const {
    auto it = by_conn_.find(conn);
    return it == by_conn_.end() ? kInvalidSocket : it->second;
  }

  // Remove the socket-table entry (the TcpConnection is released by the
  // organization).
  void detach(SocketId id) {
    auto it = table_.find(id);
    if (it == table_.end()) return;
    by_conn_.erase(it->second.conn);
    table_.erase(it);
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  // ---- TcpObserver ----
  void on_established(proto::TcpConnection& c) override {
    if (Entry* e = entry_of(c); e != nullptr && e->events.on_established) {
      notify_(e->events.on_established);
    }
  }

  void on_accept(proto::TcpConnection& c) override {
    // A listener's child completed its handshake: mint a socket for it.
    auto it = acceptors_.find(c.local_port());
    if (it == acceptors_.end()) {
      c.abort();
      return;
    }
    const SocketId id = next_id_++;
    auto& e = table_[id];
    e.conn = &c;
    by_conn_[&c] = id;
    e.events = it->second(id);
    c.set_observer(this);
  }

  void on_data_ready(proto::TcpConnection& c) override {
    Entry* e = entry_of(c);
    if (e == nullptr || e->readable_pending || !e->events.on_readable) return;
    e->readable_pending = true;
    proto::TcpConnection* conn = &c;
    notify_([this, conn] {
      if (SocketId id = id_of(conn); id != kInvalidSocket) {
        Entry* entry = find(id);
        entry->readable_pending = false;
        entry->events.on_readable(conn->bytes_available());
      }
    });
  }

  void on_send_space(proto::TcpConnection& c) override {
    Entry* e = entry_of(c);
    if (e == nullptr || e->writable_pending || !e->events.on_writable) return;
    e->writable_pending = true;
    proto::TcpConnection* conn = &c;
    notify_([this, conn] {
      if (SocketId id = id_of(conn); id != kInvalidSocket) {
        Entry* entry = find(id);
        entry->writable_pending = false;
        entry->events.on_writable();
      }
    });
  }

  void on_peer_fin(proto::TcpConnection& c) override {
    if (Entry* e = entry_of(c); e != nullptr && e->events.on_eof) {
      notify_(e->events.on_eof);
    }
  }

  void on_closed(proto::TcpConnection& c, const std::string& reason) override {
    Entry* e = entry_of(c);
    if (e == nullptr || e->closed) return;
    e->closed = true;
    if (e->events.on_closed) {
      notify_([cb = e->events.on_closed, reason] { cb(reason); });
    }
  }

 private:
  Entry* entry_of(proto::TcpConnection& c) {
    auto it = by_conn_.find(&c);
    return it == by_conn_.end() ? nullptr : &table_[it->second];
  }

  Notify notify_;
  std::unordered_map<SocketId, Entry> table_;
  std::unordered_map<proto::TcpConnection*, SocketId> by_conn_;
  std::unordered_map<std::uint16_t, std::function<SocketEvents(SocketId)>>
      acceptors_;
  SocketId next_id_ = 1;
};

}  // namespace ulnet::api
