// Testbed: the paper's experimental setup in a box -- two workstations on a
// shared link (10 Mb/s Ethernet or 100 Mb/s AN1), one protocol organization
// installed on both, one application on each host.
#pragma once

#include <memory>
#include <string>

#include "api/net_system.h"
#include "baseline/inkernel.h"
#include "baseline/single_server.h"
#include "core/user_level.h"
#include "os/world.h"

namespace ulnet::api {

enum class OrgType {
  kInKernel,      // Ultrix 4.2A
  kSingleServer,  // Mach 3.0 + UX, mapped device
  kDedicated,     // dedicated protocol + device servers (Fig. 1 rare case)
  kUserLevel,     // the paper's user-level library organization
};

enum class LinkType { kEthernet, kAn1 };

[[nodiscard]] const char* to_string(OrgType t);
[[nodiscard]] const char* to_string(LinkType t);

class Testbed {
 public:
  Testbed(OrgType org, LinkType link, std::uint64_t seed = 1,
          const sim::CostModel& cost = sim::CostModel{});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  os::World& world() { return *world_; }
  os::Host& host_a() { return *host_a_; }
  os::Host& host_b() { return *host_b_; }
  net::Link& link() { return *link_; }
  NetSystem& app_a() { return *app_a_; }
  NetSystem& app_b() { return *app_b_; }
  [[nodiscard]] net::Ipv4Addr ip_a() const { return ip_a_; }
  [[nodiscard]] net::Ipv4Addr ip_b() const { return ip_b_; }
  [[nodiscard]] OrgType org() const { return org_; }
  [[nodiscard]] LinkType link_type() const { return link_type_; }

  // Organization-specific access (nullptr when the org does not match).
  core::UserLevelOrg* user_org_a() { return ul_a_.get(); }
  core::UserLevelOrg* user_org_b() { return ul_b_.get(); }
  core::UserLevelApp* user_app_a();
  core::UserLevelApp* user_app_b();
  baseline::InKernelOrg* ik_org_a() { return ik_a_.get(); }
  baseline::InKernelOrg* ik_org_b() { return ik_b_.get(); }
  baseline::SingleServerOrg* ss_org_a() { return ss_a_.get(); }
  baseline::SingleServerOrg* ss_org_b() { return ss_b_.get(); }

  // Add a second application on a host (multi-app scenarios).
  NetSystem& add_app_a(const std::string& name);
  NetSystem& add_app_b(const std::string& name);

 private:
  OrgType org_;
  LinkType link_type_;
  std::unique_ptr<os::World> world_;
  os::Host* host_a_ = nullptr;
  os::Host* host_b_ = nullptr;
  net::Link* link_ = nullptr;
  net::Ipv4Addr ip_a_, ip_b_;

  std::unique_ptr<baseline::InKernelOrg> ik_a_, ik_b_;
  std::unique_ptr<baseline::SingleServerOrg> ss_a_, ss_b_;
  std::unique_ptr<core::UserLevelOrg> ul_a_, ul_b_;
  NetSystem* app_a_ = nullptr;
  NetSystem* app_b_ = nullptr;
};

}  // namespace ulnet::api
