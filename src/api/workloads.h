// Application workloads, written once against NetSystem and reused by the
// integration tests, the benchmark harness and the examples. These are the
// measurement programs of the paper's Section 4:
//   * BulkTransfer  -- one-way stream, the Table 1/2 throughput metric,
//   * PingPong      -- request/response of equal sizes, Table 3 latency,
//   * SetupProbe    -- repeated connect/teardown, Table 4 setup cost.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/net_system.h"
#include "api/testbed.h"
#include "sim/stats.h"

namespace ulnet::api {

inline std::uint8_t payload_byte(std::size_t i) {
  return static_cast<std::uint8_t>((i * 13 + 7) % 256);
}
buf::Bytes payload_bytes(std::size_t offset, std::size_t n);

// ---------------------------------------------------------------------------
// BulkTransfer: client streams `total_bytes` in `write_size` user packets
// to a sink server, then closes. Throughput is measured at the receiver
// over the data phase (first byte to last byte), connection setup excluded.
// ---------------------------------------------------------------------------
class BulkTransfer {
 public:
  struct Result {
    bool ok = false;
    bool data_valid = true;
    std::size_t bytes_received = 0;
    std::size_t measured_bytes = 0;  // bytes past the warmup window
    sim::Time first_byte = 0;        // first measured (post-warmup) byte
    sim::Time last_byte = 0;
    std::string error;

    // Steady-state throughput over the post-warmup portion of the stream
    // (slow start and the initial delayed-ACK stall excluded, as in the
    // paper's long-running measurements).
    [[nodiscard]] double throughput_mbps() const {
      if (last_byte <= first_byte || measured_bytes == 0) return 0;
      return static_cast<double>(measured_bytes) * 8.0 /
             sim::to_sec(last_byte - first_byte) / 1e6;
    }
  };

  BulkTransfer(Testbed& bed, std::size_t total_bytes, std::size_t write_size,
               std::uint16_t port = 5001, bool verify_data = false,
               std::size_t warmup_bytes = 64 * 1024);

  // Receive through recv_zc()/release_chunks() instead of recv(): data is
  // verified through the chunk views, so on a by-reference connection the
  // sink never forces the selective-copy exit. Set before start().
  void set_zc_recv(bool on) { zc_recv_ = on; }

  // Install the server and kick off the client. Run the world afterwards.
  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }

  // Convenience: start, run until completion (with a generous deadline),
  // return the result.
  Result run(sim::Time deadline = 600 * sim::kSec);

 private:
  void client_pump(sim::TaskCtx&);

  Testbed& bed_;
  std::size_t total_;
  std::size_t write_size_;
  std::uint16_t port_;
  bool verify_;
  bool zc_recv_ = false;
  std::size_t warmup_;
  SocketId client_sock_ = kInvalidSocket;
  SocketId server_sock_ = kInvalidSocket;
  std::size_t sent_ = 0;
  std::size_t verified_at_ = 0;
  bool close_issued_ = false;
  bool finished_ = false;
  Result result_;
};

// ---------------------------------------------------------------------------
// PingPong: client sends `size` bytes; server echoes the same amount; one
// round trip = client-send to client-complete-receive. Repeats `rounds`
// times on one connection; per-round RTTs land in stats().
// ---------------------------------------------------------------------------
class PingPong {
 public:
  PingPong(Testbed& bed, std::size_t size, int rounds,
           std::uint16_t port = 5002);

  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const sim::Stats& stats() const { return rtts_us_; }

  // Start, run, return mean RTT in microseconds.
  double run_mean_rtt_us(sim::Time deadline = 600 * sim::kSec);

 private:
  void begin_round(sim::TaskCtx&);
  void client_pump_send(sim::TaskCtx&);
  void server_pump_send(sim::TaskCtx&);

  Testbed& bed_;
  std::size_t size_;
  int rounds_;
  std::uint16_t port_;
  SocketId client_sock_ = kInvalidSocket;
  SocketId server_sock_ = kInvalidSocket;
  int done_rounds_ = 0;
  sim::Time round_start_ = 0;
  std::size_t client_sent_ = 0, client_rcvd_ = 0;
  std::size_t server_rcvd_ = 0, server_sent_ = 0, server_to_send_ = 0;
  bool finished_ = false;
  sim::Stats rtts_us_;
};

// ---------------------------------------------------------------------------
// SetupProbe: measures connection-establishment time (active open issued ->
// on_established at the client), with a listener already waiting, exactly
// as the paper assumes. Connections are closed and released between rounds.
// ---------------------------------------------------------------------------
class SetupProbe {
 public:
  SetupProbe(Testbed& bed, int rounds, std::uint16_t port = 5003);

  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const sim::Stats& stats() const { return setup_us_; }

  double run_mean_setup_us(sim::Time deadline = 600 * sim::kSec);

 private:
  void next_round(sim::TaskCtx&);

  Testbed& bed_;
  int rounds_;
  std::uint16_t port_;
  int done_rounds_ = 0;
  sim::Time round_start_ = 0;
  bool finished_ = false;
  sim::Stats setup_us_;
};

}  // namespace ulnet::api
