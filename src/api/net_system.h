// NetSystem: the uniform application-side socket interface.
//
// Benchmarks and examples are written once against this interface; each
// protocol organization (in-kernel, single-server, dedicated-server,
// user-level library) provides an implementation whose *mechanisms* differ
// -- traps vs IPC vs shared memory, where protocol code runs, how the app
// is notified -- while the application code and the TCP object code stay
// identical. That is precisely the comparison the paper makes.
//
// Threading model: all NetSystem calls must be made from a task running in
// the owning application's address space (event callbacks are always
// delivered there; initial work is injected with run_app()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "buf/bytes.h"
#include "buf/packet_pool.h"
#include "net/addr.h"
#include "proto/tcp.h"
#include "sim/cpu.h"

namespace ulnet::api {

using SocketId = std::uint64_t;
inline constexpr SocketId kInvalidSocket = 0;

// Per-socket event callbacks, invoked in the application's address space.
struct SocketEvents {
  std::function<void()> on_established;
  // In-order data available (amount readable at notification time).
  std::function<void(std::size_t available)> on_readable;
  // Send-buffer space has been freed.
  std::function<void()> on_writable;
  // Peer closed its direction (EOF after buffered data is read).
  std::function<void()> on_eof;
  // Connection fully terminated; reason empty for orderly close.
  std::function<void(const std::string& reason)> on_closed;
};

class NetSystem {
 public:
  virtual ~NetSystem() = default;

  // Passive open. `acceptor` is called once per accepted connection and
  // returns the event callbacks for that socket.
  virtual bool listen(std::uint16_t port,
                      std::function<SocketEvents(SocketId)> acceptor) = 0;

  // Active open. `done` receives the socket id once the connection is
  // established, or kInvalidSocket on failure (reason via evs.on_closed).
  virtual void connect(net::Ipv4Addr dst, std::uint16_t port,
                       SocketEvents evs,
                       std::function<void(SocketId)> done) = 0;

  // Queue data; returns bytes accepted (bounded by send-buffer space).
  virtual std::size_t send(SocketId s, buf::ByteView data) = 0;
  // Read up to `max` bytes of in-order data.
  virtual buf::Bytes recv(SocketId s, std::size_t max) = 0;

  // Zero-copy read: up to `max` in-order bytes as a list of chunks. Chunks
  // may reference loaned receive buffers (chunk.loan engaged) -- the caller
  // MUST hand every chunk back via release_chunks() or the pool slots leak
  // (deliberately observable: a crashed app's leaks are reclaimed by the
  // trusted path and counted). The default wraps recv() in one owned chunk
  // so every organization supports the call; only organizations with a real
  // loan path deliver by reference.
  virtual std::vector<buf::RxChunk> recv_zc(SocketId s, std::size_t max) {
    std::vector<buf::RxChunk> out;
    buf::Bytes b = recv(s, max);
    if (!b.empty()) {
      buf::RxChunk c;
      c.owned = std::move(b);
      c.off = 0;
      c.len = c.owned.size();
      out.push_back(std::move(c));
    }
    return out;
  }
  // Return chunks obtained from recv_zc (releases loan references; owned
  // chunks just free their storage).
  virtual void release_chunks(std::vector<buf::RxChunk>& chunks) {
    chunks.clear();
  }
  [[nodiscard]] virtual std::size_t send_space(SocketId s) = 0;
  [[nodiscard]] virtual std::size_t bytes_available(SocketId s) = 0;

  virtual void close(SocketId s) = 0;
  // Reclaim a socket's resources once on_closed has fired.
  virtual void release(SocketId s) = 0;

  // Inject application code as a task in this app's address space.
  virtual void run_app(std::function<void(sim::TaskCtx&)> fn) = 0;
  [[nodiscard]] virtual sim::SpaceId app_space() const = 0;
  [[nodiscard]] virtual const std::string& app_name() const = 0;

  // TCP parameters applied to subsequently created connections. In the
  // user-level organization this is the paper's application-specific
  // specialization hook; the monolithic organizations accept it too so the
  // benches stay symmetric.
  void set_tcp_config(const proto::TcpConfig& cfg) { tcp_config_ = cfg; }
  [[nodiscard]] const proto::TcpConfig& tcp_config() const {
    return tcp_config_;
  }

 protected:
  proto::TcpConfig tcp_config_;
};

}  // namespace ulnet::api
