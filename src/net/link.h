// Link models.
//
// A Link is a broadcast medium with serialization-time accounting: one frame
// occupies the channel for its wire time (preamble + padded frame + FCS) and
// successive frames are separated by the inter-packet gap, which is how the
// paper's "link saturation when the Ethernet frame format and inter-packet
// gaps are accounted for" bound (Table 1) arises. Ethernet is a shared
// 10 Mb/s medium; AN1 is modelled as the paper's "switchless, private
// segment" at 100 Mb/s.
//
// Links also host fault injection (loss, duplication, corruption, jitter)
// used by the TCP robustness and property tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/frame.h"
#include "sim/event_loop.h"
#include "sim/histogram.h"
#include "sim/rng.h"

namespace ulnet::sim {
struct Metrics;
class Tracer;
}  // namespace ulnet::sim

namespace ulnet::net {

class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;
  // Hardware-level frame arrival (before any interrupt or CPU involvement).
  // Takes the frame by value: the link hands each recipient its own frame,
  // moving rather than copying for the final (usually only) recipient.
  virtual void frame_arrived(Frame f) = 0;
  [[nodiscard]] virtual MacAddr mac() const = 0;
  [[nodiscard]] virtual bool promiscuous() const { return false; }
};

// Delivery portal for cross-partition links. When a Link spans two
// partitions its transmit side (channel occupancy, fault draws, histograms)
// runs on the sender's loop, but the delivery event belongs to the
// receiver's loop; a portal intercepts the scheduling step so the World can
// route it through a per-link mailbox drained at the next conservative
// window barrier instead of scheduling into the sender's own loop.
class LinkPortal {
 public:
  virtual ~LinkPortal() = default;
  virtual void remote_deliver(sim::Time arrive, Frame f,
                              const LinkEndpoint* from) = 0;
};

struct LinkSpec {
  std::string name;
  double bits_per_sec = 0;
  std::size_t preamble_bytes = 0;
  std::size_t ipg_bytes = 0;       // inter-packet gap, in byte times
  std::size_t fcs_bytes = 0;       // trailing CRC
  std::size_t min_frame = 0;       // pad-to size including header+FCS
  std::size_t header_bytes = 0;    // link header size
  std::size_t mtu_payload = 0;     // max payload after the link header
  sim::Time propagation = 0;

  // Wire time of a frame whose header+payload length is `frame_len`.
  [[nodiscard]] sim::Time serialization_ns(std::size_t frame_len) const;
  // Occupancy including the inter-packet gap (back-to-back spacing).
  [[nodiscard]] sim::Time occupancy_ns(std::size_t frame_len) const;
  // Analytic payload saturation throughput for back-to-back frames each
  // carrying `payload` bytes, in bits/second (Table 1's "standalone" row).
  [[nodiscard]] double payload_saturation_bps(std::size_t payload) const;

  static LinkSpec ethernet10();  // 10 Mb/s DIX Ethernet
  static LinkSpec an1();         // 100 Mb/s DEC SRC AN1 segment
};

struct FaultPlan {
  double loss_p = 0;
  double dup_p = 0;
  double corrupt_p = 0;
  sim::Time jitter_max = 0;  // uniform extra delay; can reorder frames

  // Per-kind injection counts, incremented by the link as faults fire, so
  // tests can assert that a configured fault actually happened (previously
  // only losses were visible, via Link::frames_dropped()).
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t jittered = 0;  // frames that received nonzero extra delay

  [[nodiscard]] std::uint64_t total_injected() const {
    return dropped + duplicated + corrupted + jittered;
  }
};

class Link {
 public:
  Link(sim::EventLoop& loop, sim::Rng& rng, LinkSpec spec)
      : loop_(loop), rng_(rng), spec_(std::move(spec)) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void attach(LinkEndpoint* ep) { endpoints_.push_back(ep); }

  // Observation tap: sees every frame as it is queued for transmission
  // (before fault injection). For traces and tests; not part of the model.
  std::function<void(const Frame&)> tap;

  // Queue a frame for transmission by `from`. Delivery is scheduled after
  // channel acquisition + serialization + propagation (+ injected jitter).
  // Returns the time the channel becomes free again (end of this frame's
  // occupancy) so a NIC can model transmit-ring drain.
  sim::Time transmit(const LinkEndpoint* from, Frame f);

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }
  FaultPlan& faults() { return faults_; }

  // Mirror fault/drop injections into world metrics (bound by the World).
  void bind_metrics(sim::Metrics* m) { metrics_ = m; }
  // Span events for wire transit (bound by the World; host -1 = the wire).
  void bind_tracer(sim::Tracer* t) { tracer_ = t; }

  // Route deliveries through a cross-partition mailbox instead of this
  // link's own loop (set by the World for links that span partitions).
  void set_portal(LinkPortal* p) { portal_ = p; }
  // Mailbox drain entry point: runs the normal delivery fan-out on the
  // receiving partition's thread.
  void portal_deliver(Frame f, const LinkEndpoint* from) {
    deliver(std::move(f), from);
  }

  // Per-stage residency histograms (nanoseconds), always on:
  // time a frame waited for the channel before its first bit went out...
  [[nodiscard]] const sim::Histogram& tx_wait_hist() const {
    return tx_wait_hist_;
  }
  // ...and time from first bit to arrival (serialization + propagation +
  // any injected jitter). Lost frames appear in neither.
  [[nodiscard]] const sim::Histogram& transit_hist() const {
    return transit_hist_;
  }

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] sim::Time busy_ns() const { return busy_ns_; }

 private:
  void deliver(Frame f, const LinkEndpoint* from);
  [[nodiscard]] MacAddr frame_dst(const Frame& f) const;

  sim::EventLoop& loop_;
  sim::Rng& rng_;
  LinkSpec spec_;
  FaultPlan faults_;
  sim::Metrics* metrics_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  LinkPortal* portal_ = nullptr;
  sim::Histogram tx_wait_hist_;
  sim::Histogram transit_hist_;
  std::vector<LinkEndpoint*> endpoints_;
  sim::Time channel_free_at_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  sim::Time busy_ns_ = 0;
};

}  // namespace ulnet::net
