#include "net/addr.h"

#include <cstdio>
#include <stdexcept>

namespace ulnet::net {

std::string MacAddr::to_string() const {
  char tmp[18];
  std::snprintf(tmp, sizeof tmp, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return tmp;
}

MacAddr MacAddr::from_index(std::uint16_t host, std::uint8_t ifc) {
  // 0x02 = locally administered, unicast.
  return MacAddr{{0x02, 0x00, 0x5e, static_cast<std::uint8_t>(host >> 8),
                  static_cast<std::uint8_t>(host & 0xff), ifc}};
}

std::string Ipv4Addr::to_string() const {
  char tmp[16];
  std::snprintf(tmp, sizeof tmp, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return tmp;
}

Ipv4Addr Ipv4Addr::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) !=
          4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("bad IPv4 address: " + dotted);
  }
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c),
                     static_cast<std::uint8_t>(d));
}

bool same_subnet(Ipv4Addr a, Ipv4Addr b, int prefix_len) {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return a == b;
  const std::uint32_t mask = ~0u << (32 - prefix_len);
  return (a.value & mask) == (b.value & mask);
}

}  // namespace ulnet::net
