#include "net/frame.h"

namespace ulnet::net {

void EthHeader::serialize(buf::Bytes& out) const {
  buf::put_bytes(out, buf::ByteView(dst.octets.data(), dst.octets.size()));
  buf::put_bytes(out, buf::ByteView(src.octets.data(), src.octets.size()));
  buf::put16(out, ethertype);
}

std::optional<EthHeader> EthHeader::parse(buf::ByteView b) {
  if (b.size() < kSize) return std::nullopt;
  EthHeader h;
  for (int i = 0; i < 6; ++i) h.dst.octets[i] = b[i];
  for (int i = 0; i < 6; ++i) h.src.octets[i] = b[6 + i];
  h.ethertype = buf::rd16(b, 12);
  return h;
}

void An1Header::serialize(buf::Bytes& out) const {
  buf::put_bytes(out, buf::ByteView(dst.octets.data(), dst.octets.size()));
  buf::put_bytes(out, buf::ByteView(src.octets.data(), src.octets.size()));
  buf::put16(out, bqi);
  buf::put16(out, bqi_advert);
  buf::put16(out, ethertype);
}

std::optional<An1Header> An1Header::parse(buf::ByteView b) {
  if (b.size() < kSize) return std::nullopt;
  An1Header h;
  for (int i = 0; i < 6; ++i) h.dst.octets[i] = b[i];
  for (int i = 0; i < 6; ++i) h.src.octets[i] = b[6 + i];
  h.bqi = buf::rd16(b, kBqiOffset);
  h.bqi_advert = buf::rd16(b, kAdvertOffset);
  h.ethertype = buf::rd16(b, 16);
  return h;
}

}  // namespace ulnet::net
