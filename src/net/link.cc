#include "net/link.h"

#include <algorithm>
#include <utility>

#include "sim/metrics.h"
#include "sim/trace.h"

namespace ulnet::net {

namespace {
// Chrome "pid" for wire-transit spans: the link is not a host.
constexpr std::int32_t kWireHost = -1;
}  // namespace

sim::Time LinkSpec::serialization_ns(std::size_t frame_len) const {
  const std::size_t padded = std::max(frame_len + fcs_bytes, min_frame);
  const std::size_t wire_bytes = preamble_bytes + padded;
  const double ns =
      static_cast<double>(wire_bytes) * 8.0 / bits_per_sec * 1e9;
  return static_cast<sim::Time>(ns);
}

sim::Time LinkSpec::occupancy_ns(std::size_t frame_len) const {
  const double gap_ns =
      static_cast<double>(ipg_bytes) * 8.0 / bits_per_sec * 1e9;
  return serialization_ns(frame_len) + static_cast<sim::Time>(gap_ns);
}

double LinkSpec::payload_saturation_bps(std::size_t payload) const {
  const std::size_t frame_len =
      std::min(payload, mtu_payload) + header_bytes;
  const sim::Time per_frame = occupancy_ns(frame_len);
  const double payload_bits =
      static_cast<double>(std::min(payload, mtu_payload)) * 8.0;
  return payload_bits / (static_cast<double>(per_frame) / 1e9);
}

LinkSpec LinkSpec::ethernet10() {
  LinkSpec s;
  s.name = "ethernet-10";
  s.bits_per_sec = 10e6;
  s.preamble_bytes = 8;
  s.ipg_bytes = 12;
  s.fcs_bytes = 4;
  s.min_frame = 64;  // including header and FCS
  s.header_bytes = EthHeader::kSize;
  s.mtu_payload = 1500;
  s.propagation = 5 * sim::kUs;
  return s;
}

LinkSpec LinkSpec::an1() {
  LinkSpec s;
  s.name = "an1-100";
  s.bits_per_sec = 100e6;
  s.preamble_bytes = 4;
  s.ipg_bytes = 4;
  s.fcs_bytes = 4;
  s.min_frame = 32;
  s.header_bytes = An1Header::kSize;
  // The AN1 hardware supports packets up to 64 KB; the paper's driver
  // restricted itself to Ethernet-format 1500-byte datagrams (that limit
  // lives in the driver, not here).
  s.mtu_payload = 65535;
  s.propagation = 2 * sim::kUs;
  return s;
}

sim::Time Link::transmit(const LinkEndpoint* from, Frame f) {
  if (tap) tap(f);
  const sim::Time now = loop_.now();
  const sim::Time start = std::max(now, channel_free_at_);
  const sim::Time ser = spec_.serialization_ns(f.size());
  const sim::Time end = start + ser;
  channel_free_at_ = start + spec_.occupancy_ns(f.size());
  busy_ns_ += ser;
  frames_sent_++;
  bytes_sent_ += f.size();
  tx_wait_hist_.record(static_cast<std::uint64_t>(start - now));

  if (faults_.loss_p > 0 && rng_.chance(faults_.loss_p)) {
    frames_dropped_++;
    faults_.dropped++;
    if (metrics_ != nullptr) metrics_->link_frames_lost++;
    return channel_free_at_;
  }

  Frame delivered = std::move(f);
  if (faults_.corrupt_p > 0 && rng_.chance(faults_.corrupt_p) &&
      delivered.bytes.size() > spec_.header_bytes) {
    // Flip one bit beyond the link header so the frame still demuxes and the
    // corruption must be caught by an IP/TCP/UDP checksum.
    const std::size_t off =
        spec_.header_bytes +
        rng_.below(delivered.bytes.size() - spec_.header_bytes);
    delivered.bytes[off] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    faults_.corrupted++;
    if (metrics_ != nullptr) metrics_->link_frames_corrupted++;
  }

  const bool duplicate = faults_.dup_p > 0 && rng_.chance(faults_.dup_p);
  if (duplicate) {
    faults_.duplicated++;
    if (metrics_ != nullptr) metrics_->link_frames_duplicated++;
  }
  sim::Time arrive = end + spec_.propagation;
  if (faults_.jitter_max > 0) {
    const sim::Time extra = rng_.range(0, faults_.jitter_max);
    if (extra > 0) {
      faults_.jittered++;
      if (metrics_ != nullptr) metrics_->link_frames_jittered++;
    }
    arrive += extra;
  }

  transit_hist_.record(static_cast<std::uint64_t>(arrive - start));
  if (tracer_ != nullptr && tracer_->enabled() && delivered.trace_id != 0) {
    tracer_->span_begin(start, kWireHost, "wire", delivered.trace_id,
                        static_cast<std::int64_t>(delivered.size()));
    tracer_->span_end(arrive, kWireHost, "wire", delivered.trace_id);
  }

  // Rare fault path copies; the common path moves the frame straight into
  // the delivery closure. Schedule order (primary, then duplicate) is part
  // of the deterministic FIFO tie-break, so the copy happens up front; a
  // portal preserves it via the per-link mailbox sequence numbers.
  Frame dup_copy;
  const sim::Time dup_at = arrive + spec_.occupancy_ns(delivered.size());
  if (duplicate) dup_copy = delivered;
  if (portal_ != nullptr) {
    portal_->remote_deliver(arrive, std::move(delivered), from);
    if (duplicate) portal_->remote_deliver(dup_at, std::move(dup_copy), from);
    return channel_free_at_;
  }
  loop_.schedule_at(arrive, [this, f = std::move(delivered), from]() mutable {
    deliver(std::move(f), from);
  });
  if (duplicate) {
    loop_.schedule_at(dup_at, [this, f = std::move(dup_copy), from]() mutable {
      deliver(std::move(f), from);
    });
  }
  return channel_free_at_;
}

MacAddr Link::frame_dst(const Frame& f) const {
  MacAddr dst;
  for (int i = 0; i < 6 && i < static_cast<int>(f.bytes.size()); ++i) {
    dst.octets[static_cast<std::size_t>(i)] = f.bytes[static_cast<std::size_t>(i)];
  }
  return dst;
}

void Link::deliver(Frame f, const LinkEndpoint* from) {
  const MacAddr dst = frame_dst(f);
  // Two passes so the last recipient can take the frame by move while any
  // earlier ones (broadcast, promiscuous taps) get copies, preserving the
  // original endpoint visit order.
  LinkEndpoint* last = nullptr;
  for (LinkEndpoint* ep : endpoints_) {
    if (ep == from) continue;
    if (dst.is_broadcast() || ep->mac() == dst || ep->promiscuous()) {
      last = ep;
    }
  }
  for (LinkEndpoint* ep : endpoints_) {
    if (ep == from) continue;
    if (dst.is_broadcast() || ep->mac() == dst || ep->promiscuous()) {
      if (ep == last) {
        ep->frame_arrived(std::move(f));
        break;
      }
      ep->frame_arrived(f);
    }
  }
}

}  // namespace ulnet::net
