// Link-level (MAC) and network-level (IPv4) addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "buf/bytes.h"

namespace ulnet::net {

struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] bool is_broadcast() const {
    for (auto o : octets) {
      if (o != 0xff) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;

  static MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  // Locally-administered address derived from a small host/interface index.
  static MacAddr from_index(std::uint16_t host, std::uint8_t ifc);
};

struct Ipv4Addr {
  std::uint32_t value = 0;  // host byte order

  auto operator<=>(const Ipv4Addr&) const = default;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_zero() const { return value == 0; }

  static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                              std::uint8_t d) {
    return Ipv4Addr{(static_cast<std::uint32_t>(a) << 24) |
                    (static_cast<std::uint32_t>(b) << 16) |
                    (static_cast<std::uint32_t>(c) << 8) | d};
  }
  // Parse dotted quad; throws std::invalid_argument on malformed input.
  static Ipv4Addr parse(const std::string& dotted);
};

// Returns true if a and b share the given prefix length.
[[nodiscard]] bool same_subnet(Ipv4Addr a, Ipv4Addr b, int prefix_len);

}  // namespace ulnet::net

template <>
struct std::hash<ulnet::net::Ipv4Addr> {
  std::size_t operator()(const ulnet::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<ulnet::net::MacAddr> {
  std::size_t operator()(const ulnet::net::MacAddr& m) const noexcept {
    std::uint64_t v = 0;
    for (auto o : m.octets) v = (v << 8) | o;
    return std::hash<std::uint64_t>{}(v);
  }
};
