#include "net/pcap.h"

#include <stdexcept>

#include "net/frame.h"

namespace ulnet::net {

namespace {
constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkUser0 = 147;

void put_u32(std::FILE* f, std::uint32_t v) {
  // pcap is written in host byte order together with the magic marker.
  std::fwrite(&v, sizeof v, 1, f);
}
void put_u16(std::FILE* f, std::uint16_t v) { std::fwrite(&v, sizeof v, 1, f); }
}  // namespace

PcapWriter::PcapWriter(const std::string& path, Link& link,
                       sim::EventLoop& loop)
    : link_(link), loop_(loop) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("PcapWriter: cannot open " + path);
  }
  const bool ethernet = link.spec().header_bytes == EthHeader::kSize;
  write_header(ethernet ? kLinkEthernet : kLinkUser0);
  link_.tap = [this](const Frame& f) { record(f); };
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::write_header(std::uint32_t linktype) {
  put_u32(file_, kMagic);
  put_u16(file_, 2);   // version major
  put_u16(file_, 4);   // version minor
  put_u32(file_, 0);   // thiszone
  put_u32(file_, 0);   // sigfigs
  put_u32(file_, 65535);  // snaplen
  put_u32(file_, linktype);
}

void PcapWriter::record(const Frame& f) {
  if (file_ == nullptr) return;
  const sim::Time now = loop_.now();
  put_u32(file_, static_cast<std::uint32_t>(now / sim::kSec));
  put_u32(file_, static_cast<std::uint32_t>((now % sim::kSec) / sim::kUs));
  put_u32(file_, static_cast<std::uint32_t>(f.bytes.size()));
  put_u32(file_, static_cast<std::uint32_t>(f.bytes.size()));
  std::fwrite(f.bytes.data(), 1, f.bytes.size(), file_);
  frames_written_++;
}

void PcapWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace ulnet::net
