// Link-level frame formats.
//
// Ethernet: the classic 14-byte DIX header (dst, src, ethertype).
//
// AN1: the DEC SRC Autonet link header. We model it as a 16-byte header:
// dst MAC, src MAC, a 16-bit *buffer queue index* (BQI), and a 16-bit
// ethertype. The BQI is the paper's central hardware hook: an index into a
// table on the receiving controller that selects the host buffer ring into
// which the packet is DMA'd. BQI 0 is reserved for protected kernel buffers.
// (The real AN1 carried the BQI in an "unused field" of its header; the
// exact layout is immaterial to the mechanism.)
#pragma once

#include <cstdint>
#include <optional>

#include "buf/bytes.h"
#include "net/addr.h"

namespace ulnet::net {

// EtherTypes used across the stack (also valid inside AN1 encapsulation).
inline constexpr std::uint16_t kEtherTypeIp = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
// Private ethertype for the raw-exchange micro-benchmark of Table 1.
inline constexpr std::uint16_t kEtherTypeRaw = 0x88b5;

// A fully serialized link-level frame plus the receive-path metadata a
// controller would see.
struct Frame {
  buf::Bytes bytes;
  // Latency-provenance identity: assigned once at the packet's birth (app
  // send or NIC receive) and carried across the wire, so spans and flow
  // events on both hosts share one id. 0 = not yet stamped. Out-of-band
  // metadata -- never serialized, never charged, never parsed.
  std::uint64_t trace_id = 0;

  [[nodiscard]] std::size_t size() const { return bytes.size(); }
};

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;

  static constexpr std::size_t kSize = 14;

  void serialize(buf::Bytes& out) const;
  // Parse from the front of `b`; nullopt if too short.
  static std::optional<EthHeader> parse(buf::ByteView b);
};

// ---------------------------------------------------------------------------
// AN1
// ---------------------------------------------------------------------------

struct An1Header {
  MacAddr dst;
  MacAddr src;
  std::uint16_t bqi = 0;  // receive buffer queue index at the destination
  // The "unused field" of the real AN1 header (paper Section 3.4): during
  // connection setup each side advertises the BQI the peer should put in
  // subsequent packets. 0 = no advertisement.
  std::uint16_t bqi_advert = 0;
  std::uint16_t ethertype = 0;

  static constexpr std::size_t kSize = 18;
  static constexpr std::size_t kBqiOffset = 12;
  static constexpr std::size_t kAdvertOffset = 14;

  void serialize(buf::Bytes& out) const;
  static std::optional<An1Header> parse(buf::ByteView b);
};

}  // namespace ulnet::net
