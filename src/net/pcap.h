// PcapWriter: records a link's traffic to a standard pcap file (readable by
// tcpdump/wireshark). Ethernet links write LINKTYPE_ETHERNET captures
// directly; AN1 links are written as LINKTYPE_USER0 with the 18-byte AN1
// header intact. Timestamps are the simulation clock.
//
// Attach one to a Link's tap to audit a run:
//   net::PcapWriter pcap("trace.pcap", link);
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/link.h"

namespace ulnet::net {

class PcapWriter {
 public:
  // Opens `path` and installs itself as `link`'s tap. Throws
  // std::runtime_error if the file cannot be opened.
  PcapWriter(const std::string& path, Link& link, sim::EventLoop& loop);
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  // Record one frame at the current simulated time (called by the tap; may
  // also be invoked directly).
  void record(const Frame& f);

  // Flush and close early (also done by the destructor).
  void close();

  [[nodiscard]] std::uint64_t frames_written() const {
    return frames_written_;
  }

 private:
  void write_header(std::uint32_t linktype);

  std::FILE* file_ = nullptr;
  Link& link_;
  sim::EventLoop& loop_;
  std::uint64_t frames_written_ = 0;
};

}  // namespace ulnet::net
