// Monolithic in-kernel protocol organization (the Ultrix 4.2A baseline).
//
// The whole stack lives in the kernel:
//  * applications enter it with a generic trap per socket call,
//  * user data crosses the user/kernel boundary with a copy (or a page
//    remap at/above the copy-avoidance threshold),
//  * input packets are processed to completion inside the device ISR and
//    the blocked application is woken through the scheduler,
//  * the AN1 driver uses only BQI 0 (protected kernel buffers), exactly as
//    the paper's unmodified Ultrix driver did.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/net_system.h"
#include "api/socket_bridge.h"
#include "core/exec_env.h"
#include "os/world.h"
#include "proto/stack.h"

namespace ulnet::baseline {

class InKernelApp;

// Per-host instance: one kernel-resident stack shared by all apps.
class InKernelOrg {
 public:
  InKernelOrg(os::World& world, os::Host& host);
  InKernelOrg(const InKernelOrg&) = delete;
  InKernelOrg& operator=(const InKernelOrg&) = delete;

  // Create an application (its own address space) using this kernel stack.
  api::NetSystem& add_app(const std::string& name);

  proto::NetworkStack& stack() { return *stack_; }
  os::Host& host() { return host_; }

  // Opt the user/kernel boundary into page donation instead of copying
  // (the copy-avoidance mechanism applied unconditionally, not just above
  // the remap threshold). Off by default.
  void set_zero_copy(bool on) { zero_copy_ = on; }

 private:
  friend class InKernelApp;

  void wire_receive_paths();

  os::World& world_;
  os::Host& host_;
  core::HostStackEnv env_;
  std::unique_ptr<proto::NetworkStack> stack_;
  std::vector<std::unique_ptr<InKernelApp>> apps_;
  bool zero_copy_ = false;
};

class InKernelApp : public api::NetSystem {
 public:
  InKernelApp(InKernelOrg& org, const std::string& name);

  bool listen(std::uint16_t port,
              std::function<api::SocketEvents(api::SocketId)> acceptor)
      override;
  void connect(net::Ipv4Addr dst, std::uint16_t port, api::SocketEvents evs,
               std::function<void(api::SocketId)> done) override;
  std::size_t send(api::SocketId s, buf::ByteView data) override;
  buf::Bytes recv(api::SocketId s, std::size_t max) override;
  std::size_t send_space(api::SocketId s) override;
  std::size_t bytes_available(api::SocketId s) override;
  void close(api::SocketId s) override;
  void release(api::SocketId s) override;
  void run_app(std::function<void(sim::TaskCtx&)> fn) override;
  [[nodiscard]] sim::SpaceId app_space() const override { return space_; }
  [[nodiscard]] const std::string& app_name() const override { return name_; }

 private:
  os::Kernel& kernel() { return org_.host_.kernel(); }
  sim::Cpu& cpu() { return org_.host_.cpu(); }

  InKernelOrg& org_;
  std::string name_;
  sim::SpaceId space_;
  api::SocketBridge bridge_;
};

}  // namespace ulnet::baseline
