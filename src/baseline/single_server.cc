#include "baseline/single_server.h"

#include <algorithm>

namespace ulnet::baseline {

SingleServerOrg::SingleServerOrg(os::World& world, os::Host& host, Config cfg)
    : world_(world),
      host_(host),
      cfg_(cfg),
      server_space_(host.new_space("ux-server")),
      env_(host, world.rng(), server_space_) {
  if (cfg_.dedicated_device_server) {
    device_space_ = host.new_space("netdev-server");
  }

  env_.set_transmit([this](int ifc, net::MacAddr dst, std::uint16_t et,
                           buf::Bytes payload, const proto::TxFlow* flow) {
    hw::Nic* nic = env_.nic(ifc);
    net::Frame f = core::frame_for(*nic, dst, et, payload,
                                   hw::An1Nic::kKernelBqi);
    f.trace_id = flow != nullptr ? flow->trace_id : 0;
    if (cfg_.dedicated_device_server) {
      // Dedicated device server: one more IPC + domain crossing per packet.
      host_.kernel().ipc_send(
          host_.cpu().current(), device_space_, f.size(),
          [this, nic, fr = std::move(f)](sim::TaskCtx& ctx) mutable {
            nic->transmit(ctx, std::move(fr));
          });
      return;
    }
    switch (cfg_.device_access) {
      case DeviceAccess::kMapped:
        // The server programs the NIC from its own space.
        nic->transmit(host_.cpu().current(), std::move(f));
        break;
      case DeviceAccess::kMessage: {
        // In-kernel driver behind a message interface: a full IPC carries
        // the packet into the kernel (the slowest UX variant, paper [10]).
        host_.kernel().ipc_send(
            host_.cpu().current(), sim::kKernelSpace, f.size(),
            [nic, fr = std::move(f)](sim::TaskCtx& kctx) mutable {
              nic->transmit(kctx, std::move(fr));
            });
        break;
      }
      case DeviceAccess::kSharedMem: {
        // Shared-memory hand-off to the in-kernel driver [19]: no data
        // copy, but a trap + kernel task to kick the driver.
        auto& cpu = host_.cpu();
        host_.kernel().trap(cpu.current());
        cpu.charge(cpu.cost().semaphore_signal);
        host_.loop().schedule_at(
            cpu.current().now(), [this, nic, fr = std::move(f)]() mutable {
              host_.cpu().submit(
                  sim::kKernelSpace, sim::Prio::kNormal,
                  [nic, fr = std::move(fr)](sim::TaskCtx& kctx) mutable {
                    nic->transmit(kctx, std::move(fr));
                  });
            });
        break;
      }
    }
  });
  stack_ = std::make_unique<proto::NetworkStack>(env_);
  wire_receive_paths();
}

void SingleServerOrg::wire_receive_paths() {
  for (std::size_t i = 0; i < host_.interfaces().size(); ++i) {
    hw::Nic* nic = host_.interfaces()[i].nic;
    const int ifc = static_cast<int>(i);
    const bool an1 = core::is_an1(*nic);
    nic->set_rx_handler([this, ifc, an1](sim::TaskCtx& ctx,
                                         const net::Frame& f, std::uint16_t) {
      if (!cfg_.dedicated_device_server) {
        if (cfg_.device_access == DeviceAccess::kMessage) {
          // In-kernel driver with a message interface: the packet crosses
          // to the server inside an IPC message (copied).
          host_.kernel().ipc_send(ctx, server_space_, f.size(),
                                  [this, ifc, f, an1](sim::TaskCtx&) {
                                    deliver_frame(ifc, f, an1);
                                  });
          return;
        }
        // Mapped / shared-memory variants: the ISR wakes the protocol
        // server; input processing continues in the server's space.
        host_.cpu().charge(host_.cpu().cost().kernel_wakeup);
        if (cfg_.device_access == DeviceAccess::kSharedMem) {
          host_.cpu().charge(host_.cpu().cost().semaphore_signal);
        }
        host_.cpu().submit(server_space_, sim::Prio::kNormal,
                           [this, ifc, f, an1](sim::TaskCtx&) {
                             deliver_frame(ifc, f, an1);
                           });
      } else {
        // ISR wakes the device server, which forwards the packet to the
        // protocol server by IPC.
        host_.cpu().charge(host_.cpu().cost().kernel_wakeup);
        host_.cpu().submit(
            device_space_, sim::Prio::kNormal,
            [this, ifc, f, an1](sim::TaskCtx& dctx) {
              host_.kernel().ipc_send(dctx, server_space_, f.size(),
                                      [this, ifc, f, an1](sim::TaskCtx&) {
                                        deliver_frame(ifc, f, an1);
                                      });
            });
      }
      (void)ctx;
    });
  }
}

void SingleServerOrg::deliver_frame(int ifc, const net::Frame& f, bool an1) {
  if (an1) {
    auto h = net::An1Header::parse(f.bytes);
    if (!h) return;
    stack_->link_input(ifc, h->ethertype,
                       buf::ByteView(f.bytes.data() + net::An1Header::kSize,
                                     f.bytes.size() - net::An1Header::kSize));
  } else {
    auto h = net::EthHeader::parse(f.bytes);
    if (!h) return;
    stack_->link_input(ifc, h->ethertype,
                       buf::ByteView(f.bytes.data() + net::EthHeader::kSize,
                                     f.bytes.size() - net::EthHeader::kSize));
  }
}

api::NetSystem& SingleServerOrg::add_app(const std::string& name) {
  apps_.push_back(std::make_unique<SingleServerApp>(*this, name));
  return *apps_.back();
}

SingleServerOrg::ServerSocket* SingleServerOrg::by_conn(
    proto::TcpConnection* c) {
  auto it = sockets_.find(c);
  return it == sockets_.end() ? nullptr : &it->second;
}

SingleServerOrg::ServerSocket* SingleServerOrg::by_app_id(
    SingleServerApp* app, api::SocketId id) {
  for (auto& [conn, s] : sockets_) {
    if (s.app == app && s.app_id == id) return &s;
  }
  return nullptr;
}

void SingleServerOrg::ipc_to_app(SingleServerApp* app, std::size_t bytes,
                                 std::function<void()> fn) {
  if (zero_copy_ && bytes > 0) {
    host_.kernel().ipc_send_ool(host_.cpu().current(), app->space_, bytes,
                                [fn = std::move(fn)](sim::TaskCtx&) { fn(); });
    return;
  }
  host_.kernel().ipc_send(host_.cpu().current(), app->space_, bytes,
                          [fn = std::move(fn)](sim::TaskCtx&) { fn(); });
}

// ---- server-side operations ----

void SingleServerOrg::srv_connect(SingleServerApp* app, api::SocketId id,
                                  net::Ipv4Addr dst, std::uint16_t port,
                                  const proto::TcpConfig& cfg) {
  host_.cpu().charge(host_.cpu().cost().ux_server_op);
  proto::TcpConnection* conn = stack_->tcp().connect(dst, port, this, cfg);
  if (conn == nullptr) {
    ipc_to_app(app, 0, [app, id] {
      if (auto* st = app->stub(id); st != nullptr && st->events.on_closed) {
        st->closed = true;
        st->events.on_closed("no route to host");
      }
    });
    return;
  }
  auto& s = sockets_[conn];
  s.conn = conn;
  s.app = app;
  s.app_id = id;
}

void SingleServerOrg::srv_listen(SingleServerApp* app, std::uint16_t port,
                                 const proto::TcpConfig& cfg) {
  listeners_[port] = app;
  stack_->tcp().listen(port, this, cfg);
}

void SingleServerOrg::srv_send(SingleServerApp* app, api::SocketId id,
                               std::size_t len) {
  (void)len;
  ServerSocket* s = by_app_id(app, id);
  if (s == nullptr) return;
  pump(*s);
}

void SingleServerOrg::pump(ServerSocket& s) {
  host_.cpu().charge(host_.cpu().cost().ux_server_op);
  // Feed staged user writes into the TCP send buffer, preserving write
  // boundaries; return credit for what was accepted.
  std::size_t credited = 0;
  while (!s.staging.empty()) {
    const std::size_t space = s.conn->send_space();
    if (space == 0) break;
    const std::size_t n = std::min(space, s.staging.size());
    buf::Bytes chunk(s.staging.begin(),
                     s.staging.begin() + static_cast<long>(n));
    const std::size_t took = s.conn->send(chunk);
    s.staging.erase(s.staging.begin(),
                    s.staging.begin() + static_cast<long>(took));
    credited += took;
    if (took < n) break;
  }
  if (s.close_pending && s.staging.empty()) {
    s.close_pending = false;
    s.conn->close();
  }
  if (credited > 0) {
    SingleServerApp* app = s.app;
    const api::SocketId id = s.app_id;
    ipc_to_app(app, 0, [app, id, credited] {
      if (auto* st = app->stub(id); st != nullptr) {
        st->send_credit += credited;
        if (st->events.on_writable) st->events.on_writable();
      }
    });
  }
}

void SingleServerOrg::srv_close(api::SocketId id, SingleServerApp* app) {
  ServerSocket* s = by_app_id(app, id);
  if (s == nullptr) return;
  if (s->staging.empty()) {
    s->conn->close();
  } else {
    // Graceful close: the FIN must follow the staged data.
    s->close_pending = true;
  }
}

void SingleServerOrg::srv_release(api::SocketId id, SingleServerApp* app) {
  if (ServerSocket* s = by_app_id(app, id); s != nullptr) {
    proto::TcpConnection* conn = s->conn;
    sockets_.erase(conn);
    stack_->tcp().release(conn);
  }
}

// ---- TcpObserver (server space) ----

void SingleServerOrg::on_established(proto::TcpConnection& c) {
  ServerSocket* s = by_conn(&c);
  if (s == nullptr || s->established_sent) return;
  host_.cpu().charge(host_.cpu().cost().ux_server_op);
  s->established_sent = true;
  SingleServerApp* app = s->app;
  const api::SocketId id = s->app_id;
  ipc_to_app(app, 0, [app, id] {
    if (auto* st = app->stub(id); st != nullptr && st->events.on_established) {
      st->events.on_established();
    }
  });
}

void SingleServerOrg::on_accept(proto::TcpConnection& c) {
  auto lit = listeners_.find(c.local_port());
  if (lit == listeners_.end()) {
    c.abort();
    return;
  }
  SingleServerApp* app = lit->second;
  host_.cpu().charge(host_.cpu().cost().ux_server_op);
  // Mint the application-side id now (a simulation bookkeeping shortcut;
  // the costs of telling the app are paid by the IPC below).
  const api::SocketId id = app->next_id_++;
  auto& s = sockets_[&c];
  s.conn = &c;
  s.app = app;
  s.app_id = id;
  pending_accept_ports_[id] = c.local_port();
  ipc_to_app(app, 0, [app, id] { app->finish_accept(id); });
}

std::uint16_t SingleServerOrg::take_pending_accept_port(api::SocketId id) {
  auto it = pending_accept_ports_.find(id);
  if (it == pending_accept_ports_.end()) return 0;
  const std::uint16_t port = it->second;
  pending_accept_ports_.erase(it);
  return port;
}

void SingleServerOrg::on_data_ready(proto::TcpConnection& c) {
  ServerSocket* s = by_conn(&c);
  if (s == nullptr) return;
  host_.cpu().charge(host_.cpu().cost().ux_server_op);
  // Drain the TCP buffer and push the data to the application in one IPC.
  buf::Bytes data = c.read(std::numeric_limits<std::size_t>::max());
  if (data.empty()) return;
  SingleServerApp* app = s->app;
  const api::SocketId id = s->app_id;
  ipc_to_app(app, data.size(), [app, id, data = std::move(data)] {
    if (auto* st = app->stub(id); st != nullptr) {
      st->recv_queue.insert(st->recv_queue.end(), data.begin(), data.end());
      if (st->events.on_readable) st->events.on_readable(st->recv_queue.size());
    }
  });
}

void SingleServerOrg::on_send_space(proto::TcpConnection& c) {
  if (ServerSocket* s = by_conn(&c); s != nullptr) pump(*s);
}

void SingleServerOrg::on_peer_fin(proto::TcpConnection& c) {
  ServerSocket* s = by_conn(&c);
  if (s == nullptr) return;
  SingleServerApp* app = s->app;
  const api::SocketId id = s->app_id;
  ipc_to_app(app, 0, [app, id] {
    if (auto* st = app->stub(id); st != nullptr && st->events.on_eof) {
      st->events.on_eof();
    }
  });
}

void SingleServerOrg::on_closed(proto::TcpConnection& c,
                                const std::string& reason) {
  ServerSocket* s = by_conn(&c);
  if (s == nullptr) return;
  SingleServerApp* app = s->app;
  const api::SocketId id = s->app_id;
  ipc_to_app(app, 0, [app, id, reason] {
    if (auto* st = app->stub(id); st != nullptr && !st->closed) {
      st->closed = true;
      if (st->events.on_closed) st->events.on_closed(reason);
    }
  });
}

// ---------------------------------------------------------------------------
// SingleServerApp
// ---------------------------------------------------------------------------

SingleServerApp::SingleServerApp(SingleServerOrg& org, const std::string& name)
    : org_(org), name_(name), space_(org.host().new_space(name)) {}

api::SocketId SingleServerApp::new_stub(api::SocketEvents evs) {
  const api::SocketId id = next_id_++;
  auto& st = stubs_[id];
  st.events = std::move(evs);
  st.send_credit = proto::TcpConfig{}.send_buf;
  return id;
}

void SingleServerApp::finish_accept(api::SocketId id) {
  const std::uint16_t port = org_.take_pending_accept_port(id);
  auto it = acceptors_.find(port);
  api::SocketEvents evs;
  if (it != acceptors_.end()) evs = it->second(id);
  auto& st = stubs_[id];
  st.events = std::move(evs);
  st.send_credit = proto::TcpConfig{}.send_buf;
  if (next_id_ <= id) next_id_ = id + 1;
  if (st.events.on_established) st.events.on_established();
}

bool SingleServerApp::listen(
    std::uint16_t port,
    std::function<api::SocketEvents(api::SocketId)> acceptor) {
  acceptors_[port] = std::move(acceptor);
  org_.host().kernel().ipc_send(
      org_.host().cpu().current(), org_.server_space(), 32,
      [this, port, cfg = tcp_config_](sim::TaskCtx&) {
        org_.srv_listen(this, port, cfg);
      });
  return true;
}

void SingleServerApp::connect(net::Ipv4Addr dst, std::uint16_t port,
                              api::SocketEvents evs,
                              std::function<void(api::SocketId)> done) {
  const api::SocketId id = new_stub(std::move(evs));
  org_.host().kernel().ipc_send(
      org_.host().cpu().current(), org_.server_space(), 32,
      [this, id, dst, port, cfg = tcp_config_](sim::TaskCtx&) {
        org_.srv_connect(this, id, dst, port, cfg);
      });
  done(id);
}

std::size_t SingleServerApp::send(api::SocketId s, buf::ByteView data) {
  Stub* st = stub(s);
  if (st == nullptr || st->closed) return 0;
  const std::size_t n = std::min(data.size(), st->send_credit);
  if (n == 0) return 0;
  st->send_credit -= n;
  buf::Bytes copy(data.begin(), data.begin() + static_cast<long>(n));
  auto deliver = [this, s, copy = std::move(copy)](sim::TaskCtx&) mutable {
    if (SingleServerOrg::ServerSocket* sock = org_.by_app_id(this, s);
        sock != nullptr) {
      sock->staging.insert(sock->staging.end(), copy.begin(), copy.end());
      org_.pump(*sock);
    }
  };
  if (org_.zero_copy_) {
    org_.host().kernel().ipc_send_ool(org_.host().cpu().current(),
                                      org_.server_space(), n,
                                      std::move(deliver));
  } else {
    org_.host().kernel().ipc_send(org_.host().cpu().current(),
                                  org_.server_space(), n, std::move(deliver));
  }
  return n;
}

buf::Bytes SingleServerApp::recv(api::SocketId s, std::size_t max) {
  Stub* st = stub(s);
  if (st == nullptr) return {};
  // Data already lives in the application's address space (pushed by the
  // server); this is a local library operation.
  const std::size_t n = std::min(max, st->recv_queue.size());
  buf::Bytes out(st->recv_queue.begin(),
                 st->recv_queue.begin() + static_cast<long>(n));
  st->recv_queue.erase(st->recv_queue.begin(),
                       st->recv_queue.begin() + static_cast<long>(n));
  return out;
}

std::size_t SingleServerApp::send_space(api::SocketId s) {
  Stub* st = stub(s);
  return st == nullptr ? 0 : st->send_credit;
}

std::size_t SingleServerApp::bytes_available(api::SocketId s) {
  Stub* st = stub(s);
  return st == nullptr ? 0 : st->recv_queue.size();
}

void SingleServerApp::close(api::SocketId s) {
  org_.host().kernel().ipc_send(
      org_.host().cpu().current(), org_.server_space(), 16,
      [this, s](sim::TaskCtx&) { org_.srv_close(s, this); });
}

void SingleServerApp::release(api::SocketId s) {
  stubs_.erase(s);
  org_.host().kernel().ipc_send(
      org_.host().cpu().current(), org_.server_space(), 16,
      [this, s](sim::TaskCtx&) { org_.srv_release(s, this); });
}

void SingleServerApp::run_app(std::function<void(sim::TaskCtx&)> fn) {
  org_.host().cpu().submit(space_, sim::Prio::kNormal, std::move(fn));
}

}  // namespace ulnet::baseline
