// Single-server protocol organization (the Mach 3.0 + UX baseline), and --
// with `dedicated_device_server` -- the dedicated-servers "rare case" of the
// paper's Figure 1.
//
// The whole stack runs in one trusted user-level server:
//  * every application socket call is a Mach IPC to the server (message
//    copy + two context switches per round trip),
//  * received data is pushed back to the application in IPC messages,
//  * in the mapped-device variant the server drives the NIC directly from
//    its own space (the faster of the UX configurations, per the paper);
//    in the dedicated-server variant every packet additionally crosses into
//    a separate network-device server, adding one more IPC + domain
//    crossing in each direction -- the structural reason that organization
//    "could incur excessive domain-switching overheads".
//
// Application-side flow control uses a credit scheme that models sosend()
// blocking: the app stub holds send credit, returned by the server as data
// drains into the TCP send buffer.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/net_system.h"
#include "core/exec_env.h"
#include "os/world.h"
#include "proto/stack.h"

namespace ulnet::baseline {

class SingleServerApp;

class SingleServerOrg : public proto::TcpObserver {
 public:
  // How the server reaches the network device (the paper's Section 1.2
  // lists exactly these three variants of the Mach/UX organization).
  enum class DeviceAccess {
    kMapped,     // devices mapped into the server: direct access (fastest)
    kMessage,    // in-kernel driver, message-based interface (per-packet IPC)
    kSharedMem,  // in-kernel driver, data via shared memory + signal [19]
  };

  struct Config {
    bool dedicated_device_server;
    DeviceAccess device_access;
    // Explicit constructor: NSDMIs cannot feed a same-class default
    // argument (GCC #88165).
    Config()
        : dedicated_device_server(false),
          device_access(DeviceAccess::kMapped) {}
  };

  SingleServerOrg(os::World& world, os::Host& host, Config cfg = Config());
  SingleServerOrg(const SingleServerOrg&) = delete;
  SingleServerOrg& operator=(const SingleServerOrg&) = delete;

  api::NetSystem& add_app(const std::string& name);

  proto::NetworkStack& stack() { return *stack_; }
  os::Host& host() { return host_; }
  [[nodiscard]] sim::SpaceId server_space() const { return server_space_; }

  // Carry socket data between app and server in out-of-line IPC messages
  // (page donation) instead of inline copies. Off by default.
  void set_zero_copy(bool on) { zero_copy_ = on; }

 private:
  friend class SingleServerApp;

  struct ServerSocket {
    proto::TcpConnection* conn = nullptr;
    SingleServerApp* app = nullptr;
    api::SocketId app_id = api::kInvalidSocket;
    std::deque<std::uint8_t> staging;  // app data waiting for TCP buffer
    bool established_sent = false;
    bool close_pending = false;  // app closed; FIN goes out once staging drains
  };

  void wire_receive_paths();
  void deliver_frame(int ifc, const net::Frame& f, bool an1);

  // Server-side socket operations (run in server space).
  void srv_connect(SingleServerApp* app, api::SocketId id, net::Ipv4Addr dst,
                   std::uint16_t port, const proto::TcpConfig& cfg);
  void srv_listen(SingleServerApp* app, std::uint16_t port,
                  const proto::TcpConfig& cfg);
  void srv_send(SingleServerApp* app, api::SocketId id, std::size_t len);
  void srv_close(api::SocketId id, SingleServerApp* app);
  void srv_release(api::SocketId id, SingleServerApp* app);
  void pump(ServerSocket& s);

  // Send an IPC message from the current server task to the app.
  void ipc_to_app(SingleServerApp* app, std::size_t bytes,
                  std::function<void()> fn);

  ServerSocket* by_conn(proto::TcpConnection* c);
  ServerSocket* by_app_id(SingleServerApp* app, api::SocketId id);
  std::uint16_t take_pending_accept_port(api::SocketId id);

  // ---- TcpObserver (runs in server space) ----
  void on_established(proto::TcpConnection& c) override;
  void on_accept(proto::TcpConnection& c) override;
  void on_data_ready(proto::TcpConnection& c) override;
  void on_send_space(proto::TcpConnection& c) override;
  void on_peer_fin(proto::TcpConnection& c) override;
  void on_closed(proto::TcpConnection& c, const std::string& reason) override;

  os::World& world_;
  os::Host& host_;
  Config cfg_;
  sim::SpaceId server_space_;
  sim::SpaceId device_space_ = -1;  // dedicated variant only
  core::HostStackEnv env_;
  std::unique_ptr<proto::NetworkStack> stack_;
  std::unordered_map<proto::TcpConnection*, ServerSocket> sockets_;
  std::unordered_map<std::uint16_t, SingleServerApp*> listeners_;
  std::unordered_map<api::SocketId, std::uint16_t> pending_accept_ports_;
  std::vector<std::unique_ptr<SingleServerApp>> apps_;
  bool zero_copy_ = false;
};

class SingleServerApp : public api::NetSystem {
 public:
  SingleServerApp(SingleServerOrg& org, const std::string& name);

  bool listen(std::uint16_t port,
              std::function<api::SocketEvents(api::SocketId)> acceptor)
      override;
  void connect(net::Ipv4Addr dst, std::uint16_t port, api::SocketEvents evs,
               std::function<void(api::SocketId)> done) override;
  std::size_t send(api::SocketId s, buf::ByteView data) override;
  buf::Bytes recv(api::SocketId s, std::size_t max) override;
  std::size_t send_space(api::SocketId s) override;
  std::size_t bytes_available(api::SocketId s) override;
  void close(api::SocketId s) override;
  void release(api::SocketId s) override;
  void run_app(std::function<void(sim::TaskCtx&)> fn) override;
  [[nodiscard]] sim::SpaceId app_space() const override { return space_; }
  [[nodiscard]] const std::string& app_name() const override { return name_; }

 private:
  friend class SingleServerOrg;

  struct Stub {
    api::SocketEvents events;
    std::deque<std::uint8_t> recv_queue;
    std::size_t send_credit = 0;
    bool eof_pending = false;
    bool closed = false;
  };

  Stub* stub(api::SocketId id) {
    auto it = stubs_.find(id);
    return it == stubs_.end() ? nullptr : &it->second;
  }
  api::SocketId new_stub(api::SocketEvents evs);
  // Complete a server-initiated accept: build the stub via the registered
  // acceptor and deliver on_established.
  void finish_accept(api::SocketId id);

  SingleServerOrg& org_;
  std::string name_;
  sim::SpaceId space_;
  std::unordered_map<api::SocketId, Stub> stubs_;
  std::unordered_map<std::uint16_t, std::function<api::SocketEvents(api::SocketId)>>
      acceptors_;
  api::SocketId next_id_ = 1;
};

}  // namespace ulnet::baseline
