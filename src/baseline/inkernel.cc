#include "baseline/inkernel.h"

namespace ulnet::baseline {

InKernelOrg::InKernelOrg(os::World& world, os::Host& host)
    : world_(world),
      host_(host),
      env_(host, world.rng(), sim::kKernelSpace) {
  env_.set_transmit([this](int ifc, net::MacAddr dst, std::uint16_t et,
                           buf::Bytes payload, const proto::TxFlow* flow) {
    // Kernel output path: frame and hand to the driver within the current
    // task (syscall or ISR context). Ultrix uses only BQI 0 on AN1.
    hw::Nic* nic = env_.nic(ifc);
    net::Frame f = core::frame_for(*nic, dst, et, payload,
                                   hw::An1Nic::kKernelBqi);
    f.trace_id = flow != nullptr ? flow->trace_id : 0;
    nic->transmit(host_.cpu().current(), std::move(f));
  });
  stack_ = std::make_unique<proto::NetworkStack>(env_);
  wire_receive_paths();
}

void InKernelOrg::wire_receive_paths() {
  for (std::size_t i = 0; i < host_.interfaces().size(); ++i) {
    hw::Nic* nic = host_.interfaces()[i].nic;
    const int ifc = static_cast<int>(i);
    const bool an1 = core::is_an1(*nic);
    nic->set_rx_handler([this, ifc, an1](sim::TaskCtx&, const net::Frame& f,
                                         std::uint16_t) {
      // ISR context: strip the link header and run the protocol input path
      // to completion in the kernel (Ultrix splnet processing).
      stack_->tcp().set_current_rx_trace_id(f.trace_id);
      if (an1) {
        auto h = net::An1Header::parse(f.bytes);
        if (!h) return;
        stack_->link_input(ifc, h->ethertype,
                           buf::ByteView(f.bytes.data() + net::An1Header::kSize,
                                         f.bytes.size() - net::An1Header::kSize));
      } else {
        auto h = net::EthHeader::parse(f.bytes);
        if (!h) return;
        stack_->link_input(ifc, h->ethertype,
                           buf::ByteView(f.bytes.data() + net::EthHeader::kSize,
                                         f.bytes.size() - net::EthHeader::kSize));
      }
      stack_->tcp().set_current_rx_trace_id(0);
    });
  }
}

api::NetSystem& InKernelOrg::add_app(const std::string& name) {
  apps_.push_back(std::make_unique<InKernelApp>(*this, name));
  return *apps_.back();
}

// ---------------------------------------------------------------------------
// InKernelApp
// ---------------------------------------------------------------------------

InKernelApp::InKernelApp(InKernelOrg& org, const std::string& name)
    : org_(org),
      name_(name),
      space_(org.host_.new_space(name)),
      bridge_([this](std::function<void()> fn) {
        // Kernel-side upcall -> wake the blocked application thread.
        cpu().charge(cpu().cost().kernel_wakeup);
        cpu().submit(space_, sim::Prio::kNormal,
                     [fn = std::move(fn)](sim::TaskCtx&) { fn(); });
      }) {}

bool InKernelApp::listen(
    std::uint16_t port,
    std::function<api::SocketEvents(api::SocketId)> acceptor) {
  kernel().trap(cpu().current());
  cpu().charge(cpu().cost().kernel_setup_endpoint);
  bridge_.set_acceptor(port, std::move(acceptor));
  return org_.stack_->tcp().listen(port, &bridge_, tcp_config_);
}

void InKernelApp::connect(net::Ipv4Addr dst, std::uint16_t port,
                          api::SocketEvents evs,
                          std::function<void(api::SocketId)> done) {
  kernel().trap(cpu().current());
  cpu().charge(cpu().cost().kernel_setup_endpoint);
  proto::TcpConnection* conn =
      org_.stack_->tcp().connect(dst, port, &bridge_, tcp_config_);
  if (conn == nullptr) {
    if (evs.on_closed) evs.on_closed("no route to host");
    done(api::kInvalidSocket);
    return;
  }
  const api::SocketId id = bridge_.attach(conn, std::move(evs));
  done(id);
}

std::size_t InKernelApp::send(api::SocketId s, buf::ByteView data) {
  auto* e = bridge_.find(s);
  if (e == nullptr || e->closed) return 0;
  kernel().trap(cpu().current());
  const std::size_t n = std::min(data.size(), e->conn->send_space());
  if (n > 0) {
    if (org_.zero_copy_) {
      kernel().donate_bytes(cpu().current(), n);
    } else {
      kernel().copy_bytes(cpu().current(), n);  // copyin
    }
  }
  return e->conn->send(data.subspan(0, n));
}

buf::Bytes InKernelApp::recv(api::SocketId s, std::size_t max) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return {};
  kernel().trap(cpu().current());
  buf::Bytes out = e->conn->read(max);
  if (!out.empty()) {
    if (org_.zero_copy_) {
      kernel().donate_bytes(cpu().current(), out.size());
    } else {
      kernel().copy_bytes(cpu().current(), out.size());  // copyout
    }
  }
  return out;
}

std::size_t InKernelApp::send_space(api::SocketId s) {
  auto* e = bridge_.find(s);
  return e == nullptr ? 0 : e->conn->send_space();
}

std::size_t InKernelApp::bytes_available(api::SocketId s) {
  auto* e = bridge_.find(s);
  return e == nullptr ? 0 : e->conn->bytes_available();
}

void InKernelApp::close(api::SocketId s) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return;
  kernel().trap(cpu().current());
  e->conn->close();
}

void InKernelApp::release(api::SocketId s) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return;
  proto::TcpConnection* conn = e->conn;
  bridge_.detach(s);
  org_.stack_->tcp().release(conn);
}

void InKernelApp::run_app(std::function<void(sim::TaskCtx&)> fn) {
  cpu().submit(space_, sim::Prio::kNormal, std::move(fn));
}

}  // namespace ulnet::baseline
