// The AN1 controller's real-time clock: a device register ticking every
// 40 ns, readable from user space via a mapped device page (no trap). The
// paper used it for all elapsed-time measurement; our benches do the same,
// which keeps measurement overhead out of the measured paths.
#pragma once

#include "sim/event_loop.h"
#include "sim/time.h"

namespace ulnet::hw {

class RtClock {
 public:
  static constexpr sim::Time kTickNs = 40;

  explicit RtClock(const sim::EventLoop& loop) : loop_(loop) {}

  // Current tick count (truncated to clock resolution).
  [[nodiscard]] std::uint64_t ticks() const {
    return static_cast<std::uint64_t>(loop_.now() / kTickNs);
  }

  // Elapsed nanoseconds as the clock reports them (quantized to 40 ns).
  [[nodiscard]] sim::Time now_ns() const {
    return static_cast<sim::Time>(ticks()) * kTickNs;
  }

 private:
  const sim::EventLoop& loop_;
};

}  // namespace ulnet::hw
