#include "hw/nic.h"

#include <cassert>
#include <utility>

#include "buf/packet_pool.h"

namespace ulnet::hw {

std::size_t Nic::tx_ring_in_use() {
  const sim::Time now = cpu_.loop().now();
  while (!tx_done_at_.empty() && tx_done_at_.front() <= now) {
    tx_done_at_.pop_front();
  }
  return tx_done_at_.size();
}

void Nic::frame_arrived(net::Frame f) {
  if (!poll_.enabled) {
    // Paper-accurate path: one interrupt task per frame.
    cpu_.metrics().interrupts++;
    cpu_.submit(sim::kKernelSpace, sim::Prio::kInterrupt,
                [this, f = std::move(f)](sim::TaskCtx& ctx) mutable {
                  rx_isr(ctx, f);
                  // Whatever storage the handler did not steal goes back to
                  // the pool (drops, unclaimed frames).
                  if (pool_ != nullptr) pool_->recycle(std::move(f.bytes));
                });
    return;
  }
  // Interrupt mitigation: the frame lands in the device backlog. Only the
  // first frame after quiescence raises an interrupt; while a poll loop is
  // outstanding further arrivals are absorbed silently.
  if (backlog_.size() >= poll_.rx_ring) {
    rx_dropped_++;
    cpu_.metrics().nic_rx_dropped++;
    if (pool_ != nullptr) pool_->recycle(std::move(f.bytes));
    return;
  }
  backlog_.push_back(PendingRx{cpu_.loop().now(), std::move(f)});
  if (intr_armed_) {
    intr_armed_ = false;
    poll_transitions_++;
    cpu_.metrics().nic_poll_transitions++;
    cpu_.metrics().interrupts++;
    cpu_.submit(sim::kKernelSpace, sim::Prio::kInterrupt,
                [this](sim::TaskCtx& ctx) { poll_once(ctx, /*first=*/true); });
  }
}

void Nic::poll_once(sim::TaskCtx& ctx, bool first) {
  const sim::ProfileScope prof(cpu_, sim::CpuComponent::kNicIsr);
  const auto& cost = cpu_.cost();
  // The first round rides the interrupt it was raised by; re-polls are
  // softirq-equivalent dispatches from the task queue.
  ctx.charge(first ? cost.interrupt_entry : cost.poll_entry);
  int drained = 0;
  const auto drain_one = [this, &ctx, &cost] {
    PendingRx p = std::move(backlog_.front());
    backlog_.pop_front();
    const sim::Time now = ctx.now();
    if (now >= p.arrived) backlog_wait_hist_.record(now - p.arrived);
    ctx.charge(cost.poll_per_frame);
    rx_process(ctx, p.frame);
    if (pool_ != nullptr) pool_->recycle(std::move(p.frame.bytes));
  };
  while (!backlog_.empty() && drained < poll_.budget) {
    drain_one();
    drained++;
  }
  poll_rounds_++;
  poll_frames_ += static_cast<std::uint64_t>(drained);
  cpu_.metrics().nic_poll_rounds++;
  cpu_.metrics().nic_poll_frames += static_cast<std::uint64_t>(drained);
  poll_batch_hist_.record(drained);
  if (backlog_.size() > poll_.rearm_watermark) {
    // Still loaded: stay in poll mode, yield, and come back for another
    // budgeted round so one hot device cannot monopolize the CPU.
    if (drained >= poll_.budget) {
      poll_budget_exhausted_++;
      cpu_.metrics().nic_poll_budget_exhausted++;
    }
    cpu_.submit(sim::kKernelSpace, sim::Prio::kInterrupt,
                [this](sim::TaskCtx& ctx) { poll_once(ctx, /*first=*/false); });
    return;
  }
  // At or below the watermark: finish the trickle inline (frames must never
  // be stranded waiting for an interrupt that cannot fire) and re-arm.
  while (!backlog_.empty()) drain_one();
  intr_armed_ = true;
  poll_rearms_++;
  cpu_.metrics().nic_poll_rearms++;
}

// ---------------------------------------------------------------------------
// Lance
// ---------------------------------------------------------------------------

void LanceNic::transmit(sim::TaskCtx& ctx, net::Frame f) {
  const auto& cost = cpu_.cost();
  // The host copies the frame into the on-board staging buffers with
  // programmed I/O, then the controller serializes it onto the wire.
  ctx.charge(cost.driver_fixed);
  ctx.charge(static_cast<sim::Time>(f.size()) * cost.pio_per_byte);
  provenance_tx(ctx, f);
  tx_frames_++;
  cpu_.metrics().packets_tx++;
  // The frame reaches the wire at the point the CPU has accounted for it,
  // not at the end of the enclosing task: a multi-segment send loop
  // overlaps its per-segment processing with transmission.
  cpu_.loop().schedule_at(ctx.now(), [this, fr = std::move(f)]() mutable {
    note_tx_occupancy(link_.transmit(this, std::move(fr)));
  });
}

void LanceNic::rx_process(sim::TaskCtx& ctx, net::Frame& f) {
  const auto& cost = cpu_.cost();
  ctx.charge(cost.driver_fixed);
  // PIO copy of the whole packet, headers included, out of the controller's
  // on-board packet buffers into host memory.
  ctx.charge(static_cast<sim::Time>(f.size()) * cost.pio_per_byte);
  provenance_rx(ctx, f);
  rx_frames_++;
  cpu_.metrics().packets_rx++;
  dispatch_rx(ctx, f, 0);
}

// ---------------------------------------------------------------------------
// AN1
// ---------------------------------------------------------------------------

An1Nic::An1Nic(sim::Cpu& cpu, net::Link& link, net::MacAddr mac,
               std::string name)
    : Nic(cpu, link, mac, std::move(name)) {
  // BQI 0 always refers to protected kernel buffers and never runs dry in
  // the model (the kernel replenishes its own pool from the ISR).
  rings_[kKernelBqi].in_use = true;
  rings_[kKernelBqi].capacity = 1 << 20;
  rings_[kKernelBqi].posted = 1 << 20;
}

void An1Nic::transmit(sim::TaskCtx& ctx, net::Frame f) {
  const auto& cost = cpu_.cost();
  // Descriptor writes only; the controller DMAs from host memory itself.
  ctx.charge(cost.driver_fixed);
  ctx.charge(cost.dma_setup);
  provenance_tx(ctx, f);
  tx_frames_++;
  cpu_.metrics().packets_tx++;
  cpu_.loop().schedule_at(ctx.now(), [this, fr = std::move(f)]() mutable {
    note_tx_occupancy(link_.transmit(this, std::move(fr)));
  });
}

std::uint16_t An1Nic::alloc_bqi(int capacity) {
  assert(capacity > 0);
  for (int i = 1; i < kMaxBqis; ++i) {
    if (!rings_[static_cast<std::size_t>(i)].in_use) {
      auto& r = rings_[static_cast<std::size_t>(i)];
      r.in_use = true;
      r.capacity = capacity;
      r.posted = 0;
      return static_cast<std::uint16_t>(i);
    }
  }
  return 0;
}

void An1Nic::free_bqi(std::uint16_t bqi) {
  if (bqi == kKernelBqi || bqi >= kMaxBqis) return;
  rings_[bqi] = Ring{};
}

void An1Nic::post_buffers(std::uint16_t bqi, int n) {
  if (!bqi_valid(bqi)) return;
  auto& r = rings_[bqi];
  r.posted = std::min(r.capacity, r.posted + n);
}

int An1Nic::posted_buffers(std::uint16_t bqi) const {
  if (bqi >= kMaxBqis || !rings_[bqi].in_use) return 0;
  return rings_[bqi].posted;
}

bool An1Nic::bqi_valid(std::uint16_t bqi) const {
  return bqi < kMaxBqis && rings_[bqi].in_use;
}

int An1Nic::drain_buffers(std::uint16_t bqi) {
  if (bqi == kKernelBqi || !bqi_valid(bqi)) return 0;
  auto& r = rings_[bqi];
  const int drained = r.posted;
  r.posted = 0;
  return drained;
}

int An1Nic::bqis_in_use() const {
  int n = 0;
  for (int i = 1; i < kMaxBqis; ++i) {
    if (rings_[static_cast<std::size_t>(i)].in_use) n++;
  }
  return n;
}

void An1Nic::rx_process(sim::TaskCtx& ctx, net::Frame& f) {
  const auto& cost = cpu_.cost();
  const auto hdr = net::An1Header::parse(f.bytes);
  if (!hdr) {
    rx_dropped_++;
    cpu_.metrics().nic_rx_dropped++;
    return;
  }
  // Hardware demultiplex: the controller indexed the BQI table before
  // raising the interrupt; what the host pays is the device-management
  // code inherent to the BQI machinery (Table 5's 50 us line).
  std::uint16_t bqi = hdr->bqi;
  if (!bqi_valid(bqi)) {
    // Unknown index: the controller falls back to the kernel's ring.
    bqi = kKernelBqi;
  }
  auto& ring = rings_[bqi];
  if (ring.posted == 0) {
    // Receive ring empty: the controller has nowhere to DMA. Dropped on
    // the floor; reliable transports recover via retransmission.
    ring_drops_++;
    rx_dropped_++;
    cpu_.metrics().demux_drops++;
    cpu_.metrics().nic_rx_dropped++;
    cpu_.metrics().nic_ring_drops++;
    return;
  }
  ring.posted--;
  if (bqi == kKernelBqi) ring.posted++;  // kernel pool self-replenishes

  ctx.charge(cost.demux_hardware_mgmt);
  provenance_rx(ctx, f);
  cpu_.metrics().demux_hardware_runs++;
  rx_frames_++;
  cpu_.metrics().packets_rx++;
  dispatch_rx(ctx, f, bqi);
}

}  // namespace ulnet::hw
