// Host-network interface models.
//
// A Nic sits between a Link (pure wire timing) and the host's Cpu (cost
// accounting). Receiving a frame raises an interrupt task in kernel space;
// the Nic subclass charges its hardware-specific costs (programmed-I/O
// copy for Lance, DMA + BQI table lookup for AN1) and then hands the frame
// to the kernel's registered receive handler *within the same CPU task*, so
// the whole input path is one contiguous accounting span, as in a real ISR.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/link.h"
#include "sim/cpu.h"
#include "sim/histogram.h"

namespace ulnet::buf {
class PacketPool;
}  // namespace ulnet::buf

namespace ulnet::hw {

class Nic : public net::LinkEndpoint {
 public:
  // Invoked in kernel space at interrupt priority once the device-specific
  // receive costs have been charged. For the AN1 this also conveys the BQI
  // the hardware demultiplexed on. The frame is mutable so the handler may
  // steal its bytes (the netio fast path turns the old payload copy into a
  // move); handlers taking `const net::Frame&` still bind unchanged.
  using RxHandler =
      std::function<void(sim::TaskCtx&, net::Frame&, std::uint16_t bqi)>;

  Nic(sim::Cpu& cpu, net::Link& link, net::MacAddr mac, std::string name)
      : cpu_(cpu), link_(link), mac_(mac), name_(std::move(name)) {
    link_.attach(this);
  }
  ~Nic() override = default;

  void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }

  // Transmit from a kernel driver context: charges device costs to `ctx`
  // and defers the wire transmission to the task's completion.
  virtual void transmit(sim::TaskCtx& ctx, net::Frame f) = 0;

  // --- LinkEndpoint ---
  void frame_arrived(net::Frame f) override;
  [[nodiscard]] net::MacAddr mac() const override { return mac_; }

  // Optional buffer pool (owned by the World): when set, frame storage left
  // over after the receive handler ran is recycled instead of freed.
  void set_pool(buf::PacketPool* pool) { pool_ = pool; }
  [[nodiscard]] buf::PacketPool* pool() const { return pool_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::Link& link() { return link_; }
  [[nodiscard]] const net::LinkSpec& link_spec() const { return link_.spec(); }
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }

  [[nodiscard]] std::uint64_t tx_frames() const { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_frames_; }
  [[nodiscard]] std::uint64_t rx_dropped() const { return rx_dropped_; }

  // --- Transmit-ring model ---
  // Descriptors stay occupied until their frame clears the wire; a full
  // ring is the netio module's backpressure signal. The default capacity is
  // effectively unbounded (the pre-existing behaviour); tests and chaos
  // scenarios shrink it to exercise the retry path. Occupancy is computed
  // lazily from recorded wire-completion times -- no extra events.
  void set_tx_ring_capacity(std::size_t slots) { tx_ring_capacity_ = slots; }
  [[nodiscard]] std::size_t tx_ring_capacity() const {
    return tx_ring_capacity_;
  }
  [[nodiscard]] std::size_t tx_ring_in_use();
  [[nodiscard]] bool tx_ring_full() {
    return tx_ring_in_use() >= tx_ring_capacity_;
  }

  // Link-payload MTU as seen by the protocol stack above the driver.
  [[nodiscard]] virtual std::size_t driver_mtu() const = 0;

  // --- NAPI-style interrupt mitigation ---
  // Off (the default): every frame raises its own interrupt task -- the
  // paper-accurate per-frame ISR, bit-identical to the pre-poll model.
  // On: the first frame after quiescence raises one interrupt, disarms
  // further ones, and starts a budgeted poll loop that drains the device
  // backlog in bursts; interrupts re-arm once the backlog falls to the
  // watermark. Per-frame device costs (PIO copy, BQI management) are still
  // paid -- what mitigation removes is the per-frame interrupt entry.
  struct PollConfig {
    bool enabled = false;
    int budget = 16;                  // frames drained per poll round
    std::size_t rearm_watermark = 0;  // re-arm when backlog <= this
    std::size_t rx_ring = 256;        // device backlog; overflow drops
  };
  void set_poll_config(const PollConfig& pc) { poll_ = pc; }
  [[nodiscard]] const PollConfig& poll_config() const { return poll_; }

  [[nodiscard]] std::uint64_t poll_transitions() const {
    return poll_transitions_;
  }
  [[nodiscard]] std::uint64_t poll_rounds() const { return poll_rounds_; }
  [[nodiscard]] std::uint64_t poll_frames() const { return poll_frames_; }
  [[nodiscard]] std::uint64_t poll_budget_exhausted() const {
    return poll_budget_exhausted_;
  }
  [[nodiscard]] std::uint64_t poll_rearms() const { return poll_rearms_; }
  // Frames drained per poll round / time a frame waited in the device
  // backlog before its poll round picked it up.
  [[nodiscard]] const sim::Histogram& poll_batch_hist() const {
    return poll_batch_hist_;
  }
  [[nodiscard]] const sim::Histogram& backlog_wait_hist() const {
    return backlog_wait_hist_;
  }

 protected:
  // Device-specific receive processing minus the interrupt entry: header
  // parse, per-frame device costs, demux hand-off. Runs once per frame
  // from either the per-frame ISR or the poll loop. The frame belongs to
  // the caller; the handler may consume its bytes by move.
  virtual void rx_process(sim::TaskCtx& ctx, net::Frame& f) = 0;

  // The per-frame ISR: interrupt entry plus device processing.
  void rx_isr(sim::TaskCtx& ctx, net::Frame& f) {
    const sim::ProfileScope prof(cpu_, sim::CpuComponent::kNicIsr);
    ctx.charge(cpu_.cost().interrupt_entry);
    rx_process(ctx, f);
  }

  // One budgeted poll round (`first` = the round entered from the
  // interrupt itself, later rounds are softirq-equivalent re-polls).
  void poll_once(sim::TaskCtx& ctx, bool first);

  void dispatch_rx(sim::TaskCtx& ctx, net::Frame& f, std::uint16_t bqi) {
    if (rx_handler_) rx_handler_(ctx, f, bqi);
  }

  // Record a frame's end-of-occupancy time (the Link returns it from
  // transmit()) so tx_ring_in_use() can age descriptors out lazily.
  void note_tx_occupancy(sim::Time until) { tx_done_at_.push_back(until); }

  // Latency provenance at the wire boundary. Outbound: stamp a frame that
  // was born without an id (ARP, raw benches) and open the cross-host
  // "pkt" flow. Inbound: stamp injected frames and close the flow. Ids are
  // allocated whether or not tracing is enabled, so identities -- and
  // everything keyed on them -- match between traced and untraced runs.
  void provenance_tx(sim::TaskCtx& ctx, net::Frame& f) {
    sim::Tracer* t = cpu_.tracer();
    if (t == nullptr) return;
    if (f.trace_id == 0) f.trace_id = t->new_trace_id();
    if (t->enabled()) {
      t->flow_start(ctx.now(), cpu_.host_ord(), "pkt", f.trace_id);
    }
  }
  void provenance_rx(sim::TaskCtx& ctx, net::Frame& f) {
    sim::Tracer* t = cpu_.tracer();
    if (t == nullptr) return;
    if (f.trace_id == 0) f.trace_id = t->new_trace_id();
    if (t->enabled()) {
      t->flow_end(ctx.now(), cpu_.host_ord(), "pkt", f.trace_id);
    }
  }

  sim::Cpu& cpu_;
  net::Link& link_;
  net::MacAddr mac_;
  std::string name_;
  RxHandler rx_handler_;
  buf::PacketPool* pool_ = nullptr;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t rx_dropped_ = 0;
  std::size_t tx_ring_capacity_ = static_cast<std::size_t>(-1);
  std::deque<sim::Time> tx_done_at_;  // completion times, ascending

  // Poll-mode state: the device-side backlog ring and whether the next
  // arriving frame raises an interrupt (armed) or just joins the backlog.
  struct PendingRx {
    sim::Time arrived = 0;
    net::Frame frame;
  };
  PollConfig poll_;
  std::deque<PendingRx> backlog_;
  bool intr_armed_ = true;
  std::uint64_t poll_transitions_ = 0;
  std::uint64_t poll_rounds_ = 0;
  std::uint64_t poll_frames_ = 0;
  std::uint64_t poll_budget_exhausted_ = 0;
  std::uint64_t poll_rearms_ = 0;
  sim::Histogram poll_batch_hist_;
  sim::Histogram backlog_wait_hist_;
};

// ---------------------------------------------------------------------------
// DEC PMADD-AA "Lance" Ethernet interface: no DMA; every byte crosses the
// TURBOchannel under programmed I/O, charged to the host CPU on both paths.
// ---------------------------------------------------------------------------
class LanceNic final : public Nic {
 public:
  using Nic::Nic;

  void transmit(sim::TaskCtx& ctx, net::Frame f) override;
  [[nodiscard]] std::size_t driver_mtu() const override {
    return link_.spec().mtu_payload;
  }

 protected:
  void rx_process(sim::TaskCtx& ctx, net::Frame& f) override;
};

// ---------------------------------------------------------------------------
// DEC SRC AN1 interface: DMA plus the buffer-queue-index (BQI) table. The
// table maps a BQI carried in the link header to a ring of posted host
// buffers; the controller DMAs the frame into the next buffer of that ring.
// BQI 0 is the default and refers to protected kernel memory.
// ---------------------------------------------------------------------------
class An1Nic final : public Nic {
 public:
  static constexpr std::uint16_t kKernelBqi = 0;
  static constexpr int kMaxBqis = 256;

  An1Nic(sim::Cpu& cpu, net::Link& link, net::MacAddr mac, std::string name);

  void transmit(sim::TaskCtx& ctx, net::Frame f) override;

  // The paper's AN1 driver encapsulated into Ethernet-format datagrams and
  // "restricts network transmissions to 1500-byte packets".
  [[nodiscard]] std::size_t driver_mtu() const override { return 1500; }

  // --- BQI table management (privileged; driven by the network I/O
  // module or the registry server) ---
  // Allocates a fresh BQI whose ring can hold `capacity` buffers.
  // Returns 0 on table exhaustion (0 is never a valid user BQI).
  std::uint16_t alloc_bqi(int capacity);
  void free_bqi(std::uint16_t bqi);
  // Post `n` empty receive buffers to a ring (library returning buffers).
  void post_buffers(std::uint16_t bqi, int n);
  [[nodiscard]] int posted_buffers(std::uint16_t bqi) const;
  [[nodiscard]] bool bqi_valid(std::uint16_t bqi) const;
  // Fault injection: consume every posted buffer of a ring (as if the
  // library took them all and returned none). Returns the number drained.
  int drain_buffers(std::uint16_t bqi);
  // Live user rings (excludes the kernel's BQI 0) -- the leak invariant.
  [[nodiscard]] int bqis_in_use() const;

  [[nodiscard]] std::uint64_t ring_drops() const { return ring_drops_; }

 protected:
  void rx_process(sim::TaskCtx& ctx, net::Frame& f) override;

 private:
  struct Ring {
    bool in_use = false;
    int capacity = 0;
    int posted = 0;
  };
  std::array<Ring, kMaxBqis> rings_{};
  std::uint64_t ring_drops_ = 0;
};

}  // namespace ulnet::hw
