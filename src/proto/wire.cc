#include "proto/wire.h"

namespace ulnet::proto {

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

void Ipv4Header::serialize(buf::Bytes& out) const {
  const std::size_t start = out.size();
  buf::put8(out, 0x45);  // version 4, IHL 5
  buf::put8(out, tos);
  buf::put16(out, total_len);
  buf::put16(out, ident);
  std::uint16_t ff = frag_offset_units & 0x1fff;
  if (dont_fragment) ff |= kFlagDontFragment;
  if (more_fragments) ff |= kFlagMoreFragments;
  buf::put16(out, ff);
  buf::put8(out, ttl);
  buf::put8(out, proto);
  buf::put16(out, 0);  // checksum placeholder
  buf::put32(out, src.value);
  buf::put32(out, dst.value);
  const std::uint16_t ck = buf::internet_checksum(
      buf::ByteView(out.data() + start, kSize));
  buf::wr16(out, start + 10, ck);
}

std::optional<Ipv4Header> Ipv4Header::parse(buf::ByteView b,
                                            bool* checksum_valid) {
  if (b.size() < kSize) return std::nullopt;
  if ((b[0] >> 4) != 4 || (b[0] & 0x0f) != 5) return std::nullopt;
  Ipv4Header h;
  h.tos = b[1];
  h.total_len = buf::rd16(b, 2);
  h.ident = buf::rd16(b, 4);
  const std::uint16_t ff = buf::rd16(b, 6);
  h.dont_fragment = (ff & kFlagDontFragment) != 0;
  h.more_fragments = (ff & kFlagMoreFragments) != 0;
  h.frag_offset_units = ff & 0x1fff;
  h.ttl = b[8];
  h.proto = b[9];
  h.src = net::Ipv4Addr{buf::rd32(b, 12)};
  h.dst = net::Ipv4Addr{buf::rd32(b, 16)};
  if (checksum_valid != nullptr) {
    *checksum_valid = buf::checksum_ok(buf::ByteView(b.data(), kSize));
  }
  return h;
}

void add_pseudo_header(buf::ChecksumAccumulator& acc, net::Ipv4Addr src,
                       net::Ipv4Addr dst, std::uint8_t proto,
                       std::uint16_t l4_len) {
  acc.add16(static_cast<std::uint16_t>(src.value >> 16));
  acc.add16(static_cast<std::uint16_t>(src.value & 0xffff));
  acc.add16(static_cast<std::uint16_t>(dst.value >> 16));
  acc.add16(static_cast<std::uint16_t>(dst.value & 0xffff));
  acc.add16(proto);
  acc.add16(l4_len);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

std::uint8_t TcpFlags::encode() const {
  std::uint8_t v = 0;
  if (fin) v |= 0x01;
  if (syn) v |= 0x02;
  if (rst) v |= 0x04;
  if (psh) v |= 0x08;
  if (ack) v |= 0x10;
  if (urg) v |= 0x20;
  return v;
}

TcpFlags TcpFlags::decode(std::uint8_t bits) {
  TcpFlags f;
  f.fin = bits & 0x01;
  f.syn = bits & 0x02;
  f.rst = bits & 0x04;
  f.psh = bits & 0x08;
  f.ack = bits & 0x10;
  f.urg = bits & 0x20;
  return f;
}

void TcpHeader::serialize(buf::Bytes& out, net::Ipv4Addr src,
                          net::Ipv4Addr dst, buf::ByteView payload) const {
  const std::size_t start = out.size();
  const std::size_t hlen = header_len();
  buf::put16(out, sport);
  buf::put16(out, dport);
  buf::put32(out, seq);
  buf::put32(out, ack);
  buf::put8(out, static_cast<std::uint8_t>((hlen / 4) << 4));
  buf::put8(out, flags.encode());
  buf::put16(out, wnd);
  buf::put16(out, 0);  // checksum placeholder
  buf::put16(out, urgent);
  if (mss_option) {
    buf::put8(out, 2);  // kind: MSS
    buf::put8(out, 4);  // length
    buf::put16(out, *mss_option);
  }
  buf::put_bytes(out, payload);

  const auto seg_len = static_cast<std::uint16_t>(hlen + payload.size());
  buf::ChecksumAccumulator acc;
  add_pseudo_header(acc, src, dst, kProtoTcp, seg_len);
  acc.add(buf::ByteView(out.data() + start, seg_len));
  buf::wr16(out, start + 16, acc.fold());
}

void TcpHeader::serialize_header(buf::Bytes& out, net::Ipv4Addr src,
                                 net::Ipv4Addr dst,
                                 buf::ByteView payload) const {
  const std::size_t start = out.size();
  const std::size_t hlen = header_len();
  buf::put16(out, sport);
  buf::put16(out, dport);
  buf::put32(out, seq);
  buf::put32(out, ack);
  buf::put8(out, static_cast<std::uint8_t>((hlen / 4) << 4));
  buf::put8(out, flags.encode());
  buf::put16(out, wnd);
  buf::put16(out, 0);  // checksum placeholder
  buf::put16(out, urgent);
  if (mss_option) {
    buf::put8(out, 2);  // kind: MSS
    buf::put8(out, 4);  // length
    buf::put16(out, *mss_option);
  }

  const auto seg_len = static_cast<std::uint16_t>(hlen + payload.size());
  buf::ChecksumAccumulator acc;
  add_pseudo_header(acc, src, dst, kProtoTcp, seg_len);
  acc.add(buf::ByteView(out.data() + start, hlen));  // hlen is even
  acc.add(payload);
  buf::wr16(out, start + 16, acc.fold());
}

std::optional<TcpHeader> TcpHeader::parse(buf::ByteView segment,
                                          net::Ipv4Addr src,
                                          net::Ipv4Addr dst,
                                          bool* checksum_valid,
                                          std::size_t* header_len_out) {
  if (segment.size() < kMinSize) return std::nullopt;
  TcpHeader h;
  h.sport = buf::rd16(segment, 0);
  h.dport = buf::rd16(segment, 2);
  h.seq = buf::rd32(segment, 4);
  h.ack = buf::rd32(segment, 8);
  const std::size_t hlen = static_cast<std::size_t>(segment[12] >> 4) * 4;
  if (hlen < kMinSize || hlen > segment.size()) return std::nullopt;
  h.flags = TcpFlags::decode(segment[13]);
  h.wnd = buf::rd16(segment, 14);
  h.urgent = buf::rd16(segment, 18);
  // Walk options for MSS.
  std::size_t opt = kMinSize;
  while (opt < hlen) {
    const std::uint8_t kind = segment[opt];
    if (kind == 0) break;     // end of options
    if (kind == 1) {          // NOP
      opt++;
      continue;
    }
    if (opt + 1 >= hlen) break;
    const std::uint8_t olen = segment[opt + 1];
    if (olen < 2 || opt + olen > hlen) break;
    if (kind == 2 && olen == 4) h.mss_option = buf::rd16(segment, opt + 2);
    opt += olen;
  }
  if (header_len_out != nullptr) *header_len_out = hlen;
  if (checksum_valid != nullptr) {
    buf::ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, kProtoTcp,
                      static_cast<std::uint16_t>(segment.size()));
    acc.add(segment);
    *checksum_valid = acc.fold() == 0;
  }
  return h;
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

void UdpHeader::serialize(buf::Bytes& out, net::Ipv4Addr src,
                          net::Ipv4Addr dst, buf::ByteView payload) const {
  const std::size_t start = out.size();
  const auto len = static_cast<std::uint16_t>(kSize + payload.size());
  buf::put16(out, sport);
  buf::put16(out, dport);
  buf::put16(out, len);
  buf::put16(out, 0);  // checksum placeholder
  buf::put_bytes(out, payload);

  buf::ChecksumAccumulator acc;
  add_pseudo_header(acc, src, dst, kProtoUdp, len);
  acc.add(buf::ByteView(out.data() + start, len));
  std::uint16_t ck = acc.fold();
  if (ck == 0) ck = 0xffff;  // RFC 768: transmitted 0 means "no checksum"
  buf::wr16(out, start + 6, ck);
}

std::optional<UdpHeader> UdpHeader::parse(buf::ByteView datagram,
                                          net::Ipv4Addr src,
                                          net::Ipv4Addr dst,
                                          bool* checksum_valid) {
  if (datagram.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.sport = buf::rd16(datagram, 0);
  h.dport = buf::rd16(datagram, 2);
  h.length = buf::rd16(datagram, 4);
  if (h.length < kSize || h.length > datagram.size()) return std::nullopt;
  if (checksum_valid != nullptr) {
    if (buf::rd16(datagram, 6) == 0) {
      *checksum_valid = true;  // checksum disabled by sender
    } else {
      buf::ChecksumAccumulator acc;
      add_pseudo_header(acc, src, dst, kProtoUdp, h.length);
      acc.add(buf::ByteView(datagram.data(), h.length));
      *checksum_valid = acc.fold() == 0;
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// ICMP
// ---------------------------------------------------------------------------

void IcmpEcho::serialize(buf::Bytes& out, buf::ByteView payload) const {
  const std::size_t start = out.size();
  buf::put8(out, type);
  buf::put8(out, 0);   // code
  buf::put16(out, 0);  // checksum placeholder
  buf::put16(out, id);
  buf::put16(out, seq);
  buf::put_bytes(out, payload);
  const std::uint16_t ck = buf::internet_checksum(
      buf::ByteView(out.data() + start, out.size() - start));
  buf::wr16(out, start + 2, ck);
}

std::optional<IcmpEcho> IcmpEcho::parse(buf::ByteView message,
                                        bool* checksum_valid) {
  if (message.size() < kHeaderSize) return std::nullopt;
  IcmpEcho e;
  e.type = message[0];
  e.id = buf::rd16(message, 4);
  e.seq = buf::rd16(message, 6);
  if (checksum_valid != nullptr) {
    *checksum_valid = buf::checksum_ok(message);
  }
  return e;
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

void ArpMessage::serialize(buf::Bytes& out) const {
  buf::put16(out, 1);       // hardware: Ethernet
  buf::put16(out, 0x0800);  // protocol: IPv4
  buf::put8(out, 6);        // hw addr len
  buf::put8(out, 4);        // proto addr len
  buf::put16(out, op);
  buf::put_bytes(out, buf::ByteView(sender_mac.octets.data(), 6));
  buf::put32(out, sender_ip.value);
  buf::put_bytes(out, buf::ByteView(target_mac.octets.data(), 6));
  buf::put32(out, target_ip.value);
}

std::optional<ArpMessage> ArpMessage::parse(buf::ByteView b) {
  if (b.size() < kSize) return std::nullopt;
  if (buf::rd16(b, 0) != 1 || buf::rd16(b, 2) != 0x0800 || b[4] != 6 ||
      b[5] != 4) {
    return std::nullopt;
  }
  ArpMessage m;
  m.op = buf::rd16(b, 6);
  for (int i = 0; i < 6; ++i) m.sender_mac.octets[i] = b[8 + i];
  m.sender_ip = net::Ipv4Addr{buf::rd32(b, 14)};
  for (int i = 0; i < 6; ++i) m.target_mac.octets[i] = b[18 + i];
  m.target_ip = net::Ipv4Addr{buf::rd32(b, 24)};
  return m;
}

}  // namespace ulnet::proto
