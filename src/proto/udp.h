// UDP: unreliable datagrams with a bound-port table. The paper's earlier
// related systems (Topaz, the CMU work) started from UDP precisely because
// it is "easier to implement than a protocol like TCP"; here it also backs
// the multi-protocol coexistence example and the fragmentation tests.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/ip.h"

namespace ulnet::proto {

class UdpModule {
 public:
  // (src ip, src port, payload)
  using RecvCb =
      std::function<void(net::Ipv4Addr, std::uint16_t, buf::Bytes)>;

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t no_port = 0;
    std::uint64_t bad_checksum = 0;
  };

  UdpModule(StackEnv& env, IpModule& ip);

  // Bind a receive callback to `port`. Returns false if already bound.
  bool bind(std::uint16_t port, RecvCb cb);
  void unbind(std::uint16_t port);
  [[nodiscard]] bool bound(std::uint16_t port) const {
    return ports_.contains(port);
  }
  // An unused port in the ephemeral range.
  std::uint16_t alloc_ephemeral();

  // Send a datagram. Datagrams larger than the path MTU are fragmented by
  // IP. Returns false if unroutable.
  bool send(std::uint16_t sport, net::Ipv4Addr dst, std::uint16_t dport,
            buf::Bytes payload);

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void input(const Ipv4Header& h, buf::Bytes payload, int ifc);

  StackEnv& env_;
  IpModule& ip_;
  std::unordered_map<std::uint16_t, RecvCb> ports_;
  Counters counters_;
  std::uint16_t next_ephemeral_ = 10000;
};

}  // namespace ulnet::proto
