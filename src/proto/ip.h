// IPv4: routing over directly connected interfaces, fragmentation and
// reassembly, header validation, and upper-protocol dispatch.
//
// Gateway (forwarding) functions are deliberately absent, matching the
// paper's own IP library ("our IP library does not implement the functions
// required for handling gateway traffic").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "proto/arp.h"
#include "proto/env.h"
#include "proto/wire.h"

namespace ulnet::proto {

class IpModule {
 public:
  // (header, payload, arriving interface)
  using UpperHandler =
      std::function<void(const Ipv4Header&, buf::Bytes, int)>;
  // By-reference variant: the payload view aliases the receive buffer (a
  // pool loan published by the organization) and is valid only for the
  // duration of the call; the handler copies what it keeps, or takes a
  // reference on the loan via StackEnv::rx_loan_slice.
  using UpperViewHandler =
      std::function<void(const Ipv4Header&, buf::ByteView, int)>;

  struct Config {
    sim::Time reassembly_timeout;
    std::uint8_t default_ttl;
    // Explicit default constructor rather than member initializers: the
    // latter cannot be used in a same-class default argument (GCC #88165).
    Config() : reassembly_timeout(30 * sim::kSec), default_ttl(64) {}
  };

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t fragments_sent = 0;
    std::uint64_t reassembled = 0;
    std::uint64_t bad_checksum = 0;
    std::uint64_t no_route = 0;
    std::uint64_t no_protocol = 0;
    std::uint64_t not_for_us = 0;
    std::uint64_t arp_failures = 0;
    std::uint64_t reassembly_timeouts = 0;
  };

  IpModule(StackEnv& env, ArpModule& arp, Config cfg = Config())
      : env_(env), arp_(arp), cfg_(cfg) {}

  void register_protocol(std::uint8_t proto, UpperHandler handler) {
    handlers_[proto] = std::move(handler);
  }

  // Opt into zero-copy delivery for `proto`. Used only when the arriving
  // packet is backed by a live loan (env_.current_rx_loan()); otherwise the
  // copying handler runs, so registering both keeps every receive mode
  // working.
  void register_protocol_view(std::uint8_t proto, UpperViewHandler handler) {
    view_handlers_[proto] = std::move(handler);
  }

  // Send `l4_payload` to `dst`. `src` of 0 selects the outgoing interface's
  // address. Fragments when the datagram exceeds the interface MTU (unless
  // `dont_fragment`, in which case the datagram is dropped and counted).
  // Returns false if no route exists.
  bool send(net::Ipv4Addr src, net::Ipv4Addr dst, std::uint8_t proto,
            buf::Bytes l4_payload, const TxFlow* flow,
            bool dont_fragment = false);

  // Gathered send: `l4_headers` holds only the transport header (checksum
  // already folded over `payload`); the payload stays in caller-owned
  // storage. On an ARP cache hit within the MTU, the IP header + transport
  // header travel in one small buffer and the payload rides by reference
  // (StackEnv::transmit_gather). Otherwise -- cold ARP or fragmentation --
  // the datagram is materialized (an honest, counted payload copy) and
  // takes the ordinary send() path. `payload` must stay valid until the
  // call returns; the fast path hands it to the driver synchronously.
  bool send_gather(net::Ipv4Addr src, net::Ipv4Addr dst, std::uint8_t proto,
                   buf::Bytes l4_headers, buf::ByteView payload,
                   const TxFlow* flow);

  // Incoming datagram (link header stripped) from interface `ifc`.
  void input(int ifc, buf::ByteView datagram);

  // Route lookup: interface index for `dst`, or -1.
  [[nodiscard]] int route(net::Ipv4Addr dst) const;
  // Path MTU (link payload budget) toward dst, or 0 if unroutable.
  [[nodiscard]] std::size_t path_mtu(net::Ipv4Addr dst) const;
  // True if `addr` is one of our interface addresses.
  [[nodiscard]] bool local_address(net::Ipv4Addr addr) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct ReassemblyKey {
    std::uint32_t src, dst;
    std::uint16_t ident;
    std::uint8_t proto;
    bool operator==(const ReassemblyKey&) const = default;
  };
  struct ReassemblyKeyHash {
    std::size_t operator()(const ReassemblyKey& k) const {
      std::uint64_t v = (static_cast<std::uint64_t>(k.src) << 32) ^ k.dst ^
                        (static_cast<std::uint64_t>(k.ident) << 16) ^ k.proto;
      return std::hash<std::uint64_t>{}(v);
    }
  };
  struct Reassembly {
    std::map<std::size_t, buf::Bytes> fragments;  // offset -> data
    std::size_t total_len = 0;  // known once the last fragment arrives
    timer::TimerId timeout = timer::kInvalidTimer;
  };

  void transmit_datagram(int ifc, net::Ipv4Addr src, net::Ipv4Addr dst,
                         std::uint8_t proto, std::uint16_t ident,
                         buf::ByteView payload, std::size_t frag_offset,
                         bool more_fragments, const TxFlow* flow);
  void deliver(const Ipv4Header& h, buf::Bytes payload, int ifc);
  void handle_fragment(const Ipv4Header& h, buf::ByteView payload, int ifc);

  StackEnv& env_;
  ArpModule& arp_;
  Config cfg_;
  std::unordered_map<std::uint8_t, UpperHandler> handlers_;
  std::unordered_map<std::uint8_t, UpperViewHandler> view_handlers_;
  std::unordered_map<ReassemblyKey, Reassembly, ReassemblyKeyHash> reasm_;
  Counters counters_;
  std::uint16_t next_ident_ = 1;
};

}  // namespace ulnet::proto
