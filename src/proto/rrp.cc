#include "proto/rrp.h"

#include <algorithm>

namespace ulnet::proto {

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

void RrpHeader::serialize(buf::Bytes& out, net::Ipv4Addr src,
                          net::Ipv4Addr dst, buf::ByteView payload) const {
  const std::size_t start = out.size();
  buf::put8(out, op);
  buf::put8(out, flags);
  buf::put32(out, tid);
  buf::put16(out, client_port);
  buf::put16(out, server_port);
  buf::put16(out, 0);  // checksum placeholder
  buf::put_bytes(out, payload);

  const auto len = static_cast<std::uint16_t>(kSize + payload.size());
  buf::ChecksumAccumulator acc;
  add_pseudo_header(acc, src, dst, kProtoRrp, len);
  acc.add(buf::ByteView(out.data() + start, len));
  buf::wr16(out, start + 10, acc.fold());
}

std::optional<RrpHeader> RrpHeader::parse(buf::ByteView message,
                                          net::Ipv4Addr src,
                                          net::Ipv4Addr dst,
                                          bool* checksum_valid) {
  if (message.size() < kSize) return std::nullopt;
  RrpHeader h;
  h.op = message[0];
  h.flags = message[1];
  h.tid = buf::rd32(message, 2);
  h.client_port = buf::rd16(message, 6);
  h.server_port = buf::rd16(message, 8);
  if (checksum_valid != nullptr) {
    buf::ChecksumAccumulator acc;
    add_pseudo_header(acc, src, dst, kProtoRrp,
                      static_cast<std::uint16_t>(message.size()));
    acc.add(message);
    *checksum_valid = acc.fold() == 0;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

RrpModule::RrpModule(StackEnv& env, IpModule& ip, Config cfg)
    : env_(env), ip_(ip), cfg_(cfg) {
  next_tid_ = env_.random32() | 1;  // never zero
  ip_.register_protocol(kProtoRrp,
                        [this](const Ipv4Header& h, buf::Bytes p, int ifc) {
                          input(h, std::move(p), ifc);
                        });
}

RrpModule::~RrpModule() {
  for (auto& [tid, p] : pending_) {
    if (p.timer != timer::kInvalidTimer) env_.cancel_timer(p.timer);
  }
  for (auto& [key, c] : response_cache_) {
    if (c.reaper != timer::kInvalidTimer) env_.cancel_timer(c.reaper);
  }
}

bool RrpModule::serve(std::uint16_t port, Handler handler) {
  auto [it, fresh] = servers_.try_emplace(port, std::move(handler));
  return fresh;
}

void RrpModule::stop_serving(std::uint16_t port) { servers_.erase(port); }

void RrpModule::send_message(const RrpHeader& r, net::Ipv4Addr dst,
                             buf::ByteView data) {
  const int ifc = ip_.route(dst);
  if (ifc < 0) return;
  buf::Bytes msg;
  msg.reserve(RrpHeader::kSize + data.size());
  env_.charge(env_.cost().udp_fixed);  // datagram-class path cost
  env_.charge(static_cast<sim::Time>(data.size()) *
              env_.cost().checksum_per_byte);
  r.serialize(msg, env_.ifc_ip(ifc), dst, data);
  // Connectionless, so ports are wildcards in the flow; organizations with
  // per-protocol channels key on the protocol number.
  TxFlow flow{env_.ifc_ip(ifc), dst, kProtoRrp, 0, 0};
  ip_.send(env_.ifc_ip(ifc), dst, kProtoRrp, std::move(msg), &flow);
}

bool RrpModule::request(net::Ipv4Addr server, std::uint16_t port,
                        buf::Bytes data, ResponseCb cb) {
  if (data.size() > cfg_.max_message || ip_.route(server) < 0) return false;

  const std::uint32_t tid = next_tid_++;
  if (next_tid_ == 0) next_tid_ = 1;
  Pending p;
  p.server = server;
  p.server_port = port;
  p.data = std::move(data);
  p.cb = std::move(cb);
  p.attempts = 1;
  p.backoff = cfg_.retransmit_initial;

  RrpHeader h;
  h.op = RrpHeader::kOpRequest;
  h.tid = tid;
  h.client_port = next_client_port_++;
  h.server_port = port;
  counters_.requests_sent++;
  send_message(h, server, p.data);
  p.timer = env_.schedule(p.backoff, [this, tid] { retransmit(tid); });
  pending_.emplace(tid, std::move(p));
  return true;
}

void RrpModule::retransmit(std::uint32_t tid) {
  auto it = pending_.find(tid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.attempts > cfg_.max_retransmits) {
    counters_.timeouts++;
    ResponseCb cb = std::move(p.cb);
    pending_.erase(it);
    cb(std::nullopt);
    return;
  }
  p.attempts++;
  counters_.retransmits++;
  RrpHeader h;
  h.op = RrpHeader::kOpRequest;
  h.tid = tid;
  h.server_port = p.server_port;
  send_message(h, p.server, p.data);
  p.backoff = std::min(p.backoff * 2, cfg_.retransmit_max);
  p.timer = env_.schedule(p.backoff, [this, tid] { retransmit(tid); });
}

void RrpModule::input(const Ipv4Header& h, buf::Bytes payload, int) {
  env_.charge(env_.cost().udp_fixed);
  env_.charge(static_cast<sim::Time>(payload.size()) *
              env_.cost().checksum_per_byte);
  bool ok = false;
  auto r = RrpHeader::parse(payload, h.src, h.dst, &ok);
  if (!r) return;
  if (!ok) {
    counters_.bad_checksum++;
    return;
  }
  buf::ByteView data(payload.data() + RrpHeader::kSize,
                     payload.size() - RrpHeader::kSize);
  if (r->op == RrpHeader::kOpRequest) {
    handle_request(h, *r, data);
  } else if (r->op == RrpHeader::kOpResponse) {
    handle_response(*r, data);
  }
}

void RrpModule::handle_request(const Ipv4Header& h, const RrpHeader& r,
                               buf::ByteView data) {
  const ServerKey key = server_key(h.src, r.tid);

  // At-most-once: a retransmitted request is answered from the cache, the
  // handler runs exactly once per transaction.
  if (auto cit = response_cache_.find(key); cit != response_cache_.end()) {
    counters_.duplicate_requests++;
    RrpHeader resp;
    resp.op = RrpHeader::kOpResponse;
    resp.tid = r.tid;
    resp.client_port = r.client_port;
    resp.server_port = r.server_port;
    counters_.responses_sent++;
    send_message(resp, h.src, cit->second.data);
    return;
  }

  auto sit = servers_.find(r.server_port);
  if (sit == servers_.end()) {
    counters_.no_server++;
    return;  // client will time out (VMTP-style silence for unknown ports)
  }

  counters_.handler_invocations++;
  buf::Bytes response = sit->second(h.src, data);

  CachedResponse cached;
  cached.data = response;
  cached.expires = env_.now() + cfg_.response_cache_ttl;
  cached.reaper = env_.schedule(cfg_.response_cache_ttl, [this, key] {
    response_cache_.erase(key);
  });
  response_cache_.emplace(key, std::move(cached));

  RrpHeader resp;
  resp.op = RrpHeader::kOpResponse;
  resp.tid = r.tid;
  resp.client_port = r.client_port;
  resp.server_port = r.server_port;
  counters_.responses_sent++;
  send_message(resp, h.src, response);
}

void RrpModule::handle_response(const RrpHeader& r, buf::ByteView data) {
  auto it = pending_.find(r.tid);
  if (it == pending_.end()) return;  // late duplicate: transaction done
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timer != timer::kInvalidTimer) env_.cancel_timer(p.timer);
  p.cb(buf::Bytes(data.begin(), data.end()));
}

}  // namespace ulnet::proto
