#include "proto/ip.h"

#include <algorithm>

namespace ulnet::proto {

int IpModule::route(net::Ipv4Addr dst) const {
  for (int i = 0; i < env_.interface_count(); ++i) {
    if (net::same_subnet(env_.ifc_ip(i), dst, env_.ifc_prefix_len(i))) {
      return i;
    }
  }
  return -1;
}

std::size_t IpModule::path_mtu(net::Ipv4Addr dst) const {
  const int ifc = route(dst);
  return ifc < 0 ? 0 : env_.ifc_mtu(ifc);
}

bool IpModule::local_address(net::Ipv4Addr addr) const {
  for (int i = 0; i < env_.interface_count(); ++i) {
    if (env_.ifc_ip(i) == addr) return true;
  }
  return false;
}

bool IpModule::send(net::Ipv4Addr src, net::Ipv4Addr dst, std::uint8_t proto,
                    buf::Bytes l4_payload, const TxFlow* flow,
                    bool dont_fragment) {
  const int ifc = route(dst);
  if (ifc < 0) {
    counters_.no_route++;
    return false;
  }
  if (src.is_zero()) src = env_.ifc_ip(ifc);

  const std::size_t mtu = env_.ifc_mtu(ifc);
  const std::size_t max_payload = mtu - Ipv4Header::kSize;
  const std::uint16_t ident = next_ident_++;

  if (l4_payload.size() <= max_payload) {
    transmit_datagram(ifc, src, dst, proto, ident, l4_payload, 0, false,
                      flow);
    env_.recycle_buffer(std::move(l4_payload));
    counters_.sent++;
    return true;
  }
  if (dont_fragment) {
    counters_.no_route++;  // counted as undeliverable
    return false;
  }
  // Fragment: every non-final fragment carries a multiple of 8 bytes.
  const std::size_t chunk = max_payload & ~std::size_t{7};
  std::size_t off = 0;
  while (off < l4_payload.size()) {
    const std::size_t len = std::min(chunk, l4_payload.size() - off);
    const bool more = off + len < l4_payload.size();
    transmit_datagram(ifc, src, dst, proto, ident,
                      buf::ByteView(l4_payload.data() + off, len), off, more,
                      flow);
    counters_.fragments_sent++;
    off += len;
  }
  env_.recycle_buffer(std::move(l4_payload));
  counters_.sent++;
  return true;
}

void IpModule::transmit_datagram(int ifc, net::Ipv4Addr src,
                                 net::Ipv4Addr dst, std::uint8_t proto,
                                 std::uint16_t ident, buf::ByteView payload,
                                 std::size_t frag_offset, bool more_fragments,
                                 const TxFlow* flow) {
  Ipv4Header h;
  h.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + payload.size());
  h.ident = ident;
  h.more_fragments = more_fragments;
  h.frag_offset_units = static_cast<std::uint16_t>(frag_offset / 8);
  h.ttl = cfg_.default_ttl;
  h.proto = proto;
  h.src = src;
  h.dst = dst;

  buf::Bytes datagram = env_.acquire_buffer(h.total_len);
  h.serialize(datagram);
  buf::put_bytes(datagram, payload);
  // The datagram build moves the whole L4 segment (transport header +
  // data); attributed as payload movement at this site.
  env_.count_payload_copy(payload.size());

  env_.charge(env_.cost().ip_fixed);

  // Copy flow by value into the resolution callback: the caller's TxFlow may
  // not outlive an asynchronous ARP exchange.
  std::optional<TxFlow> flow_copy;
  if (flow != nullptr) flow_copy = *flow;

  arp_.resolve(ifc, dst,
               [this, ifc, flow_copy, d = std::move(datagram)](
                   std::optional<net::MacAddr> mac) mutable {
                 if (!mac) {
                   counters_.arp_failures++;
                   return;
                 }
                 env_.transmit(ifc, *mac, net::kEtherTypeIp, std::move(d),
                               flow_copy ? &*flow_copy : nullptr);
               });
}

bool IpModule::send_gather(net::Ipv4Addr src, net::Ipv4Addr dst,
                           std::uint8_t proto, buf::Bytes l4_headers,
                           buf::ByteView payload, const TxFlow* flow) {
  const int ifc = route(dst);
  if (ifc < 0) {
    counters_.no_route++;
    return false;
  }
  if (src.is_zero()) src = env_.ifc_ip(ifc);

  const std::size_t mtu = env_.ifc_mtu(ifc);
  const std::size_t l4_len = l4_headers.size() + payload.size();
  const auto mac = arp_.lookup(dst);
  if (l4_len > mtu - Ipv4Header::kSize || !mac) {
    // Fragmentation or a cold ARP cache: materialize the datagram (counted
    // as a payload copy) and fall back to the ordinary path, which can
    // fragment and park packets behind an ARP exchange.
    env_.count_payload_copy(payload.size());
    buf::put_bytes(l4_headers, payload);
    return send(src, dst, proto, std::move(l4_headers), flow);
  }

  Ipv4Header h;
  h.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + l4_len);
  h.ident = next_ident_++;
  h.ttl = cfg_.default_ttl;
  h.proto = proto;
  h.src = src;
  h.dst = dst;

  // Only the headers are assembled; the payload never enters this buffer.
  buf::Bytes headers =
      env_.acquire_buffer(Ipv4Header::kSize + l4_headers.size());
  h.serialize(headers);
  buf::put_bytes(headers, l4_headers);
  env_.count_header_copy(l4_headers.size());
  env_.recycle_buffer(std::move(l4_headers));
  env_.count_payload_elided(payload.size());

  env_.charge(env_.cost().ip_fixed);
  env_.transmit_gather(ifc, *mac, net::kEtherTypeIp, std::move(headers),
                       payload, flow);
  counters_.sent++;
  return true;
}

void IpModule::input(int ifc, buf::ByteView datagram) {
  env_.charge(env_.cost().ip_fixed);
  bool cksum_ok = false;
  auto h = Ipv4Header::parse(datagram, &cksum_ok);
  if (!h) return;
  if (!cksum_ok) {
    counters_.bad_checksum++;
    return;
  }
  if (h->total_len > datagram.size()) return;  // truncated
  if (!local_address(h->dst)) {
    // No gateway functions: datagrams for other hosts are dropped.
    counters_.not_for_us++;
    return;
  }
  buf::ByteView payload(datagram.data() + Ipv4Header::kSize,
                        h->payload_len());
  if (h->more_fragments || h->frag_offset_units != 0) {
    handle_fragment(*h, payload, ifc);
    return;
  }
  counters_.received++;
  // Zero-copy delivery: when the packet arrived in a loaned ring buffer and
  // the upper protocol accepts views, hand the payload up by reference.
  if (env_.current_rx_loan() != nullptr) {
    auto vit = view_handlers_.find(h->proto);
    if (vit != view_handlers_.end()) {
      env_.count_payload_elided(payload.size());
      vit->second(*h, payload, ifc);
      return;
    }
  }
  buf::Bytes owned = env_.acquire_buffer(payload.size());
  buf::put_bytes(owned, payload);
  env_.count_payload_copy(payload.size());
  deliver(*h, std::move(owned), ifc);
}

void IpModule::deliver(const Ipv4Header& h, buf::Bytes payload, int ifc) {
  auto it = handlers_.find(h.proto);
  if (it == handlers_.end()) {
    counters_.no_protocol++;
    return;
  }
  it->second(h, std::move(payload), ifc);
}

void IpModule::handle_fragment(const Ipv4Header& h, buf::ByteView payload,
                               int ifc) {
  const ReassemblyKey key{h.src.value, h.dst.value, h.ident, h.proto};
  auto [it, fresh] = reasm_.try_emplace(key);
  Reassembly& r = it->second;
  if (fresh) {
    r.timeout = env_.schedule(cfg_.reassembly_timeout, [this, key] {
      if (reasm_.erase(key) > 0) counters_.reassembly_timeouts++;
    });
  }
  r.fragments[h.frag_offset_bytes()] =
      buf::Bytes(payload.begin(), payload.end());
  if (!h.more_fragments) {
    r.total_len = h.frag_offset_bytes() + payload.size();
  }
  if (r.total_len == 0) return;  // last fragment not seen yet

  // Check contiguity.
  std::size_t next = 0;
  for (const auto& [off, data] : r.fragments) {
    if (off > next) return;  // hole
    next = std::max(next, off + data.size());
  }
  if (next < r.total_len) return;

  buf::Bytes whole(r.total_len, 0);
  for (const auto& [off, data] : r.fragments) {
    const std::size_t n = std::min(data.size(), r.total_len - off);
    std::copy_n(data.begin(), n, whole.begin() + static_cast<long>(off));
  }
  env_.count_payload_copy(whole.size());
  Ipv4Header complete = h;
  complete.more_fragments = false;
  complete.frag_offset_units = 0;
  complete.total_len =
      static_cast<std::uint16_t>(Ipv4Header::kSize + whole.size());
  env_.cancel_timer(r.timeout);
  reasm_.erase(it);
  counters_.reassembled++;
  counters_.received++;
  deliver(complete, std::move(whole), ifc);
}

}  // namespace ulnet::proto
