// RRP: a VMTP-style request/response transport.
//
// The paper's first motivation is the co-existence of materially different
// transports: "the need for an efficient transport for distributed systems
// was a factor in the development of request/response protocols in lieu of
// existing byte-stream protocols such as TCP. Experience with specialized
// protocols shows that they achieve remarkably low latencies. However these
// protocols do not always deliver the highest throughput."
//
// RRP is that class of protocol, in the VMTP/Birrell-Nelson tradition:
//   * no connection setup: a transaction is one request + one response,
//   * client-driven retransmission with exponential backoff,
//   * at-most-once execution: the server deduplicates by transaction id and
//     replays the cached response for retransmitted requests,
//   * messages up to 60 KB (IP fragmentation carries what the link cannot).
//
// Like TCP here, RRP is organization-agnostic: it runs against StackEnv and
// registers with the same IpModule, so it can live in a kernel, a server,
// or a user-level library.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "proto/ip.h"

namespace ulnet::proto {

inline constexpr std::uint8_t kProtoRrp = 81;

// Wire header (12 bytes): op(1) flags(1) tid(4) cport(2) sport(2) cksum(2),
// checksummed with the TCP/UDP pseudo-header over header+data.
struct RrpHeader {
  static constexpr std::size_t kSize = 12;
  static constexpr std::uint8_t kOpRequest = 1;
  static constexpr std::uint8_t kOpResponse = 2;

  std::uint8_t op = kOpRequest;
  std::uint8_t flags = 0;
  std::uint32_t tid = 0;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;

  void serialize(buf::Bytes& out, net::Ipv4Addr src, net::Ipv4Addr dst,
                 buf::ByteView payload) const;
  static std::optional<RrpHeader> parse(buf::ByteView message,
                                        net::Ipv4Addr src, net::Ipv4Addr dst,
                                        bool* checksum_valid = nullptr);
};

class RrpModule {
 public:
  struct Config {
    sim::Time retransmit_initial;
    sim::Time retransmit_max;
    int max_retransmits;
    // How long a server remembers completed transactions (the at-most-once
    // window / response cache lifetime).
    sim::Time response_cache_ttl;
    std::size_t max_message;
    Config()
        : retransmit_initial(300 * sim::kMs),
          retransmit_max(5 * sim::kSec),
          max_retransmits(6),
          response_cache_ttl(30 * sim::kSec),
          max_message(60 * 1024) {}
  };

  struct Counters {
    std::uint64_t requests_sent = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicate_requests = 0;  // answered from the cache
    std::uint64_t handler_invocations = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t bad_checksum = 0;
    std::uint64_t no_server = 0;
  };

  // Server side: compute the response for a request.
  using Handler =
      std::function<buf::Bytes(net::Ipv4Addr client, buf::ByteView request)>;
  // Client side: response data, or nullopt after retries are exhausted.
  using ResponseCb = std::function<void(std::optional<buf::Bytes>)>;

  RrpModule(StackEnv& env, IpModule& ip, Config cfg = Config());
  ~RrpModule();
  RrpModule(const RrpModule&) = delete;
  RrpModule& operator=(const RrpModule&) = delete;

  // ---- Server ----
  bool serve(std::uint16_t port, Handler handler);
  void stop_serving(std::uint16_t port);

  // ---- Client ----
  // Issue a transaction. Returns false (no callback) if the message is
  // oversized or the destination is unroutable.
  bool request(net::Ipv4Addr server, std::uint16_t port, buf::Bytes data,
               ResponseCb cb);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t transactions_in_flight() const {
    return pending_.size();
  }

 private:
  struct Pending {
    net::Ipv4Addr server;
    std::uint16_t server_port = 0;
    buf::Bytes data;  // kept for retransmission
    ResponseCb cb;
    int attempts = 0;
    sim::Time backoff = 0;
    timer::TimerId timer = timer::kInvalidTimer;
  };
  struct CachedResponse {
    buf::Bytes data;
    sim::Time expires = 0;
    timer::TimerId reaper = timer::kInvalidTimer;
  };
  // Transactions are unique per (client ip, tid); the server key includes
  // the client address so tids from different hosts cannot collide.
  using ServerKey = std::uint64_t;
  static ServerKey server_key(net::Ipv4Addr client, std::uint32_t tid) {
    return (static_cast<std::uint64_t>(client.value) << 32) | tid;
  }

  void input(const Ipv4Header& h, buf::Bytes payload, int ifc);
  void handle_request(const Ipv4Header& h, const RrpHeader& r,
                      buf::ByteView data);
  void handle_response(const RrpHeader& r, buf::ByteView data);
  void send_message(const RrpHeader& r, net::Ipv4Addr dst,
                    buf::ByteView data);
  void retransmit(std::uint32_t tid);

  StackEnv& env_;
  IpModule& ip_;
  Config cfg_;
  std::unordered_map<std::uint16_t, Handler> servers_;
  std::unordered_map<std::uint32_t, Pending> pending_;  // by tid (client)
  std::unordered_map<ServerKey, CachedResponse> response_cache_;
  Counters counters_;
  std::uint32_t next_tid_;
  std::uint16_t next_client_port_ = 40000;
};

}  // namespace ulnet::proto
