// TCP: a complete, organization-agnostic implementation in the 4.3BSD
// tradition -- three-way handshake with MSS negotiation, sliding-window data
// transfer with user-write (push) boundaries, Jacobson/Karels RTT estimation
// with Karn's algorithm, slow start + congestion avoidance + fast
// retransmit, delayed ACKs, zero-window persist probes, orderly close
// through FIN/TIME-WAIT, and RST handling.
//
// The same TcpModule object code runs inside every protocol organization;
// only the StackEnv differs (where costs are charged, how timers dispatch,
// how segments reach the wire) -- that is the paper's "identical protocol
// stack" requirement for an apples-to-apples comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/ip.h"
#include "sim/histogram.h"

namespace ulnet::proto {

// Sequence-space arithmetic (wraps modulo 2^32).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

[[nodiscard]] const char* to_string(TcpState s);

struct TcpConfig {
  std::size_t mss = 1460;        // clamped by path MTU and the peer's option
  std::size_t send_buf = 64 * 1024;
  std::size_t recv_buf = 32 * 1024;
  bool nagle = false;            // era measurement tools pushed per write
  bool delayed_ack = true;
  // Preserve user-write boundaries on the wire: a segment never spans two
  // writes. This matches the paper's measurements, where "user packet
  // sizes beyond the link-imposed maximum will require multiple network
  // packet transmissions" -- i.e. below the MTU, one user packet is one
  // network packet. Disable for 4.3BSD-style write coalescing.
  bool segment_per_write = true;
  // Application-specific specialization hook (Section 5: "canned options"):
  // on a link with reliable delivery the data checksum can be elided.
  bool checksum_enabled = true;
  // Van Jacobson header prediction: pure in-order ACKs and pure in-order
  // data segments take a shortcut past the full state machine. The shortcut
  // is simulated-cost-neutral (it mirrors exactly what the slow path would
  // do for qualifying segments), so disabling it is an ablation switch for
  // wall-clock benches, never a behavior change.
  bool header_prediction = true;
  // Coalesce ACKs across a burst ring drain: at most one ACK decision per
  // connection per drained burst instead of per segment. Changes the ACK
  // schedule (fewer pure ACKs on the wire), so it is opt-in.
  bool ack_coalescing = false;
  // Zero-copy receive: keep in-order payload as chunks that reference the
  // arrival buffer (a pool loan) instead of flattening into the byte queue.
  // read() still works (it copies and releases); read_chunks() hands the
  // references to the application, which must release them. Opt-in: the
  // wire behaviour is identical, but the bookkeeping differs.
  bool rx_byref = false;
  // Zero-copy transmit: stage each user write in its own pooled chunk (the
  // paper's app-owned shared region) and emit segments as {header} +
  // payload-by-reference gathers instead of materialized copies. Requires
  // segment_per_write (the constructor forces it off otherwise). Opt-in.
  bool tx_gather = false;
  // Per-connection memory diet for 10k+ connection worlds: skip the
  // ~30 KB RTT histogram (rtt_hist() returns an empty one) so a TCB
  // shrinks to its protocol state plus counters. Wire behaviour and every
  // TcpConnStats counter are unchanged; only the histogram is sacrificed.
  bool compact_stats = false;

  sim::Time delack_delay = 200 * sim::kMs;  // BSD fast timer
  sim::Time rto_initial = 1 * sim::kSec;
  sim::Time rto_min = 500 * sim::kMs;
  sim::Time rto_max = 64 * sim::kSec;
  sim::Time persist_min = 500 * sim::kMs;
  sim::Time persist_max = 60 * sim::kSec;
  sim::Time msl = 5 * sim::kSec;  // 2*MSL TIME-WAIT hold
  int max_retransmits = 12;
};

class TcpConnection;

// Upcall interface to the socket layer / application. The paper notes that
// "protocol control block lookups are eliminated by having separate threads
// per connection that are upcalled"; these callbacks are that per-connection
// upcall edge.
class TcpObserver {
 public:
  virtual ~TcpObserver() = default;
  virtual void on_established(TcpConnection&) {}
  // New in-order data is readable.
  virtual void on_data_ready(TcpConnection&) {}
  // Send-buffer space became available.
  virtual void on_send_space(TcpConnection&) {}
  // Peer sent FIN (EOF after buffered data drains).
  virtual void on_peer_fin(TcpConnection&) {}
  // Connection fully terminated; the reason string is empty for an orderly
  // close.
  virtual void on_closed(TcpConnection&, const std::string& /*reason*/) {}
  // Listener only: a child connection completed its handshake.
  virtual void on_accept(TcpConnection&) {}
};

struct TcpCounters {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_in = 0;
  std::uint64_t pure_acks_sent = 0;
  std::uint64_t delayed_acks = 0;
  std::uint64_t bad_checksum = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t rst_sent = 0;
  std::uint64_t rst_received = 0;
  std::uint64_t persists = 0;
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_accepted = 0;
  std::uint64_t fast_path_acks = 0;  // header-prediction shortcut hits
  std::uint64_t fast_path_data = 0;
};

// Per-connection attribution of traffic, loss recovery, and window / queue
// evolution -- the paper's per-connection mechanisms (threads, channels,
// timers are all per-connection at user level) made observable per
// connection. Read via TcpConnection::stats() or dump_json().
struct TcpConnStats {
  std::uint64_t segments_in = 0;
  std::uint64_t segments_out = 0;
  std::uint64_t bytes_in = 0;   // in-order payload accepted for the app
  std::uint64_t bytes_out = 0;  // payload emitted (retransmissions included)
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_in = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t persists = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t state_transitions = 0;
  std::uint64_t fast_path_acks = 0;  // header-prediction shortcut hits
  std::uint64_t fast_path_data = 0;
  // High-water marks (window and queue evolution).
  std::uint64_t cwnd_max = 0;
  std::uint64_t snd_wnd_max = 0;
  std::uint64_t snd_buf_max = 0;    // send-buffer occupancy
  std::uint64_t rcv_queue_max = 0;  // in-order receive queue occupancy
  std::uint64_t ooo_bytes_max = 0;  // reassembly-queue occupancy
};

// A snapshot of an established connection, used to hand a connection from
// one TcpModule instance to another (the paper's registry server completes
// the three-way handshake and then "transfers TCP state to user level").
struct TcpHandoffState {
  TcpConfig cfg;
  net::Ipv4Addr local_ip, remote_ip;
  std::uint16_t local_port = 0, remote_port = 0;
  std::size_t mss = 536;
  std::uint32_t iss = 0, irs = 0;
  std::uint32_t snd_una = 0, snd_nxt = 0, snd_max = 0, snd_wnd = 0;
  std::uint32_t rcv_nxt = 0, rcv_adv = 0;
  sim::Time srtt = 0, rttvar = 0, rto = 0;
  // Established, or CloseWait when the peer's FIN arrived before the
  // hand-off completed.
  TcpState state = TcpState::kEstablished;
  bool peer_fin_seen = false;
  std::uint32_t peer_fin_seq = 0;
  buf::Bytes rcv_pending;  // received but not yet read by any application

  // Approximate serialized size, for IPC cost accounting.
  [[nodiscard]] std::size_t wire_size() const {
    return 128 + rcv_pending.size();
  }
};

class TcpModule {
 public:
  TcpModule(StackEnv& env, IpModule& ip);
  ~TcpModule();
  TcpModule(const TcpModule&) = delete;
  TcpModule& operator=(const TcpModule&) = delete;

  // Active open. Returns nullptr if unroutable or the port is taken.
  // `sport` of 0 allocates an ephemeral port.
  TcpConnection* connect(net::Ipv4Addr dst, std::uint16_t dport,
                         TcpObserver* observer, TcpConfig cfg = {},
                         std::uint16_t sport = 0);

  // Passive open. `acceptor` receives on_accept for each child connection.
  bool listen(std::uint16_t port, TcpObserver* acceptor, TcpConfig cfg = {});
  void close_listener(std::uint16_t port);
  [[nodiscard]] bool listening(std::uint16_t port) const {
    return listeners_.contains(port);
  }

  // Reclaim a fully closed connection's resources. Call once the socket
  // layer is done with the object; pointers to it are invalid afterwards.
  // Also used to detach a handed-off connection: nothing is sent on the
  // wire and no observer fires.
  void release(TcpConnection* conn);

  // Recreate an established connection from a handoff snapshot. Returns
  // nullptr if the 4-tuple is already present in this module.
  TcpConnection* import_connection(const TcpHandoffState& st,
                                   TcpObserver* observer);

  std::uint16_t alloc_ephemeral();

  // Burst delimiters for batched receive drains (the user-level library
  // processes a whole shared-ring burst per wakeup). Between begin and end,
  // connections with ack_coalescing enabled defer their in-order ACK
  // decision; end_input_burst applies the normal policy once per connection
  // touched. Connections without the option behave identically either way.
  void begin_input_burst() { burst_depth_++; }
  void end_input_burst();
  [[nodiscard]] bool in_input_burst() const { return burst_depth_ > 0; }

  [[nodiscard]] const TcpCounters& counters() const { return counters_; }
  TcpCounters& counters() { return counters_; }
  StackEnv& env() { return env_; }
  IpModule& ip() { return ip_; }

  // Provenance of the received packet currently being processed (0 = not in
  // receive processing). Set by the organization's drain loop so protocol
  // code can link effects (an ACK emitted from input) back to their cause.
  void set_current_rx_trace_id(std::uint64_t id) { current_rx_trace_id_ = id; }
  [[nodiscard]] std::uint64_t current_rx_trace_id() const {
    return current_rx_trace_id_;
  }
  // SYN -> ESTABLISHED latency across every handshake this module completed
  // (active and passive opens; imported connections are not re-counted).
  [[nodiscard]] const sim::Histogram& setup_time_hist() const {
    return setup_hist_;
  }

  // Every connection (deterministically ordered by 4-tuple) plus the module
  // counters, as one JSON object.
  [[nodiscard]] std::string dump_json() const;

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }
  // Total TCB memory across live connections (sum of memory_bytes()):
  // the flat-per-connection-curve number the scale benches plot.
  [[nodiscard]] std::size_t tcb_bytes() const;
  // Pre-size the connection table for `n` expected connections (rehashes
  // on a connect storm are counted nowhere here -- the table is per
  // module -- but the reserve avoids the O(n) stall all the same).
  void reserve_connections(std::size_t n) { conns_.reserve(n); }

 private:
  friend class TcpConnection;

  struct ConnKey {
    std::uint32_t local_ip, remote_ip;
    std::uint16_t local_port, remote_port;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const {
      std::uint64_t v = (static_cast<std::uint64_t>(k.local_ip) << 32) ^
                        k.remote_ip ^
                        (static_cast<std::uint64_t>(k.local_port) << 48) ^
                        (static_cast<std::uint64_t>(k.remote_port) << 16);
      return std::hash<std::uint64_t>{}(v);
    }
  };
  struct Listener {
    TcpObserver* acceptor;
    TcpConfig cfg;
  };

  void input(const Ipv4Header& h, buf::Bytes payload, int ifc);
  void input_view(const Ipv4Header& h, buf::ByteView payload, int ifc);
  void send_rst_for(const Ipv4Header& h, const TcpHeader& t,
                    std::size_t payload_len);
  TcpConnection* find(const ConnKey& key);
  void rekey_or_erase(TcpConnection* conn);
  void note_burst_conn(TcpConnection* conn);

  StackEnv& env_;
  IpModule& ip_;
  std::uint64_t current_rx_trace_id_ = 0;
  sim::Histogram setup_hist_;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHash>
      conns_;
  std::unordered_map<std::uint16_t, Listener> listeners_;
  TcpCounters counters_;
  std::uint16_t next_ephemeral_ = 20000;
  // Connections with a deferred ACK decision in the current burst, in
  // arrival order (deterministic flush order).
  std::vector<TcpConnection*> burst_conns_;
  int burst_depth_ = 0;
};

class TcpConnection {
 public:
  // ---- Application edge --------------------------------------------------
  // Queue up to data.size() bytes; returns the number accepted (bounded by
  // send-buffer space). Each call is one "user packet": with
  // segment_per_write the final segment of the write carries PSH and no
  // segment spans the boundary.
  std::size_t send(buf::ByteView data);
  [[nodiscard]] std::size_t send_space() const;

  // Read up to `max` bytes of in-order received data.
  buf::Bytes read(std::size_t max);
  // Zero-copy read: up to `max` bytes as chunks. With rx_byref the chunks
  // reference the arrival buffers and the caller owns their loan references
  // (release each via RxChunk::loan.release()); without it the data is
  // copied into one owned chunk, so the call works on any connection.
  std::vector<buf::RxChunk> read_chunks(std::size_t max);
  [[nodiscard]] std::size_t bytes_available() const { return rcv_buffered(); }
  // True once the peer's FIN has been consumed (EOF).
  [[nodiscard]] bool eof() const {
    return peer_fin_seen_ && rcv_buffered() == 0;
  }
  // Drop by-reference receive chunks *without* releasing their loans --
  // crash modelling only (a dead process runs no cleanup); the pool
  // registry sweep reclaims the slots afterwards.
  void abandon_rx_chunks() {
    rcv_chunks_.clear();
    rcv_chunk_bytes_ = 0;
  }

  void close();  // orderly: FIN after queued data
  void abort();  // RST now

  void set_observer(TcpObserver* obs) { observer_ = obs; }

  // ---- Introspection -----------------------------------------------------
  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] net::Ipv4Addr local_ip() const { return local_ip_; }
  [[nodiscard]] net::Ipv4Addr remote_ip() const { return remote_ip_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] std::size_t effective_mss() const { return mss_; }
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  [[nodiscard]] sim::Time rto() const { return rto_; }
  [[nodiscard]] std::size_t cwnd() const { return cwnd_; }
  [[nodiscard]] const TcpConfig& config() const { return cfg_; }
  [[nodiscard]] TxFlow tx_flow() const;
  [[nodiscard]] std::uint64_t retransmit_count() const {
    return retransmit_count_;
  }
  [[nodiscard]] const TcpConnStats& stats() const { return stats_; }
  // Every RTT sample this connection took (Karn-filtered, like the
  // estimator feed). Under compact_stats no histogram exists and a shared
  // empty one is returned.
  [[nodiscard]] const sim::Histogram& rtt_hist() const;
  // Bytes of memory this TCB holds right now: the connection object, its
  // histogram (when present) and the *used* size of its buffers/queues
  // (size, not capacity, so the number is identical across toolchains'
  // growth policies up to the fixed sizeof terms). Wall-clock
  // observability for the per-connection-memory bench rows.
  [[nodiscard]] std::size_t memory_bytes() const;
  // 4-tuple, state, estimators, windows, queue depths, stats(), and the RTT
  // histogram as one JSON object.
  [[nodiscard]] std::string dump_json() const;

  // Snapshot an ESTABLISHED connection for hand-off to another TcpModule.
  // The send buffer must be empty (the registry never queues user data).
  [[nodiscard]] TcpHandoffState export_state() const;

  // Public so std::unique_ptr can delete through it; construction and
  // destruction are still driven exclusively by TcpModule.
  ~TcpConnection();

 private:
  friend class TcpModule;

  TcpConnection(TcpModule& mod, TcpConfig cfg, net::Ipv4Addr lip,
                std::uint16_t lport, net::Ipv4Addr rip, std::uint16_t rport,
                TcpObserver* obs);

  // Module-driven entry points.
  void start_active_open();
  void start_passive_open(const TcpHeader& syn);  // from LISTEN
  void segment_arrived(const TcpHeader& t, buf::ByteView payload);

  // Output machinery.
  void output(bool force_ack);
  void emit_segment(std::uint32_t seq, buf::ByteView payload, TcpFlags flags,
                    bool mss_opt);
  // Emit one data-bearing segment of `len` bytes at logical offset `off`
  // from snd_una_: gathers straight out of the staging chunks when the
  // range is contiguous, else takes a counted staging copy.
  void emit_data(std::uint32_t seq, std::size_t off, std::size_t len,
                 TcpFlags flags);
  void send_ack_now();
  void send_rst();
  [[nodiscard]] std::uint16_t advertised_window() const;

  // Input helpers.
  // Header prediction (VJ): returns true iff the segment was fully handled
  // by the pure-ACK or pure-data shortcut. Both shortcuts mirror the slow
  // path's effects exactly for the segments they accept.
  bool try_fast_path(const TcpHeader& t, buf::ByteView payload);
  void process_ack(const TcpHeader& t);
  void process_payload(const TcpHeader& t, buf::ByteView payload);
  // Shared in-order ACK policy (BSD every-2nd-segment, delayed otherwise);
  // under an active burst with ack_coalescing the decision is deferred to
  // TcpModule::end_input_burst.
  void ack_policy_in_order();
  void flush_burst_ack();
  void process_fin(std::uint32_t fin_seq);
  void established();
  void enter_time_wait();
  void terminate(const std::string& reason);  // -> kClosed + upcall

  // Timers.
  void arm_rtx();
  void cancel_rtx();
  void rtx_timeout();
  void arm_persist();
  void persist_timeout();
  void delack_timeout();
  void time_wait_timeout();
  void cancel_all_timers();

  // RTT estimation.
  void rtt_sample(sim::Time measured);

  // Observability: all state transitions and retransmissions funnel through
  // these so stats and trace events cannot drift out of sync with the
  // protocol machine.
  void set_state(TcpState s);
  void note_retransmit(std::uint32_t seq, bool fast);
  void note_queues();  // refresh window / queue high-water marks
  [[nodiscard]] std::int64_t trace_id() const {
    return (static_cast<std::int64_t>(local_port_) << 16) | remote_port_;
  }

  // ---- Send-store access (copy vs gather staging) ------------------------
  // With tx_gather the unsent/unacked bytes live in per-write pooled chunks
  // (snd_chunks_) instead of the flat snd_buf_; these helpers address both
  // representations by logical offset from snd_una_.
  [[nodiscard]] std::size_t snd_len() const {
    return cfg_.tx_gather ? snd_chunk_bytes_ : snd_buf_.size();
  }
  void snd_append(buf::ByteView data);
  void snd_consume(std::size_t n);  // drop n acked bytes from the front
  [[nodiscard]] std::uint8_t snd_byte(std::size_t off) const;
  // A contiguous view of [off, off+len) when it lies within one chunk
  // (gather mode only); empty view otherwise -- caller falls back to a
  // counted staging copy.
  [[nodiscard]] buf::ByteView snd_view(std::size_t off, std::size_t len) const;

  // ---- Receive-store access (flat queue vs by-reference chunks) ----------
  [[nodiscard]] std::size_t rcv_buffered() const {
    return rcv_queue_.size() + rcv_chunk_bytes_;
  }
  // In-order arrival: slice the current RX loan when rx_byref allows,
  // otherwise copy into the flat queue (counted either way).
  void append_rx(buf::ByteView data);
  // In-order arrival of bytes we already own (ooo drain, import): moved,
  // never copied. `skip` drops a duplicate prefix.
  void append_rx_owned(buf::Bytes&& data, std::size_t skip);

  [[nodiscard]] std::size_t flight_size() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint32_t snd_buf_end_seq() const {
    return snd_una_ + static_cast<std::uint32_t>(snd_len());
  }

  TcpModule& mod_;
  TcpConfig cfg_;
  TcpObserver* observer_;
  TcpState state_ = TcpState::kClosed;

  net::Ipv4Addr local_ip_, remote_ip_;
  std::uint16_t local_port_, remote_port_;
  std::size_t mss_ = 536;

  // Send state. snd_buf_ holds [snd_una_, snd_buf_end); push_marks_ are
  // absolute sequence numbers of user-write boundaries.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_max_ = 0;   // highest sequence ever sent
  std::uint32_t snd_wnd_ = 0;   // peer's advertised window
  std::deque<std::uint8_t> snd_buf_;
  // Gather staging (tx_gather): one pooled chunk per accepted user write,
  // fronted by snd_head_off_ consumed bytes; snd_chunk_bytes_ is the live
  // total. deque growth never moves the chunks' heap arrays, so segment
  // views into unacked chunks stay valid while frames are in flight.
  std::deque<buf::Bytes> snd_chunks_;
  std::size_t snd_head_off_ = 0;
  std::size_t snd_chunk_bytes_ = 0;
  std::deque<std::uint32_t> push_marks_;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Congestion control (Reno).
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 65535;
  int dup_acks_ = 0;
  std::uint32_t recover_ = 0;

  // Receive state.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::uint32_t rcv_adv_ = 0;  // highest window edge advertised
  std::deque<std::uint8_t> rcv_queue_;
  // By-reference receive store (rx_byref): in-order payload as loan-backed
  // or owned chunks, FIFO. Exactly one of rcv_queue_ / rcv_chunks_ is in
  // use per connection.
  std::deque<buf::RxChunk> rcv_chunks_;
  std::size_t rcv_chunk_bytes_ = 0;
  std::map<std::uint32_t, buf::Bytes> ooo_;  // out-of-order segments
  std::size_t ooo_bytes_ = 0;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;
  int segs_since_ack_ = 0;

  // RTT / RTO (units: ns).
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  sim::Time rto_;
  bool rtt_timing_ = false;
  std::uint32_t rtt_seq_ = 0;
  sim::Time rtt_start_ = 0;

  // Timers.
  timer::TimerId rtx_timer_ = timer::kInvalidTimer;
  timer::TimerId persist_timer_ = timer::kInvalidTimer;
  timer::TimerId delack_timer_ = timer::kInvalidTimer;
  timer::TimerId time_wait_timer_ = timer::kInvalidTimer;
  int rtx_shift_ = 0;      // retransmit backoff exponent
  int persist_shift_ = 0;

  std::uint64_t retransmit_count_ = 0;
  bool in_fast_recovery_ = false;
  bool burst_ack_pending_ = false;  // registered in the module's burst list
  TcpConnStats stats_;
  // Allocated lazily unless cfg_.compact_stats: the histogram's fixed
  // bucket array dominates a TCB's footprint (~30 KB vs ~2 KB of protocol
  // state), so 10k-connection worlds run without it.
  std::unique_ptr<sim::Histogram> rtt_hist_;

  // Latency provenance. pending_tx_trace_id_ is a pre-allocated id for the
  // next emitted segment, set at a causal site (timer fire, ACK decision)
  // that already opened the `pending_cause_` flow; emit_segment consumes it
  // and closes the flow at the emission point.
  std::uint64_t pending_tx_trace_id_ = 0;
  const char* pending_cause_ = nullptr;
  sim::Time open_started_at_ = 0;
  bool open_timed_ = false;  // handshake in progress (setup-time histogram)
};

}  // namespace ulnet::proto
