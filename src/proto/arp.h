// ARP: IPv4 -> link address resolution with a per-interface cache,
// request retry, and a pending-packet queue per unresolved address.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/env.h"
#include "proto/wire.h"

namespace ulnet::proto {

class ArpModule {
 public:
  using ResolveCb = std::function<void(std::optional<net::MacAddr>)>;

  struct Config {
    sim::Time entry_ttl;
    sim::Time request_timeout;
    int max_retries;
    // Explicit default constructor rather than member initializers: the
    // latter cannot be used in a same-class default argument (GCC #88165).
    Config()
        : entry_ttl(20 * 60 * sim::kSec),
          request_timeout(1 * sim::kSec),
          max_retries(3) {}
  };

  explicit ArpModule(StackEnv& env, Config cfg = Config()) : env_(env), cfg_(cfg) {}
  ~ArpModule();
  ArpModule(const ArpModule&) = delete;
  ArpModule& operator=(const ArpModule&) = delete;

  // Resolve `ip` on interface `ifc`. Calls `cb` immediately on a cache hit;
  // otherwise broadcasts a request and queues the callback. On failure
  // (retries exhausted) the callback receives nullopt.
  void resolve(int ifc, net::Ipv4Addr ip, ResolveCb cb);

  // Handle an incoming ARP message (link header already stripped).
  void input(int ifc, buf::ByteView message);

  // Static entries / tests.
  void add_entry(net::Ipv4Addr ip, net::MacAddr mac);
  [[nodiscard]] std::optional<net::MacAddr> lookup(net::Ipv4Addr ip) const;
  void flush_cache() { cache_.clear(); }

  [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::uint64_t replies_sent() const { return replies_sent_; }
  [[nodiscard]] std::uint64_t resolution_failures() const {
    return failures_;
  }

 private:
  struct CacheEntry {
    net::MacAddr mac;
    sim::Time expires;
  };
  struct Pending {
    int ifc;
    std::vector<ResolveCb> waiters;
    int attempts = 0;
    timer::TimerId retry_timer = timer::kInvalidTimer;
  };

  void send_request(int ifc, net::Ipv4Addr ip);
  void retry(net::Ipv4Addr ip);

  StackEnv& env_;
  Config cfg_;
  std::unordered_map<net::Ipv4Addr, CacheEntry> cache_;
  std::unordered_map<net::Ipv4Addr, Pending> pending_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace ulnet::proto
