// Network- and transport-layer wire formats with real serialization and
// RFC 1071 checksums. Parsers are tolerant (return nullopt / flag bad
// checksums) because corrupted frames are a first-class simulation input.
#pragma once

#include <cstdint>
#include <optional>

#include "buf/bytes.h"
#include "buf/checksum.h"
#include "net/addr.h"

namespace ulnet::proto {

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

// ---------------------------------------------------------------------------
// IPv4 (fixed 20-byte header; options unsupported, as in our 4.3BSD-era
// common case)
// ---------------------------------------------------------------------------
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint16_t kFlagDontFragment = 0x4000;
  static constexpr std::uint16_t kFlagMoreFragments = 0x2000;

  std::uint8_t tos = 0;
  std::uint16_t total_len = 0;  // header + payload
  std::uint16_t ident = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t frag_offset_units = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t proto = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;

  // Appends the 20-byte header (with computed checksum) to `out`.
  void serialize(buf::Bytes& out) const;
  // Parses from the front of `b`. `checksum_valid` (optional out) reports
  // header-checksum correctness; parse itself only needs 20 bytes.
  static std::optional<Ipv4Header> parse(buf::ByteView b,
                                         bool* checksum_valid = nullptr);

  [[nodiscard]] std::size_t payload_len() const {
    return total_len >= kSize ? total_len - kSize : 0;
  }
  [[nodiscard]] std::size_t frag_offset_bytes() const {
    return static_cast<std::size_t>(frag_offset_units) * 8;
  }
};

// One's-complement sum of the TCP/UDP pseudo-header.
void add_pseudo_header(buf::ChecksumAccumulator& acc, net::Ipv4Addr src,
                       net::Ipv4Addr dst, std::uint8_t proto,
                       std::uint16_t l4_len);

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------
struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;
  bool urg = false;

  [[nodiscard]] std::uint8_t encode() const;
  static TcpFlags decode(std::uint8_t bits);
  bool operator==(const TcpFlags&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t wnd = 0;
  std::uint16_t urgent = 0;
  // Only option we emit/understand: MSS (kind 2), on SYN segments.
  std::optional<std::uint16_t> mss_option;

  [[nodiscard]] std::size_t header_len() const {
    return kMinSize + (mss_option ? 4 : 0);
  }

  // Appends header + payload with a valid checksum (pseudo-header included).
  void serialize(buf::Bytes& out, net::Ipv4Addr src, net::Ipv4Addr dst,
                 buf::ByteView payload) const;
  // Gathered form: appends the *header only*, with the checksum folded over
  // `payload` where it lies (the payload is never appended to `out`). Valid
  // because the header length is even, so the one's-complement sum can take
  // the two ranges independently. The resulting bytes + the same payload
  // concatenated parse identically to serialize()'s output.
  void serialize_header(buf::Bytes& out, net::Ipv4Addr src, net::Ipv4Addr dst,
                        buf::ByteView payload) const;
  // Parses a whole TCP segment (header+payload view). Returns the header;
  // `header_len_out` tells the caller where the payload starts.
  static std::optional<TcpHeader> parse(buf::ByteView segment,
                                        net::Ipv4Addr src, net::Ipv4Addr dst,
                                        bool* checksum_valid = nullptr,
                                        std::size_t* header_len_out = nullptr);
};

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint16_t length = 0;  // header + payload

  void serialize(buf::Bytes& out, net::Ipv4Addr src, net::Ipv4Addr dst,
                 buf::ByteView payload) const;
  static std::optional<UdpHeader> parse(buf::ByteView datagram,
                                        net::Ipv4Addr src, net::Ipv4Addr dst,
                                        bool* checksum_valid = nullptr);
};

// ---------------------------------------------------------------------------
// ICMP (echo request/reply only)
// ---------------------------------------------------------------------------
struct IcmpEcho {
  static constexpr std::uint8_t kEchoRequest = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::size_t kHeaderSize = 8;

  std::uint8_t type = kEchoRequest;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  void serialize(buf::Bytes& out, buf::ByteView payload) const;
  static std::optional<IcmpEcho> parse(buf::ByteView message,
                                       bool* checksum_valid = nullptr);
};

// ---------------------------------------------------------------------------
// ARP (Ethernet/IPv4 only)
// ---------------------------------------------------------------------------
struct ArpMessage {
  static constexpr std::size_t kSize = 28;
  static constexpr std::uint16_t kOpRequest = 1;
  static constexpr std::uint16_t kOpReply = 2;

  std::uint16_t op = kOpRequest;
  net::MacAddr sender_mac;
  net::Ipv4Addr sender_ip;
  net::MacAddr target_mac;
  net::Ipv4Addr target_ip;

  void serialize(buf::Bytes& out) const;
  static std::optional<ArpMessage> parse(buf::ByteView b);
};

}  // namespace ulnet::proto
