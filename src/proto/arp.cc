#include "proto/arp.h"

namespace ulnet::proto {

ArpModule::~ArpModule() {
  for (auto& [ip, p] : pending_) {
    if (p.retry_timer != timer::kInvalidTimer) {
      env_.cancel_timer(p.retry_timer);
    }
  }
}

void ArpModule::add_entry(net::Ipv4Addr ip, net::MacAddr mac) {
  cache_[ip] = CacheEntry{mac, env_.now() + cfg_.entry_ttl};
}

std::optional<net::MacAddr> ArpModule::lookup(net::Ipv4Addr ip) const {
  auto it = cache_.find(ip);
  if (it == cache_.end() || it->second.expires <= env_.now()) {
    return std::nullopt;
  }
  return it->second.mac;
}

void ArpModule::resolve(int ifc, net::Ipv4Addr ip, ResolveCb cb) {
  if (auto mac = lookup(ip)) {
    cb(mac);
    return;
  }
  auto [it, fresh] = pending_.try_emplace(ip);
  it->second.ifc = ifc;
  it->second.waiters.push_back(std::move(cb));
  if (fresh) {
    it->second.attempts = 1;
    send_request(ifc, ip);
    it->second.retry_timer =
        env_.schedule(cfg_.request_timeout, [this, ip] { retry(ip); });
  }
}

void ArpModule::send_request(int ifc, net::Ipv4Addr ip) {
  ArpMessage req;
  req.op = ArpMessage::kOpRequest;
  req.sender_mac = env_.ifc_mac(ifc);
  req.sender_ip = env_.ifc_ip(ifc);
  req.target_mac = net::MacAddr{};  // unknown
  req.target_ip = ip;
  buf::Bytes payload;
  req.serialize(payload);
  requests_sent_++;
  env_.charge(env_.cost().ip_fixed);
  env_.transmit(ifc, net::MacAddr::broadcast(), net::kEtherTypeArp,
                std::move(payload), nullptr);
}

void ArpModule::retry(net::Ipv4Addr ip) {
  auto it = pending_.find(ip);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.attempts >= cfg_.max_retries) {
    failures_++;
    auto waiters = std::move(p.waiters);
    pending_.erase(it);
    for (auto& cb : waiters) cb(std::nullopt);
    return;
  }
  p.attempts++;
  send_request(p.ifc, ip);
  p.retry_timer =
      env_.schedule(cfg_.request_timeout, [this, ip] { retry(ip); });
}

void ArpModule::input(int ifc, buf::ByteView message) {
  env_.charge(env_.cost().ip_fixed);
  auto msg = ArpMessage::parse(message);
  if (!msg) return;

  // Learn the sender's mapping either way (standard ARP optimization).
  add_entry(msg->sender_ip, msg->sender_mac);

  // Release any packets waiting on this address.
  if (auto it = pending_.find(msg->sender_ip); it != pending_.end()) {
    if (it->second.retry_timer != timer::kInvalidTimer) {
      env_.cancel_timer(it->second.retry_timer);
    }
    auto waiters = std::move(it->second.waiters);
    pending_.erase(it);
    for (auto& cb : waiters) cb(msg->sender_mac);
  }

  if (msg->op == ArpMessage::kOpRequest &&
      msg->target_ip == env_.ifc_ip(ifc)) {
    ArpMessage reply;
    reply.op = ArpMessage::kOpReply;
    reply.sender_mac = env_.ifc_mac(ifc);
    reply.sender_ip = env_.ifc_ip(ifc);
    reply.target_mac = msg->sender_mac;
    reply.target_ip = msg->sender_ip;
    buf::Bytes payload;
    reply.serialize(payload);
    replies_sent_++;
    env_.charge(env_.cost().ip_fixed);
    env_.transmit(ifc, msg->sender_mac, net::kEtherTypeArp,
                  std::move(payload), nullptr);
  }
}

}  // namespace ulnet::proto
