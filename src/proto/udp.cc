#include "proto/udp.h"

namespace ulnet::proto {

UdpModule::UdpModule(StackEnv& env, IpModule& ip) : env_(env), ip_(ip) {
  ip_.register_protocol(kProtoUdp,
                        [this](const Ipv4Header& h, buf::Bytes p, int ifc) {
                          input(h, std::move(p), ifc);
                        });
}

bool UdpModule::bind(std::uint16_t port, RecvCb cb) {
  auto [it, fresh] = ports_.try_emplace(port, std::move(cb));
  return fresh;
}

void UdpModule::unbind(std::uint16_t port) { ports_.erase(port); }

std::uint16_t UdpModule::alloc_ephemeral() {
  for (int guard = 0; guard < 65536; ++guard) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ < 10000) next_ephemeral_ = 10000;
    if (!ports_.contains(p)) return p;
  }
  return 0;
}

bool UdpModule::send(std::uint16_t sport, net::Ipv4Addr dst,
                     std::uint16_t dport, buf::Bytes payload) {
  const int ifc = ip_.route(dst);
  if (ifc < 0) return false;
  // Source address must match the route: the checksum's pseudo-header
  // includes it.
  const net::Ipv4Addr src = env_.ifc_ip(ifc);

  UdpHeader h;
  h.sport = sport;
  h.dport = dport;

  buf::Bytes datagram = env_.acquire_buffer(UdpHeader::kSize + payload.size());
  env_.charge(env_.cost().udp_fixed);
  env_.charge(static_cast<sim::Time>(payload.size()) *
              env_.cost().checksum_per_byte);
  h.serialize(datagram, src, dst, payload);
  env_.recycle_buffer(std::move(payload));
  counters_.sent++;
  return ip_.send(src, dst, kProtoUdp, std::move(datagram), nullptr);
}

void UdpModule::input(const Ipv4Header& h, buf::Bytes payload, int) {
  env_.charge(env_.cost().udp_fixed);
  env_.charge(static_cast<sim::Time>(payload.size()) *
              env_.cost().checksum_per_byte);
  bool ok = false;
  auto udp = UdpHeader::parse(payload, h.src, h.dst, &ok);
  if (!udp) return;
  if (!ok) {
    counters_.bad_checksum++;
    return;
  }
  auto it = ports_.find(udp->dport);
  if (it == ports_.end()) {
    counters_.no_port++;
    return;
  }
  counters_.delivered++;
  // Trim the UDP header (and any trailing slack) in place instead of
  // copying the body out, then pass the storage along to the receiver.
  payload.resize(udp->length);
  payload.erase(payload.begin(), payload.begin() + UdpHeader::kSize);
  it->second(h.src, udp->sport, std::move(payload));
}

}  // namespace ulnet::proto
