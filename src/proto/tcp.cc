#include "proto/tcp.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <tuple>
#include <vector>

#include "sim/json_writer.h"

namespace ulnet::proto {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

// ===========================================================================
// TcpModule
// ===========================================================================

TcpModule::TcpModule(StackEnv& env, IpModule& ip) : env_(env), ip_(ip) {
  ip_.register_protocol(kProtoTcp,
                        [this](const Ipv4Header& h, buf::Bytes p, int ifc) {
                          input(h, std::move(p), ifc);
                        });
  // Zero-copy receive: when the arriving datagram is backed by a loaned
  // ring buffer, IP hands the segment up as a view and no owned copy is
  // ever made. Connections opt in per-config (rx_byref) to keeping the
  // payload by reference; others copy exactly what they keep.
  ip_.register_protocol_view(
      kProtoTcp, [this](const Ipv4Header& h, buf::ByteView p, int ifc) {
        input_view(h, p, ifc);
      });
}

TcpModule::~TcpModule() {
  for (auto& [key, conn] : conns_) conn->cancel_all_timers();
}

std::uint16_t TcpModule::alloc_ephemeral() {
  for (int guard = 0; guard < 65536; ++guard) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ < 20000) next_ephemeral_ = 20000;
    bool taken = listeners_.contains(p);
    for (const auto& [key, conn] : conns_) {
      taken |= (key.local_port == p);
    }
    if (!taken) return p;
  }
  return 0;
}

TcpConnection* TcpModule::connect(net::Ipv4Addr dst, std::uint16_t dport,
                                  TcpObserver* observer, TcpConfig cfg,
                                  std::uint16_t sport) {
  const int ifc = ip_.route(dst);
  if (ifc < 0) return nullptr;
  if (sport == 0) sport = alloc_ephemeral();
  if (sport == 0) return nullptr;
  const net::Ipv4Addr lip = env_.ifc_ip(ifc);
  const ConnKey key{lip.value, dst.value, sport, dport};
  if (conns_.contains(key)) return nullptr;

  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, cfg, lip, sport, dst, dport, observer));
  TcpConnection* raw = conn.get();
  conns_.emplace(key, std::move(conn));
  counters_.conns_opened++;
  raw->start_active_open();
  return raw;
}

bool TcpModule::listen(std::uint16_t port, TcpObserver* acceptor,
                       TcpConfig cfg) {
  auto [it, fresh] = listeners_.try_emplace(port, Listener{acceptor, cfg});
  return fresh;
}

void TcpModule::close_listener(std::uint16_t port) { listeners_.erase(port); }

TcpConnection* TcpModule::find(const ConnKey& key) {
  auto it = conns_.find(key);
  return it == conns_.end() ? nullptr : it->second.get();
}

void TcpModule::release(TcpConnection* conn) {
  if (conn == nullptr) return;
  conn->cancel_all_timers();
  if (conn->burst_ack_pending_) {
    conn->burst_ack_pending_ = false;
    burst_conns_.erase(
        std::remove(burst_conns_.begin(), burst_conns_.end(), conn),
        burst_conns_.end());
  }
  const ConnKey key{conn->local_ip().value, conn->remote_ip().value,
                    conn->local_port(), conn->remote_port()};
  conns_.erase(key);
}

void TcpModule::note_burst_conn(TcpConnection* conn) {
  burst_conns_.push_back(conn);
}

void TcpModule::end_input_burst() {
  if (burst_depth_ > 0) burst_depth_--;
  if (burst_depth_ > 0 || burst_conns_.empty()) return;
  std::vector<TcpConnection*> pending;
  pending.swap(burst_conns_);
  for (TcpConnection* c : pending) c->flush_burst_ack();
}

TcpConnection* TcpModule::import_connection(const TcpHandoffState& st,
                                            TcpObserver* observer) {
  const ConnKey key{st.local_ip.value, st.remote_ip.value, st.local_port,
                    st.remote_port};
  if (conns_.contains(key)) return nullptr;
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, st.cfg, st.local_ip, st.local_port,
                        st.remote_ip, st.remote_port, observer));
  TcpConnection* c = conn.get();
  c->mss_ = st.mss;
  c->iss_ = st.iss;
  c->irs_ = st.irs;
  c->snd_una_ = st.snd_una;
  c->snd_nxt_ = st.snd_nxt;
  c->snd_max_ = st.snd_max;
  c->snd_wnd_ = st.snd_wnd;
  c->rcv_nxt_ = st.rcv_nxt;
  c->rcv_adv_ = st.rcv_adv;
  c->srtt_ = st.srtt;
  c->rttvar_ = st.rttvar;
  if (st.rto > 0) c->rto_ = st.rto;
  c->cwnd_ = c->mss_;
  if (!st.rcv_pending.empty()) {
    c->append_rx_owned(buf::Bytes(st.rcv_pending), 0);
  }
  c->peer_fin_seen_ = st.peer_fin_seen;
  c->peer_fin_seq_ = st.peer_fin_seq;
  c->state_ = (st.state == TcpState::kCloseWait) ? TcpState::kCloseWait
                                                 : TcpState::kEstablished;
  conns_.emplace(key, std::move(conn));
  return c;
}

void TcpModule::input(const Ipv4Header& h, buf::Bytes payload, int) {
  const EnvProfileScope prof(env_, sim::CpuComponent::kTcpInput);
  env_.charge(env_.cost().tcp_input_fixed);

  bool cksum_ok = false;
  std::size_t hlen = 0;
  auto t = TcpHeader::parse(payload, h.src, h.dst, &cksum_ok, &hlen);
  if (!t) return;

  const ConnKey key{h.dst.value, h.src.value, t->dport, t->sport};
  TcpConnection* conn = find(key);

  const bool verify =
      conn == nullptr || conn->config().checksum_enabled;
  if (verify) {
    const EnvProfileScope cks(env_, sim::CpuComponent::kChecksum);
    env_.charge(static_cast<sim::Time>(payload.size()) *
                env_.cost().checksum_per_byte);
    if (!cksum_ok) {
      counters_.bad_checksum++;
      return;
    }
  }

  counters_.segments_received++;
  buf::ByteView body(payload.data() + hlen, payload.size() - hlen);

  if (conn != nullptr) {
    conn->segment_arrived(*t, body);
    env_.recycle_buffer(std::move(payload));
    return;
  }

  // No connection: a SYN may match a listener.
  if (t->flags.syn && !t->flags.ack) {
    auto lit = listeners_.find(t->dport);
    if (lit != listeners_.end()) {
      auto child = std::unique_ptr<TcpConnection>(
          new TcpConnection(*this, lit->second.cfg, h.dst, t->dport, h.src,
                            t->sport, lit->second.acceptor));
      TcpConnection* raw = child.get();
      conns_.emplace(key, std::move(child));
      raw->start_passive_open(*t);
      env_.recycle_buffer(std::move(payload));
      return;
    }
  }
  const std::size_t body_len = body.size();
  env_.recycle_buffer(std::move(payload));
  send_rst_for(h, *t, body_len);
}

// View-based twin of input(): identical protocol logic, but the segment
// stays in the arrival buffer (a pool loan published by the organization's
// drain loop) -- nothing is copied or recycled here. Kept separate rather
// than delegating so the owned path's buffer-recycling order (and with it
// the pool's hit/miss stream) is bit-identical to the seed.
void TcpModule::input_view(const Ipv4Header& h, buf::ByteView payload, int) {
  const EnvProfileScope prof(env_, sim::CpuComponent::kTcpInput);
  env_.charge(env_.cost().tcp_input_fixed);

  bool cksum_ok = false;
  std::size_t hlen = 0;
  auto t = TcpHeader::parse(payload, h.src, h.dst, &cksum_ok, &hlen);
  if (!t) return;

  const ConnKey key{h.dst.value, h.src.value, t->dport, t->sport};
  TcpConnection* conn = find(key);

  const bool verify = conn == nullptr || conn->config().checksum_enabled;
  if (verify) {
    const EnvProfileScope cks(env_, sim::CpuComponent::kChecksum);
    env_.charge(static_cast<sim::Time>(payload.size()) *
                env_.cost().checksum_per_byte);
    if (!cksum_ok) {
      counters_.bad_checksum++;
      return;
    }
  }

  counters_.segments_received++;
  buf::ByteView body(payload.data() + hlen, payload.size() - hlen);

  if (conn != nullptr) {
    conn->segment_arrived(*t, body);
    return;
  }

  // No connection: a SYN may match a listener.
  if (t->flags.syn && !t->flags.ack) {
    auto lit = listeners_.find(t->dport);
    if (lit != listeners_.end()) {
      auto child = std::unique_ptr<TcpConnection>(
          new TcpConnection(*this, lit->second.cfg, h.dst, t->dport, h.src,
                            t->sport, lit->second.acceptor));
      TcpConnection* raw = child.get();
      conns_.emplace(key, std::move(child));
      raw->start_passive_open(*t);
      return;
    }
  }
  send_rst_for(h, *t, body.size());
}

void TcpModule::send_rst_for(const Ipv4Header& h, const TcpHeader& t,
                             std::size_t payload_len) {
  if (t.flags.rst) return;  // never answer a reset with a reset
  TcpHeader rst;
  rst.sport = t.dport;
  rst.dport = t.sport;
  rst.flags.rst = true;
  if (t.flags.ack) {
    rst.seq = t.ack;
  } else {
    rst.flags.ack = true;
    rst.ack = t.seq + static_cast<std::uint32_t>(payload_len) +
              (t.flags.syn ? 1 : 0) + (t.flags.fin ? 1 : 0);
  }
  buf::Bytes seg = env_.acquire_buffer(TcpHeader::kMinSize);
  env_.charge(env_.cost().tcp_output_fixed);
  rst.serialize(seg, h.dst, h.src, {});
  counters_.rst_sent++;
  counters_.segments_sent++;
  ip_.send(h.dst, h.src, kProtoTcp, std::move(seg), nullptr);
}

// ===========================================================================
// TcpConnection
// ===========================================================================

TcpConnection::TcpConnection(TcpModule& mod, TcpConfig cfg, net::Ipv4Addr lip,
                             std::uint16_t lport, net::Ipv4Addr rip,
                             std::uint16_t rport, TcpObserver* obs)
    : mod_(mod),
      cfg_(cfg),
      observer_(obs),
      local_ip_(lip),
      remote_ip_(rip),
      local_port_(lport),
      remote_port_(rport),
      rto_(cfg.rto_initial) {
  const std::size_t mtu = mod_.ip().path_mtu(remote_ip_);
  const std::size_t overhead = Ipv4Header::kSize + TcpHeader::kMinSize;
  mss_ = cfg_.mss;
  if (mtu > overhead) mss_ = std::min(mss_, mtu - overhead);
  cwnd_ = mss_;
  ssthresh_ = cfg_.send_buf;
  // Gather transmit stages one chunk per user write; without
  // segment_per_write, segments would routinely span chunks and every
  // emission would fall back to a staging copy anyway.
  if (!cfg_.segment_per_write) cfg_.tx_gather = false;
  if (!cfg_.compact_stats) rtt_hist_ = std::make_unique<sim::Histogram>();
}

std::size_t TcpModule::tcb_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, conn] : conns_) total += conn->memory_bytes();
  return total;
}

const sim::Histogram& TcpConnection::rtt_hist() const {
  static const sim::Histogram kEmpty;
  return rtt_hist_ != nullptr ? *rtt_hist_ : kEmpty;
}

std::size_t TcpConnection::memory_bytes() const {
  std::size_t total = sizeof(*this);
  if (rtt_hist_ != nullptr) total += sizeof(sim::Histogram);
  total += snd_buf_.size();
  for (const buf::Bytes& c : snd_chunks_) total += c.size();
  total += push_marks_.size() * sizeof(std::uint32_t);
  total += rcv_queue_.size();
  for (const buf::RxChunk& c : rcv_chunks_) {
    total += sizeof(buf::RxChunk) + c.owned.size();
  }
  for (const auto& [seq, seg] : ooo_) {
    total += sizeof(std::uint32_t) + seg.size();
  }
  return total;
}

TcpConnection::~TcpConnection() {
  // Orderly teardown returns every loan the connection still holds.
  // abandon_rx_chunks() (crash modelling) clears the deque first, so a
  // killed app's loans stay out until the registry sweep reclaims them.
  for (buf::RxChunk& c : rcv_chunks_) {
    if (c.loan.engaged()) {
      c.loan.release(static_cast<std::uint64_t>(mod_.env().now()));
    }
  }
}

TcpHandoffState TcpConnection::export_state() const {
  TcpHandoffState st;
  st.cfg = cfg_;
  st.local_ip = local_ip_;
  st.remote_ip = remote_ip_;
  st.local_port = local_port_;
  st.remote_port = remote_port_;
  st.mss = mss_;
  st.iss = iss_;
  st.irs = irs_;
  st.snd_una = snd_una_;
  st.snd_nxt = snd_nxt_;
  st.snd_max = snd_max_;
  st.snd_wnd = snd_wnd_;
  st.rcv_nxt = rcv_nxt_;
  st.rcv_adv = rcv_adv_;
  st.srtt = srtt_;
  st.rttvar = rttvar_;
  st.rto = rto_;
  st.state = state_;
  st.peer_fin_seen = peer_fin_seen_;
  st.peer_fin_seq = peer_fin_seq_;
  st.rcv_pending.assign(rcv_queue_.begin(), rcv_queue_.end());
  // By-reference chunks flatten into the snapshot; the handed-off side has
  // no access to this pool's loans. The loans themselves are returned when
  // the exporting connection is released (destructor).
  for (const buf::RxChunk& c : rcv_chunks_) {
    const buf::ByteView v = c.view();
    st.rcv_pending.insert(st.rcv_pending.end(), v.begin(), v.end());
  }
  return st;
}

TxFlow TcpConnection::tx_flow() const {
  return TxFlow{local_ip_, remote_ip_, kProtoTcp, local_port_, remote_port_};
}

void TcpConnection::set_state(TcpState s) {
  if (s == state_) return;
  state_ = s;
  stats_.state_transitions++;
  mod_.env().trace(sim::TraceEventType::kTcpState, trace_id(), 0, 0,
                   to_string(s));
}

void TcpConnection::note_retransmit(std::uint32_t seq, bool fast) {
  retransmit_count_++;
  stats_.retransmits++;
  mod_.counters().retransmits++;
  if (fast) {
    stats_.fast_retransmits++;
    mod_.counters().fast_retransmits++;
  }
  mod_.env().trace(sim::TraceEventType::kTcpRetransmit, trace_id(),
                   static_cast<std::int64_t>(seq - iss_), fast ? 1 : 0);
}

void TcpConnection::note_queues() {
  stats_.cwnd_max = std::max<std::uint64_t>(stats_.cwnd_max, cwnd_);
  stats_.snd_wnd_max = std::max<std::uint64_t>(stats_.snd_wnd_max, snd_wnd_);
  stats_.snd_buf_max =
      std::max<std::uint64_t>(stats_.snd_buf_max, snd_len());
  stats_.rcv_queue_max =
      std::max<std::uint64_t>(stats_.rcv_queue_max, rcv_buffered());
  stats_.ooo_bytes_max =
      std::max<std::uint64_t>(stats_.ooo_bytes_max, ooo_bytes_);
}

void TcpConnection::start_active_open() {
  open_started_at_ = mod_.env().now();
  open_timed_ = true;
  iss_ = mod_.env().random32();
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  snd_max_ = iss_;
  set_state(TcpState::kSynSent);
  TcpFlags f;
  f.syn = true;
  emit_segment(snd_nxt_, {}, f, /*mss_opt=*/true);
  snd_nxt_ = iss_ + 1;
  rtt_timing_ = true;
  rtt_seq_ = iss_;
  rtt_start_ = mod_.env().now();
  arm_rtx();
}

void TcpConnection::start_passive_open(const TcpHeader& syn) {
  open_started_at_ = mod_.env().now();
  open_timed_ = true;
  irs_ = syn.seq;
  rcv_nxt_ = irs_ + 1;
  snd_wnd_ = syn.wnd;
  if (syn.mss_option) {
    mss_ = std::min<std::size_t>(mss_, *syn.mss_option);
  }
  cwnd_ = mss_;
  iss_ = mod_.env().random32();
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  snd_max_ = iss_;
  set_state(TcpState::kSynReceived);
  TcpFlags f;
  f.syn = true;
  f.ack = true;
  emit_segment(snd_nxt_, {}, f, /*mss_opt=*/true);
  snd_nxt_ = iss_ + 1;
  arm_rtx();
}

std::uint16_t TcpConnection::advertised_window() const {
  const std::size_t used = rcv_buffered() + ooo_bytes_;
  const std::size_t space = cfg_.recv_buf > used ? cfg_.recv_buf - used : 0;
  return static_cast<std::uint16_t>(std::min<std::size_t>(space, 65535));
}

void TcpConnection::emit_segment(std::uint32_t seq, buf::ByteView payload,
                                 TcpFlags flags, bool mss_opt) {
  TcpHeader t;
  t.sport = local_port_;
  t.dport = remote_port_;
  t.seq = seq;
  t.flags = flags;
  if (flags.ack) t.ack = rcv_nxt_;
  t.wnd = advertised_window();
  if (mss_opt) t.mss_option = static_cast<std::uint16_t>(mss_);

  auto& env = mod_.env();
  env.charge(env.cost().tcp_output_fixed);
  if (cfg_.checksum_enabled) {
    env.charge(static_cast<sim::Time>(t.header_len() + payload.size()) *
               env.cost().checksum_per_byte);
  }
  env.charge(env.cost().timer_op);  // "practically every departure" (2.1)

  // Gather emission: only the header is materialized; the checksum folds
  // over the payload where it lies and the payload travels by reference
  // through IP to the NIC (template-gated on the user-level channel). The
  // copy path serializes header + payload into one buffer as before.
  const bool gather = cfg_.tx_gather && !payload.empty();
  buf::Bytes seg =
      env.acquire_buffer(t.header_len() + (gather ? 0 : payload.size()));
  if (gather) {
    t.serialize_header(seg, local_ip_, remote_ip_, payload);
  } else {
    t.serialize(seg, local_ip_, remote_ip_, payload);
    env.count_payload_copy(payload.size());
  }
  env.count_header_copy(t.header_len());

  mod_.counters().segments_sent++;
  mod_.counters().bytes_sent += payload.size();
  stats_.segments_out++;
  stats_.bytes_out += payload.size();
  if (flags.ack) {
    // Any ACK-bearing segment satisfies pending delayed-ACK obligations.
    if (delack_timer_ != timer::kInvalidTimer) {
      mod_.env().cancel_timer(delack_timer_);
      delack_timer_ = timer::kInvalidTimer;
    }
    segs_since_ack_ = 0;
    rcv_adv_ = rcv_nxt_ + t.wnd;
  }

  TxFlow flow = tx_flow();
  // Provenance id assigned at the segment's birth. A causal site (timer
  // fire, ACK decision) may have pre-allocated the id and opened a flow
  // arrow; the emission point closes it.
  if (pending_tx_trace_id_ != 0) {
    flow.trace_id = pending_tx_trace_id_;
    pending_tx_trace_id_ = 0;
    if (pending_cause_ != nullptr) {
      env.trace_flow_end(pending_cause_, flow.trace_id);
      pending_cause_ = nullptr;
    }
  } else {
    flow.trace_id = env.new_trace_id();
  }
  // Track the highest sequence ever sent. A resend from snd_una can extend
  // beyond the previous snd_max (e.g. a full segment covering an earlier
  // 1-byte window probe); failing to advance snd_max here would make the
  // peer's next cumulative ACK look like it "acks the future" and get
  // dropped, wedging the connection until another timeout.
  const std::uint32_t seg_end = seq +
                                static_cast<std::uint32_t>(payload.size()) +
                                (flags.syn ? 1 : 0) + (flags.fin ? 1 : 0);
  if (seq_gt(seg_end, snd_max_)) snd_max_ = seg_end;
  note_queues();

  if (gather) {
    mod_.ip().send_gather(local_ip_, remote_ip_, kProtoTcp, std::move(seg),
                          payload, &flow);
  } else {
    mod_.ip().send(local_ip_, remote_ip_, kProtoTcp, std::move(seg), &flow);
  }
}

std::size_t TcpConnection::send(buf::ByteView data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kSynSent &&
      state_ != TcpState::kSynReceived && state_ != TcpState::kCloseWait) {
    return 0;
  }
  if (fin_pending_ || fin_sent_) return 0;  // no data after close()

  auto& env = mod_.env();
  env.charge(env.cost().socket_fixed);

  const std::size_t space = send_space();
  const std::size_t n = std::min(space, data.size());
  if (n == 0) return 0;
  snd_append(buf::ByteView(data.data(), n));
  push_marks_.push_back(snd_buf_end_seq());
  note_queues();
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    output(false);
  }
  return n;
}

std::size_t TcpConnection::send_space() const {
  return cfg_.send_buf > snd_len() ? cfg_.send_buf - snd_len() : 0;
}

// ---------------------------------------------------------------------------
// Send- and receive-store helpers (copy vs zero-copy representations)
// ---------------------------------------------------------------------------

void TcpConnection::snd_append(buf::ByteView data) {
  if (!cfg_.tx_gather) {
    snd_buf_.insert(snd_buf_.end(), data.begin(), data.end());
    return;
  }
  // One pooled chunk per user write -- the library's app-owned staging
  // region. Composing the write into app memory happens in every
  // organization and mode alike, so it is neither counted nor charged as a
  // protocol copy.
  buf::Bytes chunk = mod_.env().acquire_buffer(data.size());
  chunk.insert(chunk.end(), data.begin(), data.end());
  snd_chunk_bytes_ += chunk.size();
  snd_chunks_.push_back(std::move(chunk));
}

void TcpConnection::snd_consume(std::size_t n) {
  if (n == 0) return;
  if (!cfg_.tx_gather) {
    snd_buf_.erase(snd_buf_.begin(), snd_buf_.begin() + static_cast<long>(n));
    return;
  }
  snd_chunk_bytes_ -= n;
  snd_head_off_ += n;
  while (!snd_chunks_.empty() &&
         snd_head_off_ >= snd_chunks_.front().size()) {
    snd_head_off_ -= snd_chunks_.front().size();
    mod_.env().recycle_buffer(std::move(snd_chunks_.front()));
    snd_chunks_.pop_front();
  }
}

std::uint8_t TcpConnection::snd_byte(std::size_t off) const {
  if (!cfg_.tx_gather) return snd_buf_[off];
  std::size_t pos = snd_head_off_ + off;
  for (const buf::Bytes& c : snd_chunks_) {
    if (pos < c.size()) return c[pos];
    pos -= c.size();
  }
  return 0;
}

buf::ByteView TcpConnection::snd_view(std::size_t off,
                                      std::size_t len) const {
  std::size_t pos = snd_head_off_ + off;
  for (const buf::Bytes& c : snd_chunks_) {
    if (pos < c.size()) {
      if (pos + len <= c.size()) return buf::ByteView(c.data() + pos, len);
      return {};  // spans two writes: caller stages a copy
    }
    pos -= c.size();
  }
  return {};
}

void TcpConnection::append_rx(buf::ByteView data) {
  if (data.empty()) return;
  auto& env = mod_.env();
  if (cfg_.rx_byref) {
    if (auto slice = env.rx_loan_slice(data)) {
      env.count_payload_elided(data.size());
      rcv_chunk_bytes_ += slice->len;
      rcv_chunks_.push_back(std::move(*slice));
      return;
    }
    // The bytes do not live in a loaned buffer (copied delivery, fragment
    // reassembly): selective copy into an owned chunk.
    buf::RxChunk c;
    c.owned.assign(data.begin(), data.end());
    c.len = data.size();
    env.count_payload_copy(data.size());
    rcv_chunk_bytes_ += c.len;
    rcv_chunks_.push_back(std::move(c));
    return;
  }
  env.count_payload_copy(data.size());
  rcv_queue_.insert(rcv_queue_.end(), data.begin(), data.end());
}

void TcpConnection::append_rx_owned(buf::Bytes&& data, std::size_t skip) {
  const std::size_t len = data.size() - skip;
  if (len == 0) return;
  auto& env = mod_.env();
  if (!cfg_.rx_byref) {
    env.count_payload_copy(len);
    rcv_queue_.insert(rcv_queue_.end(),
                      data.begin() + static_cast<long>(skip), data.end());
    return;
  }
  // Already-owned bytes (reassembled segment, imported snapshot) move in
  // without another copy.
  env.count_payload_elided(len);
  buf::RxChunk c;
  c.owned = std::move(data);
  c.off = skip;
  c.len = len;
  rcv_chunk_bytes_ += len;
  rcv_chunks_.push_back(std::move(c));
}

buf::Bytes TcpConnection::read(std::size_t max) {
  auto& env = mod_.env();
  env.charge(env.cost().socket_fixed);
  buf::Bytes out;
  if (cfg_.rx_byref) {
    // read() on a by-reference connection is the selective-copy exit: the
    // caller asked for a flat buffer, so the chunks are copied out and
    // their loans released here.
    const std::size_t n = std::min(max, rcv_chunk_bytes_);
    out.reserve(n);
    std::size_t need = n;
    while (need > 0) {
      buf::RxChunk& c = rcv_chunks_.front();
      const std::size_t take = std::min(need, c.len);
      const buf::ByteView v = c.view();
      out.insert(out.end(), v.begin(), v.begin() + static_cast<long>(take));
      c.off += take;
      c.len -= take;
      rcv_chunk_bytes_ -= take;
      need -= take;
      if (c.len == 0) {
        if (c.loan.engaged()) {
          c.loan.release(static_cast<std::uint64_t>(env.now()));
        }
        rcv_chunks_.pop_front();
      }
    }
    env.count_payload_copy(n);
  } else {
    const std::size_t n = std::min(max, rcv_queue_.size());
    out.assign(rcv_queue_.begin(), rcv_queue_.begin() + static_cast<long>(n));
    rcv_queue_.erase(rcv_queue_.begin(),
                     rcv_queue_.begin() + static_cast<long>(n));
    env.count_payload_copy(n);
  }

  // Window-update heuristic (silly-window avoidance on the receive side):
  // tell the peer when the window has opened by >= 2 segments or half the
  // buffer since the last advertisement.
  if (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
      state_ == TcpState::kFinWait2) {
    const std::uint32_t new_edge = rcv_nxt_ + advertised_window();
    const std::uint32_t growth = new_edge - rcv_adv_;
    if (growth >= 2 * mss_ || growth >= cfg_.recv_buf / 2) {
      send_ack_now();
    }
  }
  return out;
}

std::vector<buf::RxChunk> TcpConnection::read_chunks(std::size_t max) {
  auto& env = mod_.env();
  env.charge(env.cost().socket_fixed);
  std::vector<buf::RxChunk> out;
  if (!cfg_.rx_byref) {
    // Flat-queue connection: the data was already merged byte-wise, so the
    // handout is one owned chunk (a real copy, counted as such).
    const std::size_t n = std::min(max, rcv_queue_.size());
    if (n > 0) {
      buf::RxChunk c;
      c.owned.assign(rcv_queue_.begin(),
                     rcv_queue_.begin() + static_cast<long>(n));
      c.len = n;
      rcv_queue_.erase(rcv_queue_.begin(),
                       rcv_queue_.begin() + static_cast<long>(n));
      env.count_payload_copy(n);
      out.push_back(std::move(c));
    }
  } else {
    std::size_t need = std::min(max, rcv_chunk_bytes_);
    while (need > 0) {
      buf::RxChunk& c = rcv_chunks_.front();
      if (c.len <= need) {
        need -= c.len;
        rcv_chunk_bytes_ -= c.len;
        env.count_payload_elided(c.len);
        out.push_back(std::move(c));
        rcv_chunks_.pop_front();
        continue;
      }
      // `max` falls inside this chunk: split. A loaned chunk shares the
      // loan (one more reference); an owned chunk copies the prefix out.
      buf::RxChunk head;
      if (c.loan.engaged()) {
        head.loan = c.loan;  // addref
        head.off = c.off;
        head.len = need;
        env.count_payload_elided(need);
      } else {
        const buf::ByteView v = c.view();
        head.owned.assign(v.begin(), v.begin() + static_cast<long>(need));
        head.len = need;
        env.count_payload_copy(need);
      }
      c.off += need;
      c.len -= need;
      rcv_chunk_bytes_ -= need;
      out.push_back(std::move(head));
      need = 0;
    }
  }

  // Same window-update heuristic as read(): the consumed bytes may have
  // reopened the advertised window.
  if (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
      state_ == TcpState::kFinWait2) {
    const std::uint32_t new_edge = rcv_nxt_ + advertised_window();
    const std::uint32_t growth = new_edge - rcv_adv_;
    if (growth >= 2 * mss_ || growth >= cfg_.recv_buf / 2) {
      send_ack_now();
    }
  }
  return out;
}

void TcpConnection::output(bool force_ack) {
  bool sent = false;
  const bool may_send_data = state_ == TcpState::kEstablished ||
                             state_ == TcpState::kCloseWait ||
                             state_ == TcpState::kFinWait1 ||
                             state_ == TcpState::kClosing ||
                             state_ == TcpState::kLastAck;

  if (may_send_data) {
    for (;;) {
      const std::size_t off = snd_nxt_ - snd_una_;
      const std::size_t buffered = snd_len();
      const std::size_t avail = buffered > off ? buffered - off : 0;
      const std::size_t wnd =
          std::min<std::size_t>(std::max<std::size_t>(snd_wnd_, 0), cwnd_);
      const std::size_t usable = wnd > off ? wnd - off : 0;
      std::size_t len = std::min({avail, usable, mss_});

      if (len > 0 && cfg_.segment_per_write) {
        // Never span a user-write boundary.
        for (std::uint32_t mark : push_marks_) {
          if (seq_gt(mark, snd_nxt_)) {
            len = std::min<std::size_t>(len, mark - snd_nxt_);
            break;
          }
        }
      }

      if (len == 0) {
        break;
      }

      // Nagle: hold a sub-MSS segment while earlier data is unacked,
      // unless a FIN is about to flush the buffer anyway.
      if (cfg_.nagle && len < mss_ && flight_size() > 0 &&
          !(fin_pending_ && len == avail)) {
        break;
      }

      TcpFlags f;
      f.ack = true;
      const std::uint32_t seg_end = snd_nxt_ + static_cast<std::uint32_t>(len);
      // PSH at a write boundary or when the buffer drains.
      f.psh = (seg_end == snd_buf_end_seq());
      for (std::uint32_t mark : push_marks_) {
        if (mark == seg_end) f.psh = true;
      }

      // Classify before emitting: emit_segment itself advances snd_max.
      if (seq_lt(snd_nxt_, snd_max_)) {
        note_retransmit(snd_nxt_, /*fast=*/false);
      }
      emit_data(snd_nxt_, off, len, f);

      if (!rtt_timing_) {
        rtt_timing_ = true;
        rtt_seq_ = snd_nxt_;
        rtt_start_ = mod_.env().now();
      }
      snd_nxt_ = seg_end;
      if (rtx_timer_ == timer::kInvalidTimer) arm_rtx();
      sent = true;
    }

    // FIN once all queued data has been sent.
    if (fin_pending_ && !fin_sent_ && snd_nxt_ == snd_buf_end_seq()) {
      TcpFlags f;
      f.fin = true;
      f.ack = true;
      fin_seq_ = snd_nxt_;
      emit_segment(snd_nxt_, {}, f, false);
      snd_nxt_++;
      fin_sent_ = true;
      if (rtx_timer_ == timer::kInvalidTimer) arm_rtx();
      sent = true;
    }

    // Zero-window with data pending: start probing.
    const std::size_t pending =
        snd_len() > (snd_nxt_ - snd_una_) ? 1 : 0;
    if (!sent && pending > 0 && snd_wnd_ == 0 && flight_size() == 0 &&
        persist_timer_ == timer::kInvalidTimer) {
      arm_persist();
    }
  }

  if (!sent && force_ack) {
    send_ack_now();
  }
}

void TcpConnection::emit_data(std::uint32_t seq, std::size_t off,
                              std::size_t len, TcpFlags flags) {
  auto& env = mod_.env();
  buf::ByteView v = cfg_.tx_gather ? snd_view(off, len) : buf::ByteView{};
  buf::Bytes chunk;
  if (v.empty()) {
    // snd_buf_ is a deque (or the segment spans two gather chunks, e.g. a
    // retransmission across small writes), so a contiguous staging copy is
    // unavoidable; the staging buffer itself comes from (and returns to)
    // the pool.
    chunk = env.acquire_buffer(len);
    if (cfg_.tx_gather) {
      for (std::size_t i = 0; i < len; ++i) chunk.push_back(snd_byte(off + i));
    } else {
      chunk.insert(chunk.end(), snd_buf_.begin() + static_cast<long>(off),
                   snd_buf_.begin() + static_cast<long>(off + len));
    }
    env.count_payload_copy(len);
    v = chunk;
  } else {
    env.count_payload_elided(len);
  }
  emit_segment(seq, v, flags, false);
  if (!chunk.empty()) env.recycle_buffer(std::move(chunk));
}

void TcpConnection::send_ack_now() {
  // Causal link: this ACK exists because of the segment being processed.
  if (mod_.current_rx_trace_id() != 0 && pending_tx_trace_id_ == 0) {
    pending_tx_trace_id_ = mod_.env().new_trace_id();
    if (pending_tx_trace_id_ != 0) {
      pending_cause_ = "cause.ack";
      mod_.env().trace_flow_start(pending_cause_, pending_tx_trace_id_);
    }
  }
  TcpFlags f;
  f.ack = true;
  mod_.counters().pure_acks_sent++;
  emit_segment(snd_nxt_, {}, f, false);
}

void TcpConnection::send_rst() {
  TcpFlags f;
  f.rst = true;
  f.ack = true;
  mod_.counters().rst_sent++;
  emit_segment(snd_nxt_, {}, f, false);
}

// ---------------------------------------------------------------------------
// Input path
// ---------------------------------------------------------------------------

void TcpConnection::segment_arrived(const TcpHeader& t,
                                    buf::ByteView payload) {
  stats_.segments_in++;
  if (cfg_.header_prediction && state_ == TcpState::kEstablished &&
      try_fast_path(t, payload)) {
    return;
  }
  switch (state_) {
    case TcpState::kClosed:
      return;

    case TcpState::kSynSent: {
      if (t.flags.rst) {
        if (t.flags.ack && t.ack == snd_nxt_) {
          mod_.counters().rst_received++;
          terminate("connection refused");
        }
        return;
      }
      if (t.flags.syn && t.flags.ack) {
        if (t.ack != iss_ + 1) return;  // bogus
        irs_ = t.seq;
        rcv_nxt_ = t.seq + 1;
        snd_una_ = t.ack;
        snd_wnd_ = t.wnd;
        if (t.mss_option) {
          mss_ = std::min<std::size_t>(mss_, *t.mss_option);
        }
        cwnd_ = mss_;
        cancel_rtx();
        rtx_shift_ = 0;
        if (rtt_timing_) {
          rtt_sample(mod_.env().now() - rtt_start_);
          rtt_timing_ = false;
        }
        established();
        send_ack_now();
        output(false);
        return;
      }
      if (t.flags.syn) {
        // Simultaneous open.
        irs_ = t.seq;
        rcv_nxt_ = t.seq + 1;
        snd_wnd_ = t.wnd;
        set_state(TcpState::kSynReceived);
        TcpFlags f;
        f.syn = true;
        f.ack = true;
        emit_segment(iss_, {}, f, true);
        return;
      }
      return;
    }

    case TcpState::kSynReceived: {
      if (t.flags.rst) {
        mod_.counters().rst_received++;
        terminate("reset during handshake");
        return;
      }
      if (t.flags.syn && t.seq == irs_ && !t.flags.ack) {
        // Duplicate SYN: retransmit the SYN|ACK.
        TcpFlags f;
        f.syn = true;
        f.ack = true;
        emit_segment(iss_, {}, f, true);
        return;
      }
      if (!t.flags.ack) return;
      // Note: a SYN|ACK here is the simultaneous-open case -- the peer's
      // SYN|ACK acknowledges our SYN, completing both handshakes.
      if (t.ack != iss_ + 1) {
        send_rst();
        return;
      }
      snd_una_ = t.ack;
      snd_wnd_ = t.wnd;
      cancel_rtx();
      rtx_shift_ = 0;
      established();
      break;  // fall through to common processing for payload/FIN
    }

    default:
      break;
  }

  // ---- Synchronized-state processing ----
  if (state_ == TcpState::kTimeWait) {
    if (t.flags.rst) {
      terminate("");
      return;
    }
    if (t.flags.fin || t.flags.syn || !payload.empty()) {
      // Retransmitted FIN (or stray data): re-ACK and restart 2MSL.
      send_ack_now();
      if (time_wait_timer_ != timer::kInvalidTimer) {
        mod_.env().cancel_timer(time_wait_timer_);
      }
      time_wait_timer_ = mod_.env().schedule(
          2 * cfg_.msl, [this] { time_wait_timeout(); });
    }
    return;
  }

  // Sequence acceptability (simplified RFC 793 check).
  const auto seg_len = static_cast<std::uint32_t>(payload.size()) +
                       (t.flags.fin ? 1u : 0u);
  const std::uint32_t wnd_edge = rcv_nxt_ + advertised_window();
  if (seg_len > 0 || !payload.empty()) {
    const std::uint32_t seg_end = t.seq + seg_len;
    const bool overlaps =
        seq_gt(seg_end, rcv_nxt_) && seq_lt(t.seq, wnd_edge);
    const bool old_dup = seq_le(seg_end, rcv_nxt_);
    if (!overlaps && !old_dup) {
      if (!t.flags.rst) send_ack_now();
      return;
    }
    if (old_dup && !t.flags.rst) {
      // Complete duplicate: re-ACK (the peer missed our ACK), still process
      // the ACK field below.
      send_ack_now();
    }
  }

  if (t.flags.rst) {
    mod_.counters().rst_received++;
    terminate("reset by peer");
    return;
  }
  if (t.flags.syn && t.seq != irs_) {
    send_rst();
    terminate("SYN inside window");
    return;
  }
  if (!t.flags.ack) return;

  process_ack(t);
  if (state_ == TcpState::kClosed) return;  // terminated inside

  // FIN-of-ours acknowledged: advance the closing states.
  const bool fin_acked = fin_sent_ && seq_ge(snd_una_, fin_seq_ + 1);
  if (fin_acked) {
    switch (state_) {
      case TcpState::kFinWait1:
        set_state(TcpState::kFinWait2);
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        terminate("");
        return;
      default:
        break;
    }
  }

  if (!payload.empty() &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
       state_ == TcpState::kFinWait2)) {
    process_payload(t, payload);
  }

  if (t.flags.fin) {
    process_fin(t.seq + static_cast<std::uint32_t>(payload.size()));
  }
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  output(false);
}

// Van Jacobson header prediction. The two shortcuts below replay, line for
// line, what the established-state slow path does for the segments they
// accept -- including the trailing output(false) -- so they are pure
// shortcuts: same wire behavior, same counters the slow path would touch,
// same simulated charges (TcpModule::input charged them before we got
// here). Anything unusual (flags, gaps, window news, recovery or closing
// state, persist pending) falls through to the full state machine.
bool TcpConnection::try_fast_path(const TcpHeader& t, buf::ByteView payload) {
  const EnvProfileScope prof(mod_.env(), sim::CpuComponent::kTcpFastpath);
  if (t.flags.syn || t.flags.fin || t.flags.rst || !t.flags.ack) return false;
  if (t.seq != rcv_nxt_) return false;        // exactly the next segment
  if (t.wnd != snd_wnd_) return false;        // no window news
  if (in_fast_recovery_) return false;
  if (persist_timer_ != timer::kInvalidTimer) return false;

  if (payload.empty()) {
    // ---- Pure ACK advancing snd_una (mirror of process_ack's advance
    // branch with no recovery and no persist in progress). ----
    if (!(seq_gt(t.ack, snd_una_) && seq_le(t.ack, snd_max_))) return false;
    if (fin_sent_) return false;  // closing handshake: take the slow path

    const std::uint32_t ack = t.ack;
    const std::uint32_t acked = ack - snd_una_;
    const std::size_t data_acked = std::min<std::size_t>(acked, snd_len());
    snd_consume(data_acked);
    while (!push_marks_.empty() && seq_le(push_marks_.front(), ack)) {
      push_marks_.pop_front();
    }
    snd_una_ = ack;
    if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;
    rtx_shift_ = 0;
    if (rtt_timing_ && seq_gt(ack, rtt_seq_)) {
      rtt_sample(mod_.env().now() - rtt_start_);
      rtt_timing_ = false;
    }
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;  // slow start
    } else {
      cwnd_ += std::max<std::size_t>(mss_ * mss_ / cwnd_, 1);  // CA
    }
    cwnd_ = std::min(cwnd_, cfg_.send_buf);
    snd_wnd_ = t.wnd;
    note_queues();
    if (snd_una_ == snd_max_) {
      cancel_rtx();
    } else {
      arm_rtx();
    }
    stats_.fast_path_acks++;
    mod_.counters().fast_path_acks++;
    if (data_acked > 0 && observer_ != nullptr) {
      observer_->on_send_space(*this);
    }
    output(false);
    return true;
  }

  // ---- Pure in-order data carrying no ACK or window news (mirror of
  // process_payload's in-order branch with an empty reassembly queue and
  // room for the whole segment). ----
  if (t.ack != snd_una_ || snd_max_ != snd_una_) return false;  // quiet ACK
  if (!ooo_.empty()) return false;
  const std::size_t space = cfg_.recv_buf > rcv_buffered()
                                ? cfg_.recv_buf - rcv_buffered()
                                : 0;
  if (payload.size() > space) return false;

  append_rx(payload);
  rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
  mod_.counters().bytes_received += payload.size();
  stats_.bytes_in += payload.size();
  note_queues();
  stats_.fast_path_data++;
  mod_.counters().fast_path_data++;
  if (observer_ != nullptr) observer_->on_data_ready(*this);
  ack_policy_in_order();
  output(false);
  return true;
}

void TcpConnection::process_ack(const TcpHeader& t) {
  const std::uint32_t ack = t.ack;
  if (seq_gt(ack, snd_max_)) {
    send_ack_now();  // acking the future: tell the peer where we are
    return;
  }

  if (seq_le(ack, snd_una_)) {
    // Not advancing: maybe a duplicate ACK.
    if (ack == snd_una_ && seq_gt(snd_max_, snd_una_) && t.wnd == snd_wnd_) {
      dup_acks_++;
      mod_.counters().dup_acks_in++;
      stats_.dup_acks_in++;
      if (dup_acks_ == 3) {
        // Fast retransmit (Reno).
        ssthresh_ = std::max<std::size_t>(2 * mss_, flight_size() / 2);
        recover_ = snd_max_;
        const std::size_t len = std::min<std::size_t>(mss_, snd_len());
        if (len > 0) {
          TcpFlags f;
          f.ack = true;
          emit_data(snd_una_, 0, len, f);
          note_retransmit(snd_una_, /*fast=*/true);
        } else if (fin_sent_ && snd_una_ == fin_seq_) {
          TcpFlags f;
          f.fin = true;
          f.ack = true;
          emit_segment(fin_seq_, {}, f, false);
        }
        cwnd_ = ssthresh_ + 3 * mss_;
        in_fast_recovery_ = true;
        rtt_timing_ = false;  // Karn
      } else if (dup_acks_ > 3 && in_fast_recovery_) {
        cwnd_ += mss_;
        output(false);
      }
    } else {
      snd_wnd_ = t.wnd;
      if (snd_wnd_ > 0 && persist_timer_ != timer::kInvalidTimer) {
        mod_.env().cancel_timer(persist_timer_);
        persist_timer_ = timer::kInvalidTimer;
        persist_shift_ = 0;
        output(false);
      }
    }
    return;
  }

  // The ACK advances.
  const std::uint32_t acked = ack - snd_una_;
  const std::size_t data_acked = std::min<std::size_t>(acked, snd_len());
  snd_consume(data_acked);
  while (!push_marks_.empty() && seq_le(push_marks_.front(), ack)) {
    push_marks_.pop_front();
  }
  snd_una_ = ack;
  if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;
  rtx_shift_ = 0;

  if (rtt_timing_ && seq_gt(ack, rtt_seq_)) {
    rtt_sample(mod_.env().now() - rtt_start_);
    rtt_timing_ = false;
  }

  if (in_fast_recovery_) {
    if (seq_ge(ack, recover_)) {
      cwnd_ = ssthresh_;
      in_fast_recovery_ = false;
      dup_acks_ = 0;
    } else {
      // Partial ACK (NewReno-flavoured): retransmit the next hole.
      const std::size_t len = std::min<std::size_t>(mss_, snd_len());
      if (len > 0) {
        TcpFlags f;
        f.ack = true;
        emit_data(snd_una_, 0, len, f);
        note_retransmit(snd_una_, /*fast=*/false);
      }
    }
  } else {
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;  // slow start
    } else {
      cwnd_ += std::max<std::size_t>(mss_ * mss_ / cwnd_, 1);  // CA
    }
    cwnd_ = std::min(cwnd_, cfg_.send_buf);
  }

  snd_wnd_ = t.wnd;
  note_queues();
  if (snd_wnd_ > 0 && persist_timer_ != timer::kInvalidTimer) {
    mod_.env().cancel_timer(persist_timer_);
    persist_timer_ = timer::kInvalidTimer;
    persist_shift_ = 0;
  }

  if (snd_una_ == snd_max_) {
    cancel_rtx();
  } else {
    arm_rtx();  // restart for the remaining flight
  }

  if (data_acked > 0 && observer_ != nullptr &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait)) {
    observer_->on_send_space(*this);
  }
}

void TcpConnection::process_payload(const TcpHeader& t,
                                    buf::ByteView payload) {
  std::uint32_t seq = t.seq;
  buf::ByteView data = payload;

  // Trim anything we already have.
  if (seq_lt(seq, rcv_nxt_)) {
    const std::uint32_t skip = rcv_nxt_ - seq;
    if (skip >= data.size()) {
      send_ack_now();  // full duplicate
      return;
    }
    data = data.subspan(skip);
    seq = rcv_nxt_;
  }

  if (seq == rcv_nxt_) {
    // In-order data is admitted against queue occupancy only: any
    // out-of-order bytes it unblocks are already accounted for and merge
    // into the queue without consuming new space. (Counting ooo bytes here
    // can wedge the window permanently: the hole's retransmission would
    // never fit.)
    const std::size_t space = cfg_.recv_buf > rcv_buffered()
                                  ? cfg_.recv_buf - rcv_buffered()
                                  : 0;
    const std::size_t take = std::min(space, data.size());
    append_rx(buf::ByteView(data.data(), take));
    rcv_nxt_ += static_cast<std::uint32_t>(take);
    mod_.counters().bytes_received += take;
    stats_.bytes_in += take;

    // Pull any out-of-order segments that are now contiguous.
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      if (seq_gt(it->first, rcv_nxt_)) break;
      buf::Bytes& seg = it->second;
      const std::uint32_t seg_seq = it->first;
      const std::uint32_t seg_end =
          seg_seq + static_cast<std::uint32_t>(seg.size());
      if (seq_le(seg_end, rcv_nxt_)) {
        ooo_bytes_ -= seg.size();
        it = ooo_.erase(it);
        continue;
      }
      const std::uint32_t skip = rcv_nxt_ - seg_seq;
      const std::size_t add = seg.size() - skip;
      const std::size_t seg_size = seg.size();
      append_rx_owned(std::move(seg), skip);
      rcv_nxt_ += static_cast<std::uint32_t>(add);
      mod_.counters().bytes_received += add;
      stats_.bytes_in += add;
      ooo_bytes_ -= seg_size;
      it = ooo_.erase(it);
    }
    note_queues();

    if (observer_ != nullptr && take > 0) observer_->on_data_ready(*this);

    ack_policy_in_order();
    return;
  }

  // Out of order: stash (bounded by buffer space) and duplicate-ACK.
  mod_.counters().out_of_order++;
  stats_.out_of_order++;
  const std::size_t space = cfg_.recv_buf > rcv_buffered() + ooo_bytes_
                                ? cfg_.recv_buf - rcv_buffered() - ooo_bytes_
                                : 0;
  if (data.size() <= space && !ooo_.contains(seq)) {
    ooo_.emplace(seq, buf::Bytes(data.begin(), data.end()));
    mod_.env().count_payload_copy(data.size());
    ooo_bytes_ += data.size();
    note_queues();
  }
  send_ack_now();
}

// ACK policy for in-order data: immediate every second segment (BSD), else
// delayed. Under an active burst drain with ack_coalescing the decision is
// deferred -- segments keep counting, and end_input_burst applies the same
// policy once per connection (so a singleton burst behaves identically).
// Loss recovery (!ooo_.empty()) never defers: the peer needs its dup-ACKs.
void TcpConnection::ack_policy_in_order() {
  segs_since_ack_++;
  if (cfg_.ack_coalescing && mod_.in_input_burst() && ooo_.empty()) {
    if (!burst_ack_pending_) {
      burst_ack_pending_ = true;
      mod_.note_burst_conn(this);
    }
    return;
  }
  if (!cfg_.delayed_ack || segs_since_ack_ >= 2 || !ooo_.empty()) {
    send_ack_now();
  } else if (delack_timer_ == timer::kInvalidTimer) {
    delack_timer_ = mod_.env().schedule(cfg_.delack_delay,
                                        [this] { delack_timeout(); });
  }
}

void TcpConnection::flush_burst_ack() {
  burst_ack_pending_ = false;
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  // Something ACK-bearing may have gone out since the deferral (piggybacked
  // data, a FIN) -- emit_segment resets segs_since_ack_, so the obligation
  // is already satisfied.
  if (segs_since_ack_ == 0) return;
  if (!cfg_.delayed_ack || segs_since_ack_ >= 2 || !ooo_.empty()) {
    send_ack_now();
  } else if (delack_timer_ == timer::kInvalidTimer) {
    delack_timer_ = mod_.env().schedule(cfg_.delack_delay,
                                        [this] { delack_timeout(); });
  }
}

void TcpConnection::process_fin(std::uint32_t fin_seq) {
  if (seq_gt(fin_seq, rcv_nxt_)) {
    // FIN beyond a hole: the duplicate ACK already sent covers it; the peer
    // will retransmit.
    return;
  }
  if (peer_fin_seen_) {
    send_ack_now();
    return;
  }
  // Consume the FIN.
  rcv_nxt_ = fin_seq + 1;
  peer_fin_seen_ = true;
  peer_fin_seq_ = fin_seq;
  send_ack_now();

  switch (state_) {
    case TcpState::kEstablished:
      set_state(TcpState::kCloseWait);
      break;
    case TcpState::kFinWait1:
      if (fin_sent_ && seq_ge(snd_una_, fin_seq_ + 1)) {
        enter_time_wait();
      } else {
        set_state(TcpState::kClosing);
      }
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
  // Upcall after the state transition so an observer that closes in
  // response (a typical echo server) takes the passive-close path.
  if (observer_ != nullptr) observer_->on_peer_fin(*this);
}

void TcpConnection::established() {
  const bool passive = state_ == TcpState::kSynReceived;
  if (open_timed_) {
    const sim::Time setup = mod_.env().now() - open_started_at_;
    mod_.setup_hist_.record(static_cast<std::uint64_t>(setup < 0 ? 0 : setup));
    open_timed_ = false;
  }
  set_state(TcpState::kEstablished);
  if (passive) {
    mod_.counters().conns_accepted++;
    if (observer_ != nullptr) observer_->on_accept(*this);
  }
  if (observer_ != nullptr) observer_->on_established(*this);
}

void TcpConnection::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  cancel_rtx();
  if (persist_timer_ != timer::kInvalidTimer) {
    mod_.env().cancel_timer(persist_timer_);
    persist_timer_ = timer::kInvalidTimer;
  }
  if (time_wait_timer_ != timer::kInvalidTimer) {
    mod_.env().cancel_timer(time_wait_timer_);
  }
  time_wait_timer_ =
      mod_.env().schedule(2 * cfg_.msl, [this] { time_wait_timeout(); });
}

void TcpConnection::time_wait_timeout() {
  time_wait_timer_ = timer::kInvalidTimer;
  terminate("");
}

void TcpConnection::terminate(const std::string& reason) {
  cancel_all_timers();
  set_state(TcpState::kClosed);
  if (observer_ != nullptr) observer_->on_closed(*this, reason);
}

// ---------------------------------------------------------------------------
// Application close paths
// ---------------------------------------------------------------------------

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      terminate("");
      break;
    case TcpState::kSynReceived:
    case TcpState::kEstablished:
      fin_pending_ = true;
      set_state(TcpState::kFinWait1);
      output(false);
      break;
    case TcpState::kCloseWait:
      fin_pending_ = true;
      set_state(TcpState::kLastAck);
      output(false);
      break;
    default:
      break;
  }
}

void TcpConnection::abort() {
  if (state_ == TcpState::kEstablished || state_ == TcpState::kSynReceived ||
      state_ == TcpState::kFinWait1 || state_ == TcpState::kFinWait2 ||
      state_ == TcpState::kCloseWait || state_ == TcpState::kClosing ||
      state_ == TcpState::kLastAck) {
    send_rst();
  }
  terminate("aborted");
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpConnection::arm_rtx() {
  auto& env = mod_.env();
  env.charge(env.cost().timer_op);
  if (rtx_timer_ != timer::kInvalidTimer) env.cancel_timer(rtx_timer_);
  const sim::Time delay =
      std::min(rto_ << rtx_shift_, cfg_.rto_max);
  rtx_timer_ = env.schedule(delay, [this] { rtx_timeout(); });
}

void TcpConnection::cancel_rtx() {
  if (rtx_timer_ != timer::kInvalidTimer) {
    mod_.env().cancel_timer(rtx_timer_);
    rtx_timer_ = timer::kInvalidTimer;
  }
}

void TcpConnection::rtx_timeout() {
  rtx_timer_ = timer::kInvalidTimer;
  rtx_shift_++;
  mod_.counters().timeouts++;
  stats_.timeouts++;

  if (rtx_shift_ > cfg_.max_retransmits) {
    terminate("connection timed out");
    return;
  }

  rtt_timing_ = false;  // Karn's algorithm: no samples from retransmissions

  // Causal link: whatever goes out next was caused by this timer firing.
  pending_tx_trace_id_ = mod_.env().new_trace_id();
  if (pending_tx_trace_id_ != 0) {
    pending_cause_ = "cause.rtx";
    mod_.env().trace_flow_start(pending_cause_, pending_tx_trace_id_);
  }

  if (state_ == TcpState::kSynSent) {
    TcpFlags f;
    f.syn = true;
    emit_segment(iss_, {}, f, true);
    note_retransmit(iss_, /*fast=*/false);
    arm_rtx();
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    TcpFlags f;
    f.syn = true;
    f.ack = true;
    emit_segment(iss_, {}, f, true);
    note_retransmit(iss_, /*fast=*/false);
    arm_rtx();
    return;
  }

  // Collapse the congestion window and go back to snd_una.
  ssthresh_ = std::max<std::size_t>(
      2 * mss_, std::min<std::size_t>(snd_wnd_, cwnd_) / 2);
  cwnd_ = mss_;
  dup_acks_ = 0;
  in_fast_recovery_ = false;
  snd_nxt_ = snd_una_;
  if (fin_sent_ && seq_le(snd_nxt_, fin_seq_)) {
    fin_sent_ = false;  // FIN will be re-emitted after the data
  }
  output(false);
  if (pending_tx_trace_id_ != 0) {
    // Nothing was retransmitted (raced with a closing ACK): close the flow
    // arrow here so it never dangles.
    if (pending_cause_ != nullptr) {
      mod_.env().trace_flow_end(pending_cause_, pending_tx_trace_id_);
      pending_cause_ = nullptr;
    }
    pending_tx_trace_id_ = 0;
  }
  if (rtx_timer_ == timer::kInvalidTimer && seq_gt(snd_max_, snd_una_)) {
    arm_rtx();
  }
}

void TcpConnection::arm_persist() {
  auto& env = mod_.env();
  const sim::Time delay = std::clamp(rto_ << persist_shift_,
                                     cfg_.persist_min, cfg_.persist_max);
  persist_timer_ = env.schedule(delay, [this] { persist_timeout(); });
}

void TcpConnection::persist_timeout() {
  persist_timer_ = timer::kInvalidTimer;
  if (snd_wnd_ > 0) {
    output(false);
    return;
  }
  // Window probe: one byte beyond the window.
  const std::size_t off = snd_nxt_ - snd_una_;
  if (snd_len() > off) {
    buf::Bytes probe{snd_byte(off)};
    TcpFlags f;
    f.ack = true;
    emit_segment(snd_nxt_, probe, f, false);
    mod_.counters().persists++;
    stats_.persists++;
    snd_nxt_ += 1;
    if (rtx_timer_ == timer::kInvalidTimer) arm_rtx();
  }
  if (persist_shift_ < 16) persist_shift_++;
  arm_persist();
}

void TcpConnection::delack_timeout() {
  delack_timer_ = timer::kInvalidTimer;
  if (segs_since_ack_ > 0) {
    mod_.counters().delayed_acks++;
    send_ack_now();
  }
}

void TcpConnection::cancel_all_timers() {
  auto& env = mod_.env();
  cancel_rtx();
  for (timer::TimerId* id :
       {&persist_timer_, &delack_timer_, &time_wait_timer_}) {
    if (*id != timer::kInvalidTimer) {
      env.cancel_timer(*id);
      *id = timer::kInvalidTimer;
    }
  }
}

// ---------------------------------------------------------------------------
// RTT estimation (Jacobson/Karels)
// ---------------------------------------------------------------------------

void TcpConnection::rtt_sample(sim::Time measured) {
  stats_.rtt_samples++;
  if (rtt_hist_ != nullptr) {
    rtt_hist_->record(static_cast<std::uint64_t>(measured < 0 ? 0 : measured));
  }
  if (srtt_ == 0) {
    srtt_ = measured;
    rttvar_ = measured / 2;
  } else {
    const sim::Time err = measured - srtt_;
    srtt_ += err / 8;
    rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.rto_min, cfg_.rto_max);
}

// ---------------------------------------------------------------------------
// Observability dumps
// ---------------------------------------------------------------------------

std::string TcpConnection::dump_json() const {
  sim::JsonWriter w;
  w.begin_object();
  w.field("local",
          local_ip_.to_string() + ":" + std::to_string(local_port_));
  w.field("remote",
          remote_ip_.to_string() + ":" + std::to_string(remote_port_));
  w.field("state", to_string(state_));
  w.field("mss", static_cast<std::uint64_t>(mss_));
  w.field("srtt_us", static_cast<std::int64_t>(srtt_ / 1000));
  w.field("rttvar_us", static_cast<std::int64_t>(rttvar_ / 1000));
  w.field("rto_us", static_cast<std::int64_t>(rto_ / 1000));
  w.field("cwnd", static_cast<std::uint64_t>(cwnd_));
  w.field("ssthresh", static_cast<std::uint64_t>(ssthresh_));
  w.field("snd_wnd", static_cast<std::uint64_t>(snd_wnd_));
  w.field("flight", static_cast<std::uint64_t>(flight_size()));
  w.field("snd_buf_depth", static_cast<std::uint64_t>(snd_len()));
  w.field("rcv_queue_depth", static_cast<std::uint64_t>(rcv_buffered()));
  w.field("ooo_bytes", static_cast<std::uint64_t>(ooo_bytes_));
  w.key("stats").begin_object();
  w.field("segments_in", stats_.segments_in);
  w.field("segments_out", stats_.segments_out);
  w.field("bytes_in", stats_.bytes_in);
  w.field("bytes_out", stats_.bytes_out);
  w.field("retransmits", stats_.retransmits);
  w.field("fast_retransmits", stats_.fast_retransmits);
  w.field("timeouts", stats_.timeouts);
  w.field("dup_acks_in", stats_.dup_acks_in);
  w.field("out_of_order", stats_.out_of_order);
  w.field("persists", stats_.persists);
  w.field("rtt_samples", stats_.rtt_samples);
  w.field("state_transitions", stats_.state_transitions);
  w.field("fast_path_acks", stats_.fast_path_acks);
  w.field("fast_path_data", stats_.fast_path_data);
  w.field("cwnd_max", stats_.cwnd_max);
  w.field("snd_wnd_max", stats_.snd_wnd_max);
  w.field("snd_buf_max", stats_.snd_buf_max);
  w.field("rcv_queue_max", stats_.rcv_queue_max);
  w.field("ooo_bytes_max", stats_.ooo_bytes_max);
  w.end_object();
  w.key("hist").begin_object();
  w.field_raw("rtt_ns", rtt_hist().dump_json());
  w.end_object();
  w.end_object();
  return w.take();
}

std::string TcpModule::dump_json() const {
  // unordered_map iteration order is not deterministic; order by 4-tuple.
  std::vector<const TcpConnection*> ordered;
  ordered.reserve(conns_.size());
  for (const auto& [key, conn] : conns_) ordered.push_back(conn.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const TcpConnection* a, const TcpConnection* b) {
              return std::tuple(a->local_port(), a->remote_port(),
                                a->remote_ip().value, a->local_ip().value) <
                     std::tuple(b->local_port(), b->remote_port(),
                                b->remote_ip().value, b->local_ip().value);
            });

  sim::JsonWriter w;
  w.begin_object();
  w.key("connections").begin_array();
  for (const TcpConnection* conn : ordered) w.value_raw(conn->dump_json());
  w.end_array();
  w.key("counters").begin_object();
  w.field("segments_sent", counters_.segments_sent);
  w.field("segments_received", counters_.segments_received);
  w.field("bytes_sent", counters_.bytes_sent);
  w.field("bytes_received", counters_.bytes_received);
  w.field("retransmits", counters_.retransmits);
  w.field("fast_retransmits", counters_.fast_retransmits);
  w.field("timeouts", counters_.timeouts);
  w.field("dup_acks_in", counters_.dup_acks_in);
  w.field("pure_acks_sent", counters_.pure_acks_sent);
  w.field("delayed_acks", counters_.delayed_acks);
  w.field("bad_checksum", counters_.bad_checksum);
  w.field("out_of_order", counters_.out_of_order);
  w.field("rst_sent", counters_.rst_sent);
  w.field("rst_received", counters_.rst_received);
  w.field("persists", counters_.persists);
  w.field("conns_opened", counters_.conns_opened);
  w.field("conns_accepted", counters_.conns_accepted);
  w.field("fast_path_acks", counters_.fast_path_acks);
  w.field("fast_path_data", counters_.fast_path_data);
  w.end_object();
  w.key("hist").begin_object();
  w.field_raw("setup_time_ns", setup_hist_.dump_json());
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace ulnet::proto
