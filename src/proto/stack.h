// NetworkStack: one complete protocol stack instance (ARP + IP + ICMP +
// UDP + TCP) bound to a StackEnv. Every protocol organization instantiates
// exactly this object -- in the kernel, in a server's space, or inside the
// application's library -- which is what makes the paper's comparison
// "apples to apples": identical protocol code, different environments.
#pragma once

#include <memory>

#include "proto/arp.h"
#include "proto/icmp.h"
#include "proto/rrp.h"
#include "proto/ip.h"
#include "proto/tcp.h"
#include "proto/udp.h"

namespace ulnet::proto {

class NetworkStack {
 public:
  explicit NetworkStack(StackEnv& env)
      : env_(env),
        arp_(env),
        ip_(env, arp_),
        icmp_(env, ip_),
        udp_(env, ip_),
        rrp_(env, ip_),
        tcp_(env, ip_) {}
  NetworkStack(const NetworkStack&) = delete;
  NetworkStack& operator=(const NetworkStack&) = delete;

  StackEnv& env() { return env_; }
  ArpModule& arp() { return arp_; }
  IpModule& ip() { return ip_; }
  IcmpModule& icmp() { return icmp_; }
  UdpModule& udp() { return udp_; }
  RrpModule& rrp() { return rrp_; }
  TcpModule& tcp() { return tcp_; }

  // Entry point from the link layer: a received frame's payload, with the
  // link header already stripped and its ethertype extracted by whichever
  // demultiplexing path (software filter, hardware BQI, kernel dispatch)
  // delivered it.
  void link_input(int ifc, std::uint16_t ethertype, buf::ByteView payload) {
    switch (ethertype) {
      case net::kEtherTypeArp:
        arp_.input(ifc, payload);
        break;
      case net::kEtherTypeIp:
        ip_.input(ifc, payload);
        break;
      default:
        break;  // unknown ethertype: dropped
    }
  }

 private:
  StackEnv& env_;
  ArpModule arp_;
  IpModule ip_;
  IcmpModule icmp_;
  UdpModule udp_;
  RrpModule rrp_;
  TcpModule tcp_;
};

}  // namespace ulnet::proto
