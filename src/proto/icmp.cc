#include "proto/icmp.h"

namespace ulnet::proto {

IcmpModule::IcmpModule(StackEnv& env, IpModule& ip) : env_(env), ip_(ip) {
  ident_ = static_cast<std::uint16_t>(env_.random32());
  ip_.register_protocol(kProtoIcmp,
                        [this](const Ipv4Header& h, buf::Bytes p, int ifc) {
                          input(h, std::move(p), ifc);
                        });
}

void IcmpModule::ping(net::Ipv4Addr dst, std::uint16_t seq,
                      std::size_t payload_len, EchoReplyCb cb) {
  IcmpEcho echo;
  echo.type = IcmpEcho::kEchoRequest;
  echo.id = ident_;
  echo.seq = seq;
  buf::Bytes payload(payload_len, 0xa5);
  buf::Bytes message;
  echo.serialize(message, payload);
  pending_[seq] = PendingPing{env_.now(), std::move(cb)};
  env_.charge(env_.cost().udp_fixed);  // echo path ~ datagram path cost
  ip_.send(net::Ipv4Addr{}, dst, kProtoIcmp, std::move(message), nullptr);
}

void IcmpModule::input(const Ipv4Header& h, buf::Bytes payload, int) {
  env_.charge(env_.cost().udp_fixed);
  env_.charge(static_cast<sim::Time>(payload.size()) *
              env_.cost().checksum_per_byte);
  bool ok = false;
  auto echo = IcmpEcho::parse(payload, &ok);
  if (!echo) return;
  if (!ok) {
    bad_checksum_++;
    return;
  }
  if (echo->type == IcmpEcho::kEchoRequest) {
    IcmpEcho reply = *echo;
    reply.type = IcmpEcho::kEchoReply;
    buf::Bytes body(payload.begin() + IcmpEcho::kHeaderSize, payload.end());
    buf::Bytes message;
    reply.serialize(message, body);
    echoes_answered_++;
    env_.charge(env_.cost().udp_fixed);
    ip_.send(h.dst, h.src, kProtoIcmp, std::move(message), nullptr);
    return;
  }
  if (echo->type == IcmpEcho::kEchoReply && echo->id == ident_) {
    auto it = pending_.find(echo->seq);
    if (it == pending_.end()) return;
    PendingPing p = std::move(it->second);
    pending_.erase(it);
    p.cb(h.src, echo->seq, env_.now() - p.sent_at,
         payload.size() - IcmpEcho::kHeaderSize);
  }
}

}  // namespace ulnet::proto
