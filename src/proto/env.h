// Execution environment for the protocol stack.
//
// The paper's central claim is that the *same* protocol code can live in the
// kernel (Ultrix), in a trusted server (Mach/UX), or in a user-linkable
// library -- only the surrounding mechanisms differ. This interface is that
// seam: the TCP/IP/ARP modules are written once against StackEnv, and each
// protocol organization provides its own implementation that decides where
// CPU cost is charged, how timers are dispatched, and how a framed packet
// reaches the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "buf/packet_pool.h"
#include "net/addr.h"
#include "net/frame.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/metrics.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "timer/wheel.h"

namespace ulnet::proto {

// Identifies a transport flow for organizations that maintain per-flow
// transmission channels (the user-level library's send capabilities).
struct TxFlow {
  net::Ipv4Addr local_ip;
  net::Ipv4Addr remote_ip;
  std::uint8_t ip_proto = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  // Provenance id assigned to the segment at birth (StackEnv::new_trace_id
  // in TcpConnection::emit_segment); the framing layer stamps it onto the
  // outgoing net::Frame. 0 = unassigned.
  std::uint64_t trace_id = 0;
};

class StackEnv {
 public:
  virtual ~StackEnv() = default;

  // ---- Time and cost ----------------------------------------------------
  [[nodiscard]] virtual sim::Time now() const = 0;
  virtual void charge(sim::Time ns) = 0;
  [[nodiscard]] virtual const sim::CostModel& cost() const = 0;
  virtual std::uint32_t random32() = 0;

  // ---- Observability -----------------------------------------------------
  // Record a trace event in the organization's tracer (stamped with the
  // environment's notion of "now"). Default: no tracer, no-op -- protocol
  // code can trace unconditionally.
  virtual void trace(sim::TraceEventType /*type*/, std::int64_t /*id*/ = 0,
                     std::int64_t /*a*/ = 0, std::int64_t /*b*/ = 0,
                     const char* /*detail*/ = nullptr) {}

  // Allocate a packet-provenance id (latency tracing). Implementations
  // with a tracer return its monotone allocator; the default (no tracer)
  // returns 0, which every consumer treats as "unstamped".
  virtual std::uint64_t new_trace_id() { return 0; }
  // Emit the tail/head of a causal flow arrow (e.g. "cause.rtx" from the
  // timer that fired to the retransmitted segment). `name` must be a
  // static string. Default: no tracer, no-op.
  virtual void trace_flow_start(const char* /*name*/, std::uint64_t /*id*/) {}
  virtual void trace_flow_end(const char* /*name*/, std::uint64_t /*id*/) {}

  // Simulated-CPU profiler attribution: make subsequent charges count
  // against `c`, returning the previously active component so scopes can
  // nest and restore. Default: no profiler, identity.
  virtual sim::CpuComponent swap_profile_component(sim::CpuComponent c) {
    return c;
  }

  // ---- Timers -------------------------------------------------------------
  // Run `cb` in this stack's execution context after `delay`. The context
  // is organization-specific (kernel for Ultrix, server space for Mach/UX,
  // the application's library thread for the user-level system).
  virtual timer::TimerId schedule(sim::Time delay,
                                  std::function<void()> cb) = 0;
  virtual void cancel_timer(timer::TimerId id) = 0;

  // ---- Interfaces -----------------------------------------------------
  [[nodiscard]] virtual int interface_count() const = 0;
  [[nodiscard]] virtual net::MacAddr ifc_mac(int ifc) const = 0;
  [[nodiscard]] virtual net::Ipv4Addr ifc_ip(int ifc) const = 0;
  [[nodiscard]] virtual int ifc_prefix_len(int ifc) const = 0;
  // Maximum link payload the driver will carry (the AN1 driver caps this at
  // 1500 even though the hardware could carry 64 KB).
  [[nodiscard]] virtual std::size_t ifc_mtu(int ifc) const = 0;

  // ---- Buffers ----------------------------------------------------------
  // Scratch-buffer management for segment/datagram construction. The
  // organization may back these with a recycling pool (wall-clock
  // optimisation only -- simulated copy costs are charged the same either
  // way); the defaults are plain allocation/free so protocol code works
  // against any environment.
  virtual buf::Bytes acquire_buffer(std::size_t reserve) {
    buf::Bytes b;
    b.reserve(reserve);
    return b;
  }
  virtual void recycle_buffer(buf::Bytes&& b) { b = buf::Bytes{}; }

  // ---- Transmission -----------------------------------------------------
  // Ship `payload` (an IP datagram or ARP message) out of interface `ifc`
  // to link address `dst`. The organization performs link framing (Ethernet
  // or AN1 header, including the transmit BQI for user-level AN1 channels),
  // charges its own path costs (traps, template checks, device access), and
  // hands the frame to the driver. `flow` is non-null for transport
  // segments so per-flow channels can be selected; ARP and ICMP pass null.
  virtual void transmit(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                        buf::Bytes payload, const TxFlow* flow) = 0;

  // Gathered transmit: `headers` holds the IP datagram's header bytes only
  // (IP + transport headers, checksums already folded over the payload);
  // `payload` stays in caller-owned storage and is picked up by reference
  // at framing time, modelling NIC gather DMA out of an app-owned region.
  // The default materializes the datagram -- an honest payload copy, so
  // every organization works even if it never implements real gather.
  virtual void transmit_gather(int ifc, net::MacAddr dst,
                               std::uint16_t ethertype, buf::Bytes headers,
                               buf::ByteView payload, const TxFlow* flow) {
    count_payload_copy(payload.size());
    buf::put_bytes(headers, payload);
    transmit(ifc, dst, ethertype, std::move(headers), flow);
  }

  // ---- Zero-copy plumbing -----------------------------------------------
  // World-level counters, when the organization has them (protocol code
  // must tolerate nullptr).
  virtual sim::Metrics* metrics() { return nullptr; }

  // The loan backing the packet currently being delivered up the stack, or
  // nullptr when the receive path delivered by copy. Set by the user-level
  // library's drain loop around link input; valid only for the duration of
  // that delivery.
  [[nodiscard]] virtual const buf::BufferLoan* current_rx_loan() const {
    return nullptr;
  }

  // When true, the library's counted copy sites also charge simulated CPU
  // time (header vs payload rates from the cost model). Off by default so
  // the seed's simulated timings are bit-identical; the zero-copy ablation
  // turns it on to measure what copy elision buys.
  void set_copy_charging(bool on) { charge_payload_copies_ = on; }
  [[nodiscard]] bool copy_charging() const { return charge_payload_copies_; }

  // Attribute `n` payload bytes at a copy site. Counting is always on (the
  // counters are observability, not cost); charging obeys the gate above.
  void count_payload_copy(std::size_t n) {
    if (sim::Metrics* m = metrics()) m->payload_bytes_copied += n;
    if (charge_payload_copies_ && n > 0) {
      charge(static_cast<sim::Time>(n) * cost().payload_copy_per_byte);
    }
  }
  void count_payload_elided(std::size_t n) {
    if (sim::Metrics* m = metrics()) m->payload_bytes_elided += n;
  }
  void count_header_copy(std::size_t n) {
    if (sim::Metrics* m = metrics()) m->header_bytes_copied += n;
    if (charge_payload_copies_ && n > 0) {
      charge(static_cast<sim::Time>(n) * cost().header_copy_per_byte);
    }
  }

  // If `body` lies inside the storage of the loan currently being delivered,
  // return a chunk that references the loan (taking a reference) instead of
  // copying; otherwise nullopt and the caller copies.
  [[nodiscard]] std::optional<buf::RxChunk> rx_loan_slice(buf::ByteView body) {
    const buf::BufferLoan* ln = current_rx_loan();
    if (ln == nullptr || !ln->engaged() || body.empty()) return std::nullopt;
    const buf::ByteView base = ln->view();
    const auto* lo = base.data();
    const auto* hi = base.data() + base.size();
    if (body.data() < lo || body.data() + body.size() > hi) {
      return std::nullopt;
    }
    buf::RxChunk c;
    c.loan = *ln;  // addref
    c.off = static_cast<std::size_t>(body.data() - lo);
    c.len = body.size();
    return c;
  }

 protected:
  bool charge_payload_copies_ = false;
};

// RAII profiler scope over a StackEnv (the protocol-code analogue of
// sim::ProfileScope, which needs a Cpu the organization-agnostic stack
// never sees directly).
class EnvProfileScope {
 public:
  EnvProfileScope(StackEnv& env, sim::CpuComponent c)
      : env_(env), prev_(env.swap_profile_component(c)) {}
  EnvProfileScope(const EnvProfileScope&) = delete;
  EnvProfileScope& operator=(const EnvProfileScope&) = delete;
  ~EnvProfileScope() { env_.swap_profile_component(prev_); }

 private:
  StackEnv& env_;
  sim::CpuComponent prev_;
};

}  // namespace ulnet::proto
