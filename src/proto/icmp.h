// ICMP echo: responder plus a small ping client (used by examples/tests to
// validate the IP substrate independently of TCP).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/ip.h"

namespace ulnet::proto {

class IcmpModule {
 public:
  // (peer, seq, rtt, payload_len)
  using EchoReplyCb =
      std::function<void(net::Ipv4Addr, std::uint16_t, sim::Time, std::size_t)>;

  IcmpModule(StackEnv& env, IpModule& ip);

  // Send an echo request; `cb` fires when the matching reply arrives.
  void ping(net::Ipv4Addr dst, std::uint16_t seq, std::size_t payload_len,
            EchoReplyCb cb);

  [[nodiscard]] std::uint64_t echoes_answered() const {
    return echoes_answered_;
  }
  [[nodiscard]] std::uint64_t bad_checksum() const { return bad_checksum_; }

 private:
  void input(const Ipv4Header& h, buf::Bytes payload, int ifc);

  struct PendingPing {
    sim::Time sent_at;
    EchoReplyCb cb;
  };

  StackEnv& env_;
  IpModule& ip_;
  std::uint16_t ident_;
  std::unordered_map<std::uint16_t, PendingPing> pending_;  // by seq
  std::uint64_t echoes_answered_ = 0;
  std::uint64_t bad_checksum_ = 0;
};

}  // namespace ulnet::proto
