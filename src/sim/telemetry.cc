#include "sim/telemetry.h"

#include "sim/json_writer.h"

namespace ulnet::sim {

void Telemetry::configure(const TelemetryConfig& cfg) {
  cfg_ = cfg;
  if (cfg_.cadence < 1) cfg_.cadence = 1;
  if (cfg_.ring_capacity < 1) cfg_.ring_capacity = 1;
}

std::size_t Telemetry::register_series(std::string name, Kind kind,
                                       std::function<std::uint64_t()> probe,
                                       std::string unit, bool wallclock) {
  Series s;
  s.name = std::move(name);
  s.kind = kind;
  s.unit = std::move(unit);
  s.wallclock = wallclock;
  s.probe = std::move(probe);
  s.ring.resize(cfg_.ring_capacity);
  series_.push_back(std::move(s));
  return series_.size() - 1;
}

std::size_t Telemetry::register_counter(std::string name,
                                        std::function<std::uint64_t()> probe,
                                        std::string unit, bool wallclock) {
  return register_series(std::move(name), Kind::kCounter, std::move(probe),
                         std::move(unit), wallclock);
}

std::size_t Telemetry::register_gauge(std::string name,
                                      std::function<std::uint64_t()> probe,
                                      std::string unit, bool wallclock) {
  return register_series(std::move(name), Kind::kGauge, std::move(probe),
                         std::move(unit), wallclock);
}

std::size_t Telemetry::register_counter(std::string name,
                                        const std::uint64_t* src,
                                        std::string unit) {
  return register_counter(
      std::move(name), [src] { return *src; }, std::move(unit));
}

void Telemetry::push(Series& s, Time t, std::uint64_t v) {
  if (s.kind == Kind::kCounter && s.samples > 0 && v < s.last) {
    s.monotone_violations++;
  }
  const std::size_t cap = s.ring.size();
  if (s.count == cap) {
    s.ring[s.head] = Point{t, v};
    s.head = (s.head + 1) % cap;
    s.dropped++;
  } else {
    s.ring[(s.head + s.count) % cap] = Point{t, v};
    s.count++;
  }
  s.samples++;
  s.last = v;
  if (v > s.max) s.max = v;
}

void Telemetry::sample_if_due(Time now) {
  if (!enabled_ || now < next_due_) return;
  sample_now(now);
  // Next grid point strictly after `now`: at most one sample per interval
  // regardless of how often the driver polls.
  next_due_ = (now / cfg_.cadence + 1) * cfg_.cadence;
}

void Telemetry::sample_now(Time now) {
  if (!enabled_) return;
  for (Series& s : series_) push(s, now, s.probe ? s.probe() : 0);
  samples_taken_++;
  evaluate_watchdogs(now);
}

const Telemetry::Series* Telemetry::find(std::string_view name) const {
  for (const Series& s : series_)
    if (s.name == name) return &s;
  return nullptr;
}

std::size_t Telemetry::series_index(std::string_view name) const {
  for (std::size_t i = 0; i < series_.size(); ++i)
    if (series_[i].name == name) return i;
  return static_cast<std::size_t>(-1);
}

void Telemetry::add_no_progress_probe(std::string name,
                                      std::string_view series_name,
                                      Time window) {
  const std::size_t idx = series_index(series_name);
  if (idx == static_cast<std::size_t>(-1)) return;
  WatchdogProbe p;
  p.name = std::move(name);
  p.series = idx;
  p.kind = ProbeKind::kNoProgress;
  p.window = window;
  probes_.push_back(std::move(p));
}

void Telemetry::add_monotone_growth_probe(std::string name,
                                          std::string_view series_name,
                                          int k) {
  const std::size_t idx = series_index(series_name);
  if (idx == static_cast<std::size_t>(-1) || k < 2) return;
  WatchdogProbe p;
  p.name = std::move(name);
  p.series = idx;
  p.kind = ProbeKind::kMonotoneGrowth;
  p.k = k;
  probes_.push_back(std::move(p));
}

void Telemetry::fire(WatchdogProbe& p, const std::string& why, Time now) {
  p.fired = true;
  triggers_++;
  if (reason_.empty()) reason_ = why;
  if (handler_) handler_(p.name, why, now);
}

void Telemetry::evaluate_watchdogs(Time now) {
  for (WatchdogProbe& p : probes_) {
    if (p.fired) continue;
    const Series& s = series_[p.series];
    if (s.samples == 0) continue;
    const std::uint64_t v = s.last;
    if (!p.seeded) {
      p.seeded = true;
      p.last_value = v;
      p.last_change = now;
      p.growth_run = 0;
      continue;
    }
    switch (p.kind) {
      case ProbeKind::kNoProgress:
        if (v != p.last_value) {
          p.last_value = v;
          p.last_change = now;
        } else if (now - p.last_change >= p.window) {
          fire(p,
               "watchdog " + p.name + ": series " + s.name + " stuck at " +
                   std::to_string(v) + " for " +
                   std::to_string(now - p.last_change) + " ns",
               now);
        }
        break;
      case ProbeKind::kMonotoneGrowth:
        if (v > p.last_value) {
          if (++p.growth_run >= p.k) {
            fire(p,
                 "watchdog " + p.name + ": series " + s.name + " grew for " +
                     std::to_string(p.growth_run + 1) +
                     " consecutive samples (now " + std::to_string(v) + ")",
                 now);
          }
        } else {
          p.growth_run = 0;
        }
        p.last_value = v;
        break;
    }
  }
}

std::string Telemetry::dump_jsonl(bool include_wallclock) const {
  std::string out;
  for (const Series& s : series_) {
    if (s.wallclock && !include_wallclock) continue;
    JsonWriter w;
    w.begin_object();
    w.field("name", s.name);
    w.field("kind", s.kind == Kind::kCounter ? "counter" : "gauge");
    w.field("unit", s.unit);
    w.field("wallclock", s.wallclock);
    w.field("cadence_ns", static_cast<std::uint64_t>(cfg_.cadence));
    w.field("samples", s.samples);
    w.field("dropped", s.dropped);
    w.field("monotone_violations", s.monotone_violations);
    w.key("points").begin_array();
    for (std::size_t i = 0; i < s.count; ++i) {
      const Point& pt = s.point(i);
      w.begin_array();
      w.value(static_cast<std::int64_t>(pt.t));
      w.value(pt.v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string Telemetry::dump_prometheus() const {
  // Text exposition of the latest value per series; dots become
  // underscores, everything gets the ulnet_ prefix.
  std::string out;
  for (const Series& s : series_) {
    std::string san = "ulnet_";
    for (char c : s.name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      san += ok ? c : '_';
    }
    out += "# TYPE " + san +
           (s.kind == Kind::kCounter ? " counter\n" : " gauge\n");
    out += san + "{series=\"" + s.name + "\"} " + std::to_string(s.last) +
           "\n";
  }
  return out;
}

std::vector<Telemetry::Summary> Telemetry::summaries() const {
  std::vector<Summary> out;
  out.reserve(series_.size());
  for (const Series& s : series_) {
    Summary sum;
    sum.name = s.name;
    sum.kind = s.kind;
    sum.unit = s.unit;
    sum.wallclock = s.wallclock;
    sum.samples = s.samples;
    sum.last = s.last;
    sum.max = s.max;
    sum.dropped = s.dropped;
    sum.monotone_violations = s.monotone_violations;
    out.push_back(std::move(sum));
  }
  return out;
}

}  // namespace ulnet::sim
