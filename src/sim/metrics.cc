#include "sim/metrics.h"

namespace ulnet::sim {

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  os << "traps=" << m.traps << " fast_traps=" << m.specialized_traps
     << " ctxsw=" << m.context_switches << " ipc=" << m.ipc_messages
     << " copies=" << m.copies << " bytes_copied=" << m.bytes_copied
     << " remaps=" << m.page_remaps << " intr=" << m.interrupts
     << " signals=" << m.semaphore_signals
     << " wakeups=" << m.semaphore_wakeups << " tx=" << m.packets_tx
     << " rx=" << m.packets_rx;
  return os;
}

}  // namespace ulnet::sim
