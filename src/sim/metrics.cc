#include "sim/metrics.h"

#include "sim/json_writer.h"

namespace ulnet::sim {

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  os << "traps=" << m.traps << " fast_traps=" << m.specialized_traps
     << " ctxsw=" << m.context_switches << " ipc=" << m.ipc_messages
     << " copies=" << m.copies << " bytes_copied=" << m.bytes_copied
     << " remaps=" << m.page_remaps << " intr=" << m.interrupts
     << " signals=" << m.semaphore_signals
     << " wakeups=" << m.semaphore_wakeups << " tx=" << m.packets_tx
     << " rx=" << m.packets_rx << " pool_hits=" << m.pool_hits
     << " pool_misses=" << m.pool_misses;
  return os;
}

std::string Metrics::dump_json() const {
  JsonWriter w;
  w.begin_object();
  auto field = [&](const char* name, std::uint64_t v) { w.field(name, v); };
  field("traps", traps);
  field("specialized_traps", specialized_traps);
  field("context_switches", context_switches);
  field("ipc_messages", ipc_messages);
  field("copies", copies);
  field("bytes_copied", bytes_copied);
  field("page_remaps", page_remaps);
  field("interrupts", interrupts);
  field("semaphore_signals", semaphore_signals);
  field("semaphore_wakeups", semaphore_wakeups);
  field("packets_tx", packets_tx);
  field("packets_rx", packets_rx);
  field("demux_software_runs", demux_software_runs);
  field("demux_hardware_runs", demux_hardware_runs);
  field("demux_hash_hits", demux_hash_hits);
  field("demux_fallback_walks", demux_fallback_walks);
  field("demux_trie_hits", demux_trie_hits);
  field("demux_trie_rebuilds", demux_trie_rebuilds);
  field("demux_diff_mismatches", demux_diff_mismatches);
  field("template_checks", template_checks);
  field("template_rejects", template_rejects);
  field("demux_drops", demux_drops);
  field("timer_ops", timer_ops);
  field("pool_hits", pool_hits);
  field("pool_misses", pool_misses);
  field("pool_recycles", pool_recycles);
  field("pool_high_water", pool_high_water);
  field("event_slab_high_water", event_slab_high_water);
  field("demux_table_rehashes", demux_table_rehashes);
  field("loan_table_regrows", loan_table_regrows);
  field("link_frames_lost", link_frames_lost);
  field("link_frames_duplicated", link_frames_duplicated);
  field("link_frames_corrupted", link_frames_corrupted);
  field("link_frames_jittered", link_frames_jittered);
  field("nic_rx_dropped", nic_rx_dropped);
  field("nic_ring_drops", nic_ring_drops);
  field("nic_poll_transitions", nic_poll_transitions);
  field("nic_poll_rounds", nic_poll_rounds);
  field("nic_poll_frames", nic_poll_frames);
  field("nic_poll_budget_exhausted", nic_poll_budget_exhausted);
  field("nic_poll_rearms", nic_poll_rearms);
  field("netio_ring_drops", netio_ring_drops);
  field("netio_unclaimed_drops", netio_unclaimed_drops);
  field("netio_tx_backpressure", netio_tx_backpressure);
  field("wakeups_dropped", wakeups_dropped);
  field("loans_outstanding", loans_outstanding);
  field("loan_high_water", loan_high_water);
  field("loans_reclaimed", loans_reclaimed);
  field("loan_double_releases", loan_double_releases);
  field("payload_bytes_copied", payload_bytes_copied);
  field("payload_bytes_elided", payload_bytes_elided);
  field("header_bytes_copied", header_bytes_copied);
  field("tx_gather_frames", tx_gather_frames);
  field("tenant_tx_policed", tenant_tx_policed);
  field("tenant_ring_quota_hits", tenant_ring_quota_hits);
  field("tenant_loan_budget_hits", tenant_loan_budget_hits);
  field("forgery_strikes", forgery_strikes);
  field("tenant_quarantines", tenant_quarantines);
  field("registry_handshake_sweeps", registry_handshake_sweeps);
  w.end_object();
  return w.take();
}

}  // namespace ulnet::sim
