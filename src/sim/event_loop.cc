#include "sim/event_loop.h"

#include <algorithm>
#include <stdexcept>

#include "sim/metrics.h"

namespace ulnet::sim {

std::uint32_t EventLoop::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t si = free_slots_.back();
    free_slots_.pop_back();
    return si;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventLoop::retire_slot(std::uint32_t si) {
  Slot& s = slots_[si];
  s.fn = EventFn{};
  s.heap_pos = kNpos;
  if (++s.gen == 0) s.gen = 1;  // keep ids distinguishable across wrap
  free_slots_.push_back(si);
}

void EventLoop::sift_up(std::size_t pos) {
  const std::uint32_t si = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(si, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = si;
  slots_[si].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventLoop::sift_down(std::size_t pos) {
  const std::uint32_t si = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], si)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = si;
  slots_[si].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventLoop::heap_remove(std::size_t pos) {
  const std::uint32_t moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = moved;
  slots_[moved].heap_pos = static_cast<std::uint32_t>(pos);
  if (pos > 0 && before(moved, heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

EventId EventLoop::schedule_at(Time when, EventFn fn) {
  if (when < now_) {
    throw std::logic_error("EventLoop: scheduling into the past");
  }
  const std::uint32_t si = acquire_slot();
  Slot& s = slots_[si];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  heap_.push_back(si);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  if (heap_.size() > occupancy_high_water_) {
    occupancy_high_water_ = heap_.size();
    if (metrics_ != nullptr) {
      metrics_->event_slab_high_water = occupancy_high_water_;
    }
  }
  return make_id(si, s.gen);
}

bool EventLoop::cancel(EventId id) {
  const std::uint64_t slot_plus1 = id >> 32;
  if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return false;
  const auto si = static_cast<std::uint32_t>(slot_plus1 - 1);
  Slot& s = slots_[si];
  if (s.gen != static_cast<std::uint32_t>(id) || s.heap_pos == kNpos) {
    return false;  // already fired, already cancelled, or stale id
  }
  heap_remove(s.heap_pos);
  retire_slot(si);
  ++cancels_;
  return true;
}

std::uint64_t EventLoop::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!heap_.empty() && !stopped_) {
    const std::uint32_t si = heap_[0];
    {
      Slot& s = slots_[si];
      if (s.when > deadline) break;
      assert(s.when >= now_);
      now_ = s.when;
    }
    // Move the closure out and retire the slot before invoking, so the
    // event may freely schedule (and reuse slots) or cancel others.
    EventFn fn = std::move(slots_[si].fn);
    heap_remove(0);
    retire_slot(si);
    ++executed_;
    ++n;
    fn();
    // Telemetry tick: observe between events once per crossed cadence
    // point. Not an event -- no slot, no sequence number, no reordering.
    if (tick_hook_ && now_ >= tick_next_) {
      tick_hook_(now_);
      tick_next_ = (now_ / tick_cadence_ + 1) * tick_cadence_;
    }
  }
  // Simulated time passes to the deadline even if the next event lies
  // beyond it (events remain queued for a later run).
  if (!stopped_ && now_ < deadline && deadline != kForever) {
    now_ = deadline;
  }
  if (tick_hook_ && !stopped_ && now_ >= tick_next_) {
    tick_hook_(now_);
    tick_next_ = (now_ / tick_cadence_ + 1) * tick_cadence_;
  }
  return n;
}

}  // namespace ulnet::sim
