#include "sim/event_loop.h"

#include <cassert>
#include <stdexcept>

namespace ulnet::sim {

EventId EventLoop::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("EventLoop: scheduling into the past");
  }
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

std::uint64_t EventLoop::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    // Move the closure out before popping so the event may reschedule.
    Event ev{top.when, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ++n;
    ev.fn();
  }
  // Simulated time passes to the deadline even if the next event lies
  // beyond it (events remain queued for a later run).
  if (!stopped_ && now_ < deadline && deadline != kForever) {
    now_ = deadline;
  }
  return n;
}

}  // namespace ulnet::sim
