// Seeded, deterministic fault schedules for chaos testing.
//
// A FaultSchedule is a sorted list of (time, kind, target, arg) events,
// either hand-built by a test or generated from a seed. The schedule itself
// knows nothing about hosts or apps: a controller (api::ChaosController)
// interprets the events against a concrete world and reports each injection
// back via note_injected(), so a run's fault census is part of its
// reproducible output. Identical (seed, spec) pairs produce identical
// schedules; replaying a schedule against the same seeded world reproduces
// the run bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

class Rng;

enum class FaultKind : std::uint8_t {
  kKillApp = 0,     // hard-kill a protocol library (no cooperative export)
  kStallApp,        // library stops draining; rings fill
  kResumeApp,       // stalled library resumes draining
  kDropWakeup,      // next semaphore wakeup for the target's channels is lost
  kExhaustRing,     // receive rings emptied of posted buffers, contents lost
  kTxBackpressure,  // next `arg` netio transmits report a full device ring
  // ---- Byzantine tenant behaviors: not accidents but attacks. The target
  // is an adversarial *tenant* misusing its own (valid) channels; the
  // trusted path must contain the damage to that tenant. ----
  kHoardLoans,      // target starts hoarding RX loans/buffers, never releases
  kStarveRefill,    // target stops returning receive buffers (no reposts)
  kForgeTemplates,  // burst of `arg` sends violating the header template
  kFloodTx,         // burst of `arg` junk frames saturating the transmit path
  kSpamWakeups,     // `arg` spurious rearm/wakeup cycles burning shared CPU
};
inline constexpr std::size_t kFaultKindCount = 11;

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  Time at = 0;
  FaultKind kind = FaultKind::kKillApp;
  int target = 0;        // controller-defined index (e.g. nth registered app)
  std::uint64_t arg = 0; // kind-specific (stall length, burst size, ...)
};

class FaultSchedule {
 public:
  // Knobs for seeded generation. Counts are exact (not probabilities) so a
  // sweep over seeds varies *when* and *whom*, never *how much* chaos.
  struct GenSpec {
    Time start = 0;        // no faults before this (lets handshakes finish)
    Time horizon = 0;      // no faults at/after this
    int targets = 1;       // target indices drawn from [0, targets)
    int kill_target = -1;  // kills pinned to this index; -1 = drawn
    int kills = 0;
    int stalls = 0;          // each stall schedules a paired resume
    Time stall_len = 0;      // resume fires this long after its stall
    int wakeup_drops = 0;
    int ring_exhausts = 0;
    int tx_backpressures = 0;
    std::uint64_t tx_burst = 4;  // rejected sends per backpressure event
    // Byzantine tenant events. Drawn after the crash-fault events above, so
    // any (seed, spec) pair with all byzantine counts at zero generates the
    // exact same schedule it did before these kinds existed.
    int byz_target = -1;  // byzantine events pinned here; -1 = drawn (never
                          // the kill target, like other survivor faults)
    int loan_hoards = 0;
    int refill_starves = 0;
    int template_forgeries = 0;
    std::uint64_t forge_burst = 8;  // forged sends per forgery event
    int tx_floods = 0;
    std::uint64_t flood_burst = 32;  // junk frames per flood event
    int wakeup_spams = 0;
    std::uint64_t spam_burst = 32;  // rearm/wakeup cycles per spam event
  };

  void add(FaultEvent ev) { events_.push_back(ev); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Stable order by time; equal-time events keep insertion order so a
  // schedule replays identically however it was built.
  void sort();

  // Deterministic schedule from a seed (via a private SplitMix64 stream, so
  // generation never perturbs the world's own RNG).
  static FaultSchedule generate(std::uint64_t seed, const GenSpec& spec);

  // ---- Injection census (filled by the controller as events are applied;
  // an event that cannot be applied, e.g. a stall on a dead app, is not
  // counted) ----
  void note_injected(FaultKind k) {
    injected_[static_cast<std::size_t>(k)]++;
  }
  [[nodiscard]] std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t total_injected() const;

  // {"kill_app":N,"stall_app":N,...} in FaultKind order.
  [[nodiscard]] std::string dump_json() const;

 private:
  std::vector<FaultEvent> events_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace ulnet::sim
