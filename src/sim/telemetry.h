// Live time-series telemetry.
//
// Every observability surface before this one (mechanism counters, stage
// histograms, the profiler) is an end-of-run snapshot: it can say what the
// totals were, not *when* a ring filled, a tenant's demand spiked or a
// partition barrier stalled. Telemetry closes that gap: callers register
// counter and gauge probes once, and the sampler snapshots them all on a
// simulated-time cadence into fixed-memory ring buffers.
//
// Contract:
//  - Default-off. A disabled Telemetry is a strict no-op: sample_if_due()
//    returns immediately and registered probes are never called, so runs
//    with telemetry off are bit-identical to a build without it.
//  - No allocation on the sample path. Rings are sized at registration;
//    overflow drops the oldest point and counts it in Series::dropped.
//  - Sampling never schedules events. The drivers (EventLoop tick hook in
//    single-loop worlds, the window barrier in sharded/partitioned worlds)
//    observe between events, so enabling telemetry cannot perturb event
//    order, sequence numbers or any sim::Metrics count.
//  - Series stamped from simulated time are deterministic: same seed, same
//    series, at any thread count. Series marked `wallclock` (executor
//    busy/stall time) are host-dependent and excluded from that contract.
//
// A small watchdog layer evaluates SLO probes over the sampled series
// (no-progress windows, monotone growth) and fires a one-shot handler --
// in the chaos harness that handler dumps the flight-recorder postmortem
// bundle the moment the SLO breaks instead of waiting for an invariant to
// fail at teardown.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

struct TelemetryConfig {
  Time cadence = 10 * kMs;        // sample at most once per cadence interval
  std::size_t ring_capacity = 512;  // points retained per series
};

class Telemetry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge };

  struct Point {
    Time t = 0;
    std::uint64_t v = 0;
  };

  struct Series {
    std::string name;
    Kind kind = Kind::kGauge;
    std::string unit;
    bool wallclock = false;  // host-dependent; excluded from determinism
    std::function<std::uint64_t()> probe;
    std::vector<Point> ring;    // capacity fixed at registration
    std::size_t head = 0;       // index of oldest point
    std::size_t count = 0;      // points currently retained
    std::uint64_t samples = 0;  // points ever taken
    std::uint64_t dropped = 0;  // points evicted by ring overflow
    std::uint64_t monotone_violations = 0;  // counter went backwards
    std::uint64_t last = 0;
    std::uint64_t max = 0;

    // i-th retained point in chronological order, i in [0, count).
    [[nodiscard]] const Point& point(std::size_t i) const {
      return ring[(head + i) % ring.size()];
    }
  };

  // Per-series rollup for bench JSON export (`series.<name>` row groups).
  struct Summary {
    std::string name;
    Kind kind = Kind::kGauge;
    std::string unit;
    bool wallclock = false;
    std::uint64_t samples = 0;
    std::uint64_t last = 0;
    std::uint64_t max = 0;
    std::uint64_t dropped = 0;
    std::uint64_t monotone_violations = 0;
  };

  void configure(const TelemetryConfig& cfg);
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Registration. Counters are sampled as cumulative levels and expected
  // monotone (a decrease bumps monotone_violations); gauges may move both
  // ways. `wallclock` marks a series as host-dependent. Returns the series
  // index (stable for the Telemetry's lifetime).
  std::size_t register_counter(std::string name,
                               std::function<std::uint64_t()> probe,
                               std::string unit = "count",
                               bool wallclock = false);
  std::size_t register_gauge(std::string name,
                             std::function<std::uint64_t()> probe,
                             std::string unit = "count",
                             bool wallclock = false);
  // Convenience: counter backed by a plain uint64 the caller keeps alive.
  std::size_t register_counter(std::string name, const std::uint64_t* src,
                               std::string unit = "count");

  // Sampling. sample_if_due() takes one snapshot of every series if `now`
  // has reached the next cadence grid point (at most one sample per
  // interval); sample_now() snapshots unconditionally. Both are no-ops
  // while disabled.
  void sample_if_due(Time now);
  void sample_now(Time now);
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_taken_; }

  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const Series* find(std::string_view name) const;

  // ---- Watchdog probes -------------------------------------------------
  // Evaluated after every sample; each probe fires at most once. The
  // handler receives (probe name, human-readable reason, fire time).
  using WatchdogHandler =
      std::function<void(const std::string&, const std::string&, Time)>;

  // Fire when `series_name`'s value has not changed for >= `window`
  // simulated time (measured from the first sample at the stuck value).
  void add_no_progress_probe(std::string name, std::string_view series_name,
                             Time window);
  // Fire when `series_name` has grown strictly for `k` consecutive samples
  // (e.g. a mailbox depth high-water that never plateaus).
  void add_monotone_growth_probe(std::string name,
                                 std::string_view series_name, int k);
  void set_watchdog_handler(WatchdogHandler h) { handler_ = std::move(h); }
  [[nodiscard]] std::uint64_t watchdog_triggers() const { return triggers_; }
  // First trigger's reason, empty if none fired.
  [[nodiscard]] const std::string& watchdog_reason() const { return reason_; }

  // ---- Export ----------------------------------------------------------
  // One JSON object per line per series:
  //   {"name":..,"kind":..,"unit":..,"wallclock":..,"cadence_ns":..,
  //    "samples":..,"dropped":..,"monotone_violations":..,
  //    "points":[[t,v],...]}
  // `include_wallclock = false` drops host-dependent series, leaving only
  // the deterministic ones (used by the determinism tests).
  [[nodiscard]] std::string dump_jsonl(bool include_wallclock = true) const;
  // Prometheus text exposition of the latest value of every series.
  [[nodiscard]] std::string dump_prometheus() const;
  [[nodiscard]] std::vector<Summary> summaries() const;

 private:
  enum class ProbeKind : std::uint8_t { kNoProgress, kMonotoneGrowth };
  struct WatchdogProbe {
    std::string name;
    std::size_t series = 0;
    ProbeKind kind = ProbeKind::kNoProgress;
    Time window = 0;  // kNoProgress
    int k = 0;        // kMonotoneGrowth
    // evaluation state
    bool seeded = false;
    std::uint64_t last_value = 0;
    Time last_change = 0;
    int growth_run = 0;
    bool fired = false;
  };

  std::size_t register_series(std::string name, Kind kind,
                              std::function<std::uint64_t()> probe,
                              std::string unit, bool wallclock);
  std::size_t series_index(std::string_view name) const;
  void push(Series& s, Time t, std::uint64_t v);
  void evaluate_watchdogs(Time now);
  void fire(WatchdogProbe& p, const std::string& why, Time now);

  TelemetryConfig cfg_;
  bool enabled_ = false;
  Time next_due_ = 0;
  std::uint64_t samples_taken_ = 0;
  std::vector<Series> series_;
  std::vector<WatchdogProbe> probes_;
  WatchdogHandler handler_;
  std::uint64_t triggers_ = 0;
  std::string reason_;
};

}  // namespace ulnet::sim
