#include "sim/trace.h"

#include <cstdio>

namespace ulnet::sim {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kPacketTx: return "packet.tx";
    case TraceEventType::kPacketRx: return "packet.rx";
    case TraceEventType::kDemuxMatch: return "demux.match";
    case TraceEventType::kDemuxDrop: return "demux.drop";
    case TraceEventType::kTemplateCheck: return "template.check";
    case TraceEventType::kTemplateReject: return "template.reject";
    case TraceEventType::kSemSignal: return "sem.signal";
    case TraceEventType::kSemWakeup: return "sem.wakeup";
    case TraceEventType::kTimerSchedule: return "timer.schedule";
    case TraceEventType::kTimerFire: return "timer.fire";
    case TraceEventType::kTimerCancel: return "timer.cancel";
    case TraceEventType::kTcpState: return "tcp.state";
    case TraceEventType::kTcpRetransmit: return "tcp.retransmit";
    case TraceEventType::kSpanBegin: return "span.begin";
    case TraceEventType::kSpanEnd: return "span.end";
    case TraceEventType::kFlowStart: return "flow.start";
    case TraceEventType::kFlowEnd: return "flow.end";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void Tracer::record(const TraceEvent& ev) {
  if (!enabled_) return;
  recorded_++;
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = ev;
    size_++;
  } else {
    ring_[head_] = ev;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    overwritten_++;
  }
}

const TraceEvent& Tracer::at(std::size_t i) const {
  return ring_[(head_ + i) % capacity_];
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
}

namespace {

// The only free-form strings in a trace are the static `detail` names, but
// escape defensively so the output is always valid JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::string out;
  out.reserve(size_ * 160 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& ev = at(i);
    if (i != 0) out += ',';
    // "ts" is microseconds in the trace_event format; emit fractional us so
    // nanosecond-resolution simulated timestamps survive.
    const auto ts_us = static_cast<long long>(ev.ts / 1000);
    const auto ts_frac = static_cast<long long>(
        ev.ts % 1000 < 0 ? -(ev.ts % 1000) : ev.ts % 1000);
    switch (ev.type) {
      case TraceEventType::kSpanBegin:
      case TraceEventType::kSpanEnd:
        // Async slices named after the stage, paired by packet id: one
        // Perfetto row per stage showing each packet's residency interval.
        out += "{\"name\":\"";
        append_escaped(out, ev.detail == nullptr ? "span" : ev.detail);
        std::snprintf(buf, sizeof buf,
                      "\",\"cat\":\"ulnet.span\",\"ph\":\"%c\","
                      "\"id\":%llu,\"ts\":%lld.%03lld,\"pid\":%d,\"tid\":0,"
                      "\"args\":{\"trace_id\":%llu,\"a\":%lld}}",
                      ev.type == TraceEventType::kSpanBegin ? 'b' : 'e',
                      static_cast<unsigned long long>(ev.trace_id), ts_us,
                      ts_frac, ev.host,
                      static_cast<unsigned long long>(ev.trace_id),
                      static_cast<long long>(ev.a));
        out += buf;
        continue;
      case TraceEventType::kFlowStart:
      case TraceEventType::kFlowEnd:
        // Flow arrows ("s" tail -> "f" head), paired by packet id; the
        // head binds to the enclosing slice at the same timestamp.
        out += "{\"name\":\"";
        append_escaped(out, ev.detail == nullptr ? "flow" : ev.detail);
        std::snprintf(buf, sizeof buf,
                      "\",\"cat\":\"ulnet.flow\",\"ph\":\"%c\","
                      "\"id\":%llu,\"ts\":%lld.%03lld,\"pid\":%d,\"tid\":0%s"
                      ",\"args\":{\"trace_id\":%llu}}",
                      ev.type == TraceEventType::kFlowStart ? 's' : 'f',
                      static_cast<unsigned long long>(ev.trace_id), ts_us,
                      ts_frac, ev.host,
                      ev.type == TraceEventType::kFlowEnd ? ",\"bp\":\"e\""
                                                          : "",
                      static_cast<unsigned long long>(ev.trace_id));
        out += buf;
        continue;
      default:
        break;
    }
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"ulnet\",\"ph\":\"i\","
                  "\"s\":\"t\",\"ts\":%lld.%03lld,\"pid\":%d,\"tid\":0,"
                  "\"args\":{\"id\":%lld,\"a\":%lld,\"b\":%lld",
                  to_string(ev.type), ts_us, ts_frac, ev.host,
                  static_cast<long long>(ev.id), static_cast<long long>(ev.a),
                  static_cast<long long>(ev.b));
    out += buf;
    if (ev.trace_id != 0) {
      std::snprintf(buf, sizeof buf, ",\"trace_id\":%llu",
                    static_cast<unsigned long long>(ev.trace_id));
      out += buf;
    }
    if (ev.detail != nullptr) {
      out += ",\"detail\":\"";
      append_escaped(out, ev.detail);
      out += '"';
    }
    out += "}}";
  }
  std::snprintf(buf, sizeof buf,
                "],\"otherData\":{\"recorded_total\":%llu,"
                "\"overwritten\":%llu}}",
                static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(overwritten_));
  out += buf;
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ulnet::sim
