// Shared hand-rolled JSON emission.
//
// Every observability surface in the repo exports JSON without a third-party
// library: sim::Metrics::dump_json, NetIoModule::dump_json, the TCP stats
// dump, the bench --json reports and the telemetry exporter. They used to
// each carry their own escaping and comma bookkeeping; this header is the one
// copy. The writer is append-only (no DOM): callers open objects/arrays,
// emit fields in order, and take() the string. Numeric formatting matches
// what the call sites historically produced (std::to_string for integers),
// so refactoring a dump onto the writer is byte-identical.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ulnet::sim {

// Escape `s` into `out` per JSON string rules: backslash-escape quote and
// backslash, \u00XX for control characters. Identical to the escaping the
// bench reports always used.
inline void json_escape_into(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape_into(out, s);
  return out;
}

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    sep();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    stack_.pop_back();
    close_value();
    return *this;
  }
  JsonWriter& begin_array() {
    sep();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    stack_.pop_back();
    close_value();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    sep();
    out_ += '"';
    json_escape_into(out_, k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::uint64_t v) { return value_str(std::to_string(v)); }
  JsonWriter& value(std::int64_t v) { return value_str(std::to_string(v)); }
  JsonWriter& value(std::uint32_t v) { return value_str(std::to_string(v)); }
  JsonWriter& value(std::int32_t v) { return value_str(std::to_string(v)); }
  JsonWriter& value(bool b) { return value_str(b ? "true" : "false"); }
  JsonWriter& value(std::string_view s) {
    sep();
    out_ += '"';
    json_escape_into(out_, s);
    out_ += '"';
    close_value();
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  // Append `raw` as an already-rendered JSON value (e.g. a nested dump).
  JsonWriter& value_raw(std::string_view raw) { return value_str(raw); }
  JsonWriter& value_null() { return value_str("null"); }

  template <typename V>
  JsonWriter& field(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }
  JsonWriter& field_raw(std::string_view k, std::string_view raw) {
    key(k);
    return value_raw(raw);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  JsonWriter& value_str(std::string_view s) {
    sep();
    out_ += s;
    close_value();
    return *this;
  }
  void sep() {
    if (pending_value_) return;  // value follows its key directly
    if (!stack_.empty() && stack_.back()) out_ += ',';
  }
  void close_value() {
    pending_value_ = false;
    if (!stack_.empty()) stack_.back() = true;
  }

  std::string out_;
  std::vector<bool> stack_;   // per open container: "has at least one entry"
  bool pending_value_ = false;
};

}  // namespace ulnet::sim
