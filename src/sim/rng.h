// Deterministic pseudo-random source for the simulated world.
//
// A single Rng per world, seeded explicitly, keeps every run reproducible.
// SplitMix64 core: tiny, fast, and of ample quality for workload generation
// and fault injection.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ulnet::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  // Exponentially distributed duration with the given mean (for Poisson
  // arrival processes in workload generators).
  Time exponential(Time mean);

 private:
  std::uint64_t state_;
};

}  // namespace ulnet::sim
