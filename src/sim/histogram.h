// Fixed-memory log-linear histogram (HDR style) for latency provenance.
//
// Values are non-negative integers (typically sim::Time nanoseconds or
// counts). Buckets are exact below 64; above that, each power-of-two range
// is split into 64 linear sub-buckets, so the bucket width is always at
// most value/64 -- a worst-case relative error of ~1.6%. Recording is one
// bit-scan plus one array increment: no allocation, no sorting, and no
// dependence on insertion order, so a histogram can stay always-on without
// perturbing determinism.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ulnet::sim {

class Histogram {
 public:
  static constexpr int kSubBits = 6;                      // 64 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  // 64 exact buckets + 58 half-open power-of-two ranges of 64 sub-buckets
  // each covers the full uint64 domain in ~30 KB.
  static constexpr int kBuckets = kSub + (64 - kSubBits) * kSub;

  void record(std::uint64_t v) {
    counts_[index_of(v)]++;
    total_++;
    sum_ += v;
    if (total_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::uint64_t min() const { return min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  // Nearest-rank percentile, p in [0, 100]. Returns the lower bound of the
  // bucket holding the rank-th sample (exact for values < 64, within the
  // ~1.6% bucket width above). 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  // Per-bucket mapping, exposed for tests and the inverse below.
  [[nodiscard]] static int index_of(std::uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    const int msb = 63 - countl_zero(v);
    return (msb - kSubBits + 1) * kSub +
           static_cast<int>(v >> (msb - kSubBits)) - kSub;
  }
  // Smallest value mapping to `index` (the bucket's lower bound).
  [[nodiscard]] static std::uint64_t lower_bound(int index) {
    if (index < kSub) return static_cast<std::uint64_t>(index);
    const int q = index >> kSubBits;       // power-of-two range, >= 1
    const int r = index & (kSub - 1);      // sub-bucket within the range
    return static_cast<std::uint64_t>(kSub + r) << (q - 1);
  }

  // Pointwise sum; merging is exact because buckets are position-aligned.
  void merge(const Histogram& other);

  // {"count":N,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..}
  // All-zero object when empty.
  [[nodiscard]] std::string dump_json() const;

 private:
  static int countl_zero(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(v);
#else
    int n = 0;
    for (std::uint64_t bit = 1ULL << 63; bit != 0 && !(v & bit); bit >>= 1)
      ++n;
    return n;
#endif
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ulnet::sim
