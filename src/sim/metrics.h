// World-wide mechanism counters.
//
// The Figure-1 bench and several tests reason about *structure* -- how many
// traps, context switches, IPC messages, copies and signals each protocol
// organization spends per operation -- rather than about time. Every
// substrate increments these counters as it charges costs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace ulnet::sim {

struct Metrics {
  std::uint64_t traps = 0;              // generic syscalls
  std::uint64_t specialized_traps = 0;  // fast netio entries
  std::uint64_t context_switches = 0;
  std::uint64_t ipc_messages = 0;
  std::uint64_t copies = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t page_remaps = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t semaphore_signals = 0;
  std::uint64_t semaphore_wakeups = 0;
  std::uint64_t packets_tx = 0;
  std::uint64_t packets_rx = 0;
  std::uint64_t demux_software_runs = 0;
  std::uint64_t demux_hardware_runs = 0;
  // Synthesized-demux binding table: packets resolved by the O(1) hash
  // probe vs. packets that missed and walked the binding list.
  std::uint64_t demux_hash_hits = 0;
  std::uint64_t demux_fallback_walks = 0;
  // Aggregated demux (interpreted modes): one-pass trie resolutions, trie
  // recompiles after unbind/mode-switch, and differential-shadow
  // disagreements with the linear walk (must stay 0).
  std::uint64_t demux_trie_hits = 0;
  std::uint64_t demux_trie_rebuilds = 0;
  std::uint64_t demux_diff_mismatches = 0;
  std::uint64_t template_checks = 0;
  std::uint64_t template_rejects = 0;
  std::uint64_t demux_drops = 0;
  std::uint64_t timer_ops = 0;
  // Hot-path allocator health (wall-clock observability; these do not feed
  // back into simulated costs). Pool counters mirror buf::PacketPool stats,
  // event_slab_high_water mirrors EventLoop::occupancy_high_water().
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_recycles = 0;
  std::uint64_t pool_high_water = 0;
  std::uint64_t event_slab_high_water = 0;
  // Table-growth churn (connection-scale health). A demux bind that forces
  // the binding hash table to rehash, or a loan-out that forces the loan
  // slab to reallocate, is an O(n) stall in the middle of the run; callers
  // that know their cardinality reserve up front and these stay 0.
  std::uint64_t demux_table_rehashes = 0;
  std::uint64_t loan_table_regrows = 0;
  // Fault-and-drop census (chaos observability). Link counters mirror
  // net::FaultPlan injections; NIC counters mirror Nic::rx_dropped /
  // An1Nic::ring_drops; netio counters mirror the NetIoModule totals so a
  // chaos run's losses are visible in the world-level JSON export.
  std::uint64_t link_frames_lost = 0;
  std::uint64_t link_frames_duplicated = 0;
  std::uint64_t link_frames_corrupted = 0;
  std::uint64_t link_frames_jittered = 0;
  std::uint64_t nic_rx_dropped = 0;
  std::uint64_t nic_ring_drops = 0;
  // NAPI-style interrupt mitigation (hw/nic poll mode): ISR->poll mode
  // transitions, poll rounds and frames drained by them, rounds that hit
  // the budget with backlog remaining, and poll->ISR re-arms.
  std::uint64_t nic_poll_transitions = 0;
  std::uint64_t nic_poll_rounds = 0;
  std::uint64_t nic_poll_frames = 0;
  std::uint64_t nic_poll_budget_exhausted = 0;
  std::uint64_t nic_poll_rearms = 0;
  std::uint64_t netio_ring_drops = 0;
  std::uint64_t netio_unclaimed_drops = 0;
  std::uint64_t netio_tx_backpressure = 0;
  std::uint64_t wakeups_dropped = 0;
  // Zero-copy data path. The loan gauges mirror buf::PacketPool's loan
  // table (loans_outstanding is a point-in-time gauge -- 0 at a clean
  // exit); the byte counters attribute every payload byte at each
  // potential copy site to either a performed copy or an elision, so the
  // selective-copy claim is measured rather than assumed.
  std::uint64_t loans_outstanding = 0;
  std::uint64_t loan_high_water = 0;
  std::uint64_t loans_reclaimed = 0;
  std::uint64_t loan_double_releases = 0;
  std::uint64_t payload_bytes_copied = 0;
  std::uint64_t payload_bytes_elided = 0;
  std::uint64_t header_bytes_copied = 0;
  std::uint64_t tx_gather_frames = 0;
  // Per-tenant policing (byzantine isolation; see docs/ROBUSTNESS.md).
  // All zero unless a NetIoModule TenantPolicy is enabled: TX sends refused
  // by the token-bucket policer, RX deliveries dropped at the tenant's
  // ring-slot quota, loan-outs downgraded to owned copies at the loan
  // budget, template rejects counted as forgery strikes, and channels
  // quarantined for exceeding the strike limit.
  std::uint64_t tenant_tx_policed = 0;
  std::uint64_t tenant_ring_quota_hits = 0;
  std::uint64_t tenant_loan_budget_hits = 0;
  std::uint64_t forgery_strikes = 0;
  std::uint64_t tenant_quarantines = 0;
  // Batched registry handshake sweeps (connection-scale sublinearity): each
  // sweep finishes every handshake that queued since the previous one, so
  // this growing sublinearly in connection count is the mechanism claim.
  // Mirrors RegistryServer::handshake_sweeps() so the world-level JSON
  // export and the telemetry series layer can observe sweep behavior.
  std::uint64_t registry_handshake_sweeps = 0;

  void reset() { *this = Metrics{}; }

  Metrics delta_since(const Metrics& base) const {
    Metrics d;
    d.traps = traps - base.traps;
    d.specialized_traps = specialized_traps - base.specialized_traps;
    d.context_switches = context_switches - base.context_switches;
    d.ipc_messages = ipc_messages - base.ipc_messages;
    d.copies = copies - base.copies;
    d.bytes_copied = bytes_copied - base.bytes_copied;
    d.page_remaps = page_remaps - base.page_remaps;
    d.interrupts = interrupts - base.interrupts;
    d.semaphore_signals = semaphore_signals - base.semaphore_signals;
    d.semaphore_wakeups = semaphore_wakeups - base.semaphore_wakeups;
    d.packets_tx = packets_tx - base.packets_tx;
    d.packets_rx = packets_rx - base.packets_rx;
    d.demux_software_runs = demux_software_runs - base.demux_software_runs;
    d.demux_hardware_runs = demux_hardware_runs - base.demux_hardware_runs;
    d.demux_hash_hits = demux_hash_hits - base.demux_hash_hits;
    d.demux_fallback_walks = demux_fallback_walks - base.demux_fallback_walks;
    d.demux_trie_hits = demux_trie_hits - base.demux_trie_hits;
    d.demux_trie_rebuilds = demux_trie_rebuilds - base.demux_trie_rebuilds;
    d.demux_diff_mismatches =
        demux_diff_mismatches - base.demux_diff_mismatches;
    d.template_checks = template_checks - base.template_checks;
    d.template_rejects = template_rejects - base.template_rejects;
    d.demux_drops = demux_drops - base.demux_drops;
    d.timer_ops = timer_ops - base.timer_ops;
    d.pool_hits = pool_hits - base.pool_hits;
    d.pool_misses = pool_misses - base.pool_misses;
    d.pool_recycles = pool_recycles - base.pool_recycles;
    d.pool_high_water = pool_high_water - base.pool_high_water;
    d.event_slab_high_water = event_slab_high_water - base.event_slab_high_water;
    d.demux_table_rehashes = demux_table_rehashes - base.demux_table_rehashes;
    d.loan_table_regrows = loan_table_regrows - base.loan_table_regrows;
    d.link_frames_lost = link_frames_lost - base.link_frames_lost;
    d.link_frames_duplicated =
        link_frames_duplicated - base.link_frames_duplicated;
    d.link_frames_corrupted =
        link_frames_corrupted - base.link_frames_corrupted;
    d.link_frames_jittered = link_frames_jittered - base.link_frames_jittered;
    d.nic_rx_dropped = nic_rx_dropped - base.nic_rx_dropped;
    d.nic_ring_drops = nic_ring_drops - base.nic_ring_drops;
    d.nic_poll_transitions = nic_poll_transitions - base.nic_poll_transitions;
    d.nic_poll_rounds = nic_poll_rounds - base.nic_poll_rounds;
    d.nic_poll_frames = nic_poll_frames - base.nic_poll_frames;
    d.nic_poll_budget_exhausted =
        nic_poll_budget_exhausted - base.nic_poll_budget_exhausted;
    d.nic_poll_rearms = nic_poll_rearms - base.nic_poll_rearms;
    d.netio_ring_drops = netio_ring_drops - base.netio_ring_drops;
    d.netio_unclaimed_drops =
        netio_unclaimed_drops - base.netio_unclaimed_drops;
    d.netio_tx_backpressure =
        netio_tx_backpressure - base.netio_tx_backpressure;
    d.wakeups_dropped = wakeups_dropped - base.wakeups_dropped;
    d.loans_outstanding = loans_outstanding - base.loans_outstanding;
    d.loan_high_water = loan_high_water - base.loan_high_water;
    d.loans_reclaimed = loans_reclaimed - base.loans_reclaimed;
    d.loan_double_releases =
        loan_double_releases - base.loan_double_releases;
    d.payload_bytes_copied = payload_bytes_copied - base.payload_bytes_copied;
    d.payload_bytes_elided = payload_bytes_elided - base.payload_bytes_elided;
    d.header_bytes_copied = header_bytes_copied - base.header_bytes_copied;
    d.tx_gather_frames = tx_gather_frames - base.tx_gather_frames;
    d.tenant_tx_policed = tenant_tx_policed - base.tenant_tx_policed;
    d.tenant_ring_quota_hits =
        tenant_ring_quota_hits - base.tenant_ring_quota_hits;
    d.tenant_loan_budget_hits =
        tenant_loan_budget_hits - base.tenant_loan_budget_hits;
    d.forgery_strikes = forgery_strikes - base.forgery_strikes;
    d.tenant_quarantines = tenant_quarantines - base.tenant_quarantines;
    d.registry_handshake_sweeps =
        registry_handshake_sweeps - base.registry_handshake_sweeps;
    return d;
  }

  // All counters as one flat JSON object, in declaration order.
  [[nodiscard]] std::string dump_json() const;
};

std::ostream& operator<<(std::ostream& os, const Metrics& m);

}  // namespace ulnet::sim
