#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ulnet::sim {

namespace {
void require_nonempty(const std::vector<double>& s) {
  if (s.empty()) throw std::logic_error("Stats: no samples");
}
}  // namespace

double Stats::mean() const {
  require_nonempty(samples_);
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Stats::min() const {
  require_nonempty(samples_);
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  require_nonempty(samples_);
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  require_nonempty(samples_);
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Stats::percentile(double p) const {
  require_nonempty(samples_);
  if (sorted_dirty_ || sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

}  // namespace ulnet::sim
