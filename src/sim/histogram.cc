#include "sim/histogram.h"

#include <cstdio>

namespace ulnet::sim {

std::uint64_t Histogram::percentile(double p) const {
  if (total_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total_) + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > total_) rank = total_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return lower_bound(i);
  }
  return max_;  // unreachable: seen == total_ at the last non-empty bucket
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (total_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  total_ += other.total_;
  sum_ += other.sum_;
}

std::string Histogram::dump_json() const {
  char tmp[256];
  std::snprintf(tmp, sizeof tmp,
                "{\"count\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.1f,"
                "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu}",
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(min_),
                static_cast<unsigned long long>(max_), mean(),
                static_cast<unsigned long long>(percentile(50)),
                static_cast<unsigned long long>(percentile(90)),
                static_cast<unsigned long long>(percentile(99)));
  return tmp;
}

}  // namespace ulnet::sim
