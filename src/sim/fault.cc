#include "sim/fault.h"

#include <algorithm>

#include "sim/rng.h"

namespace ulnet::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kKillApp: return "kill_app";
    case FaultKind::kStallApp: return "stall_app";
    case FaultKind::kResumeApp: return "resume_app";
    case FaultKind::kDropWakeup: return "drop_wakeup";
    case FaultKind::kExhaustRing: return "exhaust_ring";
    case FaultKind::kTxBackpressure: return "tx_backpressure";
    case FaultKind::kHoardLoans: return "hoard_loans";
    case FaultKind::kStarveRefill: return "starve_refill";
    case FaultKind::kForgeTemplates: return "forge_templates";
    case FaultKind::kFloodTx: return "flood_tx";
    case FaultKind::kSpamWakeups: return "spam_wakeups";
  }
  return "?";
}

void FaultSchedule::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultSchedule FaultSchedule::generate(std::uint64_t seed,
                                      const GenSpec& spec) {
  FaultSchedule s;
  Rng rng(seed);
  const Time span = spec.horizon > spec.start ? spec.horizon - spec.start : 0;
  auto when = [&]() -> Time {
    return span == 0 ? spec.start
                     : spec.start + static_cast<Time>(rng.below(
                                        static_cast<std::uint64_t>(span)));
  };
  auto whom = [&]() -> int {
    return spec.targets <= 1 ? 0 : static_cast<int>(rng.below(
                                       static_cast<std::uint64_t>(
                                           spec.targets)));
  };
  // Non-kill faults go to the survivors: a stall landing on an app that is
  // about to be killed tests nothing, so when a kill target is pinned the
  // other draws skip it (uniformly over the remaining targets).
  auto survivor = [&]() -> int {
    if (spec.kill_target < 0 || spec.kill_target >= spec.targets ||
        spec.targets <= 1) {
      return whom();
    }
    int v = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(spec.targets - 1)));
    return v >= spec.kill_target ? v + 1 : v;
  };
  for (int i = 0; i < spec.kills; ++i) {
    const int t = spec.kill_target >= 0 ? spec.kill_target : whom();
    s.add({when(), FaultKind::kKillApp, t, 0});
  }
  for (int i = 0; i < spec.stalls; ++i) {
    const Time at = when();
    const int t = survivor();
    s.add({at, FaultKind::kStallApp, t, 0});
    s.add({at + spec.stall_len, FaultKind::kResumeApp, t, 0});
  }
  for (int i = 0; i < spec.wakeup_drops; ++i) {
    s.add({when(), FaultKind::kDropWakeup, survivor(), 0});
  }
  for (int i = 0; i < spec.ring_exhausts; ++i) {
    s.add({when(), FaultKind::kExhaustRing, survivor(), 0});
  }
  for (int i = 0; i < spec.tx_backpressures; ++i) {
    s.add({when(), FaultKind::kTxBackpressure, survivor(), spec.tx_burst});
  }
  // Byzantine tenant events. A misbehaving tenant that is about to be killed
  // attacks nobody for long, so like the other survivor faults these default
  // to a survivor draw unless a target is pinned.
  auto byz = [&]() -> int {
    return (spec.byz_target >= 0 && spec.byz_target < spec.targets)
               ? spec.byz_target
               : survivor();
  };
  for (int i = 0; i < spec.loan_hoards; ++i) {
    s.add({when(), FaultKind::kHoardLoans, byz(), 0});
  }
  for (int i = 0; i < spec.refill_starves; ++i) {
    s.add({when(), FaultKind::kStarveRefill, byz(), 0});
  }
  for (int i = 0; i < spec.template_forgeries; ++i) {
    s.add({when(), FaultKind::kForgeTemplates, byz(), spec.forge_burst});
  }
  for (int i = 0; i < spec.tx_floods; ++i) {
    s.add({when(), FaultKind::kFloodTx, byz(), spec.flood_burst});
  }
  for (int i = 0; i < spec.wakeup_spams; ++i) {
    s.add({when(), FaultKind::kSpamWakeups, byz(), spec.spam_burst});
  }
  s.sort();
  return s;
}

std::uint64_t FaultSchedule::total_injected() const {
  std::uint64_t n = 0;
  for (std::uint64_t v : injected_) n += v;
  return n;
}

std::string FaultSchedule::dump_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += to_string(static_cast<FaultKind>(i));
    out += "\":";
    out += std::to_string(injected_[i]);
  }
  out += '}';
  return out;
}

}  // namespace ulnet::sim
