#include "sim/rng.h"

#include <cmath>

namespace ulnet::sim {

Time Rng::exponential(Time mean) {
  // Inverse-CDF sampling; clamp u away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-12) u = 1e-12;
  double d = -static_cast<double>(mean) * std::log(u);
  return static_cast<Time>(d);
}

}  // namespace ulnet::sim
