// Small sample-statistics helper used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace ulnet::sim {

class Stats {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_dirty_ = true;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  // p in [0, 100]; nearest-rank. The sorted view is cached and only
  // rebuilt after add(), so repeated queries sort once, not per call.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
};

}  // namespace ulnet::sim
