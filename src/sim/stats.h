// Small sample-statistics helper used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace ulnet::sim {

class Stats {
 public:
  void add(double v) { samples_.push_back(v); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  // p in [0, 100]; nearest-rank on a sorted copy.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
};

}  // namespace ulnet::sim
