// Deterministic event tracer for the ulnet world.
//
// Records timestamped, typed events -- packet tx/rx, demux decisions,
// template checks, semaphore signalling, timer operations, TCP state
// transitions and retransmissions -- into a bounded in-memory ring.
// Timestamps come exclusively from the simulation clock (sim::Time), never
// from the wall clock, so a trace of a given seed is bit-identical across
// runs and machines.
//
// The tracer is compiled in unconditionally but *off* by default: a
// disabled tracer is a single branch per record() call and produces no
// observable difference in Metrics (a tier-1 test asserts this). Enable it
// with set_enabled(true), run the experiment, then export with
// to_chrome_json()/write_chrome_json(): the output is Chrome
// `trace_event`-format JSON ("JSON Object Format"), loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

enum class TraceEventType : std::uint8_t {
  kPacketTx,        // frame handed to a NIC            (id=channel, a=bytes)
  kPacketRx,        // frame arrived from the wire      (a=bytes, b=ethertype)
  kDemuxMatch,      // inbound packet matched a channel (id=channel)
  kDemuxDrop,       // no binding claimed it / ring full(id=channel or 0)
  kTemplateCheck,   // outbound header-template match   (id=channel)
  kTemplateReject,  // outbound send refused            (id=channel)
  kSemSignal,       // kernel signalled a channel sem   (id=channel)
  kSemWakeup,       // blocked library thread woken
  kTimerSchedule,   // timer armed                      (id=timer, a=delay ns)
  kTimerFire,       // timer callback dispatched        (id=timer)
  kTimerCancel,     // pending timer cancelled          (id=timer)
  kTcpState,        // TCP state transition             (detail=new state)
  kTcpRetransmit,   // TCP segment retransmitted        (a=seq, b=fast?1:0)
};

[[nodiscard]] const char* to_string(TraceEventType t);

struct TraceEvent {
  Time ts = 0;                  // simulated nanoseconds
  TraceEventType type{};
  std::int32_t host = 0;        // host ordinal (Chrome "pid")
  std::int64_t id = 0;          // channel / timer / connection identifier
  std::int64_t a = 0;           // first type-specific argument
  std::int64_t b = 0;           // second type-specific argument
  const char* detail = nullptr; // static string (e.g. a TCP state name)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Record one event. No-op while disabled. When the ring is full the
  // oldest event is overwritten (and counted in overwritten()).
  void record(const TraceEvent& ev);

  // Events currently retained, oldest first.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const TraceEvent& at(std::size_t i) const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Lifetime totals (survive ring wrap-around).
  [[nodiscard]] std::uint64_t recorded_total() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

  void clear();

  // Chrome trace_event JSON ("JSON Object Format"): instant events on one
  // track per host, with the event's typed fields in "args". Loads in
  // chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

}  // namespace ulnet::sim
