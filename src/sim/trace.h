// Deterministic event tracer for the ulnet world.
//
// Records timestamped, typed events -- packet tx/rx, demux decisions,
// template checks, semaphore signalling, timer operations, TCP state
// transitions and retransmissions -- into a bounded in-memory ring.
// Timestamps come exclusively from the simulation clock (sim::Time), never
// from the wall clock, so a trace of a given seed is bit-identical across
// runs and machines.
//
// The tracer is compiled in unconditionally but *off* by default: a
// disabled tracer is a single branch per record() call and produces no
// observable difference in Metrics (a tier-1 test asserts this). Enable it
// with set_enabled(true), run the experiment, then export with
// to_chrome_json()/write_chrome_json(): the output is Chrome
// `trace_event`-format JSON ("JSON Object Format"), loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

enum class TraceEventType : std::uint8_t {
  kPacketTx,        // frame handed to a NIC            (id=channel, a=bytes)
  kPacketRx,        // frame arrived from the wire      (a=bytes, b=ethertype)
  kDemuxMatch,      // inbound packet matched a channel (id=channel)
  kDemuxDrop,       // no binding claimed it / ring full(id=channel or 0)
  kTemplateCheck,   // outbound header-template match   (id=channel)
  kTemplateReject,  // outbound send refused            (id=channel)
  kSemSignal,       // kernel signalled a channel sem   (id=channel)
  kSemWakeup,       // blocked library thread woken
  kTimerSchedule,   // timer armed                      (id=timer, a=delay ns)
  kTimerFire,       // timer callback dispatched        (id=timer)
  kTimerCancel,     // pending timer cancelled          (id=timer)
  kTcpState,        // TCP state transition             (detail=new state)
  kTcpRetransmit,   // TCP segment retransmitted        (a=seq, b=fast?1:0)
  // Latency-provenance kinds. Spans are stage-residency intervals (Chrome
  // async "b"/"e", paired by trace_id + detail name); flows are causal
  // arrows between stages or packets (Chrome "s"/"f", paired the same
  // way). The packet's trace_id lives in TraceEvent::trace_id.
  kSpanBegin,       // stage residency begins           (detail=stage name)
  kSpanEnd,         // stage residency ends             (detail=stage name)
  kFlowStart,       // causal arrow tail                (detail=flow name)
  kFlowEnd,         // causal arrow head                (detail=flow name)
};

[[nodiscard]] const char* to_string(TraceEventType t);

struct TraceEvent {
  Time ts = 0;                  // simulated nanoseconds
  TraceEventType type{};
  std::int32_t host = 0;        // host ordinal (Chrome "pid")
  std::int64_t id = 0;          // channel / timer / connection identifier
  std::int64_t a = 0;           // first type-specific argument
  std::int64_t b = 0;           // second type-specific argument
  const char* detail = nullptr; // static string (e.g. a TCP state name)
  std::uint64_t trace_id = 0;   // packet provenance id (0 = none)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Record one event. No-op while disabled. When the ring is full the
  // oldest event is overwritten (and counted in overwritten()).
  void record(const TraceEvent& ev);

  // Monotone per-world packet-identity allocator, starting at 1. Always
  // allocates (whether or not tracing is enabled) so that packet ids --
  // and therefore everything keyed on them -- are identical between a
  // traced and an untraced run of the same seed.
  [[nodiscard]] std::uint64_t new_trace_id() { return ++last_trace_id_; }
  [[nodiscard]] std::uint64_t last_trace_id() const { return last_trace_id_; }

  // Partitioned worlds shard the tracer per host; giving each shard a
  // disjoint id range (base = host ordinal << 40) keeps packet ids globally
  // unique without any cross-shard coordination, and the same base is used
  // by both the single-loop and the partitioned executors so ids stay
  // bit-identical between them. Call before the first allocation.
  void set_id_base(std::uint64_t base) { last_trace_id_ = base; }

  // Span/flow conveniences: `name` must be a static string; spans pair a
  // kSpanBegin with the kSpanEnd carrying the same (trace_id, name), flows
  // pair kFlowStart with kFlowEnd likewise.
  void span_begin(Time ts, std::int32_t host, const char* name,
                  std::uint64_t trace_id, std::int64_t a = 0) {
    record({ts, TraceEventType::kSpanBegin, host, 0, a, 0, name, trace_id});
  }
  void span_end(Time ts, std::int32_t host, const char* name,
                std::uint64_t trace_id, std::int64_t a = 0) {
    record({ts, TraceEventType::kSpanEnd, host, 0, a, 0, name, trace_id});
  }
  void flow_start(Time ts, std::int32_t host, const char* name,
                  std::uint64_t trace_id) {
    record({ts, TraceEventType::kFlowStart, host, 0, 0, 0, name, trace_id});
  }
  void flow_end(Time ts, std::int32_t host, const char* name,
                std::uint64_t trace_id) {
    record({ts, TraceEventType::kFlowEnd, host, 0, 0, 0, name, trace_id});
  }

  // Events currently retained, oldest first.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const TraceEvent& at(std::size_t i) const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Lifetime totals (survive ring wrap-around).
  [[nodiscard]] std::uint64_t recorded_total() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

  void clear();

  // Chrome trace_event JSON ("JSON Object Format"): instant events on one
  // track per host, with the event's typed fields in "args". Loads in
  // chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t last_trace_id_ = 0;
};

}  // namespace ulnet::sim
