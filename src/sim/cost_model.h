// CPU cost model for the simulated DECstation 5000/200 (25 MHz MIPS R3000).
//
// Every constant is a simulated-CPU duration in nanoseconds. The structural
// results of the paper (which organization wins, where crossovers fall)
// come from *which* of these terms appear on each organization's critical
// path; the constants only set the scale. They are calibrated so that the
// absolute numbers land near the paper's Tables 1-5, and each is annotated
// with its provenance.
//
// Benches that ablate a mechanism (batching, zero-copy, compiled demux)
// copy a CostModel and perturb the relevant field.
#pragma once

#include "sim/time.h"

namespace ulnet::sim {

struct CostModel {
  // ---- Traps and crossings -------------------------------------------
  // Generic UNIX syscall in+out, including sanity checks ("the sanity
  // checks involved in a trap can be simplified" -- paper Section 4).
  Time trap_syscall = 20 * kUs;
  // Specialized kernel entry used by the protocol library to reach the
  // network I/O module (paper: "a kernel crossing to access the network
  // device can be made fast because it is a specialized entry point").
  Time trap_specialized = 6 * kUs;
  // Address-space switch (scheduler + TLB/cache disturbance).
  Time context_switch = 40 * kUs;
  // One-way Mach IPC: port right checks, message copy setup, dispatch.
  // Paper Section 4 measures app->registry->app at ~900 us round trip
  // (two one-way messages plus two context switches).
  Time mach_ipc_oneway = 380 * kUs;
  // Extra per-byte cost of moving bulk data through a Mach IPC message.
  Time mach_ipc_per_byte = 150;

  // ---- Memory and copies ---------------------------------------------
  // bcopy between user and kernel (or app and server) address spaces
  // (~8 MB/s on a 25 MHz R3000).
  Time copy_per_byte = 120;
  // Selective-copy split of the same bcopy rate: the zero-copy ablation
  // charges protocol-header movement and payload movement separately so
  // eliding only the payload copies (loaned RX buffers, gathered TX) is
  // measurable. Both default to copy_per_byte's rate; benches perturb
  // payload_copy_per_byte alone.
  Time header_copy_per_byte = 120;
  Time payload_copy_per_byte = 120;
  // Internet checksum, one pass over the data.
  Time checksum_per_byte = 90;
  // Fixed cost of donating a page by VM remap instead of copying.
  // Ultrix and the UX server only use this for user packets >= 1024 B
  // (paper Section 4); the user-level library's shared rings never copy.
  Time page_remap = 30 * kUs;
  std::size_t remap_threshold = 1024;  // bytes; monolithic stacks only

  // ---- Device access ---------------------------------------------------
  // Lance PMADD-AA has no DMA: the host moves every byte with programmed
  // I/O through the TURBOchannel.
  Time pio_per_byte = 600;
  // AN1 per-packet driver work: DMA descriptor setup plus the software
  // Ethernet-format encapsulation the paper's AN1 driver performed.
  Time dma_setup = 230 * kUs;
  // Interrupt dispatch (vector + save/restore + device ack).
  Time interrupt_entry = 20 * kUs;
  // Common driver bookkeeping per packet (queues, mbuf trim, stats).
  Time driver_fixed = 50 * kUs;
  // NAPI-style polled drain (interrupt mitigation): entering one more poll
  // round from the task queue -- a softirq-equivalent dispatch, much
  // cheaper than a full interrupt (no vector, no device ack).
  Time poll_entry = 6 * kUs;
  // Per-frame poll-loop bookkeeping (ring index, descriptor recycle) on
  // top of the device's own per-frame receive costs.
  Time poll_per_frame = 2 * kUs;

  // ---- Demultiplexing (Table 5) ----------------------------------------
  // Software demux of one incoming Ethernet packet: synthesized in-kernel
  // matcher incl. hash of the binding table. Paper Table 5: 52 us.
  Time demux_software = 52 * kUs;
  // Extra per-binding compare when the hash probe misses and the kernel
  // falls back to walking the binding list (synthesized mode only; the
  // paper's "few instructions" matcher, roughly a dozen R3000 cycles each
  // plus loads). Bindings whose ethertype differs are skipped for free.
  Time demux_fallback_per_binding = 3 * kUs;
  // AN1 hardware BQI demux: the *device management* code inherent to the
  // BQI machinery (ring bookkeeping, descriptor recycle). Paper: 50 us.
  Time demux_hardware_mgmt = 50 * kUs;
  // Interpreted CSPF-style packet filter, per VM instruction
  // ("memory intensive", paper Section 2.2).
  Time filter_interp_per_insn = 4 * kUs;
  // BPF-style register VM, per instruction.
  Time filter_bpf_per_insn = 800;
  // Aggregated-demux trie, per node expansion / header load: a masked
  // big-endian load plus one hash-edge lookup, ~15 R3000 cycles. The whole
  // one-pass classification costs header depth x this, independent of how
  // many bindings were folded into the trie (DPF/MPF lineage).
  Time demux_trie_node = 600;
  // Header-template match on transmit (a few compares; paper Section 3.4:
  // "usually, this code segment is quite short").
  Time template_match = 8 * kUs;

  // ---- Protocol processing --------------------------------------------
  // TCP output path fixed cost per segment (PCB access, header build,
  // window bookkeeping) -- 4.3BSD code on a 25 MHz R3000.
  Time tcp_output_fixed = 150 * kUs;
  // TCP input path fixed cost per segment.
  Time tcp_input_fixed = 130 * kUs;
  // IP output/input fixed cost per packet.
  Time ip_fixed = 40 * kUs;
  // Socket-layer bookkeeping per user request (sosend/soreceive).
  Time socket_fixed = 40 * kUs;
  // UDP fixed cost per datagram.
  Time udp_fixed = 90 * kUs;

  // ---- Signalling and threads ------------------------------------------
  // Kernel side of a lightweight semaphore signal.
  Time semaphore_signal = 15 * kUs;
  // Waking a blocked kernel thread (Ultrix wakeup/sleep path).
  Time kernel_wakeup = 25 * kUs;
  // User-level (C Threads) dispatch of the library's protocol thread after
  // a semaphore notification. The paper blames its threads package for
  // part of the 0.8 ms receive-path gap vs Ultrix.
  Time uthread_dispatch = 550 * kUs;
  // Timer wheel insert/cancel.
  Time timer_op = 4 * kUs;
  // Library-side per-packet receive work: C-Threads mutex/condition
  // handshake and shared-buffer recycling for each packet drained from the
  // ring (paid even when notifications batch).
  Time lib_rx_per_packet = 120 * kUs;
  // Per-operation overhead of the UX server's UNIX emulation machinery
  // (socket layer, server scheduling) on top of raw Mach IPC.
  Time ux_server_op = 800 * kUs;

  // ---- Registry server / connection setup (Table 4) --------------------
  // Allocating a connection end-point (port table, PCB init) in the
  // registry server.
  Time registry_alloc_endpoint = 700 * kUs;
  // Registry's non-shared-memory path to the network device (it uses
  // "standard Mach IPCs", paper Section 4, item 1).
  Time registry_device_access = 1100 * kUs;
  // Setting up user channels to the network device: shared-memory region
  // creation + wiring, template/BQI registration (item 3: ~3.4 ms).
  Time registry_channel_setup = 2600 * kUs;
  // Transferring TCP state from the registry into the library (item 5).
  Time registry_state_transfer = 1000 * kUs;
  // Outbound connection processing that cannot overlap transmission
  // (item 2: ~1.5 ms).
  Time registry_outbound_setup = 1500 * kUs;
  // Extra AN1 BQI negotiation machinery during setup (paper: AN1 setup is
  // "slightly higher ... because the machinery involved to setup the BQI
  // has to be exercised").
  Time registry_bqi_setup = 200 * kUs;
  // In-kernel (Ultrix) connect()/accept() socket+PCB work per endpoint.
  Time kernel_setup_endpoint = 500 * kUs;
};

}  // namespace ulnet::sim
