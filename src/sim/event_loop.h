// Deterministic discrete-event loop.
//
// Every dynamic behaviour in the simulated world (packet arrivals, CPU task
// completions, timer expiries) is an event scheduled here. Events at equal
// timestamps fire in scheduling order, which makes whole-world runs
// bit-for-bit reproducible for a given seed.
//
// Hot-path layout: events live in a slab of reusable slots indexed by a
// 4-ary min-heap, so steady-state scheduling performs no heap allocation
// (closures up to EventFn::kInlineCapacity bytes are stored inline in the
// slot). Cancellation is a true O(log n) removal validated by a per-slot
// generation counter, so cancelling a fired or invalid id is an exact no-op
// and pending()/empty() accounting stays correct.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

struct Metrics;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Move-only type-erased `void()` callable with inline storage. The event
// loop stores one per slot; closures that fit kInlineCapacity (all of the
// simulator's own lambdas) never touch the heap. Larger or over-aligned
// callables fall back to a heap allocation, so any callable still works.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the callable into `dst` from `src`, then destroy the
    // source representation.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*std::launder(static_cast<Fn*>(p)))(); }
    static void relocate(void* dst, void* src) {
      Fn* s = std::launder(static_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* p) { return *std::launder(static_cast<Fn**>(p)); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) { ::new (dst) Fn*(ptr(src)); }
    static void destroy(void* p) { delete ptr(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute simulated time `when` (>= now).
  EventId schedule_at(Time when, EventFn fn);

  // Schedule `fn` to run `delay` nanoseconds from now.
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancel a pending event: O(log n) removal from the heap. The slot
  // generation makes cancelling an already-fired, already-cancelled or
  // invalid id an exact no-op (returns false).
  bool cancel(EventId id);

  // Run until the queue drains or simulated time would exceed `deadline`.
  // Returns the number of events executed.
  std::uint64_t run_until(Time deadline);

  // Run until the queue drains (the world must quiesce by itself).
  std::uint64_t run() { return run_until(kForever); }

  // Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  // Pending events successfully cancelled over the loop's lifetime. With
  // executed() this gives the cancel rate -- the ROADMAP's timer-wheel
  // question is exactly how much of the heap churn is timers that never
  // fire.
  [[nodiscard]] std::uint64_t cancels() const { return cancels_; }

  // Observation hook for the telemetry sampler: `hook(now)` runs between
  // events whenever simulated time crosses a multiple of `cadence`. The
  // hook is NOT an event -- it does not consume a slot or a sequence
  // number, so installing it cannot perturb event order or any count a
  // determinism test compares. The hook must not re-enter the loop.
  void set_tick_hook(Time cadence, std::function<void(Time)> hook) {
    tick_cadence_ = cadence < 1 ? 1 : cadence;
    tick_hook_ = std::move(hook);
    tick_next_ = (now_ / tick_cadence_) * tick_cadence_;
    if (tick_next_ < now_) tick_next_ += tick_cadence_;
  }
  void clear_tick_hook() { tick_hook_ = nullptr; }

  // Timestamp of the earliest pending event, or kForever when the queue is
  // empty. The partitioned executor uses this to compute each conservative
  // window's base time without popping anything.
  [[nodiscard]] Time next_event_time() const {
    return heap_.empty() ? kForever : slots_[heap_[0]].when;
  }

  // Slab introspection: current slot count (capacity grown so far) and the
  // maximum number of simultaneously pending events ever observed.
  [[nodiscard]] std::size_t slab_size() const { return slots_.size(); }
  [[nodiscard]] std::size_t occupancy_high_water() const {
    return occupancy_high_water_;
  }

  // Mirror the occupancy high-water into `m->event_slab_high_water`.
  void bind_metrics(Metrics* m) { metrics_ = m; }

  static constexpr Time kForever = INT64_MAX / 4;

 private:
  static constexpr std::uint32_t kNpos = UINT32_MAX;

  struct Slot {
    Time when = 0;
    std::uint64_t seq = 0;  // FIFO tiebreaker for equal timestamps
    EventFn fn;
    std::uint32_t gen = 1;        // bumped on retire; validates EventIds
    std::uint32_t heap_pos = kNpos;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot + 1) << 32) | gen;
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    if (x.when != y.when) return x.when < y.when;
    return x.seq < y.seq;
  }

  std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t si);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, 4-ary min-heap
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancels_ = 0;
  std::function<void(Time)> tick_hook_;
  Time tick_cadence_ = 1;
  Time tick_next_ = 0;
  std::size_t occupancy_high_water_ = 0;
  Metrics* metrics_ = nullptr;
  bool stopped_ = false;
};

}  // namespace ulnet::sim
