// Deterministic discrete-event loop.
//
// Every dynamic behaviour in the simulated world (packet arrivals, CPU task
// completions, timer expiries) is an event scheduled here. Events at equal
// timestamps fire in scheduling order, which makes whole-world runs
// bit-for-bit reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ulnet::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute simulated time `when` (>= now).
  EventId schedule_at(Time when, std::function<void()> fn);

  // Schedule `fn` to run `delay` nanoseconds from now.
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancel a pending event. Cancelling an already-fired or invalid id is a
  // harmless no-op (lazy deletion).
  void cancel(EventId id);

  // Run until the queue drains or simulated time would exceed `deadline`.
  // Returns the number of events executed.
  std::uint64_t run_until(Time deadline);

  // Run until the queue drains (the world must quiesce by itself).
  std::uint64_t run() { return run_until(kForever); }

  // Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool empty() const {
    return queue_.size() == cancelled_.size();
  }
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  static constexpr Time kForever = INT64_MAX / 4;

 private:
  struct Event {
    Time when = 0;
    EventId id = kInvalidEvent;  // doubles as the FIFO tiebreaker
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace ulnet::sim
