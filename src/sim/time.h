// Simulated time for the ulnet discrete-event world.
//
// All simulated durations and instants are expressed in integer nanoseconds.
// The paper's testbed measured time with the AN1 controller's real-time
// clock, which ticks every 40 ns; nanosecond resolution comfortably
// subsumes that.
#pragma once

#include <cstdint>

namespace ulnet::sim {

// An instant or duration in simulated nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1000 * kNs;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

// Convert a simulated duration to floating-point units for reporting.
constexpr double to_us(Time t) { return static_cast<double>(t) / kUs; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMs; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSec; }

}  // namespace ulnet::sim
