// Simulated host CPU.
//
// A Cpu is a single non-preemptive server with two priority levels
// (interrupt > normal). Work is submitted as tasks tagged with the address
// space they execute in; dispatching a task whose space differs from the
// previous one charges a context switch, which is how domain-crossing costs
// emerge structurally rather than being hand-added per organization.
//
// A task's closure runs logically over the interval [start, start+accrued]:
// the closure executes at `start` in event-loop order, accumulates cost via
// TaskCtx::charge(), and any side effects that must become visible to the
// rest of the world only when the CPU is done (packet hand-off to a NIC,
// waking another address space) are registered with TaskCtx::defer() and run
// at the task's end time.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace ulnet::sim {

// Address-space identifier on one host. Space 0 is the kernel.
using SpaceId = int;
inline constexpr SpaceId kKernelSpace = 0;

enum class Prio { kInterrupt = 0, kNormal = 1 };

class Cpu;

// Simulated-CPU profiler component: every cost-model charge is attributed
// to the component active at charge time (set with ProfileScope below), so
// the per-host breakdown answers "where did the simulated cycles go?".
// kOther catches everything not inside an explicit scope (context
// switches, app code, IPC plumbing) so the components always sum exactly
// to the CPU's busy_ns().
enum class CpuComponent : std::uint8_t {
  kNicIsr,
  kDemux,
  kChecksum,
  kTcpInput,
  kTcpFastpath,
  kTimers,
  kLibraryDrain,
  kRegistry,
  kOther,
};
inline constexpr int kCpuComponentCount =
    static_cast<int>(CpuComponent::kOther) + 1;

[[nodiscard]] const char* to_string(CpuComponent c);

class TaskCtx {
 public:
  explicit TaskCtx(Time start, SpaceId space, Cpu* cpu = nullptr)
      : start_(start), space_(space), cpu_(cpu) {}

  // Current instant within the task: start plus cost accrued so far.
  [[nodiscard]] Time now() const { return start_ + accrued_; }
  [[nodiscard]] Time accrued() const { return accrued_; }
  [[nodiscard]] SpaceId space() const { return space_; }

  inline void charge(Time ns);

  // Run `fn` (outside the CPU) at this task's completion time.
  void defer(std::function<void()> fn) { deferred_.push_back(std::move(fn)); }

 private:
  friend class Cpu;
  Time start_;
  Time accrued_ = 0;
  SpaceId space_;
  Cpu* cpu_ = nullptr;
  std::vector<std::function<void()>> deferred_;
};

class Cpu {
 public:
  using TaskFn = std::function<void(TaskCtx&)>;

  Cpu(EventLoop& loop, const CostModel& cost, Metrics& metrics,
      std::string name)
      : loop_(loop), cost_(cost), metrics_(metrics), name_(std::move(name)) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Enqueue a task for execution in `space` at priority `prio`.
  void submit(SpaceId space, Prio prio, TaskFn fn);

  // True while a task closure is executing on this CPU.
  [[nodiscard]] bool in_task() const { return current_ != nullptr; }

  // The task currently executing. Precondition: in_task().
  TaskCtx& current();

  // Charge cost to the current task; outside any task (e.g. unit tests
  // driving protocol code directly) this is a deliberate no-op.
  void charge(Time ns) {
    if (current_ != nullptr) current_->charge(ns);
  }
  void defer(std::function<void()> fn);

  // Observability: the world's tracer (if any) plus this host's ordinal,
  // used as the "pid" in exported traces. Installed by os::World.
  void set_tracer(Tracer* t, int host_ord) {
    tracer_ = t;
    host_ord_ = host_ord;
  }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  [[nodiscard]] int host_ord() const { return host_ord_; }
  // The instant a trace event recorded right now should carry: the current
  // task instant, or the loop clock outside any task.
  [[nodiscard]] Time trace_now() const {
    return current_ != nullptr ? current_->now() : loop_.now();
  }
  // Record an event stamped with trace_now(). One branch when tracing is
  // off. `trace_id` carries packet provenance (0 = none).
  void trace(TraceEventType type, std::int64_t id = 0, std::int64_t a = 0,
             std::int64_t b = 0, const char* detail = nullptr,
             std::uint64_t trace_id = 0) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    tracer_->record(
        TraceEvent{trace_now(), type, host_ord_, id, a, b, detail, trace_id});
  }

  // Profiler state: the component charges are attributed to right now.
  // Scoped via ProfileScope; reset to kOther at each task dispatch.
  [[nodiscard]] CpuComponent component() const { return component_; }
  void set_component(CpuComponent c) { component_ = c; }
  void attribute(Time ns) {
    profile_[static_cast<int>(component_)] += ns;
  }
  [[nodiscard]] Time profile_ns(CpuComponent c) const {
    return profile_[static_cast<int>(c)];
  }
  [[nodiscard]] const std::array<Time, kCpuComponentCount>& profile() const {
    return profile_;
  }

  [[nodiscard]] Time busy_ns() const { return busy_ns_; }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }
  Metrics& metrics() { return metrics_; }
  EventLoop& loop() { return loop_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return queues_[0].size() + queues_[1].size();
  }

 private:
  struct Pending {
    SpaceId space;
    TaskFn fn;
  };

  void maybe_dispatch();
  void dispatch_next();

  EventLoop& loop_;
  const CostModel& cost_;
  Metrics& metrics_;
  Tracer* tracer_ = nullptr;
  int host_ord_ = 0;
  std::string name_;
  std::deque<Pending> queues_[2];  // [interrupt, normal]
  bool busy_ = false;
  SpaceId current_space_ = kKernelSpace;
  TaskCtx* current_ = nullptr;
  Time busy_ns_ = 0;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t switches_ = 0;
  CpuComponent component_ = CpuComponent::kOther;
  std::array<Time, kCpuComponentCount> profile_{};
};

inline void TaskCtx::charge(Time ns) {
  accrued_ += ns;
  if (cpu_ != nullptr) cpu_->attribute(ns);
}

// RAII component scope: all charges on `cpu` between construction and
// destruction are attributed to `c`. Scopes nest (the inner component
// wins, as in a call stack's leaf frame).
class ProfileScope {
 public:
  ProfileScope(Cpu& cpu, CpuComponent c) : cpu_(cpu), prev_(cpu.component()) {
    cpu_.set_component(c);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() { cpu_.set_component(prev_); }

 private:
  Cpu& cpu_;
  CpuComponent prev_;
};

}  // namespace ulnet::sim
