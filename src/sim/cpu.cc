#include "sim/cpu.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ulnet::sim {

const char* to_string(CpuComponent c) {
  switch (c) {
    case CpuComponent::kNicIsr: return "nic-isr";
    case CpuComponent::kDemux: return "demux";
    case CpuComponent::kChecksum: return "checksum";
    case CpuComponent::kTcpInput: return "tcp-input";
    case CpuComponent::kTcpFastpath: return "tcp-fastpath";
    case CpuComponent::kTimers: return "timers";
    case CpuComponent::kLibraryDrain: return "library-drain";
    case CpuComponent::kRegistry: return "registry";
    case CpuComponent::kOther: return "other";
  }
  return "?";
}

void Cpu::submit(SpaceId space, Prio prio, TaskFn fn) {
  queues_[static_cast<int>(prio)].push_back(Pending{space, std::move(fn)});
  maybe_dispatch();
}

TaskCtx& Cpu::current() {
  if (current_ == nullptr) {
    throw std::logic_error("Cpu::current() outside a task on " + name_);
  }
  return *current_;
}

void Cpu::defer(std::function<void()> fn) {
  if (current_ != nullptr) {
    current_->defer(std::move(fn));
  } else {
    // Outside CPU accounting (unit tests): run via the loop immediately.
    loop_.schedule_in(0, std::move(fn));
  }
}

void Cpu::maybe_dispatch() {
  if (busy_) return;
  busy_ = true;
  loop_.schedule_in(0, [this] { dispatch_next(); });
}

void Cpu::dispatch_next() {
  Pending task;
  if (!queues_[0].empty()) {
    task = std::move(queues_[0].front());
    queues_[0].pop_front();
  } else if (!queues_[1].empty()) {
    task = std::move(queues_[1].front());
    queues_[1].pop_front();
  } else {
    busy_ = false;
    return;
  }

  TaskCtx ctx(loop_.now(), task.space, this);
  component_ = CpuComponent::kOther;  // no scope survives across tasks
  if (task.space != current_space_) {
    ctx.charge(cost_.context_switch);
    metrics_.context_switches++;
    switches_++;
    current_space_ = task.space;
  }

  current_ = &ctx;
  task.fn(ctx);
  current_ = nullptr;

  busy_ns_ += ctx.accrued();
  tasks_run_++;

  const Time end = ctx.start_ + ctx.accrued_;
  auto deferred = std::move(ctx.deferred_);
  loop_.schedule_at(end, [this, d = std::move(deferred)]() mutable {
    for (auto& fn : d) fn();
    dispatch_next();
  });
}

}  // namespace ulnet::sim
