// Hierarchical timing wheels (Varghese & Lauck, SOSP '87) -- the paper's
// recommended timer substrate: "practically every message arrival and
// departure involves timer operations", so schedule/cancel must be O(1).
//
// The wheel is pure (no event loop dependency): callers advance it with
// advance_to(). TimerWheelDriver adapts it to the simulation's EventLoop.
// A binary-heap implementation with identical semantics exists for
// differential testing and for the timer ablation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace ulnet::timer {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

// Common interface so protocol code can run on either implementation.
class TimerService {
 public:
  using Callback = std::function<void()>;
  virtual ~TimerService() = default;
  virtual TimerId schedule(sim::Time delay, Callback cb) = 0;
  // Cancelling an expired/unknown id is a harmless no-op; returns whether a
  // pending timer was actually removed.
  virtual bool cancel(TimerId id) = 0;
  [[nodiscard]] virtual std::size_t pending() const = 0;
};

class TimingWheel final : public TimerService {
 public:
  static constexpr int kLevels = 3;
  static constexpr int kSlotsPerLevel = 256;

  // `tick` is the finest granularity; level i has tick * 256^i per slot, so
  // the default 10 ms tick covers ~7.7 days across three levels.
  explicit TimingWheel(sim::Time tick = 10 * sim::kMs);

  TimerId schedule(sim::Time delay, Callback cb) override;
  bool cancel(TimerId id) override;
  [[nodiscard]] std::size_t pending() const override { return live_; }

  // Advance wheel time to `now`, firing every timer whose deadline has
  // passed (in deadline order across ticks, insertion order within a tick).
  void advance_to(sim::Time now);

  [[nodiscard]] sim::Time now() const { return now_; }
  [[nodiscard]] sim::Time tick() const { return tick_; }
  // Earliest pending deadline, or EventLoop::kForever if none: lets a
  // driver sleep precisely instead of ticking an idle wheel.
  [[nodiscard]] sim::Time next_deadline() const;

  // Lifetime totals, for tests and benches.
  [[nodiscard]] std::uint64_t scheduled_total() const { return scheduled_; }
  [[nodiscard]] std::uint64_t fired_total() const { return fired_; }
  [[nodiscard]] std::uint64_t cascades_total() const { return cascades_; }

 private:
  struct Entry {
    TimerId id;
    sim::Time deadline;
    Callback cb;
  };
  using Slot = std::list<Entry>;
  struct Location {
    int level;
    int slot;
    Slot::iterator it;
  };

  void insert(Entry e);
  void cascade(int level, int slot);
  void fire_slot(Slot& slot);

  sim::Time tick_;
  sim::Time now_ = 0;       // tick-quantized wheel position
  sim::Time real_now_ = 0;  // unquantized time of the last advance_to
  std::uint64_t current_tick_ = 0;  // now_ / tick_
  std::vector<std::vector<Slot>> levels_;
  std::unordered_map<TimerId, Location> index_;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cascades_ = 0;
};

// Reference implementation: binary heap with lazy cancellation. O(log n)
// schedule, used to differential-test the wheel and as the ablation
// baseline ("older systems kept sorted timer lists").
class HeapTimer final : public TimerService {
 public:
  TimerId schedule(sim::Time delay, Callback cb) override;
  bool cancel(TimerId id) override;
  [[nodiscard]] std::size_t pending() const override { return live_; }

  void advance_to(sim::Time now);
  [[nodiscard]] sim::Time next_deadline() const;
  [[nodiscard]] sim::Time now() const { return now_; }

 private:
  struct Entry {
    sim::Time deadline;
    TimerId id;
    bool operator>(const Entry& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return id > o.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<TimerId, Callback> live_cbs_;
  sim::Time now_ = 0;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
};

// Drives a TimerService from the simulation's EventLoop: schedules exactly
// one loop event at the next deadline and re-arms after firing.
class TimerWheelDriver {
 public:
  TimerWheelDriver(sim::EventLoop& loop, TimingWheel& wheel)
      : loop_(loop), wheel_(wheel) {}
  ~TimerWheelDriver() { disarm(); }
  TimerWheelDriver(const TimerWheelDriver&) = delete;
  TimerWheelDriver& operator=(const TimerWheelDriver&) = delete;

  TimerId schedule(sim::Time delay, TimerService::Callback cb);
  bool cancel(TimerId id);

 private:
  void rearm();
  void disarm();

  sim::EventLoop& loop_;
  TimingWheel& wheel_;
  sim::EventId pending_event_ = sim::kInvalidEvent;
  sim::Time armed_for_ = -1;
};

}  // namespace ulnet::timer
