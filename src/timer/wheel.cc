#include "timer/wheel.h"

#include <algorithm>
#include <cassert>

namespace ulnet::timer {

TimingWheel::TimingWheel(sim::Time tick) : tick_(tick) {
  assert(tick > 0);
  levels_.resize(kLevels);
  for (auto& level : levels_) level.resize(kSlotsPerLevel);
}

TimerId TimingWheel::schedule(sim::Time delay, Callback cb) {
  if (delay < 0) delay = 0;
  const TimerId id = next_id_++;
  // Deadlines are based on the unquantized time of the last advance_to so a
  // timer never fires before `delay` has really elapsed.
  Entry e{id, real_now_ + delay, std::move(cb)};
  scheduled_++;
  live_++;
  insert(std::move(e));
  return id;
}

void TimingWheel::insert(Entry e) {
  const TimerId id = e.id;
  // Ticks until the deadline, rounded up; a minimum of one tick keeps a
  // newly scheduled timer out of the slot currently being fired.
  std::uint64_t dticks = 1;
  if (e.deadline > now_) {
    dticks = static_cast<std::uint64_t>((e.deadline - now_ + tick_ - 1) / tick_);
    if (dticks == 0) dticks = 1;
  }
  constexpr std::uint64_t kSpan1 = kSlotsPerLevel;
  constexpr std::uint64_t kSpan2 = kSlotsPerLevel * kSpan1;
  constexpr std::uint64_t kSpan3 = kSlotsPerLevel * kSpan2;
  if (dticks >= kSpan3) dticks = kSpan3 - 1;
  const std::uint64_t target = current_tick_ + dticks;

  int level;
  int slot;
  if (dticks < kSpan1) {
    level = 0;
    slot = static_cast<int>(target % kSlotsPerLevel);
  } else if (dticks < kSpan2) {
    level = 1;
    slot = static_cast<int>((target / kSpan1) % kSlotsPerLevel);
  } else {
    level = 2;
    slot = static_cast<int>((target / kSpan2) % kSlotsPerLevel);
  }
  auto& list = levels_[static_cast<std::size_t>(level)]
                      [static_cast<std::size_t>(slot)];
  list.push_back(std::move(e));
  index_[id] = Location{level, slot, std::prev(list.end())};
}

bool TimingWheel::cancel(TimerId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Location& loc = it->second;
  levels_[static_cast<std::size_t>(loc.level)]
         [static_cast<std::size_t>(loc.slot)].erase(loc.it);
  index_.erase(it);
  live_--;
  return true;
}

void TimingWheel::advance_to(sim::Time now) {
  if (now < now_) return;
  const auto target_tick = static_cast<std::uint64_t>(now / tick_);
  if (live_ == 0) {
    // Idle fast path: jump.
    current_tick_ = target_tick;
    now_ = static_cast<sim::Time>(current_tick_) * tick_;
    real_now_ = std::max(now, now_);
    return;
  }
  while (current_tick_ < target_tick) {
    current_tick_++;
    now_ = static_cast<sim::Time>(current_tick_) * tick_;
    // Timers scheduled from callbacks fired below base their deadline on
    // the tick being processed, not the final advance target.
    real_now_ = now_;
    const int idx0 = static_cast<int>(current_tick_ % kSlotsPerLevel);
    if (idx0 == 0) {
      const int idx1 = static_cast<int>((current_tick_ / kSlotsPerLevel) %
                                        kSlotsPerLevel);
      cascade(1, idx1);
      if (idx1 == 0) {
        cascade(2, static_cast<int>((current_tick_ /
                                     (kSlotsPerLevel * kSlotsPerLevel)) %
                                    kSlotsPerLevel));
      }
    }
    fire_slot(levels_[0][static_cast<std::size_t>(idx0)]);
    if (live_ == 0 && current_tick_ < target_tick) {
      current_tick_ = target_tick;
      now_ = static_cast<sim::Time>(current_tick_) * tick_;
      break;
    }
  }
  real_now_ = std::max(now, now_);
}

void TimingWheel::cascade(int level, int slot) {
  auto& list = levels_[static_cast<std::size_t>(level)]
                      [static_cast<std::size_t>(slot)];
  Slot moved;
  moved.swap(list);
  for (auto& e : moved) {
    index_.erase(e.id);
    live_--;  // insert() below re-counts
    cascades_++;
    live_++;
    insert(std::move(e));
  }
}

void TimingWheel::fire_slot(Slot& slot) {
  Slot due;
  due.swap(slot);
  for (auto& e : due) {
    index_.erase(e.id);
    live_--;
    fired_++;
    e.cb();
  }
}

sim::Time TimingWheel::next_deadline() const {
  sim::Time best = sim::EventLoop::kForever;
  for (const auto& [id, loc] : index_) {
    (void)id;
    best = std::min(best, loc.it->deadline);
  }
  return best;
}

// ---------------------------------------------------------------------------
// HeapTimer
// ---------------------------------------------------------------------------

TimerId HeapTimer::schedule(sim::Time delay, Callback cb) {
  if (delay < 0) delay = 0;
  const TimerId id = next_id_++;
  heap_.push(Entry{now_ + delay, id});
  live_cbs_.emplace(id, std::move(cb));
  live_++;
  return id;
}

bool HeapTimer::cancel(TimerId id) {
  // Lazy: drop the callback; the heap entry is skipped when popped.
  if (live_cbs_.erase(id) > 0) {
    live_--;
    return true;
  }
  return false;
}

void HeapTimer::advance_to(sim::Time now) {
  if (now < now_) return;
  while (!heap_.empty() && heap_.top().deadline <= now) {
    Entry e = heap_.top();
    heap_.pop();
    auto it = live_cbs_.find(e.id);
    if (it == live_cbs_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    live_cbs_.erase(it);
    live_--;
    // Fire at the logical deadline so callbacks observe exact fire times.
    now_ = std::max(now_, e.deadline);
    cb();
  }
  now_ = now;
}

sim::Time HeapTimer::next_deadline() const {
  // Skip lazily-cancelled heads without mutating (copy of the top region is
  // unnecessary: cancelled entries at the exact top are rare; we scan via a
  // copy of the heap only when the head is stale).
  if (live_ == 0) return sim::EventLoop::kForever;
  auto copy = heap_;
  while (!copy.empty()) {
    if (live_cbs_.contains(copy.top().id)) return copy.top().deadline;
    copy.pop();
  }
  return sim::EventLoop::kForever;
}

// ---------------------------------------------------------------------------
// TimerWheelDriver
// ---------------------------------------------------------------------------

TimerId TimerWheelDriver::schedule(sim::Time delay,
                                   TimerService::Callback cb) {
  wheel_.advance_to(loop_.now());
  const TimerId id = wheel_.schedule(delay, std::move(cb));
  rearm();
  return id;
}

bool TimerWheelDriver::cancel(TimerId id) {
  const bool removed = wheel_.cancel(id);
  return removed;
}

void TimerWheelDriver::rearm() {
  const sim::Time d = wheel_.next_deadline();
  if (d == sim::EventLoop::kForever) {
    disarm();
    return;
  }
  sim::Time t = ((d + wheel_.tick() - 1) / wheel_.tick()) * wheel_.tick();
  t = std::max(t, wheel_.now() + wheel_.tick());
  t = std::max(t, loop_.now());
  if (pending_event_ != sim::kInvalidEvent && armed_for_ == t) return;
  disarm();
  armed_for_ = t;
  pending_event_ = loop_.schedule_at(t, [this] {
    pending_event_ = sim::kInvalidEvent;
    wheel_.advance_to(loop_.now());
    rearm();
  });
}

void TimerWheelDriver::disarm() {
  if (pending_event_ != sim::kInvalidEvent) {
    loop_.cancel(pending_event_);
    pending_event_ = sim::kInvalidEvent;
  }
  armed_for_ = -1;
}

}  // namespace ulnet::timer
