// The user-level library organization -- the paper's proposed structure.
//
// Per host: one network I/O module per NIC (kernel) and one registry server
// (privileged process). Per application: a ProtocolLibrary -- a complete
// TCP/IP/ARP stack linked into the application and executing in its address
// space. Setup goes through the registry; the common-case send/receive path
// touches only the library and the network I/O module:
//
//   send:    procedure call into the library -> TCP/IP in the app's space
//            -> specialized trap -> capability + template check -> driver
//   receive: ISR -> demux (software filter or hardware BQI) -> shared ring
//            -> batched semaphore signal -> library thread -> TCP in the
//            app's space -> data already in user memory (no copy)
//
// The registry server is on neither path.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/net_system.h"
#include "api/socket_bridge.h"
#include "core/exec_env.h"
#include "core/netio_module.h"
#include "core/registry_server.h"
#include "os/world.h"
#include "proto/stack.h"

namespace ulnet::core {

class UserLevelApp;

class UserLevelOrg {
 public:
  UserLevelOrg(os::World& world, os::Host& host);
  UserLevelOrg(const UserLevelOrg&) = delete;
  UserLevelOrg& operator=(const UserLevelOrg&) = delete;

  api::NetSystem& add_app(const std::string& name);
  UserLevelApp& add_app_impl(const std::string& name);

  RegistryServer& registry() { return *registry_; }
  // Opt the organization's receive path into zero-copy delivery: arriving
  // packets are loaned out of the pool instead of handed over as owned
  // bytes. Pair with TcpConfig::rx_byref / tx_gather on the apps to carry
  // the elision end-to-end. Off by default.
  void set_zero_copy(bool on) {
    for (auto& n : netios_) n->set_rx_loans(on);
  }
  NetIoModule& netio(int ifc) { return *netios_[static_cast<std::size_t>(ifc)]; }
  [[nodiscard]] std::size_t netio_count() const { return netios_.size(); }
  os::Host& host() { return host_; }
  os::World& world() { return world_; }

 private:
  os::World& world_;
  os::Host& host_;
  std::vector<std::unique_ptr<NetIoModule>> netios_;
  std::unique_ptr<RegistryServer> registry_;
  std::vector<std::unique_ptr<UserLevelApp>> apps_;
};

// A raw (ethertype-bound) channel handle for the Table 1 micro-benchmark:
// the full mechanism suite -- shared ring, capability, template check,
// batched signalling -- with no transport protocol on top.
struct RawChannel {
  UserLevelApp* app = nullptr;
  NetIoModule* netio = nullptr;
  ChannelId id = kInvalidChannel;
  os::PortId cap = os::kInvalidPort;
  std::uint16_t ethertype = 0;

  // Send a raw payload (must be called from an app task).
  bool send(sim::TaskCtx& ctx, buf::Bytes payload);
};

class UserLevelApp : public api::NetSystem, public RegistryClient {
 public:
  UserLevelApp(UserLevelOrg& org, const std::string& name);

  // ---- NetSystem ----
  bool listen(std::uint16_t port,
              std::function<api::SocketEvents(api::SocketId)> acceptor)
      override;
  void connect(net::Ipv4Addr dst, std::uint16_t port, api::SocketEvents evs,
               std::function<void(api::SocketId)> done) override;
  std::size_t send(api::SocketId s, buf::ByteView data) override;
  buf::Bytes recv(api::SocketId s, std::size_t max) override;
  std::vector<buf::RxChunk> recv_zc(api::SocketId s, std::size_t max) override;
  void release_chunks(std::vector<buf::RxChunk>& chunks) override;
  std::size_t send_space(api::SocketId s) override;
  std::size_t bytes_available(api::SocketId s) override;
  void close(api::SocketId s) override;
  void release(api::SocketId s) override;
  void run_app(std::function<void(sim::TaskCtx&)> fn) override;
  [[nodiscard]] sim::SpaceId app_space() const override { return space_; }
  [[nodiscard]] const std::string& app_name() const override { return name_; }

  // ---- RegistryClient ----
  [[nodiscard]] sim::SpaceId client_space() const override { return space_; }
  void handoff(HandoffInfo info) override;
  void connect_failed(std::uint64_t request_id,
                      const std::string& reason) override;

  // ---- Extensions beyond the basic socket API ----
  // Raw channel (Table 1). `on_rx` runs in this app's space per packet;
  // `on_open` delivers the ready handle (setup goes through the registry).
  void open_raw(sim::TaskCtx& ctx, int ifc, std::uint16_t ethertype,
                net::MacAddr peer_mac,
                std::function<void(sim::TaskCtx&, buf::Bytes)> on_rx,
                std::function<void(RawChannel)> on_open);

  // Hand a connected socket to another application without involving the
  // registry on the transfer (paper Section 3.2's inetd pattern; the Mach
  // port abstraction makes this possible). The socket ceases to exist here
  // and re-appears in `target` with the supplied events.
  api::SocketId pass_connection(api::SocketId s, UserLevelApp& target,
                                api::SocketEvents evs);

  // Attach the library's RRP (request/response) protocol to the wire via a
  // connectionless wildcard channel (paper Section 5's harder case). After
  // the callback fires, library_stack().rrp() can serve and issue
  // transactions. Peer link addresses must be seeded (seed_arp): with no
  // connection setup phase there is no registry resolution to piggyback on.
  void enable_rrp(sim::TaskCtx& ctx, int ifc, std::function<void()> ready);
  void seed_arp(net::Ipv4Addr ip, net::MacAddr mac);

  // Simulate abnormal termination: every connection is inherited by the
  // registry, which resets the peers and quarantines the ports.
  void simulate_crash(sim::TaskCtx& ctx);

  // ---- Crash-fault surface (chaos controller) ----
  // Hard death: unlike simulate_crash the library gets no chance to hand
  // anything to the registry -- local state simply evaporates and the
  // kernel's dead-space notification is the only signal the trusted path
  // receives. Everything left behind must be reclaimed by the registry.
  void kill(sim::TaskCtx& ctx);
  [[nodiscard]] bool dead() const { return dead_; }
  // Freeze / unfreeze the library's service thread. While stalled, arriving
  // packets pile up in the shared rings (eventually dropping at the ring);
  // resume() drains whatever survived.
  void stall() { stalled_ = true; }
  void resume();
  // Periodic safety-net poll of the shared rings: recovers from a lost
  // semaphore wakeup at the price of one timer per interval. 0 = off
  // (default -- healthy runs must not change their event schedule).
  void set_repoll_interval(sim::Time interval);
  // Arm the lost-wakeup fault on every channel / discard all ring contents.
  void drop_next_wakeup();
  int exhaust_rings();

  // ---- Byzantine adversary surface (tenant-isolation scenarios) ----
  // TCP source port carried by every forged segment; scenario wire taps key
  // on it to prove nothing forged ever reached the link.
  static constexpr std::uint16_t kForgedSrcPort = 6666;
  // Ring-slot hoarder: the service thread keeps consuming packets but
  // stashes their buffers/loans instead of returning them, and never
  // reposts ring slots -- the loan table and (on AN1) the hardware ring
  // both bleed dry. Only per-tenant budgets contain the damage.
  void set_hoard_loans(bool on) { hoard_loans_ = on; }
  // Refill starver: packets are processed normally but the drain loop never
  // calls channel_post_buffers, so AN1 buffer credits are consumed and
  // never returned.
  void set_starve_refill(bool on) { starve_refill_ = on; }
  [[nodiscard]] std::size_t hoarded_count() const {
    return hoard_bytes_.size() + hoard_held_.size();
  }
  // Template forgery: attempt `n` sends on the first connection-bound
  // channel with the TCP source port rewritten to `forged_src_port`.
  // Returns how many attempts the network I/O module refused.
  int forge_sends(sim::TaskCtx& ctx, int n, std::uint16_t forged_src_port);
  // Wakeup spam: re-arm every channel `n` times back to back -- pure trap
  // pressure with no packets behind it. Returns traps issued.
  int spam_wakeups(sim::TaskCtx& ctx, int n);

  [[nodiscard]] std::uint64_t tx_retries() const { return tx_retries_; }
  [[nodiscard]] std::uint64_t tx_drops() const { return tx_drops_; }
  [[nodiscard]] std::uint64_t repolls() const { return repolls_; }
  [[nodiscard]] std::uint64_t repoll_recoveries() const {
    return repoll_recoveries_;
  }

  proto::NetworkStack& library_stack() { return *stack_; }
  HostStackEnv& env() { return *env_; }
  UserLevelOrg& org() { return org_; }
  [[nodiscard]] std::uint64_t packets_drained() const {
    return packets_drained_;
  }
  // Packets consumed per service-thread wakeup (notification batching's
  // yield, always on).
  [[nodiscard]] const sim::Histogram& drain_batch_hist() const {
    return drain_batch_hist_;
  }

 private:
  struct ChannelRec {
    NetIoModule* netio = nullptr;
    ChannelId id = kInvalidChannel;
    os::PortId cap = os::kInvalidPort;
    proto::TcpConnection* conn = nullptr;
    bool draining = false;
  };
  struct PendingConnect {
    api::SocketEvents events;
    std::function<void(api::SocketId)> done;
  };

  static std::uint64_t flow_key(const proto::TxFlow& f) {
    return (static_cast<std::uint64_t>(f.local_ip.value ^ f.remote_ip.value)
            << 32) ^
           (static_cast<std::uint64_t>(f.local_port) << 16) ^ f.remote_port;
  }

  void lib_transmit(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                    buf::Bytes payload, const proto::TxFlow* flow);
  void lib_transmit_gather(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                           buf::Bytes headers, buf::ByteView payload,
                           const proto::TxFlow* flow);
  void send_attempt(sim::TaskCtx& ctx, ChannelId id, std::uint16_t ethertype,
                    buf::Bytes payload, net::MacAddr dst_override,
                    int attempt, std::uint64_t trace_id);
  void schedule_repoll();
  void start_drain(ChannelId id);
  void drain(sim::TaskCtx& ctx, ChannelId id);
  ChannelRec* rec_of_conn(proto::TcpConnection* conn);
  void adopt(HandoffInfo& info, api::SocketEvents evs,
             std::function<void(api::SocketId)> done);

  UserLevelOrg& org_;
  std::string name_;
  sim::SpaceId space_;
  std::unique_ptr<HostStackEnv> env_;
  std::unique_ptr<proto::NetworkStack> stack_;
  api::SocketBridge bridge_;
  std::unordered_map<std::uint64_t, ChannelId> chan_by_flow_;
  std::unordered_map<ChannelId, ChannelRec> channels_;
  std::unordered_map<std::uint64_t, PendingConnect> pending_connects_;
  std::unordered_map<std::uint16_t, std::function<api::SocketEvents(api::SocketId)>>
      acceptors_;
  std::unordered_map<ChannelId,
                     std::function<void(sim::TaskCtx&, buf::Bytes)>>
      raw_rx_;
  ChannelId rrp_channel_ = kInvalidChannel;
  std::uint64_t next_request_ = 1;
  std::uint64_t packets_drained_ = 0;
  sim::Histogram drain_batch_hist_;
  std::uint64_t lib_unroutable_ = 0;
  bool dead_ = false;
  bool stalled_ = false;
  // Byzantine adversary state: hoarded buffers/loans are held (never
  // released) until the process dies; the registry's sweep is then the only
  // way the pool gets its slots back.
  bool hoard_loans_ = false;
  bool starve_refill_ = false;
  std::vector<buf::Bytes> hoard_bytes_;
  std::vector<buf::BufferLoan> hoard_held_;
  sim::Time repoll_interval_ = 0;
  bool repoll_armed_ = false;
  std::uint64_t tx_retries_ = 0;
  std::uint64_t tx_drops_ = 0;
  std::uint64_t repolls_ = 0;
  std::uint64_t repoll_recoveries_ = 0;

  friend struct RawChannel;
  friend class UserLevelOrg;
};

}  // namespace ulnet::core
