#include "core/netio_module.h"

#include <algorithm>
#include <cstdio>

#include "sim/json_writer.h"

#include "core/exec_env.h"

namespace ulnet::core {

namespace {
// Flow of an *outgoing* IP payload (no link header): source fields are
// local, destination fields remote.
std::optional<filter::FlowKey> outgoing_flow(buf::ByteView ip_payload) {
  if (ip_payload.size() < 24) return std::nullopt;
  filter::FlowKey k;
  k.ethertype = net::kEtherTypeIp;
  k.ip_proto = ip_payload[9];
  k.local_ip = buf::rd32(ip_payload, 12);   // IP source = our address
  k.remote_ip = buf::rd32(ip_payload, 16);  // IP destination = peer
  k.local_port = buf::rd16(ip_payload, 20);
  k.remote_port = buf::rd16(ip_payload, 22);
  return k;
}
}  // namespace

NetIoModule::NetIoModule(os::Host& host, hw::Nic& nic, int ifc_index)
    : host_(host), nic_(nic), ifc_(ifc_index), an1_(is_an1(nic)) {
  nic_.set_rx_handler([this](sim::TaskCtx& ctx, net::Frame& f,
                             std::uint16_t bqi) { rx(ctx, f, bqi); });
}

std::size_t NetIoModule::link_header_size() const {
  return an1_ ? net::An1Header::kSize : net::EthHeader::kSize;
}

std::uint16_t NetIoModule::prealloc_rx_bqi(int capacity) {
  if (!an1_) return 0;
  auto& an1nic = static_cast<hw::An1Nic&>(nic_);
  const std::uint16_t bqi = an1nic.alloc_bqi(capacity);
  an1nic.post_buffers(bqi, capacity);
  return bqi;
}

ChannelId NetIoModule::create_channel(sim::TaskCtx& ctx,
                                      const ChannelSetup& setup) {
  const ChannelId id = next_id_++;
  const std::size_t chan_buckets = channels_.bucket_count();
  Channel& ch = channels_[id];
  if (channels_.bucket_count() != chan_buckets) {
    host_.cpu().metrics().demux_table_rehashes++;
  }
  ch.id = id;
  ch.app_space = setup.app_space;
  ch.flow = setup.flow;
  ch.peer_mac = setup.peer_mac;
  ch.raw = setup.raw;
  ch.raw_ethertype = setup.raw_ethertype;
  ch.ring_capacity = setup.ring_capacity;

  os::Kernel& k = host_.kernel();
  // Pinned packet-buffer region, mapped into the application.
  ch.region = k.region_create(static_cast<std::size_t>(setup.ring_capacity) *
                              2048);
  k.region_map(ch.region, setup.app_space);
  // Send capability.
  ch.cap = k.port_allocate(sim::kKernelSpace);
  k.port_insert_send_right(ch.cap, setup.app_space);
  // Notification semaphore, woken in the application's space.
  ch.sem = std::make_unique<os::Semaphore>(host_.cpu(), setup.app_space);
  ch.sem->bind_wakeup_hist(&wakeup_hist_);

  if (an1_) {
    if (setup.preallocated_bqi != 0) {
      ch.rx_bqi = setup.preallocated_bqi;
    } else {
      ch.rx_bqi = prealloc_rx_bqi(setup.ring_capacity);
    }
    if (ch.rx_bqi != 0) {
      const std::size_t bqi_buckets = by_bqi_.bucket_count();
      by_bqi_[ch.rx_bqi] = id;
      if (by_bqi_.bucket_count() != bqi_buckets) {
        host_.cpu().metrics().demux_table_rehashes++;
      }
    }
  } else {
    if (!setup.raw) {
      // Software demux programs (one per binding; the synthesized one is the
      // production path, the VMs exist for the ablation).
      const std::size_t lh = net::EthHeader::kSize;
      ch.synth = std::make_unique<filter::SynthesizedMatcher>(setup.flow, lh);
      ch.bpf = std::make_unique<filter::BpfVm>(
          filter::build_bpf_flow_filter(setup.flow, lh, lh - 2));
      ch.cspf = std::make_unique<filter::CspfVm>(
          filter::build_cspf_flow_filter(setup.flow, lh, lh - 2));
    }
    binding_order_.push_back(id);
    bind_channel(ch);
    aggregate_bind(ch);
  }
  (void)ctx;
  return id;
}

void NetIoModule::bind_channel(Channel& ch) {
  // try_emplace keeps the first binding on a key collision, matching the
  // insertion-ordered walk this table short-circuits.
  if (ch.raw) {
    raw_by_ethertype_.try_emplace(ch.raw_ethertype, ch.id);
  } else {
    const std::size_t buckets = bind_table_.bucket_count();
    bind_table_.try_emplace(ch.flow, ch.id);
    if (bind_table_.bucket_count() != buckets) {
      host_.cpu().metrics().demux_table_rehashes++;
    }
  }
}

void NetIoModule::rebuild_bind_table() {
  bind_table_.clear();
  raw_by_ethertype_.clear();
  for (ChannelId id : binding_order_) {
    if (Channel* ch = find(id)) bind_channel(*ch);
  }
}

void NetIoModule::destroy_channel(sim::TaskCtx& ctx, ChannelId id,
                                  bool reclaimed) {
  auto it = channels_.find(id);
  if (it == channels_.end()) return;
  Channel& ch = it->second;
  os::Kernel& k = host_.kernel();
  k.region_unmap(ch.region, ch.app_space);
  k.region_destroy(ch.region);
  k.port_destroy(ch.cap);
  if (an1_ && ch.rx_bqi != 0) {
    static_cast<hw::An1Nic&>(nic_).free_bqi(ch.rx_bqi);
    by_bqi_.erase(ch.rx_bqi);
  }
  // Undrained packets in the shared ring go back to the pool with the
  // region -- a dead library must not leak the buffers it never consumed.
  close_ring_spans(ch);
  if (buf::PacketPool* pool = nic_.pool()) {
    counters_.buffers_reclaimed += ch.ring.size();
    for (RxPacket& p : ch.ring) {
      if (p.loan.engaged()) {
        p.loan.release(static_cast<std::uint64_t>(host_.loop().now()));
      } else {
        pool->recycle(std::move(p.payload));
      }
    }
  }
  if (reclaimed) counters_.channels_reclaimed++;
  channels_.erase(it);
  if (auto bit = std::find(binding_order_.begin(), binding_order_.end(), id);
      bit != binding_order_.end()) {
    binding_order_.erase(bit);
    // A destroyed binding may have shadowed a later one with the same key;
    // rebuild so the table again mirrors the walk. Teardown is rare and
    // off the data path. The trie cannot drop a path incrementally (it may
    // be shared), so it recompiles lazily on the next classification.
    rebuild_bind_table();
    agg_valid_ = false;
  }
  (void)ctx;
}

void NetIoModule::set_tx_bqi(ChannelId id, std::uint16_t bqi) {
  if (Channel* ch = find(id)) ch->tx_bqi = bqi;
}

bool NetIoModule::retarget_channel(sim::TaskCtx& ctx, ChannelId id,
                                   sim::SpaceId new_space) {
  Channel* ch = find(id);
  if (ch == nullptr) return false;
  os::Kernel& k = host_.kernel();
  k.region_unmap(ch->region, ch->app_space);
  k.region_map(ch->region, new_space);
  k.port_remove_send_right(ch->cap, ch->app_space);
  k.port_insert_send_right(ch->cap, new_space);
  ch->app_space = new_space;
  ch->sem = std::make_unique<os::Semaphore>(host_.cpu(), new_space);
  ch->sem->bind_wakeup_hist(&wakeup_hist_);
  ch->notify_pending = false;
  (void)ctx;
  return true;
}

NetIoModule::Channel* NetIoModule::find(ChannelId id) {
  auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}
const NetIoModule::Channel* NetIoModule::find(ChannelId id) const {
  auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

os::PortId NetIoModule::channel_cap(ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? os::kInvalidPort : ch->cap;
}
os::RegionId NetIoModule::channel_region(ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? os::kInvalidRegion : ch->region;
}
std::uint16_t NetIoModule::channel_rx_bqi(ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? 0 : ch->rx_bqi;
}
net::MacAddr NetIoModule::channel_peer_mac(ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? net::MacAddr{} : ch->peer_mac;
}

const NetIoModule::ChannelStats* NetIoModule::channel_stats(
    ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? nullptr : &ch->stats;
}

std::string NetIoModule::dump_json() const {
  sim::JsonWriter w;
  w.begin_object();
  w.field("interface", ifc_);
  w.field("an1", an1_);
  w.key("channels").begin_array();

  // unordered_map iteration order is not deterministic; emit by id so the
  // dump of a given run is byte-stable.
  std::vector<const Channel*> ordered;
  ordered.reserve(channels_.size());
  for (const auto& [id, ch] : channels_) ordered.push_back(&ch);
  std::sort(ordered.begin(), ordered.end(),
            [](const Channel* a, const Channel* b) { return a->id < b->id; });

  for (const Channel* ch : ordered) {
    const ChannelStats& s = ch->stats;
    w.begin_object();
    w.field("id", ch->id);
    w.field("app_space", ch->app_space);
    w.field("raw", ch->raw);
    w.field("local", net::Ipv4Addr{ch->flow.local_ip}.to_string() + ":" +
                         std::to_string(ch->flow.local_port));
    w.field("remote", net::Ipv4Addr{ch->flow.remote_ip}.to_string() + ":" +
                          std::to_string(ch->flow.remote_port));
    w.field("ip_proto", static_cast<std::uint32_t>(ch->flow.ip_proto));
    w.field("rx_bqi", static_cast<std::uint32_t>(ch->rx_bqi));
    w.field("ring_capacity", ch->ring_capacity);
    w.field("ring_depth", static_cast<std::uint64_t>(ch->ring.size()));
    w.field("delivered", s.delivered);
    w.field("bytes_rx", s.bytes_rx);
    w.field("ring_drops", s.ring_drops);
    w.field("max_ring_depth", s.max_ring_depth);
    w.field("sends", s.sends);
    w.field("bytes_tx", s.bytes_tx);
    w.field("send_rejects", s.send_rejects);
    w.field("signals", s.signals);
    w.field("signals_suppressed", s.signals_suppressed);
    w.field("forgery_strikes", s.forgery_strikes);
    w.field("quarantined", ch->quarantined);
    w.end_object();
  }
  w.end_array();

  w.key("totals").begin_object();
  w.field("delivered", counters_.delivered);
  w.field("ring_drops", counters_.ring_drops);
  w.field("sends", counters_.sends);
  w.field("send_rejects", counters_.send_rejects);
  w.field("signals_suppressed", counters_.signals_suppressed);
  w.field("demux_hash_hits", counters_.demux_hash_hits);
  w.field("demux_fallback_walks", counters_.demux_fallback_walks);
  w.field("demux_trie_hits", counters_.demux_trie_hits);
  w.field("demux_trie_rebuilds", counters_.demux_trie_rebuilds);
  w.field("demux_diff_mismatches", counters_.demux_diff_mismatches);
  w.field("default_deliveries", counters_.default_deliveries);
  w.field("unclaimed_drops", counters_.unclaimed_drops);
  w.field("tx_backpressure", counters_.tx_backpressure);
  w.field("channels_reclaimed", counters_.channels_reclaimed);
  w.field("buffers_reclaimed", counters_.buffers_reclaimed);
  w.field("tx_gather_frames", counters_.tx_gather_frames);
  w.field("tenant_tx_policed", counters_.tenant_tx_policed);
  w.field("tenant_ring_quota_hits", counters_.tenant_ring_quota_hits);
  w.field("tenant_loan_budget_hits", counters_.tenant_loan_budget_hits);
  w.field("forgery_strikes", counters_.forgery_strikes);
  w.field("tenant_quarantines", counters_.tenant_quarantines);
  w.end_object();

  w.key("hist").begin_object();
  w.field_raw("ring_residency_ns", ring_hist_.dump_json());
  w.field_raw("wakeup_latency_ns", wakeup_hist_.dump_json());
  w.end_object();
  w.end_object();
  return w.take();
}

std::uint64_t NetIoModule::total_ring_depth() const {
  std::uint64_t depth = 0;
  for (const auto& [id, ch] : channels_) depth += ch.ring.size();
  return depth;
}

void NetIoModule::register_telemetry(sim::Telemetry& t,
                                     const std::string& prefix) {
  demand_tracking_ = true;
  t.register_counter(prefix + ".delivered",
                     [this] { return counters_.delivered; }, "packets");
  t.register_counter(prefix + ".sends", [this] { return counters_.sends; },
                     "packets");
  t.register_counter(prefix + ".ring_drops",
                     [this] { return counters_.ring_drops; }, "packets");
  t.register_counter(prefix + ".tx_backpressure",
                     [this] { return counters_.tx_backpressure; }, "sends");
  t.register_counter(prefix + ".tenant_tx_policed",
                     [this] { return counters_.tenant_tx_policed; }, "sends");
  t.register_gauge(prefix + ".ring_depth",
                   [this] { return total_ring_depth(); }, "packets");
}

void NetIoModule::register_tenant_telemetry(sim::Telemetry& t,
                                            const std::string& name,
                                            sim::SpaceId space) {
  demand_tracking_ = true;
  t.register_counter(name + ".demand_bytes",
                     [this, space] { return tx_demand_bytes(space); },
                     "bytes");
  t.register_gauge(name + ".rx_slots", [this, space] {
    const std::int64_t slots = space_rx_slots(space);
    return slots > 0 ? static_cast<std::uint64_t>(slots) : 0;
  }, "slots");
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

bool NetIoModule::template_matches(const Channel& ch, std::uint16_t ethertype,
                                   buf::ByteView payload) const {
  if (ch.raw) return ethertype == ch.raw_ethertype;
  if (ethertype != ch.flow.ethertype) return false;
  auto flow = outgoing_flow(payload);
  if (!flow) return false;
  return flow->ip_proto == ch.flow.ip_proto &&
         flow->local_ip == ch.flow.local_ip &&
         (ch.flow.local_port == 0 ||
          flow->local_port == ch.flow.local_port) &&
         (ch.flow.remote_ip == 0 || flow->remote_ip == ch.flow.remote_ip) &&
         (ch.flow.remote_port == 0 ||
          flow->remote_port == ch.flow.remote_port);
}

bool NetIoModule::channel_send(sim::TaskCtx& ctx, ChannelId id,
                               os::PortId cap, sim::SpaceId caller_space,
                               std::uint16_t ethertype, buf::Bytes payload,
                               net::MacAddr dst_override,
                               std::uint64_t trace_id) {
  const SendStatus st =
      channel_send_status(ctx, id, cap, caller_space, ethertype, payload,
                          dst_override, trace_id);
  if (st == SendStatus::kBackpressure) {
    // Legacy callers do not retry: the packet is dropped here and a
    // reliable transport above recovers by retransmission.
    if (buf::PacketPool* pool = nic_.pool()) pool->recycle(std::move(payload));
  }
  return st == SendStatus::kOk;
}

NetIoModule::SendStatus NetIoModule::channel_send_status(
    sim::TaskCtx& ctx, ChannelId id, os::PortId cap, sim::SpaceId caller_space,
    std::uint16_t ethertype, buf::Bytes& payload, net::MacAddr dst_override,
    std::uint64_t trace_id) {
  os::Kernel& k = host_.kernel();
  // Specialized kernel entry point (much cheaper than a generic trap).
  k.fast_trap(ctx);

  Channel* ch = find(id);
  sim::Cpu& cpu = host_.cpu();
  sim::Metrics& m = cpu.metrics();
  m.template_checks++;
  ctx.charge(cpu.cost().template_match);
  cpu.trace(sim::TraceEventType::kTemplateCheck, id,
            static_cast<std::int64_t>(payload.size()));
  if (ch != nullptr && ch->quarantined) {
    // Quarantined channels refuse everything, forged or not; the registry's
    // teardown is already in flight.
    counters_.send_rejects++;
    ch->stats.send_rejects++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "quarantined");
    return SendStatus::kRejected;
  }
  if (ch == nullptr || cap != ch->cap ||
      !k.port_has_send_right(cap, caller_space) ||
      caller_space != ch->app_space ||
      !template_matches(*ch, ethertype, payload)) {
    m.template_rejects++;
    counters_.send_rejects++;
    if (ch != nullptr) ch->stats.send_rejects++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space);
    // A reject where the caller *did* hold the channel's own capability is
    // a forgery attempt by the owner, not a stray id: strike it.
    if (ch != nullptr && cap == ch->cap && caller_space == ch->app_space &&
        k.port_has_send_right(cap, caller_space)) {
      note_forgery_strike(ctx, *ch);
    }
    return SendStatus::kRejected;
  }

  net::MacAddr dst = ch->peer_mac;
  const bool has_override = dst_override != net::MacAddr{};
  if (has_override) {
    if (!ch->raw && ch->flow.remote_ip != 0) {
      // Fully bound channel: the destination is part of the template.
      m.template_rejects++;
      counters_.send_rejects++;
      ch->stats.send_rejects++;
      cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space);
      note_forgery_strike(ctx, *ch);
      return SendStatus::kRejected;
    }
    dst = dst_override;
  }

  // Validated intent: everything from here on (policer refusal included)
  // counts toward the tenant's demand series.
  if (demand_tracking_) tx_demand_bytes_[ch->app_space] += payload.size();

  // The token-bucket policer sits between validation and the device: a
  // policed send is a policy refusal (kBackpressure -- honest libraries
  // back off and retry; a flood is simply refused at the tenant's rate).
  if (policy_.enabled &&
      !tx_policer_allows(ctx, ch->app_space, payload.size())) {
    counters_.tenant_tx_policed++;
    m.tenant_tx_policed++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "tx_policed");
    return SendStatus::kBackpressure;
  }

  // Validation passed; now the device gets a say. A full transmit ring (or
  // an injected throttle) refuses the packet *after* the caller has paid
  // the trap and template costs -- exactly what a real driver would do.
  // The payload stays with the caller for the retry.
  if (tx_throttle_remaining_ > 0 || nic_.tx_ring_full()) {
    if (tx_throttle_remaining_ > 0) tx_throttle_remaining_--;
    counters_.tx_backpressure++;
    m.netio_tx_backpressure++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "backpressure");
    return SendStatus::kBackpressure;
  }

  counters_.sends++;
  ch->stats.sends++;
  ch->stats.bytes_tx += payload.size();
  cpu.trace(sim::TraceEventType::kPacketTx, id,
            static_cast<std::int64_t>(payload.size()), ethertype, nullptr,
            trace_id);
  net::Frame f = frame_for(nic_, dst, ethertype, payload, ch->tx_bqi);
  f.trace_id = trace_id;  // 0 = let the NIC stamp it at the wire boundary
  // The payload has been framed; its storage is dead weight from here on.
  if (buf::PacketPool* pool = nic_.pool()) pool->recycle(std::move(payload));
  nic_.transmit(ctx, std::move(f));
  return SendStatus::kOk;
}

NetIoModule::SendStatus NetIoModule::channel_send_gather(
    sim::TaskCtx& ctx, ChannelId id, os::PortId cap, sim::SpaceId caller_space,
    std::uint16_t ethertype, buf::Bytes& headers, buf::ByteView payload,
    std::uint64_t trace_id) {
  os::Kernel& k = host_.kernel();
  k.fast_trap(ctx);

  Channel* ch = find(id);
  sim::Cpu& cpu = host_.cpu();
  sim::Metrics& m = cpu.metrics();
  m.template_checks++;
  ctx.charge(cpu.cost().template_match);
  cpu.trace(sim::TraceEventType::kTemplateCheck, id,
            static_cast<std::int64_t>(headers.size() + payload.size()));
  if (ch != nullptr && ch->quarantined) {
    counters_.send_rejects++;
    ch->stats.send_rejects++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "quarantined");
    return SendStatus::kRejected;
  }
  // The header template inspects only the first 24 bytes of the IP
  // datagram, all of which travel in `headers`; the payload riding by
  // reference is invisible to the check, so gather weakens nothing in the
  // paper's protection argument.
  if (ch == nullptr || cap != ch->cap ||
      !k.port_has_send_right(cap, caller_space) ||
      caller_space != ch->app_space ||
      !template_matches(*ch, ethertype,
                        buf::ByteView(headers.data(), headers.size()))) {
    m.template_rejects++;
    counters_.send_rejects++;
    if (ch != nullptr) ch->stats.send_rejects++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space);
    if (ch != nullptr && cap == ch->cap && caller_space == ch->app_space &&
        k.port_has_send_right(cap, caller_space)) {
      note_forgery_strike(ctx, *ch);
    }
    return SendStatus::kRejected;
  }

  if (demand_tracking_) {
    tx_demand_bytes_[ch->app_space] += headers.size() + payload.size();
  }

  if (policy_.enabled &&
      !tx_policer_allows(ctx, ch->app_space,
                         headers.size() + payload.size())) {
    counters_.tenant_tx_policed++;
    m.tenant_tx_policed++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "tx_policed");
    return SendStatus::kBackpressure;
  }

  if (tx_throttle_remaining_ > 0 || nic_.tx_ring_full()) {
    if (tx_throttle_remaining_ > 0) tx_throttle_remaining_--;
    counters_.tx_backpressure++;
    m.netio_tx_backpressure++;
    cpu.trace(sim::TraceEventType::kTemplateReject, id, caller_space, 0,
              "backpressure");
    return SendStatus::kBackpressure;
  }

  const std::size_t total = headers.size() + payload.size();
  counters_.sends++;
  counters_.tx_gather_frames++;
  m.tx_gather_frames++;
  ch->stats.sends++;
  ch->stats.bytes_tx += total;
  cpu.trace(sim::TraceEventType::kPacketTx, id,
            static_cast<std::int64_t>(total), ethertype, nullptr, trace_id);
  net::Frame f = frame_for_gather(
      nic_, ch->peer_mac, ethertype,
      buf::ByteView(headers.data(), headers.size()), payload, ch->tx_bqi);
  f.trace_id = trace_id;
  if (buf::PacketPool* pool = nic_.pool()) pool->recycle(std::move(headers));
  nic_.transmit(ctx, std::move(f));
  return SendStatus::kOk;
}

// ---------------------------------------------------------------------------
// Tenant policing
// ---------------------------------------------------------------------------

bool NetIoModule::channel_quarantined(ChannelId id) const {
  const Channel* ch = find(id);
  return ch != nullptr && ch->quarantined;
}

bool NetIoModule::tx_policer_allows(sim::TaskCtx& ctx, sim::SpaceId space,
                                    std::size_t bytes) {
  std::uint64_t rate = policy_.tx_rate_bps;
  if (auto it = tx_rate_overrides_.find(space);
      it != tx_rate_overrides_.end() && it->second != 0) {
    rate = it->second;
  }
  if (rate == 0) return true;  // unprovisioned space: unlimited
  TenantAccount& a = accounts_[space];
  const sim::Time now = ctx.now();
  if (!a.init) {
    a.tokens = policy_.tx_burst_bytes;  // a fresh tenant starts with a burst
    a.last_refill = now;
    a.init = true;
  }
  if (now > a.last_refill) {
    // Integer refill: bytes = dt_ns * rate_bps / 8e9, with the division
    // remainder carried in `frac` so slicing the refills loses nothing.
    // The 128-bit product cannot overflow for any simulated dt and rate.
    constexpr std::uint64_t kDen = 8'000'000'000ULL;  // bits/byte * ns/s
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(now - a.last_refill) * rate + a.frac;
    const std::uint64_t earned = static_cast<std::uint64_t>(prod / kDen);
    a.frac = static_cast<std::uint64_t>(prod % kDen);
    a.tokens = std::min(policy_.tx_burst_bytes, a.tokens + earned);
    a.last_refill = now;
  }
  if (a.tokens < bytes) return false;
  a.tokens -= bytes;
  return true;
}

std::int64_t NetIoModule::space_rx_slots(sim::SpaceId space) const {
  std::int64_t held = 0;
  for (const auto& [id, ch] : channels_) {
    if (ch.app_space != space) continue;
    held += static_cast<std::int64_t>(ch.ring.size());
    if (an1_ && ch.rx_bqi != 0) {
      held += static_cast<const hw::An1Nic&>(nic_).posted_buffers(ch.rx_bqi);
    }
  }
  return held;
}

void NetIoModule::note_forgery_strike(sim::TaskCtx& ctx, Channel& ch) {
  if (!policy_.enabled) return;
  sim::Metrics& m = host_.cpu().metrics();
  ch.stats.forgery_strikes++;
  counters_.forgery_strikes++;
  m.forgery_strikes++;
  if (policy_.forgery_strike_limit > 0 && !ch.quarantined &&
      ch.stats.forgery_strikes >=
          static_cast<std::uint64_t>(policy_.forgery_strike_limit)) {
    ch.quarantined = true;
    counters_.tenant_quarantines++;
    m.tenant_quarantines++;
    host_.cpu().trace(sim::TraceEventType::kTemplateReject, ch.id,
                      ch.app_space, 0, "quarantine");
    if (quarantine_handler_) quarantine_handler_(ctx, ch.id, ch.app_space);
  }
}

// ---------------------------------------------------------------------------
// Fault injection & reclamation support
// ---------------------------------------------------------------------------

void NetIoModule::channel_drop_next_wakeup(ChannelId id) {
  if (Channel* ch = find(id)) ch->sem->drop_next_wakeup();
}

int NetIoModule::exhaust_channel(ChannelId id) {
  Channel* ch = find(id);
  if (ch == nullptr) return 0;
  int discarded = static_cast<int>(ch->ring.size());
  close_ring_spans(*ch);
  if (buf::PacketPool* pool = nic_.pool()) {
    for (RxPacket& p : ch->ring) {
      if (p.loan.engaged()) {
        p.loan.release(static_cast<std::uint64_t>(host_.loop().now()));
      } else {
        pool->recycle(std::move(p.payload));
      }
    }
  }
  ch->ring.clear();
  if (an1_ && ch->rx_bqi != 0) {
    discarded +=
        static_cast<hw::An1Nic&>(nic_).drain_buffers(ch->rx_bqi);
  }
  return discarded;
}

void NetIoModule::channel_replenish(ChannelId id) {
  Channel* ch = find(id);
  if (ch == nullptr || !an1_ || ch->rx_bqi == 0) return;
  auto& an1nic = static_cast<hw::An1Nic&>(nic_);
  if (an1nic.posted_buffers(ch->rx_bqi) != 0) return;
  int n = ch->ring_capacity;
  if (policy_.enabled && policy_.ring_slot_quota > 0) {
    // Recovery must not hand a refill-starver more slots than any
    // well-behaved tenant may hold: the repost is bounded by the owner's
    // remaining quota (ring occupancy + posted buffers across its channels).
    const std::int64_t room =
        static_cast<std::int64_t>(policy_.ring_slot_quota) -
        space_rx_slots(ch->app_space);
    if (room <= 0) return;
    n = static_cast<int>(
        std::min<std::int64_t>(static_cast<std::int64_t>(n), room));
  }
  an1nic.post_buffers(ch->rx_bqi, n);
}

std::vector<ChannelId> NetIoModule::channels_of_space(
    sim::SpaceId space) const {
  std::vector<ChannelId> ids;
  for (const auto& [id, ch] : channels_) {
    if (ch.app_space == space) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t NetIoModule::channel_ring_depth(ChannelId id) const {
  const Channel* ch = find(id);
  return ch == nullptr ? 0 : ch->ring.size();
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void NetIoModule::rx(sim::TaskCtx& ctx, net::Frame& f, std::uint16_t bqi) {
  const sim::ProfileScope prof(host_.cpu(), sim::CpuComponent::kDemux);
  const std::size_t lh = link_header_size();
  if (f.bytes.size() < lh) return;
  std::uint16_t ethertype = 0;
  std::uint16_t advert = 0;
  if (an1_) {
    auto h = net::An1Header::parse(f.bytes);
    if (!h) return;
    ethertype = h->ethertype;
    advert = h->bqi_advert;
  } else {
    auto h = net::EthHeader::parse(f.bytes);
    if (!h) return;
    ethertype = h->ethertype;
  }
  host_.cpu().trace(sim::TraceEventType::kPacketRx, 0,
                    static_cast<std::int64_t>(f.bytes.size() - lh), ethertype,
                    nullptr, f.trace_id);

  // Instead of copying the payload out of the frame, steal the frame's
  // storage and trim the link header in place (a memmove, no allocation).
  // Classification must look at the intact frame, so the steal happens
  // after each path has finished reading the link header / filter bytes.
  auto steal_payload = [&f, lh]() {
    buf::Bytes payload = std::move(f.bytes);
    payload.erase(payload.begin(), payload.begin() + static_cast<long>(lh));
    return payload;
  };

  if (an1_) {
    // Hardware demultiplexing already happened in the controller (the BQI
    // selected the ring); its device-management cost was charged by the
    // NIC model.
    if (bqi != hw::An1Nic::kKernelBqi) {
      if (auto it = by_bqi_.find(bqi); it != by_bqi_.end()) {
        deliver(ctx, channels_[it->second], ethertype, steal_payload(),
                f.trace_id);
        return;
      }
    }
    deliver_default(ctx, ethertype, steal_payload(), advert);
    return;
  }

  // Ethernet: software demultiplexing in the kernel.
  Channel* ch = classify_software(ctx, f);
  if (ch != nullptr) {
    deliver(ctx, *ch, ethertype, steal_payload(), f.trace_id);
  } else {
    deliver_default(ctx, ethertype, steal_payload(), advert);
  }
}

NetIoModule::Channel* NetIoModule::classify_software(sim::TaskCtx& ctx,
                                                     const net::Frame& f) {
  sim::Metrics& m = host_.cpu().metrics();
  const auto& cost = host_.cpu().cost();
  m.demux_software_runs++;

  if (demux_mode_ != DemuxMode::kSynthesized) {
    if (!filter_aggregation_) return classify_walk(&ctx, f, demux_mode_);
    Channel* ch = classify_aggregated(ctx, f);
    if (demux_differential_) {
      // Shadow reference: the uncharged paper-accurate walk must agree
      // frame-for-frame. Disagreements are counted, never acted on -- the
      // aggregated verdict stands so a mismatch is observable, not masked.
      Channel* ref = classify_walk(nullptr, f, demux_mode_);
      if (ref != ch) {
        counters_.demux_diff_mismatches++;
        m.demux_diff_mismatches++;
      }
    }
    return ch;
  }

  // The production path: one fixed charge covers the synthesized matcher
  // plus the binding-table hash (Table 5's software line already includes
  // "hash of the binding table"). The incoming flow is probed at three
  // specificities -- exact connection, listening/connectionless binding
  // (remote side wild), then protocol-wide binding (ports wild too) -- so
  // the most specific template wins regardless of creation order.
  ctx.charge(cost.demux_software);
  if (auto flow = filter::extract_flow(f.bytes, net::EthHeader::kSize,
                                       net::EthHeader::kSize - 2)) {
    filter::FlowKey probe = *flow;
    for (int round = 0; round < 3; ++round) {
      if (round == 1) {
        probe.remote_ip = 0;
        probe.remote_port = 0;
      } else if (round == 2) {
        probe.local_port = 0;
      }
      if (auto it = bind_table_.find(probe); it != bind_table_.end()) {
        m.demux_hash_hits++;
        counters_.demux_hash_hits++;
        return find(it->second);
      }
    }
  }
  if (!raw_by_ethertype_.empty()) {
    if (auto h = net::EthHeader::parse(f.bytes)) {
      if (auto it = raw_by_ethertype_.find(h->ethertype);
          it != raw_by_ethertype_.end()) {
        m.demux_hash_hits++;
        counters_.demux_hash_hits++;
        return find(it->second);
      }
    }
  }

  // Hash miss: nonstandard template shapes (or no binding at all) fall back
  // to the walk, paying per binding actually compared against.
  m.demux_fallback_walks++;
  counters_.demux_fallback_walks++;
  return classify_walk(&ctx, f, DemuxMode::kSynthesized);
}

NetIoModule::Channel* NetIoModule::classify_walk(sim::TaskCtx* ctx,
                                                 const net::Frame& f,
                                                 DemuxMode mode) {
  const auto& cost = host_.cpu().cost();
  const auto eth = net::EthHeader::parse(f.bytes);
  for (ChannelId id : binding_order_) {
    Channel* chp = find(id);
    if (chp == nullptr) continue;
    Channel& ch = *chp;
    if (ch.raw) {
      // Raw bindings dispatch on the ethertype already decoded by rx();
      // no extra compare is charged in any mode.
      if (eth && eth->ethertype == ch.raw_ethertype) return &ch;
      continue;
    }
    switch (mode) {
      case DemuxMode::kSynthesized:
        // The synthesized code dispatches on ethertype first (free: rx()
        // already decoded it), then pays one template compare.
        if (!eth || eth->ethertype != ch.flow.ethertype) continue;
        if (ctx != nullptr) ctx->charge(cost.demux_fallback_per_binding);
        if (ch.synth && ch.synth->run(f.bytes).accept) return &ch;
        break;
      case DemuxMode::kBpf:
      case DemuxMode::kCspf: {
        // Interpreted filters: pay per executed VM instruction, per binding
        // tried, as the original Packet Filter did.
        filter::RunResult r;
        sim::Time per_insn = 0;
        if (mode == DemuxMode::kBpf && ch.bpf) {
          r = ch.bpf->run(f.bytes);
          per_insn = cost.filter_bpf_per_insn;
        } else if (ch.cspf) {
          r = ch.cspf->run(f.bytes);
          per_insn = cost.filter_interp_per_insn;
        }
        if (ctx != nullptr) ctx->charge(r.instructions * per_insn);
        if (r.accept) return &ch;
        break;
      }
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Aggregated demux (one-pass trie over the interpreted programs)
// ---------------------------------------------------------------------------

void NetIoModule::aggregate_bind(const Channel& ch) {
  if (!agg_valid_) return;  // stale anyway; next classify recompiles
  if (ch.raw) {
    // Raw bindings are an ethertype-only predicate in every mode.
    agg_.insert(ch.id, {{{net::EthHeader::kSize - 2, 2, 0xffffu},
                         ch.raw_ethertype}});
    return;
  }
  std::optional<std::vector<filter::FilterPredicate>> preds;
  if (agg_mode_ == DemuxMode::kBpf && ch.bpf) {
    preds = filter::analyze_bpf(ch.bpf->program());
  } else if (agg_mode_ == DemuxMode::kCspf && ch.cspf) {
    preds = filter::analyze_cspf(ch.cspf->program());
  }
  if (preds) {
    agg_.insert(ch.id, *preds);
  } else {
    agg_residual_.push_back(ch.id);  // ids grow, so order stays ascending
  }
}

void NetIoModule::ensure_aggregate() {
  if (agg_valid_ && agg_mode_ == demux_mode_) return;
  agg_.clear();
  agg_residual_.clear();
  agg_mode_ = demux_mode_;
  agg_valid_ = true;
  counters_.demux_trie_rebuilds++;
  host_.cpu().metrics().demux_trie_rebuilds++;
  for (ChannelId id : binding_order_) {
    if (const Channel* ch = find(id)) aggregate_bind(*ch);
  }
}

std::size_t NetIoModule::trie_nodes() {
  if (filter_aggregation_ && demux_mode_ != DemuxMode::kSynthesized) {
    ensure_aggregate();
  }
  return agg_.node_count();
}

NetIoModule::Channel* NetIoModule::classify_aggregated(sim::TaskCtx& ctx,
                                                       const net::Frame& f) {
  ensure_aggregate();
  sim::Metrics& m = host_.cpu().metrics();
  const auto& cost = host_.cpu().cost();
  const auto res = agg_.classify(f.bytes);
  // One pass: a masked load per tested dimension plus a node expansion per
  // trie step -- header-depth cost, independent of how many bindings share
  // the trie.
  ctx.charge(static_cast<sim::Time>(res.nodes_visited + res.loads) *
             cost.demux_trie_node);
  ChannelId best = res.best;
  // Residual programs the analyzer could not fold run interpreted, in walk
  // order; ids are ascending, so stop once past the trie's candidate.
  for (ChannelId id : agg_residual_) {
    if (best != 0 && id > best) break;
    Channel* ch = find(id);
    if (ch == nullptr || ch->raw) continue;
    filter::RunResult r;
    sim::Time per_insn = 0;
    if (agg_mode_ == DemuxMode::kBpf && ch->bpf) {
      r = ch->bpf->run(f.bytes);
      per_insn = cost.filter_bpf_per_insn;
    } else if (ch->cspf) {
      r = ch->cspf->run(f.bytes);
      per_insn = cost.filter_interp_per_insn;
    }
    ctx.charge(r.instructions * per_insn);
    if (r.accept) {
      best = id;
      break;
    }
  }
  if (best == 0) return nullptr;
  counters_.demux_trie_hits++;
  m.demux_trie_hits++;
  return find(best);
}

void NetIoModule::deliver(sim::TaskCtx& ctx, Channel& ch,
                          std::uint16_t ethertype, buf::Bytes payload,
                          std::uint64_t trace_id) {
  sim::Cpu& cpu = host_.cpu();
  if (policy_.enabled && policy_.ring_slot_quota > 0 &&
      space_rx_slots(ch.app_space) >=
          static_cast<std::int64_t>(policy_.ring_slot_quota)) {
    // The owner already holds its full slot quota across its channels: the
    // delivery is dropped at the tenant boundary, not queued against the
    // shared pool. Reliable transports above recover by retransmission.
    counters_.tenant_ring_quota_hits++;
    cpu.metrics().tenant_ring_quota_hits++;
    counters_.ring_drops++;
    ch.stats.ring_drops++;
    cpu.metrics().demux_drops++;
    cpu.metrics().netio_ring_drops++;
    cpu.trace(sim::TraceEventType::kDemuxDrop, ch.id,
              static_cast<std::int64_t>(ch.ring.size()), 0, "tenant_quota",
              trace_id);
    return;
  }
  if (static_cast<int>(ch.ring.size()) >= ch.ring_capacity) {
    counters_.ring_drops++;
    ch.stats.ring_drops++;
    cpu.metrics().demux_drops++;
    cpu.metrics().netio_ring_drops++;
    cpu.trace(sim::TraceEventType::kDemuxDrop, ch.id,
              static_cast<std::int64_t>(ch.ring.size()), 0, "ring_full",
              trace_id);
    return;
  }
  // The packet lands in the pinned shared region: no copy toward the
  // application, only the ring bookkeeping and (maybe) a signal.
  ch.stats.delivered++;
  ch.stats.bytes_rx += payload.size();
  cpu.trace(sim::TraceEventType::kDemuxMatch, ch.id,
            static_cast<std::int64_t>(payload.size()), ethertype, nullptr,
            trace_id);
  if (sim::Tracer* t = cpu.tracer();
      t != nullptr && t->enabled() && trace_id != 0) {
    t->span_begin(ctx.now(), cpu.host_ord(), "rxring", trace_id,
                  static_cast<std::int64_t>(ch.id));
  }
  RxPacket pkt;
  pkt.ethertype = ethertype;
  pkt.payload = std::move(payload);
  pkt.trace_id = trace_id;
  pkt.enqueued_at = ctx.now();
  if (rx_loans_) {
    if (buf::PacketPool* pool = nic_.pool()) {
      if (policy_.enabled && policy_.loan_budget > 0 &&
          pool->loans_of_owner(ch.app_space) >= policy_.loan_budget) {
        // Loan budget exhausted (a hoarder sitting on its loans): the
        // packet still arrives, but as an owned copy -- the selective-copy
        // fallback -- so the loan table stays bounded per tenant.
        counters_.tenant_loan_budget_hits++;
        cpu.metrics().tenant_loan_budget_hits++;
      } else {
        // Zero-copy mode: the packet's storage becomes a loan owned by the
        // application space; the slot recycles only on explicit release (or
        // a dead-client sweep).
        pkt.loan = pool->loan_out(std::move(pkt.payload), ch.app_space,
                                  static_cast<std::uint64_t>(ctx.now()));
        pkt.payload = buf::Bytes{};
      }
    }
  }
  ch.ring.push_back(std::move(pkt));
  ch.stats.max_ring_depth =
      std::max<std::uint64_t>(ch.stats.max_ring_depth, ch.ring.size());
  counters_.delivered++;
  if (!ch.notify_pending || !batched_signals_) {
    ch.notify_pending = true;
    ch.stats.signals++;
    ch.sem->signal(ctx);
  } else {
    counters_.signals_suppressed++;  // batched under an outstanding signal
    ch.stats.signals_suppressed++;
  }
}

void NetIoModule::deliver_default(sim::TaskCtx& ctx, std::uint16_t ethertype,
                                  buf::Bytes payload,
                                  std::uint16_t bqi_advert) {
  if (!default_handler_) {
    counters_.unclaimed_drops++;
    host_.cpu().metrics().netio_unclaimed_drops++;
    host_.cpu().trace(sim::TraceEventType::kDemuxDrop, 0,
                      static_cast<std::int64_t>(payload.size()), ethertype,
                      "unclaimed");
    return;
  }
  counters_.default_deliveries++;
  // The registry server does not use shared-memory channels; packets reach
  // it through standard Mach IPC (paper Section 4, setup-cost item 1).
  host_.kernel().ipc_send(
      ctx, default_space_, payload.size(),
      [this, ethertype, p = std::move(payload), bqi_advert](
          sim::TaskCtx& rctx) mutable {
        default_handler_(rctx, ethertype, std::move(p), bqi_advert);
      });
}

// ---------------------------------------------------------------------------
// Library-side ring operations
// ---------------------------------------------------------------------------

bool NetIoModule::redeliver(sim::TaskCtx& ctx, ChannelId id,
                            std::uint16_t ethertype, buf::Bytes payload) {
  Channel* ch = find(id);
  if (ch == nullptr) return false;
  deliver(ctx, *ch, ethertype, std::move(payload));
  return true;
}

std::optional<NetIoModule::RxPacket> NetIoModule::channel_pop(ChannelId id) {
  Channel* ch = find(id);
  if (ch == nullptr || ch->ring.empty()) return std::nullopt;
  RxPacket p = std::move(ch->ring.front());
  ch->ring.pop_front();
  sim::Cpu& cpu = host_.cpu();
  const sim::Time now = cpu.trace_now();
  if (now >= p.enqueued_at) ring_hist_.record(now - p.enqueued_at);
  if (sim::Tracer* t = cpu.tracer();
      t != nullptr && t->enabled() && p.trace_id != 0) {
    t->span_end(now, cpu.host_ord(), "rxring", p.trace_id);
  }
  return p;
}

void NetIoModule::close_ring_spans(const Channel& ch) {
  sim::Cpu& cpu = host_.cpu();
  sim::Tracer* t = cpu.tracer();
  if (t == nullptr || !t->enabled()) return;
  const sim::Time now = cpu.trace_now();
  for (const RxPacket& p : ch.ring) {
    if (p.trace_id != 0) {
      t->span_end(now, cpu.host_ord(), "rxring", p.trace_id);
    }
  }
}

bool NetIoModule::channel_rearm(ChannelId id) {
  Channel* ch = find(id);
  if (ch == nullptr) return false;
  ch->notify_pending = false;
  if (!ch->ring.empty()) {
    ch->notify_pending = true;  // keep ownership; caller drains again
    return true;
  }
  return false;
}

void NetIoModule::channel_wait(ChannelId id, os::Semaphore::WaitFn fn) {
  Channel* ch = find(id);
  if (ch == nullptr) return;
  ch->sem->wait(std::move(fn));
}

void NetIoModule::channel_post_buffers(ChannelId id, int n) {
  Channel* ch = find(id);
  if (ch == nullptr) return;
  if (an1_ && ch->rx_bqi != 0) {
    static_cast<hw::An1Nic&>(nic_).post_buffers(ch->rx_bqi, n);
  }
}

}  // namespace ulnet::core
