// The registry server (paper Section 3.4): a trusted, privileged process --
// one per protocol -- that owns the connection name space and performs every
// operation too sensitive for untrusted libraries:
//
//   * allocates and quarantines TCP ports (names must be unique per host and
//     respect the post-close delay),
//   * executes the three-way handshake through its *own* instance of the
//     protocol stack, reaching the device through standard Mach IPC (the
//     expensive path -- which is fine, it is off the data path),
//   * exchanges BQIs with the remote peer through the AN1 link header's
//     spare field during the handshake,
//   * creates the per-connection channel in the network I/O module (shared
//     region, send capability, header template, demux binding),
//   * transfers the established TCP state into the application's library,
//   * inherits connections when an application dies, issuing the RST and
//     holding the 2*MSL quiet period before the port can be reused.
//
// After the hand-off the registry is completely out of the data path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/exec_env.h"
#include "core/netio_module.h"
#include "os/world.h"
#include "proto/stack.h"

namespace ulnet::core {

// Everything the library needs to adopt a connection.
struct HandoffInfo {
  proto::TcpHandoffState state;
  NetIoModule* netio = nullptr;
  ChannelId channel = kInvalidChannel;
  os::PortId cap = os::kInvalidPort;
  net::MacAddr peer_mac;
  std::uint64_t request_id = 0;  // echo of the connect request; 0 = accepted
  std::uint16_t listen_port = 0;  // for accepted connections
};

// Implemented by the user-level application/library side.
class RegistryClient {
 public:
  virtual ~RegistryClient() = default;
  [[nodiscard]] virtual sim::SpaceId client_space() const = 0;
  // Invoked in the client's space once the registry finished a setup.
  virtual void handoff(HandoffInfo info) = 0;
  virtual void connect_failed(std::uint64_t request_id,
                              const std::string& reason) = 0;
};

class RegistryServer : public proto::TcpObserver {
 public:
  // Timing of the phases of the most recent completed connection setup
  // (the Table 4 breakdown).
  struct SetupTiming {
    sim::Time request_sent = 0;     // app issued the request
    sim::Time request_received = 0; // registry picked it up
    sim::Time outbound_done = 0;    // local outbound processing complete
    sim::Time handshake_done = 0;   // three-way handshake completed
    sim::Time channel_done = 0;     // user channel to the device ready
    sim::Time handoff_done = 0;     // state transferred into the library
  };

  RegistryServer(os::World& world, os::Host& host,
                 std::vector<NetIoModule*> netios);
  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  [[nodiscard]] sim::SpaceId space() const { return space_; }
  proto::NetworkStack& stack() { return *stack_; }

  // ---- Client RPCs (call from a task in the client's space; the IPC to
  // the registry is performed inside) ----
  void connect_request(sim::TaskCtx& ctx, RegistryClient* client,
                       std::uint64_t request_id, net::Ipv4Addr dst,
                       std::uint16_t dport, proto::TcpConfig cfg);
  void listen_request(sim::TaskCtx& ctx, RegistryClient* client,
                      std::uint16_t port, proto::TcpConfig cfg);
  // Wildcard channel for a connectionless protocol library (e.g. RRP):
  // bound to (our IP, ip_proto), remote side and ports wild. The paper's
  // Section 5 notes connectionless protocols are the harder case for this
  // architecture; the registry still mediates creation and the template
  // still pins the source fields.
  void protocol_channel_request(sim::TaskCtx& ctx, RegistryClient* client,
                                NetIoModule* netio, std::uint8_t ip_proto,
                                std::function<void(ChannelId, os::PortId)>
                                    done);

  // Raw (ethertype-bound) channel for protocol-free exchanges (Table 1).
  void raw_request(sim::TaskCtx& ctx, RegistryClient* client,
                   NetIoModule* netio, std::uint16_t ethertype,
                   net::MacAddr peer_mac,
                   std::function<void(ChannelId, os::PortId)> done);

  // Orderly teardown: the library is done with a channel.
  void release_channel(sim::TaskCtx& ctx, NetIoModule* netio, ChannelId id,
                       std::uint16_t local_port);
  // Abnormal termination: the registry inherits the connection, resets the
  // peer and quarantines the port for 2*MSL.
  void inherit_connection(sim::TaskCtx& ctx, proto::TcpHandoffState state,
                          NetIoModule* netio, ChannelId id);

  // ---- Dead-client reclamation (crash-fault path) ----
  // What one or more client_died sweeps recovered, cumulatively.
  struct ReclaimStats {
    std::uint64_t clients = 0;            // spaces swept
    std::uint64_t channels = 0;           // channels destroyed
    std::uint64_t rsts_sent = 0;          // peers reset on the dead app's behalf
    std::uint64_t ports_quarantined = 0;  // 2*MSL quiet periods started
    std::uint64_t pending_aborted = 0;    // half-done handshakes torn down
    std::uint64_t listeners_closed = 0;
    std::uint64_t adverts_freed = 0;      // unconsumed pre-advertised BQIs
    std::uint64_t loans_reclaimed = 0;    // leaked zero-copy loans retired
    // Channels torn down because they crossed the forgery strike limit
    // (byzantine policing); also counted under `channels`/`rsts_sent`.
    std::uint64_t channels_quarantined = 0;
  };
  // Runs in the registry's space (reached via the kernel's death
  // notification -> IPC). A library that dies without an orderly
  // inherit_connection leaves channels, half-open peers, ports, listeners
  // and pre-advertised rings behind; this reclaims all of them.
  void client_died(sim::TaskCtx& ctx, sim::SpaceId space);
  [[nodiscard]] const ReclaimStats& reclaim_stats() const {
    return reclaim_stats_;
  }

  // Ring slots per channel for subsequently created channels (ablation
  // knob; default matches the window/segment worst case with slack).
  void set_channel_ring_capacity(int slots) { ring_capacity_ = slots; }

  // Accept-storm batching: when enabled, handshake completions arriving
  // while a finish-setup sweep is already queued are appended to that
  // sweep instead of each submitting its own registry task, so a cold
  // start with thousands of concurrent handshakes costs O(sweeps) task
  // dispatches rather than O(connections). Off by default (batching
  // changes task-dispatch counts, which the Table 4 goldens pin down).
  void set_batched_handshakes(bool on) { batched_handshakes_ = on; }
  [[nodiscard]] std::uint64_t handshake_sweeps() const {
    return handshake_sweeps_;
  }
  // Hand-off teardown bookkeeping: table entries inspected vs. lookups
  // made. With the by-channel index each lookup touches O(1) entries, so
  // this ratio stays flat as the table grows (the sublinearity proof the
  // scale tests assert).
  [[nodiscard]] std::uint64_t handoff_lookups() const {
    return handoff_lookups_;
  }
  [[nodiscard]] std::uint64_t handoff_entries_scanned() const {
    return handoff_entries_scanned_;
  }

  // Pre-size every per-connection table for `conns` expected connections
  // so a bind storm does not rehash mid-run.
  void reserve_tables(std::size_t conns);

  [[nodiscard]] const SetupTiming& last_setup() const { return last_setup_; }
  [[nodiscard]] bool port_quarantined(std::uint16_t port) const {
    return quarantined_ports_.contains(port);
  }
  [[nodiscard]] std::uint64_t setups_completed() const {
    return setups_completed_;
  }

 private:
  struct PendingConn {
    RegistryClient* client = nullptr;
    std::uint64_t request_id = 0;
    bool active = false;  // active open (vs accepted)
    std::uint16_t listen_port = 0;
    SetupTiming timing;
  };
  struct ListenEntry {
    RegistryClient* client = nullptr;
    proto::TcpConfig cfg;
  };

  void handle_connect(sim::TaskCtx& ctx, RegistryClient* client,
                      std::uint64_t request_id, net::Ipv4Addr dst,
                      std::uint16_t dport, proto::TcpConfig cfg,
                      sim::Time request_sent);
  void finish_setup(sim::TaskCtx& ctx, proto::TcpConnection* conn,
                    PendingConn pending);
  void default_rx(sim::TaskCtx& ctx, NetIoModule* netio,
                  std::uint16_t ethertype, buf::Bytes payload,
                  std::uint16_t bqi_advert);
  // Teardown for a channel the netio quarantined (forgery strike limit):
  // the offender's peer gets the dead-client treatment -- channel
  // destroyed, RST on its behalf, port quarantined for 2*MSL.
  void channel_quarantined(sim::TaskCtx& ctx, NetIoModule* netio,
                           ChannelId id, sim::SpaceId space);
  NetIoModule* netio_for(net::Ipv4Addr remote);
  std::uint16_t alloc_port();
  void quarantine_port(std::uint16_t port);
  void queue_finish_setup(proto::TcpConnection* conn, PendingConn p);

  // Key for BQI-advert bookkeeping: the 4-tuple as *we* see it.
  static std::uint64_t flow_key(std::uint32_t lip, std::uint16_t lport,
                                std::uint32_t rip, std::uint16_t rport) {
    return (static_cast<std::uint64_t>(lip ^ rip) << 32) ^
           (static_cast<std::uint64_t>(lport) << 16) ^ rport;
  }

  // ---- TcpObserver (handshake connections living in the registry) ----
  void on_established(proto::TcpConnection& c) override;
  void on_accept(proto::TcpConnection& c) override;
  void on_closed(proto::TcpConnection& c, const std::string& reason) override;

  os::World& world_;
  os::Host& host_;
  sim::SpaceId space_;
  core::HostStackEnv env_;
  std::vector<NetIoModule*> netios_;
  std::unique_ptr<proto::NetworkStack> stack_;

  std::unordered_map<proto::TcpConnection*, PendingConn> pending_;
  std::unordered_map<std::uint16_t, ListenEntry> listeners_;
  // AN1 BQI exchange state.
  std::unordered_map<std::uint64_t, std::uint16_t> my_advert_;    // flow -> our rx bqi
  std::unordered_map<std::uint64_t, std::uint16_t> peer_advert_;  // flow -> peer's bqi
  // Channels already handed off: stragglers that raced the binding switch
  // are re-delivered into the channel instead of answered with RST.
  struct HandedOff {
    NetIoModule* netio = nullptr;
    ChannelId channel = kInvalidChannel;
    sim::SpaceId app_space = -1;
    std::uint16_t local_port = 0;
    // Snapshot from hand-off time, kept so the registry can reset the peer
    // if the library dies. Stale sequence numbers are fine: a pure RST is
    // accepted without the sequence-window check.
    proto::TcpHandoffState state;
  };
  std::unordered_map<std::uint64_t, HandedOff> handed_off_;
  // Reverse-index maintenance for handed_off_.
  void index_handed_off(std::uint64_t key, const HandedOff& ho);
  void erase_handed_off(std::uint64_t key);
  // O(1) lookup of the flow key for a handed-off channel; returns false if
  // the channel is not in the hand-off table.
  bool handed_off_key(const NetIoModule* netio, ChannelId id,
                      std::uint64_t* key);
  // Reverse index: channel -> handed_off_ flow key, so channel-keyed
  // teardown (release, inherit, quarantine) is a lookup instead of a
  // full-table scan.
  std::unordered_map<const NetIoModule*,
                     std::unordered_map<ChannelId, std::uint64_t>>
      by_channel_;
  std::uint64_t handoff_lookups_ = 0;
  std::uint64_t handoff_entries_scanned_ = 0;
  // Batched handshake completion (see set_batched_handshakes).
  bool batched_handshakes_ = false;
  bool sweep_scheduled_ = false;
  std::uint64_t handshake_sweeps_ = 0;
  std::vector<std::pair<proto::TcpConnection*, PendingConn>> setup_queue_;
  std::unordered_set<std::uint16_t> ports_in_use_;
  std::unordered_set<std::uint16_t> quarantined_ports_;
  std::uint16_t next_port_ = 30000;
  SetupTiming last_setup_;
  int ring_capacity_ = 192;
  std::uint64_t setups_completed_ = 0;
  ReclaimStats reclaim_stats_;
};

}  // namespace ulnet::core
