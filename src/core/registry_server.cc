#include "core/registry_server.h"

#include <algorithm>
#include <cassert>

#include "sim/cpu.h"

namespace ulnet::core {

RegistryServer::RegistryServer(os::World& world, os::Host& host,
                               std::vector<NetIoModule*> netios)
    : world_(world),
      host_(host),
      space_(host.new_space("tcp-registry")),
      env_(host, world.rng_for(host), space_),
      netios_(std::move(netios)) {
  // The registry's stack reaches the device through the standard (slow)
  // Mach path, not through a shared-memory channel: fine for handshakes,
  // never on the data path.
  env_.set_transmit([this](int ifc, net::MacAddr dst, std::uint16_t et,
                           buf::Bytes payload, const proto::TxFlow* flow) {
    auto& cpu = host_.cpu();
    const sim::ProfileScope prof(cpu, sim::CpuComponent::kRegistry);
    cpu.charge(cpu.cost().registry_device_access);
    hw::Nic* nic = env_.nic(ifc);
    std::uint16_t advert = 0;
    if (flow != nullptr && is_an1(*nic)) {
      // Advertise our receive ring in the link header's spare field so the
      // peer can address our channel directly after setup (Section 3.4).
      const auto key = flow_key(flow->local_ip.value, flow->local_port,
                                flow->remote_ip.value, flow->remote_port);
      auto it = my_advert_.find(key);
      // Mint a fresh ring only for a SYN (TCP flags live at IP(20)+13).
      // Segments for flows the table has forgotten -- above all the RST the
      // registry sends on a dead library's behalf -- must not allocate: one
      // leaked BQI per crash would exhaust the table.
      const bool is_syn = payload.size() > 33 && (payload[33] & 0x02) != 0;
      if (it == my_advert_.end() && is_syn) {
        NetIoModule* mod = nullptr;
        for (NetIoModule* m : netios_) {
          if (&m->nic() == nic) mod = m;
        }
        if (mod != nullptr) {
          const std::uint16_t bqi = mod->prealloc_rx_bqi(ring_capacity_);
          it = my_advert_.emplace(key, bqi).first;
        }
      }
      if (it != my_advert_.end()) advert = it->second;
    }
    // Handshake traffic always travels via BQI 0 (protected kernel
    // buffers); only post-handoff data uses the exchanged rings.
    net::Frame f = frame_for(*nic, dst, et, payload, hw::An1Nic::kKernelBqi,
                             advert);
    host_.loop().schedule_at(
        cpu.current().now(), [nic, fr = std::move(f), &cpu]() mutable {
          cpu.submit(sim::kKernelSpace, sim::Prio::kNormal,
                     [nic, fr = std::move(fr)](sim::TaskCtx& kctx) mutable {
                       nic->transmit(kctx, std::move(fr));
                     });
        });
  });
  stack_ = std::make_unique<proto::NetworkStack>(env_);
  for (NetIoModule* m : netios_) {
    m->set_default_handler(
        space_, [this, m](sim::TaskCtx& ctx, std::uint16_t et,
                          buf::Bytes payload, std::uint16_t advert) {
          default_rx(ctx, m, et, std::move(payload), advert);
        });
  }
  for (NetIoModule* m : netios_) {
    // Quarantine notifications fire inside the offender's send trap; the
    // teardown runs as an IPC-delivered task in the registry's own space.
    m->set_quarantine_handler(
        [this, m](sim::TaskCtx& ctx, ChannelId id, sim::SpaceId space) {
          host_.kernel().ipc_send(
              ctx, space_, 64, [this, m, id, space](sim::TaskCtx& rctx) {
                channel_quarantined(rctx, m, id, space);
              });
        });
  }
  // Dead-name notification: when an application space dies the kernel tells
  // us; the actual sweep runs as an IPC-delivered task in our own space.
  host_.kernel().watch_space_death(
      [this](sim::TaskCtx& ctx, sim::SpaceId space) {
        if (space == space_) return;
        host_.kernel().ipc_send(
            ctx, space_, 64,
            [this, space](sim::TaskCtx& rctx) { client_died(rctx, space); });
      });
}

void RegistryServer::default_rx(sim::TaskCtx& ctx, NetIoModule* netio,
                                std::uint16_t ethertype, buf::Bytes payload,
                                std::uint16_t bqi_advert) {
  const sim::ProfileScope prof(host_.cpu(), sim::CpuComponent::kRegistry);
  // Parse the TCP 4-tuple straight out of the IP payload (fixed 20-byte
  // header in this stack).
  std::uint64_t key = 0;
  bool have_key = false;
  if (ethertype == net::kEtherTypeIp && payload.size() >= 24 &&
      payload[9] == proto::kProtoTcp) {
    const std::uint32_t rip = buf::rd32(payload, 12);  // sender
    const std::uint32_t lip = buf::rd32(payload, 16);  // us
    const std::uint16_t rport = buf::rd16(payload, 20);
    const std::uint16_t lport = buf::rd16(payload, 22);
    key = flow_key(lip, lport, rip, rport);
    have_key = true;
    if (bqi_advert != 0) {
      // Record the BQI the peer advertised for this flow (keyed
      // symmetrically, so it resolves at channel-setup time).
      peer_advert_[key] = bqi_advert;
    }
  }
  // A segment for an already-handed-off connection raced the binding
  // switch: push it into the channel instead of RSTing it.
  if (have_key) {
    if (auto it = handed_off_.find(key); it != handed_off_.end()) {
      it->second.netio->redeliver(ctx, it->second.channel, ethertype,
                                  std::move(payload));
      return;
    }
  }
  stack_->link_input(netio->ifc_index(), ethertype, payload);
}

NetIoModule* RegistryServer::netio_for(net::Ipv4Addr remote) {
  const int ifc = stack_->ip().route(remote);
  if (ifc < 0) return nullptr;
  hw::Nic* nic = env_.nic(ifc);
  for (NetIoModule* m : netios_) {
    if (&m->nic() == nic) return m;
  }
  return nullptr;
}

std::uint16_t RegistryServer::alloc_port() {
  for (int guard = 0; guard < 65536; ++guard) {
    const std::uint16_t p = next_port_++;
    if (next_port_ < 30000) next_port_ = 30000;
    if (!ports_in_use_.contains(p) && !quarantined_ports_.contains(p) &&
        !listeners_.contains(p)) {
      return p;
    }
  }
  return 0;
}

void RegistryServer::reserve_tables(std::size_t conns) {
  pending_.reserve(conns);
  listeners_.reserve(conns);
  my_advert_.reserve(conns);
  peer_advert_.reserve(conns);
  handed_off_.reserve(conns);
  for (NetIoModule* m : netios_) by_channel_[m].reserve(conns);
  setup_queue_.reserve(conns);
}

void RegistryServer::index_handed_off(std::uint64_t key, const HandedOff& ho) {
  by_channel_[ho.netio][ho.channel] = key;
}

void RegistryServer::erase_handed_off(std::uint64_t key) {
  auto it = handed_off_.find(key);
  if (it == handed_off_.end()) return;
  if (auto nit = by_channel_.find(it->second.netio);
      nit != by_channel_.end()) {
    nit->second.erase(it->second.channel);
  }
  handed_off_.erase(it);
}

bool RegistryServer::handed_off_key(const NetIoModule* netio, ChannelId id,
                                    std::uint64_t* key) {
  handoff_lookups_++;
  auto nit = by_channel_.find(netio);
  if (nit == by_channel_.end()) return false;
  auto cit = nit->second.find(id);
  if (cit == nit->second.end()) return false;
  handoff_entries_scanned_++;
  *key = cit->second;
  return true;
}

void RegistryServer::quarantine_port(std::uint16_t port) {
  quarantined_ports_.insert(port);
  const sim::Time msl = proto::TcpConfig{}.msl;
  env_.schedule(2 * msl, [this, port] {
    quarantined_ports_.erase(port);
    ports_in_use_.erase(port);
  });
}

// ---------------------------------------------------------------------------
// Client RPCs
// ---------------------------------------------------------------------------

void RegistryServer::connect_request(sim::TaskCtx& ctx,
                                     RegistryClient* client,
                                     std::uint64_t request_id,
                                     net::Ipv4Addr dst, std::uint16_t dport,
                                     proto::TcpConfig cfg) {
  const sim::Time sent_at = ctx.now();
  host_.kernel().ipc_send(
      ctx, space_, 64,
      [this, client, request_id, dst, dport, cfg,
       sent_at](sim::TaskCtx& rctx) {
        handle_connect(rctx, client, request_id, dst, dport, cfg, sent_at);
      });
}

void RegistryServer::handle_connect(sim::TaskCtx& ctx, RegistryClient* client,
                                    std::uint64_t request_id,
                                    net::Ipv4Addr dst, std::uint16_t dport,
                                    proto::TcpConfig cfg,
                                    sim::Time request_sent) {
  const sim::ProfileScope prof(host_.cpu(), sim::CpuComponent::kRegistry);
  SetupTiming timing;
  timing.request_sent = request_sent;
  timing.request_received = ctx.now();

  // Outbound processing that cannot overlap with transmission: connection
  // identifiers, PCB setup, start-of-setup bookkeeping (Table 4, item 2).
  ctx.charge(host_.cpu().cost().registry_outbound_setup);

  const std::uint16_t sport = alloc_port();
  if (sport == 0) {
    client->connect_failed(request_id, "no ports available");
    return;
  }
  ports_in_use_.insert(sport);
  timing.outbound_done = ctx.now();

  proto::TcpConnection* conn =
      stack_->tcp().connect(dst, dport, this, cfg, sport);
  if (conn == nullptr) {
    ports_in_use_.erase(sport);
    host_.kernel().ipc_send(ctx, client->client_space(), 32,
                            [client, request_id](sim::TaskCtx&) {
                              client->connect_failed(request_id,
                                                     "no route to host");
                            });
    return;
  }
  PendingConn p;
  p.client = client;
  p.request_id = request_id;
  p.active = true;
  p.timing = timing;
  pending_[conn] = std::move(p);
}

void RegistryServer::listen_request(sim::TaskCtx& ctx, RegistryClient* client,
                                    std::uint16_t port,
                                    proto::TcpConfig cfg) {
  host_.kernel().ipc_send(
      ctx, space_, 32, [this, client, port, cfg](sim::TaskCtx& rctx) {
        rctx.charge(host_.cpu().cost().registry_alloc_endpoint);
        listeners_[port] = ListenEntry{client, cfg};
        ports_in_use_.insert(port);
        stack_->tcp().listen(port, this, cfg);
      });
}

void RegistryServer::protocol_channel_request(
    sim::TaskCtx& ctx, RegistryClient* client, NetIoModule* netio,
    std::uint8_t ip_proto, std::function<void(ChannelId, os::PortId)> done) {
  host_.kernel().ipc_send(
      ctx, space_, 48,
      [this, client, netio, ip_proto,
       done = std::move(done)](sim::TaskCtx& rctx) {
        rctx.charge(host_.cpu().cost().registry_channel_setup);
        NetIoModule::ChannelSetup setup;
        setup.app_space = client->client_space();
        setup.flow.ethertype = net::kEtherTypeIp;
        setup.flow.ip_proto = ip_proto;
        const int ifc = netio->ifc_index();
        setup.flow.local_ip = env_.ifc_ip(ifc).value;
        // local_port/remote fields stay 0: wildcard binding.
        const ChannelId id = netio->create_channel(rctx, setup);
        const os::PortId cap = netio->channel_cap(id);
        host_.kernel().ipc_send(rctx, client->client_space(), 32,
                                [done, id, cap](sim::TaskCtx&) {
                                  done(id, cap);
                                });
      });
}

void RegistryServer::raw_request(sim::TaskCtx& ctx, RegistryClient* client,
                                 NetIoModule* netio, std::uint16_t ethertype,
                                 net::MacAddr peer_mac,
                                 std::function<void(ChannelId, os::PortId)>
                                     done) {
  host_.kernel().ipc_send(
      ctx, space_, 48,
      [this, client, netio, ethertype, peer_mac,
       done = std::move(done)](sim::TaskCtx& rctx) {
        rctx.charge(host_.cpu().cost().registry_channel_setup);
        NetIoModule::ChannelSetup setup;
        setup.app_space = client->client_space();
        setup.raw = true;
        setup.raw_ethertype = ethertype;
        setup.peer_mac = peer_mac;
        const ChannelId id = netio->create_channel(rctx, setup);
        const os::PortId cap = netio->channel_cap(id);
        host_.kernel().ipc_send(rctx, client->client_space(), 32,
                                [done, id, cap](sim::TaskCtx&) {
                                  done(id, cap);
                                });
      });
}

void RegistryServer::release_channel(sim::TaskCtx& ctx, NetIoModule* netio,
                                     ChannelId id, std::uint16_t local_port) {
  host_.kernel().ipc_send(ctx, space_, 32,
                          [this, netio, id, local_port](sim::TaskCtx& rctx) {
                            std::uint64_t key = 0;
                            if (handed_off_key(netio, id, &key)) {
                              erase_handed_off(key);
                            }
                            netio->destroy_channel(rctx, id);
                            quarantine_port(local_port);
                          });
}

void RegistryServer::inherit_connection(sim::TaskCtx& ctx,
                                        proto::TcpHandoffState state,
                                        NetIoModule* netio, ChannelId id) {
  host_.kernel().ipc_send(
      ctx, space_, state.wire_size(),
      [this, state, netio, id](sim::TaskCtx& rctx) {
        // The registry re-adopts the orphaned connection, resets the peer
        // through its own stack and quarantines the port.
        std::uint64_t key = 0;
        if (handed_off_key(netio, id, &key)) erase_handed_off(key);
        netio->destroy_channel(rctx, id);
        proto::TcpConnection* conn =
            stack_->tcp().import_connection(state, this);
        if (conn != nullptr) {
          conn->abort();  // RST to the remote peer
          stack_->tcp().release(conn);
        }
        quarantine_port(state.local_port);
      });
}

void RegistryServer::channel_quarantined(sim::TaskCtx& ctx,
                                         NetIoModule* netio, ChannelId id,
                                         sim::SpaceId space) {
  const sim::ProfileScope prof(host_.cpu(), sim::CpuComponent::kRegistry);
  ctx.charge(host_.cpu().cost().registry_outbound_setup);
  reclaim_stats_.channels_quarantined++;
  // Handed-off connection: reuse the dead-client machinery -- destroy the
  // channel, import the snapshot, RST the peer on the offender's behalf,
  // quarantine the port for 2*MSL.
  if (std::uint64_t key = 0; handed_off_key(netio, id, &key)) {
    HandedOff dead = std::move(handed_off_[key]);
    erase_handed_off(key);
    dead.netio->destroy_channel(ctx, dead.channel, /*reclaimed=*/true);
    reclaim_stats_.channels++;
    proto::TcpConnection* conn =
        stack_->tcp().import_connection(dead.state, this);
    if (conn != nullptr) {
      conn->abort();
      stack_->tcp().release(conn);
      reclaim_stats_.rsts_sent++;
    }
    quarantine_port(dead.local_port);
    reclaim_stats_.ports_quarantined++;
    return;
  }
  // Raw / protocol-wildcard channels: no peer connection to reset.
  netio->destroy_channel(ctx, id, /*reclaimed=*/true);
  reclaim_stats_.channels++;
  (void)space;
}

// ---------------------------------------------------------------------------
// Dead-client reclamation
// ---------------------------------------------------------------------------

void RegistryServer::client_died(sim::TaskCtx& ctx, sim::SpaceId space) {
  const sim::ProfileScope prof(host_.cpu(), sim::CpuComponent::kRegistry);
  ctx.charge(host_.cpu().cost().registry_outbound_setup);
  reclaim_stats_.clients++;

  // 1. Handed-off connections: destroy the channel, reset the peer on the
  //    dead library's behalf, quarantine the port. Keys sorted so the sweep
  //    order (and therefore the RST order on the wire) is deterministic.
  std::vector<std::uint64_t> dead_keys;
  for (const auto& [key, ho] : handed_off_) {
    if (ho.app_space == space) dead_keys.push_back(key);
  }
  std::sort(dead_keys.begin(), dead_keys.end());
  for (const std::uint64_t key : dead_keys) {
    HandedOff ho = std::move(handed_off_[key]);
    erase_handed_off(key);
    ho.netio->destroy_channel(ctx, ho.channel, /*reclaimed=*/true);
    reclaim_stats_.channels++;
    proto::TcpConnection* conn =
        stack_->tcp().import_connection(ho.state, this);
    if (conn != nullptr) {
      conn->abort();  // RST: the peer must not stay half-open forever
      stack_->tcp().release(conn);
      reclaim_stats_.rsts_sent++;
    }
    quarantine_port(ho.local_port);
    reclaim_stats_.ports_quarantined++;
  }

  // 2. Channels the hand-off table does not track (raw channels and
  //    connectionless protocol bindings created for this space).
  for (NetIoModule* m : netios_) {
    for (const ChannelId id : m->channels_of_space(space)) {
      m->destroy_channel(ctx, id, /*reclaimed=*/true);
      reclaim_stats_.channels++;
    }
  }

  // 3. In-flight setups: abort the half-done handshake, free the port and
  //    any ring already pre-advertised to the peer. Erase from pending_
  //    *before* aborting so on_closed cannot re-enter the entry; sort by
  //    local port because pending_ is keyed by pointer (iteration order
  //    would otherwise vary run to run and break replay determinism).
  std::vector<proto::TcpConnection*> dead_pending;
  for (const auto& [conn, p] : pending_) {
    if (p.client != nullptr && p.client->client_space() == space) {
      dead_pending.push_back(conn);
    }
  }
  std::sort(dead_pending.begin(), dead_pending.end(),
            [](const proto::TcpConnection* a, const proto::TcpConnection* b) {
              return a->local_port() < b->local_port();
            });
  for (proto::TcpConnection* conn : dead_pending) {
    pending_.erase(conn);
    const auto key = flow_key(conn->local_ip().value, conn->local_port(),
                              conn->remote_ip().value, conn->remote_port());
    if (auto ait = my_advert_.find(key); ait != my_advert_.end()) {
      if (NetIoModule* m = netio_for(conn->remote_ip());
          m != nullptr && m->an1() && ait->second != 0) {
        static_cast<hw::An1Nic&>(m->nic()).free_bqi(ait->second);
        reclaim_stats_.adverts_freed++;
      }
      my_advert_.erase(ait);
    }
    peer_advert_.erase(key);
    quarantine_port(conn->local_port());
    reclaim_stats_.ports_quarantined++;
    conn->abort();
    stack_->tcp().release(conn);
    reclaim_stats_.pending_aborted++;
  }

  // 4. Listening endpoints registered by the dead space.
  std::vector<std::uint16_t> dead_listen;
  for (const auto& [port, le] : listeners_) {
    if (le.client != nullptr && le.client->client_space() == space) {
      dead_listen.push_back(port);
    }
  }
  std::sort(dead_listen.begin(), dead_listen.end());
  for (const std::uint16_t port : dead_listen) {
    stack_->tcp().close_listener(port);
    listeners_.erase(port);
    ports_in_use_.erase(port);
    reclaim_stats_.listeners_closed++;
  }

  // 5. Loaned receive buffers the dead library never returned (zero-copy
  //    mode). The pool tracks every loan's owning space, so the sweep can
  //    retire them all -- the slot storage recycles and the leak becomes a
  //    counted, bounded event instead of a permanent pool hole.
  if (buf::PacketPool* pool = host_.pool()) {
    reclaim_stats_.loans_reclaimed += pool->reclaim_loans(
        space, static_cast<std::uint64_t>(env_.now()));
  }
}

// ---------------------------------------------------------------------------
// Handshake completion -> channel setup -> hand-off
// ---------------------------------------------------------------------------

void RegistryServer::on_established(proto::TcpConnection& c) {
  auto it = pending_.find(&c);
  if (it == pending_.end()) return;
  PendingConn p = std::move(it->second);
  pending_.erase(it);
  p.timing.handshake_done = env_.now();
  // We are inside this connection's own input upcall; finishing the setup
  // releases the connection, so run it as a follow-up task in the
  // registry's space.
  queue_finish_setup(&c, std::move(p));
}

void RegistryServer::on_accept(proto::TcpConnection& c) {
  auto lit = listeners_.find(c.local_port());
  if (lit == listeners_.end()) {
    c.abort();
    return;
  }
  PendingConn p;
  p.client = lit->second.client;
  p.active = false;
  p.listen_port = c.local_port();
  p.timing.request_sent = env_.now();
  p.timing.request_received = env_.now();
  p.timing.outbound_done = env_.now();
  p.timing.handshake_done = env_.now();
  queue_finish_setup(&c, std::move(p));
}

void RegistryServer::queue_finish_setup(proto::TcpConnection* conn,
                                        PendingConn p) {
  if (!batched_handshakes_) {
    host_.cpu().submit(
        space_, sim::Prio::kNormal,
        [this, conn, p = std::move(p)](sim::TaskCtx& ctx) mutable {
          finish_setup(ctx, conn, std::move(p));
        });
    return;
  }
  // Accept-storm coalescing: completions that land while a sweep is queued
  // ride in that sweep, so a cold start's dispatch count grows with the
  // number of sweeps, not the number of connections.
  setup_queue_.emplace_back(conn, std::move(p));
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  host_.cpu().submit(space_, sim::Prio::kNormal, [this](sim::TaskCtx& ctx) {
    sweep_scheduled_ = false;
    handshake_sweeps_++;
    // Mirrored into the world-level metrics dump so the telemetry/watchdog
    // layer can observe sweep behavior without reaching into the registry.
    host_.cpu().metrics().registry_handshake_sweeps++;
    std::vector<std::pair<proto::TcpConnection*, PendingConn>> batch;
    batch.swap(setup_queue_);
    for (auto& [c, pend] : batch) finish_setup(ctx, c, std::move(pend));
  });
}

void RegistryServer::finish_setup(sim::TaskCtx& ctx,
                                  proto::TcpConnection* conn,
                                  PendingConn pending) {
  auto& cpu = host_.cpu();
  const sim::ProfileScope prof(cpu, sim::CpuComponent::kRegistry);
  const auto& cost = cpu.cost();

  NetIoModule* netio = netio_for(conn->remote_ip());
  if (netio == nullptr ||
      (conn->state() != proto::TcpState::kEstablished &&
       conn->state() != proto::TcpState::kCloseWait)) {
    // Unroutable, or the connection died (e.g. RST) before the hand-off.
    if (pending.active) {
      RegistryClient* client = pending.client;
      const std::uint64_t rid = pending.request_id;
      host_.kernel().ipc_send(ctx, client->client_space(), 32,
                              [client, rid](sim::TaskCtx&) {
                                client->connect_failed(
                                    rid, "connection setup failed");
                              });
    }
    conn->abort();
    stack_->tcp().release(conn);
    return;
  }

  // --- Channel setup (Table 4, item 3) ---
  ctx.charge(cost.registry_channel_setup);
  const auto key = flow_key(conn->local_ip().value, conn->local_port(),
                            conn->remote_ip().value, conn->remote_port());
  NetIoModule::ChannelSetup setup;
  setup.ring_capacity = ring_capacity_;
  setup.app_space = pending.client->client_space();
  setup.flow.ethertype = net::kEtherTypeIp;
  setup.flow.ip_proto = proto::kProtoTcp;
  setup.flow.local_ip = conn->local_ip().value;
  setup.flow.remote_ip = conn->remote_ip().value;
  setup.flow.local_port = conn->local_port();
  setup.flow.remote_port = conn->remote_port();
  auto mac = stack_->arp().lookup(conn->remote_ip());
  setup.peer_mac = mac.value_or(net::MacAddr{});
  if (netio->an1()) {
    ctx.charge(cost.registry_bqi_setup);
    if (auto ait = my_advert_.find(key); ait != my_advert_.end()) {
      setup.preallocated_bqi = ait->second;
    }
  }
  const ChannelId chan = netio->create_channel(ctx, setup);
  if (auto pit = peer_advert_.find(key); pit != peer_advert_.end()) {
    netio->set_tx_bqi(chan, pit->second);
  }
  my_advert_.erase(key);
  peer_advert_.erase(key);
  pending.timing.channel_done = ctx.now();

  // --- State transfer into the library (Table 4, item 5) ---
  HandoffInfo info;
  info.state = conn->export_state();
  info.netio = netio;
  info.channel = chan;
  info.cap = netio->channel_cap(chan);
  info.peer_mac = setup.peer_mac;
  info.request_id = pending.active ? pending.request_id : 0;
  info.listen_port = pending.listen_port;
  stack_->tcp().release(conn);  // detach without touching the wire
  handed_off_[key] =
      HandedOff{netio, chan, setup.app_space, info.state.local_port,
                info.state};
  index_handed_off(key, handed_off_[key]);

  ctx.charge(cost.registry_state_transfer);
  RegistryClient* client = pending.client;
  SetupTiming timing = pending.timing;
  host_.kernel().ipc_send(
      ctx, client->client_space(), info.state.wire_size(),
      [this, client, info = std::move(info), timing](sim::TaskCtx& actx) mutable {
        SetupTiming t = timing;
        t.handoff_done = actx.now();
        last_setup_ = t;
        setups_completed_++;
        client->handoff(std::move(info));
      });
}

void RegistryServer::on_closed(proto::TcpConnection& c,
                               const std::string& reason) {
  auto it = pending_.find(&c);
  if (it == pending_.end()) return;
  PendingConn p = std::move(it->second);
  pending_.erase(it);
  ports_in_use_.erase(c.local_port());
  RegistryClient* client = p.client;
  const std::uint64_t rid = p.request_id;
  proto::TcpConnection* conn = &c;
  // We are inside this connection's own upcall: notify the client and
  // release the PCB from a follow-up registry task.
  host_.cpu().submit(
      space_, sim::Prio::kNormal,
      [this, conn, client, rid, reason](sim::TaskCtx& ctx) {
        host_.kernel().ipc_send(ctx, client->client_space(), 32,
                                [client, rid, reason](sim::TaskCtx&) {
                                  client->connect_failed(rid, reason);
                                });
        stack_->tcp().release(conn);
      });
}

}  // namespace ulnet::core
