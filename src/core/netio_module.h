// The network I/O module (paper Section 3.3): kernel-resident code
// co-located with the device driver that gives user-level protocol
// libraries efficient *and protected* access to the network.
//
// Per-connection "channels" are created by the registry server. A channel
// bundles:
//   * a pinned shared-memory region (packets move between the library and
//     the driver with no copy),
//   * a send capability (a Mach port): transmissions must present it, and
//     the module matches a header *template* against every outgoing packet
//     so a library can neither impersonate another endpoint nor spray the
//     network with forged headers,
//   * an input demultiplexing binding: a synthesized matcher (default), or
//     an interpreted CSPF / BPF program (for the Table 5 ablation) on
//     Ethernet; the hardware BQI ring on AN1,
//   * a lightweight semaphore, signalled with batching: a signal is only
//     raised if the library has consumed the previous notification.
//
// Raw channels (ethertype-only) support the Table 1 micro-benchmark of the
// mechanisms themselves, with no transport protocol on top.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "buf/packet_pool.h"
#include "filter/filter.h"
#include "hw/nic.h"
#include "os/host.h"
#include "os/semaphore.h"
#include "sim/histogram.h"
#include "sim/telemetry.h"

namespace ulnet::core {

using ChannelId = std::uint32_t;
inline constexpr ChannelId kInvalidChannel = 0;

class NetIoModule {
 public:
  enum class DemuxMode { kSynthesized, kBpf, kCspf };

  NetIoModule(os::Host& host, hw::Nic& nic, int ifc_index);
  NetIoModule(const NetIoModule&) = delete;
  NetIoModule& operator=(const NetIoModule&) = delete;

  // ------------------------------------------------------------------
  // Privileged interface (registry server / kernel only)
  // ------------------------------------------------------------------
  struct ChannelSetup {
    sim::SpaceId app_space = -1;
    filter::FlowKey flow;     // inbound demux key (remote fields wildcard ok)
    net::MacAddr peer_mac;    // fixed link-level destination
    int ring_capacity = 192;  // > max window / min segment, with slack
    bool raw = false;         // ethertype-only channel (Table 1)
    std::uint16_t raw_ethertype = 0;
    // AN1: ring pre-allocated (and advertised to the peer) during the
    // handshake; 0 = allocate at channel creation.
    std::uint16_t preallocated_bqi = 0;
  };

  // AN1 only: allocate and fill a receive ring before the channel exists,
  // so its index can be advertised in the handshake's link headers.
  std::uint16_t prealloc_rx_bqi(int capacity);

  // Creates shared region + capability + demux binding (+ BQI ring on AN1).
  // Runs in a privileged task; the caller charges the setup costs.
  ChannelId create_channel(sim::TaskCtx& ctx, const ChannelSetup& setup);
  // `reclaimed` marks a teardown performed on behalf of a dead client (for
  // the reclamation census); resources are released identically either way,
  // including recycling any packets still sitting in the shared ring.
  void destroy_channel(sim::TaskCtx& ctx, ChannelId id,
                       bool reclaimed = false);
  // Outgoing BQI the peer advertised for this flow (AN1 data path).
  void set_tx_bqi(ChannelId id, std::uint16_t bqi);
  // Re-target an existing channel at a different application space
  // (connection hand-off between applications, the paper's inetd pattern).
  bool retarget_channel(sim::TaskCtx& ctx, ChannelId id,
                        sim::SpaceId new_space);

  void set_demux_mode(DemuxMode m) { demux_mode_ = m; }
  // Ablation: signal the semaphore on every packet instead of batching
  // under an outstanding notification (paper Section 3.3).
  void set_batched_signals(bool on) { batched_signals_ = on; }
  // Zero-copy receive: delivered packets are wrapped in a pool loan owned by
  // the channel's application space instead of travelling as owned bytes.
  // The library (and ultimately the application) must release every loan;
  // the registry's dead-client sweep reclaims leaked ones. Off by default.
  void set_rx_loans(bool on) { rx_loans_ = on; }
  [[nodiscard]] bool rx_loans() const { return rx_loans_; }
  // Aggregated demux for the interpreted modes: compile the installed
  // BPF/CSPF programs into one shared decision trie and classify each frame
  // in a single pass instead of walking every binding. Off by default (the
  // paper-accurate linear walk); verdicts are first-match identical.
  void set_filter_aggregation(bool on) { filter_aggregation_ = on; }
  [[nodiscard]] bool filter_aggregation() const { return filter_aggregation_; }
  // Differential self-check: after every aggregated classification, run the
  // uncharged linear walk and count disagreements (demux_diff_mismatches).
  // Costs nothing in simulated time; used by tests and chaos scenarios.
  void set_demux_differential(bool on) { demux_differential_ = on; }
  // Live trie size (leak check: zero once every binding is destroyed).
  // Rebuilds a stale trie first so the answer reflects current bindings.
  [[nodiscard]] std::size_t trie_nodes();

  // Pre-size the channel and demux hash tables for `n` expected bindings.
  // Binds beyond the reserved cardinality still work but rehash, and every
  // insert that grows a bucket array mid-run is counted in the host's
  // metrics as demux_table_rehashes (an O(n) stall a sized table avoids).
  void reserve_channels(std::size_t n) {
    channels_.reserve(n);
    by_bqi_.reserve(n);
    bind_table_.reserve(n);
    binding_order_.reserve(n);
  }

  // Fallback for packets no channel claims: delivered to the registry
  // server by IPC (it runs the handshake flows and generates RSTs).
  using DefaultHandler =
      std::function<void(sim::TaskCtx&, std::uint16_t ethertype,
                         buf::Bytes payload, std::uint16_t bqi_advert)>;
  void set_default_handler(sim::SpaceId space, DefaultHandler h) {
    default_space_ = space;
    default_handler_ = std::move(h);
  }

  // Per-tenant (per-owner-space) policing for byzantine isolation (see
  // docs/ROBUSTNESS.md). Default-disabled: with `enabled` false every data
  // path behaves bit-identically to a module without the policy, and each
  // zero-valued knob disables its individual check.
  struct TenantPolicy {
    bool enabled = false;
    // Max RX slots a space may hold across its channels: shared-ring
    // occupancy plus (on AN1) posted hardware buffers. Deliveries beyond
    // the quota are dropped; channel_replenish reposts only up to it.
    int ring_slot_quota = 0;
    // Max outstanding pool loans per space; deliveries beyond the budget
    // fall back to owned copies (the selective-copy path).
    std::uint64_t loan_budget = 0;
    // Token-bucket TX policer: refill rate and bucket depth. Sends beyond
    // the bucket report kBackpressure (honest libraries back off; floods
    // are simply refused).
    std::uint64_t tx_rate_bps = 0;
    std::uint64_t tx_burst_bytes = 16 * 1024;
    // Quarantine a channel after this many template rejects by its own
    // owner (forgery strikes). Quarantined channels refuse all sends; the
    // quarantine handler (installed by the registry) tears the channel
    // down with the dead-client treatment.
    int forgery_strike_limit = 0;
  };
  void set_tenant_policy(const TenantPolicy& p) { policy_ = p; }
  [[nodiscard]] const TenantPolicy& tenant_policy() const { return policy_; }
  // Per-space provisioned TX rate (the tenant's SLA), overriding the
  // policy's default rate for that space only; 0 falls back to the policy
  // default. Only consulted while the policy is enabled.
  void set_space_tx_rate(sim::SpaceId space, std::uint64_t bps) {
    tx_rate_overrides_[space] = bps;
  }
  // Invoked (at most once per channel) when a channel crosses the forgery
  // strike limit. The registry installs this to run its RST-on-behalf
  // teardown from its own space; the handler must not destroy the channel
  // synchronously from inside a send (defer via IPC).
  using QuarantineHandler =
      std::function<void(sim::TaskCtx&, ChannelId, sim::SpaceId)>;
  void set_quarantine_handler(QuarantineHandler h) {
    quarantine_handler_ = std::move(h);
  }
  [[nodiscard]] bool channel_quarantined(ChannelId id) const;

  // ------------------------------------------------------------------
  // Library interface (called from application tasks)
  // ------------------------------------------------------------------
  struct RxPacket {
    std::uint16_t ethertype = 0;
    buf::Bytes payload;  // link header stripped (empty when loaned)
    // Zero-copy mode: the packet bytes live in pool storage referenced by
    // this loan (view() = link header stripped already); `payload` is empty.
    buf::BufferLoan loan;
    std::uint64_t trace_id = 0;   // provenance id carried from the frame
    sim::Time enqueued_at = 0;    // ring entry time (residency histogram)
    [[nodiscard]] buf::ByteView view() const {
      return loan.engaged() ? loan.view()
                            : buf::ByteView(payload.data(), payload.size());
    }
  };

  // Transmit through a channel. Enters the kernel via the specialized trap,
  // validates the capability for the caller's space, matches the header
  // template, then drives the NIC. Returns false (and counts a reject) on
  // any violation.
  // `dst_override` selects the link destination for channels whose
  // template leaves the remote side wild (connectionless protocols); it is
  // refused on fully-bound channels.
  // `trace_id` stamps the outgoing frame with the segment's provenance id
  // (0 = let the NIC allocate one at the wire boundary).
  bool channel_send(sim::TaskCtx& ctx, ChannelId id, os::PortId cap,
                    sim::SpaceId caller_space, std::uint16_t ethertype,
                    buf::Bytes payload,
                    net::MacAddr dst_override = net::MacAddr{},
                    std::uint64_t trace_id = 0);

  // Like channel_send, but distinguishes a permanent refusal (bad cap /
  // template violation) from transient device backpressure (transmit ring
  // full, injected throttle). kOk and kRejected consume the payload; on
  // kBackpressure nothing reached the wire and the payload is left intact
  // so the caller can retry it after a backoff.
  enum class SendStatus { kOk, kRejected, kBackpressure };
  SendStatus channel_send_status(sim::TaskCtx& ctx, ChannelId id,
                                 os::PortId cap, sim::SpaceId caller_space,
                                 std::uint16_t ethertype, buf::Bytes& payload,
                                 net::MacAddr dst_override = net::MacAddr{},
                                 std::uint64_t trace_id = 0);

  // Gathered transmit: `headers` carries the IP datagram's header bytes
  // (enough of them -- the first 24 -- for the same template match the
  // ordinary path performs); `payload` stays in the app-owned region and is
  // picked up by the NIC at framing time. On kOk `headers` is consumed; on
  // kRejected/kBackpressure both buffers are left with the caller (the
  // library materializes and retries through the ordinary path).
  SendStatus channel_send_gather(sim::TaskCtx& ctx, ChannelId id,
                                 os::PortId cap, sim::SpaceId caller_space,
                                 std::uint16_t ethertype, buf::Bytes& headers,
                                 buf::ByteView payload,
                                 std::uint64_t trace_id = 0);

  // ------------------------------------------------------------------
  // Fault injection & reclamation support (chaos controller / registry)
  // ------------------------------------------------------------------
  // The next `n` channel sends report device backpressure.
  void inject_tx_backpressure(std::uint64_t n) { tx_throttle_remaining_ += n; }
  // Swallow the next semaphore wakeup on this channel (lost notification).
  void channel_drop_next_wakeup(ChannelId id);
  // Empty the channel's shared ring (contents lost, storage recycled) and,
  // on AN1, drain its posted hardware buffers. Returns packets + buffers
  // discarded. Reliable transports recover via retransmission.
  int exhaust_channel(ChannelId id);
  // AN1 starvation recovery: if the channel's hardware ring has zero posted
  // buffers (everything consumed or drained by a fault) repost a full
  // complement -- or, with a tenant policy active, only up to the owner's
  // remaining slot quota, so a refill-starver cannot weaponize the recovery
  // path. No-op on Ethernet, on healthy rings, and on partial fills (the
  // normal drain-then-post cycle handles those).
  void channel_replenish(ChannelId id);
  // Ids of every channel owned by `space`, ascending (dead-client sweep).
  [[nodiscard]] std::vector<ChannelId> channels_of_space(
      sim::SpaceId space) const;
  [[nodiscard]] std::size_t live_channels() const { return channels_.size(); }
  [[nodiscard]] std::size_t channel_ring_depth(ChannelId id) const;

  // Drain one packet from the channel's shared ring (no copy, no trap).
  std::optional<RxPacket> channel_pop(ChannelId id);
  // Rearm notification after a drain; returns true if more packets slipped
  // in (caller should drain again instead of sleeping).
  bool channel_rearm(ChannelId id);
  // Block the library's per-connection thread on the channel semaphore.
  void channel_wait(ChannelId id, os::Semaphore::WaitFn fn);
  // Return receive buffers (AN1: refills the hardware ring).
  void channel_post_buffers(ChannelId id, int n);

  // Late re-delivery: push a packet that was (mis)routed to the default
  // path into a channel's ring (used by the registry for segments that
  // raced a hand-off's binding installation).
  bool redeliver(sim::TaskCtx& ctx, ChannelId id, std::uint16_t ethertype,
                 buf::Bytes payload);

  // Channel metadata.
  [[nodiscard]] os::PortId channel_cap(ChannelId id) const;
  [[nodiscard]] os::RegionId channel_region(ChannelId id) const;
  [[nodiscard]] std::uint16_t channel_rx_bqi(ChannelId id) const;
  [[nodiscard]] net::MacAddr channel_peer_mac(ChannelId id) const;

  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t ring_drops = 0;
    std::uint64_t sends = 0;
    std::uint64_t send_rejects = 0;
    std::uint64_t signals_suppressed = 0;  // batching wins
    std::uint64_t demux_hash_hits = 0;       // O(1) binding-table resolutions
    std::uint64_t demux_fallback_walks = 0;  // hash miss -> binding-list walk
    std::uint64_t demux_trie_hits = 0;      // one-pass trie resolutions
    std::uint64_t demux_trie_rebuilds = 0;  // trie recompiles (bind/unbind)
    std::uint64_t demux_diff_mismatches = 0;  // trie vs walk disagreements
    std::uint64_t default_deliveries = 0;
    std::uint64_t unclaimed_drops = 0;
    std::uint64_t tx_backpressure = 0;     // transient device-full refusals
    std::uint64_t channels_reclaimed = 0;  // destroyed on behalf of a dead app
    std::uint64_t buffers_reclaimed = 0;   // ring packets recycled at destroy
    std::uint64_t tx_gather_frames = 0;    // frames sent via channel gather
    // Tenant policing (all zero while the policy is disabled).
    std::uint64_t tenant_tx_policed = 0;       // sends refused by the policer
    std::uint64_t tenant_ring_quota_hits = 0;  // deliveries dropped at quota
    std::uint64_t tenant_loan_budget_hits = 0;  // loan-outs downgraded to copy
    std::uint64_t forgery_strikes = 0;     // owner template rejects counted
    std::uint64_t tenant_quarantines = 0;  // channels quarantined
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Per-channel attribution of the same quantities, plus byte totals and
  // the high-water mark of the shared ring -- the paper's "which connection
  // pays which mechanism" question made directly answerable.
  struct ChannelStats {
    std::uint64_t delivered = 0;
    std::uint64_t ring_drops = 0;
    std::uint64_t sends = 0;
    std::uint64_t send_rejects = 0;
    std::uint64_t signals = 0;
    std::uint64_t signals_suppressed = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t max_ring_depth = 0;
    std::uint64_t forgery_strikes = 0;  // owner template rejects (policed)
  };
  // nullptr for unknown channels.
  [[nodiscard]] const ChannelStats* channel_stats(ChannelId id) const;
  // All live channels (id, binding, ring occupancy, stats) plus the module
  // totals and the per-stage latency histograms, as one JSON object.
  [[nodiscard]] std::string dump_json() const;

  // ---- Live telemetry -------------------------------------------------
  // Register the module's time-series probes under `<prefix>.`: delivery /
  // send / drop counters plus a live ring-occupancy gauge (total packets
  // resident across all shared rings). Also turns on per-tenant demand
  // tracking (below).
  void register_telemetry(sim::Telemetry& t, const std::string& prefix);
  // Register one tenant's series under `<name>.`: attempted-TX demand in
  // bytes (counted before the policer, so it measures what the tenant
  // *wants*, the input adaptive policing needs) and the RX slots the space
  // holds right now.
  void register_tenant_telemetry(sim::Telemetry& t, const std::string& name,
                                 sim::SpaceId space);
  // Demand accounting is off by default so the send hot path stays
  // untouched; register_telemetry enables it.
  void set_demand_tracking(bool on) { demand_tracking_ = on; }
  [[nodiscard]] std::uint64_t tx_demand_bytes(sim::SpaceId space) const {
    const auto it = tx_demand_bytes_.find(space);
    return it == tx_demand_bytes_.end() ? 0 : it->second;
  }
  // Packets resident across all shared rings right now.
  [[nodiscard]] std::uint64_t total_ring_depth() const;

  // Per-stage latency histograms (nanoseconds), always on:
  // shared-ring residency (deliver -> library pop)...
  [[nodiscard]] const sim::Histogram& ring_residency_hist() const {
    return ring_hist_;
  }
  // ...and notification latency (semaphore signal -> library wakeup).
  [[nodiscard]] const sim::Histogram& wakeup_latency_hist() const {
    return wakeup_hist_;
  }

  [[nodiscard]] hw::Nic& nic() { return nic_; }
  [[nodiscard]] bool an1() const { return an1_; }
  [[nodiscard]] int ifc_index() const { return ifc_; }

 private:
  struct Channel {
    ChannelId id = kInvalidChannel;
    sim::SpaceId app_space = -1;
    os::PortId cap = os::kInvalidPort;
    os::RegionId region = os::kInvalidRegion;
    filter::FlowKey flow;
    net::MacAddr peer_mac;
    bool raw = false;
    std::uint16_t raw_ethertype = 0;
    std::uint16_t rx_bqi = 0;  // AN1 ring index (0 on Ethernet)
    std::uint16_t tx_bqi = 0;  // peer's advertised ring
    int ring_capacity = 64;
    std::deque<RxPacket> ring;
    ChannelStats stats;
    std::unique_ptr<os::Semaphore> sem;
    bool notify_pending = false;
    bool quarantined = false;  // crossed the forgery strike limit
    // Demux programs for the ablation modes.
    std::unique_ptr<filter::SynthesizedMatcher> synth;
    std::unique_ptr<filter::BpfVm> bpf;
    std::unique_ptr<filter::CspfVm> cspf;
  };

  void rx(sim::TaskCtx& ctx, net::Frame& f, std::uint16_t bqi);
  Channel* classify_software(sim::TaskCtx& ctx, const net::Frame& f);
  // Fallback: insertion-ordered walk of the software bindings (the only
  // demux the interpreted modes have; the synthesized mode reaches it when
  // the hash probes miss). Charges per binding tried according to `mode`;
  // with a null ctx it runs uncharged (the differential reference).
  Channel* classify_walk(sim::TaskCtx* ctx, const net::Frame& f,
                         DemuxMode mode);
  // One-pass aggregated classification (interpreted modes with
  // set_filter_aggregation(true)): trie first, then the short residual list
  // of programs the analyzer could not fold, preserving first-match order.
  Channel* classify_aggregated(sim::TaskCtx& ctx, const net::Frame& f);
  // (Re)compile the trie from the live bindings if it is stale.
  void ensure_aggregate();
  // Incrementally add one binding to a valid trie (new ids only grow, so
  // existing min-id accepts stay correct); no-op when the trie is stale.
  void aggregate_bind(const Channel& ch);
  // (Re)install a channel's entries in bind_table_ / raw_by_ethertype_.
  // First creation wins on key collisions, matching the insertion-ordered
  // walk the table replaces.
  void bind_channel(Channel& ch);
  void rebuild_bind_table();
  void deliver(sim::TaskCtx& ctx, Channel& ch, std::uint16_t ethertype,
               buf::Bytes payload, std::uint64_t trace_id = 0);
  // Close the "rxring" span of every packet still in the ring (teardown,
  // exhaustion) so chaos kills never leave a dangling span begin.
  void close_ring_spans(const Channel& ch);
  void deliver_default(sim::TaskCtx& ctx, std::uint16_t ethertype,
                       buf::Bytes payload, std::uint16_t bqi_advert);
  Channel* find(ChannelId id);
  [[nodiscard]] const Channel* find(ChannelId id) const;
  [[nodiscard]] bool template_matches(const Channel& ch,
                                      std::uint16_t ethertype,
                                      buf::ByteView payload) const;
  [[nodiscard]] std::size_t link_header_size() const;

  // ---- Tenant policing internals (no-ops while policy_.enabled is false).
  // Token-bucket state per owner space. `frac` carries the ns*bps division
  // remainder so refill arithmetic is exact however the refills are sliced.
  struct TenantAccount {
    std::uint64_t tokens = 0;
    std::uint64_t frac = 0;
    sim::Time last_refill = 0;
    bool init = false;
  };
  // Debit `bytes` from the space's bucket; false = policed (no debit).
  bool tx_policer_allows(sim::TaskCtx& ctx, sim::SpaceId space,
                         std::size_t bytes);
  // RX slots the space holds right now: shared-ring occupancy plus (AN1)
  // posted hardware buffers, across all its channels.
  [[nodiscard]] std::int64_t space_rx_slots(sim::SpaceId space) const;
  // Count a template reject by the channel's own capability holder and
  // quarantine at the strike limit.
  void note_forgery_strike(sim::TaskCtx& ctx, Channel& ch);

  os::Host& host_;
  hw::Nic& nic_;
  int ifc_;
  bool an1_;
  DemuxMode demux_mode_ = DemuxMode::kSynthesized;
  bool batched_signals_ = true;
  bool rx_loans_ = false;
  std::unordered_map<ChannelId, Channel> channels_;
  std::unordered_map<std::uint16_t, ChannelId> by_bqi_;
  // Software-demux bindings in creation order: the deterministic walk order
  // for the interpreted modes and the hash-miss fallback.
  std::vector<ChannelId> binding_order_;
  // Synthesized mode's O(1) demux: header templates keyed verbatim (their
  // wildcard fields as stored), probed with progressively wilder variants
  // of the incoming packet's extracted flow.
  std::unordered_map<filter::FlowKey, ChannelId, filter::FlowKeyHash>
      bind_table_;
  std::unordered_map<std::uint16_t, ChannelId> raw_by_ethertype_;
  // Aggregated demux state (interpreted modes only). The trie is rebuilt
  // lazily after an unbind or a mode switch; binds insert incrementally.
  filter::FilterAggregate agg_;
  std::vector<ChannelId> agg_residual_;  // non-aggregable, ascending ids
  DemuxMode agg_mode_ = DemuxMode::kBpf;
  bool filter_aggregation_ = false;
  bool demux_differential_ = false;
  bool agg_valid_ = false;
  sim::SpaceId default_space_ = -1;
  DefaultHandler default_handler_;
  Counters counters_;
  sim::Histogram ring_hist_;
  sim::Histogram wakeup_hist_;
  std::uint64_t tx_throttle_remaining_ = 0;
  TenantPolicy policy_;
  QuarantineHandler quarantine_handler_;
  std::unordered_map<sim::SpaceId, TenantAccount> accounts_;
  std::unordered_map<sim::SpaceId, std::uint64_t> tx_rate_overrides_;
  bool demand_tracking_ = false;
  std::unordered_map<sim::SpaceId, std::uint64_t> tx_demand_bytes_;
  ChannelId next_id_ = 1;
};

}  // namespace ulnet::core
