#include "core/exec_env.h"

namespace ulnet::core {

bool is_an1(const hw::Nic& nic) {
  return dynamic_cast<const hw::An1Nic*>(&nic) != nullptr;
}

net::Frame frame_for(const hw::Nic& nic, net::MacAddr dst,
                     std::uint16_t ethertype, buf::ByteView payload,
                     std::uint16_t bqi, std::uint16_t bqi_advert) {
  net::Frame f;
  if (buf::PacketPool* pool = nic.pool()) {
    f.bytes = pool->acquire(net::An1Header::kSize + payload.size());
  }
  if (is_an1(nic)) {
    net::An1Header h;
    h.dst = dst;
    h.src = nic.mac();
    h.bqi = bqi;
    h.bqi_advert = bqi_advert;
    h.ethertype = ethertype;
    h.serialize(f.bytes);
  } else {
    net::EthHeader h{dst, nic.mac(), ethertype};
    h.serialize(f.bytes);
  }
  buf::put_bytes(f.bytes, payload);
  return f;
}

net::Frame frame_for_gather(const hw::Nic& nic, net::MacAddr dst,
                            std::uint16_t ethertype, buf::ByteView payload,
                            buf::ByteView payload2, std::uint16_t bqi,
                            std::uint16_t bqi_advert) {
  net::Frame f = frame_for(nic, dst, ethertype, payload, bqi, bqi_advert);
  buf::put_bytes(f.bytes, payload2);
  return f;
}

}  // namespace ulnet::core
