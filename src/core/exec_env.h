// HostStackEnv: a StackEnv bound to a simulated Host.
//
// Each protocol organization instantiates one of these per protocol-stack
// instance and customizes two things:
//   * `exec_space` -- the address space protocol code executes in (kernel
//     for Ultrix, the UX server's space for Mach/UX, the application's own
//     space for the user-level library), which drives context-switch and
//     queueing behaviour on the host CPU, and
//   * `transmit_fn` -- how a framed payload reaches the wire (direct driver
//     call, mapped device, per-packet IPC, or the network I/O module's
//     checked channel).
//
// Timers fire as normal-priority CPU tasks in `exec_space`, so timer-driven
// protocol work (retransmissions, delayed ACKs) contends for the CPU exactly
// like the rest of the stack.
#pragma once

#include <functional>
#include <utility>

#include "buf/packet_pool.h"
#include "os/host.h"
#include "proto/env.h"
#include "timer/wheel.h"

namespace ulnet::core {

class HostStackEnv : public proto::StackEnv {
 public:
  using TransmitFn =
      std::function<void(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                         buf::Bytes payload, const proto::TxFlow* flow)>;
  // Gathered variant: `headers` carries link-framable header bytes, the
  // payload rides by reference out of caller-owned storage.
  using GatherTransmitFn = std::function<void(
      int ifc, net::MacAddr dst, std::uint16_t ethertype, buf::Bytes headers,
      buf::ByteView payload, const proto::TxFlow* flow)>;

  HostStackEnv(os::Host& host, sim::Rng& rng, sim::SpaceId exec_space)
      : host_(host),
        rng_(rng),
        exec_space_(exec_space),
        wheel_(10 * sim::kMs),
        driver_(host.loop(), wheel_) {}

  void set_transmit(TransmitFn fn) { transmit_fn_ = std::move(fn); }
  void set_gather_transmit(GatherTransmitFn fn) {
    gather_transmit_fn_ = std::move(fn);
  }
  // Publish/clear the loan backing the packet currently being delivered
  // (user-level drain loop only; see StackEnv::current_rx_loan).
  void set_current_rx_loan(const buf::BufferLoan* ln) { rx_loan_ = ln; }
  os::Host& host() { return host_; }
  [[nodiscard]] sim::SpaceId exec_space() const { return exec_space_; }

  // ---- StackEnv ----
  [[nodiscard]] sim::Time now() const override { return host_.loop().now(); }
  void charge(sim::Time ns) override { host_.cpu().charge(ns); }
  [[nodiscard]] const sim::CostModel& cost() const override {
    return host_.cpu().cost();
  }
  std::uint32_t random32() override { return rng_.next_u32(); }

  void trace(sim::TraceEventType type, std::int64_t id = 0,
             std::int64_t a = 0, std::int64_t b = 0,
             const char* detail = nullptr) override {
    host_.cpu().trace(type, id, a, b, detail);
  }

  std::uint64_t new_trace_id() override {
    sim::Tracer* t = host_.cpu().tracer();
    return t != nullptr ? t->new_trace_id() : 0;
  }
  void trace_flow_start(const char* name, std::uint64_t id) override {
    sim::Tracer* t = host_.cpu().tracer();
    if (t != nullptr && t->enabled() && id != 0) {
      t->flow_start(host_.cpu().trace_now(), host_.cpu().host_ord(), name, id);
    }
  }
  void trace_flow_end(const char* name, std::uint64_t id) override {
    sim::Tracer* t = host_.cpu().tracer();
    if (t != nullptr && t->enabled() && id != 0) {
      t->flow_end(host_.cpu().trace_now(), host_.cpu().host_ord(), name, id);
    }
  }

  sim::CpuComponent swap_profile_component(sim::CpuComponent c) override {
    const sim::CpuComponent prev = host_.cpu().component();
    host_.cpu().set_component(c);
    return prev;
  }

  timer::TimerId schedule(sim::Time delay,
                          std::function<void()> cb) override {
    host_.cpu().metrics().timer_ops++;
    // The fire event must carry the id the caller got back, which does not
    // exist until schedule() returns; route it through a shared slot.
    auto idh = std::make_shared<timer::TimerId>(timer::kInvalidTimer);
    const timer::TimerId id =
        driver_.schedule(delay, [this, cb = std::move(cb), idh] {
          host_.cpu().trace(sim::TraceEventType::kTimerFire,
                            static_cast<std::int64_t>(*idh));
          host_.cpu().submit(exec_space_, sim::Prio::kNormal,
                             [this, cb](sim::TaskCtx&) {
                               // Timer-driven protocol work (retransmits,
                               // delayed ACKs) profiles as "timers" unless
                               // an inner scope refines it.
                               const sim::ProfileScope prof(
                                   host_.cpu(), sim::CpuComponent::kTimers);
                               cb();
                             });
        });
    *idh = id;
    host_.cpu().trace(sim::TraceEventType::kTimerSchedule,
                      static_cast<std::int64_t>(id), delay);
    return id;
  }
  void cancel_timer(timer::TimerId id) override {
    host_.cpu().metrics().timer_ops++;
    if (driver_.cancel(id)) {
      host_.cpu().trace(sim::TraceEventType::kTimerCancel,
                        static_cast<std::int64_t>(id));
    }
  }

  [[nodiscard]] int interface_count() const override {
    return static_cast<int>(host_.interfaces().size());
  }
  [[nodiscard]] net::MacAddr ifc_mac(int ifc) const override {
    return nic(ifc)->mac();
  }
  [[nodiscard]] net::Ipv4Addr ifc_ip(int ifc) const override {
    return host_.interfaces()[static_cast<std::size_t>(ifc)].ip;
  }
  [[nodiscard]] int ifc_prefix_len(int ifc) const override {
    return host_.interfaces()[static_cast<std::size_t>(ifc)].prefix_len;
  }
  [[nodiscard]] std::size_t ifc_mtu(int ifc) const override {
    return nic(ifc)->driver_mtu();
  }

  buf::Bytes acquire_buffer(std::size_t reserve) override {
    if (buf::PacketPool* p = host_.pool()) return p->acquire(reserve);
    buf::Bytes b;
    b.reserve(reserve);
    return b;
  }
  void recycle_buffer(buf::Bytes&& b) override {
    if (buf::PacketPool* p = host_.pool()) {
      p->recycle(std::move(b));
    } else {
      b = buf::Bytes{};
    }
  }

  void transmit(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                buf::Bytes payload, const proto::TxFlow* flow) override {
    if (transmit_fn_) transmit_fn_(ifc, dst, ethertype, std::move(payload), flow);
  }

  void transmit_gather(int ifc, net::MacAddr dst, std::uint16_t ethertype,
                       buf::Bytes headers, buf::ByteView payload,
                       const proto::TxFlow* flow) override {
    if (gather_transmit_fn_) {
      gather_transmit_fn_(ifc, dst, ethertype, std::move(headers), payload,
                          flow);
      return;
    }
    // No gather-capable path wired: materialize (honest, counted copy).
    proto::StackEnv::transmit_gather(ifc, dst, ethertype, std::move(headers),
                                     payload, flow);
  }

  sim::Metrics* metrics() override { return &host_.cpu().metrics(); }

  [[nodiscard]] const buf::BufferLoan* current_rx_loan() const override {
    return rx_loan_;
  }

  [[nodiscard]] hw::Nic* nic(int ifc) const {
    return host_.interfaces()[static_cast<std::size_t>(ifc)].nic;
  }

 private:
  os::Host& host_;
  sim::Rng& rng_;
  sim::SpaceId exec_space_;
  timer::TimingWheel wheel_;
  timer::TimerWheelDriver driver_;
  TransmitFn transmit_fn_;
  GatherTransmitFn gather_transmit_fn_;
  const buf::BufferLoan* rx_loan_ = nullptr;
};

// Frame a link payload for the given interface type. For AN1, `bqi` selects
// the destination ring (0 = kernel) and `bqi_advert` optionally advertises a
// return-path index (connection setup only).
net::Frame frame_for(const hw::Nic& nic, net::MacAddr dst,
                     std::uint16_t ethertype, buf::ByteView payload,
                     std::uint16_t bqi = 0, std::uint16_t bqi_advert = 0);

// Gathered framing: the NIC picks up `payload2` directly from its storage
// (modelling gather DMA out of an app-owned region) after the header bytes
// in `payload`. Only wall-clock concatenation happens here; no simulated
// copy cost is charged for `payload2`.
net::Frame frame_for_gather(const hw::Nic& nic, net::MacAddr dst,
                            std::uint16_t ethertype, buf::ByteView payload,
                            buf::ByteView payload2, std::uint16_t bqi = 0,
                            std::uint16_t bqi_advert = 0);

// True if the NIC is an AN1 interface (BQI-capable).
bool is_an1(const hw::Nic& nic);

}  // namespace ulnet::core
