#include "core/user_level.h"

#include <algorithm>

namespace ulnet::core {

// ---------------------------------------------------------------------------
// UserLevelOrg
// ---------------------------------------------------------------------------

UserLevelOrg::UserLevelOrg(os::World& world, os::Host& host)
    : world_(world), host_(host) {
  std::vector<NetIoModule*> raw;
  for (std::size_t i = 0; i < host.interfaces().size(); ++i) {
    netios_.push_back(std::make_unique<NetIoModule>(
        host, *host.interfaces()[i].nic, static_cast<int>(i)));
    raw.push_back(netios_.back().get());
  }
  registry_ = std::make_unique<RegistryServer>(world, host, raw);
}

api::NetSystem& UserLevelOrg::add_app(const std::string& name) {
  return add_app_impl(name);
}

UserLevelApp& UserLevelOrg::add_app_impl(const std::string& name) {
  apps_.push_back(std::make_unique<UserLevelApp>(*this, name));
  return *apps_.back();
}

// ---------------------------------------------------------------------------
// UserLevelApp / ProtocolLibrary
// ---------------------------------------------------------------------------

UserLevelApp::UserLevelApp(UserLevelOrg& org, const std::string& name)
    : org_(org),
      name_(name),
      space_(org.host().new_space(name)),
      // Upcalls already execute in the application's space: notifications
      // are plain procedure calls.
      bridge_([](std::function<void()> fn) { fn(); }) {
  env_ = std::make_unique<HostStackEnv>(org.host(), org.world().rng_for(org.host()), space_);
  env_->set_transmit([this](int ifc, net::MacAddr dst, std::uint16_t et,
                            buf::Bytes payload, const proto::TxFlow* flow) {
    lib_transmit(ifc, dst, et, std::move(payload), flow);
  });
  env_->set_gather_transmit(
      [this](int ifc, net::MacAddr dst, std::uint16_t et, buf::Bytes headers,
             buf::ByteView payload, const proto::TxFlow* flow) {
        lib_transmit_gather(ifc, dst, et, std::move(headers), payload, flow);
      });
  stack_ = std::make_unique<proto::NetworkStack>(*env_);
}

namespace {
// Transient-backpressure retry policy: exponential backoff from 200us,
// bounded -- a wedged device must not pin packets forever.
constexpr int kTxMaxAttempts = 6;
constexpr sim::Time kTxBackoffBase = 200 * sim::kUs;
}  // namespace

void UserLevelApp::lib_transmit(int, net::MacAddr dst,
                                std::uint16_t ethertype, buf::Bytes payload,
                                const proto::TxFlow* flow) {
  // The library reaches the wire only through its channels.
  if (dead_) return;
  if (flow == nullptr) {
    lib_unroutable_++;
    return;
  }
  ChannelId id = kInvalidChannel;
  net::MacAddr dst_override{};
  // Connectionless protocols ride the per-protocol wildcard channel, with
  // the destination supplied per send (the template's remote is wild).
  if (flow->ip_proto == proto::kProtoRrp &&
      rrp_channel_ != kInvalidChannel) {
    id = rrp_channel_;
    dst_override = dst;
  } else {
    auto it = chan_by_flow_.find(flow_key(*flow));
    if (it == chan_by_flow_.end()) {
      lib_unroutable_++;
      return;
    }
    id = it->second;
  }
  send_attempt(org_.host().cpu().current(), id, ethertype, std::move(payload),
               dst_override, 0, flow->trace_id);
}

void UserLevelApp::lib_transmit_gather(int, net::MacAddr,
                                       std::uint16_t ethertype,
                                       buf::Bytes headers,
                                       buf::ByteView payload,
                                       const proto::TxFlow* flow) {
  if (dead_) return;
  if (flow == nullptr) {
    lib_unroutable_++;
    return;
  }
  auto fit = chan_by_flow_.find(flow_key(*flow));
  if (fit == chan_by_flow_.end()) {
    lib_unroutable_++;
    return;
  }
  auto it = channels_.find(fit->second);
  if (it == channels_.end()) {
    lib_unroutable_++;
    return;
  }
  ChannelRec& rec = it->second;
  sim::TaskCtx& ctx = org_.host().cpu().current();
  const auto st = rec.netio->channel_send_gather(ctx, rec.id, rec.cap, space_,
                                                 ethertype, headers, payload,
                                                 flow->trace_id);
  if (st == NetIoModule::SendStatus::kOk) return;
  if (st == NetIoModule::SendStatus::kRejected) {
    // The template refused the headers; a materialized retry would fail the
    // identical check. Drop and let the transport retransmit.
    tx_drops_++;
    if (buf::PacketPool* pool = org_.host().pool()) {
      pool->recycle(std::move(headers));
    }
    return;
  }
  // Backpressure: the app-owned payload cannot be pinned across a backoff
  // (the sender is free to rewrite its region once this call returns), so
  // materialize the datagram once -- an honest, counted copy -- and hand it
  // to the ordinary retry path.
  env_->count_payload_copy(payload.size());
  buf::put_bytes(headers, payload);
  send_attempt(ctx, rec.id, ethertype, std::move(headers), net::MacAddr{}, 0,
               flow->trace_id);
}

void UserLevelApp::send_attempt(sim::TaskCtx& ctx, ChannelId id,
                                std::uint16_t ethertype, buf::Bytes payload,
                                net::MacAddr dst_override, int attempt,
                                std::uint64_t trace_id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    // Channel torn down while we were backing off.
    if (buf::PacketPool* pool = org_.host().pool()) {
      pool->recycle(std::move(payload));
    }
    return;
  }
  ChannelRec& rec = it->second;
  const auto st = rec.netio->channel_send_status(
      ctx, rec.id, rec.cap, space_, ethertype, payload, dst_override,
      trace_id);
  if (st != NetIoModule::SendStatus::kBackpressure) return;
  if (dead_ || attempt + 1 >= kTxMaxAttempts) {
    // Give up: drop the packet and let the transport's retransmission
    // machinery find out the slow way.
    tx_drops_++;
    if (buf::PacketPool* pool = org_.host().pool()) {
      pool->recycle(std::move(payload));
    }
    return;
  }
  tx_retries_++;
  env_->schedule(kTxBackoffBase << attempt,
                 [this, id, ethertype, p = std::move(payload), dst_override,
                  attempt, trace_id]() mutable {
                   send_attempt(org_.host().cpu().current(), id, ethertype,
                                std::move(p), dst_override, attempt + 1,
                                trace_id);
                 });
}

void UserLevelApp::start_drain(ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) return;
  ChannelRec& rec = it->second;
  rec.netio->channel_wait(
      rec.id, [this, id](sim::TaskCtx& ctx) { drain(ctx, id); });
}

void UserLevelApp::drain(sim::TaskCtx& ctx, ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) return;  // channel died while we slept
  // A stalled (or dead) library consumes the notification but processes
  // nothing: packets accumulate in the ring until resume() re-drains.
  if (dead_ || stalled_) return;
  const sim::ProfileScope prof(org_.host().cpu(),
                               sim::CpuComponent::kLibraryDrain);
  ChannelRec& rec = it->second;
  rec.draining = true;
  int drained = 0;
  // Delimit the whole-ring burst: buffer returns already batch into one
  // channel_post_buffers below, and connections with ACK coalescing get at
  // most one ACK decision per burst instead of one per segment.
  proto::TcpModule& tcp = stack_->tcp();
  tcp.begin_input_burst();
  for (;;) {
    auto pkt = rec.netio->channel_pop(rec.id);
    if (!pkt) {
      if (rec.netio->channel_rearm(rec.id)) continue;  // late arrivals
      break;
    }
    drained++;
    packets_drained_++;
    ctx.charge(org_.host().cpu().cost().lib_rx_per_packet);
    if (hoard_loans_) {
      // Byzantine hoarder: keep the buffer (or the loan, unreleased)
      // forever. No upcall runs and no slot is ever reposted; the pool's
      // loan table shows the damage until the dead-client sweep.
      if (pkt->loan.engaged()) {
        hoard_held_.push_back(std::move(pkt->loan));
      } else {
        hoard_bytes_.push_back(std::move(pkt->payload));
      }
      continue;
    }
    if (auto rit = raw_rx_.find(id); rit != raw_rx_.end()) {
      buf::Bytes p = std::move(pkt->payload);
      if (pkt->loan.engaged()) {
        // Raw consumers take owned bytes; materialize and return the loan.
        const buf::ByteView v = pkt->loan.view();
        p.assign(v.begin(), v.end());
        pkt->loan.release(static_cast<std::uint64_t>(ctx.now()));
      }
      rit->second(ctx, std::move(p));
    } else if (pkt->loan.engaged()) {
      // Zero-copy delivery: publish the loan for the duration of the
      // upcall so IP/TCP can slice it by reference, then drop the ring's
      // reference -- the connection holds its own if it kept a slice.
      tcp.set_current_rx_trace_id(pkt->trace_id);
      env_->set_current_rx_loan(&pkt->loan);
      stack_->link_input(rec.netio->ifc_index(), pkt->ethertype,
                         pkt->loan.view());
      env_->set_current_rx_loan(nullptr);
      tcp.set_current_rx_trace_id(0);
      pkt->loan.release(static_cast<std::uint64_t>(ctx.now()));
    } else {
      // Provenance of the packet being processed, so protocol code can link
      // effects (an ACK sent from input) back to their cause.
      tcp.set_current_rx_trace_id(pkt->trace_id);
      stack_->link_input(rec.netio->ifc_index(), pkt->ethertype,
                         pkt->payload);
      tcp.set_current_rx_trace_id(0);
      // link_input reads the payload by view; the ring buffer's storage can
      // go straight back to the pool.
      if (buf::PacketPool* pool = org_.host().pool()) {
        pool->recycle(std::move(pkt->payload));
      }
    }
    // The channel may have been destroyed by protocol processing
    // (e.g. an RST that closed the connection and released the socket).
    it = channels_.find(id);
    if (it == channels_.end()) {
      tcp.end_input_burst();
      if (drained > 0) {
        drain_batch_hist_.record(static_cast<std::uint64_t>(drained));
      }
      return;
    }
  }
  tcp.end_input_burst();
  if (drained > 0) {
    drain_batch_hist_.record(static_cast<std::uint64_t>(drained));
    // Hoarders and refill-starvers never return their receive slots.
    if (!hoard_loans_ && !starve_refill_) {
      rec.netio->channel_post_buffers(rec.id, drained);
    }
  }
  start_drain(id);
}

UserLevelApp::ChannelRec* UserLevelApp::rec_of_conn(
    proto::TcpConnection* conn) {
  for (auto& [id, rec] : channels_) {
    if (rec.conn == conn) return &rec;
  }
  return nullptr;
}

// ---- Registry interaction ----

bool UserLevelApp::listen(
    std::uint16_t port,
    std::function<api::SocketEvents(api::SocketId)> acceptor) {
  if (dead_) return false;
  acceptors_[port] = std::move(acceptor);
  org_.registry().listen_request(org_.host().cpu().current(), this, port,
                                 tcp_config_);
  return true;
}

void UserLevelApp::connect(net::Ipv4Addr dst, std::uint16_t port,
                           api::SocketEvents evs,
                           std::function<void(api::SocketId)> done) {
  if (dead_) {
    if (done) done(api::kInvalidSocket);
    return;
  }
  const std::uint64_t rid = next_request_++;
  pending_connects_[rid] = PendingConnect{std::move(evs), std::move(done)};
  org_.registry().connect_request(org_.host().cpu().current(), this, rid,
                                  dst, port, tcp_config_);
}

void UserLevelApp::handoff(HandoffInfo info) {
  if (info.request_id != 0) {
    auto it = pending_connects_.find(info.request_id);
    if (it == pending_connects_.end()) return;
    PendingConnect pc = std::move(it->second);
    pending_connects_.erase(it);
    adopt(info, std::move(pc.events), std::move(pc.done));
  } else {
    // Accepted connection: consult the acceptor for this listen port.
    auto ait = acceptors_.find(info.listen_port);
    if (ait == acceptors_.end()) return;
    auto acceptor = ait->second;
    adopt(info, api::SocketEvents{},
          [this, acceptor](api::SocketId id) {
            if (auto* e = bridge_.find(id)) e->events = acceptor(id);
          });
  }
}

void UserLevelApp::adopt(HandoffInfo& info, api::SocketEvents evs,
                         std::function<void(api::SocketId)> done) {
  // Seed the library's ARP cache from the handoff: the registry resolved
  // the peer during the handshake; the library never ARPs on its own.
  stack_->arp().add_entry(info.state.remote_ip, info.peer_mac);

  proto::TcpConnection* conn =
      stack_->tcp().import_connection(info.state, &bridge_);
  if (conn == nullptr) return;

  ChannelRec rec;
  rec.netio = info.netio;
  rec.id = info.channel;
  rec.cap = info.cap;
  rec.conn = conn;
  channels_[info.channel] = rec;
  chan_by_flow_[flow_key(conn->tx_flow())] = info.channel;

  const api::SocketId id = bridge_.attach(conn, std::move(evs));
  start_drain(info.channel);

  if (done) done(id);
  if (auto* e = bridge_.find(id); e != nullptr) {
    if (e->events.on_established) e->events.on_established();
    // The peer's FIN may already have been consumed by the registry during
    // the hand-off window.
    if (conn->state() == proto::TcpState::kCloseWait && e->events.on_eof) {
      e->events.on_eof();
    }
  }
}

void UserLevelApp::connect_failed(std::uint64_t request_id,
                                  const std::string& reason) {
  auto it = pending_connects_.find(request_id);
  if (it == pending_connects_.end()) return;
  PendingConnect pc = std::move(it->second);
  pending_connects_.erase(it);
  if (pc.events.on_closed) pc.events.on_closed(reason);
  if (pc.done) pc.done(api::kInvalidSocket);
}

// ---- Data path (pure library calls: no traps, no copies) ----

std::size_t UserLevelApp::send(api::SocketId s, buf::ByteView data) {
  if (dead_) return 0;
  auto* e = bridge_.find(s);
  if (e == nullptr || e->closed) return 0;
  // The application composes its data directly in the shared buffer
  // region: no user/kernel copy on this path.
  return e->conn->send(data);
}

buf::Bytes UserLevelApp::recv(api::SocketId s, std::size_t max) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return {};
  return e->conn->read(max);
}

std::vector<buf::RxChunk> UserLevelApp::recv_zc(api::SocketId s,
                                                std::size_t max) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return {};
  return e->conn->read_chunks(max);
}

void UserLevelApp::release_chunks(std::vector<buf::RxChunk>& chunks) {
  const auto now = static_cast<std::uint64_t>(env_->now());
  for (buf::RxChunk& c : chunks) {
    if (c.loan.engaged()) c.loan.release(now);
  }
  chunks.clear();
}

std::size_t UserLevelApp::send_space(api::SocketId s) {
  auto* e = bridge_.find(s);
  return e == nullptr ? 0 : e->conn->send_space();
}

std::size_t UserLevelApp::bytes_available(api::SocketId s) {
  auto* e = bridge_.find(s);
  return e == nullptr ? 0 : e->conn->bytes_available();
}

void UserLevelApp::close(api::SocketId s) {
  auto* e = bridge_.find(s);
  if (e != nullptr) e->conn->close();
}

void UserLevelApp::release(api::SocketId s) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return;
  proto::TcpConnection* conn = e->conn;
  ChannelRec* rec = rec_of_conn(conn);
  if (rec != nullptr) {
    const std::uint16_t lport = conn->local_port();
    org_.registry().release_channel(org_.host().cpu().current(), rec->netio,
                                    rec->id, lport);
    chan_by_flow_.erase(flow_key(conn->tx_flow()));
    channels_.erase(rec->id);
  }
  bridge_.detach(s);
  stack_->tcp().release(conn);
}

void UserLevelApp::run_app(std::function<void(sim::TaskCtx&)> fn) {
  org_.host().cpu().submit(space_, sim::Prio::kNormal, std::move(fn));
}

// ---- Extensions ----

bool RawChannel::send(sim::TaskCtx& ctx, buf::Bytes payload) {
  return netio->channel_send(ctx, id, cap, app->app_space(), ethertype,
                             std::move(payload));
}

void UserLevelApp::open_raw(
    sim::TaskCtx& ctx, int ifc, std::uint16_t ethertype, net::MacAddr peer,
    std::function<void(sim::TaskCtx&, buf::Bytes)> on_rx,
    std::function<void(RawChannel)> on_open) {
  NetIoModule* netio = &org_.netio(ifc);
  org_.registry().raw_request(
      ctx, this, netio, ethertype, peer,
      [this, netio, ethertype, on_rx = std::move(on_rx),
       on_open = std::move(on_open)](ChannelId id, os::PortId cap) {
        ChannelRec rec;
        rec.netio = netio;
        rec.id = id;
        rec.cap = cap;
        channels_[id] = rec;
        raw_rx_[id] = on_rx;
        start_drain(id);
        RawChannel rc;
        rc.app = this;
        rc.netio = netio;
        rc.id = id;
        rc.cap = cap;
        rc.ethertype = ethertype;
        on_open(rc);
      });
}

api::SocketId UserLevelApp::pass_connection(api::SocketId s,
                                            UserLevelApp& target,
                                            api::SocketEvents evs) {
  auto* e = bridge_.find(s);
  if (e == nullptr) return api::kInvalidSocket;
  proto::TcpConnection* conn = e->conn;
  ChannelRec* rec = rec_of_conn(conn);
  if (rec == nullptr) return api::kInvalidSocket;

  // Export everything, retarget the channel at the new space (region
  // remap + capability move -- pure kernel bookkeeping, no registry), and
  // rebuild the connection inside the target's library.
  proto::TcpHandoffState st = conn->export_state();
  const auto mac = stack_->arp().lookup(conn->remote_ip());
  NetIoModule* netio = rec->netio;
  const ChannelId chan = rec->id;
  const os::PortId cap = rec->cap;

  netio->retarget_channel(org_.host().cpu().current(), chan,
                          target.app_space());
  chan_by_flow_.erase(flow_key(conn->tx_flow()));
  channels_.erase(chan);
  bridge_.detach(s);
  stack_->tcp().release(conn);

  proto::TcpConnection* nconn =
      target.stack_->tcp().import_connection(st, &target.bridge_);
  if (nconn == nullptr) return api::kInvalidSocket;
  if (mac) target.stack_->arp().add_entry(st.remote_ip, *mac);
  ChannelRec nrec;
  nrec.netio = netio;
  nrec.id = chan;
  nrec.cap = cap;
  nrec.conn = nconn;
  target.channels_[chan] = nrec;
  target.chan_by_flow_[flow_key(nconn->tx_flow())] = chan;
  const api::SocketId nid = target.bridge_.attach(nconn, std::move(evs));
  target.start_drain(chan);
  return nid;
}

void UserLevelApp::seed_arp(net::Ipv4Addr ip, net::MacAddr mac) {
  stack_->arp().add_entry(ip, mac);
}

void UserLevelApp::enable_rrp(sim::TaskCtx& ctx, int ifc,
                              std::function<void()> ready) {
  NetIoModule* netio = &org_.netio(ifc);
  org_.registry().protocol_channel_request(
      ctx, this, netio, proto::kProtoRrp,
      [this, netio, ready = std::move(ready)](ChannelId id, os::PortId cap) {
        ChannelRec rec;
        rec.netio = netio;
        rec.id = id;
        rec.cap = cap;
        channels_[id] = rec;
        rrp_channel_ = id;
        start_drain(id);
        if (ready) ready();
      });
}

void UserLevelApp::kill(sim::TaskCtx& ctx) {
  if (dead_) return;
  dead_ = true;
  // The process is gone mid-instruction: no FINs, no inherit RPCs, no
  // registry cooperation. Local state evaporates (releasing each connection
  // cancels its timers so the dead library never runs again), and the only
  // thing the trusted path learns is the kernel's death notification.
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ChannelId id : ids) {
    ChannelRec& rec = channels_[id];
    if (rec.conn != nullptr) {
      const api::SocketId sid = bridge_.id_of(rec.conn);
      if (sid != api::kInvalidSocket) bridge_.detach(sid);
      // A crashed process cannot return its loans: drop any by-reference
      // receive chunks WITHOUT releasing them, so the pool slots stay
      // outstanding until the registry's dead-client sweep reclaims them
      // (the observable "loan leak" the chaos invariants assert on).
      rec.conn->abandon_rx_chunks();
      stack_->tcp().release(rec.conn);
    }
  }
  channels_.clear();
  chan_by_flow_.clear();
  raw_rx_.clear();
  pending_connects_.clear();
  acceptors_.clear();
  rrp_channel_ = kInvalidChannel;
  org_.host().kernel().space_died(ctx, space_);
}

void UserLevelApp::resume() {
  if (!stalled_) return;
  stalled_ = false;
  // Drain everything that piled up, one task per channel, in id order.
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ChannelId id : ids) {
    run_app([this, id](sim::TaskCtx& ctx) { drain(ctx, id); });
  }
}

void UserLevelApp::set_repoll_interval(sim::Time interval) {
  repoll_interval_ = interval;
  if (interval > 0 && !repoll_armed_) {
    repoll_armed_ = true;
    schedule_repoll();
  }
}

void UserLevelApp::schedule_repoll() {
  env_->schedule(repoll_interval_, [this] {
    if (dead_ || repoll_interval_ <= 0) {
      repoll_armed_ = false;
      return;
    }
    repolls_++;
    if (!stalled_) {
      std::vector<ChannelId> ids;
      for (auto& [id, rec] : channels_) ids.push_back(id);
      std::sort(ids.begin(), ids.end());
      for (const ChannelId id : ids) {
        auto it = channels_.find(id);
        if (it == channels_.end()) continue;
        // A fully starved AN1 ring would black-hole the flow forever (no
        // packets -> no drain -> no repost); repost a full complement.
        it->second.netio->channel_replenish(id);
        if (it->second.netio->channel_ring_depth(id) == 0) continue;
        // Work sat in the ring with nobody dispatched to take it: either a
        // wakeup was lost or the service thread fell behind. Draining also
        // consumes any stale semaphore count, so the channel self-heals.
        repoll_recoveries_++;
        drain(org_.host().cpu().current(), id);
      }
    }
    schedule_repoll();
  });
}

void UserLevelApp::drop_next_wakeup() {
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ChannelId id : ids) {
    channels_[id].netio->channel_drop_next_wakeup(id);
  }
}

int UserLevelApp::exhaust_rings() {
  int discarded = 0;
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ChannelId id : ids) {
    discarded += channels_[id].netio->exhaust_channel(id);
  }
  return discarded;
}

int UserLevelApp::forge_sends(sim::TaskCtx& ctx, int n,
                              std::uint16_t forged_src_port) {
  if (dead_) return 0;
  // Lowest-id connection-bound channel, for determinism across runs.
  ChannelRec* target = nullptr;
  ChannelId best = kInvalidChannel;
  for (auto& [id, rec] : channels_) {
    if (rec.conn == nullptr) continue;
    if (target == nullptr || id < best) {
      target = &rec;
      best = id;
    }
  }
  if (target == nullptr) return 0;
  const proto::TxFlow flow = target->conn->tx_flow();
  buf::PacketPool* pool = org_.host().pool();
  int refused = 0;
  for (int i = 0; i < n; ++i) {
    // A well-formed 24-byte TCP/IP header prefix whose source port does not
    // match the installed template: the per-send check must refuse every
    // one of these before it reaches the driver.
    buf::Bytes hdr = pool != nullptr ? pool->acquire(24) : buf::Bytes{};
    hdr.resize(24, 0);
    hdr[0] = 0x45;
    hdr[9] = flow.ip_proto;
    buf::wr32(hdr, 12, flow.local_ip.value);
    buf::wr32(hdr, 16, flow.remote_ip.value);
    buf::wr16(hdr, 20, forged_src_port);
    buf::wr16(hdr, 22, flow.remote_port);
    const auto st = target->netio->channel_send_status(
        ctx, target->id, target->cap, space_, net::kEtherTypeIp, hdr);
    if (st != NetIoModule::SendStatus::kOk) refused++;
    if (pool != nullptr && hdr.capacity() != 0) {
      pool->recycle(std::move(hdr));
    }
    // Quarantine teardown may have destroyed the channel under us.
    auto it = channels_.find(best);
    if (it == channels_.end()) break;
    target = &it->second;
  }
  return refused;
}

int UserLevelApp::spam_wakeups(sim::TaskCtx& ctx, int n) {
  if (dead_) return 0;
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  int traps = 0;
  for (int i = 0; i < n; ++i) {
    for (const ChannelId id : ids) {
      auto it = channels_.find(id);
      if (it == channels_.end()) continue;
      // Each spurious re-arm is a genuine kernel entry: it burns trap time
      // (charged like any library crossing) and may consume a stale
      // notification another drain was counting on.
      ctx.charge(org_.host().cpu().cost().trap_specialized);
      it->second.netio->channel_rearm(id);
      traps++;
    }
  }
  return traps;
}

void UserLevelApp::simulate_crash(sim::TaskCtx& ctx) {
  // The kernel reclaims the address space; the registry inherits every
  // connection, resets the peers, and quarantines the ports.
  std::vector<ChannelId> ids;
  for (auto& [id, rec] : channels_) ids.push_back(id);
  for (ChannelId id : ids) {
    ChannelRec& rec = channels_[id];
    if (rec.conn == nullptr) continue;
    proto::TcpHandoffState st = rec.conn->export_state();
    org_.registry().inherit_connection(ctx, std::move(st), rec.netio, rec.id);
    const api::SocketId sid = bridge_.id_of(rec.conn);
    if (sid != api::kInvalidSocket) bridge_.detach(sid);
    chan_by_flow_.erase(flow_key(rec.conn->tx_flow()));
    stack_->tcp().release(rec.conn);
    channels_.erase(id);
  }
  pending_connects_.clear();
}

}  // namespace ulnet::core
