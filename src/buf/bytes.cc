#include "buf/bytes.h"

#include <cstdio>

namespace ulnet::buf {

std::string hex_dump(ByteView b) {
  std::string out;
  out.reserve(b.size() * 3 + b.size() / 16 + 1);
  char tmp[4];
  for (std::size_t i = 0; i < b.size(); ++i) {
    std::snprintf(tmp, sizeof tmp, "%02x", b[i]);
    out += tmp;
    out += ((i + 1) % 16 == 0) ? '\n' : ' ';
  }
  return out;
}

}  // namespace ulnet::buf
