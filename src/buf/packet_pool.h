// Size-classed free-list of packet buffers.
//
// The simulator's data path used to allocate a fresh std::vector on nearly
// every hop (frame build, ISR copy, netio payload copy, IP deliver, ...).
// PacketPool recycles those vectors instead: acquire() vends an empty Bytes
// whose capacity covers the caller's hint (reusing a previously recycled
// buffer when one is available), recycle() returns a buffer's storage to
// the pool. This changes wall-clock behaviour only -- simulated costs are
// charged exactly as before -- but the hit/miss/high-water stats make the
// allocation behaviour of a run observable and testable.
//
// Pools are per-World (not global) so identical seeds produce identical
// pool counters; bind_metrics() mirrors the stats into sim::Metrics for the
// observability layer.
//
// Loans (the zero-copy RX path): loan_out() parks a buffer's storage in a
// generation-checked loan table and vends a BufferLoan handle -- a
// refcounted *view* over pool storage that the network I/O module can hand
// to a library, and the library to its application, without copying the
// payload. Every handle copy takes a reference; every reference must be
// returned by an explicit release(). Dropping a handle without releasing it
// is deliberately observable (a crashed client cannot run destructors): the
// slot stays out of circulation until reclaim_loans() sweeps the dead
// owner's loans, which is what the registry's dead-client sweep and the
// chaos `loan_leak` invariant check.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "buf/bytes.h"
#include "sim/histogram.h"

namespace ulnet::sim {
struct Metrics;
}  // namespace ulnet::sim

namespace ulnet::buf {

class PacketPool;

// A refcounted view over storage parked in a PacketPool loan slot.
// Copying takes a reference; release() returns one. The destructor does
// NOT release -- see the PacketPool header comment for why leaks are a
// feature of the crash model, not a bug of the handle.
class BufferLoan {
 public:
  BufferLoan() = default;
  BufferLoan(const BufferLoan& o);
  BufferLoan& operator=(const BufferLoan& o);
  BufferLoan(BufferLoan&& o) noexcept
      : pool_(std::exchange(o.pool_, nullptr)), slot_(o.slot_), gen_(o.gen_) {}
  BufferLoan& operator=(BufferLoan&& o) noexcept {
    if (this != &o) {
      pool_ = std::exchange(o.pool_, nullptr);
      slot_ = o.slot_;
      gen_ = o.gen_;
    }
    return *this;
  }
  ~BufferLoan() = default;  // intentionally no auto-release

  [[nodiscard]] bool engaged() const { return pool_ != nullptr; }
  [[nodiscard]] ByteView view() const;
  [[nodiscard]] std::uint32_t slot() const { return slot_; }

  // Return this handle's reference; the slot recycles into the pool's free
  // lists when the last reference is released. Returns false if the handle
  // was already released, or -- counted as a loan_double_release -- if the
  // slot was reclaimed/recycled under it (stale generation).
  bool release(std::uint64_t now);

 private:
  friend class PacketPool;
  BufferLoan(PacketPool* pool, std::uint32_t slot, std::uint32_t gen)
      : pool_(pool), slot_(slot), gen_(gen) {}
  PacketPool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// One unit of received payload as handed to a reader: either a loaned view
// into pool storage (zero-copy) or an owned copy (the selective-copy
// fallback: out-of-order reassembly, imports, non-loaned rings).
// [off, off+len) addresses the useful bytes inside the backing storage.
struct RxChunk {
  BufferLoan loan;   // engaged <=> delivered by reference
  Bytes owned;       // used when the bytes were copied after all
  std::size_t off = 0;
  std::size_t len = 0;

  [[nodiscard]] ByteView view() const {
    const ByteView base = loan.engaged() ? loan.view() : ByteView(owned);
    return base.subspan(off, len);
  }
};

class PacketPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from a free list
    std::uint64_t misses = 0;    // acquire had to allocate
    std::uint64_t recycles = 0;  // buffers handed back (retained or dropped)
    std::uint64_t outstanding = 0;  // acquired minus recycled (saturating)
    std::uint64_t high_water = 0;   // max outstanding ever observed
    // Loan table (zero-copy RX).
    std::uint64_t loans_out = 0;          // loan_out() calls
    std::uint64_t loans_outstanding = 0;  // active loan slots right now
    std::uint64_t loan_high_water = 0;    // max active slots ever
    std::uint64_t loans_reclaimed = 0;    // slots force-freed by owner sweep
    std::uint64_t loan_double_releases = 0;  // stale-generation releases
    std::uint64_t loan_regrows = 0;  // loan slab reallocations mid-run
  };

  static constexpr std::size_t kClassSizes[] = {256,  512,   1024,  2048,
                                                4096, 16384, 65536};
  static constexpr std::size_t kNumClasses =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  // Per-class retention bound: beyond this, recycled buffers are freed.
  static constexpr std::size_t kMaxFreePerClass = 64;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // An empty Bytes with capacity >= `capacity_hint` (hints above the largest
  // class fall through to a plain allocation and count as a miss).
  Bytes acquire(std::size_t capacity_hint);

  // Hand a buffer's storage back. Empty-capacity (e.g. moved-from) buffers
  // are ignored; buffers smaller than the smallest class or overflowing the
  // retention bound are simply freed.
  void recycle(Bytes&& b);

  // ---- Loans (zero-copy RX) ----------------------------------------------
  // Park `storage` in a loan slot owned by `owner` (an address-space id for
  // registry reclaim; -1 = unowned) and return a handle with one reference.
  BufferLoan loan_out(Bytes&& storage, std::int64_t owner, std::uint64_t now);

  // Pre-size the loan slab for `n` concurrent loans so loan-outs never
  // reallocate (and move every slot) mid-run; growth beyond `n` still
  // works but counts as a loan_regrow.
  void reserve_loans(std::size_t n) {
    loans_.reserve(n);
    loan_free_.reserve(n);
  }

  // Bytes of backing storage currently resident in the pool: retained
  // free-list buffers plus storage parked in active loan slots. Uses
  // capacity (what the allocator actually holds), so this is a wall-clock
  // observability number, not a simulated cost.
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& cls : free_) {
      for (const Bytes& b : cls) total += b.capacity();
    }
    for (const LoanSlot& s : loans_) total += s.storage.capacity();
    return total;
  }

  // Force-free every active loan slot tagged with `owner` (dead-client
  // sweep). Returns the number of slots reclaimed.
  std::size_t reclaim_loans(std::int64_t owner, std::uint64_t now);

  // Active loan slots currently tagged with `owner` -- the per-tenant gauge
  // the NetIoModule loan budget polices against.
  [[nodiscard]] std::size_t loans_of_owner(std::int64_t owner) const;

  // Residency (loan_out -> final release/reclaim) in the caller's `now`
  // units (simulated ns in a World).
  [[nodiscard]] const sim::Histogram& loan_residency() const {
    return loan_residency_;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t free_count(std::size_t cls) const {
    return free_[cls].size();
  }

  // Mirror hits/misses/recycles/high_water and the loan stats into `m`.
  void bind_metrics(sim::Metrics* m) { metrics_ = m; }

  // {"hits":..,"misses":..,...,"classes":[{"size":..,"free":..},...]}
  [[nodiscard]] std::string dump_json() const;

 private:
  friend class BufferLoan;

  struct LoanSlot {
    Bytes storage;
    std::int64_t owner = -1;
    std::uint64_t loaned_at = 0;
    std::uint32_t refs = 0;
    std::uint32_t gen = 0;
    bool active = false;
  };

  void loan_addref(std::uint32_t slot, std::uint32_t gen);
  bool loan_release(std::uint32_t slot, std::uint32_t gen, std::uint64_t now);
  [[nodiscard]] ByteView loan_view(std::uint32_t slot,
                                   std::uint32_t gen) const;
  void loan_retire(LoanSlot& s, std::uint64_t now);  // refs==0 or reclaim

  std::array<std::vector<Bytes>, kNumClasses> free_;
  Stats stats_;
  sim::Metrics* metrics_ = nullptr;
  std::vector<LoanSlot> loans_;
  std::vector<std::uint32_t> loan_free_;
  sim::Histogram loan_residency_;
};

inline BufferLoan::BufferLoan(const BufferLoan& o)
    : pool_(o.pool_), slot_(o.slot_), gen_(o.gen_) {
  if (pool_ != nullptr) pool_->loan_addref(slot_, gen_);
}

inline BufferLoan& BufferLoan::operator=(const BufferLoan& o) {
  if (this != &o) {
    // The previous reference (if any) is dropped, not released: assignment
    // follows the same explicit-release discipline as destruction.
    pool_ = o.pool_;
    slot_ = o.slot_;
    gen_ = o.gen_;
    if (pool_ != nullptr) pool_->loan_addref(slot_, gen_);
  }
  return *this;
}

inline ByteView BufferLoan::view() const {
  return pool_ != nullptr ? pool_->loan_view(slot_, gen_) : ByteView{};
}

inline bool BufferLoan::release(std::uint64_t now) {
  if (pool_ == nullptr) return false;
  PacketPool* p = std::exchange(pool_, nullptr);
  return p->loan_release(slot_, gen_, now);
}

// RAII borrow: returns the buffer to the pool on destruction. Move-only.
// take() detaches the buffer (e.g. to hand ownership down the stack).
class PooledBytes {
 public:
  PooledBytes() = default;
  PooledBytes(PacketPool* pool, Bytes bytes)
      : pool_(pool), bytes_(std::move(bytes)) {}
  PooledBytes(PooledBytes&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        bytes_(std::move(other.bytes_)) {}
  PooledBytes& operator=(PooledBytes&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      bytes_ = std::move(other.bytes_);
    }
    return *this;
  }
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  ~PooledBytes() { release(); }

  Bytes& operator*() { return bytes_; }
  Bytes* operator->() { return &bytes_; }
  [[nodiscard]] const Bytes& operator*() const { return bytes_; }
  [[nodiscard]] ByteView view() const { return bytes_; }

  // Detach: the caller now owns the buffer; the pool is no longer involved.
  [[nodiscard]] Bytes take() && {
    pool_ = nullptr;
    return std::move(bytes_);
  }

  // Return the buffer to the pool now (no-op if already released/taken).
  void release() {
    if (pool_ != nullptr) {
      pool_->recycle(std::move(bytes_));
      pool_ = nullptr;
    }
    bytes_.clear();
  }

 private:
  PacketPool* pool_ = nullptr;
  Bytes bytes_;
};

// Scoped acquire: pool.borrow(n) gives a PooledBytes returning on scope exit.
inline PooledBytes borrow(PacketPool& pool, std::size_t capacity_hint) {
  return PooledBytes(&pool, pool.acquire(capacity_hint));
}

}  // namespace ulnet::buf
