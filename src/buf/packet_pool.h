// Size-classed free-list of packet buffers.
//
// The simulator's data path used to allocate a fresh std::vector on nearly
// every hop (frame build, ISR copy, netio payload copy, IP deliver, ...).
// PacketPool recycles those vectors instead: acquire() vends an empty Bytes
// whose capacity covers the caller's hint (reusing a previously recycled
// buffer when one is available), recycle() returns a buffer's storage to
// the pool. This changes wall-clock behaviour only -- simulated costs are
// charged exactly as before -- but the hit/miss/high-water stats make the
// allocation behaviour of a run observable and testable.
//
// Pools are per-World (not global) so identical seeds produce identical
// pool counters; bind_metrics() mirrors the stats into sim::Metrics for the
// observability layer.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "buf/bytes.h"

namespace ulnet::sim {
struct Metrics;
}  // namespace ulnet::sim

namespace ulnet::buf {

class PacketPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from a free list
    std::uint64_t misses = 0;    // acquire had to allocate
    std::uint64_t recycles = 0;  // buffers handed back (retained or dropped)
    std::uint64_t outstanding = 0;  // acquired minus recycled (saturating)
    std::uint64_t high_water = 0;   // max outstanding ever observed
  };

  static constexpr std::size_t kClassSizes[] = {256,  512,   1024,  2048,
                                                4096, 16384, 65536};
  static constexpr std::size_t kNumClasses =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  // Per-class retention bound: beyond this, recycled buffers are freed.
  static constexpr std::size_t kMaxFreePerClass = 64;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // An empty Bytes with capacity >= `capacity_hint` (hints above the largest
  // class fall through to a plain allocation and count as a miss).
  Bytes acquire(std::size_t capacity_hint);

  // Hand a buffer's storage back. Empty-capacity (e.g. moved-from) buffers
  // are ignored; buffers smaller than the smallest class or overflowing the
  // retention bound are simply freed.
  void recycle(Bytes&& b);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t free_count(std::size_t cls) const {
    return free_[cls].size();
  }

  // Mirror hits/misses/recycles/high_water into `m->pool_*`.
  void bind_metrics(sim::Metrics* m) { metrics_ = m; }

  // {"hits":..,"misses":..,...,"classes":[{"size":..,"free":..},...]}
  [[nodiscard]] std::string dump_json() const;

 private:
  std::array<std::vector<Bytes>, kNumClasses> free_;
  Stats stats_;
  sim::Metrics* metrics_ = nullptr;
};

// RAII borrow: returns the buffer to the pool on destruction. Move-only.
// take() detaches the buffer (e.g. to hand ownership down the stack).
class PooledBytes {
 public:
  PooledBytes() = default;
  PooledBytes(PacketPool* pool, Bytes bytes)
      : pool_(pool), bytes_(std::move(bytes)) {}
  PooledBytes(PooledBytes&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        bytes_(std::move(other.bytes_)) {}
  PooledBytes& operator=(PooledBytes&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      bytes_ = std::move(other.bytes_);
    }
    return *this;
  }
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  ~PooledBytes() { release(); }

  Bytes& operator*() { return bytes_; }
  Bytes* operator->() { return &bytes_; }
  [[nodiscard]] const Bytes& operator*() const { return bytes_; }
  [[nodiscard]] ByteView view() const { return bytes_; }

  // Detach: the caller now owns the buffer; the pool is no longer involved.
  [[nodiscard]] Bytes take() && {
    pool_ = nullptr;
    return std::move(bytes_);
  }

  // Return the buffer to the pool now (no-op if already released/taken).
  void release() {
    if (pool_ != nullptr) {
      pool_->recycle(std::move(bytes_));
      pool_ = nullptr;
    }
    bytes_.clear();
  }

 private:
  PacketPool* pool_ = nullptr;
  Bytes bytes_;
};

// Scoped acquire: pool.borrow(n) gives a PooledBytes returning on scope exit.
inline PooledBytes borrow(PacketPool& pool, std::size_t capacity_hint) {
  return PooledBytes(&pool, pool.acquire(capacity_hint));
}

}  // namespace ulnet::buf
