#include "buf/packet_pool.h"

#include "sim/metrics.h"

namespace ulnet::buf {

namespace {

// Smallest class whose size covers `n`, or kNumClasses if none.
std::size_t class_covering(std::size_t n) {
  for (std::size_t c = 0; c < PacketPool::kNumClasses; ++c) {
    if (PacketPool::kClassSizes[c] >= n) return c;
  }
  return PacketPool::kNumClasses;
}

// Largest class whose size fits within capacity `cap`, or kNumClasses.
std::size_t class_fitting(std::size_t cap) {
  for (std::size_t c = PacketPool::kNumClasses; c-- > 0;) {
    if (PacketPool::kClassSizes[c] <= cap) return c;
  }
  return PacketPool::kNumClasses;
}

}  // namespace

Bytes PacketPool::acquire(std::size_t capacity_hint) {
  Bytes out;
  const std::size_t cls = class_covering(capacity_hint);
  if (cls < kNumClasses && !free_[cls].empty()) {
    out = std::move(free_[cls].back());
    free_[cls].pop_back();
    out.clear();  // keeps capacity
    ++stats_.hits;
    if (metrics_ != nullptr) ++metrics_->pool_hits;
  } else {
    out.reserve(cls < kNumClasses ? kClassSizes[cls] : capacity_hint);
    ++stats_.misses;
    if (metrics_ != nullptr) ++metrics_->pool_misses;
  }
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.high_water) {
    stats_.high_water = stats_.outstanding;
    if (metrics_ != nullptr) metrics_->pool_high_water = stats_.high_water;
  }
  return out;
}

void PacketPool::recycle(Bytes&& b) {
  if (b.capacity() == 0) return;  // moved-from or never-allocated: nothing
  ++stats_.recycles;
  if (metrics_ != nullptr) ++metrics_->pool_recycles;
  // Buffers may also reach us from outside the pool (e.g. test-built
  // frames), so outstanding is a saturating difference.
  if (stats_.outstanding > 0) --stats_.outstanding;
  const std::size_t cls = class_fitting(b.capacity());
  if (cls < kNumClasses && free_[cls].size() < kMaxFreePerClass) {
    b.clear();
    free_[cls].push_back(std::move(b));
  }
  // else: fall through, the vector frees its storage here.
}

std::string PacketPool::dump_json() const {
  std::string out = "{\"hits\":" + std::to_string(stats_.hits) +
                    ",\"misses\":" + std::to_string(stats_.misses) +
                    ",\"recycles\":" + std::to_string(stats_.recycles) +
                    ",\"outstanding\":" + std::to_string(stats_.outstanding) +
                    ",\"high_water\":" + std::to_string(stats_.high_water) +
                    ",\"classes\":[";
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (c > 0) out += ',';
    out += "{\"size\":" + std::to_string(kClassSizes[c]) +
           ",\"free\":" + std::to_string(free_[c].size()) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace ulnet::buf
