#include "buf/packet_pool.h"

#include "sim/metrics.h"

namespace ulnet::buf {

namespace {

// Smallest class whose size covers `n`, or kNumClasses if none.
std::size_t class_covering(std::size_t n) {
  for (std::size_t c = 0; c < PacketPool::kNumClasses; ++c) {
    if (PacketPool::kClassSizes[c] >= n) return c;
  }
  return PacketPool::kNumClasses;
}

// Largest class whose size fits within capacity `cap`, or kNumClasses.
std::size_t class_fitting(std::size_t cap) {
  for (std::size_t c = PacketPool::kNumClasses; c-- > 0;) {
    if (PacketPool::kClassSizes[c] <= cap) return c;
  }
  return PacketPool::kNumClasses;
}

}  // namespace

Bytes PacketPool::acquire(std::size_t capacity_hint) {
  Bytes out;
  const std::size_t cls = class_covering(capacity_hint);
  if (cls < kNumClasses && !free_[cls].empty()) {
    out = std::move(free_[cls].back());
    free_[cls].pop_back();
    out.clear();  // keeps capacity
    ++stats_.hits;
    if (metrics_ != nullptr) ++metrics_->pool_hits;
  } else {
    out.reserve(cls < kNumClasses ? kClassSizes[cls] : capacity_hint);
    ++stats_.misses;
    if (metrics_ != nullptr) ++metrics_->pool_misses;
  }
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.high_water) {
    stats_.high_water = stats_.outstanding;
    if (metrics_ != nullptr) metrics_->pool_high_water = stats_.high_water;
  }
  return out;
}

void PacketPool::recycle(Bytes&& b) {
  if (b.capacity() == 0) return;  // moved-from or never-allocated: nothing
  ++stats_.recycles;
  if (metrics_ != nullptr) ++metrics_->pool_recycles;
  // Buffers may also reach us from outside the pool (e.g. test-built
  // frames), so outstanding is a saturating difference.
  if (stats_.outstanding > 0) --stats_.outstanding;
  const std::size_t cls = class_fitting(b.capacity());
  if (cls < kNumClasses && free_[cls].size() < kMaxFreePerClass) {
    b.clear();
    free_[cls].push_back(std::move(b));
  }
  // else: fall through, the vector frees its storage here.
}

// ---------------------------------------------------------------------------
// Loan table
// ---------------------------------------------------------------------------

BufferLoan PacketPool::loan_out(Bytes&& storage, std::int64_t owner,
                                std::uint64_t now) {
  std::uint32_t slot;
  if (!loan_free_.empty()) {
    slot = loan_free_.back();
    loan_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(loans_.size());
    if (loans_.size() == loans_.capacity()) {
      // The slab is about to reallocate: an O(n) move of every slot in the
      // middle of the data path. reserve_loans() keeps this at 0.
      ++stats_.loan_regrows;
      if (metrics_ != nullptr) ++metrics_->loan_table_regrows;
    }
    loans_.emplace_back();
  }
  LoanSlot& s = loans_[slot];
  s.storage = std::move(storage);
  s.owner = owner;
  s.loaned_at = now;
  s.refs = 1;
  s.active = true;
  ++stats_.loans_out;
  ++stats_.loans_outstanding;
  if (stats_.loans_outstanding > stats_.loan_high_water) {
    stats_.loan_high_water = stats_.loans_outstanding;
  }
  if (metrics_ != nullptr) {
    metrics_->loans_outstanding = stats_.loans_outstanding;
    metrics_->loan_high_water = stats_.loan_high_water;
  }
  return BufferLoan(this, slot, s.gen);
}

void PacketPool::loan_addref(std::uint32_t slot, std::uint32_t gen) {
  if (slot < loans_.size() && loans_[slot].active &&
      loans_[slot].gen == gen) {
    ++loans_[slot].refs;
  }
}

ByteView PacketPool::loan_view(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= loans_.size() || !loans_[slot].active ||
      loans_[slot].gen != gen) {
    return {};
  }
  return ByteView(loans_[slot].storage);
}

// Close a slot: record residency, recycle the storage, bump the generation
// so stale handles are detectable, and return the slot to the free list.
void PacketPool::loan_retire(LoanSlot& s, std::uint64_t now) {
  loan_residency_.record(now >= s.loaned_at ? now - s.loaned_at : 0);
  s.active = false;
  s.refs = 0;
  s.owner = -1;
  ++s.gen;
  recycle(std::move(s.storage));
  s.storage = Bytes{};
  --stats_.loans_outstanding;
  if (metrics_ != nullptr) {
    metrics_->loans_outstanding = stats_.loans_outstanding;
  }
  loan_free_.push_back(static_cast<std::uint32_t>(&s - loans_.data()));
}

bool PacketPool::loan_release(std::uint32_t slot, std::uint32_t gen,
                              std::uint64_t now) {
  if (slot >= loans_.size() || !loans_[slot].active ||
      loans_[slot].gen != gen) {
    ++stats_.loan_double_releases;
    if (metrics_ != nullptr) ++metrics_->loan_double_releases;
    return false;
  }
  LoanSlot& s = loans_[slot];
  if (--s.refs == 0) loan_retire(s, now);
  return true;
}

std::size_t PacketPool::reclaim_loans(std::int64_t owner, std::uint64_t now) {
  std::size_t swept = 0;
  for (LoanSlot& s : loans_) {
    if (s.active && s.owner == owner) {
      loan_retire(s, now);
      ++swept;
    }
  }
  stats_.loans_reclaimed += swept;
  if (metrics_ != nullptr) metrics_->loans_reclaimed = stats_.loans_reclaimed;
  return swept;
}

std::size_t PacketPool::loans_of_owner(std::int64_t owner) const {
  std::size_t n = 0;
  for (const LoanSlot& s : loans_) {
    if (s.active && s.owner == owner) ++n;
  }
  return n;
}

std::string PacketPool::dump_json() const {
  std::string out = "{\"hits\":" + std::to_string(stats_.hits) +
                    ",\"misses\":" + std::to_string(stats_.misses) +
                    ",\"recycles\":" + std::to_string(stats_.recycles) +
                    ",\"outstanding\":" + std::to_string(stats_.outstanding) +
                    ",\"high_water\":" + std::to_string(stats_.high_water) +
                    ",\"loans_out\":" + std::to_string(stats_.loans_out) +
                    ",\"loans_outstanding\":" +
                    std::to_string(stats_.loans_outstanding) +
                    ",\"loan_high_water\":" +
                    std::to_string(stats_.loan_high_water) +
                    ",\"loans_reclaimed\":" +
                    std::to_string(stats_.loans_reclaimed) +
                    ",\"loan_double_releases\":" +
                    std::to_string(stats_.loan_double_releases) +
                    ",\"loan_regrows\":" + std::to_string(stats_.loan_regrows) +
                    ",\"classes\":[";
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (c > 0) out += ',';
    out += "{\"size\":" + std::to_string(kClassSizes[c]) +
           ",\"free\":" + std::to_string(free_[c].size()) + "}";
  }
  out += "],\"hist\":{\"loan_residency_ns\":";
  out += loan_residency_.dump_json();
  out += "}}";
  return out;
}

}  // namespace ulnet::buf
