// RFC 1071 Internet checksum: 16-bit one's-complement sum of 16-bit words.
// Used by the IP header, and by TCP/UDP over a pseudo-header. The same
// function the paper's stack runs; its per-byte cost is charged from the
// CostModel, while this computes the actual value so corruption tests can
// observe real checksum failures.
//
// The accumulator sums 64 bits at a time (RFC 1071 section 2(A): word size
// does not change the folded result) with end-around carry, falling back to
// 16-bit words at range tails and odd boundaries. The original byte-pair
// loop is kept as `internet_checksum_scalar`, the differential-test oracle.
#pragma once

#include <cstdint>

#include "buf/bytes.h"

namespace ulnet::buf {

// Running one's-complement accumulator; fold() produces the 16-bit sum.
class ChecksumAccumulator {
 public:
  // Add a byte range. `odd_offset` handling: ranges are treated as
  // concatenated, so a range with odd length shifts subsequent ranges --
  // callers must add ranges in wire order.
  void add(ByteView data);
  void add16(std::uint16_t v) { add64(v); }
  [[nodiscard]] std::uint16_t fold() const;

 private:
  // One's-complement 64-bit add: the end-around carry keeps the running
  // sum valid no matter how many words are accumulated (a plain += could
  // silently overflow when mixing 64-bit chunk adds).
  void add64(std::uint64_t v) {
    sum_ += v;
    sum_ += static_cast<std::uint64_t>(sum_ < v);  // end-around carry
  }

  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending from a prior range
};

// One-shot checksum of a contiguous range (header checksums).
[[nodiscard]] std::uint16_t internet_checksum(ByteView data);

// Reference implementation: the original byte-pair scalar loop. Kept as the
// oracle for differential tests of the word-at-a-time path; not used on the
// hot path.
[[nodiscard]] std::uint16_t internet_checksum_scalar(ByteView data);

// Verify: the sum over data *including* its checksum field must fold to 0.
[[nodiscard]] bool checksum_ok(ByteView data);

}  // namespace ulnet::buf
