// RFC 1071 Internet checksum: 16-bit one's-complement sum of 16-bit words.
// Used by the IP header, and by TCP/UDP over a pseudo-header. The same
// function the paper's stack runs; its per-byte cost is charged from the
// CostModel, while this computes the actual value so corruption tests can
// observe real checksum failures.
#pragma once

#include <cstdint>

#include "buf/bytes.h"

namespace ulnet::buf {

// Running one's-complement accumulator; fold() produces the 16-bit sum.
class ChecksumAccumulator {
 public:
  // Add a byte range. `odd_offset` handling: ranges are treated as
  // concatenated, so a range with odd length shifts subsequent ranges --
  // callers must add ranges in wire order.
  void add(ByteView data);
  void add16(std::uint16_t v);
  [[nodiscard]] std::uint16_t fold() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending from a prior range
};

// One-shot checksum of a contiguous range (header checksums).
[[nodiscard]] std::uint16_t internet_checksum(ByteView data);

// Verify: the sum over data *including* its checksum field must fold to 0.
[[nodiscard]] bool checksum_ok(ByteView data);

}  // namespace ulnet::buf
