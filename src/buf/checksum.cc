#include "buf/checksum.h"

#include <bit>
#include <cstring>

namespace ulnet::buf {

namespace {

// Load 8 bytes as the big-endian (network-order) 64-bit value they spell.
inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

}  // namespace

void ChecksumAccumulator::add(ByteView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the pending high byte with this range's first byte.
    add64(data[0]);
    odd_ = false;
    i = 1;
  }
  // At this point the accumulation phase is 16-bit aligned, so big-endian
  // 64-bit chunks are just four network-order words summed at once.
  for (; i + 8 <= data.size(); i += 8) {
    add64(load_be64(data.data() + i));
  }
  for (; i + 1 < data.size(); i += 2) {
    add64((static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    add64(static_cast<std::uint32_t>(data[i]) << 8);
    odd_ = true;
  }
}

std::uint16_t ChecksumAccumulator::fold() const {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(ByteView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.fold();
}

std::uint16_t internet_checksum_scalar(ByteView data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

bool checksum_ok(ByteView data) {
  // Including the transmitted checksum, the folded sum is 0.
  return internet_checksum(data) == 0;
}

}  // namespace ulnet::buf
