#include "buf/checksum.h"

namespace ulnet::buf {

void ChecksumAccumulator::add(ByteView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the pending high byte with this range's first byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add16(std::uint16_t v) {
  // add16 assumes 16-bit alignment in the virtual concatenation.
  sum_ += v;
}

std::uint16_t ChecksumAccumulator::fold() const {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(ByteView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.fold();
}

bool checksum_ok(ByteView data) {
  // Including the transmitted checksum, the folded sum is 0.
  return internet_checksum(data) == 0;
}

}  // namespace ulnet::buf
