// Byte-buffer utilities: network-order (big-endian) readers and writers over
// contiguous storage. All wire formats in ulnet are serialized through these
// helpers, so header layouts are real byte layouts that the packet-filter
// VMs can inspect at fixed offsets, exactly as BSD's filters did.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ulnet::buf {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline void check_bounds(std::size_t off, std::size_t need, std::size_t size,
                         const char* what) {
  // Overflow-safe form: `off + need > size` would wrap for huge offsets
  // (e.g. off == SIZE_MAX) and wrongly pass the check.
  if (need > size || off > size - need) {
    throw std::out_of_range(std::string(what) + ": offset " +
                            std::to_string(off) + "+" + std::to_string(need) +
                            " > size " + std::to_string(size));
  }
}

[[nodiscard]] inline std::uint8_t rd8(ByteView b, std::size_t off) {
  check_bounds(off, 1, b.size(), "rd8");
  return b[off];
}

[[nodiscard]] inline std::uint16_t rd16(ByteView b, std::size_t off) {
  check_bounds(off, 2, b.size(), "rd16");
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

[[nodiscard]] inline std::uint32_t rd32(ByteView b, std::size_t off) {
  check_bounds(off, 4, b.size(), "rd32");
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

inline void wr8(Bytes& b, std::size_t off, std::uint8_t v) {
  check_bounds(off, 1, b.size(), "wr8");
  b[off] = v;
}

inline void wr16(Bytes& b, std::size_t off, std::uint16_t v) {
  check_bounds(off, 2, b.size(), "wr16");
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void wr32(Bytes& b, std::size_t off, std::uint32_t v) {
  check_bounds(off, 4, b.size(), "wr32");
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>(v >> 16);
  b[off + 2] = static_cast<std::uint8_t>(v >> 8);
  b[off + 3] = static_cast<std::uint8_t>(v & 0xff);
}

// Append helpers for serializers that build headers front to back.
inline void put8(Bytes& b, std::uint8_t v) { b.push_back(v); }
inline void put16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
}
inline void put32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
}
inline void put_bytes(Bytes& b, ByteView src) {
  b.insert(b.end(), src.begin(), src.end());
}

// Hex dump for diagnostics ("0a 1b ..." with 16 bytes per line).
[[nodiscard]] std::string hex_dump(ByteView b);

}  // namespace ulnet::buf
