// Input-packet demultiplexing engines (paper Section 2.2, Table 5).
//
// Three ways to decide which endpoint an incoming packet belongs to:
//
//  1. CspfVm   -- the original Packet Filter's stack-based language:
//                 "filter programs composed of stack operations and
//                 operators are interpreted by a kernel-resident program at
//                 packet reception time". Flexible, memory-intensive, slow.
//  2. BpfVm    -- the Berkeley Packet Filter's register machine, the
//                 "recognizes these issues and provides higher performance
//                 suited for modern RISC processors" redesign.
//  3. Synthesized -- the paper's own approach: demux logic compiled/
//                 synthesized into the kernel when a binding is installed;
//                 "the demultiplexing logic requires only a few
//                 instructions". Modelled as a direct header matcher.
//
// All three operate on the same wire bytes. Programs return accept/reject;
// every engine reports how many "instructions" it executed so callers can
// charge interpretation costs from the CostModel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "buf/bytes.h"

namespace ulnet::filter {

struct RunResult {
  bool accept = false;
  int instructions = 0;  // executed VM steps (for cost accounting)
};

// ---------------------------------------------------------------------------
// CSPF-style stack machine
// ---------------------------------------------------------------------------

enum class CspfOp : std::uint8_t {
  kPushLit,   // push immediate
  kPushWord,  // push 16-bit big-endian word at packet offset `arg`
  kEq,        // pop b, pop a, push a == b
  kNe,
  kLt,   // a < b
  kGt,   // a > b
  kAnd,  // bitwise
  kOr,
  kRet,  // accept iff top-of-stack non-zero
};

struct CspfInsn {
  CspfOp op;
  std::uint32_t arg = 0;
};

class CspfVm {
 public:
  explicit CspfVm(std::vector<CspfInsn> program)
      : program_(std::move(program)) {}

  // Run over the packet. Out-of-range loads push 0 (reject-friendly), as in
  // the original filter. Malformed programs (stack underflow) reject.
  [[nodiscard]] RunResult run(buf::ByteView packet) const;

  [[nodiscard]] std::size_t size() const { return program_.size(); }
  [[nodiscard]] const std::vector<CspfInsn>& program() const {
    return program_;
  }

 private:
  std::vector<CspfInsn> program_;
};

// ---------------------------------------------------------------------------
// BPF-style register machine
// ---------------------------------------------------------------------------

enum class BpfOp : std::uint8_t {
  kLdAbsH,   // A = u16[arg]
  kLdAbsB,   // A = u8[arg]
  kLdAbsW,   // A = u32[arg]
  kJeq,      // pc += (A == arg) ? jt : jf
  kJgt,      // pc += (A > arg) ? jt : jf
  kAndImm,   // A &= arg
  kRetA,     // accept iff A != 0
  kRetImm,   // accept iff arg != 0
};

struct BpfInsn {
  BpfOp op;
  std::uint32_t arg = 0;
  std::uint8_t jt = 0;
  std::uint8_t jf = 0;
};

class BpfVm {
 public:
  explicit BpfVm(std::vector<BpfInsn> program) : program_(std::move(program)) {}

  [[nodiscard]] RunResult run(buf::ByteView packet) const;
  [[nodiscard]] std::size_t size() const { return program_.size(); }
  [[nodiscard]] const std::vector<BpfInsn>& program() const {
    return program_;
  }

 private:
  std::vector<BpfInsn> program_;
};

// ---------------------------------------------------------------------------
// Synthesized matcher: the 5-tuple compare the kernel would compile in.
// ---------------------------------------------------------------------------

struct FlowKey {
  std::uint16_t ethertype = 0;  // at link-header offset
  std::uint8_t ip_proto = 0;
  std::uint32_t local_ip = 0;   // our address (packet's IP dst)
  std::uint32_t remote_ip = 0;  // 0 = wildcard (listening endpoints)
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;  // 0 = wildcard

  bool operator==(const FlowKey&) const = default;
};

// Hash over every field (wildcards hash as the literal 0 they store), so a
// binding table can be probed with progressively wilder variants of an
// extracted key: exact 5-tuple, then remote-wildcard, then port/proto
// wildcard. FNV-1a keeps the value deterministic across platforms.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.ethertype);
    mix(k.ip_proto);
    mix(k.local_ip);
    mix(k.remote_ip);
    mix(k.local_port);
    mix(k.remote_port);
    return static_cast<std::size_t>(h);
  }
};

class SynthesizedMatcher {
 public:
  // `link_header` is the number of link-level bytes preceding the IP header.
  SynthesizedMatcher(FlowKey key, std::size_t link_header)
      : key_(key), link_header_(link_header) {}

  [[nodiscard]] RunResult run(buf::ByteView packet) const;
  [[nodiscard]] const FlowKey& key() const { return key_; }

 private:
  FlowKey key_;
  std::size_t link_header_;
};

// ---------------------------------------------------------------------------
// Program builders for the common case: demultiplex a TCP or UDP flow
// arriving over a link header of `link_header` bytes, with ethertype at
// `ethertype_offset`.
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<CspfInsn> build_cspf_flow_filter(
    const FlowKey& key, std::size_t link_header,
    std::size_t ethertype_offset);

[[nodiscard]] std::vector<BpfInsn> build_bpf_flow_filter(
    const FlowKey& key, std::size_t link_header,
    std::size_t ethertype_offset);

// Extract the flow key of an incoming packet (for hashed demux tables).
// Returns nullopt if the packet is not IP/TCP/UDP or too short.
[[nodiscard]] std::optional<FlowKey> extract_flow(buf::ByteView packet,
                                                  std::size_t link_header,
                                                  std::size_t ethertype_offset);

// ---------------------------------------------------------------------------
// Filter aggregation (DPF/MPF lineage): compile the *set* of installed
// interpreted programs into one shared decision trie keyed on the loads
// they perform, so classification is a single pass whose cost scales with
// header depth rather than binding count.
// ---------------------------------------------------------------------------

// One masked equality test: (load<width>(packet, offset) & mask) == value.
// Loads use the same out-of-range-reads-zero semantics as the VMs, so a
// trie built from analyzed programs is behaviourally identical to running
// each program.
struct FieldKey {
  std::uint32_t offset = 0;
  std::uint8_t width = 0;  // 1, 2 or 4 bytes, big-endian
  std::uint32_t mask = 0;

  bool operator==(const FieldKey&) const = default;
};

struct FilterPredicate {
  FieldKey field;
  std::uint32_t value = 0;  // compared against the masked load
};

// Conservative analyzers: recognize the straight-line conjunction-of-
// equalities shape the flow-filter builders emit and return its predicate
// list (empty = accepts everything). Any program outside that shape yields
// nullopt and the caller must fall back to interpreting it directly --
// aggregation is an optimization, never a semantics change.
[[nodiscard]] std::optional<std::vector<FilterPredicate>> analyze_bpf(
    const std::vector<BpfInsn>& program);
[[nodiscard]] std::optional<std::vector<FilterPredicate>> analyze_cspf(
    const std::vector<CspfInsn>& program);

// The shared trie. Dimensions (distinct FieldKeys) are ordered first-seen;
// each inserted filter contributes one root-to-node path with value edges
// for the fields it tests and wildcard edges for those it skips. A node
// where a filter's predicates are exhausted records the smallest binding id
// accepting there -- because binding ids are handed out in walk order,
// first-match under the linear walk is exactly the minimum id over all
// accepting bindings, which is what classify() returns.
class FilterAggregate {
 public:
  struct ClassifyResult {
    std::uint32_t best = 0;  // smallest accepting binding id; 0 = no match
    int nodes_visited = 0;   // trie nodes expanded (cost accounting)
    int loads = 0;           // distinct header loads performed
  };

  // Insert one analyzed filter under binding id `id` (must be non-zero).
  // Insertion is incremental: ids only grow, so min-id accepts at existing
  // nodes stay valid.
  void insert(std::uint32_t id, const std::vector<FilterPredicate>& preds);

  // One-pass classification over the whole installed set. Wildcard edges
  // fork the search, but each dimension's header load happens at most once.
  [[nodiscard]] ClassifyResult classify(buf::ByteView packet) const;

  void clear();
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t dimension_count() const { return dims_.size(); }
  [[nodiscard]] bool empty() const { return filters_ == 0; }

 private:
  struct Node {
    std::size_t level = 0;          // dimension index this node tests
    std::uint32_t accept_min = 0;   // smallest id accepted here; 0 = none
    int wildcard = -1;              // child for "field not tested"
    std::unordered_map<std::uint32_t, int> edges;  // value -> child index
  };

  [[nodiscard]] std::size_t dim_index(const FieldKey& f);
  int child(int node, std::size_t level, bool wild, std::uint32_t value);

  std::vector<FieldKey> dims_;  // global dimension order, first-seen
  std::vector<Node> nodes_;     // nodes_[0] is the root (created lazily)
  std::size_t filters_ = 0;
};

}  // namespace ulnet::filter
