#include "filter/filter.h"

#include <algorithm>

namespace ulnet::filter {

namespace {
// Read helpers that return 0 when out of range, matching the original
// filter's tolerance of short packets.
std::uint32_t word16(buf::ByteView p, std::size_t off) {
  if (off + 2 > p.size()) return 0;
  return static_cast<std::uint32_t>((p[off] << 8) | p[off + 1]);
}
std::uint32_t word8(buf::ByteView p, std::size_t off) {
  if (off + 1 > p.size()) return 0;
  return p[off];
}
std::uint32_t word32(buf::ByteView p, std::size_t off) {
  if (off + 4 > p.size()) return 0;
  return (static_cast<std::uint32_t>(p[off]) << 24) |
         (static_cast<std::uint32_t>(p[off + 1]) << 16) |
         (static_cast<std::uint32_t>(p[off + 2]) << 8) |
         static_cast<std::uint32_t>(p[off + 3]);
}
}  // namespace

RunResult CspfVm::run(buf::ByteView packet) const {
  std::vector<std::uint32_t> stack;
  stack.reserve(16);
  RunResult r;
  for (const CspfInsn& in : program_) {
    r.instructions++;
    switch (in.op) {
      case CspfOp::kPushLit:
        stack.push_back(in.arg);
        break;
      case CspfOp::kPushWord:
        stack.push_back(word16(packet, in.arg));
        break;
      case CspfOp::kEq:
      case CspfOp::kNe:
      case CspfOp::kLt:
      case CspfOp::kGt:
      case CspfOp::kAnd:
      case CspfOp::kOr: {
        if (stack.size() < 2) return r;  // underflow: reject
        const std::uint32_t b = stack.back();
        stack.pop_back();
        const std::uint32_t a = stack.back();
        stack.pop_back();
        std::uint32_t v = 0;
        switch (in.op) {
          case CspfOp::kEq: v = (a == b); break;
          case CspfOp::kNe: v = (a != b); break;
          case CspfOp::kLt: v = (a < b); break;
          case CspfOp::kGt: v = (a > b); break;
          case CspfOp::kAnd: v = (a & b); break;
          case CspfOp::kOr: v = (a | b); break;
          default: break;
        }
        stack.push_back(v);
        break;
      }
      case CspfOp::kRet:
        r.accept = !stack.empty() && stack.back() != 0;
        return r;
    }
  }
  // Fell off the end: accept iff non-zero top of stack (original semantics).
  r.accept = !stack.empty() && stack.back() != 0;
  return r;
}

RunResult BpfVm::run(buf::ByteView packet) const {
  std::uint32_t A = 0;
  RunResult r;
  std::size_t pc = 0;
  while (pc < program_.size()) {
    const BpfInsn& in = program_[pc];
    r.instructions++;
    switch (in.op) {
      case BpfOp::kLdAbsH: A = word16(packet, in.arg); pc++; break;
      case BpfOp::kLdAbsB: A = word8(packet, in.arg); pc++; break;
      case BpfOp::kLdAbsW: A = word32(packet, in.arg); pc++; break;
      case BpfOp::kJeq: pc += 1 + ((A == in.arg) ? in.jt : in.jf); break;
      case BpfOp::kJgt: pc += 1 + ((A > in.arg) ? in.jt : in.jf); break;
      case BpfOp::kAndImm: A &= in.arg; pc++; break;
      case BpfOp::kRetA:
        r.accept = A != 0;
        return r;
      case BpfOp::kRetImm:
        r.accept = in.arg != 0;
        return r;
    }
  }
  return r;  // fell off: reject
}

RunResult SynthesizedMatcher::run(buf::ByteView packet) const {
  // "Based on our experience, the demultiplexing logic requires only a few
  // instructions": a handful of header compares.
  RunResult r;
  r.instructions = 8;
  auto flow = extract_flow(packet, link_header_, link_header_ - 2);
  if (!flow) return r;
  r.accept = flow->ethertype == key_.ethertype &&
             flow->ip_proto == key_.ip_proto &&
             flow->local_ip == key_.local_ip &&
             (key_.local_port == 0 ||
              flow->local_port == key_.local_port) &&
             (key_.remote_ip == 0 || flow->remote_ip == key_.remote_ip) &&
             (key_.remote_port == 0 || flow->remote_port == key_.remote_port);
  return r;
}

std::optional<FlowKey> extract_flow(buf::ByteView packet,
                                    std::size_t link_header,
                                    std::size_t ethertype_offset) {
  // Assumes the fixed 20-byte IP header this stack emits (IHL=5), as the
  // kernel-synthesized code of the era did for the common case.
  if (packet.size() < link_header + 20 + 4) return std::nullopt;
  FlowKey k;
  k.ethertype = static_cast<std::uint16_t>(word16(packet, ethertype_offset));
  k.ip_proto = static_cast<std::uint8_t>(word8(packet, link_header + 9));
  k.remote_ip = word32(packet, link_header + 12);  // IP source
  k.local_ip = word32(packet, link_header + 16);   // IP destination
  k.remote_port = static_cast<std::uint16_t>(word16(packet, link_header + 20));
  k.local_port = static_cast<std::uint16_t>(word16(packet, link_header + 22));
  return k;
}

std::vector<CspfInsn> build_cspf_flow_filter(const FlowKey& key,
                                             std::size_t link_header,
                                             std::size_t ethertype_offset) {
  // The CSPF machine is 16-bit: 32-bit IP addresses compare as two words.
  std::vector<CspfInsn> p;
  auto push_cmp16 = [&p](std::size_t off, std::uint16_t want) {
    p.push_back({CspfOp::kPushWord, static_cast<std::uint32_t>(off)});
    p.push_back({CspfOp::kPushLit, want});
    p.push_back({CspfOp::kEq, 0});
  };
  auto and_prev = [&p] { p.push_back({CspfOp::kAnd, 0}); };

  push_cmp16(ethertype_offset, key.ethertype);
  // IP protocol shares a 16-bit word with TTL at link_header+8; compare the
  // low byte by masking: CSPF lacks AND-imm, so compare the full word via
  // two pushes of proto only (load the byte-containing word and the
  // expected word is unknown because TTL varies). Instead, load the word at
  // +8 and mask with 0x00ff via PushLit+And, then compare.
  p.push_back({CspfOp::kPushWord, static_cast<std::uint32_t>(link_header + 8)});
  p.push_back({CspfOp::kPushLit, 0x00ff});
  p.push_back({CspfOp::kAnd, 0});
  p.push_back({CspfOp::kPushLit, key.ip_proto});
  p.push_back({CspfOp::kEq, 0});
  and_prev();

  push_cmp16(link_header + 16, static_cast<std::uint16_t>(key.local_ip >> 16));
  and_prev();
  push_cmp16(link_header + 18,
             static_cast<std::uint16_t>(key.local_ip & 0xffff));
  and_prev();
  if (key.local_port != 0) {
    push_cmp16(link_header + 22, key.local_port);
    and_prev();
  }
  if (key.remote_ip != 0) {
    push_cmp16(link_header + 12,
               static_cast<std::uint16_t>(key.remote_ip >> 16));
    and_prev();
    push_cmp16(link_header + 14,
               static_cast<std::uint16_t>(key.remote_ip & 0xffff));
    and_prev();
  }
  if (key.remote_port != 0) {
    push_cmp16(link_header + 20, key.remote_port);
    and_prev();
  }
  p.push_back({CspfOp::kRet, 0});
  return p;
}

std::vector<BpfInsn> build_bpf_flow_filter(const FlowKey& key,
                                           std::size_t link_header,
                                           std::size_t ethertype_offset) {
  // Straight-line compare chain; any mismatch jumps to the reject tail.
  std::vector<BpfInsn> p;
  struct Check {
    BpfOp ld;
    std::uint32_t off;
    std::uint32_t want;
  };
  std::vector<Check> checks = {
      {BpfOp::kLdAbsH, static_cast<std::uint32_t>(ethertype_offset),
       key.ethertype},
      {BpfOp::kLdAbsB, static_cast<std::uint32_t>(link_header + 9),
       key.ip_proto},
      {BpfOp::kLdAbsW, static_cast<std::uint32_t>(link_header + 16),
       key.local_ip},
  };
  if (key.local_port != 0) {
    checks.push_back({BpfOp::kLdAbsH,
                      static_cast<std::uint32_t>(link_header + 22),
                      key.local_port});
  }
  if (key.remote_ip != 0) {
    checks.push_back({BpfOp::kLdAbsW,
                      static_cast<std::uint32_t>(link_header + 12),
                      key.remote_ip});
  }
  if (key.remote_port != 0) {
    checks.push_back({BpfOp::kLdAbsH,
                      static_cast<std::uint32_t>(link_header + 20),
                      key.remote_port});
  }
  // Layout: [ld, jeq]* accept reject. A failing jeq must skip the remaining
  // pairs plus the accept instruction.
  const std::size_t pairs = checks.size();
  for (std::size_t i = 0; i < pairs; ++i) {
    p.push_back({checks[i].ld, checks[i].off, 0, 0});
    const auto remaining = static_cast<std::uint8_t>(2 * (pairs - i - 1) + 1);
    p.push_back({BpfOp::kJeq, checks[i].want, 0, remaining});
  }
  p.push_back({BpfOp::kRetImm, 1, 0, 0});  // accept
  p.push_back({BpfOp::kRetImm, 0, 0, 0});  // reject
  return p;
}

// ---------------------------------------------------------------------------
// Filter aggregation
// ---------------------------------------------------------------------------

namespace {
std::uint32_t width_mask(std::uint8_t width) {
  switch (width) {
    case 1: return 0xffu;
    case 2: return 0xffffu;
    default: return 0xffffffffu;
  }
}

std::uint32_t load_field(buf::ByteView p, const FieldKey& f) {
  std::uint32_t v = 0;
  switch (f.width) {
    case 1: v = word8(p, f.offset); break;
    case 2: v = word16(p, f.offset); break;
    default: v = word32(p, f.offset); break;
  }
  return v & f.mask;
}

// Append the predicate, refusing contradictory duplicates (same field,
// different value -- the program can never accept, so let the interpreter
// handle it) and collapsing agreeing ones.
bool add_pred(std::vector<FilterPredicate>& preds, const FieldKey& field,
              std::uint32_t value) {
  if ((value & ~field.mask) != 0) return false;  // never-true compare
  for (const FilterPredicate& p : preds) {
    if (p.field == field) return p.value == value;
  }
  preds.push_back({field, value});
  return true;
}
}  // namespace

std::optional<std::vector<FilterPredicate>> analyze_bpf(
    const std::vector<BpfInsn>& program) {
  // Recognized shape: [Ld{B,H,W} off; (AndImm mask;)? Jeq v jt=0 jf->reject]*
  // RetImm !=0, where every reject target is a RetImm 0. This is exactly
  // what build_bpf_flow_filter emits; anything else is not aggregable.
  std::vector<FilterPredicate> preds;
  std::size_t pc = 0;
  const auto is_reject = [&program](std::size_t i) {
    return i < program.size() && program[i].op == BpfOp::kRetImm &&
           program[i].arg == 0;
  };
  while (pc < program.size()) {
    const BpfInsn& in = program[pc];
    if (in.op == BpfOp::kRetImm) {
      // Terminal: unconditional accept ends the conjunction; a bare reject
      // (the shared reject tail, or a reject-all program) is only valid
      // once at least the accept terminal was seen -- handled below.
      return in.arg != 0 ? std::optional(preds) : std::nullopt;
    }
    FieldKey f;
    switch (in.op) {
      case BpfOp::kLdAbsB: f = {in.arg, 1, 0xffu}; break;
      case BpfOp::kLdAbsH: f = {in.arg, 2, 0xffffu}; break;
      case BpfOp::kLdAbsW: f = {in.arg, 4, 0xffffffffu}; break;
      default: return std::nullopt;
    }
    pc++;
    if (pc < program.size() && program[pc].op == BpfOp::kAndImm) {
      f.mask &= program[pc].arg;
      pc++;
    }
    if (pc >= program.size() || program[pc].op != BpfOp::kJeq ||
        program[pc].jt != 0 || !is_reject(pc + 1 + program[pc].jf)) {
      return std::nullopt;
    }
    if (!add_pred(preds, f, program[pc].arg)) return std::nullopt;
    pc++;
  }
  return std::nullopt;  // fell off the end: reject-all, not a conjunction
}

std::optional<std::vector<FilterPredicate>> analyze_cspf(
    const std::vector<CspfInsn>& program) {
  // Recognized shape (build_cspf_flow_filter's output): a first compare
  // group, then (group, And)* and a final Ret. A group is either
  //   PushWord off, PushLit v, Eq                    -- plain word compare
  //   PushWord off, PushLit m, And, PushLit v, Eq    -- masked compare
  std::vector<FilterPredicate> preds;
  std::size_t pc = 0;
  const auto at = [&program](std::size_t i, CspfOp op) {
    return i < program.size() && program[i].op == op;
  };
  const auto parse_group = [&](std::size_t& i, FieldKey& f,
                               std::uint32_t& value) {
    if (!at(i, CspfOp::kPushWord)) return false;
    f = {program[i].arg, 2, 0xffffu};
    i++;
    if (!at(i, CspfOp::kPushLit)) return false;
    std::uint32_t lit = program[i].arg;
    i++;
    if (at(i, CspfOp::kAnd)) {  // masked variant
      f.mask &= lit;
      i++;
      if (!at(i, CspfOp::kPushLit)) return false;
      lit = program[i].arg;
      i++;
    }
    if (!at(i, CspfOp::kEq)) return false;
    i++;
    value = lit;
    return true;
  };

  bool first = true;
  while (pc < program.size()) {
    if (at(pc, CspfOp::kRet)) {
      return pc + 1 == program.size() && !first ? std::optional(preds)
                                                : std::nullopt;
    }
    FieldKey f;
    std::uint32_t value = 0;
    if (!parse_group(pc, f, value)) return std::nullopt;
    if (!first) {
      if (!at(pc, CspfOp::kAnd)) return std::nullopt;
      pc++;
    }
    if (!add_pred(preds, f, value)) return std::nullopt;
    first = false;
  }
  return std::nullopt;  // no Ret: fell off the end mid-conjunction
}

std::size_t FilterAggregate::dim_index(const FieldKey& f) {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i] == f) return i;
  }
  dims_.push_back(f);
  return dims_.size() - 1;
}

int FilterAggregate::child(int node, std::size_t level, bool wild,
                           std::uint32_t value) {
  int next = -1;
  if (wild) {
    next = nodes_[static_cast<std::size_t>(node)].wildcard;
  } else {
    auto& edges = nodes_[static_cast<std::size_t>(node)].edges;
    if (auto it = edges.find(value); it != edges.end()) next = it->second;
  }
  if (next < 0) {
    next = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{level + 1, 0, -1, {}});
    Node& n = nodes_[static_cast<std::size_t>(node)];
    if (wild) {
      n.wildcard = next;
    } else {
      n.edges.emplace(value, next);
    }
  }
  return next;
}

void FilterAggregate::insert(std::uint32_t id,
                             const std::vector<FilterPredicate>& preds) {
  if (nodes_.empty()) nodes_.push_back(Node{});
  // Register every field first (may extend the dimension order), then lay
  // the path down in that global order so all filters agree on levels.
  std::vector<std::pair<std::size_t, std::uint32_t>> path;  // (dim, value)
  path.reserve(preds.size());
  for (const FilterPredicate& p : preds) {
    path.emplace_back(dim_index(p.field), p.value);
  }
  std::sort(path.begin(), path.end());
  // Last tested dimension bounds the path depth; untested dimensions in
  // between become wildcard hops.
  int node = 0;
  std::size_t next = 0;
  for (const auto& [dim, value] : path) {
    for (; next < dim; ++next) node = child(node, next, /*wild=*/true, 0);
    node = child(node, dim, /*wild=*/false, value);
    next = dim + 1;
  }
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.accept_min == 0 || id < n.accept_min) n.accept_min = id;
  filters_++;
}

FilterAggregate::ClassifyResult FilterAggregate::classify(
    buf::ByteView packet) const {
  ClassifyResult r;
  if (nodes_.empty()) return r;
  // One lazy header load per dimension, shared across every branch.
  std::vector<std::uint32_t> loaded(dims_.size(), 0);
  std::vector<bool> have(dims_.size(), false);
  std::vector<int> work{0};
  while (!work.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(work.back())];
    work.pop_back();
    r.nodes_visited++;
    if (n.accept_min != 0 && (r.best == 0 || n.accept_min < r.best)) {
      r.best = n.accept_min;
    }
    if (n.level >= dims_.size()) continue;
    if (!n.edges.empty()) {
      if (!have[n.level]) {
        have[n.level] = true;
        loaded[n.level] = load_field(packet, dims_[n.level]);
        r.loads++;
      }
      if (auto it = n.edges.find(loaded[n.level]); it != n.edges.end()) {
        work.push_back(it->second);
      }
    }
    if (n.wildcard >= 0) work.push_back(n.wildcard);
  }
  return r;
}

void FilterAggregate::clear() {
  dims_.clear();
  nodes_.clear();
  filters_ = 0;
}

}  // namespace ulnet::filter
