#include "filter/filter.h"

namespace ulnet::filter {

namespace {
// Read helpers that return 0 when out of range, matching the original
// filter's tolerance of short packets.
std::uint32_t word16(buf::ByteView p, std::size_t off) {
  if (off + 2 > p.size()) return 0;
  return static_cast<std::uint32_t>((p[off] << 8) | p[off + 1]);
}
std::uint32_t word8(buf::ByteView p, std::size_t off) {
  if (off + 1 > p.size()) return 0;
  return p[off];
}
std::uint32_t word32(buf::ByteView p, std::size_t off) {
  if (off + 4 > p.size()) return 0;
  return (static_cast<std::uint32_t>(p[off]) << 24) |
         (static_cast<std::uint32_t>(p[off + 1]) << 16) |
         (static_cast<std::uint32_t>(p[off + 2]) << 8) |
         static_cast<std::uint32_t>(p[off + 3]);
}
}  // namespace

RunResult CspfVm::run(buf::ByteView packet) const {
  std::vector<std::uint32_t> stack;
  stack.reserve(16);
  RunResult r;
  for (const CspfInsn& in : program_) {
    r.instructions++;
    switch (in.op) {
      case CspfOp::kPushLit:
        stack.push_back(in.arg);
        break;
      case CspfOp::kPushWord:
        stack.push_back(word16(packet, in.arg));
        break;
      case CspfOp::kEq:
      case CspfOp::kNe:
      case CspfOp::kLt:
      case CspfOp::kGt:
      case CspfOp::kAnd:
      case CspfOp::kOr: {
        if (stack.size() < 2) return r;  // underflow: reject
        const std::uint32_t b = stack.back();
        stack.pop_back();
        const std::uint32_t a = stack.back();
        stack.pop_back();
        std::uint32_t v = 0;
        switch (in.op) {
          case CspfOp::kEq: v = (a == b); break;
          case CspfOp::kNe: v = (a != b); break;
          case CspfOp::kLt: v = (a < b); break;
          case CspfOp::kGt: v = (a > b); break;
          case CspfOp::kAnd: v = (a & b); break;
          case CspfOp::kOr: v = (a | b); break;
          default: break;
        }
        stack.push_back(v);
        break;
      }
      case CspfOp::kRet:
        r.accept = !stack.empty() && stack.back() != 0;
        return r;
    }
  }
  // Fell off the end: accept iff non-zero top of stack (original semantics).
  r.accept = !stack.empty() && stack.back() != 0;
  return r;
}

RunResult BpfVm::run(buf::ByteView packet) const {
  std::uint32_t A = 0;
  RunResult r;
  std::size_t pc = 0;
  while (pc < program_.size()) {
    const BpfInsn& in = program_[pc];
    r.instructions++;
    switch (in.op) {
      case BpfOp::kLdAbsH: A = word16(packet, in.arg); pc++; break;
      case BpfOp::kLdAbsB: A = word8(packet, in.arg); pc++; break;
      case BpfOp::kLdAbsW: A = word32(packet, in.arg); pc++; break;
      case BpfOp::kJeq: pc += 1 + ((A == in.arg) ? in.jt : in.jf); break;
      case BpfOp::kJgt: pc += 1 + ((A > in.arg) ? in.jt : in.jf); break;
      case BpfOp::kAndImm: A &= in.arg; pc++; break;
      case BpfOp::kRetA:
        r.accept = A != 0;
        return r;
      case BpfOp::kRetImm:
        r.accept = in.arg != 0;
        return r;
    }
  }
  return r;  // fell off: reject
}

RunResult SynthesizedMatcher::run(buf::ByteView packet) const {
  // "Based on our experience, the demultiplexing logic requires only a few
  // instructions": a handful of header compares.
  RunResult r;
  r.instructions = 8;
  auto flow = extract_flow(packet, link_header_, link_header_ - 2);
  if (!flow) return r;
  r.accept = flow->ethertype == key_.ethertype &&
             flow->ip_proto == key_.ip_proto &&
             flow->local_ip == key_.local_ip &&
             (key_.local_port == 0 ||
              flow->local_port == key_.local_port) &&
             (key_.remote_ip == 0 || flow->remote_ip == key_.remote_ip) &&
             (key_.remote_port == 0 || flow->remote_port == key_.remote_port);
  return r;
}

std::optional<FlowKey> extract_flow(buf::ByteView packet,
                                    std::size_t link_header,
                                    std::size_t ethertype_offset) {
  // Assumes the fixed 20-byte IP header this stack emits (IHL=5), as the
  // kernel-synthesized code of the era did for the common case.
  if (packet.size() < link_header + 20 + 4) return std::nullopt;
  FlowKey k;
  k.ethertype = static_cast<std::uint16_t>(word16(packet, ethertype_offset));
  k.ip_proto = static_cast<std::uint8_t>(word8(packet, link_header + 9));
  k.remote_ip = word32(packet, link_header + 12);  // IP source
  k.local_ip = word32(packet, link_header + 16);   // IP destination
  k.remote_port = static_cast<std::uint16_t>(word16(packet, link_header + 20));
  k.local_port = static_cast<std::uint16_t>(word16(packet, link_header + 22));
  return k;
}

std::vector<CspfInsn> build_cspf_flow_filter(const FlowKey& key,
                                             std::size_t link_header,
                                             std::size_t ethertype_offset) {
  // The CSPF machine is 16-bit: 32-bit IP addresses compare as two words.
  std::vector<CspfInsn> p;
  auto push_cmp16 = [&p](std::size_t off, std::uint16_t want) {
    p.push_back({CspfOp::kPushWord, static_cast<std::uint32_t>(off)});
    p.push_back({CspfOp::kPushLit, want});
    p.push_back({CspfOp::kEq, 0});
  };
  auto and_prev = [&p] { p.push_back({CspfOp::kAnd, 0}); };

  push_cmp16(ethertype_offset, key.ethertype);
  // IP protocol shares a 16-bit word with TTL at link_header+8; compare the
  // low byte by masking: CSPF lacks AND-imm, so compare the full word via
  // two pushes of proto only (load the byte-containing word and the
  // expected word is unknown because TTL varies). Instead, load the word at
  // +8 and mask with 0x00ff via PushLit+And, then compare.
  p.push_back({CspfOp::kPushWord, static_cast<std::uint32_t>(link_header + 8)});
  p.push_back({CspfOp::kPushLit, 0x00ff});
  p.push_back({CspfOp::kAnd, 0});
  p.push_back({CspfOp::kPushLit, key.ip_proto});
  p.push_back({CspfOp::kEq, 0});
  and_prev();

  push_cmp16(link_header + 16, static_cast<std::uint16_t>(key.local_ip >> 16));
  and_prev();
  push_cmp16(link_header + 18,
             static_cast<std::uint16_t>(key.local_ip & 0xffff));
  and_prev();
  if (key.local_port != 0) {
    push_cmp16(link_header + 22, key.local_port);
    and_prev();
  }
  if (key.remote_ip != 0) {
    push_cmp16(link_header + 12,
               static_cast<std::uint16_t>(key.remote_ip >> 16));
    and_prev();
    push_cmp16(link_header + 14,
               static_cast<std::uint16_t>(key.remote_ip & 0xffff));
    and_prev();
  }
  if (key.remote_port != 0) {
    push_cmp16(link_header + 20, key.remote_port);
    and_prev();
  }
  p.push_back({CspfOp::kRet, 0});
  return p;
}

std::vector<BpfInsn> build_bpf_flow_filter(const FlowKey& key,
                                           std::size_t link_header,
                                           std::size_t ethertype_offset) {
  // Straight-line compare chain; any mismatch jumps to the reject tail.
  std::vector<BpfInsn> p;
  struct Check {
    BpfOp ld;
    std::uint32_t off;
    std::uint32_t want;
  };
  std::vector<Check> checks = {
      {BpfOp::kLdAbsH, static_cast<std::uint32_t>(ethertype_offset),
       key.ethertype},
      {BpfOp::kLdAbsB, static_cast<std::uint32_t>(link_header + 9),
       key.ip_proto},
      {BpfOp::kLdAbsW, static_cast<std::uint32_t>(link_header + 16),
       key.local_ip},
  };
  if (key.local_port != 0) {
    checks.push_back({BpfOp::kLdAbsH,
                      static_cast<std::uint32_t>(link_header + 22),
                      key.local_port});
  }
  if (key.remote_ip != 0) {
    checks.push_back({BpfOp::kLdAbsW,
                      static_cast<std::uint32_t>(link_header + 12),
                      key.remote_ip});
  }
  if (key.remote_port != 0) {
    checks.push_back({BpfOp::kLdAbsH,
                      static_cast<std::uint32_t>(link_header + 20),
                      key.remote_port});
  }
  // Layout: [ld, jeq]* accept reject. A failing jeq must skip the remaining
  // pairs plus the accept instruction.
  const std::size_t pairs = checks.size();
  for (std::size_t i = 0; i < pairs; ++i) {
    p.push_back({checks[i].ld, checks[i].off, 0, 0});
    const auto remaining = static_cast<std::uint8_t>(2 * (pairs - i - 1) + 1);
    p.push_back({BpfOp::kJeq, checks[i].want, 0, remaining});
  }
  p.push_back({BpfOp::kRetImm, 1, 0, 0});  // accept
  p.push_back({BpfOp::kRetImm, 0, 0, 0});  // reject
  return p;
}

}  // namespace ulnet::filter
