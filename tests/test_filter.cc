#include "filter/filter.h"

#include <gtest/gtest.h>

#include "buf/bytes.h"
#include "net/frame.h"
#include "sim/rng.h"

namespace ulnet::filter {
namespace {

// Build a raw Ethernet+IP+TCP packet with the given flow fields.
buf::Bytes make_tcp_packet(std::uint32_t src_ip, std::uint32_t dst_ip,
                           std::uint16_t sport, std::uint16_t dport,
                           std::uint8_t proto = 6,
                           std::uint16_t ethertype = net::kEtherTypeIp) {
  buf::Bytes p;
  // Ethernet header (14 bytes).
  for (int i = 0; i < 12; ++i) buf::put8(p, 0x22);
  buf::put16(p, ethertype);
  // IP header (20 bytes, IHL=5).
  buf::put8(p, 0x45);
  buf::put8(p, 0);
  buf::put16(p, 40);       // total length
  buf::put16(p, 0x1234);   // ident
  buf::put16(p, 0);        // flags/frag
  buf::put8(p, 64);        // ttl
  buf::put8(p, proto);
  buf::put16(p, 0);  // header checksum (not validated here)
  buf::put32(p, src_ip);
  buf::put32(p, dst_ip);
  // TCP header start: ports.
  buf::put16(p, sport);
  buf::put16(p, dport);
  buf::put32(p, 0);  // seq
  buf::put32(p, 0);  // ack
  buf::put32(p, 0x50000000);  // offset etc.
  buf::put32(p, 0);
  return p;
}

constexpr std::size_t kEthHdr = 14;
constexpr std::size_t kEthTypeOff = 12;

FlowKey flow_of(std::uint32_t local_ip, std::uint16_t local_port,
                std::uint32_t remote_ip, std::uint16_t remote_port) {
  FlowKey k;
  k.ethertype = net::kEtherTypeIp;
  k.ip_proto = 6;
  k.local_ip = local_ip;
  k.local_port = local_port;
  k.remote_ip = remote_ip;
  k.remote_port = remote_port;
  return k;
}

struct FilterCase {
  const char* name;
  std::uint32_t src_ip, dst_ip;
  std::uint16_t sport, dport;
  std::uint8_t proto;
  std::uint16_t ethertype;
  bool expect;
};

// Flow under test: local 10.0.0.2:80 <- remote 10.0.0.1:1234.
const FlowKey kKey = flow_of(0x0a000002, 80, 0x0a000001, 1234);

const FilterCase kCases[] = {
    {"exact_match", 0x0a000001, 0x0a000002, 1234, 80, 6, net::kEtherTypeIp,
     true},
    {"wrong_dport", 0x0a000001, 0x0a000002, 1234, 81, 6, net::kEtherTypeIp,
     false},
    {"wrong_sport", 0x0a000001, 0x0a000002, 1235, 80, 6, net::kEtherTypeIp,
     false},
    {"wrong_src_ip", 0x0a000003, 0x0a000002, 1234, 80, 6, net::kEtherTypeIp,
     false},
    {"wrong_dst_ip", 0x0a000001, 0x0a000003, 1234, 80, 6, net::kEtherTypeIp,
     false},
    {"wrong_proto_udp", 0x0a000001, 0x0a000002, 1234, 80, 17,
     net::kEtherTypeIp, false},
    {"wrong_ethertype", 0x0a000001, 0x0a000002, 1234, 80, 6,
     net::kEtherTypeArp, false},
};

class FlowFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FlowFilterTest, CspfMatches) {
  const auto& c = GetParam();
  CspfVm vm(build_cspf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  auto pkt = make_tcp_packet(c.src_ip, c.dst_ip, c.sport, c.dport, c.proto,
                             c.ethertype);
  EXPECT_EQ(vm.run(pkt).accept, c.expect) << c.name;
}

TEST_P(FlowFilterTest, BpfMatches) {
  const auto& c = GetParam();
  BpfVm vm(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  auto pkt = make_tcp_packet(c.src_ip, c.dst_ip, c.sport, c.dport, c.proto,
                             c.ethertype);
  EXPECT_EQ(vm.run(pkt).accept, c.expect) << c.name;
}

TEST_P(FlowFilterTest, SynthesizedMatches) {
  const auto& c = GetParam();
  SynthesizedMatcher m(kKey, kEthHdr);
  auto pkt = make_tcp_packet(c.src_ip, c.dst_ip, c.sport, c.dport, c.proto,
                             c.ethertype);
  EXPECT_EQ(m.run(pkt).accept, c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllCases, FlowFilterTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

TEST(FlowFilter, WildcardRemoteAcceptsAnyPeer) {
  // Listening socket: remote ip/port are wildcards.
  FlowKey listen = flow_of(0x0a000002, 80, 0, 0);
  CspfVm cspf(build_cspf_flow_filter(listen, kEthHdr, kEthTypeOff));
  BpfVm bpf(build_bpf_flow_filter(listen, kEthHdr, kEthTypeOff));
  SynthesizedMatcher synth(listen, kEthHdr);
  for (std::uint16_t sport : {1u, 999u, 65535u}) {
    auto pkt = make_tcp_packet(0x0a0000aa, 0x0a000002,
                               static_cast<std::uint16_t>(sport), 80);
    EXPECT_TRUE(cspf.run(pkt).accept);
    EXPECT_TRUE(bpf.run(pkt).accept);
    EXPECT_TRUE(synth.run(pkt).accept);
  }
}

TEST(FlowFilter, EnginesAgreeOnRandomPackets) {
  sim::Rng rng(123);
  CspfVm cspf(build_cspf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  BpfVm bpf(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  SynthesizedMatcher synth(kKey, kEthHdr);
  int accepts = 0;
  for (int i = 0; i < 2000; ++i) {
    // Random fields drawn from small pools so matches actually occur.
    const std::uint32_t ips[] = {0x0a000001, 0x0a000002, 0x0a000003};
    const std::uint16_t ports[] = {80, 1234, 9999};
    auto pkt = make_tcp_packet(
        ips[rng.below(3)], ips[rng.below(3)], ports[rng.below(3)],
        ports[rng.below(3)], rng.chance(0.8) ? 6 : 17,
        rng.chance(0.9) ? net::kEtherTypeIp : net::kEtherTypeArp);
    const bool a = cspf.run(pkt).accept;
    const bool b = bpf.run(pkt).accept;
    const bool c = synth.run(pkt).accept;
    EXPECT_EQ(a, b) << "cspf vs bpf at trial " << i;
    EXPECT_EQ(b, c) << "bpf vs synth at trial " << i;
    accepts += a;
  }
  EXPECT_GT(accepts, 0);  // the sweep hit the flow at least once
}

TEST(FlowFilter, ShortPacketsRejectEverywhere) {
  CspfVm cspf(build_cspf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  BpfVm bpf(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  SynthesizedMatcher synth(kKey, kEthHdr);
  buf::Bytes tiny(10, 0);
  EXPECT_FALSE(cspf.run(tiny).accept);
  EXPECT_FALSE(bpf.run(tiny).accept);
  EXPECT_FALSE(synth.run(tiny).accept);
}

TEST(FlowFilter, InstructionCountsOrderAsThePaperArgues) {
  // CSPF (stack interpreter) executes materially more steps than BPF,
  // and the synthesized matcher claims "only a few instructions".
  CspfVm cspf(build_cspf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  BpfVm bpf(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  SynthesizedMatcher synth(kKey, kEthHdr);
  auto pkt = make_tcp_packet(0x0a000001, 0x0a000002, 1234, 80);
  const int c = cspf.run(pkt).instructions;
  const int b = bpf.run(pkt).instructions;
  const int s = synth.run(pkt).instructions;
  EXPECT_GT(c, b);
  EXPECT_LE(s, 8);
}

TEST(FlowFilter, ExtractFlowParsesFields) {
  auto pkt = make_tcp_packet(0x0a000001, 0x0a000002, 1234, 80);
  auto flow = extract_flow(pkt, kEthHdr, kEthTypeOff);
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->remote_ip, 0x0a000001u);
  EXPECT_EQ(flow->local_ip, 0x0a000002u);
  EXPECT_EQ(flow->remote_port, 1234);
  EXPECT_EQ(flow->local_port, 80);
  EXPECT_EQ(flow->ip_proto, 6);
}

TEST(FlowFilter, CspfRejectsOnStackUnderflow) {
  CspfVm vm({{CspfOp::kEq, 0}});
  buf::Bytes pkt(64, 0);
  EXPECT_FALSE(vm.run(pkt).accept);
}

TEST(FlowFilter, BpfFallOffEndRejects) {
  BpfVm vm({{BpfOp::kLdAbsH, 0, 0, 0}});
  buf::Bytes pkt(64, 1);
  EXPECT_FALSE(vm.run(pkt).accept);
}

// ---------------------------------------------------------------------------
// Filter aggregation: conjunctive-predicate analyzers + the shared trie
// ---------------------------------------------------------------------------

TEST(FilterAggregation, AnalyzersAcceptTheFlowFilterShape) {
  // The programs the netio module actually installs must be aggregable:
  // both analyzers recognize the masked-equality conjunction inside them.
  const auto bpf = analyze_bpf(build_bpf_flow_filter(kKey, kEthHdr,
                                                     kEthTypeOff));
  ASSERT_TRUE(bpf.has_value());
  EXPECT_GE(bpf->size(), 4u);
  const auto cspf = analyze_cspf(build_cspf_flow_filter(kKey, kEthHdr,
                                                        kEthTypeOff));
  ASSERT_TRUE(cspf.has_value());
  EXPECT_GE(cspf->size(), 4u);
}

TEST(FilterAggregation, AnalyzerPredicatesMeanWhatTheProgramMeans) {
  // A trie built from the analyzed predicates must give the program's
  // verdict on every probe -- acceptance iff the VM accepts.
  BpfVm vm(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  FilterAggregate agg;
  agg.insert(1, *analyze_bpf(vm.program()));
  for (const FilterCase& c : kCases) {
    auto pkt = make_tcp_packet(c.src_ip, c.dst_ip, c.sport, c.dport, c.proto,
                               c.ethertype);
    EXPECT_EQ(agg.classify(pkt).best == 1, vm.run(pkt).accept) << c.name;
  }
}

TEST(FilterAggregation, AnalyzersRejectNonConjunctivePrograms) {
  // Always-reject BPF program: no accepting path to summarize.
  EXPECT_FALSE(analyze_bpf({{BpfOp::kRetImm, 0, 0, 0}}).has_value());
  // Fall-off-the-end program.
  EXPECT_FALSE(analyze_bpf({{BpfOp::kLdAbsH, 0, 0, 0}}).has_value());
  // CSPF program that is not a chain of equality groups.
  EXPECT_FALSE(analyze_cspf({{CspfOp::kEq, 0}}).has_value());
}

TEST(FilterAggregation, FirstMatchWinsAcrossOverlappingBindings) {
  // Two identical programs under different ids: the trie must report the
  // lower id, exactly like the linear walk's first match.
  const auto preds = *analyze_bpf(build_bpf_flow_filter(kKey, kEthHdr,
                                                        kEthTypeOff));
  FilterAggregate agg;
  agg.insert(7, preds);
  agg.insert(3, preds);
  auto pkt = make_tcp_packet(0x0a000001, 0x0a000002, 1234, 80);
  EXPECT_EQ(agg.classify(pkt).best, 3u);
}

TEST(FilterAggregation, WildcardAndExactBindingsResolveLikeTheWalk) {
  // An exact connection filter and a listening (wildcard-remote) filter on
  // the same port coexist; packets match the first (lowest-id) accepting
  // binding, and a foreign port matches only the wildcard... or nothing.
  const FlowKey listen = flow_of(0x0a000002, 80, 0, 0);
  BpfVm exact_vm(build_bpf_flow_filter(kKey, kEthHdr, kEthTypeOff));
  BpfVm listen_vm(build_bpf_flow_filter(listen, kEthHdr, kEthTypeOff));
  FilterAggregate agg;
  agg.insert(1, *analyze_bpf(exact_vm.program()));
  agg.insert(2, *analyze_bpf(listen_vm.program()));

  sim::Rng rng(77);
  const std::uint32_t ips[] = {0x0a000001, 0x0a000002, 0x0a0000aa};
  const std::uint16_t ports[] = {80, 1234, 9999};
  for (int i = 0; i < 4000; ++i) {
    auto pkt = make_tcp_packet(
        ips[rng.below(3)], ips[rng.below(3)], ports[rng.below(3)],
        ports[rng.below(3)], rng.chance(0.8) ? 6 : 17,
        rng.chance(0.9) ? net::kEtherTypeIp : net::kEtherTypeArp);
    std::uint32_t walk = 0;
    if (exact_vm.run(pkt).accept) {
      walk = 1;
    } else if (listen_vm.run(pkt).accept) {
      walk = 2;
    }
    EXPECT_EQ(agg.classify(pkt).best, walk) << "trial " << i;
  }
}

TEST(FilterAggregation, ClassifyCostIsHeaderDepthNotBindingCount) {
  // 64 distinct connections folded into one trie: classifying a packet
  // loads each tested header field once and walks one path, so the work is
  // bounded by header depth no matter how many bindings share the trie.
  FilterAggregate agg;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const FlowKey k = flow_of(0x0a000002, 5001,  0x0a000001,
                              static_cast<std::uint16_t>(2000 + i));
    agg.insert(i + 1,
               *analyze_bpf(build_bpf_flow_filter(k, kEthHdr, kEthTypeOff)));
  }
  auto pkt = make_tcp_packet(0x0a000001, 0x0a000002, 2063, 5001);
  const auto res = agg.classify(pkt);
  EXPECT_EQ(res.best, 64u);
  EXPECT_LE(res.loads, static_cast<int>(agg.dimension_count()));
  EXPECT_LE(res.nodes_visited, 8);
}

TEST(FilterAggregation, ClearForgetsEverything) {
  FilterAggregate agg;
  agg.insert(1, *analyze_bpf(build_bpf_flow_filter(kKey, kEthHdr,
                                                   kEthTypeOff)));
  EXPECT_FALSE(agg.empty());
  agg.clear();
  EXPECT_TRUE(agg.empty());
  EXPECT_EQ(agg.node_count(), 0u);
  auto pkt = make_tcp_packet(0x0a000001, 0x0a000002, 1234, 80);
  EXPECT_EQ(agg.classify(pkt).best, 0u);
}

}  // namespace
}  // namespace ulnet::filter
