// Differential tests for the aggregated (one-pass trie) demultiplexer.
//
// The trie is an optimization, not a semantics change: for every frame the
// kernel delivers, the aggregated classification must name exactly the
// channel the paper-accurate linear walk would have named -- including
// first-match resolution of overlapping and duplicate bindings, wildcard
// (listening) filters, raw ethertype bindings and residual programs the
// analyzer could not fold. These tests drive the real NetIoModule with the
// differential shadow armed, so every delivered frame is classified twice
// and any disagreement trips `demux_diff_mismatches`.
//
// The quick storms run in tier 1 under the `demux_diff` ctest label; the
// 256-binding full sweep is the same property at bench scale and only runs
// when ULNET_DEMUX_FULL=1 (wired as the perf-configuration ctest).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "api/chaos.h"
#include "core/netio_module.h"
#include "os/world.h"
#include "proto/wire.h"
#include "sim/rng.h"

namespace ulnet::core {
namespace {

struct DemuxDiffFixture : ::testing::Test {
  os::World world;
  os::Host& host = world.add_host("h");
  net::Link& link = world.add_ethernet();
  hw::LanceNic& nic =
      world.attach_lance(host, link, net::Ipv4Addr::parse("10.0.0.1"));
  NetIoModule mod{host, nic, 0};
  sim::SpaceId app = host.new_space("app");

  void arm(NetIoModule::DemuxMode mode) {
    mod.set_demux_mode(mode);
    mod.set_filter_aggregation(true);
    mod.set_demux_differential(true);
  }

  NetIoModule::ChannelSetup tcp_setup(std::uint16_t lport,
                                      std::uint16_t rport,
                                      std::uint32_t remote_ip) {
    NetIoModule::ChannelSetup s;
    s.app_space = app;
    s.flow.ethertype = net::kEtherTypeIp;
    s.flow.ip_proto = proto::kProtoTcp;
    s.flow.local_ip = net::Ipv4Addr::parse("10.0.0.1").value;
    s.flow.remote_ip = remote_ip;
    s.flow.local_port = lport;
    s.flow.remote_port = rport;
    s.peer_mac = net::MacAddr::from_index(9, 0);
    return s;
  }

  ChannelId create(const NetIoModule::ChannelSetup& setup) {
    ChannelId id = kInvalidChannel;
    host.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                      [&](sim::TaskCtx& ctx) {
                        id = mod.create_channel(ctx, setup);
                      });
    world.run();
    return id;
  }

  void destroy(ChannelId id) {
    host.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                      [&](sim::TaskCtx& ctx) { mod.destroy_channel(ctx, id); });
    world.run();
  }

  // One wire-accurate frame through the full rx path (classify included).
  void arrive(std::uint32_t src_ip, std::uint16_t sport, std::uint16_t dport,
              std::uint8_t ip_proto = proto::kProtoTcp,
              std::uint16_t ethertype = net::kEtherTypeIp) {
    net::Frame f;
    net::EthHeader{nic.mac(), net::MacAddr::from_index(9, 0), ethertype}
        .serialize(f.bytes);
    proto::Ipv4Header ih;
    ih.total_len = 40;
    ih.proto = ip_proto;
    ih.src = net::Ipv4Addr{src_ip};
    ih.dst = net::Ipv4Addr::parse("10.0.0.1");
    ih.serialize(f.bytes);
    proto::TcpHeader th;
    th.sport = sport;
    th.dport = dport;
    th.flags.ack = true;
    th.serialize(f.bytes, ih.src, ih.dst, {});
    nic.frame_arrived(std::move(f));
    world.run();
  }

  // A seeded storm mixing exact matches, near-misses, foreign protocols
  // and foreign ethertypes across whatever bindings exist.
  void storm(std::uint64_t seed, int frames) {
    sim::Rng rng(seed);
    const std::uint32_t ips[] = {net::Ipv4Addr::parse("10.0.0.2").value,
                                 net::Ipv4Addr::parse("10.0.0.3").value,
                                 net::Ipv4Addr::parse("10.0.0.99").value};
    const std::uint16_t ports[] = {5001, 5002, 5003, 6001, 9999};
    for (int i = 0; i < frames; ++i) {
      arrive(ips[rng.below(3)], ports[rng.below(5)], ports[rng.below(5)],
             rng.chance(0.85) ? proto::kProtoTcp : proto::kProtoUdp,
             rng.chance(0.92) ? net::kEtherTypeIp : net::kEtherTypeArp);
    }
  }
};

TEST_F(DemuxDiffFixture, BpfStormOverMixedBindingsAgreesWithWalk) {
  arm(NetIoModule::DemuxMode::kBpf);
  const std::uint32_t peer = net::Ipv4Addr::parse("10.0.0.2").value;
  // Mixed population: exact connections, a duplicate of the first binding
  // (first-match tie), a wildcard listener, and a raw ethertype channel.
  create(tcp_setup(5001, 6001, peer));
  create(tcp_setup(5002, 6001, peer));
  create(tcp_setup(5001, 6001, peer));  // duplicate: lower id must win
  create(tcp_setup(5003, 0, 0));        // listener: remote wildcarded
  NetIoModule::ChannelSetup raw;
  raw.app_space = app;
  raw.raw = true;
  raw.raw_ethertype = net::kEtherTypeArp;
  raw.peer_mac = net::MacAddr::from_index(9, 0);
  create(raw);

  storm(/*seed=*/17, /*frames=*/600);
  EXPECT_EQ(mod.counters().demux_diff_mismatches, 0u);
  EXPECT_GT(mod.counters().demux_trie_hits, 0u);
  EXPECT_GT(mod.trie_nodes(), 0u);
}

TEST_F(DemuxDiffFixture, CspfStormOverMixedBindingsAgreesWithWalk) {
  arm(NetIoModule::DemuxMode::kCspf);
  const std::uint32_t peer = net::Ipv4Addr::parse("10.0.0.2").value;
  create(tcp_setup(5001, 6001, peer));
  create(tcp_setup(5002, 6001, peer));
  create(tcp_setup(5003, 0, 0));

  storm(/*seed=*/23, /*frames=*/600);
  EXPECT_EQ(mod.counters().demux_diff_mismatches, 0u);
  EXPECT_GT(mod.counters().demux_trie_hits, 0u);
}

TEST_F(DemuxDiffFixture, UnbindRecompilesAndForgetsTheBinding) {
  arm(NetIoModule::DemuxMode::kBpf);
  const std::uint32_t peer = net::Ipv4Addr::parse("10.0.0.2").value;
  const ChannelId a = create(tcp_setup(5001, 6001, peer));
  create(tcp_setup(5002, 6001, peer));
  storm(/*seed=*/31, /*frames=*/200);
  const std::size_t nodes_before = mod.trie_nodes();
  const std::uint64_t rebuilds_before = mod.counters().demux_trie_rebuilds;

  destroy(a);
  storm(/*seed=*/37, /*frames=*/200);
  // The unbind invalidated the trie; the next classification recompiled it
  // without the dead binding, and the shadow walk still agrees on every
  // frame (including the ones that used to hit channel `a`).
  EXPECT_GT(mod.counters().demux_trie_rebuilds, rebuilds_before);
  EXPECT_LT(mod.trie_nodes(), nodes_before);
  EXPECT_EQ(mod.counters().demux_diff_mismatches, 0u);
}

TEST_F(DemuxDiffFixture, ModeSwitchRecompilesForTheNewEngine) {
  arm(NetIoModule::DemuxMode::kBpf);
  const std::uint32_t peer = net::Ipv4Addr::parse("10.0.0.2").value;
  create(tcp_setup(5001, 6001, peer));
  storm(/*seed=*/41, /*frames=*/100);
  const std::uint64_t rebuilds_before = mod.counters().demux_trie_rebuilds;
  mod.set_demux_mode(NetIoModule::DemuxMode::kCspf);
  storm(/*seed=*/43, /*frames=*/100);
  EXPECT_GT(mod.counters().demux_trie_rebuilds, rebuilds_before);
  EXPECT_EQ(mod.counters().demux_diff_mismatches, 0u);
}

// 8-seed chaos soak: the full crash-fault scenario (library kill, stalls,
// lost wakeups, ring exhaustion, reclamation) with the aggregated demux
// and its differential shadow armed on both hosts. The report's invariants
// now include verdict identity (0 mismatches) and the no-leaked-trie-nodes
// bound after the victim's bindings are reclaimed.
TEST(DemuxDiffChaos, EightSeedsSurviveWithAggregationArmed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    api::ChaosScenarioConfig cfg;
    cfg.seed = seed;
    cfg.link = api::LinkType::kEthernet;
    cfg.demux_mode = NetIoModule::DemuxMode::kBpf;
    cfg.filter_aggregation = true;
    cfg.demux_differential = true;
    const api::ChaosReport rep = api::run_chaos_scenario(cfg);
    EXPECT_TRUE(rep.invariants_ok()) << "seed " << seed << ": "
                                     << rep.failure();
    EXPECT_TRUE(rep.aggregation_armed) << "seed " << seed;
    EXPECT_EQ(rep.demux_diff_mismatches, 0u) << "seed " << seed;
  }
}

// Bench-scale sweep: 256 bindings, both interpreted engines, a long mixed
// storm. Same property as the quick storms, at the population size the
// scale bench gates on. Opt-in (ULNET_DEMUX_FULL=1); ctest runs it under
// the perf configuration.
TEST_F(DemuxDiffFixture, FullSweep256Bindings) {
  if (std::getenv("ULNET_DEMUX_FULL") == nullptr) {
    GTEST_SKIP() << "set ULNET_DEMUX_FULL=1 (ctest -C perf) for the full "
                    "256-binding sweep";
  }
  for (NetIoModule::DemuxMode mode :
       {NetIoModule::DemuxMode::kBpf, NetIoModule::DemuxMode::kCspf}) {
    arm(mode);
    const std::uint32_t peer = net::Ipv4Addr::parse("10.0.0.2").value;
    std::vector<ChannelId> ids;
    for (int i = 0; i < 256; ++i) {
      ids.push_back(create(tcp_setup(static_cast<std::uint16_t>(5001 + i),
                                     static_cast<std::uint16_t>(2000 + i),
                                     peer)));
    }
    sim::Rng rng(1000 + static_cast<std::uint64_t>(mode));
    for (int i = 0; i < 5000; ++i) {
      const auto pick = static_cast<std::uint16_t>(rng.below(300));
      arrive(peer, static_cast<std::uint16_t>(2000 + pick),
             static_cast<std::uint16_t>(5001 + pick),
             rng.chance(0.9) ? proto::kProtoTcp : proto::kProtoUdp);
    }
    EXPECT_EQ(mod.counters().demux_diff_mismatches, 0u);
    EXPECT_GT(mod.counters().demux_trie_hits, 1000u);
    for (ChannelId id : ids) destroy(id);
  }
}

}  // namespace
}  // namespace ulnet::core
