// Reusable TCP application roles for tests: a recording sink/acceptor and a
// bulk data source. These run directly inside protocol upcalls (no CPU
// model), which is exactly what the protocol-correctness tests want.
#pragma once

#include <functional>
#include <limits>
#include <string>

#include "proto/tcp.h"

namespace ulnet::testing {

// Deterministic payload: byte i of a stream.
inline std::uint8_t pattern_byte(std::size_t i) {
  return static_cast<std::uint8_t>((i * 7 + 3) % 256);
}

inline buf::Bytes pattern_bytes(std::size_t offset, std::size_t n) {
  buf::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = pattern_byte(offset + i);
  return out;
}

class RecordingObserver : public proto::TcpObserver {
 public:
  int established = 0;
  int accepted = 0;
  int closed = 0;
  int fins = 0;
  std::string close_reason;
  bool saw_error_close = false;
  buf::Bytes received;
  proto::TcpConnection* accepted_conn = nullptr;
  bool auto_read = true;
  // If set, close our side once the peer's FIN arrives (echo-server style).
  bool close_on_fin = false;

  void on_established(proto::TcpConnection&) override { established++; }
  void on_accept(proto::TcpConnection& c) override {
    accepted++;
    accepted_conn = &c;
  }
  void on_data_ready(proto::TcpConnection& c) override {
    if (!auto_read) return;
    auto chunk = c.read(std::numeric_limits<std::size_t>::max());
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  void on_peer_fin(proto::TcpConnection& c) override {
    fins++;
    if (close_on_fin) c.close();
  }
  void on_closed(proto::TcpConnection&, const std::string& reason) override {
    closed++;
    close_reason = reason;
    if (!reason.empty()) saw_error_close = true;
  }
};

// Writes `total` pattern bytes in `write_size` user packets, then optionally
// closes. Re-pumps whenever the send buffer drains.
class BulkSource : public proto::TcpObserver {
 public:
  BulkSource(std::size_t total, std::size_t write_size,
             bool close_when_done = true)
      : total_(total),
        write_size_(write_size),
        close_when_done_(close_when_done) {}

  std::size_t sent = 0;
  int closed = 0;
  std::string close_reason;
  bool done() const { return sent >= total_; }

  void on_established(proto::TcpConnection& c) override { pump(c); }
  void on_send_space(proto::TcpConnection& c) override { pump(c); }
  void on_closed(proto::TcpConnection&, const std::string& reason) override {
    closed++;
    close_reason = reason;
  }

  void pump(proto::TcpConnection& c) {
    while (sent < total_) {
      const std::size_t n = std::min(write_size_, total_ - sent);
      const std::size_t took = c.send(pattern_bytes(sent, n));
      sent += took;
      if (took < n) return;  // buffer full; resume on on_send_space
    }
    if (close_when_done_ && !close_issued_) {
      close_issued_ = true;
      c.close();
    }
  }

 private:
  std::size_t total_;
  std::size_t write_size_;
  bool close_when_done_;
  bool close_issued_ = false;
};

}  // namespace ulnet::testing
