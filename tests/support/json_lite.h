// Minimal recursive-descent JSON parser for tests that validate the JSON
// emitted by the observability layer (Tracer::to_chrome_json, the module
// dump_json methods, the bench --json files). Strict: the whole input must
// be one well-formed JSON value with nothing but whitespace after it.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ulnet::testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace json_detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      pos_++;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue v;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        v.type = JsonValue::Type::kString;
        v.str = std::move(*s);
        return v;
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) return std::nullopt;
        v.type = JsonValue::Type::kBool;
        return v;
      case 'n':
        if (!literal("null")) return std::nullopt;
        return v;
      default:
        return number();
    }
  }

  std::optional<JsonValue> object() {  // NOLINT(misc-no-recursion)
    if (!eat('{')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!eat(':')) return std::nullopt;
      auto val = value();
      if (!val) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*val));
      if (eat(',')) continue;
      if (eat('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {  // NOLINT(misc-no-recursion)
    if (!eat('[')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      auto val = value();
      if (!val) return std::nullopt;
      v.array.push_back(std::move(*val));
      if (eat(',')) continue;
      if (eat(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<std::string> string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    pos_++;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Tests only need ASCII escapes; anything else is preserved as '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return std::nullopt;
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace json_detail

inline std::optional<JsonValue> json_parse(std::string_view text) {
  return json_detail::Parser(text).parse();
}

}  // namespace ulnet::testing
