// Test harness: NetworkStack instances wired directly to each other through
// a configurable lossy channel, bypassing the CPU/NIC cost machinery. Used
// by the protocol unit/property tests, which care about protocol behaviour
// (correctness under loss, reordering, corruption), not about timing.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "proto/stack.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "timer/wheel.h"

namespace ulnet::testing {

class StackHarness : public proto::StackEnv {
 public:
  StackHarness(sim::EventLoop& loop, sim::Rng& rng, net::Ipv4Addr ip,
               net::MacAddr mac, std::size_t mtu = 1500)
      : loop_(loop),
        rng_(rng),
        ip_addr_(ip),
        mac_(mac),
        mtu_(mtu),
        wheel_(10 * sim::kMs),
        driver_(loop, wheel_),
        stack_(std::make_unique<proto::NetworkStack>(*this)) {}

  // (dst mac, ethertype, payload) -> the channel
  std::function<void(net::MacAddr, std::uint16_t, buf::Bytes)> transmit_fn;

  proto::NetworkStack& stack() { return *stack_; }
  [[nodiscard]] net::MacAddr mac() const { return mac_; }
  [[nodiscard]] net::Ipv4Addr ip_addr() const { return ip_addr_; }
  [[nodiscard]] sim::Time charged() const { return charged_; }

  // ---- StackEnv ----
  [[nodiscard]] sim::Time now() const override { return loop_.now(); }
  void charge(sim::Time ns) override { charged_ += ns; }
  [[nodiscard]] const sim::CostModel& cost() const override { return cost_; }
  std::uint32_t random32() override { return rng_.next_u32(); }
  timer::TimerId schedule(sim::Time delay,
                          std::function<void()> cb) override {
    return driver_.schedule(delay, std::move(cb));
  }
  void cancel_timer(timer::TimerId id) override { driver_.cancel(id); }
  [[nodiscard]] int interface_count() const override { return 1; }
  [[nodiscard]] net::MacAddr ifc_mac(int) const override { return mac_; }
  [[nodiscard]] net::Ipv4Addr ifc_ip(int) const override { return ip_addr_; }
  [[nodiscard]] int ifc_prefix_len(int) const override { return 24; }
  [[nodiscard]] std::size_t ifc_mtu(int) const override { return mtu_; }
  void transmit(int, net::MacAddr dst, std::uint16_t ethertype,
                buf::Bytes payload, const proto::TxFlow*) override {
    if (transmit_fn) transmit_fn(dst, ethertype, std::move(payload));
  }

 private:
  sim::EventLoop& loop_;
  sim::Rng& rng_;
  sim::CostModel cost_;
  net::Ipv4Addr ip_addr_;
  net::MacAddr mac_;
  std::size_t mtu_;
  timer::TimingWheel wheel_;
  timer::TimerWheelDriver driver_;
  std::unique_ptr<proto::NetworkStack> stack_;
  sim::Time charged_ = 0;
};

// A channel connecting any number of harnesses, with loss/dup/corrupt/jitter
// applied per delivery.
class TestChannel {
 public:
  TestChannel(sim::EventLoop& loop, sim::Rng& rng,
              sim::Time delay = 1 * sim::kMs)
      : loop_(loop), rng_(rng), delay_(delay) {}

  double loss_p = 0;
  double dup_p = 0;
  double corrupt_p = 0;
  sim::Time jitter_max = 0;
  // Wire tap: observes every payload entering the channel (before faults).
  std::function<void(std::uint16_t ethertype, const buf::Bytes&)> tap;

  void attach(StackHarness* h) {
    members_.push_back(h);
    h->transmit_fn = [this, h](net::MacAddr dst, std::uint16_t et,
                               buf::Bytes payload) {
      forward(h, dst, et, std::move(payload));
    };
  }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void forward(StackHarness* from, net::MacAddr dst, std::uint16_t et,
               buf::Bytes payload) {
    forwarded_++;
    if (tap) tap(et, payload);
    if (loss_p > 0 && rng_.chance(loss_p)) {
      dropped_++;
      return;
    }
    buf::Bytes data = std::move(payload);
    if (corrupt_p > 0 && rng_.chance(corrupt_p) && !data.empty()) {
      data[rng_.below(data.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.below(8));
    }
    const int copies = (dup_p > 0 && rng_.chance(dup_p)) ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      sim::Time at = loop_.now() + delay_ * (i + 1);
      if (jitter_max > 0) at += rng_.range(0, jitter_max);
      loop_.schedule_at(at, [this, from, dst, et, data] {
        for (StackHarness* m : members_) {
          if (m == from) continue;
          if (dst.is_broadcast() || m->mac() == dst) {
            m->stack().link_input(0, et, data);
          }
        }
      });
    }
  }

  sim::EventLoop& loop_;
  sim::Rng& rng_;
  sim::Time delay_;
  std::vector<StackHarness*> members_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ulnet::testing
