#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/metrics.h"

namespace ulnet::sim {
namespace {

struct CpuFixture : ::testing::Test {
  EventLoop loop;
  CostModel cost;
  Metrics metrics;
  Cpu cpu{loop, cost, metrics, "test.cpu"};
};

TEST_F(CpuFixture, TaskChargesAccrue) {
  Time end_seen = -1;
  cpu.submit(kKernelSpace, Prio::kNormal, [&](TaskCtx& ctx) {
    ctx.charge(100);
    ctx.charge(50);
    end_seen = ctx.now();
  });
  loop.run();
  EXPECT_EQ(end_seen, 150);
  EXPECT_EQ(cpu.busy_ns(), 150);
  EXPECT_EQ(cpu.tasks_run(), 1u);
}

TEST_F(CpuFixture, TasksSerialize) {
  std::vector<Time> starts;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(kKernelSpace, Prio::kNormal, [&](TaskCtx& ctx) {
      starts.push_back(ctx.now());
      ctx.charge(1000);
    });
  }
  loop.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 1000);
  EXPECT_EQ(starts[2], 2000);
}

TEST_F(CpuFixture, ContextSwitchChargedOnSpaceChange) {
  // First task in kernel space: the CPU starts in kernel space, no switch.
  cpu.submit(kKernelSpace, Prio::kNormal, [](TaskCtx& ctx) { ctx.charge(10); });
  // Then a user-space task: one switch.
  cpu.submit(1, Prio::kNormal, [](TaskCtx& ctx) { ctx.charge(10); });
  // Another task in the same user space: no switch.
  cpu.submit(1, Prio::kNormal, [](TaskCtx& ctx) { ctx.charge(10); });
  loop.run();
  EXPECT_EQ(cpu.switches(), 1u);
  EXPECT_EQ(metrics.context_switches, 1u);
  EXPECT_EQ(cpu.busy_ns(), 30 + cost.context_switch);
}

TEST_F(CpuFixture, InterruptPriorityPreemptsQueueOrder) {
  std::vector<int> order;
  cpu.submit(1, Prio::kNormal, [&](TaskCtx& ctx) {
    ctx.charge(1000);
    order.push_back(1);
  });
  cpu.submit(2, Prio::kNormal, [&](TaskCtx& ctx) {
    ctx.charge(1000);
    order.push_back(2);
  });
  // Arrives while task 1 is executing: runs before task 2 (after task 1
  // completes; the model is non-preemptive).
  loop.schedule_at(500, [&] {
    cpu.submit(kKernelSpace, Prio::kInterrupt, [&](TaskCtx& ctx) {
      ctx.charge(10);
      order.push_back(0);
    });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST_F(CpuFixture, DeferredActionsRunAtTaskEnd) {
  Time deferred_at = -1;
  cpu.submit(kKernelSpace, Prio::kNormal, [&](TaskCtx& ctx) {
    ctx.charge(500);
    ctx.defer([&] { deferred_at = loop.now(); });
    ctx.charge(500);  // charge after defer still extends the task
  });
  loop.run();
  EXPECT_EQ(deferred_at, 1000);
}

TEST_F(CpuFixture, ChargeOutsideTaskIsNoop) {
  cpu.charge(12345);
  loop.run();
  EXPECT_EQ(cpu.busy_ns(), 0);
}

TEST_F(CpuFixture, CurrentThrowsOutsideTask) {
  EXPECT_THROW(cpu.current(), std::logic_error);
}

TEST_F(CpuFixture, TaskMaySubmitFollowOnWork) {
  std::vector<Time> t;
  cpu.submit(kKernelSpace, Prio::kNormal, [&](TaskCtx& ctx) {
    ctx.charge(100);
    cpu.submit(kKernelSpace, Prio::kNormal, [&](TaskCtx& inner) {
      t.push_back(inner.now());
    });
  });
  loop.run();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], 100);  // runs only after the first task's span
}

TEST_F(CpuFixture, QueueDepthReflectsBacklog) {
  for (int i = 0; i < 5; ++i) {
    cpu.submit(kKernelSpace, Prio::kNormal, [](TaskCtx& ctx) {
      ctx.charge(100);
    });
  }
  EXPECT_EQ(cpu.queue_depth(), 5u);
  loop.run();
  EXPECT_EQ(cpu.queue_depth(), 0u);
}

}  // namespace
}  // namespace ulnet::sim
