#include "net/frame.h"

#include <gtest/gtest.h>

namespace ulnet::net {
namespace {

TEST(EthHeader, SerializeParseRoundTrip) {
  EthHeader h{MacAddr::from_index(1, 0), MacAddr::from_index(2, 0),
              kEtherTypeIp};
  buf::Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), EthHeader::kSize);
  auto parsed = EthHeader::parse(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIp);
}

TEST(EthHeader, ParseRejectsShort) {
  buf::Bytes short_buf(13, 0);
  EXPECT_FALSE(EthHeader::parse(short_buf).has_value());
}

TEST(An1Header, SerializeParseRoundTrip) {
  An1Header h{MacAddr::from_index(3, 1), MacAddr::from_index(4, 1), 42, 7,
              kEtherTypeArp};
  buf::Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), An1Header::kSize);
  auto parsed = An1Header::parse(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->bqi, 42);
  EXPECT_EQ(parsed->bqi_advert, 7);
  EXPECT_EQ(parsed->ethertype, kEtherTypeArp);
}

TEST(An1Header, FieldsLiveAtDocumentedOffsets) {
  An1Header h{MacAddr{}, MacAddr{}, 0x1234, 0x5678, 0};
  buf::Bytes out;
  h.serialize(out);
  EXPECT_EQ(buf::rd16(out, An1Header::kBqiOffset), 0x1234);
  EXPECT_EQ(buf::rd16(out, An1Header::kAdvertOffset), 0x5678);
}

TEST(An1Header, ParseRejectsShort) {
  buf::Bytes short_buf(An1Header::kSize - 1, 0);
  EXPECT_FALSE(An1Header::parse(short_buf).has_value());
}

}  // namespace
}  // namespace ulnet::net
