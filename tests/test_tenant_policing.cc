// Per-tenant policing tests: the network I/O module's byzantine-isolation
// knobs (docs/ROBUSTNESS.md). Counter exactness for forgery strikes, the
// quarantine trip at exactly the strike limit (and the peer's RST-on-behalf
// teardown), the token-bucket transmit policer with per-space SLA
// overrides, the RX slot quota on both the delivery and the replenish
// paths, the loan-budget fallback to owned copies, and -- the acceptance
// bar for shipping the knobs at all -- a configured-but-disabled policy
// being bit-identical to no policy.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/adversary.h"
#include "api/testbed.h"
#include "api/workloads.h"
#include "buf/packet_pool.h"
#include "core/netio_module.h"
#include "core/user_level.h"
#include "hw/nic.h"

namespace ulnet::api {
namespace {

using core::NetIoModule;
using core::UserLevelApp;

// Establish one a->b connection so app A owns a fully bound channel the
// tests can drive (or abuse). Exposes A's socket and B's accepted-socket
// close reason.
struct ConnAB {
  std::shared_ptr<SocketId> sock = std::make_shared<SocketId>(kInvalidSocket);
  std::shared_ptr<std::string> reason = std::make_shared<std::string>();
};

ConnAB connect_ab(Testbed& bed, std::uint16_t port) {
  ConnAB conn;
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  auto reason = conn.reason;
  b->run_app([b, port, reason](sim::TaskCtx&) {
    b->listen(port, [b, reason](SocketId id) {
      SocketEvents evs;
      evs.on_closed = [b, id, reason](const std::string& why) {
        *reason = why;
        b->run_app([b, id](sim::TaskCtx&) { b->release(id); });
      };
      return evs;
    });
  });
  auto sock = conn.sock;
  bed.world().loop().schedule_in(20 * sim::kMs, [&bed, a, port, sock] {
    a->run_app([&bed, a, port, sock](sim::TaskCtx&) {
      a->connect(bed.ip_b(), port, SocketEvents{},
                 [sock](SocketId id) { *sock = id; });
    });
  });
  bed.world().run_for(1 * sim::kSec);
  EXPECT_NE(*conn.sock, kInvalidSocket);
  return conn;
}

TEST(TenantPolicing, ForgeryStrikeCounterIsExact) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/31);
  connect_ab(bed, 6100);
  NetIoModule& na = bed.user_org_a()->netio(0);

  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.forgery_strike_limit = 100;  // counting only, far from the trip point
  na.set_tenant_policy(pol);

  auto* a = bed.user_app_a();
  a->run_app([a](sim::TaskCtx& ctx) {
    a->forge_sends(ctx, 5, UserLevelApp::kForgedSrcPort);
  });
  bed.world().run_for(100 * sim::kMs);

  // One strike per forged send, no more, no less -- and mirrored into the
  // world metrics for the replay fingerprint.
  EXPECT_EQ(na.counters().forgery_strikes, 5u);
  EXPECT_EQ(bed.world().metrics().forgery_strikes, 5u);
  EXPECT_GE(na.counters().send_rejects, 5u);
  EXPECT_EQ(na.counters().tenant_quarantines, 0u);
}

TEST(TenantPolicing, NoStrikesWithPolicingOff) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/32);
  connect_ab(bed, 6101);
  NetIoModule& na = bed.user_org_a()->netio(0);

  auto* a = bed.user_app_a();
  a->run_app([a](sim::TaskCtx& ctx) {
    a->forge_sends(ctx, 5, UserLevelApp::kForgedSrcPort);
  });
  bed.world().run_for(100 * sim::kMs);

  // The template check refuses every forgery regardless of the policy, but
  // without the policy no strikes accrue and nothing is quarantined.
  EXPECT_GE(na.counters().send_rejects, 5u);
  EXPECT_EQ(na.counters().forgery_strikes, 0u);
  EXPECT_EQ(na.counters().tenant_quarantines, 0u);
}

TEST(TenantPolicing, QuarantineAtExactlyNStrikesAndPeerSeesReset) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/33);
  const ConnAB conn = connect_ab(bed, 6102);
  NetIoModule& na = bed.user_org_a()->netio(0);

  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.forgery_strike_limit = 3;
  na.set_tenant_policy(pol);

  auto* a = bed.user_app_a();
  const auto chans = na.channels_of_space(a->app_space());
  ASSERT_FALSE(chans.empty());
  const core::ChannelId ch = chans.front();

  // Two strikes: under the limit, the channel stays up.
  a->run_app([a](sim::TaskCtx& ctx) {
    a->forge_sends(ctx, 2, UserLevelApp::kForgedSrcPort);
  });
  bed.world().run_for(100 * sim::kMs);
  EXPECT_EQ(na.counters().forgery_strikes, 2u);
  EXPECT_EQ(na.counters().tenant_quarantines, 0u);
  EXPECT_FALSE(na.channel_quarantined(ch));

  // Five more attempts in one task: the third strike trips the quarantine
  // and the remaining attempts hit the quarantined-channel refusal, which
  // must not accrue further strikes.
  a->run_app([a](sim::TaskCtx& ctx) {
    a->forge_sends(ctx, 5, UserLevelApp::kForgedSrcPort);
  });
  bed.world().run_for(2 * sim::kSec);

  EXPECT_EQ(na.counters().forgery_strikes, 3u);
  EXPECT_EQ(na.counters().tenant_quarantines, 1u);
  // The registry's deferred teardown gave the channel the dead-client
  // treatment: RST on behalf to the peer, channel destroyed.
  EXPECT_EQ(*conn.reason, "reset by peer");
  EXPECT_TRUE(na.channels_of_space(a->app_space()).empty());
  const auto& stats = bed.user_org_a()->registry().reclaim_stats();
  EXPECT_EQ(stats.channels_quarantined, 1u);
  EXPECT_GE(stats.rsts_sent, 1u);
}

TEST(TenantPolicing, TokenBucketPolicesOverriddenSpaceOnly) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/34);
  NetIoModule& na = bed.user_org_a()->netio(0);
  auto* a = bed.user_app_a();
  auto& honest = static_cast<UserLevelApp&>(bed.add_app_a("honest"));

  // Policy default leaves every space unlimited; only app A's space gets a
  // provisioned SLA of 80 kb/s with a 4 KB burst.
  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.tx_rate_bps = 0;
  pol.tx_burst_bytes = 4096;
  na.set_tenant_policy(pol);
  na.set_space_tx_rate(a->app_space(), 80'000);

  const net::MacAddr dst = bed.user_org_b()->netio(0).nic().mac();
  auto rca = std::make_shared<core::RawChannel>();
  auto rch = std::make_shared<core::RawChannel>();
  a->run_app([a, dst, rca](sim::TaskCtx& ctx) {
    a->open_raw(ctx, 0, 0x7a7a, dst, [](sim::TaskCtx&, buf::Bytes) {},
                [rca](core::RawChannel rc) { *rca = rc; });
  });
  honest.run_app([&honest, dst, rch](sim::TaskCtx& ctx) {
    honest.open_raw(ctx, 0, 0x7b7b, dst, [](sim::TaskCtx&, buf::Bytes) {},
                    [rch](core::RawChannel rc) { *rch = rc; });
  });
  bed.world().run_for(100 * sim::kMs);
  ASSERT_NE(rca->id, core::kInvalidChannel);
  ASSERT_NE(rch->id, core::kInvalidChannel);

  // The provisioned space gets exactly its burst -- four 1 KB frames --
  // then the bucket runs dry and the policer refuses.
  auto sent = std::make_shared<int>(0);
  a->run_app([rca, sent](sim::TaskCtx& ctx) {
    for (int i = 0; i < 6; ++i) {
      if (rca->send(ctx, payload_bytes(0, 1024))) (*sent)++;
    }
  });
  bed.world().run_for(10 * sim::kMs);
  EXPECT_EQ(*sent, 4);
  EXPECT_GE(na.counters().tenant_tx_policed, 2u);

  // The unprovisioned space is untouched by the policer.
  auto honest_sent = std::make_shared<int>(0);
  honest.run_app([rch, honest_sent](sim::TaskCtx& ctx) {
    for (int i = 0; i < 12; ++i) {
      if (rch->send(ctx, payload_bytes(0, 1024))) (*honest_sent)++;
    }
  });
  bed.world().run_for(100 * sim::kMs);
  EXPECT_EQ(*honest_sent, 12);

  // Refill: a second of simulated time at 80 kb/s earns 10 KB, capped at
  // the 4 KB burst -- the next send goes through.
  bed.world().run_for(1 * sim::kSec);
  auto again = std::make_shared<bool>(false);
  a->run_app([rca, again](sim::TaskCtx& ctx) {
    *again = rca->send(ctx, payload_bytes(0, 1024));
  });
  bed.world().run_for(10 * sim::kMs);
  EXPECT_TRUE(*again);
}

TEST(TenantPolicing, RingQuotaBoundsDeliveriesToStalledTenant) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/35);
  const ConnAB conn = connect_ab(bed, 6103);
  NetIoModule& nb = bed.user_org_b()->netio(0);

  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.ring_slot_quota = 2;
  nb.set_tenant_policy(pol);

  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  const auto chans = nb.channels_of_space(b->app_space());
  ASSERT_FALSE(chans.empty());

  // Freeze the receiving library and pump. Nothing ACKs, so the sender
  // dribbles one retransmission per RTO; the tenant's ring occupancy stops
  // at two slots and every delivery beyond drops at the tenant boundary.
  b->stall();
  a->run_app([a, sock = conn.sock](sim::TaskCtx&) {
    a->send(*sock, payload_bytes(0, 16 * 1024));
  });
  bed.world().run_for(10 * sim::kSec);

  EXPECT_LE(nb.channel_ring_depth(chans.front()), 2u);
  EXPECT_GE(nb.counters().tenant_ring_quota_hits, 1u);
  EXPECT_EQ(bed.world().metrics().tenant_ring_quota_hits,
            nb.counters().tenant_ring_quota_hits);
  b->resume();
}

TEST(TenantPolicing, ReplenishBoundedByTenantSlotQuotaOnAn1) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1, /*seed=*/36);
  connect_ab(bed, 6104);
  NetIoModule& nb = bed.user_org_b()->netio(0);
  auto* b = bed.user_app_b();
  auto& an1 = static_cast<hw::An1Nic&>(nb.nic());

  const auto chans = nb.channels_of_space(b->app_space());
  ASSERT_FALSE(chans.empty());
  const core::ChannelId ch = chans.front();
  const std::uint16_t bqi = nb.channel_rx_bqi(ch);
  ASSERT_NE(bqi, 0);

  // Without a policy the starvation recovery reposts a full complement.
  b->exhaust_rings();
  ASSERT_EQ(an1.posted_buffers(bqi), 0);
  nb.channel_replenish(ch);
  const int full = an1.posted_buffers(bqi);
  EXPECT_GT(full, 100);

  // With the quota the same recovery is bounded by the owner's remaining
  // slot allowance -- a refill-starver cannot weaponize the safety net.
  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.ring_slot_quota = 100;
  nb.set_tenant_policy(pol);
  b->exhaust_rings();
  ASSERT_EQ(an1.posted_buffers(bqi), 0);
  nb.channel_replenish(ch);
  EXPECT_EQ(an1.posted_buffers(bqi), 100);
}

TEST(TenantPolicing, LoanBudgetFallsBackToOwnedCopies) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/37);
  bed.user_org_b()->set_zero_copy(true);
  const ConnAB conn = connect_ab(bed, 6105);
  NetIoModule& nb = bed.user_org_b()->netio(0);

  NetIoModule::TenantPolicy pol;
  pol.enabled = true;
  pol.loan_budget = 4;
  nb.set_tenant_policy(pol);

  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  b->set_hoard_loans(true);  // never release anything delivered

  a->run_app([a, sock = conn.sock](sim::TaskCtx&) {
    a->send(*sock, payload_bytes(0, 32 * 1024));
  });
  // Hoarded segments never reach TCP, so nothing ACKs and each RTO-paced
  // retransmission takes a fresh delivery; a dozen simulated seconds is
  // enough for the hoard to cross the four-loan budget.
  bed.world().run_for(12 * sim::kSec);

  // Deliveries beyond the budget still arrive -- as owned copies -- so the
  // hoarder's loan table stays bounded at its budget.
  EXPECT_GE(nb.counters().tenant_loan_budget_hits, 1u);
  buf::PacketPool* pool = bed.host_b().pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_LE(pool->loans_of_owner(b->app_space()), 4u);
  EXPECT_GE(b->hoarded_count(), 5u);  // held loans plus copied payloads
}

TEST(TenantPolicing, DisabledPolicyIsBitIdentical) {
  // The acceptance bar for default-off knobs: a fully configured policy
  // with enabled=false must leave every dump bit-identical to a module
  // that never heard of the policy.
  auto run = [](bool configure) {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/38);
    if (configure) {
      NetIoModule::TenantPolicy pol;
      pol.enabled = false;
      pol.ring_slot_quota = 4;
      pol.loan_budget = 2;
      pol.tx_rate_bps = 1000;
      pol.tx_burst_bytes = 512;
      pol.forgery_strike_limit = 1;
      bed.user_org_a()->netio(0).set_tenant_policy(pol);
      bed.user_org_b()->netio(0).set_tenant_policy(pol);
      bed.user_org_a()->netio(0).set_space_tx_rate(
          bed.user_app_a()->app_space(), 1000);
    }
    BulkTransfer bulk(bed, 256 * 1024, 4096, 5001, /*verify_data=*/true);
    const BulkTransfer::Result res = bulk.run();
    EXPECT_TRUE(res.ok && res.data_valid);
    return bed.world().metrics().dump_json() +
           bed.user_org_a()->netio(0).dump_json() +
           bed.user_org_b()->netio(0).dump_json();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Byzantine, PolicedForgerIsQuarantinedEndToEnd) {
  ByzantineScenarioConfig cfg;
  cfg.seed = 2;
  cfg.attacker = AdversaryKind::kForger;
  cfg.policing = true;
  cfg.bulk_bytes = 768 * 1024;
  const ByzantineReport rep = run_byzantine_scenario(cfg);
  EXPECT_TRUE(rep.invariants_ok()) << rep.failure();
  EXPECT_EQ(rep.forged_frames_on_wire, 0u);
  EXPECT_GE(rep.forgery_strikes,
            static_cast<std::uint64_t>(default_policy().forgery_strike_limit));
  EXPECT_GE(rep.tenant_quarantines, 1u);
  EXPECT_GE(rep.channels_quarantined, 1u);
  // The forger's own peer got the dead-client RST-on-behalf.
  EXPECT_TRUE(rep.attacker_peer_closed);
  EXPECT_EQ(rep.attacker_peer_close_reason, "reset by peer");
  EXPECT_EQ(rep.attacker_channels_left, 0u);
}

TEST(Byzantine, ReplayIsDeterministic) {
  ByzantineScenarioConfig cfg;
  cfg.seed = 5;
  cfg.attacker = AdversaryKind::kHoarder;
  cfg.policing = true;
  cfg.bulk_bytes = 512 * 1024;
  const ByzantineReport r1 = run_byzantine_scenario(cfg);
  const ByzantineReport r2 = run_byzantine_scenario(cfg);
  EXPECT_TRUE(r1.invariants_ok()) << r1.failure();
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.fault_census, r2.fault_census);
  cfg.seed = 6;
  const ByzantineReport r3 = run_byzantine_scenario(cfg);
  EXPECT_NE(r1.fingerprint, r3.fingerprint);
}

}  // namespace
}  // namespace ulnet::api
