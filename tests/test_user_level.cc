// Tests of the user-level organization's distinctive machinery: protection
// (capabilities + header templates), registry behaviour (port quarantine,
// crash inheritance + RST), BQI exchange on AN1, notification batching,
// demux modes, and connection passing between applications.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "api/testbed.h"
#include "api/workloads.h"
#include "core/user_level.h"
#include "support/json_lite.h"

namespace ulnet::api {
namespace {

using core::NetIoModule;
using core::UserLevelApp;

// Establish one connection between app_a and app_b; returns (client id,
// accepted id via out-param).
SocketId establish(Testbed& bed, SocketId* accepted,
                   std::uint16_t port = 6000) {
  auto cid = std::make_shared<SocketId>(kInvalidSocket);
  bed.app_b().run_app([&, port](sim::TaskCtx&) {
    bed.app_b().listen(port, [accepted](SocketId id) {
      *accepted = id;
      return SocketEvents{};
    });
  });
  bed.world().loop().schedule_in(20 * sim::kMs, [&, port, cid] {
    bed.app_a().run_app([&, port, cid](sim::TaskCtx&) {
      bed.app_a().connect(bed.ip_b(), port, SocketEvents{},
                          [cid](SocketId id) { *cid = id; });
    });
  });
  bed.world().run_for(2 * sim::kSec);
  return *cid;
}

TEST(UserLevelSecurity, ForgedCapabilityIsRejected) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  SocketId accepted = kInvalidSocket;
  SocketId cid = establish(bed, &accepted);
  ASSERT_NE(cid, kInvalidSocket);

  auto& netio = bed.user_org_a()->netio(0);
  auto* app = bed.user_app_a();
  const auto rejects_before = netio.counters().send_rejects;

  // A made-up capability must be refused even for channel 1.
  app->run_app([&, app](sim::TaskCtx& ctx) {
    buf::Bytes fake_ip(40, 0);
    EXPECT_FALSE(netio.channel_send(ctx, 1, /*cap=*/0xdeadbeef,
                                    app->app_space(), net::kEtherTypeIp,
                                    std::move(fake_ip)));
  });
  bed.world().run_for(100 * sim::kMs);
  EXPECT_GT(netio.counters().send_rejects, rejects_before);
}

TEST(UserLevelSecurity, WrongAddressSpaceCannotUseChannel) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  SocketId accepted = kInvalidSocket;
  SocketId cid = establish(bed, &accepted);
  ASSERT_NE(cid, kInvalidSocket);

  auto& netio = bed.user_org_a()->netio(0);
  auto* app = bed.user_app_a();
  // The channel created for app_a's connection is id 1 on this netio.
  const os::PortId cap = netio.channel_cap(1);
  ASSERT_NE(cap, os::kInvalidPort);

  // Another app on the same host presents the stolen (correct!) capability
  // value but from its own address space: the kernel rights check fails.
  auto& intruder = static_cast<UserLevelApp&>(bed.add_app_a("intruder"));
  const auto rejects_before = netio.counters().send_rejects;
  intruder.run_app([&](sim::TaskCtx& ctx) {
    buf::Bytes fake_ip(40, 0);
    EXPECT_FALSE(netio.channel_send(ctx, 1, cap, intruder.app_space(),
                                    net::kEtherTypeIp, std::move(fake_ip)));
  });
  bed.world().run_for(100 * sim::kMs);
  EXPECT_GT(netio.counters().send_rejects, rejects_before);
  (void)app;
}

TEST(UserLevelSecurity, TemplateBlocksImpersonation) {
  // The library owns a valid channel but tries to send a segment whose
  // source port impersonates another connection: the header template match
  // must refuse it.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  SocketId accepted = kInvalidSocket;
  SocketId cid = establish(bed, &accepted);
  ASSERT_NE(cid, kInvalidSocket);

  auto& netio = bed.user_org_a()->netio(0);
  auto* app = bed.user_app_a();
  const os::PortId cap = netio.channel_cap(1);
  const auto rejects_before = netio.counters().send_rejects;

  app->run_app([&, app](sim::TaskCtx& ctx) {
    // Build a real-looking TCP/IP datagram with a forged source port 7777.
    proto::Ipv4Header ih;
    ih.total_len = 40;
    ih.proto = proto::kProtoTcp;
    ih.src = bed.ip_a();
    ih.dst = bed.ip_b();
    buf::Bytes pkt;
    ih.serialize(pkt);
    proto::TcpHeader th;
    th.sport = 7777;  // not this channel's local port
    th.dport = 6000;
    th.flags.ack = true;
    th.serialize(pkt, ih.src, ih.dst, {});
    EXPECT_FALSE(netio.channel_send(ctx, 1, cap, app->app_space(),
                                    net::kEtherTypeIp, std::move(pkt)));
  });
  bed.world().run_for(100 * sim::kMs);
  EXPECT_EQ(netio.counters().send_rejects, rejects_before + 1);
}

TEST(UserLevelRegistry, CrashInheritanceResetsPeerAndQuarantinesPort) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  SocketId accepted = kInvalidSocket;
  bool peer_reset = false;
  std::string peer_reason;

  bed.app_b().run_app([&](sim::TaskCtx&) {
    bed.app_b().listen(6000, [&](SocketId id) {
      accepted = id;
      SocketEvents evs;
      evs.on_closed = [&](const std::string& r) {
        peer_reset = true;
        peer_reason = r;
      };
      return evs;
    });
  });
  auto cid = std::make_shared<SocketId>(kInvalidSocket);
  bed.world().loop().schedule_in(20 * sim::kMs, [&, cid] {
    bed.app_a().run_app([&, cid](sim::TaskCtx&) {
      bed.app_a().connect(bed.ip_b(), 6000, SocketEvents{},
                          [cid](SocketId id) { *cid = id; });
    });
  });
  bed.world().run_for(2 * sim::kSec);
  ASSERT_NE(*cid, kInvalidSocket);
  ASSERT_NE(accepted, kInvalidSocket);

  // The client application dies abnormally.
  auto* app = bed.user_app_a();
  std::uint16_t lport = 0;
  app->run_app([&, app](sim::TaskCtx& ctx) {
    // Capture the local port before the crash wipes the state.
    app->simulate_crash(ctx);
  });
  bed.world().run_for(5 * sim::kSec);

  EXPECT_TRUE(peer_reset);
  EXPECT_EQ(peer_reason, "reset by peer");
  (void)lport;
}

TEST(UserLevelRegistry, PortQuarantinedAfterRelease) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  auto& reg = bed.user_org_a()->registry();
  SocketId accepted = kInvalidSocket;
  SocketId cid = establish(bed, &accepted);
  ASSERT_NE(cid, kInvalidSocket);

  auto* app = bed.user_app_a();
  // Close + release; the registry should quarantine the ephemeral port.
  app->run_app([&, app](sim::TaskCtx&) { app->close(cid); });
  bed.world().run_for(15 * sim::kSec);  // ride out TIME_WAIT
  app->run_app([&, app](sim::TaskCtx&) { app->release(cid); });
  bed.world().run_for(sim::kSec);
  // Port 30000 is the registry's first ephemeral allocation.
  EXPECT_TRUE(reg.port_quarantined(30000));
  bed.world().run_for(15 * sim::kSec);  // 2*MSL quarantine expires
  EXPECT_FALSE(reg.port_quarantined(30000));
}

TEST(UserLevelAn1, BqiExchangedAndUsedForDataPath) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1);
  BulkTransfer bulk(bed, 64 * 1024, 4096, 6001, true);
  auto r = bulk.run();
  ASSERT_TRUE(r.ok) << r.error;
  // The hardware demultiplexed the data packets into non-kernel rings.
  EXPECT_GT(bed.world().metrics().demux_hardware_runs, 40u);
  // Data-path packets never fell back to the registry.
  const auto& na = bed.user_org_a()->netio(0).counters();
  const auto& nb = bed.user_org_b()->netio(0).counters();
  // Default (registry) deliveries are handshake-only: a handful.
  EXPECT_LT(na.default_deliveries + nb.default_deliveries, 12u);
  EXPECT_GT(nb.delivered, 16u);  // data flowed through the channel ring
}

TEST(UserLevelBatching, SignalsAreSuppressedUnderLoad) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1);
  BulkTransfer bulk(bed, 256 * 1024, 4096, 6001);
  auto r = bulk.run();
  ASSERT_TRUE(r.ok);
  const auto& nb = bed.user_org_b()->netio(0).counters();
  // The paper: "batch multiple network packets per semaphore notification
  // in order to amortize the cost of signaling."
  EXPECT_GT(nb.signals_suppressed, nb.delivered / 4);
}

TEST(UserLevelDemux, ModesAllDeliverOnEthernet) {
  for (auto mode : {NetIoModule::DemuxMode::kSynthesized,
                    NetIoModule::DemuxMode::kBpf,
                    NetIoModule::DemuxMode::kCspf}) {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
    bed.user_org_a()->netio(0).set_demux_mode(mode);
    bed.user_org_b()->netio(0).set_demux_mode(mode);
    BulkTransfer bulk(bed, 64 * 1024, 4096, 6001, true);
    auto r = bulk.run();
    EXPECT_TRUE(r.ok) << static_cast<int>(mode);
    EXPECT_TRUE(r.data_valid);
  }
}

TEST(UserLevelDemux, InterpretedModesAreSlower) {
  auto tput = [](NetIoModule::DemuxMode mode) {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
    bed.user_org_a()->netio(0).set_demux_mode(mode);
    bed.user_org_b()->netio(0).set_demux_mode(mode);
    BulkTransfer bulk(bed, 256 * 1024, 4096, 6001);
    return bulk.run().throughput_mbps();
  };
  const double synth = tput(NetIoModule::DemuxMode::kSynthesized);
  const double cspf = tput(NetIoModule::DemuxMode::kCspf);
  EXPECT_GT(synth, 0);
  EXPECT_GT(cspf, 0);
  // "Slow packet demultiplexing tends to confine user-level protocol
  // implementations to debugging and development."
  EXPECT_GT(synth, cspf);
}

TEST(UserLevelHandoff, PassConnectionToAnotherApp) {
  // The inetd pattern: appA accepts a connection, then passes it to a
  // worker app on the same host without involving the registry.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  auto& worker = static_cast<UserLevelApp&>(bed.add_app_a("worker"));

  SocketId accepted = kInvalidSocket;
  SocketId cid = establish(bed, &accepted, 6000);
  ASSERT_NE(cid, kInvalidSocket);
  ASSERT_NE(accepted, kInvalidSocket);

  // Move the client-side socket from appA to the worker.
  auto* app_a = bed.user_app_a();
  buf::Bytes got;
  SocketId wid = kInvalidSocket;
  app_a->run_app([&](sim::TaskCtx&) {
    SocketEvents evs;
    evs.on_readable = [&](std::size_t) {
      auto d = worker.recv(wid, std::numeric_limits<std::size_t>::max());
      got.insert(got.end(), d.begin(), d.end());
    };
    wid = app_a->pass_connection(cid, worker, std::move(evs));
  });
  bed.world().run_for(200 * sim::kMs);
  ASSERT_NE(wid, kInvalidSocket);

  // The peer sends data; it must arrive at the worker.
  bed.app_b().run_app([&](sim::TaskCtx&) {
    bed.app_b().send(accepted, payload_bytes(0, 2000));
  });
  bed.world().run_for(2 * sim::kSec);
  EXPECT_EQ(got, payload_bytes(0, 2000));

  // And the worker can transmit on the moved channel.
  worker.run_app([&](sim::TaskCtx&) { worker.send(wid, payload_bytes(7, 500)); });
  bed.world().run_for(2 * sim::kSec);
  EXPECT_EQ(bed.user_org_a()->netio(0).counters().send_rejects, 0u);
}

TEST(UserLevelRaw, RawChannelRoundTrip) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  const net::MacAddr mac_a = bed.host_a().interfaces()[0].nic->mac();
  const net::MacAddr mac_b = bed.host_b().interfaces()[0].nic->mac();

  int got_b = 0;
  b->run_app([&](sim::TaskCtx& ctx) {
    b->open_raw(ctx, 0, net::kEtherTypeRaw, mac_a,
                [&](sim::TaskCtx&, buf::Bytes data) {
                  EXPECT_EQ(data.size(), 300u);
                  got_b++;
                },
                [](core::RawChannel) {});
  });
  auto chan = std::make_shared<core::RawChannel>();
  a->run_app([&, chan](sim::TaskCtx& ctx) {
    a->open_raw(ctx, 0, net::kEtherTypeRaw, mac_b,
                [](sim::TaskCtx&, buf::Bytes) {},
                [&, chan](core::RawChannel rc) {
                  *chan = rc;
                  a->run_app([chan](sim::TaskCtx& tctx) {
                    for (int i = 0; i < 5; ++i) {
                      chan->send(tctx, buf::Bytes(300, 0x5a));
                    }
                  });
                });
  });
  bed.world().run_for(3 * sim::kSec);
  EXPECT_EQ(got_b, 5);
}

TEST(UserLevelConcurrency, ManySimultaneousConnectionsAcrossApps) {
  // Two applications per host, three connections each, all streaming at
  // once: per-connection channels must demultiplex cleanly and every byte
  // stream must stay intact.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  auto& a2 = bed.add_app_a("appA2");
  auto& b2 = bed.add_app_b("appB2");

  struct Stream {
    NetSystem* client;
    NetSystem* server;
    std::uint16_t port;
    std::size_t total;
    std::size_t received = 0;
    bool valid = true;
    SocketId ssock = kInvalidSocket;
    SocketId csock = kInvalidSocket;
    std::size_t sent = 0;
  };
  std::vector<Stream> streams = {
      {&bed.app_a(), &bed.app_b(), 7001, 48 * 1024},
      {&a2, &bed.app_b(), 7002, 32 * 1024},
      {&bed.app_a(), &b2, 7003, 24 * 1024},
  };

  for (auto& s : streams) {
    s.server->run_app([&s](sim::TaskCtx&) {
      s.server->listen(s.port, [&s](SocketId id) {
        s.ssock = id;
        SocketEvents evs;
        evs.on_readable = [&s](std::size_t) {
          auto d = s.server->recv(s.ssock,
                                  std::numeric_limits<std::size_t>::max());
          for (std::size_t i = 0; i < d.size(); ++i) {
            if (d[i] != payload_byte(s.received + i)) s.valid = false;
          }
          s.received += d.size();
        };
        return evs;
      });
    });
  }
  bed.world().loop().schedule_in(30 * sim::kMs, [&] {
    for (auto& s : streams) {
      s.client->run_app([&s, &bed](sim::TaskCtx&) {
        SocketEvents evs;
        auto pump = [&s] {
          while (s.sent < s.total) {
            const std::size_t n =
                std::min<std::size_t>(4096, s.total - s.sent);
            const std::size_t took =
                s.client->send(s.csock, payload_bytes(s.sent, n));
            s.sent += took;
            if (took < n) return;
          }
        };
        evs.on_established = [&s, pump] {
          s.client->run_app([pump](sim::TaskCtx&) { pump(); });
        };
        evs.on_writable = [&s, pump] {
          s.client->run_app([pump](sim::TaskCtx&) { pump(); });
        };
        s.client->connect(bed.ip_b(), s.port, std::move(evs),
                          [&s](SocketId id) { s.csock = id; });
      });
    }
  });
  bed.world().run_until(120 * sim::kSec);
  for (auto& s : streams) {
    EXPECT_EQ(s.received, s.total) << "port " << s.port;
    EXPECT_TRUE(s.valid) << "port " << s.port;
  }
}

TEST(UserLevelMultiProtocol, TcpAndRrpLibrariesCoexist) {
  // The title claim, plural: the same application links a byte-stream
  // library (TCP, per-connection channels) and a transaction library (RRP,
  // one connectionless wildcard channel) and runs both at once.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet);
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  const net::MacAddr mac_a = bed.host_a().interfaces()[0].nic->mac();
  const net::MacAddr mac_b = bed.host_b().interfaces()[0].nic->mac();

  // RRP: server in app B's library, client in app A's library.
  b->run_app([&](sim::TaskCtx& ctx) {
    b->seed_arp(bed.ip_a(), mac_a);
    b->enable_rrp(ctx, 0, [&] {
      b->library_stack().rrp().serve(
          77, [](net::Ipv4Addr, buf::ByteView req) {
            return buf::Bytes(req.begin(), req.end());
          });
    });
  });
  int rpcs_done = 0;
  a->run_app([&](sim::TaskCtx& ctx) {
    a->seed_arp(bed.ip_b(), mac_b);
    a->enable_rrp(ctx, 0, [] {});
  });

  // TCP bulk transfer runs concurrently through the same netio module.
  BulkTransfer bulk(bed, 128 * 1024, 4096, 6002, /*verify=*/true);
  bulk.start();

  // Issue RPCs spread across the transfer.
  for (int i = 0; i < 8; ++i) {
    bed.world().loop().schedule_in((300 + i * 150) * sim::kMs, [&, i] {
      a->run_app([&, i](sim::TaskCtx&) {
        a->library_stack().rrp().request(
            bed.ip_b(), 77, buf::Bytes(64, static_cast<std::uint8_t>(i)),
            [&](std::optional<buf::Bytes> r) {
              if (r && r->size() == 64) rpcs_done++;
            });
      });
    });
  }

  bed.world().run_until(120 * sim::kSec);
  EXPECT_TRUE(bulk.result().ok);
  EXPECT_TRUE(bulk.result().data_valid);
  EXPECT_EQ(rpcs_done, 8);
  // RRP data really used the wildcard channel, not the registry fallback.
  EXPECT_EQ(bed.user_org_a()->netio(0).counters().send_rejects, 0u);
}

TEST(UserLevelObservability, TraceExportsValidChromeJson) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/9);
  bed.world().tracer().set_enabled(true);

  BulkTransfer bulk(bed, 96 * 1024, 2048);
  ASSERT_TRUE(bulk.run().ok);

  auto& tracer = bed.world().tracer();
  ASSERT_GT(tracer.recorded_total(), 0u);

  // The full user-level data path shows up: packet tx/rx, demux matches,
  // template checks, semaphore signalling, timers, TCP transitions.
  std::set<std::string> names;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    names.insert(to_string(tracer.at(i).type));
  }
  for (const char* expected :
       {"packet.tx", "packet.rx", "demux.match", "template.check",
        "sem.signal", "timer.schedule", "timer.fire", "tcp.state"}) {
    EXPECT_TRUE(names.contains(expected)) << "no " << expected << " events";
  }

  // Round-trip through a file, as a user following docs/OBSERVABILITY.md
  // would, and check the export is one well-formed Chrome trace object.
  const std::string path = ::testing::TempDir() + "ulnet_trace.json";
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = ulnet::testing::json_parse(ss.str());
  ASSERT_TRUE(doc.has_value()) << "trace file is not valid JSON";
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), tracer.size());
  for (const auto& e : events->array) {
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
  }

  // The per-channel stats agree with the module counters, and the module
  // dump is itself valid JSON.
  auto& netio = bed.user_org_b()->netio(0);
  const auto netio_doc = ulnet::testing::json_parse(netio.dump_json());
  ASSERT_TRUE(netio_doc.has_value()) << netio.dump_json();
  ASSERT_NE(netio_doc->find("channels"), nullptr);
  ASSERT_NE(netio_doc->find("totals"), nullptr);
}

TEST(UserLevelObservability, DeterministicTraceAcrossRuns) {
  auto run = [] {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/11);
    bed.world().tracer().set_enabled(true);
    BulkTransfer bulk(bed, 32 * 1024, 2048);
    EXPECT_TRUE(bulk.run().ok);
    return bed.world().tracer().to_chrome_json();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ulnet::api
