// RRP (the VMTP-style request/response transport): transaction semantics,
// retransmission, at-most-once execution, and coexistence with TCP.
#include "proto/rrp.h"

#include <gtest/gtest.h>

#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet::proto {
namespace {

using ulnet::testing::StackHarness;
using ulnet::testing::TestChannel;

struct RrpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{5};
  StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0)};
  StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0)};
  TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
    // An echo-with-transform server on port 99.
    b.stack().rrp().serve(99, [](net::Ipv4Addr, buf::ByteView req) {
      buf::Bytes resp(req.begin(), req.end());
      for (auto& byte : resp) byte ^= 0xff;
      return resp;
    });
  }

  void run(sim::Time d = 10 * sim::kSec) { loop.run_until(loop.now() + d); }
};

TEST_F(RrpFixture, BasicTransaction) {
  std::optional<buf::Bytes> got;
  buf::Bytes req{1, 2, 3, 4};
  ASSERT_TRUE(a.stack().rrp().request(b.ip_addr(), 99, req,
                                      [&](std::optional<buf::Bytes> r) {
                                        got = std::move(r);
                                      }));
  run();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), 4u);
  EXPECT_EQ((*got)[0], 0xfe);
  EXPECT_EQ(b.stack().rrp().counters().handler_invocations, 1u);
  EXPECT_EQ(a.stack().rrp().transactions_in_flight(), 0u);
}

TEST_F(RrpFixture, NoConnectionSetupSingleRoundTrip) {
  // The whole transaction is one request + one response on the wire
  // (plus ARP once): that is the protocol's reason to exist.
  std::optional<buf::Bytes> got;
  int rrp_packets = 0;
  chan.tap = [&](std::uint16_t et, const buf::Bytes& p) {
    if (et != net::kEtherTypeIp) return;
    auto ih = Ipv4Header::parse(p);
    if (ih && ih->proto == kProtoRrp) rrp_packets++;
  };
  a.stack().rrp().request(b.ip_addr(), 99, buf::Bytes(64, 1),
                          [&](std::optional<buf::Bytes> r) { got = r; });
  run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(rrp_packets, 2);
}

TEST_F(RrpFixture, RetransmitsThroughLoss) {
  chan.loss_p = 0.4;
  int ok = 0, fail = 0;
  for (int i = 0; i < 20; ++i) {
    a.stack().rrp().request(b.ip_addr(), 99, buf::Bytes(32, 7),
                            [&](std::optional<buf::Bytes> r) {
                              r ? ok++ : fail++;
                            });
  }
  loop.run_until(120 * sim::kSec);
  EXPECT_EQ(ok + fail, 20);
  EXPECT_GE(ok, 18);  // exponential retry beats 40% loss
  EXPECT_GT(a.stack().rrp().counters().retransmits, 0u);
}

TEST_F(RrpFixture, AtMostOnceExecutionUnderDuplication) {
  chan.dup_p = 0.8;  // network duplicates most packets
  int responses = 0;
  for (int i = 0; i < 10; ++i) {
    a.stack().rrp().request(b.ip_addr(), 99, buf::Bytes(16, 3),
                            [&](std::optional<buf::Bytes> r) {
                              if (r) responses++;
                            });
  }
  loop.run_until(60 * sim::kSec);
  EXPECT_EQ(responses, 10);
  // Every transaction executed exactly once despite duplicate requests.
  EXPECT_EQ(b.stack().rrp().counters().handler_invocations, 10u);
}

TEST_F(RrpFixture, CachedResponseReplayedForRetransmittedRequest) {
  // Lose only the response direction first, so the request arrives, the
  // handler runs, the response dies, and the client retransmits.
  int handler_runs = 0;
  b.stack().rrp().serve(100, [&](net::Ipv4Addr, buf::ByteView) {
    handler_runs++;
    return buf::Bytes{42};
  });
  chan.loss_p = 0.5;
  std::optional<buf::Bytes> got;
  a.stack().rrp().request(b.ip_addr(), 100, buf::Bytes(8, 1),
                          [&](std::optional<buf::Bytes> r) { got = r; });
  loop.run_until(120 * sim::kSec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(handler_runs, 1);
  EXPECT_LE(b.stack().rrp().counters().duplicate_requests + 1u,
            1u + a.stack().rrp().counters().retransmits);
}

TEST_F(RrpFixture, TimesOutWhenServerSilent) {
  std::optional<std::optional<buf::Bytes>> result;
  // Port 55 has no server; VMTP-style silence -> client retry -> timeout.
  a.stack().rrp().request(b.ip_addr(), 55, buf::Bytes(8, 1),
                          [&](std::optional<buf::Bytes> r) { result = r; });
  loop.run_until(120 * sim::kSec);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(a.stack().rrp().counters().timeouts, 1u);
  EXPECT_GT(b.stack().rrp().counters().no_server, 0u);
}

TEST_F(RrpFixture, LargeMessagesRideIpFragmentation) {
  buf::Bytes req(20000);
  for (std::size_t i = 0; i < req.size(); ++i) {
    req[i] = static_cast<std::uint8_t>(i % 251);
  }
  std::optional<buf::Bytes> got;
  ASSERT_TRUE(a.stack().rrp().request(
      b.ip_addr(), 99, req,
      [&](std::optional<buf::Bytes> r) { got = std::move(r); }));
  run(30 * sim::kSec);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), req.size());
  for (std::size_t i = 0; i < req.size(); ++i) {
    ASSERT_EQ((*got)[i], static_cast<std::uint8_t>(req[i] ^ 0xff));
  }
  EXPECT_GT(a.stack().ip().counters().fragments_sent, 10u);
}

TEST_F(RrpFixture, OversizedMessageRefused) {
  EXPECT_FALSE(a.stack().rrp().request(b.ip_addr(), 99,
                                       buf::Bytes(61 * 1024, 0),
                                       [](std::optional<buf::Bytes>) {}));
}

TEST_F(RrpFixture, UnroutableDestinationRefused) {
  EXPECT_FALSE(a.stack().rrp().request(net::Ipv4Addr::parse("192.168.7.7"),
                                       99, buf::Bytes(8, 0),
                                       [](std::optional<buf::Bytes>) {}));
}

TEST_F(RrpFixture, ConcurrentTransactionsKeepIdentity) {
  // 50 outstanding transactions with distinct payloads; each response must
  // match its own request.
  int correct = 0;
  for (int i = 0; i < 50; ++i) {
    buf::Bytes req(8, static_cast<std::uint8_t>(i));
    a.stack().rrp().request(
        b.ip_addr(), 99, req, [&, i](std::optional<buf::Bytes> r) {
          if (r && r->size() == 8 &&
              (*r)[0] == static_cast<std::uint8_t>(i ^ 0xff)) {
            correct++;
          }
        });
  }
  run(30 * sim::kSec);
  EXPECT_EQ(correct, 50);
}

TEST_F(RrpFixture, CorruptedRequestDroppedByChecksum) {
  chan.corrupt_p = 1.0;
  std::optional<std::optional<buf::Bytes>> result;
  a.stack().rrp().request(b.ip_addr(), 99, buf::Bytes(100, 9),
                          [&](std::optional<buf::Bytes> r) { result = r; });
  loop.run_until(120 * sim::kSec);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());  // everything corrupted: timeout
  EXPECT_GT(a.stack().rrp().counters().bad_checksum +
                b.stack().rrp().counters().bad_checksum +
                a.stack().ip().counters().bad_checksum +
                b.stack().ip().counters().bad_checksum,
            0u);
}

TEST_F(RrpFixture, CoexistsWithTcpOnOneStack) {
  // The paper's multiplicity argument: a byte stream and a transaction
  // protocol share the same IP layer and wire without interference.
  ulnet::testing::RecordingObserver server;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  ulnet::testing::BulkSource source(64 * 1024, 4096);
  a.stack().tcp().connect(b.ip_addr(), 80, &source);

  int rpcs = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(loop.now() + (i + 1) * 100 * sim::kMs, [&] {
      a.stack().rrp().request(b.ip_addr(), 99, buf::Bytes(64, 5),
                              [&](std::optional<buf::Bytes> r) {
                                if (r) rpcs++;
                              });
    });
  }
  loop.run_until(120 * sim::kSec);
  EXPECT_EQ(server.received.size(), 64u * 1024);
  EXPECT_EQ(rpcs, 10);
}

}  // namespace
}  // namespace ulnet::proto
