// Chaos-fault tests: the trusted path (registry server + network I/O
// module) must survive anything an application library does -- die
// mid-transfer, stall until rings fill, lose wakeups, have its rings
// drained -- reclaim every resource, and keep unrelated connections
// delivering their exact byte streams. Scenarios are seeded and replayable;
// the last test pins the replay-identity property itself.
#include <gtest/gtest.h>

#include <memory>

#include "api/chaos.h"
#include "api/testbed.h"
#include "api/workloads.h"
#include "core/netio_module.h"
#include "core/user_level.h"
#include "hw/nic.h"

namespace ulnet::api {
namespace {

using core::NetIoModule;
using core::UserLevelApp;

TEST(Chaos, KillMidTransferReclaimsEverythingEthernet) {
  ChaosScenarioConfig cfg;
  cfg.seed = 3;
  cfg.link = LinkType::kEthernet;
  const ChaosReport rep = run_chaos_scenario(cfg);
  EXPECT_TRUE(rep.invariants_ok()) << rep.failure();
  EXPECT_EQ(rep.victim_channels_left, 0u);
  EXPECT_GE(rep.channels_reclaimed, 1u);
  EXPECT_GE(rep.rsts_sent, 1u);
}

TEST(Chaos, KillMidTransferReclaimsEverythingAn1) {
  ChaosScenarioConfig cfg;
  cfg.seed = 4;
  cfg.link = LinkType::kAn1;
  const ChaosReport rep = run_chaos_scenario(cfg);
  EXPECT_TRUE(rep.invariants_ok()) << rep.failure();
  // On AN1 every live channel owns exactly one BQI ring; a dead library's
  // rings must have been freed by the registry sweep.
  EXPECT_EQ(rep.bqis_a, static_cast<int>(rep.live_channels_a));
  EXPECT_EQ(rep.bqis_b, static_cast<int>(rep.live_channels_b));
}

TEST(Chaos, ReplayIsDeterministic) {
  ChaosScenarioConfig cfg;
  cfg.seed = 5;
  const ChaosReport r1 = run_chaos_scenario(cfg);
  const ChaosReport r2 = run_chaos_scenario(cfg);
  EXPECT_TRUE(r1.invariants_ok()) << r1.failure();
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.fault_census, r2.fault_census);
  // A different seed shifts the schedule and must produce a different run.
  cfg.seed = 6;
  const ChaosReport r3 = run_chaos_scenario(cfg);
  EXPECT_NE(r1.fingerprint, r3.fingerprint);
}

TEST(Chaos, StallFillsRingThenRecovers) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/11);
  bed.user_app_b()->set_repoll_interval(20 * sim::kMs);
  BulkTransfer bulk(bed, 768 * 1024, 4096, 5001, /*verify_data=*/true);
  bulk.start();

  // Freeze the receiving library mid-stream; packets pile into the shared
  // ring (overflow drops at the ring, not in the library). On resume the
  // drain plus TCP retransmission must still deliver every byte.
  bed.world().loop().schedule_in(300 * sim::kMs,
                                 [&] { bed.user_app_b()->stall(); });
  bed.world().loop().schedule_in(700 * sim::kMs,
                                 [&] { bed.user_app_b()->resume(); });
  bed.world().run_for(120 * sim::kSec);

  ASSERT_TRUE(bulk.finished());
  EXPECT_TRUE(bulk.result().ok);
  EXPECT_TRUE(bulk.result().data_valid);
}

TEST(Chaos, LostWakeupRecoveredByRepoll) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/12);
  bed.user_app_b()->set_repoll_interval(20 * sim::kMs);
  BulkTransfer bulk(bed, 512 * 1024, 4096, 5001, /*verify_data=*/true);
  bulk.start();

  bed.world().loop().schedule_in(200 * sim::kMs,
                                 [&] { bed.user_app_b()->drop_next_wakeup(); });
  bed.world().run_for(120 * sim::kSec);

  ASSERT_TRUE(bulk.finished());
  EXPECT_TRUE(bulk.result().ok);
  EXPECT_TRUE(bulk.result().data_valid);
  EXPECT_GE(bed.world().metrics().wakeups_dropped, 1u);
  EXPECT_GE(bed.user_app_b()->repolls(), 1u);
}

TEST(Chaos, TxBackpressureRetriesRecover) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/13);
  BulkTransfer bulk(bed, 512 * 1024, 4096, 5001, /*verify_data=*/true);
  bulk.start();

  NetIoModule& netio = bed.user_org_a()->netio(0);
  bed.world().loop().schedule_in(200 * sim::kMs,
                                 [&] { netio.inject_tx_backpressure(6); });
  bed.world().run_for(120 * sim::kSec);

  ASSERT_TRUE(bulk.finished());
  EXPECT_TRUE(bulk.result().ok);
  EXPECT_TRUE(bulk.result().data_valid);
  // Every rejected send was observed and retried, not silently dropped.
  EXPECT_GE(netio.counters().tx_backpressure, 6u);
  EXPECT_GE(bed.user_app_a()->tx_retries(), 1u);
  EXPECT_EQ(bed.user_app_a()->tx_drops(), 0u);
}

TEST(Chaos, RingExhaustRecoversOnAn1) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1, /*seed=*/14);
  bed.user_app_b()->set_repoll_interval(20 * sim::kMs);
  BulkTransfer bulk(bed, 512 * 1024, 4096, 5001, /*verify_data=*/true);
  bulk.start();

  // Drain the victim's posted BQI buffers: with zero buffers posted every
  // arrival drops at the NIC and nothing ever reposts from the drain path
  // -- only the repoll safety net can replenish and unwedge the flow.
  bed.world().loop().schedule_in(300 * sim::kMs,
                                 [&] { bed.user_app_b()->exhaust_rings(); });
  bed.world().run_for(300 * sim::kSec);

  ASSERT_TRUE(bulk.finished());
  EXPECT_TRUE(bulk.result().ok);
  EXPECT_TRUE(bulk.result().data_valid);
  EXPECT_GE(bed.user_app_b()->repolls(), 1u);
}

TEST(Chaos, NoBqiLeakAfterRepeatedCrashes) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1, /*seed=*/15);
  NetIoModule& na = bed.user_org_a()->netio(0);
  auto& an1_a = static_cast<hw::An1Nic&>(na.nic());
  auto& an1_b =
      static_cast<hw::An1Nic&>(bed.user_org_b()->netio(0).nic());

  // One long-lived server on host B; its sockets release on reset so the
  // B side returns to baseline after every crash.
  auto& server = static_cast<UserLevelApp&>(bed.add_app_b("server"));
  server.run_app([&server](sim::TaskCtx&) {
    server.listen(7000, [&server](SocketId id) {
      SocketEvents evs;
      evs.on_closed = [&server, id](const std::string&) {
        server.run_app([&server, id](sim::TaskCtx&) { server.release(id); });
      };
      return evs;
    });
  });
  bed.world().run_for(100 * sim::kMs);

  const std::size_t base_channels = na.live_channels();
  const int base_bqis = an1_a.bqis_in_use();

  for (int round = 0; round < 3; ++round) {
    auto& victim = static_cast<UserLevelApp&>(
        bed.add_app_a("victim" + std::to_string(round)));
    auto sock = std::make_shared<SocketId>(kInvalidSocket);
    victim.run_app([&victim, &bed, sock](sim::TaskCtx&) {
      SocketEvents evs;
      evs.on_established = [&victim, sock] {
        victim.run_app([&victim, sock](sim::TaskCtx&) {
          victim.send(*sock, payload_bytes(0, 4096));
        });
      };
      victim.connect(bed.ip_b(), 7000, std::move(evs),
                     [sock](SocketId id) { *sock = id; });
    });
    bed.world().run_for(500 * sim::kMs);
    ASSERT_NE(*sock, kInvalidSocket) << "round " << round;

    victim.run_app([&victim](sim::TaskCtx& ctx) { victim.kill(ctx); });
    bed.world().run_for(2 * sim::kSec);

    EXPECT_TRUE(na.channels_of_space(victim.app_space()).empty())
        << "round " << round;
  }

  // After three crash/reclaim cycles both hosts are back at baseline:
  // no leaked channels, no leaked hardware rings.
  EXPECT_EQ(na.live_channels(), base_channels);
  EXPECT_EQ(an1_a.bqis_in_use(), base_bqis);
  EXPECT_EQ(an1_b.bqis_in_use(),
            static_cast<int>(bed.user_org_b()->netio(0).live_channels()));
  const auto& stats = bed.user_org_a()->registry().reclaim_stats();
  EXPECT_EQ(stats.clients, 3u);
  EXPECT_GE(stats.channels, 3u);
  EXPECT_GE(stats.rsts_sent, 3u);
}

TEST(Chaos, DestroyChannelRecyclesRingContents) {
  // Unit-level reclamation: destroying a channel whose ring still holds
  // undrained packets must return every buffer to the pool.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/16);
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  NetIoModule& nb = bed.user_org_b()->netio(0);

  auto sock = std::make_shared<SocketId>(kInvalidSocket);
  b->run_app([b](sim::TaskCtx&) {
    b->listen(6000, [](SocketId) { return SocketEvents{}; });
  });
  bed.world().loop().schedule_in(20 * sim::kMs, [&bed, a, sock] {
    a->run_app([&bed, a, sock](sim::TaskCtx&) {
      a->connect(bed.ip_b(), 6000, SocketEvents{},
                 [sock](SocketId id) { *sock = id; });
    });
  });
  bed.world().run_for(1 * sim::kSec);
  ASSERT_NE(*sock, kInvalidSocket);

  // Freeze b's library, then pump data at it so segments sit in the ring.
  b->stall();
  a->run_app([a, sock](sim::TaskCtx&) {
    a->send(*sock, payload_bytes(0, 16 * 1024));
  });
  bed.world().run_for(1 * sim::kSec);

  const auto chans = nb.channels_of_space(b->app_space());
  ASSERT_FALSE(chans.empty());
  const std::size_t depth = nb.channel_ring_depth(chans[0]);
  ASSERT_GT(depth, 0u);

  const auto before = nb.counters().buffers_reclaimed;
  const std::size_t live_before = nb.live_channels();
  b->run_app([&nb, &chans](sim::TaskCtx& ctx) {
    nb.destroy_channel(ctx, chans[0], /*reclaimed=*/true);
  });
  bed.world().run_for(10 * sim::kMs);

  EXPECT_EQ(nb.counters().buffers_reclaimed, before + depth);
  EXPECT_EQ(nb.live_channels(), live_before - 1);
}

}  // namespace
}  // namespace ulnet::api
