#include "proto/tcp.h"

#include <gtest/gtest.h>

#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet::proto {
namespace {

using ulnet::testing::BulkSource;
using ulnet::testing::pattern_bytes;
using ulnet::testing::RecordingObserver;
using ulnet::testing::StackHarness;
using ulnet::testing::TestChannel;

struct TcpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{11};
  StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0)};
  StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0)};
  TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
  }

  void run(sim::Time d = 5 * sim::kSec) { loop.run_until(loop.now() + d); }
};

TEST_F(TcpFixture, ThreeWayHandshakeEstablishes) {
  RecordingObserver server;
  RecordingObserver client;
  ASSERT_TRUE(b.stack().tcp().listen(80, &server));
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), TcpState::kSynSent);
  run();
  EXPECT_EQ(c->state(), TcpState::kEstablished);
  EXPECT_EQ(client.established, 1);
  EXPECT_EQ(server.accepted, 1);
  ASSERT_NE(server.accepted_conn, nullptr);
  EXPECT_EQ(server.accepted_conn->state(), TcpState::kEstablished);
  EXPECT_EQ(server.accepted_conn->remote_port(), c->local_port());
}

TEST_F(TcpFixture, ConnectionRefusedWithoutListener) {
  RecordingObserver client;
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 81, &client);
  ASSERT_NE(c, nullptr);
  run();
  EXPECT_EQ(client.closed, 1);
  EXPECT_EQ(client.close_reason, "connection refused");
  EXPECT_GE(b.stack().tcp().counters().rst_sent, 1u);
}

TEST_F(TcpFixture, ConnectToUnroutableAddressFails) {
  RecordingObserver client;
  EXPECT_EQ(a.stack().tcp().connect(net::Ipv4Addr::parse("192.168.1.1"), 80,
                                    &client),
            nullptr);
}

TEST_F(TcpFixture, MssNegotiatedToSmallerSide) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConfig small;
  small.mss = 512;
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, small);
  run();
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  EXPECT_EQ(c->effective_mss(), 512u);
  EXPECT_EQ(server.accepted_conn->effective_mss(), 512u);
}

TEST_F(TcpFixture, MssClampedByPathMtu) {
  RecordingObserver client;
  RecordingObserver server;
  b.stack().tcp().listen(80, &server);
  TcpConfig cfg;
  cfg.mss = 9000;  // way beyond the 1500 MTU
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, cfg);
  run();
  EXPECT_EQ(c->effective_mss(), 1500u - 40u);
}

TEST_F(TcpFixture, SmallDataRoundTrip) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  const buf::Bytes msg = pattern_bytes(0, 100);
  EXPECT_EQ(c->send(msg), 100u);
  run();
  EXPECT_EQ(server.received, msg);
  EXPECT_EQ(b.stack().tcp().counters().bytes_received, 100u);
}

TEST_F(TcpFixture, BulkTransferLargerThanWindows) {
  RecordingObserver server;
  b.stack().tcp().listen(80, &server);
  BulkSource source(200 * 1024, 4096);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &source);
  ASSERT_NE(c, nullptr);
  run(60 * sim::kSec);
  EXPECT_EQ(server.received.size(), 200u * 1024);
  EXPECT_EQ(server.received, pattern_bytes(0, 200 * 1024));
  EXPECT_EQ(a.stack().tcp().counters().retransmits, 0u);  // clean channel
}

TEST_F(TcpFixture, BidirectionalTransfer) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->send(pattern_bytes(0, 5000));
  run();
  ASSERT_NE(server.accepted_conn, nullptr);
  server.accepted_conn->send(pattern_bytes(1000, 7000));
  run();
  EXPECT_EQ(server.received, pattern_bytes(0, 5000));
  EXPECT_EQ(client.received, pattern_bytes(1000, 7000));
}

TEST_F(TcpFixture, SegmentPerWritePreservesBoundaries) {
  // With segment_per_write, a 512-byte user write travels as a 512-byte
  // segment even though the MSS is 1460 (the paper's "user packet size").
  std::vector<std::size_t> tcp_payload_sizes;
  chan.tap = [&](std::uint16_t et, const buf::Bytes& p) {
    if (et != net::kEtherTypeIp) return;
    auto ih = Ipv4Header::parse(p);
    if (!ih || ih->proto != kProtoTcp) return;
    buf::ByteView seg(p.data() + Ipv4Header::kSize, ih->payload_len());
    std::size_t hlen = 0;
    auto th = TcpHeader::parse(seg, ih->src, ih->dst, nullptr, &hlen);
    if (th && seg.size() > hlen) tcp_payload_sizes.push_back(seg.size() - hlen);
  };
  RecordingObserver server;
  RecordingObserver client;
  TcpConfig cfg;
  cfg.segment_per_write = true;
  b.stack().tcp().listen(80, &server, cfg);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, cfg);
  run();
  for (int i = 0; i < 4; ++i) {
    c->send(pattern_bytes(static_cast<std::size_t>(i) * 512, 512));
    run(sim::kSec);
  }
  EXPECT_EQ(server.received.size(), 4u * 512);
  ASSERT_GE(tcp_payload_sizes.size(), 4u);
  for (std::size_t s : tcp_payload_sizes) EXPECT_EQ(s, 512u);
}

TEST_F(TcpFixture, OrderlyCloseWalksStates) {
  RecordingObserver server;
  RecordingObserver client;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->send(pattern_bytes(0, 10));
  run();
  c->close();
  run();
  // Client actively closed: should pass through TIME_WAIT.
  EXPECT_TRUE(c->state() == TcpState::kTimeWait ||
              c->state() == TcpState::kClosed)
      << to_string(c->state());
  EXPECT_EQ(server.accepted_conn->state(), TcpState::kClosed);
  EXPECT_EQ(server.fins, 1);
  run(30 * sim::kSec);  // let 2MSL expire
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(client.closed, 1);
  EXPECT_TRUE(client.close_reason.empty());
}

TEST_F(TcpFixture, SendAfterCloseRefused) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->close();
  EXPECT_EQ(c->send(pattern_bytes(0, 10)), 0u);
}

TEST_F(TcpFixture, AbortSendsRstAndPeerSeesReset) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->abort();
  EXPECT_EQ(c->state(), TcpState::kClosed);
  run();
  EXPECT_EQ(server.accepted_conn->state(), TcpState::kClosed);
  EXPECT_EQ(server.close_reason, "reset by peer");
}

TEST_F(TcpFixture, DataAfterFinStillDeliveredBeforeEof) {
  // Sender queues data then closes: FIN must not outrun the data.
  RecordingObserver server;
  BulkSource source(50000, 1000, /*close_when_done=*/true);
  b.stack().tcp().listen(80, &server);
  a.stack().tcp().connect(b.ip_addr(), 80, &source);
  run(30 * sim::kSec);
  EXPECT_EQ(server.received.size(), 50000u);
  EXPECT_EQ(server.fins, 1);
  ASSERT_NE(server.accepted_conn, nullptr);
  EXPECT_TRUE(server.accepted_conn->eof());
}

TEST_F(TcpFixture, FlowControlBlocksWhenReceiverStopsReading) {
  RecordingObserver server;
  server.auto_read = false;  // receiver never drains
  b.stack().tcp().listen(80, &server);
  BulkSource source(500 * 1024, 4096, /*close_when_done=*/false);
  a.stack().tcp().connect(b.ip_addr(), 80, &source);
  run(20 * sim::kSec);
  // The transfer must stall near the receive-buffer size, not complete.
  ASSERT_NE(server.accepted_conn, nullptr);
  const std::size_t buffered = server.accepted_conn->bytes_available();
  EXPECT_LE(buffered, TcpConfig{}.recv_buf);
  EXPECT_GE(buffered, TcpConfig{}.recv_buf / 2);
  EXPECT_LT(source.sent, 500u * 1024);

  // Resume reading: the window reopens and the transfer completes.
  server.auto_read = true;
  auto chunk = server.accepted_conn->read(
      std::numeric_limits<std::size_t>::max());
  server.received.insert(server.received.end(), chunk.begin(), chunk.end());
  run(120 * sim::kSec);
  EXPECT_EQ(server.received.size(), 500u * 1024);
  EXPECT_EQ(server.received, pattern_bytes(0, 500 * 1024));
}

TEST_F(TcpFixture, EphemeralPortsUniqueAcrossConnections) {
  RecordingObserver server;
  RecordingObserver c1o, c2o;
  b.stack().tcp().listen(80, &server);
  auto* c1 = a.stack().tcp().connect(b.ip_addr(), 80, &c1o);
  auto* c2 = a.stack().tcp().connect(b.ip_addr(), 80, &c2o);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_NE(c1->local_port(), c2->local_port());
  run();
  EXPECT_EQ(c1->state(), TcpState::kEstablished);
  EXPECT_EQ(c2->state(), TcpState::kEstablished);
  EXPECT_EQ(b.stack().tcp().counters().conns_accepted, 2u);
}

TEST_F(TcpFixture, ListenerRefusesDuplicatePort) {
  RecordingObserver s1, s2;
  EXPECT_TRUE(b.stack().tcp().listen(80, &s1));
  EXPECT_FALSE(b.stack().tcp().listen(80, &s2));
  b.stack().tcp().close_listener(80);
  EXPECT_TRUE(b.stack().tcp().listen(80, &s2));
}

TEST_F(TcpFixture, ReleaseReclaimsConnections) {
  RecordingObserver server;
  RecordingObserver client;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->close();
  run(30 * sim::kSec);
  EXPECT_EQ(a.stack().tcp().connection_count(), 1u);
  a.stack().tcp().release(c);
  EXPECT_EQ(a.stack().tcp().connection_count(), 0u);
  b.stack().tcp().release(server.accepted_conn);
  EXPECT_EQ(b.stack().tcp().connection_count(), 0u);
}

TEST_F(TcpFixture, DelayedAckCoalescesAcks) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  const auto acks_before = b.stack().tcp().counters().pure_acks_sent;
  // One small write: the ACK should come from the delayed-ACK timer, and
  // exactly one.
  c->send(pattern_bytes(0, 100));
  run(2 * sim::kSec);
  const auto acks_after = b.stack().tcp().counters().pure_acks_sent;
  EXPECT_EQ(acks_after - acks_before, 1u);
  EXPECT_GE(b.stack().tcp().counters().delayed_acks, 1u);
}

TEST_F(TcpFixture, RttEstimateTracksChannelDelay) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  BulkSource src(100 * 1024, 2048, false);
  c->set_observer(&src);
  src.pump(*c);
  run(30 * sim::kSec);
  // Channel one-way delay is 1 ms; ACKs may be delayed by up to 200 ms.
  EXPECT_GE(c->srtt(), 2 * sim::kMs);
  EXPECT_LE(c->srtt(), 300 * sim::kMs);
  EXPECT_GE(c->rto(), TcpConfig{}.rto_min);
}

TEST_F(TcpFixture, SimultaneousOpenConverges) {
  RecordingObserver oa, ob;
  // Both sides connect to each other's fixed ports at once.
  TcpConnection* ca =
      a.stack().tcp().connect(b.ip_addr(), 7001, &oa, TcpConfig{}, 7000);
  TcpConnection* cb =
      b.stack().tcp().connect(a.ip_addr(), 7000, &ob, TcpConfig{}, 7001);
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  run(10 * sim::kSec);
  EXPECT_EQ(ca->state(), TcpState::kEstablished);
  EXPECT_EQ(cb->state(), TcpState::kEstablished);
}

}  // namespace
}  // namespace ulnet::proto
