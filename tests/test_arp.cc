#include "proto/arp.h"

#include <gtest/gtest.h>

#include "support/stack_harness.h"

namespace ulnet::proto {
namespace {

using testing_ns = ulnet::testing::StackHarness;

struct ArpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{1};
  ulnet::testing::StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                                 net::MacAddr::from_index(1, 0)};
  ulnet::testing::StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                                 net::MacAddr::from_index(2, 0)};
  ulnet::testing::TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
  }
};

TEST_F(ArpFixture, ResolvesPeerViaRequestReply) {
  std::optional<net::MacAddr> got;
  a.stack().arp().resolve(0, b.ip_addr(),
                          [&](std::optional<net::MacAddr> m) { got = m; });
  loop.run_until(2 * sim::kSec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, b.mac());
  EXPECT_EQ(a.stack().arp().requests_sent(), 1u);
  EXPECT_EQ(b.stack().arp().replies_sent(), 1u);
}

TEST_F(ArpFixture, CacheHitAvoidsSecondRequest) {
  int called = 0;
  a.stack().arp().resolve(0, b.ip_addr(),
                          [&](std::optional<net::MacAddr>) { called++; });
  loop.run_until(2 * sim::kSec);
  a.stack().arp().resolve(0, b.ip_addr(),
                          [&](std::optional<net::MacAddr>) { called++; });
  EXPECT_EQ(called, 2);
  EXPECT_EQ(a.stack().arp().requests_sent(), 1u);
}

TEST_F(ArpFixture, ReplyFillsResponderCacheToo) {
  a.stack().arp().resolve(0, b.ip_addr(), [](auto) {});
  loop.run_until(2 * sim::kSec);
  // b learnt a's mapping from the request itself.
  auto cached = b.stack().arp().lookup(a.ip_addr());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, a.mac());
}

TEST_F(ArpFixture, RetriesThenFailsForDeadAddress) {
  std::optional<std::optional<net::MacAddr>> result;
  a.stack().arp().resolve(
      0, net::Ipv4Addr::parse("10.0.0.99"),
      [&](std::optional<net::MacAddr> m) { result = m; });
  loop.run_until(10 * sim::kSec);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(a.stack().arp().requests_sent(), 3u);  // max_retries
  EXPECT_EQ(a.stack().arp().resolution_failures(), 1u);
}

TEST_F(ArpFixture, LossyChannelStillResolvesViaRetry) {
  chan.loss_p = 0.5;
  int resolved = 0;
  for (int i = 0; i < 5; ++i) {
    a.stack().arp().flush_cache();
    a.stack().arp().resolve(0, b.ip_addr(),
                            [&](std::optional<net::MacAddr> m) {
                              if (m) resolved++;
                            });
    loop.run_until(loop.now() + 10 * sim::kSec);
  }
  EXPECT_GE(resolved, 3);  // retries beat 50% loss most of the time
}

TEST_F(ArpFixture, MultipleWaitersShareOneRequest) {
  int called = 0;
  for (int i = 0; i < 4; ++i) {
    a.stack().arp().resolve(0, b.ip_addr(),
                            [&](std::optional<net::MacAddr>) { called++; });
  }
  loop.run_until(2 * sim::kSec);
  EXPECT_EQ(called, 4);
  EXPECT_EQ(a.stack().arp().requests_sent(), 1u);
}

TEST_F(ArpFixture, StaticEntryUsedImmediately) {
  a.stack().arp().add_entry(b.ip_addr(), b.mac());
  std::optional<net::MacAddr> got;
  a.stack().arp().resolve(0, b.ip_addr(),
                          [&](std::optional<net::MacAddr> m) { got = m; });
  // Synchronous: no events needed.
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, b.mac());
  EXPECT_EQ(a.stack().arp().requests_sent(), 0u);
}

}  // namespace
}  // namespace ulnet::proto
