#include "buf/bytes.h"

#include <gtest/gtest.h>

namespace ulnet::buf {
namespace {

TEST(Bytes, RoundTrip16) {
  Bytes b(4, 0);
  wr16(b, 1, 0xbeef);
  EXPECT_EQ(rd16(b, 1), 0xbeef);
  EXPECT_EQ(b[1], 0xbe);
  EXPECT_EQ(b[2], 0xef);
}

TEST(Bytes, RoundTrip32) {
  Bytes b(8, 0);
  wr32(b, 2, 0xdeadbeef);
  EXPECT_EQ(rd32(b, 2), 0xdeadbeefu);
  EXPECT_EQ(b[2], 0xde);
  EXPECT_EQ(b[5], 0xef);
}

TEST(Bytes, BigEndianOrder) {
  Bytes b;
  put16(b, 0x0102);
  put32(b, 0x03040506);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[5], 0x06);
}

TEST(Bytes, OutOfRangeReadThrows) {
  Bytes b(4, 0);
  // volatile offsets keep the optimizer from "proving" the OOB access and
  // warning about the very behaviour the test asserts is rejected.
  volatile std::size_t o3 = 3, o1 = 1, o4 = 4;
  EXPECT_THROW((void)rd16(b, o3), std::out_of_range);
  EXPECT_THROW((void)rd32(b, o1), std::out_of_range);
  EXPECT_THROW((void)rd8(b, o4), std::out_of_range);
}

TEST(Bytes, OutOfRangeWriteThrows) {
  Bytes b(4, 0);
  volatile std::size_t o1 = 1;
  EXPECT_THROW(wr32(b, o1, 0), std::out_of_range);
}

// Regression: `off + need > size` wraps for off near SIZE_MAX and used to
// wrongly pass the bounds check; the overflow-safe form must reject it.
TEST(Bytes, HugeOffsetDoesNotWrapBoundsCheck) {
  Bytes b(4, 0);
  volatile std::size_t huge = SIZE_MAX;
  EXPECT_THROW((void)rd16(b, huge), std::out_of_range);
  EXPECT_THROW((void)rd32(b, huge), std::out_of_range);
  EXPECT_THROW(wr16(b, huge, 0), std::out_of_range);
  volatile std::size_t near_max = SIZE_MAX - 1;
  EXPECT_THROW((void)rd32(b, near_max), std::out_of_range);
  EXPECT_THROW(check_bounds(SIZE_MAX, 2, 4, "test"), std::out_of_range);
  // need > size alone must also throw, even at offset 0.
  EXPECT_THROW(check_bounds(0, 5, 4, "test"), std::out_of_range);
  // Boundary cases that must still pass.
  EXPECT_NO_THROW(check_bounds(0, 4, 4, "test"));
  EXPECT_NO_THROW(check_bounds(2, 2, 4, "test"));
  EXPECT_NO_THROW(check_bounds(4, 0, 4, "test"));
}

TEST(Bytes, PutBytesAppends) {
  Bytes a{1, 2};
  Bytes b{3, 4, 5};
  put_bytes(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4, 5}));
}

TEST(Bytes, HexDumpFormat) {
  Bytes b{0x00, 0xff, 0x0a};
  EXPECT_EQ(hex_dump(b), "00 ff 0a ");
}

}  // namespace
}  // namespace ulnet::buf
