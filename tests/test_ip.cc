#include "proto/ip.h"

#include <gtest/gtest.h>

#include "support/stack_harness.h"

namespace ulnet::proto {
namespace {

struct IpFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{3};
  ulnet::testing::StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                                 net::MacAddr::from_index(1, 0)};
  ulnet::testing::StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                                 net::MacAddr::from_index(2, 0)};
  ulnet::testing::TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
  }

  // Register a raw capture of protocol 200 on b.
  std::vector<buf::Bytes> captured;
  void capture_proto200() {
    b.stack().ip().register_protocol(
        200, [this](const Ipv4Header&, buf::Bytes p, int) {
          captured.push_back(std::move(p));
        });
  }
};

TEST_F(IpFixture, DeliversSmallDatagram) {
  capture_proto200();
  buf::Bytes payload{1, 2, 3, 4};
  EXPECT_TRUE(a.stack().ip().send(net::Ipv4Addr{}, b.ip_addr(), 200, payload,
                                  nullptr));
  loop.run_until(sim::kSec);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], payload);
  EXPECT_EQ(b.stack().ip().counters().received, 1u);
}

TEST_F(IpFixture, RoutesOnlyConnectedSubnets) {
  EXPECT_FALSE(a.stack().ip().send(net::Ipv4Addr{},
                                   net::Ipv4Addr::parse("192.168.9.9"), 200,
                                   {}, nullptr));
  EXPECT_EQ(a.stack().ip().counters().no_route, 1u);
}

TEST_F(IpFixture, FragmentsAndReassemblesLargeDatagram) {
  capture_proto200();
  buf::Bytes payload(4000, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  EXPECT_TRUE(a.stack().ip().send(net::Ipv4Addr{}, b.ip_addr(), 200, payload,
                                  nullptr));
  loop.run_until(sim::kSec);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], payload);
  EXPECT_GE(a.stack().ip().counters().fragments_sent, 3u);
  EXPECT_EQ(b.stack().ip().counters().reassembled, 1u);
}

TEST_F(IpFixture, ReassemblyToleratesReordering) {
  capture_proto200();
  chan.jitter_max = 5 * sim::kMs;  // scrambles fragment arrival order
  buf::Bytes payload(6000, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  }
  EXPECT_TRUE(a.stack().ip().send(net::Ipv4Addr{}, b.ip_addr(), 200, payload,
                                  nullptr));
  loop.run_until(sim::kSec);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], payload);
}

TEST_F(IpFixture, ReassemblyTimesOutOnMissingFragment) {
  capture_proto200();
  // Hand b a single fragment directly; its siblings never arrive.
  Ipv4Header h;
  h.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + 100);
  h.ident = 999;
  h.proto = 200;
  h.more_fragments = true;
  h.src = a.ip_addr();
  h.dst = b.ip_addr();
  buf::Bytes frag;
  h.serialize(frag);
  frag.resize(frag.size() + 100, 1);
  b.stack().ip().input(0, frag);
  loop.run_until(60 * sim::kSec);
  EXPECT_TRUE(captured.empty());
  EXPECT_EQ(b.stack().ip().counters().reassembly_timeouts, 1u);
}

TEST_F(IpFixture, BadHeaderChecksumDropped) {
  capture_proto200();
  Ipv4Header h;
  h.total_len = Ipv4Header::kSize + 4;
  h.proto = 200;
  h.src = a.ip_addr();
  h.dst = b.ip_addr();
  buf::Bytes dg;
  h.serialize(dg);
  dg.resize(dg.size() + 4, 9);
  dg[8] ^= 0xff;  // corrupt TTL
  b.stack().ip().input(0, dg);
  loop.run_until(sim::kMs);
  EXPECT_TRUE(captured.empty());
  EXPECT_EQ(b.stack().ip().counters().bad_checksum, 1u);
}

TEST_F(IpFixture, DatagramForOtherHostDroppedNotForwarded) {
  // No gateway functions (paper Section 3.2).
  Ipv4Header h;
  h.total_len = Ipv4Header::kSize;
  h.proto = 200;
  h.src = a.ip_addr();
  h.dst = net::Ipv4Addr::parse("10.0.0.77");
  buf::Bytes dg;
  h.serialize(dg);
  b.stack().ip().input(0, dg);
  EXPECT_EQ(b.stack().ip().counters().not_for_us, 1u);
}

TEST_F(IpFixture, UnknownProtocolCounted) {
  Ipv4Header h;
  h.total_len = Ipv4Header::kSize;
  h.proto = 201;  // nothing registered
  h.src = a.ip_addr();
  h.dst = b.ip_addr();
  buf::Bytes dg;
  h.serialize(dg);
  b.stack().ip().input(0, dg);
  EXPECT_EQ(b.stack().ip().counters().no_protocol, 1u);
}

// ---------------------------------------------------------------------------
// ICMP over the IP substrate
// ---------------------------------------------------------------------------

TEST_F(IpFixture, PingRoundTrip) {
  bool got_reply = false;
  sim::Time rtt = 0;
  a.stack().icmp().ping(b.ip_addr(), 1, 56,
                        [&](net::Ipv4Addr peer, std::uint16_t seq,
                            sim::Time t, std::size_t len) {
                          got_reply = true;
                          rtt = t;
                          EXPECT_EQ(peer, b.ip_addr());
                          EXPECT_EQ(seq, 1);
                          EXPECT_EQ(len, 56u);
                        });
  loop.run_until(sim::kSec);
  EXPECT_TRUE(got_reply);
  EXPECT_GE(rtt, 2 * sim::kMs);  // two channel crossings
  EXPECT_EQ(b.stack().icmp().echoes_answered(), 1u);
}

TEST_F(IpFixture, PingLargePayloadExercisesFragmentation) {
  bool got_reply = false;
  a.stack().icmp().ping(b.ip_addr(), 2, 5000,
                        [&](net::Ipv4Addr, std::uint16_t, sim::Time,
                            std::size_t len) {
                          got_reply = true;
                          EXPECT_EQ(len, 5000u);
                        });
  loop.run_until(sim::kSec);
  EXPECT_TRUE(got_reply);
  EXPECT_GE(a.stack().ip().counters().fragments_sent, 4u);
  EXPECT_GE(b.stack().ip().counters().reassembled, 1u);
}

// ---------------------------------------------------------------------------
// UDP over the IP substrate
// ---------------------------------------------------------------------------

TEST_F(IpFixture, UdpDatagramDelivery) {
  std::vector<buf::Bytes> got;
  ASSERT_TRUE(b.stack().udp().bind(
      7777, [&](net::Ipv4Addr src, std::uint16_t sport, buf::Bytes data) {
        EXPECT_EQ(src, a.ip_addr());
        EXPECT_EQ(sport, 5555);
        got.push_back(std::move(data));
      }));
  buf::Bytes payload{10, 20, 30};
  EXPECT_TRUE(a.stack().udp().send(5555, b.ip_addr(), 7777, payload));
  loop.run_until(sim::kSec);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
}

TEST_F(IpFixture, UdpUnboundPortCounted) {
  a.stack().udp().send(5555, b.ip_addr(), 9999, buf::Bytes{1});
  loop.run_until(sim::kSec);
  EXPECT_EQ(b.stack().udp().counters().no_port, 1u);
}

TEST_F(IpFixture, UdpDoubleBindRefused) {
  EXPECT_TRUE(b.stack().udp().bind(42, [](auto, auto, auto) {}));
  EXPECT_FALSE(b.stack().udp().bind(42, [](auto, auto, auto) {}));
  b.stack().udp().unbind(42);
  EXPECT_TRUE(b.stack().udp().bind(42, [](auto, auto, auto) {}));
}

TEST_F(IpFixture, UdpCorruptionDroppedByChecksum) {
  chan.corrupt_p = 1.0;
  int got = 0;
  b.stack().udp().bind(7777,
                       [&](auto, auto, auto) { got++; });
  a.stack().arp().add_entry(b.ip_addr(), b.mac());
  b.stack().arp().add_entry(a.ip_addr(), a.mac());
  a.stack().udp().send(5555, b.ip_addr(), 7777, buf::Bytes(100, 0x42));
  loop.run_until(sim::kSec);
  EXPECT_EQ(got, 0);
  // Either the IP header or the UDP payload caught it.
  EXPECT_GE(b.stack().ip().counters().bad_checksum +
                b.stack().udp().counters().bad_checksum,
            1u);
}

TEST_F(IpFixture, UdpLargeDatagramFragmentsRoundTrip) {
  buf::Bytes payload(9000, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i % 251);
  }
  buf::Bytes got;
  b.stack().udp().bind(7, [&](auto, auto, buf::Bytes d) { got = std::move(d); });
  EXPECT_TRUE(a.stack().udp().send(8, b.ip_addr(), 7, payload));
  loop.run_until(sim::kSec);
  EXPECT_EQ(got, payload);
}

TEST_F(IpFixture, EphemeralPortsDoNotCollide) {
  auto p1 = a.stack().udp().alloc_ephemeral();
  a.stack().udp().bind(p1, [](auto, auto, auto) {});
  auto p2 = a.stack().udp().alloc_ephemeral();
  EXPECT_NE(p1, 0);
  EXPECT_NE(p2, 0);
  EXPECT_NE(p1, p2);
}

}  // namespace
}  // namespace ulnet::proto
