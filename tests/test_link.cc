#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"

namespace ulnet::net {
namespace {

class RecordingEndpoint : public LinkEndpoint {
 public:
  RecordingEndpoint(MacAddr mac, sim::EventLoop& loop)
      : mac_(mac), loop_(loop) {}
  void frame_arrived(Frame f) override {
    frames.push_back(std::move(f));
    arrival_times.push_back(loop_.now());
  }
  [[nodiscard]] MacAddr mac() const override { return mac_; }

  std::vector<Frame> frames;
  std::vector<sim::Time> arrival_times;

 private:
  MacAddr mac_;
  sim::EventLoop& loop_;
};

Frame make_frame(MacAddr dst, MacAddr src, std::size_t payload) {
  Frame f;
  EthHeader{dst, src, kEtherTypeRaw}.serialize(f.bytes);
  f.bytes.resize(EthHeader::kSize + payload, 0xab);
  return f;
}

struct LinkFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{1};
  net::Link link{loop, rng, LinkSpec::ethernet10()};
  MacAddr ma = MacAddr::from_index(1, 0);
  MacAddr mb = MacAddr::from_index(2, 0);
  RecordingEndpoint a{ma, loop};
  RecordingEndpoint b{mb, loop};

  void SetUp() override {
    link.attach(&a);
    link.attach(&b);
  }
};

TEST_F(LinkFixture, DeliversToAddressee) {
  link.transmit(&a, make_frame(mb, ma, 100));
  loop.run();
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(a.frames.empty());  // sender does not hear its own unicast
}

TEST_F(LinkFixture, DoesNotDeliverToThirdParty) {
  RecordingEndpoint c{MacAddr::from_index(3, 0), loop};
  link.attach(&c);
  link.transmit(&a, make_frame(mb, ma, 100));
  loop.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(c.frames.empty());
}

TEST_F(LinkFixture, BroadcastReachesAll) {
  RecordingEndpoint c{MacAddr::from_index(3, 0), loop};
  link.attach(&c);
  link.transmit(&a, make_frame(MacAddr::broadcast(), ma, 50));
  loop.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_TRUE(a.frames.empty());
}

TEST_F(LinkFixture, SerializationTimeMatchesSpec) {
  const std::size_t payload = 1000;
  Frame f = make_frame(mb, ma, payload);
  const auto expect =
      link.spec().serialization_ns(f.size()) + link.spec().propagation;
  link.transmit(&a, std::move(f));
  loop.run();
  ASSERT_EQ(b.arrival_times.size(), 1u);
  EXPECT_EQ(b.arrival_times[0], expect);
}

TEST_F(LinkFixture, MinFramePaddingApplies) {
  // A tiny frame must take at least the 64-byte slot time (~51.2 us) plus
  // preamble.
  Frame f = make_frame(mb, ma, 1);
  link.transmit(&a, std::move(f));
  loop.run();
  ASSERT_EQ(b.arrival_times.size(), 1u);
  const auto min_time = link.spec().serialization_ns(60);  // will pad to 64
  EXPECT_EQ(b.arrival_times[0] - link.spec().propagation, min_time);
  EXPECT_EQ(min_time, static_cast<sim::Time>((8 + 64) * 8 * 100));
}

TEST_F(LinkFixture, BackToBackFramesQueueOnChannel) {
  link.transmit(&a, make_frame(mb, ma, 1000));
  link.transmit(&a, make_frame(mb, ma, 1000));
  loop.run();
  ASSERT_EQ(b.arrival_times.size(), 2u);
  const auto occupancy = link.spec().occupancy_ns(EthHeader::kSize + 1000);
  EXPECT_EQ(b.arrival_times[1] - b.arrival_times[0], occupancy);
}

TEST_F(LinkFixture, LossDropsFrames) {
  link.faults().loss_p = 1.0;
  link.transmit(&a, make_frame(mb, ma, 100));
  loop.run();
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(link.frames_dropped(), 1u);
}

TEST_F(LinkFixture, DuplicationDeliversTwice) {
  link.faults().dup_p = 1.0;
  link.transmit(&a, make_frame(mb, ma, 100));
  loop.run();
  EXPECT_EQ(b.frames.size(), 2u);
}

TEST_F(LinkFixture, CorruptionFlipsOneBitBeyondLinkHeader) {
  link.faults().corrupt_p = 1.0;
  Frame original = make_frame(mb, ma, 100);
  link.transmit(&a, Frame{original.bytes});
  loop.run();
  ASSERT_EQ(b.frames.size(), 1u);
  const auto& got = b.frames[0].bytes;
  ASSERT_EQ(got.size(), original.bytes.size());
  int diff_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    diff_bits += __builtin_popcount(got[i] ^ original.bytes[i]);
    if (i < EthHeader::kSize) {
      EXPECT_EQ(got[i], original.bytes[i]);
    }
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(LinkSpec, EthernetSaturationMatchesTextbook) {
  auto spec = LinkSpec::ethernet10();
  // 1500-byte payload: 8 preamble + 1514 + 4 FCS + 12 IPG = 1538 byte
  // times; payload share = 1500/1538 of 10 Mb/s ~ 9.75 Mb/s.
  const double sat = spec.payload_saturation_bps(1500);
  EXPECT_NEAR(sat / 1e6, 9.75, 0.02);
  // Small payloads are dominated by the min-frame slot.
  EXPECT_LT(spec.payload_saturation_bps(1), 1e6);
}

TEST(LinkSpec, An1IsHundredMegabit) {
  auto spec = LinkSpec::an1();
  EXPECT_GT(spec.payload_saturation_bps(1500), 90e6);
}

}  // namespace
}  // namespace ulnet::net
