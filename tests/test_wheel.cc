#include "timer/wheel.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/rng.h"

namespace ulnet::timer {
namespace {

TEST(TimingWheel, FiresAtRequestedGranularity) {
  TimingWheel w(10 * sim::kMs);
  std::vector<sim::Time> fired;
  w.schedule(25 * sim::kMs, [&] { fired.push_back(w.now()); });
  w.advance_to(100 * sim::kMs);
  ASSERT_EQ(fired.size(), 1u);
  // Deadline 25 ms rounds up to the 30 ms tick.
  EXPECT_EQ(fired[0], 30 * sim::kMs);
}

TEST(TimingWheel, ZeroDelayFiresNextTick) {
  TimingWheel w(10 * sim::kMs);
  bool fired = false;
  w.schedule(0, [&] { fired = true; });
  w.advance_to(9 * sim::kMs);
  EXPECT_FALSE(fired);
  w.advance_to(10 * sim::kMs);
  EXPECT_TRUE(fired);
}

TEST(TimingWheel, CancelPreventsFiring) {
  TimingWheel w(10 * sim::kMs);
  bool fired = false;
  TimerId id = w.schedule(50 * sim::kMs, [&] { fired = true; });
  EXPECT_TRUE(w.cancel(id));
  EXPECT_FALSE(w.cancel(id));  // second cancel is a no-op
  w.advance_to(sim::kSec);
  EXPECT_FALSE(fired);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimingWheel, LongDelaysCascadeAcrossLevels) {
  TimingWheel w(10 * sim::kMs);
  // 100 s = 10000 ticks: lands in level 1 and must cascade down.
  std::vector<sim::Time> fired;
  w.schedule(100 * sim::kSec, [&] { fired.push_back(w.now()); });
  w.advance_to(200 * sim::kSec);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_GE(fired[0], 100 * sim::kSec);
  EXPECT_LE(fired[0], 100 * sim::kSec + 2 * w.tick());
  EXPECT_GT(w.cascades_total(), 0u);
}

TEST(TimingWheel, CallbackMayScheduleNewTimer) {
  TimingWheel w(10 * sim::kMs);
  std::vector<sim::Time> fired;
  w.schedule(10 * sim::kMs, [&] {
    fired.push_back(w.now());
    w.schedule(20 * sim::kMs, [&] { fired.push_back(w.now()); });
  });
  w.advance_to(sim::kSec);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 10 * sim::kMs);
  EXPECT_EQ(fired[1], 30 * sim::kMs);
}

TEST(TimingWheel, NextDeadlineTracksEarliest) {
  TimingWheel w(10 * sim::kMs);
  EXPECT_EQ(w.next_deadline(), sim::EventLoop::kForever);
  w.schedule(500 * sim::kMs, [] {});
  TimerId early = w.schedule(90 * sim::kMs, [] {});
  EXPECT_EQ(w.next_deadline(), 90 * sim::kMs);
  w.cancel(early);
  EXPECT_EQ(w.next_deadline(), 500 * sim::kMs);
}

TEST(TimingWheel, IdleAdvanceIsCheap) {
  TimingWheel w(10 * sim::kMs);
  w.advance_to(3600 * sim::kSec);  // an hour with no timers: must be instant
  EXPECT_EQ(w.now(), 3600 * sim::kSec);
}

// Differential test: wheel behaviour matches the exact heap timer to within
// wheel granularity, under a random schedule/cancel workload.
TEST(TimingWheel, MatchesHeapTimerUnderRandomWorkload) {
  const sim::Time tick = 10 * sim::kMs;
  TimingWheel wheel(tick);
  HeapTimer heap;
  sim::Rng rng(2024);

  std::map<int, sim::Time> wheel_fired, heap_fired;
  std::vector<std::pair<TimerId, TimerId>> ids;  // (wheel, heap)
  std::vector<int> keys;
  std::set<int> cancelled;
  int next_key = 0;

  sim::Time now = 0;
  for (int step = 0; step < 400; ++step) {
    now += rng.range(1, 30) * sim::kMs;
    wheel.advance_to(now);
    heap.advance_to(now);
    const double dice = rng.uniform();
    if (dice < 0.6) {
      const sim::Time delay = rng.range(1, 5000) * sim::kMs;
      const int key = next_key++;
      TimerId wid =
          wheel.schedule(delay, [&, key] { wheel_fired[key] = wheel.now(); });
      TimerId hid =
          heap.schedule(delay, [&, key] { heap_fired[key] = heap.now(); });
      ids.emplace_back(wid, hid);
      keys.push_back(key);
    } else if (!ids.empty()) {
      const std::size_t pick = rng.below(ids.size());
      wheel.cancel(ids[pick].first);
      heap.cancel(ids[pick].second);
      cancelled.insert(keys[pick]);
    }
  }
  wheel.advance_to(now + 6000 * sim::kSec);
  heap.advance_to(now + 6000 * sim::kSec);

  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(heap.pending(), 0u);
  // Every never-cancelled timer fired in both implementations, within wheel
  // granularity of each other. (A cancel can race the granularity skew --
  // the exact heap may fire just before the wheel's rounded-up tick -- so
  // cancelled keys may legitimately fire in one implementation only.)
  for (int key : keys) {
    const bool in_wheel = wheel_fired.contains(key);
    const bool in_heap = heap_fired.contains(key);
    if (!cancelled.contains(key)) {
      ASSERT_TRUE(in_wheel && in_heap) << "key " << key;
    }
    if (in_wheel && in_heap) {
      const sim::Time wt = wheel_fired[key];
      const sim::Time ht = heap_fired[key];
      EXPECT_GE(wt, ht) << "key " << key;
      EXPECT_LE(wt - ht, 2 * tick) << "key " << key;
    }
  }
}

TEST(HeapTimer, FiresInDeadlineOrder) {
  HeapTimer h;
  std::vector<int> order;
  h.schedule(30, [&] { order.push_back(3); });
  h.schedule(10, [&] { order.push_back(1); });
  h.schedule(20, [&] { order.push_back(2); });
  h.advance_to(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelDriver, FiresThroughEventLoop) {
  sim::EventLoop loop;
  TimingWheel wheel(10 * sim::kMs);
  TimerWheelDriver driver(loop, wheel);
  std::vector<sim::Time> fired;
  driver.schedule(95 * sim::kMs, [&] { fired.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_GE(fired[0], 95 * sim::kMs);
  EXPECT_LE(fired[0], 95 * sim::kMs + 2 * wheel.tick());
}

TEST(TimerWheelDriver, CancelSilencesTimer) {
  sim::EventLoop loop;
  TimingWheel wheel(10 * sim::kMs);
  TimerWheelDriver driver(loop, wheel);
  bool fired = false;
  TimerId id = driver.schedule(50 * sim::kMs, [&] { fired = true; });
  EXPECT_TRUE(driver.cancel(id));
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(TimerWheelDriver, RepeatingTimerChain) {
  sim::EventLoop loop;
  TimingWheel wheel(10 * sim::kMs);
  TimerWheelDriver driver(loop, wheel);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) driver.schedule(100 * sim::kMs, tick);
  };
  driver.schedule(100 * sim::kMs, tick);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_GE(loop.now(), 500 * sim::kMs);
}

}  // namespace
}  // namespace ulnet::timer
