// Latency-provenance tests: the log-linear histogram, the cached-sort
// Stats regression, trace-id determinism, span/flow closure under chaos,
// the traced-vs-untraced identity extended to spans/flows/profiler, and
// the simulated-CPU profiler's accounting invariant.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "api/testbed.h"
#include "api/workloads.h"
#include "core/netio_module.h"
#include "core/user_level.h"
#include "os/world.h"
#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "support/json_lite.h"

namespace ulnet {
namespace {

using api::BulkTransfer;
using api::LinkType;
using api::OrgType;
using api::SocketEvents;
using api::SocketId;
using api::Testbed;
using api::kInvalidSocket;
using core::UserLevelApp;
using testing::json_parse;
using testing::JsonValue;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, ValuesBelowSixtyFourAreExact) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(sim::Histogram::index_of(v), static_cast<int>(v));
    EXPECT_EQ(sim::Histogram::lower_bound(static_cast<int>(v)), v);
  }
}

TEST(Histogram, BucketBoundariesRoundTripAndBound2PercentError) {
  // Sweep values across the whole 64-bit range: the bucket holding v must
  // contain v, and its width must be at most v/64 (~1.6% relative error).
  for (int shift = 6; shift < 63; ++shift) {
    for (std::uint64_t off : {0ULL, 1ULL, 63ULL}) {
      const std::uint64_t v = (1ULL << shift) + off * (1ULL << (shift - 6));
      const int idx = sim::Histogram::index_of(v);
      const std::uint64_t lo = sim::Histogram::lower_bound(idx);
      const std::uint64_t next = sim::Histogram::lower_bound(idx + 1);
      EXPECT_LE(lo, v) << "v=" << v;
      EXPECT_LT(v, next) << "v=" << v;
      EXPECT_LE(next - lo, v / 64 + 1) << "bucket too wide at v=" << v;
    }
  }
}

TEST(Histogram, PercentilesWithinBucketError) {
  sim::Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 0.01);
  // Nearest-rank with a <=1.6% bucket error.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 5000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 9000.0, 9000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0, 9900.0 * 0.02);
  EXPECT_EQ(h.percentile(0), 1u);
  EXPECT_LE(h.percentile(100), 10000u);
  // Monotone in p.
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_LE(h.percentile(90), h.percentile(99));
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  sim::Histogram a, b, both;
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG
    const std::uint64_t v = x >> 40;
    ((i % 2 == 0) ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile(p), both.percentile(p)) << "p=" << p;
  }
  EXPECT_EQ(a.dump_json(), both.dump_json());
}

TEST(Histogram, DumpJsonWellFormed) {
  sim::Histogram h;
  const auto empty = json_parse(h.dump_json());
  ASSERT_TRUE(empty.has_value()) << h.dump_json();
  EXPECT_DOUBLE_EQ(empty->find("count")->number, 0.0);

  h.record(100);
  h.record(200);
  const auto doc = json_parse(h.dump_json());
  ASSERT_TRUE(doc.has_value()) << h.dump_json();
  for (const char* key :
       {"count", "min", "max", "mean", "p50", "p90", "p99"}) {
    ASSERT_NE(doc->find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(doc->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->find("min")->number, 100.0);
  EXPECT_DOUBLE_EQ(doc->find("max")->number, 200.0);
}

// ---------------------------------------------------------------------------
// Stats cached-sort regression
// ---------------------------------------------------------------------------

TEST(Stats, PercentileStableUnderInterleavedAddsAndQueries) {
  sim::Stats interleaved;
  sim::Stats reference;
  // Descending inserts interleaved with queries: every query must see the
  // samples added so far, and repeated queries must not change the answer.
  for (int i = 100; i > 0; --i) {
    interleaved.add(i);
    reference.add(i);
    const double m1 = interleaved.median();
    const double m2 = interleaved.median();
    EXPECT_DOUBLE_EQ(m1, m2);
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(interleaved.percentile(p), reference.percentile(p));
  }
  EXPECT_DOUBLE_EQ(interleaved.median(), reference.median());
}

// ---------------------------------------------------------------------------
// Trace-id determinism and traced/untraced identity
// ---------------------------------------------------------------------------

struct ProvenanceRun {
  std::string trace_json;
  std::uint64_t last_trace_id = 0;
  std::string netio_a_dump, netio_b_dump;
  std::string profile_json;
  std::string profile_folded;
};

ProvenanceRun traced_bulk(bool tracing, std::uint64_t seed = 11) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, seed);
  bed.world().tracer().set_enabled(tracing);
  BulkTransfer bulk(bed, 96 * 1024, 2048);
  const auto r = bulk.run();
  EXPECT_TRUE(r.ok) << r.error;
  ProvenanceRun out;
  out.trace_json = bed.world().tracer().to_chrome_json();
  out.last_trace_id = bed.world().tracer().last_trace_id();
  out.netio_a_dump = bed.user_org_a()->netio(0).dump_json();
  out.netio_b_dump = bed.user_org_b()->netio(0).dump_json();
  out.profile_json = bed.world().profile_dump_json();
  out.profile_folded = bed.world().profile_folded();
  return out;
}

TEST(Provenance, SameSeedRunsProduceIdenticalTraces) {
  const ProvenanceRun r1 = traced_bulk(true);
  const ProvenanceRun r2 = traced_bulk(true);
  EXPECT_GT(r1.last_trace_id, 0u);
  EXPECT_EQ(r1.last_trace_id, r2.last_trace_id);
  EXPECT_EQ(r1.trace_json, r2.trace_json)
      << "same seed, same build: the trace byte stream must replay exactly";
}

TEST(Provenance, TracingOnVsOffIdentity) {
  const ProvenanceRun off = traced_bulk(false);
  const ProvenanceRun on = traced_bulk(true);
  // Trace ids are allocated whether or not the tracer records, so the id
  // stream -- and everything keyed on it -- is identical.
  EXPECT_EQ(off.last_trace_id, on.last_trace_id);
  // Histograms are always-on (no simulated cost), so the stats surfaces
  // are bit-identical too.
  EXPECT_EQ(off.netio_a_dump, on.netio_a_dump);
  EXPECT_EQ(off.netio_b_dump, on.netio_b_dump);
  // And so is the simulated-CPU profile.
  EXPECT_EQ(off.profile_json, on.profile_json);
  EXPECT_EQ(off.profile_folded, on.profile_folded);
}

// ---------------------------------------------------------------------------
// Span/flow pairing, including after a chaos kill
// ---------------------------------------------------------------------------

// Count span begin/end and flow start/end per detail name across the whole
// retained ring.
struct PairCensus {
  std::map<std::string, std::int64_t> span_balance;  // begins - ends
  std::map<std::string, std::int64_t> flow_balance;  // starts - heads
  std::uint64_t spans_seen = 0, flows_seen = 0;
};

PairCensus census_of(const sim::Tracer& tr) {
  PairCensus c;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const sim::TraceEvent& ev = tr.at(i);
    const std::string name = ev.detail == nullptr ? "?" : ev.detail;
    switch (ev.type) {
      case sim::TraceEventType::kSpanBegin:
        c.span_balance[name]++;
        c.spans_seen++;
        break;
      case sim::TraceEventType::kSpanEnd:
        c.span_balance[name]--;
        break;
      case sim::TraceEventType::kFlowStart:
        c.flow_balance[name]++;
        c.flows_seen++;
        break;
      case sim::TraceEventType::kFlowEnd:
        c.flow_balance[name]--;
        break;
      default:
        break;
    }
  }
  return c;
}

TEST(Provenance, SpansAndFlowsBalanceOnCleanRun) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/3);
  bed.world().tracer().set_enabled(true);
  BulkTransfer bulk(bed, 96 * 1024, 2048);
  ASSERT_TRUE(bulk.run().ok);
  ASSERT_EQ(bed.world().tracer().overwritten(), 0u)
      << "ring too small for the pairing check";
  const PairCensus c = census_of(bed.world().tracer());
  EXPECT_GT(c.spans_seen, 0u);
  EXPECT_GT(c.flows_seen, 0u);
  for (const auto& [name, bal] : c.span_balance) {
    EXPECT_EQ(bal, 0) << "unbalanced span " << name;
  }
  for (const auto& [name, bal] : c.flow_balance) {
    EXPECT_EQ(bal, 0) << "unbalanced flow " << name;
  }
}

TEST(Provenance, RxRingSpansCloseAfterChaosKill) {
  // Fill a victim's receive ring (library stalled so nothing drains), then
  // kill it: reclamation must close every open "rxring" span when the
  // channel is destroyed, leaving the trace structurally sound.
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/16);
  bed.world().tracer().set_enabled(true);
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();

  auto sock = std::make_shared<SocketId>(kInvalidSocket);
  b->run_app([b](sim::TaskCtx&) {
    b->listen(6000, [](SocketId) { return SocketEvents{}; });
  });
  bed.world().loop().schedule_in(20 * sim::kMs, [&bed, a, sock] {
    a->run_app([&bed, a, sock](sim::TaskCtx&) {
      a->connect(bed.ip_b(), 6000, SocketEvents{},
                 [sock](SocketId id) { *sock = id; });
    });
  });
  bed.world().run_for(1 * sim::kSec);
  ASSERT_NE(*sock, kInvalidSocket);

  // Freeze b's library and pump segments at it so its ring holds packets
  // with open residency spans.
  b->stall();
  a->run_app([a, sock](sim::TaskCtx&) {
    a->send(*sock, api::payload_bytes(0, 16 * 1024));
  });
  bed.world().run_for(1 * sim::kSec);

  // Kill the stalled library; the trusted path reclaims its channel.
  b->run_app([b](sim::TaskCtx& ctx) { b->kill(ctx); });
  bed.world().run_for(5 * sim::kSec);
  ASSERT_TRUE(b->dead());
  ASSERT_TRUE(bed.user_org_b()
                  ->netio(0)
                  .channels_of_space(b->app_space())
                  .empty());

  ASSERT_EQ(bed.world().tracer().overwritten(), 0u);
  const PairCensus c = census_of(bed.world().tracer());
  ASSERT_GT(c.span_balance.count("rxring"), 0u)
      << "scenario never opened an rxring span";
  EXPECT_EQ(c.span_balance.at("rxring"), 0)
      << "rxring spans left dangling after the kill";
  for (const auto& [name, bal] : c.span_balance) {
    EXPECT_EQ(bal, 0) << "unbalanced span " << name;
  }
}

// ---------------------------------------------------------------------------
// Simulated-CPU profiler
// ---------------------------------------------------------------------------

TEST(Provenance, ProfilerComponentsSumToBusyNs) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/7);
  BulkTransfer bulk(bed, 96 * 1024, 2048);
  ASSERT_TRUE(bulk.run().ok);
  for (const auto& host : bed.world().hosts()) {
    const sim::Cpu& cpu = host->cpu();
    sim::Time sum = 0;
    for (const sim::Time t : cpu.profile()) sum += t;
    EXPECT_EQ(sum, cpu.busy_ns())
        << host->name() << ": profiler lost or invented charged time";
  }
  // The user-level data path must show up in its own components.
  const sim::Cpu& cpu_a = bed.world().hosts()[0]->cpu();
  EXPECT_GT(cpu_a.profile_ns(sim::CpuComponent::kDemux), 0);
  EXPECT_GT(cpu_a.profile_ns(sim::CpuComponent::kLibraryDrain), 0);
  EXPECT_GT(cpu_a.profile_ns(sim::CpuComponent::kNicIsr), 0);
  EXPECT_GT(cpu_a.profile_ns(sim::CpuComponent::kRegistry), 0);

  // Export forms: valid JSON, and folded lines of "host;component <ns>"
  // whose values sum to the total busy time across hosts.
  const auto doc = json_parse(bed.world().profile_dump_json());
  ASSERT_TRUE(doc.has_value()) << bed.world().profile_dump_json();
  const std::string folded = bed.world().profile_folded();
  ASSERT_FALSE(folded.empty());
  sim::Time folded_sum = 0;
  sim::Time busy_sum = 0;
  for (const auto& host : bed.world().hosts()) busy_sum += host->cpu().busy_ns();
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    const std::string line = folded.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? folded.size() : eol + 1;
    if (line.empty()) continue;
    const std::size_t semi = line.find(';');
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(semi, std::string::npos) << line;
    ASSERT_NE(space, std::string::npos) << line;
    folded_sum += std::stoll(line.substr(space + 1));
  }
  EXPECT_EQ(folded_sum, busy_sum);
}

}  // namespace
}  // namespace ulnet
