// TCP edge cases: sequence-number wraparound, simultaneous close,
// half-close data flow, TIME_WAIT behaviour, handoff state fidelity.
#include <gtest/gtest.h>

#include "proto/tcp.h"
#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet::proto {
namespace {

using ulnet::testing::BulkSource;
using ulnet::testing::pattern_bytes;
using ulnet::testing::RecordingObserver;
using ulnet::testing::StackHarness;
using ulnet::testing::TestChannel;

struct EdgeFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{17};
  StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0)};
  StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0)};
  TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
  }
  void run(sim::Time d = 5 * sim::kSec) { loop.run_until(loop.now() + d); }

  // Build a connected pair whose sequence numbers sit `offset` bytes before
  // the 2^32 wrap, using the hand-off import path on both sides.
  std::pair<TcpConnection*, TcpConnection*> wrap_pair(std::uint32_t offset) {
    const std::uint32_t seq_a = 0xffffffffu - offset;
    const std::uint32_t seq_b = 0xfffffff0u - offset;
    TcpHandoffState sa;
    sa.local_ip = a.ip_addr();
    sa.remote_ip = b.ip_addr();
    sa.local_port = 1111;
    sa.remote_port = 2222;
    sa.mss = 1460;
    sa.iss = seq_a;
    sa.irs = seq_b;
    sa.snd_una = sa.snd_nxt = sa.snd_max = seq_a;
    sa.snd_wnd = 32 * 1024;
    sa.rcv_nxt = sa.rcv_adv = seq_b;

    TcpHandoffState sb;
    sb.local_ip = b.ip_addr();
    sb.remote_ip = a.ip_addr();
    sb.local_port = 2222;
    sb.remote_port = 1111;
    sb.mss = 1460;
    sb.iss = seq_b;
    sb.irs = seq_a;
    sb.snd_una = sb.snd_nxt = sb.snd_max = seq_b;
    sb.snd_wnd = 32 * 1024;
    sb.rcv_nxt = sb.rcv_adv = seq_a;

    a.stack().arp().add_entry(b.ip_addr(), b.mac());
    b.stack().arp().add_entry(a.ip_addr(), a.mac());
    auto* ca = a.stack().tcp().import_connection(sa, nullptr);
    auto* cb = b.stack().tcp().import_connection(sb, nullptr);
    return {ca, cb};
  }
};

TEST_F(EdgeFixture, SequenceNumbersWrapMidTransfer) {
  auto [ca, cb] = wrap_pair(/*offset=*/2000);
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  RecordingObserver sink;
  cb->set_observer(&sink);
  BulkSource src(300 * 1024, 4096, /*close_when_done=*/true);
  ca->set_observer(&src);
  src.pump(*ca);
  run(120 * sim::kSec);
  // The stream crossed seq 2^32 after ~2000 bytes and kept going.
  EXPECT_EQ(sink.received.size(), 300u * 1024);
  EXPECT_EQ(sink.received, pattern_bytes(0, 300 * 1024));
}

TEST_F(EdgeFixture, SequenceWrapSurvivesLossToo) {
  chan.loss_p = 0.08;
  auto [ca, cb] = wrap_pair(/*offset=*/5000);
  RecordingObserver sink;
  sink.close_on_fin = true;
  cb->set_observer(&sink);
  BulkSource src(120 * 1024, 4096);
  ca->set_observer(&src);
  src.pump(*ca);
  loop.run_until(600 * sim::kSec);
  EXPECT_EQ(sink.received, pattern_bytes(0, 120 * 1024));
}

TEST_F(EdgeFixture, SimultaneousCloseReachesClosedOnBothSides) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  // Both sides close in the same instant: FINs cross on the wire and both
  // should traverse FIN_WAIT_1 -> CLOSING -> TIME_WAIT.
  c->close();
  server.accepted_conn->close();
  run(60 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(server.accepted_conn->state(), TcpState::kClosed);
  EXPECT_TRUE(client.close_reason.empty());
  EXPECT_TRUE(server.close_reason.empty());
}

TEST_F(EdgeFixture, HalfCloseStillCarriesDataTheOtherWay) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  // Client closes its direction immediately...
  c->close();
  run();
  ASSERT_NE(server.accepted_conn, nullptr);
  EXPECT_EQ(server.fins, 1);
  // ...but the server can still stream data to the half-closed client.
  EXPECT_GT(server.accepted_conn->send(pattern_bytes(0, 8000)), 0u);
  run();
  EXPECT_EQ(client.received, pattern_bytes(0, 8000));
  // Server finishes; everything terminates cleanly.
  server.accepted_conn->close();
  run(60 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kClosed);
}

TEST_F(EdgeFixture, TimeWaitReAcksRetransmittedFin) {
  RecordingObserver server;
  RecordingObserver client;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  // Drop the client's final ACK so the server retransmits its FIN into the
  // client's TIME_WAIT.
  c->close();
  run(400 * sim::kMs);
  chan.loss_p = 1.0;  // the ACK of the server FIN dies
  run(2 * sim::kSec);
  chan.loss_p = 0;
  loop.run_until(loop.now() + 120 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(server.accepted_conn->state(), TcpState::kClosed);
  EXPECT_TRUE(server.close_reason.empty());
}

TEST_F(EdgeFixture, HandoffStatePreservesUnreadDataAndRtt) {
  RecordingObserver server;
  RecordingObserver client;
  server.auto_read = false;  // leave data buffered for the export
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  c->send(pattern_bytes(0, 3000));
  run();
  ASSERT_NE(server.accepted_conn, nullptr);
  ASSERT_EQ(server.accepted_conn->bytes_available(), 3000u);

  const TcpHandoffState st = server.accepted_conn->export_state();
  EXPECT_EQ(st.rcv_pending.size(), 3000u);
  EXPECT_EQ(st.rcv_pending, pattern_bytes(0, 3000));
  EXPECT_EQ(st.state, TcpState::kEstablished);
  EXPECT_GT(st.snd_wnd, 0u);
  EXPECT_GE(st.wire_size(), 3000u);
}

TEST_F(EdgeFixture, ImportRefusesDuplicateFourTuple) {
  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  run();
  const TcpHandoffState st = c->export_state();
  // The 4-tuple is still live in this module: import must refuse.
  EXPECT_EQ(a.stack().tcp().import_connection(st, nullptr), nullptr);
}

TEST_F(EdgeFixture, ListenBacklogManyConcurrentAccepts) {
  RecordingObserver server;
  b.stack().tcp().listen(80, &server);
  std::vector<RecordingObserver> clients(12);
  std::vector<TcpConnection*> conns;
  for (auto& obs : clients) {
    conns.push_back(a.stack().tcp().connect(b.ip_addr(), 80, &obs));
  }
  run(20 * sim::kSec);
  int established = 0;
  for (auto* conn : conns) {
    established += (conn != nullptr &&
                    conn->state() == TcpState::kEstablished);
  }
  EXPECT_EQ(established, 12);
  EXPECT_EQ(b.stack().tcp().counters().conns_accepted, 12u);
}

}  // namespace
}  // namespace ulnet::proto
