#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace ulnet::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, EqualTimesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule_at(50, [&] {
    loop.schedule_in(25, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventLoop, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [&] {
    EXPECT_THROW(loop.schedule_at(50, [] {}), std::logic_error);
  });
  loop.run();
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownIdIsNoop) {
  EventLoop loop;
  loop.cancel(kInvalidEvent);
  loop.cancel(999999);
  bool ran = false;
  loop.schedule_at(1, [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(10, [&] { count++; });
  loop.schedule_at(20, [&] { count++; });
  loop.schedule_at(30, [&] { count++; });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.schedule_in(1, chain);
  };
  loop.schedule_at(0, chain);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, StopInterruptsRun) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(1, [&] {
    count++;
    loop.stop();
  });
  loop.schedule_at(2, [&] { count++; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

// Regression: cancelling an already-fired id used to insert into the
// tombstone set forever, leaking memory and corrupting pending()/empty().
TEST(EventLoop, CancelAfterFireIsExactNoop) {
  EventLoop loop;
  EventId id = loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_TRUE(loop.empty());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(loop.cancel(id));  // fired: nothing to cancel
  }
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
  bool ran = false;
  loop.schedule_in(1, [&] { ran = true; });
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, CancelSucceedsExactlyOnce) {
  EventLoop loop;
  EventId id = loop.schedule_at(10, [] {});
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));
  EXPECT_TRUE(loop.empty());
}

// A retired slot is reused by later events with a bumped generation: stale
// ids must not cancel the new occupant.
TEST(EventLoop, StaleIdDoesNotCancelSlotReuse) {
  EventLoop loop;
  EventId first = loop.schedule_at(1, [] {});
  loop.run();
  bool ran = false;
  loop.schedule_in(1, [&] { ran = true; });  // reuses the retired slot
  EXPECT_FALSE(loop.cancel(first));
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, CancelledEventsDoNotCountAsExecuted) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1, [&] { fired++; });
  EventId b = loop.schedule_at(2, [&] { fired++; });
  loop.schedule_at(3, [&] { fired++; });
  loop.cancel(b);
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.executed(), 2u);
}

TEST(EventLoop, CancelInterleavedWithFiringKeepsOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(loop.schedule_at(100 + i / 10, [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 1; i < 20; i += 2) loop.cancel(ids[static_cast<size_t>(i)]);
  loop.run();
  std::vector<int> want;
  for (int i = 0; i < 20; i += 2) want.push_back(i);
  EXPECT_EQ(order, want);
}

TEST(EventLoop, OccupancyHighWaterTracksPeakPending) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule_at(10 + i, [] {});
  EXPECT_EQ(loop.occupancy_high_water(), 5u);
  loop.run();
  EXPECT_EQ(loop.occupancy_high_water(), 5u);  // high-water sticks
  loop.schedule_in(1, [] {});
  loop.run();
  EXPECT_EQ(loop.occupancy_high_water(), 5u);
}

TEST(EventFn, MoveOnlyCallablesWork) {
  EventLoop loop;
  auto p = std::make_unique<int>(41);
  int got = 0;
  loop.schedule_at(1, [p = std::move(p), &got] { got = *p + 1; });
  loop.run();
  EXPECT_EQ(got, 42);
}

TEST(EventFn, LargeCallablesFallBackToHeap) {
  EventLoop loop;
  std::array<std::uint64_t, 32> big{};  // 256 bytes, beyond inline storage
  big[0] = 7;
  big[31] = 35;
  std::uint64_t got = 0;
  loop.schedule_at(1, [big, &got] { got = big[0] + big[31]; });
  loop.run();
  EXPECT_EQ(got, 42u);
}

}  // namespace
}  // namespace ulnet::sim
