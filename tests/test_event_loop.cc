#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace ulnet::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, EqualTimesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule_at(50, [&] {
    loop.schedule_in(25, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventLoop, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [&] {
    EXPECT_THROW(loop.schedule_at(50, [] {}), std::logic_error);
  });
  loop.run();
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownIdIsNoop) {
  EventLoop loop;
  loop.cancel(kInvalidEvent);
  loop.cancel(999999);
  bool ran = false;
  loop.schedule_at(1, [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(10, [&] { count++; });
  loop.schedule_at(20, [&] { count++; });
  loop.schedule_at(30, [&] { count++; });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.schedule_in(1, chain);
  };
  loop.schedule_at(0, chain);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, StopInterruptsRun) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(1, [&] {
    count++;
    loop.stop();
  });
  loop.schedule_at(2, [&] { count++; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace ulnet::sim
