#include "proto/wire.h"

#include <gtest/gtest.h>

#include "proto/tcp.h"  // seq_* arithmetic
#include "sim/rng.h"

namespace ulnet::proto {
namespace {

const net::Ipv4Addr kSrc = net::Ipv4Addr::parse("10.0.0.1");
const net::Ipv4Addr kDst = net::Ipv4Addr::parse("10.0.0.2");

TEST(Ipv4Wire, RoundTrip) {
  Ipv4Header h;
  h.total_len = 120;
  h.ident = 0x4242;
  h.ttl = 17;
  h.proto = kProtoTcp;
  h.src = kSrc;
  h.dst = kDst;
  buf::Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), Ipv4Header::kSize);
  bool ok = false;
  auto p = Ipv4Header::parse(out, &ok);
  ASSERT_TRUE(p);
  EXPECT_TRUE(ok);
  EXPECT_EQ(p->total_len, 120);
  EXPECT_EQ(p->ident, 0x4242);
  EXPECT_EQ(p->ttl, 17);
  EXPECT_EQ(p->proto, kProtoTcp);
  EXPECT_EQ(p->src, kSrc);
  EXPECT_EQ(p->dst, kDst);
  EXPECT_FALSE(p->more_fragments);
  EXPECT_EQ(p->frag_offset_bytes(), 0u);
}

TEST(Ipv4Wire, FragmentFieldsRoundTrip) {
  Ipv4Header h;
  h.total_len = 100;
  h.proto = kProtoUdp;
  h.src = kSrc;
  h.dst = kDst;
  h.more_fragments = true;
  h.frag_offset_units = 185;  // 1480 bytes
  buf::Bytes out;
  h.serialize(out);
  auto p = Ipv4Header::parse(out);
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->more_fragments);
  EXPECT_EQ(p->frag_offset_bytes(), 1480u);
}

TEST(Ipv4Wire, CorruptionFailsChecksum) {
  Ipv4Header h;
  h.total_len = 40;
  h.proto = kProtoTcp;
  h.src = kSrc;
  h.dst = kDst;
  buf::Bytes out;
  h.serialize(out);
  out[8] ^= 0x01;  // flip a TTL bit
  bool ok = true;
  ASSERT_TRUE(Ipv4Header::parse(out, &ok));
  EXPECT_FALSE(ok);
}

TEST(Ipv4Wire, RejectsNonIpv4) {
  buf::Bytes junk(20, 0);
  junk[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(junk).has_value());
}

TEST(TcpWire, RoundTripWithPayloadAndMss) {
  TcpHeader t;
  t.sport = 1234;
  t.dport = 80;
  t.seq = 0xdeadbeef;
  t.ack = 0x01020304;
  t.flags.syn = true;
  t.flags.ack = true;
  t.wnd = 8192;
  t.mss_option = 1460;
  buf::Bytes payload{1, 2, 3, 4, 5};
  buf::Bytes seg;
  t.serialize(seg, kSrc, kDst, payload);
  ASSERT_EQ(seg.size(), 24 + 5u);

  bool ok = false;
  std::size_t hlen = 0;
  auto p = TcpHeader::parse(seg, kSrc, kDst, &ok, &hlen);
  ASSERT_TRUE(p);
  EXPECT_TRUE(ok);
  EXPECT_EQ(hlen, 24u);
  EXPECT_EQ(p->sport, 1234);
  EXPECT_EQ(p->dport, 80);
  EXPECT_EQ(p->seq, 0xdeadbeefu);
  EXPECT_EQ(p->ack, 0x01020304u);
  EXPECT_TRUE(p->flags.syn);
  EXPECT_TRUE(p->flags.ack);
  EXPECT_FALSE(p->flags.fin);
  EXPECT_EQ(p->wnd, 8192);
  ASSERT_TRUE(p->mss_option.has_value());
  EXPECT_EQ(*p->mss_option, 1460);
}

TEST(TcpWire, ChecksumCoversPseudoHeader) {
  TcpHeader t;
  t.sport = 1;
  t.dport = 2;
  buf::Bytes seg;
  t.serialize(seg, kSrc, kDst, {});
  bool ok = false;
  // Parsing against different addresses must fail the checksum.
  TcpHeader::parse(seg, kSrc, net::Ipv4Addr::parse("10.0.0.3"), &ok);
  EXPECT_FALSE(ok);
  TcpHeader::parse(seg, kSrc, kDst, &ok);
  EXPECT_TRUE(ok);
}

TEST(TcpWire, PayloadCorruptionDetected) {
  sim::Rng rng(17);
  TcpHeader t;
  t.sport = 7;
  t.dport = 9;
  buf::Bytes payload(100, 0);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
  buf::Bytes seg;
  t.serialize(seg, kSrc, kDst, payload);
  for (int trial = 0; trial < 50; ++trial) {
    buf::Bytes bad = seg;
    bad[rng.below(bad.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    bool ok = true;
    if (TcpHeader::parse(bad, kSrc, kDst, &ok)) {
      EXPECT_FALSE(ok);
    }
  }
}

TEST(TcpWire, FlagsEncodeDecodeAllCombinations) {
  for (int bits = 0; bits < 64; ++bits) {
    auto f = TcpFlags::decode(static_cast<std::uint8_t>(bits));
    EXPECT_EQ(f.encode(), bits);
  }
}

TEST(UdpWire, RoundTrip) {
  UdpHeader u;
  u.sport = 53;
  u.dport = 5353;
  buf::Bytes payload{9, 8, 7};
  buf::Bytes dg;
  u.serialize(dg, kSrc, kDst, payload);
  ASSERT_EQ(dg.size(), UdpHeader::kSize + 3);
  bool ok = false;
  auto p = UdpHeader::parse(dg, kSrc, kDst, &ok);
  ASSERT_TRUE(p);
  EXPECT_TRUE(ok);
  EXPECT_EQ(p->sport, 53);
  EXPECT_EQ(p->dport, 5353);
  EXPECT_EQ(p->length, UdpHeader::kSize + 3);
}

TEST(UdpWire, CorruptionDetected) {
  UdpHeader u;
  u.sport = 1;
  u.dport = 2;
  buf::Bytes payload(64, 0x33);
  buf::Bytes dg;
  u.serialize(dg, kSrc, kDst, payload);
  dg[12] ^= 0x10;
  bool ok = true;
  ASSERT_TRUE(UdpHeader::parse(dg, kSrc, kDst, &ok));
  EXPECT_FALSE(ok);
}

TEST(IcmpWire, EchoRoundTrip) {
  IcmpEcho e;
  e.type = IcmpEcho::kEchoRequest;
  e.id = 77;
  e.seq = 3;
  buf::Bytes payload(32, 0xaa);
  buf::Bytes msg;
  e.serialize(msg, payload);
  bool ok = false;
  auto p = IcmpEcho::parse(msg, &ok);
  ASSERT_TRUE(p);
  EXPECT_TRUE(ok);
  EXPECT_EQ(p->type, IcmpEcho::kEchoRequest);
  EXPECT_EQ(p->id, 77);
  EXPECT_EQ(p->seq, 3);
}

TEST(ArpWire, RoundTrip) {
  ArpMessage m;
  m.op = ArpMessage::kOpReply;
  m.sender_mac = net::MacAddr::from_index(1, 0);
  m.sender_ip = kSrc;
  m.target_mac = net::MacAddr::from_index(2, 0);
  m.target_ip = kDst;
  buf::Bytes out;
  m.serialize(out);
  ASSERT_EQ(out.size(), ArpMessage::kSize);
  auto p = ArpMessage::parse(out);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->op, ArpMessage::kOpReply);
  EXPECT_EQ(p->sender_mac, m.sender_mac);
  EXPECT_EQ(p->sender_ip, kSrc);
  EXPECT_EQ(p->target_ip, kDst);
}

TEST(ArpWire, RejectsWrongHardwareType) {
  ArpMessage m;
  buf::Bytes out;
  m.serialize(out);
  out[1] = 9;  // not Ethernet
  EXPECT_FALSE(ArpMessage::parse(out).has_value());
}

TEST(SeqArith, WrapsCorrectly) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
  EXPECT_TRUE(seq_lt(0u, 0x7fffffffu));
  EXPECT_FALSE(seq_lt(0u, 0x80000001u));  // beyond half-range: "behind"
}

}  // namespace
}  // namespace ulnet::proto
