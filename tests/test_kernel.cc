#include "os/kernel.h"

#include <gtest/gtest.h>

#include "os/world.h"

namespace ulnet::os {
namespace {

struct KernelFixture : ::testing::Test {
  World world;
  Host& host = world.add_host("h");
  Kernel& k = host.kernel();
};

TEST_F(KernelFixture, PortRightsStartWithOwner) {
  auto app = host.new_space("app");
  auto other = host.new_space("other");
  PortId p = k.port_allocate(app);
  EXPECT_TRUE(k.port_has_send_right(p, app));
  EXPECT_FALSE(k.port_has_send_right(p, other));
}

TEST_F(KernelFixture, SendRightsTransferable) {
  auto app = host.new_space("app");
  auto srv = host.new_space("srv");
  PortId p = k.port_allocate(srv);
  k.port_insert_send_right(p, app);
  EXPECT_TRUE(k.port_has_send_right(p, app));
  k.port_remove_send_right(p, app);
  EXPECT_FALSE(k.port_has_send_right(p, app));
}

TEST_F(KernelFixture, DestroyedPortHasNoRights) {
  auto app = host.new_space("app");
  PortId p = k.port_allocate(app);
  k.port_destroy(p);
  EXPECT_FALSE(k.port_exists(p));
  EXPECT_FALSE(k.port_has_send_right(p, app));
}

TEST_F(KernelFixture, RegionsMapPerSpace) {
  auto app = host.new_space("app");
  auto other = host.new_space("other");
  RegionId r = k.region_create(64 * 1024);
  EXPECT_EQ(k.region_size(r), 64u * 1024);
  EXPECT_TRUE(k.region_mapped(r, sim::kKernelSpace));
  EXPECT_FALSE(k.region_mapped(r, app));
  k.region_map(r, app);
  EXPECT_TRUE(k.region_mapped(r, app));
  EXPECT_FALSE(k.region_mapped(r, other));
  k.region_unmap(r, app);
  EXPECT_FALSE(k.region_mapped(r, app));
}

TEST_F(KernelFixture, IpcChargesAndCrossesSpaces) {
  auto app = host.new_space("app");
  auto srv = host.new_space("srv");
  bool handled = false;
  sim::SpaceId handler_space = -1;

  host.run_in(app, [&](sim::TaskCtx& ctx) {
    k.ipc_send(ctx, srv, 256, [&](sim::TaskCtx& rctx) {
      handled = true;
      handler_space = rctx.space();
    });
  });
  world.run();

  EXPECT_TRUE(handled);
  EXPECT_EQ(handler_space, srv);
  EXPECT_EQ(world.metrics().ipc_messages, 1u);
  EXPECT_GE(world.metrics().traps, 1u);
  // Two space changes: kernel->app for the sender task, app->srv for the
  // handler.
  EXPECT_EQ(world.metrics().context_switches, 2u);
}

TEST_F(KernelFixture, IpcRoundTripCostIsRealistic) {
  // The paper reports ~900 us for app -> registry server -> app.
  auto app = host.new_space("app");
  auto srv = host.new_space("srv");
  host.run_in(app, [&](sim::TaskCtx&) {});  // settle initial switch
  world.run();
  const sim::Time t0 = world.now();
  bool done = false;
  host.run_in(app, [&](sim::TaskCtx& ctx) {
    k.ipc_send(ctx, srv, 64, [&](sim::TaskCtx& rctx) {
      k.ipc_send(rctx, app, 64, [&](sim::TaskCtx&) { done = true; });
    });
  });
  world.run();
  ASSERT_TRUE(done);
  const double rtt_us = sim::to_us(world.now() - t0);
  EXPECT_GT(rtt_us, 600.0);
  EXPECT_LT(rtt_us, 1200.0);
}

TEST_F(KernelFixture, CopySmallChargesPerByte) {
  host.run_in(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    k.copy_bytes(ctx, 100);
  });
  world.run();
  EXPECT_EQ(world.metrics().copies, 1u);
  EXPECT_EQ(world.metrics().bytes_copied, 100u);
  EXPECT_EQ(world.metrics().page_remaps, 0u);
}

TEST_F(KernelFixture, CopyLargeUsesRemap) {
  host.run_in(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    k.copy_bytes(ctx, world.cost().remap_threshold);
  });
  world.run();
  EXPECT_EQ(world.metrics().page_remaps, 1u);
  EXPECT_EQ(world.metrics().copies, 0u);
}

TEST_F(KernelFixture, CopyRemapIneligibleAlwaysCopies) {
  host.run_in(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    k.copy_bytes(ctx, 8192, /*remap_eligible=*/false);
  });
  world.run();
  EXPECT_EQ(world.metrics().page_remaps, 0u);
  EXPECT_EQ(world.metrics().bytes_copied, 8192u);
}

TEST_F(KernelFixture, TrapsAreCounted) {
  host.run_in(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    k.trap(ctx);
    k.fast_trap(ctx);
  });
  world.run();
  EXPECT_EQ(world.metrics().traps, 1u);
  EXPECT_EQ(world.metrics().specialized_traps, 1u);
}

}  // namespace
}  // namespace ulnet::os
