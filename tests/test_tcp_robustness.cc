// Property-style robustness tests: whatever the channel does (drop,
// duplicate, reorder, corrupt), TCP must deliver the exact byte stream, in
// order, exactly once.
#include <gtest/gtest.h>

#include "proto/tcp.h"
#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet::proto {
namespace {

using ulnet::testing::BulkSource;
using ulnet::testing::pattern_bytes;
using ulnet::testing::RecordingObserver;
using ulnet::testing::StackHarness;
using ulnet::testing::TestChannel;

struct FaultCase {
  const char* name;
  std::uint64_t seed;
  double loss;
  double dup;
  double corrupt;
  sim::Time jitter;
  std::size_t bytes;
  std::size_t write_size;
};

const FaultCase kCases[] = {
    {"loss5", 101, 0.05, 0, 0, 0, 120 * 1024, 4096},
    {"loss15", 102, 0.15, 0, 0, 0, 60 * 1024, 4096},
    {"dup10", 103, 0, 0.10, 0, 0, 120 * 1024, 4096},
    {"corrupt5", 104, 0, 0, 0.05, 0, 60 * 1024, 2048},
    {"reorder", 105, 0, 0, 0, 8 * sim::kMs, 120 * 1024, 4096},
    {"everything", 106, 0.05, 0.05, 0.02, 4 * sim::kMs, 60 * 1024, 1024},
    {"small_writes_loss", 107, 0.10, 0, 0, 0, 30 * 1024, 512},
    {"everything_seed2", 108, 0.05, 0.05, 0.02, 4 * sim::kMs, 60 * 1024,
     1024},
};

class TcpFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(TcpFaultTest, ExactlyOnceInOrderDelivery) {
  const FaultCase& fc = GetParam();
  sim::EventLoop loop;
  sim::Rng rng(fc.seed);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);
  chan.loss_p = fc.loss;
  chan.dup_p = fc.dup;
  chan.corrupt_p = fc.corrupt;
  chan.jitter_max = fc.jitter;

  RecordingObserver server;
  server.close_on_fin = true;
  ASSERT_TRUE(b.stack().tcp().listen(80, &server));
  BulkSource source(fc.bytes, fc.write_size);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &source);
  ASSERT_NE(c, nullptr);

  loop.run_until(1800 * sim::kSec);

  EXPECT_EQ(server.received.size(), fc.bytes) << fc.name;
  EXPECT_EQ(server.received, pattern_bytes(0, fc.bytes)) << fc.name;
  EXPECT_EQ(server.fins, 1) << fc.name;
  if (fc.loss > 0 || fc.corrupt > 0) {
    EXPECT_GT(a.stack().tcp().counters().retransmits +
                  a.stack().tcp().counters().timeouts,
              0u)
        << fc.name;
  }
  if (fc.corrupt > 0) {
    EXPECT_GT(a.stack().tcp().counters().bad_checksum +
                  b.stack().tcp().counters().bad_checksum +
                  a.stack().ip().counters().bad_checksum +
                  b.stack().ip().counters().bad_checksum,
              0u)
        << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Faults, TcpFaultTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

TEST(TcpRobustness, RetransmissionTimeoutRecoversFromBlackout) {
  sim::EventLoop loop;
  sim::Rng rng(7);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  loop.run_until(5 * sim::kSec);
  ASSERT_EQ(c->state(), TcpState::kEstablished);

  // Total blackout while a write is in flight.
  chan.loss_p = 1.0;
  c->send(pattern_bytes(0, 1000));
  loop.run_until(loop.now() + 10 * sim::kSec);
  EXPECT_TRUE(server.received.empty());
  EXPECT_GE(a.stack().tcp().counters().timeouts, 1u);

  // Heal the network: the retransmission timer delivers the data.
  chan.loss_p = 0;
  loop.run_until(loop.now() + 120 * sim::kSec);
  EXPECT_EQ(server.received, pattern_bytes(0, 1000));
}

TEST(TcpRobustness, PermanentBlackoutTimesOutTheConnection) {
  sim::EventLoop loop;
  sim::Rng rng(9);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConfig cfg;
  cfg.max_retransmits = 4;  // shorten the agony
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, cfg);
  loop.run_until(5 * sim::kSec);
  ASSERT_EQ(c->state(), TcpState::kEstablished);

  chan.loss_p = 1.0;
  c->send(pattern_bytes(0, 100));
  loop.run_until(loop.now() + 600 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(client.close_reason, "connection timed out");
}

TEST(TcpRobustness, RetransmitExhaustionSurfacesErrorToApplication) {
  // When max_retransmits is exceeded the connection must not merely vanish:
  // the observer gets on_closed with a reason, and every subsequent API
  // call fails cleanly instead of buffering into a dead connection.
  sim::EventLoop loop;
  sim::Rng rng(11);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConfig cfg;
  cfg.max_retransmits = 3;
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, cfg);
  loop.run_until(5 * sim::kSec);
  ASSERT_EQ(c->state(), TcpState::kEstablished);

  chan.loss_p = 1.0;
  EXPECT_GT(c->send(pattern_bytes(0, 100)), 0u);
  loop.run_until(loop.now() + 600 * sim::kSec);

  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(client.closed, 1);
  EXPECT_EQ(client.close_reason, "connection timed out");
  // The error is surfaced: the dead connection accepts no more data and
  // reports nothing readable.
  EXPECT_EQ(c->send(pattern_bytes(0, 100)), 0u);
  EXPECT_EQ(c->bytes_available(), 0u);
  EXPECT_GE(a.stack().tcp().counters().timeouts,
            static_cast<std::uint64_t>(cfg.max_retransmits));
}

TEST(TcpRobustness, HalfOpenPeerReceivesRstOnData) {
  // One side silently forgets an established connection (the user-level
  // analogue: a library dies and its state evaporates). When the oblivious
  // peer next sends data, the forgetting side's TCP must answer with RST
  // and the peer must error out with "reset by peer" -- not hang half-open.
  sim::EventLoop loop;
  sim::Rng rng(17);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  loop.run_until(5 * sim::kSec);
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  ASSERT_NE(server.accepted_conn, nullptr);

  // A forgets the connection without sending anything on the wire.
  a.stack().tcp().release(c);
  const auto rst_before = a.stack().tcp().counters().rst_sent;

  // B is now half-open; its next transmission hits no connection on A.
  server.accepted_conn->send(pattern_bytes(0, 512));
  loop.run_until(loop.now() + 30 * sim::kSec);

  EXPECT_GT(a.stack().tcp().counters().rst_sent, rst_before);
  EXPECT_EQ(server.closed, 1);
  EXPECT_EQ(server.close_reason, "reset by peer");
}

TEST(TcpRobustness, SynLossRecoveredByHandshakeRetransmit) {
  sim::EventLoop loop;
  sim::Rng rng(13);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  RecordingObserver client;
  b.stack().tcp().listen(80, &server);
  // ARP first so the SYN is the first casualty.
  a.stack().arp().add_entry(b.ip_addr(), b.mac());
  b.stack().arp().add_entry(a.ip_addr(), a.mac());
  chan.loss_p = 1.0;
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  loop.run_until(loop.now() + 2 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kSynSent);
  chan.loss_p = 0;
  loop.run_until(loop.now() + 60 * sim::kSec);
  EXPECT_EQ(c->state(), TcpState::kEstablished);
  EXPECT_GE(a.stack().tcp().counters().retransmits, 1u);
}

TEST(TcpRobustness, FastRetransmitFiresOnIsolatedLoss) {
  // Drop exactly one data segment mid-stream; with enough in-flight data the
  // dup-ACK threshold should trigger fast retransmit (not a timeout).
  sim::EventLoop loop;
  sim::Rng rng(21);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  TcpConfig cfg;
  cfg.recv_buf = 48 * 1024;  // plenty of window for dup ACKs
  cfg.send_buf = 128 * 1024;
  b.stack().tcp().close_listener(80);
  b.stack().tcp().listen(80, &server, cfg);

  BulkSource source(300 * 1024, 8192);
  TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &source, cfg);
  ASSERT_NE(c, nullptr);

  // Drop the ~40th IP packet from a only.
  int ip_count = 0;
  bool dropped = false;
  chan.tap = [&](std::uint16_t et, const buf::Bytes&) {
    if (et == net::kEtherTypeIp) ip_count++;
  };
  // Use loss via a one-shot window around packet 40.
  loop.schedule_at(sim::kMs, [&] {});
  // Simpler: drop by probability burst after some progress.
  loop.schedule_at(200 * sim::kMs, [&] {
    if (!dropped) {
      chan.loss_p = 0.3;
      dropped = true;
      loop.schedule_in(30 * sim::kMs, [&] { chan.loss_p = 0; });
    }
  });

  loop.run_until(600 * sim::kSec);
  EXPECT_EQ(server.received.size(), 300u * 1024);
  EXPECT_EQ(server.received, pattern_bytes(0, 300 * 1024));
  EXPECT_GE(a.stack().tcp().counters().fast_retransmits +
                a.stack().tcp().counters().timeouts,
            1u);
}

TEST(TcpRobustness, ZeroWindowProbePreventsDeadlock) {
  sim::EventLoop loop;
  sim::Rng rng(31);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  RecordingObserver server;
  server.auto_read = false;
  b.stack().tcp().listen(80, &server);
  BulkSource source(64 * 1024, 4096, false);
  a.stack().tcp().connect(b.ip_addr(), 80, &source);
  loop.run_until(30 * sim::kSec);
  ASSERT_NE(server.accepted_conn, nullptr);
  // Window is closed and some persist probes have been sent.
  EXPECT_GT(server.accepted_conn->bytes_available(), 0u);

  // The receiver wakes up much later and drains in small sips; the probe
  // machinery must reopen the flow without any timeout-based stall.
  server.auto_read = true;
  auto chunk =
      server.accepted_conn->read(std::numeric_limits<std::size_t>::max());
  server.received.insert(server.received.end(), chunk.begin(), chunk.end());
  loop.run_until(loop.now() + 300 * sim::kSec);
  EXPECT_EQ(server.received.size(), 64u * 1024);
  EXPECT_EQ(server.received, pattern_bytes(0, 64 * 1024));
}

TEST(TcpRobustness, ChecksumDisabledStillWorksOnCleanChannel) {
  // The application-specific specialization of Section 5: elide checksums on
  // a reliable link.
  sim::EventLoop loop;
  sim::Rng rng(41);
  StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0));
  StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0));
  TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  TcpConfig cfg;
  cfg.checksum_enabled = false;
  RecordingObserver server;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server, cfg);
  BulkSource source(50 * 1024, 4096);
  a.stack().tcp().connect(b.ip_addr(), 80, &source, cfg);
  loop.run_until(120 * sim::kSec);
  EXPECT_EQ(server.received, pattern_bytes(0, 50 * 1024));
}

}  // namespace
}  // namespace ulnet::proto
