#include "os/semaphore.h"

#include <gtest/gtest.h>

#include "os/world.h"

namespace ulnet::os {
namespace {

struct SemFixture : ::testing::Test {
  World world;
  Host& host = world.add_host("h");
  sim::SpaceId app = host.new_space("app");
  Semaphore sem{host.cpu(), app};
};

TEST_F(SemFixture, SignalWakesWaiter) {
  bool woke = false;
  sim::SpaceId woke_in = -1;
  sem.wait([&](sim::TaskCtx& ctx) {
    woke = true;
    woke_in = ctx.space();
  });
  host.run_in(sim::kKernelSpace,
              [&](sim::TaskCtx& ctx) { sem.signal(ctx); });
  world.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(woke_in, app);
  EXPECT_EQ(world.metrics().semaphore_signals, 1u);
  EXPECT_EQ(world.metrics().semaphore_wakeups, 1u);
}

TEST_F(SemFixture, WaitAfterSignalFiresWithoutKernelWakeup) {
  host.run_in(sim::kKernelSpace,
              [&](sim::TaskCtx& ctx) { sem.signal(ctx); });
  world.run();
  bool woke = false;
  sem.wait([&](sim::TaskCtx&) { woke = true; });
  world.run();
  EXPECT_TRUE(woke);
  // Fast path: signalled before wait, so no blocked-thread wakeup.
  EXPECT_EQ(world.metrics().semaphore_wakeups, 0u);
}

TEST_F(SemFixture, SignalsAccumulate) {
  host.run_in(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    sem.signal(ctx);
    sem.signal(ctx);
    sem.signal(ctx);
  });
  world.run();
  EXPECT_EQ(sem.count(), 3);
  int wakes = 0;
  std::function<void(sim::TaskCtx&)> rewait = [&](sim::TaskCtx&) {
    wakes++;
    if (sem.count() > 0) sem.wait(rewait);
  };
  sem.wait(rewait);
  world.run();
  EXPECT_EQ(wakes, 3);
}

TEST_F(SemFixture, WakeupChargesDispatchCosts) {
  sem.wait([&](sim::TaskCtx&) {});
  const sim::Time before = host.cpu().busy_ns();
  host.run_in(sim::kKernelSpace,
              [&](sim::TaskCtx& ctx) { sem.signal(ctx); });
  world.run();
  const auto& cost = world.cost();
  // Signal task + waiter task: signal cost, wakeup, uthread dispatch and
  // one context switch into the app space must all be present.
  EXPECT_GE(host.cpu().busy_ns() - before,
            cost.semaphore_signal + cost.kernel_wakeup +
                cost.uthread_dispatch + cost.context_switch);
}

}  // namespace
}  // namespace ulnet::os
