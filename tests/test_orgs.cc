// Integration tests: every protocol organization must move data correctly
// over both networks through the uniform NetSystem API.
#include <gtest/gtest.h>

#include "api/testbed.h"
#include "api/workloads.h"

namespace ulnet::api {
namespace {

struct OrgCase {
  const char* name;
  OrgType org;
  LinkType link;
};

const OrgCase kOrgCases[] = {
    {"ultrix_ethernet", OrgType::kInKernel, LinkType::kEthernet},
    {"ultrix_an1", OrgType::kInKernel, LinkType::kAn1},
    {"machux_ethernet", OrgType::kSingleServer, LinkType::kEthernet},
    {"machux_an1", OrgType::kSingleServer, LinkType::kAn1},
    {"dedicated_ethernet", OrgType::kDedicated, LinkType::kEthernet},
    {"userlevel_ethernet", OrgType::kUserLevel, LinkType::kEthernet},
    {"userlevel_an1", OrgType::kUserLevel, LinkType::kAn1},
};

class OrgTest : public ::testing::TestWithParam<OrgCase> {};

TEST_P(OrgTest, BulkTransferDeliversExactBytes) {
  const auto& c = GetParam();
  Testbed bed(c.org, c.link);
  BulkTransfer bulk(bed, 100 * 1024, 4096, 5001, /*verify_data=*/true);
  auto r = bulk.run();
  EXPECT_TRUE(r.ok) << c.name << ": " << r.error;
  EXPECT_EQ(r.bytes_received, 100u * 1024) << c.name;
  EXPECT_TRUE(r.data_valid) << c.name;
  EXPECT_GT(r.throughput_mbps(), 0.1) << c.name;
}

TEST_P(OrgTest, SmallWritesPreserveByteStream) {
  const auto& c = GetParam();
  Testbed bed(c.org, c.link, /*seed=*/7);
  BulkTransfer bulk(bed, 16 * 1024, 512, 5001, true);
  auto r = bulk.run();
  EXPECT_TRUE(r.ok) << c.name << ": " << r.error;
  EXPECT_TRUE(r.data_valid) << c.name;
}

TEST_P(OrgTest, PingPongCompletesAllRounds) {
  const auto& c = GetParam();
  Testbed bed(c.org, c.link);
  PingPong pp(bed, 512, 20);
  const double mean_rtt = pp.run_mean_rtt_us();
  EXPECT_GT(mean_rtt, 0) << c.name;
  EXPECT_EQ(pp.stats().count(), 20u) << c.name;
  // Sanity: sub-second round trips on an idle LAN.
  EXPECT_LT(mean_rtt, 1e6) << c.name;
}

TEST_P(OrgTest, RepeatedConnectionSetups) {
  const auto& c = GetParam();
  Testbed bed(c.org, c.link);
  SetupProbe probe(bed, 5);
  const double mean_setup = probe.run_mean_setup_us();
  EXPECT_GT(mean_setup, 0) << c.name;
  EXPECT_EQ(probe.stats().count(), 5u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllOrgs, OrgTest, ::testing::ValuesIn(kOrgCases),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Cross-organization shape checks (the paper's qualitative results).
// ---------------------------------------------------------------------------

double ethernet_throughput(OrgType org, std::size_t write) {
  Testbed bed(org, LinkType::kEthernet);
  BulkTransfer bulk(bed, 512 * 1024, write);
  auto r = bulk.run();
  EXPECT_TRUE(r.ok) << to_string(org);
  return r.throughput_mbps();
}

TEST(OrgComparison, EthernetThroughputOrdering) {
  // Table 2's qualitative result at 4 KB user packets:
  // Ultrix > user-level library > Mach/UX.
  const double ultrix = ethernet_throughput(OrgType::kInKernel, 4096);
  const double userlevel = ethernet_throughput(OrgType::kUserLevel, 4096);
  const double machux = ethernet_throughput(OrgType::kSingleServer, 4096);
  EXPECT_GT(ultrix, userlevel);
  EXPECT_GT(userlevel, machux);
}

TEST(OrgComparison, DedicatedServersAreSlowestOnLatency) {
  // Figure 1's "rare case": strictly more domain crossings than the single
  // server, so strictly worse latency.
  Testbed ss(OrgType::kSingleServer, LinkType::kEthernet);
  Testbed ded(OrgType::kDedicated, LinkType::kEthernet);
  PingPong p1(ss, 512, 10);
  PingPong p2(ded, 512, 10);
  const double rtt_ss = p1.run_mean_rtt_us();
  const double rtt_ded = p2.run_mean_rtt_us();
  EXPECT_GT(rtt_ded, rtt_ss);
}

TEST(OrgComparison, LatencyOrderingMatchesTable3) {
  Testbed ultrix(OrgType::kInKernel, LinkType::kEthernet);
  Testbed ul(OrgType::kUserLevel, LinkType::kEthernet);
  Testbed machux(OrgType::kSingleServer, LinkType::kEthernet);
  PingPong p1(ultrix, 512, 10);
  PingPong p2(ul, 512, 10);
  PingPong p3(machux, 512, 10);
  const double t1 = p1.run_mean_rtt_us();
  const double t2 = p2.run_mean_rtt_us();
  const double t3 = p3.run_mean_rtt_us();
  EXPECT_LT(t1, t2);  // Ultrix fastest
  EXPECT_LT(t2, t3);  // user-level beats Mach/UX
}

TEST(OrgComparison, SetupCostOrderingMatchesTable4) {
  Testbed ultrix(OrgType::kInKernel, LinkType::kEthernet);
  Testbed machux(OrgType::kSingleServer, LinkType::kEthernet);
  Testbed ul(OrgType::kUserLevel, LinkType::kEthernet);
  SetupProbe s1(ultrix, 4);
  SetupProbe s2(machux, 4);
  SetupProbe s3(ul, 4);
  const double c1 = s1.run_mean_setup_us();
  const double c2 = s2.run_mean_setup_us();
  const double c3 = s3.run_mean_setup_us();
  EXPECT_LT(c1, c2);  // in-kernel cheapest
  EXPECT_LT(c2, c3);  // registry path is the most expensive
}

TEST(OrgComparison, MechanismCountsMatchStructure) {
  // The structural claim behind Figure 1, independent of the cost model:
  // per-packet IPC messages are zero for in-kernel and user-level data
  // paths, and the user-level path uses only the specialized trap.
  auto run_and_metrics = [](OrgType org) {
    Testbed bed(org, LinkType::kEthernet);
    auto before = bed.world().metrics();
    BulkTransfer bulk(bed, 64 * 1024, 4096);
    auto r = bulk.run();
    EXPECT_TRUE(r.ok);
    return bed.world().metrics().delta_since(before);
  };

  const auto ik = run_and_metrics(OrgType::kInKernel);
  const auto ss = run_and_metrics(OrgType::kSingleServer);
  const auto ul = run_and_metrics(OrgType::kUserLevel);

  // Mach/UX pays IPC per data push; the others only at setup.
  EXPECT_GT(ss.ipc_messages, 5 * (ik.ipc_messages + 1));
  EXPECT_GT(ss.ipc_messages, ul.ipc_messages);
  // The user-level data path enters the kernel via the specialized trap.
  EXPECT_GT(ul.specialized_traps, 40u);
  EXPECT_EQ(ik.specialized_traps, 0u);
  // In-kernel pays a generic trap per socket call.
  EXPECT_GT(ik.traps, 16u);
  // User-level never copies data across spaces on the data path; Ultrix
  // copies (or remaps) on both ends.
  EXPECT_GE(ik.copies + ik.page_remaps, 17u);
  // Batched semaphore notification exists only in the user-level system.
  EXPECT_GT(ul.semaphore_signals, 0u);
  EXPECT_EQ(ik.semaphore_signals, 0u);
}

}  // namespace
}  // namespace ulnet::api
