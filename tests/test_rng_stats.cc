#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "sim/stats.h"

namespace ulnet::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) same++;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  const Time mean = 1000000;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.exponential(mean));
  EXPECT_NEAR(sum / n, static_cast<double>(mean),
              static_cast<double>(mean) * 0.05);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

}  // namespace
}  // namespace ulnet::sim
