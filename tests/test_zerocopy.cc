// Zero-copy / selective-copy data path tests.
//
// Three layers, mirroring the ownership chain:
//   * PacketPool loan table: refcounted handles, explicit release, stale-
//     generation rejection, deferral of recycling while loaned, and
//     determinism of interleaved loan/release sequences.
//   * End-to-end user-level transfers: defaults stay copy-path, the opt-in
//     mechanisms (loaned RX + by-reference TCP + gathered TX + recv_zc sink)
//     collapse the counted payload copies and drain every loan, and the
//     whole thing replays bit-identically.
//   * Baseline mechanisms: in-kernel page donation and single-server
//     out-of-line IPC elide the boundary copy for their organizations.
//   * Chaos soak: a killed library strands live loans; only the registry's
//     dead-client sweep can retire them, and the loan_leak invariant holds
//     across seeds (2 always; 8 under ULNET_ZC_FULL=1 via `-C perf`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/chaos.h"
#include "api/testbed.h"
#include "api/workloads.h"
#include "buf/packet_pool.h"
#include "proto/tcp.h"
#include "sim/metrics.h"

namespace ulnet {
namespace {

using api::BulkTransfer;
using api::LinkType;
using api::OrgType;
using api::Testbed;

// ---------------------------------------------------------------------------
// PacketPool loan table
// ---------------------------------------------------------------------------

// kClassSizes[2] == 1024: acquire(1024) reserves exactly that class size, so
// the storage recycles back into class 2 when the loan retires.
constexpr std::size_t kCls1024 = 2;

buf::Bytes filled_1024(buf::PacketPool& pool) {
  buf::Bytes b = pool.acquire(1024);
  b.resize(600, 0xAB);
  return b;
}

TEST(PoolLoans, ReleaseRetiresSlotAndRecyclesStorage) {
  buf::PacketPool pool;
  buf::BufferLoan loan = pool.loan_out(filled_1024(pool), /*owner=*/7, 100);
  EXPECT_TRUE(loan.engaged());
  EXPECT_EQ(loan.view().size(), 600u);
  EXPECT_EQ(pool.stats().loans_out, 1u);
  EXPECT_EQ(pool.stats().loans_outstanding, 1u);
  EXPECT_EQ(pool.free_count(kCls1024), 0u);  // parked, not free

  EXPECT_TRUE(loan.release(200));
  EXPECT_EQ(pool.stats().loans_outstanding, 0u);
  EXPECT_EQ(pool.free_count(kCls1024), 1u);  // storage came home
  EXPECT_EQ(pool.stats().loan_double_releases, 0u);
  // The handle disengaged itself; releasing again is a no-op, not an error.
  EXPECT_FALSE(loan.release(201));
  EXPECT_EQ(pool.stats().loan_double_releases, 0u);
}

TEST(PoolLoans, CopyTakesReferenceSlotRetiresOnLast) {
  buf::PacketPool pool;
  buf::BufferLoan l1 = pool.loan_out(filled_1024(pool), 7, 0);
  buf::BufferLoan l2 = l1;  // addref
  EXPECT_TRUE(l1.release(10));
  // One reference remains: slot still active, view still valid.
  EXPECT_EQ(pool.stats().loans_outstanding, 1u);
  EXPECT_EQ(l2.view().size(), 600u);
  EXPECT_TRUE(l2.release(20));
  EXPECT_EQ(pool.stats().loans_outstanding, 0u);
  EXPECT_EQ(pool.free_count(kCls1024), 1u);
}

TEST(PoolLoans, StaleGenerationReleaseIsRejectedAndCounted) {
  buf::PacketPool pool;
  buf::BufferLoan l1 = pool.loan_out(filled_1024(pool), 7, 0);
  buf::BufferLoan stale = l1;  // second reference, held across the sweep
  // The owner dies: the sweep force-retires the slot and bumps its
  // generation, references notwithstanding.
  EXPECT_EQ(pool.reclaim_loans(7, 50), 1u);
  EXPECT_EQ(pool.stats().loans_reclaimed, 1u);
  EXPECT_EQ(pool.stats().loans_outstanding, 0u);
  // The surviving handles now dangle: views are empty, releases are
  // rejected and counted as double-releases.
  EXPECT_TRUE(stale.view().empty());
  EXPECT_FALSE(stale.release(60));
  EXPECT_FALSE(l1.release(61));
  EXPECT_EQ(pool.stats().loan_double_releases, 2u);
}

TEST(PoolLoans, RecyclingDeferredWhileLoaned) {
  buf::PacketPool pool;
  buf::BufferLoan loan = pool.loan_out(filled_1024(pool), 7, 0);
  // While the loan is live its storage must not be vended to anyone else:
  // the free list stays empty and a fresh acquire allocates.
  const auto misses_before = pool.stats().misses;
  buf::Bytes other = pool.acquire(1024);
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
  pool.recycle(std::move(other));

  EXPECT_TRUE(loan.release(100));
  // Now the loaned storage is back in circulation: next acquire hits.
  const auto hits_before = pool.stats().hits;
  buf::Bytes reuse = pool.acquire(1024);
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
  pool.recycle(std::move(reuse));
}

TEST(PoolLoans, InterleavedLoanReleaseIsDeterministic) {
  // Two pools fed the same interleaved loan/release/reclaim sequence end in
  // identical externally visible state (slot reuse order included, which
  // dump_json exposes through the counters and free lists).
  auto run = [](buf::PacketPool& pool) {
    buf::BufferLoan a = pool.loan_out(filled_1024(pool), 1, 10);
    buf::BufferLoan b = pool.loan_out(filled_1024(pool), 2, 20);
    buf::BufferLoan b2 = b;
    buf::BufferLoan c = pool.loan_out(filled_1024(pool), 1, 30);
    EXPECT_TRUE(b.release(40));
    pool.reclaim_loans(1, 50);  // sweeps a and c
    EXPECT_FALSE(a.release(55));
    EXPECT_TRUE(b2.release(60));
    buf::BufferLoan d = pool.loan_out(filled_1024(pool), 3, 70);
    EXPECT_TRUE(d.release(80));
    (void)c;
  };
  buf::PacketPool p1, p2;
  run(p1);
  run(p2);
  EXPECT_EQ(p1.dump_json(), p2.dump_json());
  EXPECT_EQ(p1.stats().loans_out, 4u);
  EXPECT_EQ(p1.stats().loans_reclaimed, 2u);
  EXPECT_EQ(p1.stats().loans_outstanding, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: user-level organization
// ---------------------------------------------------------------------------

constexpr std::size_t kTotal = 256 * 1024;
constexpr std::size_t kWrite = 1460;  // one MSS per write

struct UlRun {
  double tput = -1;
  bool ok = false;
  bool data_valid = false;
  sim::Metrics metrics;
  sim::Time end_time = 0;
};

UlRun run_ul_bulk(bool mechanisms, bool charging) {
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1, /*seed=*/21);
  bed.user_app_a()->env().set_copy_charging(charging);
  bed.user_app_b()->env().set_copy_charging(charging);
  if (mechanisms) {
    bed.user_org_a()->set_zero_copy(true);
    bed.user_org_b()->set_zero_copy(true);
    proto::TcpConfig zc = bed.app_a().tcp_config();
    zc.rx_byref = true;
    zc.tx_gather = true;
    bed.app_a().set_tcp_config(zc);
    bed.app_b().set_tcp_config(zc);
  }
  BulkTransfer bulk(bed, kTotal, kWrite, 5001, /*verify_data=*/true);
  bulk.set_zc_recv(mechanisms);
  auto r = bulk.run();
  UlRun out;
  out.ok = r.ok;
  out.data_valid = r.data_valid;
  out.tput = r.throughput_mbps();
  out.metrics = bed.world().metrics();
  out.end_time = bed.world().now();
  return out;
}

TEST(ZeroCopyE2E, DefaultsStayOnTheCopyPath) {
  const UlRun r = run_ul_bulk(/*mechanisms=*/false, /*charging=*/false);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.data_valid);
  // Counting is always on, the mechanisms are not: copies observed, no
  // loans ever made, no frames gathered.
  EXPECT_GT(r.metrics.payload_bytes_copied, 0u);
  EXPECT_EQ(r.metrics.tx_gather_frames, 0u);
  EXPECT_EQ(r.metrics.loan_high_water, 0u);
  EXPECT_EQ(r.metrics.loans_outstanding, 0u);
}

TEST(ZeroCopyE2E, MechanismsElideCopiesAndDrainLoans) {
  const UlRun copy = run_ul_bulk(/*mechanisms=*/false, /*charging=*/true);
  const UlRun zc = run_ul_bulk(/*mechanisms=*/true, /*charging=*/true);
  ASSERT_TRUE(copy.ok);
  ASSERT_TRUE(zc.ok);
  EXPECT_TRUE(zc.data_valid);
  // The opt-in path is a measured win once copies cost simulated time.
  EXPECT_GT(zc.tput, copy.tput);
  // Payload copies collapse (header copies remain; that's the split).
  EXPECT_LT(zc.metrics.payload_bytes_copied,
            copy.metrics.payload_bytes_copied / 100);
  EXPECT_GT(zc.metrics.payload_bytes_elided, 0u);
  EXPECT_GT(zc.metrics.tx_gather_frames, 0u);
  // Loans were used and every one came home.
  EXPECT_GT(zc.metrics.loan_high_water, 0u);
  EXPECT_EQ(zc.metrics.loans_outstanding, 0u);
  EXPECT_EQ(zc.metrics.loan_double_releases, 0u);
}

TEST(ZeroCopyE2E, MechanismsWithoutChargingStillCorrect) {
  // Charging is a measurement gate, not a correctness switch: with it off
  // the zero-copy machinery still delivers the exact byte stream and drains
  // its loans.
  const UlRun r = run_ul_bulk(/*mechanisms=*/true, /*charging=*/false);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.data_valid);
  EXPECT_GT(r.metrics.loan_high_water, 0u);
  EXPECT_EQ(r.metrics.loans_outstanding, 0u);
}

TEST(ZeroCopyE2E, ZeroCopyRunReplaysIdentically) {
  const UlRun r1 = run_ul_bulk(/*mechanisms=*/true, /*charging=*/true);
  const UlRun r2 = run_ul_bulk(/*mechanisms=*/true, /*charging=*/true);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.end_time, r2.end_time);
  EXPECT_EQ(r1.metrics.payload_bytes_copied, r2.metrics.payload_bytes_copied);
  EXPECT_EQ(r1.metrics.payload_bytes_elided, r2.metrics.payload_bytes_elided);
  EXPECT_EQ(r1.metrics.tx_gather_frames, r2.metrics.tx_gather_frames);
  EXPECT_EQ(r1.metrics.loan_high_water, r2.metrics.loan_high_water);
}

// ---------------------------------------------------------------------------
// Baseline mechanisms
// ---------------------------------------------------------------------------

TEST(ZeroCopyBaselines, InKernelPageDonationElidesTheBoundaryCopy) {
  auto run = [](bool zc) {
    Testbed bed(OrgType::kInKernel, LinkType::kAn1, /*seed=*/22);
    if (zc) {
      bed.ik_org_a()->set_zero_copy(true);
      bed.ik_org_b()->set_zero_copy(true);
    }
    BulkTransfer bulk(bed, kTotal, kWrite);
    auto r = bulk.run();
    return std::tuple(r.ok ? r.throughput_mbps() : -1.0,
                      bed.world().metrics().page_remaps,
                      bed.world().metrics().payload_bytes_elided);
  };
  const auto [tput_copy, remaps_copy, elided_copy] = run(false);
  const auto [tput_zc, remaps_zc, elided_zc] = run(true);
  ASSERT_GT(tput_copy, 0.0);
  EXPECT_EQ(elided_copy, 0u);
  EXPECT_GT(tput_zc, tput_copy);
  EXPECT_GT(remaps_zc, remaps_copy);
  EXPECT_GT(elided_zc, 0u);
}

TEST(ZeroCopyBaselines, SingleServerOolIpcElidesThePerByteCharge) {
  auto run = [](bool zc) {
    Testbed bed(OrgType::kSingleServer, LinkType::kAn1, /*seed=*/23);
    if (zc) {
      bed.ss_org_a()->set_zero_copy(true);
      bed.ss_org_b()->set_zero_copy(true);
    }
    BulkTransfer bulk(bed, kTotal, kWrite);
    auto r = bulk.run();
    return std::tuple(r.ok ? r.throughput_mbps() : -1.0,
                      bed.world().metrics().payload_bytes_elided);
  };
  const auto [tput_copy, elided_copy] = run(false);
  const auto [tput_zc, elided_zc] = run(true);
  ASSERT_GT(tput_copy, 0.0);
  EXPECT_EQ(elided_copy, 0u);
  EXPECT_GT(tput_zc, tput_copy);
  EXPECT_GT(elided_zc, 0u);
}

// ---------------------------------------------------------------------------
// Chaos soak: crash-leaked loans are reclaimed, never lost
// ---------------------------------------------------------------------------

TEST(ZeroCopyChaos, KilledLibraryLeaksNoLoans) {
  // 2 seeds in the tier-1 run; the `-C perf` zerocopy_soak_full entry sets
  // ULNET_ZC_FULL=1 for the 8-seed sweep the issue's acceptance names.
  const bool full = std::getenv("ULNET_ZC_FULL") != nullptr;
  const int seeds = full ? 8 : 2;
  for (int seed = 1; seed <= seeds; ++seed) {
    api::ChaosScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.link = (seed % 2 == 0) ? LinkType::kAn1 : LinkType::kEthernet;
    cfg.zerocopy = true;
    const api::ChaosReport rep = api::run_chaos_scenario(cfg);
    EXPECT_TRUE(rep.invariants_ok()) << "seed " << seed << ": "
                                     << rep.failure();
    EXPECT_TRUE(rep.zerocopy_armed);
    // The reverse stream parked live loans in the victim's receive buffer;
    // the kill strands them; only the registry sweep brings them home.
    EXPECT_GT(rep.loans_reclaimed, 0u) << "seed " << seed;
    EXPECT_GT(rep.loan_high_water, 0u) << "seed " << seed;
    EXPECT_EQ(rep.loans_outstanding_end, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ulnet
