// Congestion-control behaviour: slow start, collapse on timeout, fast
// retransmit vs RTO, and ACK-clocked growth.
#include <gtest/gtest.h>

#include "proto/tcp.h"
#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet::proto {
namespace {

using ulnet::testing::BulkSource;
using ulnet::testing::pattern_bytes;
using ulnet::testing::RecordingObserver;
using ulnet::testing::StackHarness;
using ulnet::testing::TestChannel;

struct CcFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::Rng rng{23};
  StackHarness a{loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                 net::MacAddr::from_index(1, 0)};
  StackHarness b{loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                 net::MacAddr::from_index(2, 0)};
  TestChannel chan{loop, rng};

  void SetUp() override {
    chan.attach(&a);
    chan.attach(&b);
  }
  void run(sim::Time d = 5 * sim::kSec) { loop.run_until(loop.now() + d); }

  TcpConnection* establish(RecordingObserver& server,
                           RecordingObserver& client, TcpConfig cfg = {}) {
    b.stack().tcp().listen(80, &server, cfg);
    TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client, cfg);
    run();
    EXPECT_EQ(c->state(), TcpState::kEstablished);
    return c;
  }
};

TEST_F(CcFixture, ConnectionStartsInSlowStartWithOneSegment) {
  RecordingObserver server, client;
  TcpConnection* c = establish(server, client);
  EXPECT_EQ(c->cwnd(), c->effective_mss());
}

TEST_F(CcFixture, WindowGrowsWithAcks) {
  RecordingObserver server, client;
  TcpConnection* c = establish(server, client);
  const std::size_t before = c->cwnd();
  c->send(pattern_bytes(0, 32 * 1024));
  run(10 * sim::kSec);
  EXPECT_GT(c->cwnd(), 4 * before);  // slow start doubled it repeatedly
}

TEST_F(CcFixture, TimeoutCollapsesWindowToOneSegment) {
  RecordingObserver server, client;
  TcpConnection* c = establish(server, client);
  c->send(pattern_bytes(0, 32 * 1024));
  run(10 * sim::kSec);
  ASSERT_GT(c->cwnd(), 2 * c->effective_mss());

  chan.loss_p = 1.0;  // blackout forces an RTO
  c->send(pattern_bytes(0, 8 * 1024));
  run(10 * sim::kSec);
  EXPECT_GE(a.stack().tcp().counters().timeouts, 1u);
  EXPECT_EQ(c->cwnd(), c->effective_mss());
  chan.loss_p = 0;
  run(120 * sim::kSec);  // let it recover and finish cleanly
  EXPECT_EQ(server.received.size(), 40u * 1024);
}

TEST_F(CcFixture, IsolatedLossPrefersFastRetransmitOverTimeout) {
  // Drop exactly one mid-stream data segment; the following segments
  // produce duplicate ACKs which should repair it without an RTO.
  RecordingObserver server;
  server.close_on_fin = true;
  RecordingObserver client;
  TcpConfig cfg;
  cfg.recv_buf = 48 * 1024;
  TcpConnection* c = establish(server, client, cfg);

  // Open the window first so enough segments are in flight.
  c->send(pattern_bytes(0, 40 * 1024));
  run(10 * sim::kSec);
  ASSERT_EQ(server.received.size(), 40u * 1024);

  // One-shot loss of the next data segment only.
  bool dropped = false;
  int to_drop = -1;
  int seen = 0;
  chan.tap = [&](std::uint16_t et, const buf::Bytes& p) {
    if (et != net::kEtherTypeIp) return;
    auto ih = Ipv4Header::parse(p);
    if (!ih || ih->proto != kProtoTcp) return;
    if (ih->payload_len() > 100) seen++;
    if (to_drop < 0 && seen == 1) to_drop = seen + 1;
  };
  // Simpler deterministic approach: brief full loss window right as the
  // burst starts, shorter than the RTO.
  c->send(pattern_bytes(40 * 1024, 60 * 1024));
  chan.loss_p = 1.0;
  loop.run_until(loop.now() + 20 * sim::kMs);
  chan.loss_p = 0;
  run(60 * sim::kSec);
  EXPECT_EQ(server.received.size(), 100u * 1024);
  EXPECT_EQ(server.received, pattern_bytes(0, 100 * 1024));
  EXPECT_GT(a.stack().tcp().counters().fast_retransmits +
                a.stack().tcp().counters().timeouts,
            0u);
  (void)dropped;
}

TEST_F(CcFixture, RetransmissionBackoffGrowsExponentially) {
  RecordingObserver server, client;
  TcpConnection* c = establish(server, client);
  chan.loss_p = 1.0;
  std::vector<sim::Time> tx_times;
  chan.tap = [&](std::uint16_t et, const buf::Bytes& p) {
    if (et != net::kEtherTypeIp) return;
    auto ih = Ipv4Header::parse(p);
    if (ih && ih->proto == kProtoTcp && ih->payload_len() > 100) {
      tx_times.push_back(loop.now());
    }
  };
  c->send(pattern_bytes(0, 1000));
  loop.run_until(loop.now() + 60 * sim::kSec);
  ASSERT_GE(tx_times.size(), 4u);
  // Successive retransmission gaps roughly double.
  const double g1 = static_cast<double>(tx_times[2] - tx_times[1]);
  const double g2 = static_cast<double>(tx_times[3] - tx_times[2]);
  EXPECT_GT(g2, 1.5 * g1);
}

TEST_F(CcFixture, DupAckCountersTrackReordering) {
  chan.jitter_max = 6 * sim::kMs;  // reorders segments
  RecordingObserver server;
  server.close_on_fin = true;
  b.stack().tcp().listen(80, &server);
  BulkSource src(200 * 1024, 4096);
  a.stack().tcp().connect(b.ip_addr(), 80, &src);
  loop.run_until(300 * sim::kSec);
  EXPECT_EQ(server.received.size(), 200u * 1024);
  EXPECT_GT(b.stack().tcp().counters().out_of_order, 0u);
  EXPECT_GT(a.stack().tcp().counters().dup_acks_in, 0u);
}

}  // namespace
}  // namespace ulnet::proto
