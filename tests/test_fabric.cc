// Partitioned-simulation determinism and scale-fixture tests.
//
// The conservative parallel executor's contract is absolute: a kPartitioned
// world produces bit-identical simulated results at ANY thread count, and
// both are bit-identical to the kShardedSerial reference executor (one
// global loop run through the same window/mailbox machinery). The
// fingerprint compared here digests the aggregate metrics JSON, every
// per-host TCP counter block (library and registry stacks), the per-pair
// transfer tallies and the per-host trace streams -- any divergence in
// event order anywhere in the stack shows up in at least one of them.
#include <gtest/gtest.h>

#include <string>

#include "api/fabric_bed.h"
#include "os/world.h"
#include "sim/metrics.h"

namespace ulnet::api {
namespace {

FabricConfig small_cfg(std::uint64_t seed, bool chaos) {
  FabricConfig cfg;
  cfg.pairs = chaos ? 2 : 4;
  cfg.conns_per_pair = chaos ? 4 : 8;
  cfg.bytes_per_conn = 4096;
  cfg.seed = seed;
  cfg.chaos = chaos;
  cfg.trace = true;  // trace streams are part of the fingerprint
  return cfg;
}

std::string run_fingerprint(os::PartitionMode mode, const FabricConfig& cfg,
                            int threads, bool* ok = nullptr) {
  FabricBed bed(mode, cfg);
  const bool r = bed.run(threads);
  if (ok != nullptr) *ok = r;
  return bed.fingerprint_text();
}

TEST(FabricDeterminism, PartitionedMatchesSerialAtEveryThreadCount) {
  const FabricConfig cfg = small_cfg(7, /*chaos=*/false);
  bool ok = false;
  const std::string serial =
      run_fingerprint(os::PartitionMode::kShardedSerial, cfg, 1, &ok);
  EXPECT_TRUE(ok) << "serial reference run did not complete";
  for (int threads : {1, 2, 8}) {
    bool pok = false;
    const std::string par =
        run_fingerprint(os::PartitionMode::kPartitioned, cfg, threads, &pok);
    EXPECT_TRUE(pok) << "partitioned run (threads=" << threads
                     << ") did not complete";
    EXPECT_EQ(serial, par) << "executor divergence at threads=" << threads;
  }
}

TEST(FabricDeterminism, ChaosSoakAcrossSeeds) {
  // Faulty links (loss, duplication, corruption, jitter) draw from
  // per-link RNG streams, so fault outcomes are executor-independent too.
  // Full 8-seed soak; each run is small enough to keep this in tier 1.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FabricConfig cfg = small_cfg(seed, /*chaos=*/true);
    const std::string serial =
        run_fingerprint(os::PartitionMode::kShardedSerial, cfg, 1);
    for (int threads : {2, 8}) {
      EXPECT_EQ(serial, run_fingerprint(os::PartitionMode::kPartitioned, cfg,
                                        threads))
          << "chaos divergence at seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(FabricDeterminism, RepeatedRunsAreBitIdentical) {
  const FabricConfig cfg = small_cfg(3, /*chaos=*/false);
  const std::string a =
      run_fingerprint(os::PartitionMode::kPartitioned, cfg, 8);
  const std::string b =
      run_fingerprint(os::PartitionMode::kPartitioned, cfg, 8);
  EXPECT_EQ(a, b);
}

TEST(FabricScale, CompactStatsChangeNoSimulatedOutcome) {
  // The per-connection memory diet (no RTT histogram) must be invisible to
  // the simulation: identical fingerprints, strictly less TCB memory.
  FabricConfig cfg = small_cfg(5, /*chaos=*/false);
  cfg.trace = false;

  cfg.compact_stats = false;
  FabricBed full(os::PartitionMode::kShardedSerial, cfg);
  EXPECT_TRUE(full.run());

  cfg.compact_stats = true;
  FabricBed compact(os::PartitionMode::kShardedSerial, cfg);
  EXPECT_TRUE(compact.run());

  EXPECT_EQ(full.fingerprint_text(), compact.fingerprint_text());
  EXPECT_LT(compact.peak_tcb_bytes(), full.peak_tcb_bytes());
}

TEST(FabricScale, ReservedTablesNeverRehash) {
  FabricConfig cfg = small_cfg(9, /*chaos=*/false);
  cfg.trace = false;
  cfg.pairs = 1;
  cfg.conns_per_pair = 64;
  cfg.bytes_per_conn = 1024;

  cfg.reserve_tables = true;
  FabricBed reserved(os::PartitionMode::kShardedSerial, cfg);
  EXPECT_TRUE(reserved.run());
  EXPECT_EQ(reserved.metrics().demux_table_rehashes, 0u);
  EXPECT_EQ(reserved.metrics().loan_table_regrows, 0u);

  cfg.reserve_tables = false;
  FabricBed unreserved(os::PartitionMode::kShardedSerial, cfg);
  EXPECT_TRUE(unreserved.run());
  EXPECT_GT(unreserved.metrics().demux_table_rehashes, 0u)
      << "64 bindings without reserve() should rehash at least once "
         "(otherwise the counter is dead)";
}

TEST(FabricScale, AcceptStormBatchingIsSublinear) {
  // All opens land in the same tick (stagger 0): with batching, handshake
  // completions coalesce into sweeps, so the registry dispatches
  // O(sweeps) << O(connections) finish-setup tasks.
  FabricConfig cfg = small_cfg(11, /*chaos=*/false);
  cfg.trace = false;
  cfg.pairs = 1;
  cfg.conns_per_pair = 64;
  cfg.bytes_per_conn = 512;
  cfg.open_stagger = 0;
  cfg.batched_handshakes = true;

  FabricBed bed(os::PartitionMode::kShardedSerial, cfg);
  EXPECT_TRUE(bed.run());
  const std::uint64_t sweeps = bed.handshake_sweeps();
  EXPECT_GT(sweeps, 0u);
  // 128 completions total (64 active opens + 64 accepts); sublinear means
  // well under one sweep per completion.
  EXPECT_LT(sweeps, 64u) << "batching coalesced nothing";
  // Hand-off teardown is indexed: every lookup inspects at most one table
  // entry, regardless of table size.
  EXPECT_LE(bed.handoff_entries_scanned(), bed.handoff_lookups());
}

TEST(FabricScale, PeakConcurrencyReachesEveryConnection) {
  FabricConfig cfg = small_cfg(13, /*chaos=*/false);
  cfg.trace = false;
  FabricBed bed(os::PartitionMode::kPartitioned, cfg);
  EXPECT_TRUE(bed.run(2));
  // Pumps are held until a pair is fully established, so the concurrency
  // peak must reach the full connection count.
  EXPECT_EQ(bed.peak_established(), bed.total_conns());
  EXPECT_GT(bed.peak_tcb_bytes(), 0u);
  EXPECT_GT(bed.peak_pool_bytes(), 0u);
}

}  // namespace
}  // namespace ulnet::api
