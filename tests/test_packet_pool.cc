#include "buf/packet_pool.h"

#include <gtest/gtest.h>

#include <utility>

#include "sim/metrics.h"

namespace ulnet::buf {
namespace {

TEST(PacketPool, ColdAcquireIsAMiss) {
  PacketPool pool;
  Bytes b = pool.acquire(100);
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 100u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(PacketPool, RecycleThenAcquireIsAHit) {
  PacketPool pool;
  Bytes b = pool.acquire(100);
  b.resize(80, 0xaa);
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.stats().recycles, 1u);

  Bytes c = pool.acquire(100);
  EXPECT_TRUE(c.empty());  // recycled storage comes back cleared
  EXPECT_GE(c.capacity(), 100u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(PacketPool, AcquirePicksSmallestCoveringClass) {
  PacketPool pool;
  // Recycle one buffer into the 1024 class and one into the 4096 class.
  Bytes small;
  small.reserve(1024);
  pool.recycle(std::move(small));
  Bytes big;
  big.reserve(4096);
  pool.recycle(std::move(big));
  // A 600-byte hint should take the 1024 buffer, not the 4096 one.
  Bytes got = pool.acquire(600);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_LT(got.capacity(), 4096u);
}

TEST(PacketPool, OversizeHintFallsThroughToPlainAllocation) {
  PacketPool pool;
  const std::size_t huge = PacketPool::kClassSizes[PacketPool::kNumClasses - 1] + 1;
  Bytes b = pool.acquire(huge);
  EXPECT_GE(b.capacity(), huge);
  EXPECT_EQ(pool.stats().misses, 1u);
  // Oversize buffers can't be retained in any class; recycling frees them.
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.stats().recycles, 1u);
  Bytes c = pool.acquire(huge);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(PacketPool, RetentionBoundCapsFreeList) {
  PacketPool pool;
  for (std::size_t i = 0; i < PacketPool::kMaxFreePerClass + 10; ++i) {
    Bytes b;
    b.reserve(256);
    pool.recycle(std::move(b));
  }
  EXPECT_EQ(pool.free_count(0), PacketPool::kMaxFreePerClass);
}

TEST(PacketPool, EmptyCapacityRecycleIsIgnored) {
  PacketPool pool;
  Bytes moved_from;
  pool.recycle(std::move(moved_from));
  for (std::size_t c = 0; c < PacketPool::kNumClasses; ++c) {
    EXPECT_EQ(pool.free_count(c), 0u);
  }
}

TEST(PacketPool, HighWaterTracksPeakOutstanding) {
  PacketPool pool;
  Bytes a = pool.acquire(256);
  Bytes b = pool.acquire(256);
  Bytes c = pool.acquire(256);
  EXPECT_EQ(pool.stats().outstanding, 3u);
  EXPECT_EQ(pool.stats().high_water, 3u);
  pool.recycle(std::move(a));
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.stats().outstanding, 1u);
  EXPECT_EQ(pool.stats().high_water, 3u);  // high-water sticks
  pool.recycle(std::move(c));
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PacketPool, BindMetricsMirrorsCounters) {
  PacketPool pool;
  sim::Metrics m;
  pool.bind_metrics(&m);
  Bytes a = pool.acquire(256);
  pool.recycle(std::move(a));
  Bytes b = pool.acquire(256);
  pool.recycle(std::move(b));
  EXPECT_EQ(m.pool_hits, 1u);
  EXPECT_EQ(m.pool_misses, 1u);
  EXPECT_EQ(m.pool_recycles, 2u);
  EXPECT_EQ(m.pool_high_water, 1u);
}

TEST(PacketPool, DumpJsonHasStatsAndClasses) {
  PacketPool pool;
  Bytes a = pool.acquire(256);
  pool.recycle(std::move(a));
  const std::string j = pool.dump_json();
  EXPECT_NE(j.find("\"hits\""), std::string::npos);
  EXPECT_NE(j.find("\"misses\""), std::string::npos);
  EXPECT_NE(j.find("\"classes\""), std::string::npos);
  EXPECT_NE(j.find("\"size\":256"), std::string::npos);
}

TEST(PooledBytes, ReturnsToPoolOnDestruction) {
  PacketPool pool;
  {
    PooledBytes pb = borrow(pool, 512);
    pb->resize(10, 1);
    EXPECT_EQ((*pb).size(), 10u);
  }
  EXPECT_EQ(pool.stats().recycles, 1u);
  Bytes again = pool.acquire(512);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(PooledBytes, TakeDetachesFromPool) {
  PacketPool pool;
  Bytes detached;
  {
    PooledBytes pb = borrow(pool, 512);
    pb->resize(10, 7);
    detached = std::move(pb).take();
  }
  EXPECT_EQ(pool.stats().recycles, 0u);  // nothing returned
  EXPECT_EQ(detached.size(), 10u);
  EXPECT_EQ(detached[0], 7);
}

TEST(PooledBytes, MoveTransfersOwnership) {
  PacketPool pool;
  {
    PooledBytes a = borrow(pool, 512);
    PooledBytes b = std::move(a);
    PooledBytes c;
    c = std::move(b);
    // Only the final owner returns the buffer.
  }
  EXPECT_EQ(pool.stats().recycles, 1u);
}

TEST(PooledBytes, ExplicitReleaseIsIdempotent) {
  PacketPool pool;
  PooledBytes pb = borrow(pool, 512);
  pb.release();
  pb.release();
  EXPECT_EQ(pool.stats().recycles, 1u);
}

}  // namespace
}  // namespace ulnet::buf
