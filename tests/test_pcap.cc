// PcapWriter: format validity and end-to-end capture of a real transfer.
#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/testbed.h"
#include "api/workloads.h"

namespace ulnet::net {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

std::uint32_t u32_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, 4);
  return v;  // host order, as written
}

TEST(Pcap, CapturesWholeTransferInValidFormat) {
  const std::string path = "/tmp/ulnet_test_capture.pcap";
  std::remove(path.c_str());
  {
    api::Testbed bed(api::OrgType::kInKernel, api::LinkType::kEthernet);
    PcapWriter pcap(path, bed.link(), bed.world().loop());
    api::BulkTransfer bulk(bed, 64 * 1024, 4096);
    auto r = bulk.run();
    ASSERT_TRUE(r.ok);
    EXPECT_GT(pcap.frames_written(), 40u);
  }

  auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 24u);
  EXPECT_EQ(u32_at(bytes, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(u32_at(bytes, 20), 1u);          // LINKTYPE_ETHERNET

  // Walk every record: lengths must be consistent and frames parseable.
  std::size_t off = 24;
  int frames = 0;
  int tcp_frames = 0;
  std::uint32_t prev_ts_us = 0;
  while (off + 16 <= bytes.size()) {
    const std::uint32_t ts_s = u32_at(bytes, off);
    const std::uint32_t ts_us = u32_at(bytes, off + 4);
    const std::uint32_t incl = u32_at(bytes, off + 8);
    const std::uint32_t orig = u32_at(bytes, off + 12);
    ASSERT_EQ(incl, orig);
    ASSERT_LE(off + 16 + incl, bytes.size());
    const std::uint32_t now_us = ts_s * 1000000u + ts_us;
    EXPECT_GE(now_us, prev_ts_us);  // timestamps monotonic
    prev_ts_us = now_us;

    buf::ByteView frame(bytes.data() + off + 16, incl);
    auto eh = EthHeader::parse(frame);
    ASSERT_TRUE(eh.has_value());
    if (eh->ethertype == kEtherTypeIp && frame.size() > 14 + 20 &&
        frame[14 + 9] == 6) {
      tcp_frames++;
    }
    off += 16 + incl;
    frames++;
  }
  EXPECT_EQ(off, bytes.size());  // no trailing garbage
  EXPECT_GT(frames, 40);
  EXPECT_GT(tcp_frames, 40);  // the bulk transfer is in there
  std::remove(path.c_str());
}

TEST(Pcap, An1CaptureUsesUserLinktype) {
  const std::string path = "/tmp/ulnet_test_capture_an1.pcap";
  std::remove(path.c_str());
  {
    api::Testbed bed(api::OrgType::kInKernel, api::LinkType::kAn1);
    PcapWriter pcap(path, bed.link(), bed.world().loop());
    api::BulkTransfer bulk(bed, 32 * 1024, 4096);
    ASSERT_TRUE(bulk.run().ok);
  }
  auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 24u);
  EXPECT_EQ(u32_at(bytes, 20), 147u);  // LINKTYPE_USER0
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ulnet::net
