// NetIoModule unit tests: channel lifecycle, kernel-resource hygiene,
// send-path checks, ring semantics, retargeting and redelivery.
#include "core/netio_module.h"

#include <gtest/gtest.h>

#include "core/exec_env.h"
#include "os/world.h"
#include "proto/wire.h"

namespace ulnet::core {
namespace {

struct NetIoFixture : ::testing::Test {
  os::World world;
  os::Host& host = world.add_host("h");
  net::Link& link = world.add_ethernet();
  hw::LanceNic& nic =
      world.attach_lance(host, link, net::Ipv4Addr::parse("10.0.0.1"));
  NetIoModule mod{host, nic, 0};
  sim::SpaceId app = host.new_space("app");

  NetIoModule::ChannelSetup tcp_setup(std::uint16_t lport,
                                      std::uint16_t rport) {
    NetIoModule::ChannelSetup s;
    s.app_space = app;
    s.flow.ethertype = net::kEtherTypeIp;
    s.flow.ip_proto = proto::kProtoTcp;
    s.flow.local_ip = net::Ipv4Addr::parse("10.0.0.1").value;
    s.flow.remote_ip = net::Ipv4Addr::parse("10.0.0.2").value;
    s.flow.local_port = lport;
    s.flow.remote_port = rport;
    s.peer_mac = net::MacAddr::from_index(9, 0);
    return s;
  }

  // Build an IP/TCP payload matching (or not) the channel's template.
  buf::Bytes ip_tcp(std::uint16_t sport, std::uint16_t dport,
                    const char* src = "10.0.0.1",
                    const char* dst = "10.0.0.2") {
    proto::Ipv4Header ih;
    ih.total_len = 40;
    ih.proto = proto::kProtoTcp;
    ih.src = net::Ipv4Addr::parse(src);
    ih.dst = net::Ipv4Addr::parse(dst);
    buf::Bytes p;
    ih.serialize(p);
    proto::TcpHeader th;
    th.sport = sport;
    th.dport = dport;
    th.flags.ack = true;
    th.serialize(p, ih.src, ih.dst, {});
    return p;
  }

  template <typename Fn>
  void in_task(sim::SpaceId space, Fn fn) {
    host.cpu().submit(space, sim::Prio::kNormal,
                      [fn](sim::TaskCtx& ctx) { fn(ctx); });
    world.run();
  }

  // Deliver a payload through the full rx path (classify included), as the
  // wire would: an Ethernet frame from the remote host addressed to us.
  void arrive(buf::Bytes payload) {
    net::Frame f;
    net::EthHeader{nic.mac(), net::MacAddr::from_index(9, 0),
                   net::kEtherTypeIp}
        .serialize(f.bytes);
    buf::put_bytes(f.bytes, payload);
    nic.frame_arrived(f);
    world.run();
  }
};

TEST_F(NetIoFixture, ChannelCreatesKernelResources) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  ASSERT_NE(id, kInvalidChannel);
  const os::PortId cap = mod.channel_cap(id);
  const os::RegionId region = mod.channel_region(id);
  EXPECT_TRUE(host.kernel().port_exists(cap));
  EXPECT_TRUE(host.kernel().port_has_send_right(cap, app));
  EXPECT_TRUE(host.kernel().region_mapped(region, app));
}

TEST_F(NetIoFixture, DestroyReleasesEverything) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  const os::PortId cap = mod.channel_cap(id);
  const os::RegionId region = mod.channel_region(id);
  in_task(sim::kKernelSpace,
          [&](sim::TaskCtx& ctx) { mod.destroy_channel(ctx, id); });
  EXPECT_FALSE(host.kernel().port_exists(cap));
  EXPECT_FALSE(host.kernel().region_mapped(region, app));
  EXPECT_EQ(mod.channel_cap(id), os::kInvalidPort);
}

TEST_F(NetIoFixture, SendAcceptsMatchingTemplate) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  bool ok = false;
  in_task(app, [&](sim::TaskCtx& ctx) {
    ok = mod.channel_send(ctx, id, mod.channel_cap(id), app,
                          net::kEtherTypeIp, ip_tcp(80, 2000));
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(mod.counters().sends, 1u);
  EXPECT_EQ(nic.tx_frames(), 1u);
}

TEST_F(NetIoFixture, SendRejectsWrongSourcePort) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  bool ok = true;
  in_task(app, [&](sim::TaskCtx& ctx) {
    ok = mod.channel_send(ctx, id, mod.channel_cap(id), app,
                          net::kEtherTypeIp, ip_tcp(81, 2000));
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(mod.counters().send_rejects, 1u);
  EXPECT_EQ(nic.tx_frames(), 0u);
}

TEST_F(NetIoFixture, SendRejectsWrongSourceAddress) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  bool ok = true;
  in_task(app, [&](sim::TaskCtx& ctx) {
    ok = mod.channel_send(ctx, id, mod.channel_cap(id), app,
                          net::kEtherTypeIp,
                          ip_tcp(80, 2000, "10.0.0.9", "10.0.0.2"));
  });
  EXPECT_FALSE(ok);
}

TEST_F(NetIoFixture, SendRejectsWrongEthertype) {
  NetIoModule::ChannelSetup raw;
  raw.app_space = app;
  raw.raw = true;
  raw.raw_ethertype = net::kEtherTypeRaw;
  raw.peer_mac = net::MacAddr::from_index(9, 0);
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, raw);
  });
  bool ok = true;
  in_task(app, [&](sim::TaskCtx& ctx) {
    ok = mod.channel_send(ctx, id, mod.channel_cap(id), app,
                          net::kEtherTypeIp, buf::Bytes(40, 0));
  });
  EXPECT_FALSE(ok);
}

TEST_F(NetIoFixture, RingDropsWhenFullAndCounts) {
  auto setup = tcp_setup(80, 2000);
  setup.ring_capacity = 2;
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, setup);
  });
  // Push three packets through redeliver (same path as rx delivery).
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    for (int i = 0; i < 3; ++i) {
      mod.redeliver(ctx, id, net::kEtherTypeIp, ip_tcp(2000, 80));
    }
  });
  EXPECT_EQ(mod.counters().ring_drops, 1u);
  EXPECT_TRUE(mod.channel_pop(id).has_value());
  EXPECT_TRUE(mod.channel_pop(id).has_value());
  EXPECT_FALSE(mod.channel_pop(id).has_value());
}

TEST_F(NetIoFixture, RearmReportsLateArrivals) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
    mod.redeliver(ctx, id, net::kEtherTypeIp, ip_tcp(2000, 80));
  });
  ASSERT_TRUE(mod.channel_pop(id).has_value());
  EXPECT_FALSE(mod.channel_rearm(id));  // drained: safe to sleep
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    mod.redeliver(ctx, id, net::kEtherTypeIp, ip_tcp(2000, 80));
  });
  EXPECT_TRUE(mod.channel_rearm(id));  // a packet slipped in
}

TEST_F(NetIoFixture, RetargetMovesRightsAndMapping) {
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  const sim::SpaceId app2 = host.new_space("worker");
  const os::PortId cap = mod.channel_cap(id);
  const os::RegionId region = mod.channel_region(id);
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    EXPECT_TRUE(mod.retarget_channel(ctx, id, app2));
  });
  EXPECT_FALSE(host.kernel().port_has_send_right(cap, app));
  EXPECT_TRUE(host.kernel().port_has_send_right(cap, app2));
  EXPECT_FALSE(host.kernel().region_mapped(region, app));
  EXPECT_TRUE(host.kernel().region_mapped(region, app2));
  // The old owner can no longer transmit.
  bool ok = true;
  in_task(app, [&](sim::TaskCtx& ctx) {
    ok = mod.channel_send(ctx, id, cap, app, net::kEtherTypeIp,
                          ip_tcp(80, 2000));
  });
  EXPECT_FALSE(ok);
}

TEST_F(NetIoFixture, UnclaimedPacketsCountWithoutDefaultHandler) {
  // No channels, no default handler: an arriving frame is dropped and
  // accounted.
  net::Frame f;
  net::EthHeader{nic.mac(), net::MacAddr::from_index(9, 0),
                 net::kEtherTypeIp}
      .serialize(f.bytes);
  buf::put_bytes(f.bytes, ip_tcp(2000, 80));
  nic.frame_arrived(f);
  world.run();
  EXPECT_EQ(mod.counters().unclaimed_drops, 1u);
}

// --- Binding-table demux: priority, determinism, and accounting ----------

TEST_F(NetIoFixture, OverlappingBindingsMostSpecificWins) {
  // A wildcard listener-style binding (any remote) created FIRST, then a
  // fully-bound channel for one remote. Before the binding table the demux
  // walked an unordered_map, so which of two overlapping filters saw a
  // matching packet depended on hash-bucket layout. The hash probe ladder
  // must always hand the frame to the most specific binding, while the
  // wildcard still catches everything else.
  auto wild = tcp_setup(80, 0);
  wild.flow.remote_ip = 0;
  ChannelId w = kInvalidChannel;
  ChannelId b = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    w = mod.create_channel(ctx, wild);
    b = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  arrive(ip_tcp(2000, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(b).has_value());
  EXPECT_FALSE(mod.channel_pop(w).has_value());
  // A different remote port matches only the wildcard.
  arrive(ip_tcp(2001, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(w).has_value());
  EXPECT_FALSE(mod.channel_pop(b).has_value());
  EXPECT_EQ(mod.counters().demux_hash_hits, 2u);
  EXPECT_EQ(mod.counters().demux_fallback_walks, 0u);
}

TEST_F(NetIoFixture, DuplicateBindingsDeliverToFirstCreated) {
  // Two channels with identical flow keys: the table keeps the first, and
  // destroying it promotes the survivor (the table is rebuilt).
  ChannelId c1 = kInvalidChannel;
  ChannelId c2 = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    c1 = mod.create_channel(ctx, tcp_setup(80, 2000));
    c2 = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  arrive(ip_tcp(2000, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(c1).has_value());
  EXPECT_FALSE(mod.channel_pop(c2).has_value());
  in_task(sim::kKernelSpace,
          [&](sim::TaskCtx& ctx) { mod.destroy_channel(ctx, c1); });
  arrive(ip_tcp(2000, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(c2).has_value());
}

TEST_F(NetIoFixture, InterpretedWalkIsInsertionOrdered) {
  // BPF keeps the paper's linear scan; with two filters that both accept,
  // delivery must follow creation order, not container iteration order.
  mod.set_demux_mode(NetIoModule::DemuxMode::kBpf);
  ChannelId c1 = kInvalidChannel;
  ChannelId c2 = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    c1 = mod.create_channel(ctx, tcp_setup(80, 2000));
    c2 = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  arrive(ip_tcp(2000, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(c1).has_value());
  EXPECT_FALSE(mod.channel_pop(c2).has_value());
  in_task(sim::kKernelSpace,
          [&](sim::TaskCtx& ctx) { mod.destroy_channel(ctx, c1); });
  arrive(ip_tcp(2000, 80, "10.0.0.2", "10.0.0.1"));
  EXPECT_TRUE(mod.channel_pop(c2).has_value());
  EXPECT_EQ(mod.counters().demux_hash_hits, 0u);  // interpreted mode
}

TEST_F(NetIoFixture, FallbackWalkCountsOnHashMiss) {
  // A frame no binding claims: every hash probe misses, the binding list
  // is walked (and charged), and the frame falls through to the default
  // path -- here, with no handler, an accounted drop.
  ChannelId id = kInvalidChannel;
  in_task(sim::kKernelSpace, [&](sim::TaskCtx& ctx) {
    id = mod.create_channel(ctx, tcp_setup(80, 2000));
  });
  arrive(ip_tcp(2000, 81, "10.0.0.2", "10.0.0.1"));
  EXPECT_FALSE(mod.channel_pop(id).has_value());
  EXPECT_EQ(mod.counters().demux_hash_hits, 0u);
  EXPECT_EQ(mod.counters().demux_fallback_walks, 1u);
  EXPECT_EQ(mod.counters().unclaimed_drops, 1u);
}

}  // namespace
}  // namespace ulnet::core
