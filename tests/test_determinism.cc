// The world is a deterministic discrete-event simulation: identical seeds
// must give bit-identical outcomes, different seeds must actually differ.
#include <gtest/gtest.h>

#include "api/testbed.h"
#include "api/workloads.h"

namespace ulnet::api {
namespace {

struct RunSummary {
  sim::Time finish = 0;
  std::size_t bytes = 0;
  std::uint64_t events = 0;
  sim::Metrics metrics;
  sim::Time cpu_a = 0, cpu_b = 0;
};

RunSummary run_once(std::uint64_t seed, OrgType org) {
  Testbed bed(org, LinkType::kEthernet, seed);
  BulkTransfer bulk(bed, 128 * 1024, 4096);
  auto r = bulk.run();
  RunSummary s;
  s.finish = r.last_byte;
  s.bytes = r.bytes_received;
  s.events = bed.world().loop().executed();
  s.metrics = bed.world().metrics();
  s.cpu_a = bed.host_a().cpu().busy_ns();
  s.cpu_b = bed.host_b().cpu().busy_ns();
  return s;
}

TEST(Determinism, SameSeedSameWorldToTheNanosecond) {
  for (OrgType org : {OrgType::kInKernel, OrgType::kUserLevel}) {
    const RunSummary a = run_once(42, org);
    const RunSummary b = run_once(42, org);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.cpu_a, b.cpu_a);
    EXPECT_EQ(a.cpu_b, b.cpu_b);
    EXPECT_EQ(a.metrics.packets_rx, b.metrics.packets_rx);
    EXPECT_EQ(a.metrics.context_switches, b.metrics.context_switches);
  }
}

// Golden values for seed 42, Ethernet, 128 KiB / 4 KiB writes. These pin
// the simulated-cost outputs bit-for-bit: any change to event ordering,
// cost charging, or protocol behaviour shows up here. The buffer pool and
// event-loop internals may change wall-clock behaviour freely, but these
// numbers must not move. Update only for a deliberate semantic change.
TEST(Determinism, GoldenInKernelRun) {
  const RunSummary s = run_once(42, OrgType::kInKernel);
  EXPECT_EQ(s.finish, 410333720);
  EXPECT_EQ(s.bytes, 131072u);
  EXPECT_EQ(s.events, 617u);
  EXPECT_EQ(s.cpu_a, 143846360);
  EXPECT_EQ(s.cpu_b, 141007600);
  EXPECT_EQ(s.metrics.packets_rx, 177u);
  EXPECT_EQ(s.metrics.context_switches, 31u);
  EXPECT_EQ(s.metrics.copies, 1u);
  EXPECT_EQ(s.metrics.bytes_copied, 648u);
  EXPECT_EQ(s.metrics.semaphore_signals, 0u);
  EXPECT_EQ(s.metrics.traps, 47u);
  EXPECT_EQ(s.metrics.specialized_traps, 0u);
  EXPECT_EQ(s.metrics.ipc_messages, 0u);
  EXPECT_EQ(s.metrics.interrupts, 177u);
  EXPECT_EQ(s.metrics.timer_ops, 240u);
}

TEST(Determinism, GoldenUserLevelRun) {
  const RunSummary s = run_once(42, OrgType::kUserLevel);
  EXPECT_EQ(s.finish, 470872640);
  EXPECT_EQ(s.bytes, 131072u);
  EXPECT_EQ(s.events, 878u);
  EXPECT_EQ(s.cpu_a, 200055000);
  EXPECT_EQ(s.cpu_b, 203083200);
  EXPECT_EQ(s.metrics.packets_rx, 225u);
  EXPECT_EQ(s.metrics.context_switches, 106u);
  EXPECT_EQ(s.metrics.copies, 4u);
  EXPECT_EQ(s.metrics.bytes_copied, 352u);
  EXPECT_EQ(s.metrics.semaphore_signals, 45u);
  EXPECT_EQ(s.metrics.traps, 9u);
  EXPECT_EQ(s.metrics.specialized_traps, 220u);
  EXPECT_EQ(s.metrics.ipc_messages, 9u);
  EXPECT_EQ(s.metrics.interrupts, 225u);
  EXPECT_EQ(s.metrics.timer_ops, 300u);
}

// The pool itself must be deterministic: identical seeds give identical
// hit/miss/recycle/high-water counters, and the pool's wall-clock-only role
// means its counters are part of the reproducible state, not noise.
TEST(Determinism, PoolStatsAreSeedDeterministic) {
  for (OrgType org : {OrgType::kInKernel, OrgType::kUserLevel}) {
    const RunSummary a = run_once(42, org);
    const RunSummary b = run_once(42, org);
    EXPECT_EQ(a.metrics.pool_hits, b.metrics.pool_hits);
    EXPECT_EQ(a.metrics.pool_misses, b.metrics.pool_misses);
    EXPECT_EQ(a.metrics.pool_recycles, b.metrics.pool_recycles);
    EXPECT_EQ(a.metrics.pool_high_water, b.metrics.pool_high_water);
    EXPECT_EQ(a.metrics.event_slab_high_water, b.metrics.event_slab_high_water);
    // The pool must actually be in use on this path (≥2x fewer heap
    // allocations per packet means most acquires are hits).
    EXPECT_GT(a.metrics.pool_hits, a.metrics.pool_misses);
  }
}

TEST(Determinism, DifferentSeedsDifferSomewhere) {
  // Sequence numbers are seeded from the world RNG, so at minimum the ISS
  // differs; the transfer itself still completes identically in shape.
  const RunSummary a = run_once(1, OrgType::kInKernel);
  const RunSummary b = run_once(2, OrgType::kInKernel);
  EXPECT_EQ(a.bytes, b.bytes);  // both correct...
  // ...but not the same world: at least one micro-outcome differs. ISS
  // choice perturbs nothing else in this workload, so compare wire traces
  // indirectly via a separate pair of worlds below.
  Testbed t1(OrgType::kInKernel, LinkType::kEthernet, 1);
  Testbed t2(OrgType::kInKernel, LinkType::kEthernet, 2);
  EXPECT_NE(t1.world().rng().next_u64(), t2.world().rng().next_u64());
}

}  // namespace
}  // namespace ulnet::api
