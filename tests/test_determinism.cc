// The world is a deterministic discrete-event simulation: identical seeds
// must give bit-identical outcomes, different seeds must actually differ.
#include <gtest/gtest.h>

#include "api/testbed.h"
#include "api/workloads.h"

namespace ulnet::api {
namespace {

struct RunSummary {
  sim::Time finish = 0;
  std::size_t bytes = 0;
  std::uint64_t events = 0;
  sim::Metrics metrics;
  sim::Time cpu_a = 0, cpu_b = 0;
};

RunSummary run_once(std::uint64_t seed, OrgType org) {
  Testbed bed(org, LinkType::kEthernet, seed);
  BulkTransfer bulk(bed, 128 * 1024, 4096);
  auto r = bulk.run();
  RunSummary s;
  s.finish = r.last_byte;
  s.bytes = r.bytes_received;
  s.events = bed.world().loop().executed();
  s.metrics = bed.world().metrics();
  s.cpu_a = bed.host_a().cpu().busy_ns();
  s.cpu_b = bed.host_b().cpu().busy_ns();
  return s;
}

TEST(Determinism, SameSeedSameWorldToTheNanosecond) {
  for (OrgType org : {OrgType::kInKernel, OrgType::kUserLevel}) {
    const RunSummary a = run_once(42, org);
    const RunSummary b = run_once(42, org);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.cpu_a, b.cpu_a);
    EXPECT_EQ(a.cpu_b, b.cpu_b);
    EXPECT_EQ(a.metrics.packets_rx, b.metrics.packets_rx);
    EXPECT_EQ(a.metrics.context_switches, b.metrics.context_switches);
  }
}

TEST(Determinism, DifferentSeedsDifferSomewhere) {
  // Sequence numbers are seeded from the world RNG, so at minimum the ISS
  // differs; the transfer itself still completes identically in shape.
  const RunSummary a = run_once(1, OrgType::kInKernel);
  const RunSummary b = run_once(2, OrgType::kInKernel);
  EXPECT_EQ(a.bytes, b.bytes);  // both correct...
  // ...but not the same world: at least one micro-outcome differs. ISS
  // choice perturbs nothing else in this workload, so compare wire traces
  // indirectly via a separate pair of worlds below.
  Testbed t1(OrgType::kInKernel, LinkType::kEthernet, 1);
  Testbed t2(OrgType::kInKernel, LinkType::kEthernet, 2);
  EXPECT_NE(t1.world().rng().next_u64(), t2.world().rng().next_u64());
}

}  // namespace
}  // namespace ulnet::api
