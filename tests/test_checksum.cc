#include "buf/checksum.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace ulnet::buf {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroDataChecksumIsAllOnes) {
  Bytes data(10, 0);
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  Bytes odd{0x12, 0x34, 0x56};
  Bytes padded{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(padded));
}

TEST(Checksum, VerifyRoundTrip) {
  sim::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(2 + rng.below(200), 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    // Zero a 16-bit checksum slot, fill it with the computed sum.
    data[0] = data[1] = 0;
    const std::uint16_t ck = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(ck >> 8);
    data[1] = static_cast<std::uint8_t>(ck & 0xff);
    EXPECT_TRUE(checksum_ok(data));
  }
}

TEST(Checksum, DetectsSingleBitFlips) {
  sim::Rng rng(5);
  Bytes data(64, 0);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  data[0] = data[1] = 0;
  const std::uint16_t ck = internet_checksum(data);
  data[0] = static_cast<std::uint8_t>(ck >> 8);
  data[1] = static_cast<std::uint8_t>(ck & 0xff);
  ASSERT_TRUE(checksum_ok(data));
  for (int trial = 0; trial < 100; ++trial) {
    Bytes flipped = data;
    const std::size_t pos = rng.below(flipped.size());
    flipped[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_FALSE(checksum_ok(flipped)) << "bit flip at " << pos;
  }
}

TEST(Checksum, AccumulatorMatchesOneShotAcrossSplits) {
  sim::Rng rng(7);
  Bytes data(113, 0);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  const std::uint16_t whole = internet_checksum(data);
  for (std::size_t split = 0; split <= data.size(); split += 13) {
    ChecksumAccumulator acc;
    acc.add(ByteView(data.data(), split));
    acc.add(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(acc.fold(), whole) << "split at " << split;
  }
}

TEST(Checksum, Add16MatchesBytePair) {
  ChecksumAccumulator a;
  a.add16(0x1234);
  a.add16(0x5678);
  ChecksumAccumulator b;
  Bytes data{0x12, 0x34, 0x56, 0x78};
  b.add(data);
  EXPECT_EQ(a.fold(), b.fold());
}

// Differential: the word-at-a-time fast path must agree with the scalar
// byte-pair reference on every length (hits all word/tail/odd cases).
TEST(Checksum, WordAtATimeMatchesScalarAllSmallLengths) {
  sim::Rng rng(11);
  for (std::size_t len = 0; len <= 130; ++len) {
    Bytes data(len, 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    EXPECT_EQ(internet_checksum(data), internet_checksum_scalar(data))
        << "len " << len;
  }
}

TEST(Checksum, WordAtATimeMatchesScalarRandomLengths) {
  sim::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data(rng.below(4096), 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    ASSERT_EQ(internet_checksum(data), internet_checksum_scalar(data))
        << "trial " << trial << " len " << data.size();
  }
}

// Splitting at an odd offset forces the accumulator's odd-byte prologue on
// the second add; all split points must still agree with the scalar loop.
TEST(Checksum, MisalignedSplitsMatchScalar) {
  sim::Rng rng(17);
  Bytes data(257, 0);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  const std::uint16_t want = internet_checksum_scalar(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    ChecksumAccumulator acc;
    acc.add(ByteView(data.data(), split));
    acc.add(ByteView(data.data() + split, data.size() - split));
    ASSERT_EQ(acc.fold(), want) << "split at " << split;
  }
}

TEST(Checksum, AllOnesDataExercisesCarryPropagation) {
  // 0xff words maximize end-around carries in the 64-bit accumulator.
  for (std::size_t len : {7u, 8u, 9u, 63u, 64u, 65u, 1500u}) {
    Bytes data(len, 0xff);
    EXPECT_EQ(internet_checksum(data), internet_checksum_scalar(data))
        << "len " << len;
  }
}

TEST(Checksum, ScalarReferenceMatchesRfc1071Example) {
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum_scalar(data), 0x220d);
}

}  // namespace
}  // namespace ulnet::buf
